module github.com/ftpim/ftpim

go 1.22
