// Prunededge reproduces the paper's §IV-C story at example scale:
// weight pruning makes models *more* fragile under stuck-at faults
// (sparser models have less redundancy, while faults strike every
// crossbar cell regardless), and stochastic FT training wins the
// robustness back. It prints a miniature Table II.
//
// Run with: go run ./examples/prunededge
package main

import (
	"context"
	"fmt"
	"math"
	"os"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/prune"
	"github.com/ftpim/ftpim/internal/report"
)

func main() {
	ctx := context.Background()
	cfg := data.SynthConfig{
		Classes: 8, TrainPer: 60, TestPer: 25,
		Channels: 3, Size: 10, Basis: 16, CoefNoise: 0.28,
		NoiseStd: 0.4, ShiftMax: 1, JitterStd: 0.15, Seed: 13,
	}
	train, test := data.Generate(cfg)

	build := func() *nn.Network {
		return models.BuildResNet(models.ResNetConfig{
			Depth: 8, Classes: 8, InChannels: 3, WidthMult: 0.5, Seed: 42,
		})
	}
	trainCfg := core.Config{
		Epochs: 10, Batch: 32, LR: 0.08, Momentum: 0.9, WeightDecay: 5e-4,
		Aug: data.Augment{Flip: true, ShiftMax: 1}, Seed: 1,
	}

	dense := build()
	must(core.Train(ctx, dense, train, trainCfg))
	accPre := core.EvalClean(dense, test, 128)
	fmt.Printf("dense pretrained accuracy: %.2f%%\n", accPre*100)

	// ADMM pruning at 60% sparsity, then fine-tune.
	pruned := build()
	if err := pruned.Restore(dense.Snapshot()); err != nil {
		panic(err)
	}
	admm := prune.NewADMM(pruned.WeightParams(), 0.6, 5e-3)
	admmCfg := trainCfg
	admmCfg.LR = 0.04
	admmCfg.Epochs = 8
	admmCfg.ADMM = admm
	admmCfg.ADMMInterval = 2
	must(core.Train(ctx, pruned, train, admmCfg))
	admm.Finalize()
	ftn := trainCfg
	ftn.LR = 0.04
	ftn.Epochs = 6
	must(core.Train(ctx, pruned, train, ftn))
	accPruned := core.EvalClean(pruned, test, 128)
	fmt.Printf("ADMM-pruned (%.0f%% sparse) accuracy: %.2f%%\n\n", pruned.Sparsity()*100, accPruned*100)

	// FT-retrain the pruned model (masks are preserved by the trainer).
	prunedFT := build()
	if err := prunedFT.Restore(pruned.Snapshot()); err != nil {
		panic(err)
	}
	ftCfg := trainCfg
	ftCfg.LR = 0.03
	ftCfg.Epochs = 16
	must(core.OneShotFT(ctx, prunedFT, train, ftCfg, 0.05))

	// Compare fragility.
	ev := core.DefectEval{Runs: 20, Batch: 128, Seed: 5}
	rates := []float64{0.02, 0.05, 0.1}
	t := report.NewTable("mini Table II: defect accuracy % (and SS) by model",
		"model", "sparsity", "clean", "d@0.02", "d@0.05", "d@0.1", "SS(0.05)")
	row := func(name string, net *nn.Network, base float64) {
		clean := core.EvalClean(net, test, 128)
		var ds []float64
		for _, r := range rates {
			ds = append(ds, must(core.EvalDefect(ctx, net, test, r, ev)).Mean)
		}
		ss := metrics.StabilityScore(clean*100, base*100, ds[1]*100)
		ssStr := fmt.Sprintf("%.2f", ss)
		if math.IsInf(ss, 1) {
			ssStr = "inf"
		}
		t.AddRow(name, fmt.Sprintf("%.0f%%", net.Sparsity()*100),
			fmt.Sprintf("%.2f", clean*100),
			fmt.Sprintf("%.2f", ds[0]*100), fmt.Sprintf("%.2f", ds[1]*100), fmt.Sprintf("%.2f", ds[2]*100),
			ssStr)
	}
	row("dense", dense, accPre)
	row("ADMM-pruned", pruned, accPruned)
	row("ADMM-pruned + FT(0.05)", prunedFT, accPruned)
	t.Render(os.Stdout)

	fmt.Println("\nPruned models fall off the cliff earlier than dense ones;")
	fmt.Println("stochastic FT training buys robustness back at moderate fault")
	fmt.Println("rates while keeping the compression (sparsity unchanged).")
}

// must unwraps a (value, error) pair; with a background context the
// core API only errors on cancellation, which cannot happen here.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
