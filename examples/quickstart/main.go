// Quickstart walks the paper's Figure 1 end to end on a small
// synthetic task:
//
//  1. pretrain a ResNet-style model           → Acc_pretrain
//  2. deploy on faulty ReRAM (random stuck-at) → Acc_defect collapses
//  3. stochastic fault-tolerant retraining     → Acc_retrain
//  4. redeploy on faulty ReRAM                 → Acc_defect recovered
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/obs"
)

func main() {
	// Ctrl-C cancels the context; training and evaluation stop at the
	// next batch / Monte-Carlo run boundary with the weights intact.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Progress events (one line per epoch) go to stderr.
	sink := obs.NewProgress(os.Stderr)

	// A 10-class CIFAR-like synthetic task, small enough to train in
	// seconds on one core.
	cfg := data.SynthConfig{
		Classes: 10, TrainPer: 80, TestPer: 25,
		Channels: 3, Size: 10, Basis: 20, CoefNoise: 0.2,
		NoiseStd: 0.4, ShiftMax: 1, JitterStd: 0.15,
		Seed: 7,
	}
	train, test := data.Generate(cfg)
	fmt.Printf("dataset: %d train / %d test, %d classes\n", train.N(), test.N(), train.Classes)

	net := models.BuildResNet(models.ResNetConfig{
		Depth: 8, Classes: 10, InChannels: 3, WidthMult: 0.5, Seed: 42,
	})
	fmt.Printf("model: CIFAR-style ResNet-8, %d parameters\n\n", net.NumParams())

	trainCfg := core.Config{
		Epochs: 12, Batch: 32, LR: 0.08, Momentum: 0.9, WeightDecay: 5e-4,
		Aug: data.Augment{Flip: true, ShiftMax: 1}, Seed: 1, Sink: sink,
	}

	// ① Pretrain.
	if _, err := core.Train(ctx, net, train, trainCfg); err != nil {
		exitOn(err)
	}
	accPretrain := core.EvalClean(net, test, 128)
	fmt.Printf("① Acc_pretrain (ideal, no faults):     %6.2f%%\n", accPretrain*100)

	// ③ Deploy with stuck-at faults (Chen et al. SA0:SA1 = 1.75:9.04).
	ev := core.DefectEval{Runs: 20, Batch: 128, Seed: 99}
	psa := 0.05
	before, err := core.EvalDefect(ctx, net, test, psa, ev)
	exitOn(err)
	fmt.Printf("③ Acc_defect at Psa=%g (no FT):        %6.2f%% ± %.2f\n", psa, before.Mean*100, before.CI95()*100)

	// ② Stochastic fault-tolerant retraining (one-shot, Psa^T = 0.1).
	ftCfg := trainCfg
	ftCfg.LR = 0.04
	ftCfg.Epochs = 12
	if _, err := core.OneShotFT(ctx, net, train, ftCfg, 0.1); err != nil {
		exitOn(err)
	}
	accRetrain := core.EvalClean(net, test, 128)
	fmt.Printf("② Acc_retrain (ideal, after FT):       %6.2f%%\n", accRetrain*100)

	// ③' Redeploy the fault-tolerant model.
	after, err := core.EvalDefect(ctx, net, test, psa, ev)
	exitOn(err)
	fmt.Printf("③ Acc_defect at Psa=%g (with FT):      %6.2f%% ± %.2f\n", psa, after.Mean*100, after.CI95()*100)

	fmt.Printf("\nStability Score SS(%g): baseline %.2f → fault-tolerant %.2f\n",
		psa,
		metrics.StabilityScore(accPretrain*100, accPretrain*100, before.Mean*100),
		metrics.StabilityScore(accRetrain*100, accPretrain*100, after.Mean*100))
	fmt.Println("\nThe FT model holds its accuracy on defective crossbars that")
	fmt.Println("collapse the baseline — with no per-device retraining.")
}

// exitOn exits quietly on Ctrl-C (the only error the core API returns
// under a signal-cancelled context).
func exitOn(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(130)
	}
	panic(err)
}
