// Massproduction simulates the paper's motivating scenario: a fleet of
// mass-produced edge devices, each with its own random stuck-at defect
// pattern. It compares three deployment strategies across the fleet:
//
//   - baseline: ship the pretrained model as-is;
//   - device-specific fault-aware retraining [5]: retrain the model
//     separately for every single device (accurate but O(fleet) cost);
//   - stochastic FT training (this paper): retrain once, ship to all;
//   - drop-connect FT: retrain once with random SA0 weight dropping,
//     assuming nothing about the deployed fault distribution.
//
// The fleet is manufactured twice: once with the paper's i.i.d.
// Chen-ratio defects and once with spatially-clustered row-burst
// defects (the fault.Clustered scenario), showing how each strategy
// holds up when the defect distribution shifts.
//
// Run with: go run ./examples/massproduction
package main

import (
	"context"
	"fmt"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

const (
	fleetSize = 12
	psaDevice = 0.05 // per-cell stuck-at rate of each manufactured device
)

func main() {
	ctx := context.Background()
	cfg := data.SynthConfig{
		Classes: 8, TrainPer: 60, TestPer: 25,
		Channels: 3, Size: 10, Basis: 16, CoefNoise: 0.18,
		NoiseStd: 0.4, ShiftMax: 1, JitterStd: 0.15, Seed: 11,
	}
	train, test := data.Generate(cfg)

	build := func() *nn.Network {
		return models.BuildResNet(models.ResNetConfig{
			Depth: 8, Classes: 8, InChannels: 3, WidthMult: 0.5, Seed: 42,
		})
	}

	trainCfg := core.Config{
		Epochs: 10, Batch: 32, LR: 0.08, Momentum: 0.9, WeightDecay: 5e-4,
		Aug: data.Augment{Flip: true, ShiftMax: 1}, Seed: 1,
	}

	// One pretrained "golden" model.
	golden := build()
	must(core.Train(ctx, golden, train, trainCfg))
	fmt.Printf("golden model clean accuracy: %.2f%%\n", core.EvalClean(golden, test, 128)*100)

	// One FT model, trained once for the whole fleet.
	ft := build()
	mustRestore(ft, golden)
	ftCfg := trainCfg
	ftCfg.LR = 0.03
	ftCfg.Epochs = 20
	must(core.OneShotFT(ctx, ft, train, ftCfg, 0.1))
	fmt.Printf("FT model clean accuracy:     %.2f%%\n", core.EvalClean(ft, test, 128)*100)

	// A drop-connect FT model: no fault model assumed at training time,
	// just random SA0 weight dropping per mini-batch.
	dc := build()
	mustRestore(dc, golden)
	dcCfg := ftCfg
	must(core.DropConnectFT(ctx, dc, train, dcCfg, 0.1))
	fmt.Printf("drop-connect model clean:    %.2f%%\n\n", core.EvalClean(dc, test, 128)*100)

	// Two manufacturing lines: one with the paper's i.i.d. Chen-ratio
	// defects, one with spatially-clustered (row-burst) defects — the
	// signature of wordline driver failures.
	lines := []struct {
		name     string
		scenario fault.Scenario
	}{
		{"i.i.d. chen defects", fault.Chen()},
		{"clustered defects", fault.NewClustered(0, 0, fault.ChenModel())},
	}
	weights := core.WeightTensors(golden)
	for _, line := range lines {
		// The fleet: every device gets its own fixed defect map.
		rng := tensor.NewRNG(777)
		var accBase, accFT, accDC, accDev []float64
		retrainEpochs := 0
		for d := 0; d < fleetSize; d++ {
			dm := line.scenario.DrawMap(rng.StreamN("device", d), weights, psaDevice)

			accBase = append(accBase, must(core.EvalOnDevice(ctx, golden, test, dm, 128))*100)
			accFT = append(accFT, must(core.EvalOnDevice(ctx, ft, test, dm, 128))*100)
			accDC = append(accDC, must(core.EvalOnDevice(ctx, dc, test, dm, 128))*100)

			// Device-specific retraining: a fresh copy per device.
			dev := build()
			mustRestore(dev, golden)
			devCfg := trainCfg
			devCfg.LR = 0.04
			devCfg.Epochs = 6
			must(core.FaultAwareRetrain(ctx, dev, train, devCfg, dm))
			retrainEpochs += devCfg.Epochs
			accDev = append(accDev, must(core.EvalOnDevice(ctx, dev, test, dm, 128))*100)
		}

		report := func(name string, accs []float64, cost string) {
			s := metrics.Summarize(accs)
			fmt.Printf("%-28s mean %6.2f%%  min %6.2f%%  max %6.2f%%  (training cost: %s)\n",
				name, s.Mean, s.Min, s.Max, cost)
		}
		fmt.Printf("fleet of %d devices, %s (%s), per-cell rate %g:\n",
			fleetSize, line.name, line.scenario.Spec(), psaDevice)
		report("baseline (ship as-is)", accBase, "0")
		report("device-specific retrain [5]", accDev, fmt.Sprintf("%d epochs (%d per device)", retrainEpochs, retrainEpochs/fleetSize))
		report("stochastic FT (this paper)", accFT, "20 epochs, once")
		report("drop-connect FT", accDC, "20 epochs, once")
		fmt.Println()
	}

	fmt.Println("Device-specific retraining is the accuracy ceiling but costs a")
	fmt.Println("training run per manufactured unit; stochastic FT training closes")
	fmt.Println("much of the gap to it at a fleet-independent, one-off cost, and")
	fmt.Println("drop-connect FT does so without assuming any fault model at all.")
}

func mustRestore(dst, src *nn.Network) {
	if err := dst.Restore(src.Snapshot()); err != nil {
		panic(err)
	}
}

// must unwraps a (value, error) pair; with a background context the
// core API only errors on cancellation, which cannot happen here.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
