// Crossbar deploys a trained model onto the circuit-level ReRAM
// crossbar simulator and walks the device-side toolchain:
//
//   - differential conductance mapping with multi-level cells,
//   - per-cell stuck-at fault injection,
//   - march-test fault detection,
//   - redundant-column repair [4],
//
// and compares the resulting accuracies against the fast weight-level
// fault model the paper evaluates with.
//
// Run with: go run ./examples/crossbar
package main

import (
	"context"
	"fmt"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/reram"
	"github.com/ftpim/ftpim/internal/tensor"
)

func main() {
	ctx := context.Background()
	cfg := data.SynthConfig{
		Classes: 8, TrainPer: 60, TestPer: 25,
		Channels: 3, Size: 10, Basis: 16, CoefNoise: 0.18,
		NoiseStd: 0.4, ShiftMax: 1, JitterStd: 0.15, Seed: 17,
	}
	train, test := data.Generate(cfg)
	net := models.BuildResNet(models.ResNetConfig{
		Depth: 8, Classes: 8, InChannels: 3, WidthMult: 0.5, Seed: 42,
	})
	must(core.Train(ctx, net, train, core.Config{
		Epochs: 10, Batch: 32, LR: 0.08, Momentum: 0.9, WeightDecay: 5e-4,
		Aug: data.Augment{Flip: true, ShiftMax: 1}, Seed: 1,
	}))
	clean := metrics.Evaluate(net, test, 128)
	fmt.Printf("digital model accuracy:                    %6.2f%%\n", clean*100)

	// Program every weight matrix onto 64×64 differential tiles with
	// 4-bit cells.
	opts := reram.MapOptions{TileRows: 64, TileCols: 64, Levels: 16, Gmin: 0.1, Gmax: 10}
	mn := reram.MapNetwork(net, opts)
	fmt.Printf("deployment: %d ReRAM cells (2 per weight)\n", mn.NumCells())

	undo := mn.ApplyEffectiveWeights()
	quant := metrics.Evaluate(net, test, 128)
	undo()
	fmt.Printf("analog accuracy, 4-bit cells, no faults:   %6.2f%%\n", quant*100)

	// Manufacture a defective chip.
	rng := tensor.NewRNG(2024)
	psa := 0.01
	nFaults := mn.InjectFaults(rng.Stream("fab"), fault.ChenModel(), psa)
	undo = mn.ApplyEffectiveWeights()
	faulty := metrics.Evaluate(net, test, 128)
	undo()
	fmt.Printf("analog accuracy, %5d stuck cells (%.1f%%):  %6.2f%%\n",
		nFaults, psa*100, faulty*100)

	// Device-specific column remapping [3]: route logical columns onto
	// physical columns whose stuck values hurt least.
	var costBefore, costAfter float64
	for _, mat := range mn.Mats {
		rep := reram.RemapColumns(mat)
		costBefore += rep.CostBefore
		costAfter += rep.CostAfter
	}
	undo = mn.ApplyEffectiveWeights()
	remapped := metrics.Evaluate(net, test, 128)
	undo()
	fmt.Printf("analog accuracy after column remap [3]:    %6.2f%%  (cost %.1f → %.1f)\n",
		remapped*100, costBefore, costAfter)
	for _, mat := range mn.Mats {
		mat.ResetColPerms()
	}

	// March-test the chip, then repair with redundant columns.
	detected := 0
	dets := []reram.TileFaults{}
	for i, mat := range mn.Mats {
		_ = i
		tf := reram.MarchTestMatrix(mat, 1.0, rng.Stream("march"))
		for _, t := range tf {
			detected += len(t.Faults)
		}
		rep := reram.RepairColumns(mat, tf, 8, psa, rng.Stream("spares"))
		dets = append(dets, tf...)
		_ = rep
	}
	fmt.Printf("march test detected %d/%d faulty cells across %d tile arrays\n",
		detected, nFaults, len(dets))
	undo = mn.ApplyEffectiveWeights()
	repaired := metrics.Evaluate(net, test, 128)
	undo()
	fmt.Printf("analog accuracy after column repair [4]:   %6.2f%%\n", repaired*100)

	// Compare with the weight-level abstraction at the same rate.
	ev := core.DefectEval{Runs: 20, Batch: 128, Seed: 9}
	wl := must(core.EvalDefect(ctx, net, test, psa, ev))
	fmt.Printf("weight-level fault model at Psa=%g:      %6.2f%% ± %.2f\n",
		psa, wl.Mean*100, wl.CI95()*100)

	fmt.Println("\nThe weight-level model tracks the circuit-level simulation,")
	fmt.Println("which is why the paper (and this library's experiment harness)")
	fmt.Println("can evaluate fault tolerance without simulating every cell.")
}

// must unwraps a (value, error) pair; with a background context the
// core API only errors on cancellation, which cannot happen here.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
