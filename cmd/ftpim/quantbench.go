package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/ftpm"
	"github.com/ftpim/ftpim/internal/serve"
)

// quantBenchOpts carries the quantbench flag values from run().
type quantBenchOpts struct {
	preset   string // for the fresh cold-start environments
	cache    string
	out      string // JSON record path ("" -> results/BENCH_quant.json)
	calibN   int
	clients  int
	requests int
}

// QuantBenchRecord is the persisted result of one quantbench run:
// accuracy parity, cold-start latency (gob model cache vs mmap'd
// FTPM), and serving throughput for the float32 and int8 paths.
type QuantBenchRecord struct {
	Schema  string `json:"schema"` // "ftpim.bench.quant/v1"
	Created string `json:"created"`
	Preset  string `json:"preset"`
	Dataset string `json:"dataset"`
	Model   string `json:"model"`

	// Top-1 test accuracy; DeltaPP = (int8 - float32) in percentage
	// points. The acceptance bar is |DeltaPP| < 1.
	FloatAcc float64 `json:"float_acc"`
	QuantAcc float64 `json:"quant_acc"`
	DeltaPP  float64 `json:"delta_pp"`

	// Cold start: median milliseconds to a ready model. GobMs rebuilds
	// the float network and decodes the warm .cache gob entry (dataset
	// generation excluded — both paths need the dataset equally);
	// FTPMMs mmaps the exported file. Speedup = GobMs / FTPMMs.
	GobMs   float64 `json:"cold_start_gob_ms"`
	FTPMMs  float64 `json:"cold_start_ftpm_ms"`
	Speedup float64 `json:"cold_start_speedup"`

	// In-process load test, identical client/request shape both ways.
	FloatRPS        float64          `json:"float_rps"`
	QuantRPS        float64          `json:"quant_rps"`
	ThroughputRatio float64          `json:"throughput_ratio"` // int8 / float32
	FloatLoad       serve.LoadResult `json:"float_load"`
	QuantLoad       serve.LoadResult `json:"quant_load"`
}

// runQuantBench implements 'ftpim quantbench': quantize the pretrained
// model, export it, and measure the three claims the int8 path makes —
// accuracy parity, faster cold start, higher serving throughput.
func runQuantBench(ctx context.Context, env *experiments.Env, dataset string, o quantBenchOpts) error {
	if dataset == "both" {
		dataset = "c10"
	}
	if o.out == "" {
		o.out = filepath.Join("results", "BENCH_quant.json")
	}

	net, q, meta, err := quantizeFromEnv(ctx, env, dataset, o.calibN)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ftpim: quantbench %s/%s: float %.2f%% int8 %.2f%%\n",
		env.Scale.Name, dataset, meta.FloatAcc*100, meta.QuantAcc*100)

	tmp, err := os.MkdirTemp("", "ftpim-quantbench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	modelPath := filepath.Join(tmp, "model.ftpm")
	if err := ftpm.Save(modelPath, q, meta); err != nil {
		return err
	}

	// Cold start, gob side: a fresh Env per trial so the in-memory
	// model map is cold, dataset pre-generated so only build+decode is
	// timed. quantizeFromEnv above guaranteed the disk cache is warm.
	const trials = 5
	gobMs := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		cold := experiments.NewEnv(o.preset, o.cache, nil)
		cold.Scale.Workers = env.Scale.Workers
		cold.Dataset(dataset)
		start := time.Now()
		if _, err := cold.Pretrained(ctx, dataset); err != nil {
			return fmt.Errorf("cold gob load: %v", err)
		}
		gobMs = append(gobMs, float64(time.Since(start).Nanoseconds())/1e6)
	}

	ftpmMs := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		start := time.Now()
		m, err := ftpm.Load(modelPath)
		if err != nil {
			return fmt.Errorf("cold ftpm load: %v", err)
		}
		ftpmMs = append(ftpmMs, float64(time.Since(start).Nanoseconds())/1e6)
		m.Close()
	}

	// Load tests: same dataset, same client/request shape; only the
	// executor lane differs (float clone pool vs int8 clones).
	_, test := env.Dataset(dataset)
	img := make([]float32, func() int { c, h, w := test.Dims(); return c * h * w }())
	test.Example(0, img)
	lt := serve.LoadOptions{Clients: o.clients, Requests: o.requests, Image: img}

	runLoad := func(cfg serve.Config, fnet bool) (serve.LoadResult, error) {
		var s *serve.Server
		var err error
		if fnet {
			s, err = serve.New(net, test, cfg)
		} else {
			s, err = serve.New(nil, test, cfg)
		}
		if err != nil {
			return serve.LoadResult{}, err
		}
		res, lerr := serve.Load(s.Handler(), lt)
		s.Drain()
		return res, lerr
	}
	floatRes, err := runLoad(serve.Config{Eval: env.DefectEval(), Sink: env.Sink}, true)
	if err != nil {
		return fmt.Errorf("float load test: %v", err)
	}
	quantRes, err := runLoad(serve.Config{Quantized: q, ModelFormat: ftpm.FormatName, Sink: env.Sink}, false)
	if err != nil {
		return fmt.Errorf("quantized load test: %v", err)
	}

	rec := QuantBenchRecord{
		Schema:    "ftpim.bench.quant/v1",
		Created:   time.Now().UTC().Format(time.RFC3339),
		Preset:    env.Scale.Name,
		Dataset:   dataset,
		Model:     meta.Model,
		FloatAcc:  meta.FloatAcc,
		QuantAcc:  meta.QuantAcc,
		DeltaPP:   (meta.QuantAcc - meta.FloatAcc) * 100,
		GobMs:     median(gobMs),
		FTPMMs:    median(ftpmMs),
		FloatRPS:  floatRes.Throughput,
		QuantRPS:  quantRes.Throughput,
		FloatLoad: floatRes,
		QuantLoad: quantRes,
	}
	if rec.FTPMMs > 0 {
		rec.Speedup = rec.GobMs / rec.FTPMMs
	}
	if rec.FloatRPS > 0 {
		rec.ThroughputRatio = rec.QuantRPS / rec.FloatRPS
	}

	if err := os.MkdirAll(filepath.Dir(o.out), 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, append(buf, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("accuracy: float32 %.2f%%  int8 %.2f%%  delta %+.2fpp\n",
		rec.FloatAcc*100, rec.QuantAcc*100, rec.DeltaPP)
	fmt.Printf("cold start: gob %.2fms  ftpm %.3fms  speedup %.0fx\n",
		rec.GobMs, rec.FTPMMs, rec.Speedup)
	fmt.Printf("throughput: float32 %.1f req/s  int8 %.1f req/s  ratio %.2fx\n",
		rec.FloatRPS, rec.QuantRPS, rec.ThroughputRatio)
	fmt.Printf("wrote %s\n", o.out)
	return nil
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
