package main

import (
	"context"
	"fmt"
	"time"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/ftpm"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// quantizeFromEnv trains (or loads from cache) the float model for
// dataset, quantizes it against up to calibN training images, and
// measures both top-1 accuracies on the test split. This is the one
// place export and quantbench agree on what "the int8 model" means.
func quantizeFromEnv(ctx context.Context, env *experiments.Env, dataset string, calibN int) (*nn.Network, *nn.QuantizedNetwork, ftpm.Meta, error) {
	net, err := env.Pretrained(ctx, dataset)
	if err != nil {
		return nil, nil, ftpm.Meta{}, err
	}
	train, test := env.Dataset(dataset)

	// Calibration batches are views over the training images — the
	// activation-scale observer only reads them, so no copies needed.
	if calibN <= 0 || calibN > train.N() {
		calibN = train.N()
	}
	c, h, w := train.Dims()
	stride := c * h * w
	batch := env.Scale.Batch
	if batch <= 0 {
		batch = 32
	}
	var calib []*tensor.Tensor
	for at := 0; at < calibN; at += batch {
		n := batch
		if at+n > calibN {
			n = calibN - at
		}
		var t tensor.Tensor
		t.SetView(train.Images.Data()[at*stride:(at+n)*stride], n, c, h, w)
		calib = append(calib, &t)
	}
	q, err := nn.QuantizeNetwork(net, calib)
	if err != nil {
		return nil, nil, ftpm.Meta{}, fmt.Errorf("quantize: %v", err)
	}

	depth := env.Scale.DepthC10
	if dataset == "c100" {
		depth = env.Scale.DepthC100
	}
	meta := ftpm.Meta{
		Model:    fmt.Sprintf("resnet%d", depth),
		Dataset:  dataset,
		Classes:  test.Classes,
		FloatAcc: core.EvalClean(net, test, batch),
		QuantAcc: metrics.Evaluate(q, test, batch),
		Created:  time.Now().UTC().Format(time.RFC3339),
	}
	return net, q, meta, nil
}

// runExport implements 'ftpim export': quantize the env's pretrained
// model and save it as a single mmap-able FTPM file.
func runExport(ctx context.Context, env *experiments.Env, dataset, out string, calibN int) error {
	if dataset == "both" {
		dataset = "c10"
	}
	if out == "" {
		out = "model-" + dataset + ".ftpm"
	}
	_, q, meta, err := quantizeFromEnv(ctx, env, dataset, calibN)
	if err != nil {
		return err
	}
	if err := ftpm.Save(out, q, meta); err != nil {
		return err
	}
	fmt.Printf("exported %s (%s/%s, %d classes) -> %s\n",
		meta.Model, env.Scale.Name, dataset, meta.Classes, out)
	fmt.Printf("top-1: float32 %.2f%%  int8 %.2f%%  (delta %+.2fpp)\n",
		meta.FloatAcc*100, meta.QuantAcc*100, (meta.QuantAcc-meta.FloatAcc)*100)
	return nil
}
