package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/dist"
	"github.com/ftpim/ftpim/internal/dist/backoff"
	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/report"
)

// distOpts carries the coordinator/worker flag values from run().
type distOpts struct {
	addr          string        // coordinator: listen address
	connect       string        // worker: coordinator address
	workerID      string        // worker: pool id ("" = host-pid)
	leaseRuns     int           // coordinator: Monte-Carlo runs per lease
	leaseTTL      time.Duration // coordinator: heartbeat deadline
	fallbackAfter time.Duration // coordinator: empty-pool patience before in-process fallback
	runs          int           // override the preset's Monte-Carlo runs (0 = preset default)
	slowMs        int           // worker: artificial per-lease delay (chaos/CI aid)
}

// runCoordinator shards the preset's defect sweep over TCP workers
// and renders the folded per-rate table — byte-identical to what
// single-process `ftpim table1` math would produce for the same
// model, rates, and runs, at any worker count and under any worker
// kill schedule. SIGTERM drains cleanly: the fully-completed rate
// prefix is rendered and the process exits 0.
func runCoordinator(ctx context.Context, env *experiments.Env, dataset string, o distOpts) error {
	if dataset == "both" {
		dataset = "c10"
	}
	net, err := env.Pretrained(ctx, dataset)
	if err != nil {
		return err
	}
	_, test := env.Dataset(dataset)
	eval := env.DefectEval()
	if o.runs > 0 {
		eval.Runs = o.runs
	}
	eval = eval.Normalize()
	cfg := dist.Config{
		LeaseRuns:     o.leaseRuns,
		LeaseTTL:      o.leaseTTL,
		FallbackAfter: o.fallbackAfter,
		Eval:          eval,
		Rates:         env.Scale.TestRates,
		Job:           dist.Job{Preset: env.Scale.Name, Dataset: dataset},
		Sink:          env.Sink,
		Local: func(ctx context.Context, l dist.Lease) ([]float64, error) {
			c := eval
			c.Seed = l.Seed
			return core.EvalDefectRuns(ctx, net, test, l.Rate, l.Start, l.End, c)
		},
	}
	if env.Ckpt != nil {
		cfg.Ckpt = env.Ckpt.Run("dist-" + env.Scale.Name + "-" + dataset)
	}
	co, err := dist.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ftpim: coordinating %s/%s defect sweep on %s (%d rates x %d runs, lease %d)\n",
		env.Scale.Name, dataset, o.addr, len(cfg.Rates), eval.Runs, cfg.Normalize().LeaseRuns)
	sums, serr := co.Run(ctx, o.addr)
	renderSweep(env.Scale.TestRates, sums)
	if serr != nil {
		if errors.Is(serr, context.Canceled) {
			// Graceful degradation under SIGTERM: partial results above,
			// clean exit below.
			fmt.Fprintf(os.Stderr, "ftpim: coordinator drained with %d/%d rate(s) complete\n",
				len(sums), len(cfg.Rates))
			return nil
		}
		return serr
	}
	if cfg.Ckpt != nil {
		cfg.Ckpt.Clear() // sweep finished; its checkpoints are dead weight
	}
	return nil
}

// renderSweep prints the folded per-rate table for however many rates
// completed.
func renderSweep(rates []float64, sums []metrics.Summary) {
	if len(sums) == 0 {
		return
	}
	t := report.NewTable("distributed defect sweep",
		"Psa", "mean acc %", "std %", "min %", "max %", "runs")
	for i, s := range sums {
		t.AddRow(fmt.Sprintf("%g", rates[i]),
			f2(s.Mean*100), f2(s.Std*100), f2(s.Min*100), f2(s.Max*100),
			fmt.Sprintf("%d", s.N))
	}
	t.Render(os.Stdout)
}

// runWorker joins a coordinator's pool and evaluates leases until the
// sweep completes. The job frame tells the worker which preset and
// dataset to reproduce; training is deterministic, so the worker's
// model (cached or retrained) is bit-identical to the coordinator's.
// Dial failures retry under jittered exponential backoff; SIGTERM
// exits 0.
func runWorker(ctx context.Context, env *experiments.Env, o distOpts) error {
	if o.connect == "" {
		return errors.New("worker needs -connect HOST:PORT")
	}
	cfg := dist.WorkerConfig{
		Addr: o.connect,
		ID:   o.workerID,
		Dial: backoff.Policy{
			Base: 200 * time.Millisecond, Max: 5 * time.Second, Attempts: 30,
		},
		Sink: env.Sink,
		Setup: func(ctx context.Context, job dist.Job) (dist.EvalFunc, error) {
			wenv := experiments.NewEnv(job.Preset, env.CacheDir, env.Sink)
			wenv.Scale.Workers = env.Scale.Workers
			sc, err := fault.Parse(job.Scenario)
			if err != nil {
				return nil, fmt.Errorf("job scenario: %w", err)
			}
			obs.Logf(env.Sink, "worker: preparing %s/%s model", job.Preset, job.Dataset)
			net, err := wenv.Pretrained(ctx, job.Dataset)
			if err != nil {
				return nil, err
			}
			_, test := wenv.Dataset(job.Dataset)
			eval := wenv.DefectEval()
			eval.Runs = job.Runs
			eval.Batch = job.Batch
			eval.Scenario = sc
			return func(ctx context.Context, l dist.Lease) ([]float64, error) {
				if o.slowMs > 0 {
					select {
					case <-time.After(time.Duration(o.slowMs) * time.Millisecond):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				c := eval
				c.Seed = l.Seed
				return core.EvalDefectRuns(ctx, net, test, l.Rate, l.Start, l.End, c)
			}, nil
		},
	}
	err := dist.RunWorker(ctx, cfg)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ftpim: worker interrupted, exiting")
		return nil
	}
	return err
}
