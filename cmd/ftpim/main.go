// Command ftpim regenerates the paper's tables and figures and runs
// the ablation studies.
//
// Usage:
//
//	ftpim table1 [-preset repro] [-dataset c10|c100|both] [-cache DIR] [-csv]
//	ftpim table2 [-preset repro] [-cache DIR]
//	ftpim fig2   [-preset repro] [-dataset c10|c100|both] [-cache DIR] [-csv]
//	ftpim ablation [-preset repro] [-which ladder|resample|crossbar] [-cache DIR]
//	ftpim device draw|eval|retrain [-psa RATE] [-profile FILE] [-dataset c10]
//	ftpim all    [-preset repro] [-cache DIR] [-out DIR]
//
// The default preset ("repro") is the scaled-down reproduction
// described in DESIGN.md; "paper" runs the full-scale protocol (slow);
// "quick" is a seconds-scale run and "smoke" a sub-second one.
//
// -workers N parallelizes the defect-evaluation Monte-Carlo loop and
// the large tensor kernels over N goroutines (default: all cores).
// Results are bit-identical at every worker count; -workers 1 is the
// exact legacy serial path.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/report"
	"github.com/ftpim/ftpim/internal/reram"
	"github.com/ftpim/ftpim/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	verb := ""
	if cmd == "device" && len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		verb, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	preset := fs.String("preset", "repro", "experiment scale: smoke, quick, repro, or paper")
	cache := fs.String("cache", ".cache", "model cache directory (empty to disable)")
	dataset := fs.String("dataset", "both", "dataset: c10, c100, or both")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	which := fs.String("which", "ladder", "ablation: ladder, resample, or crossbar")
	psa := fs.Float64("psa", 0.01, "device: per-cell stuck-at rate when drawing a profile")
	profile := fs.String("profile", "device.profile", "device: profile file path")
	outDir := fs.String("out", "results", "output directory for 'all'")
	verbose := fs.Bool("v", true, "log training progress")
	workers := fs.Int("workers", runtime.NumCPU(),
		"worker goroutines for defect evaluation and sharded kernels (1 = serial legacy path; results are identical at any count)")

	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	tensor.SetWorkers(*workers)
	env := experiments.NewEnv(*preset, *cache, logf)
	env.Scale.Workers = *workers

	datasets := []string{"c10", "c100"}
	switch *dataset {
	case "c10":
		datasets = []string{"c10"}
	case "c100":
		datasets = []string{"c100"}
	case "both":
	default:
		fatalf("unknown dataset %q", *dataset)
	}
	switch cmd {
	case "table1":
		for _, ds := range datasets {
			emitTable(os.Stdout, experiments.Table1(env, ds).Table(), *csv)
		}
	case "table2":
		emitTable(os.Stdout, experiments.Table2(env).Table(), *csv)
	case "fig2":
		for _, ds := range datasets {
			res := experiments.Figure2(env, ds)
			if *csv {
				fmt.Print(res.CSV())
			} else {
				fmt.Print(res.Plot())
			}
		}
	case "ablation":
		runAblation(env, *which)
	case "device":
		runDevice(env, verb, *dataset, *psa, *profile)
	case "all":
		runAll(env, *outDir)
	case "help", "-h", "--help":
		usage()
	default:
		fatalf("unknown command %q", cmd)
	}
}

func emitTable(w io.Writer, t *report.Table, csv bool) {
	if csv {
		t.RenderCSV(w)
	} else {
		t.Render(w)
		fmt.Fprintln(w)
	}
}

func runAblation(env *experiments.Env, which string) {
	switch which {
	case "ladder":
		rows := experiments.AblationLadder(env, "c10", 0.1, 4)
		experiments.LadderTable(rows, 0.1).Render(os.Stdout)
	case "resample":
		res := experiments.AblationResample(env, "c10", 0.1)
		t := report.NewTable("A2: fault resampling granularity at Psa^T=0.1",
			"variant", "clean acc %", "defect acc % @0.1")
		t.AddRow("per-epoch", f2(res.PerEpochCleanAcc), f2(res.PerEpochDefectAcc))
		t.AddRow("per-batch", f2(res.PerBatchCleanAcc), f2(res.PerBatchDefectAcc))
		t.Render(os.Stdout)
	case "crossbar":
		res := experiments.AblationCrossbar(env, "c10", 0.01, reram.DefaultMapOptions())
		t := report.NewTable("A3: weight-level fault model vs circuit-level crossbar (Psa=0.01)",
			"measurement", "accuracy %")
		t.AddRow("digital weights (clean)", f2(res.CleanAcc))
		t.AddRow("crossbar, quantized, fault-free", f2(res.QuantizedAcc))
		t.AddRow("weight-level stuck-at injection", f2(res.WeightLevelAcc))
		t.AddRow("circuit-level per-cell fault maps", f2(res.CircuitAcc))
		t.Render(os.Stdout)
	default:
		fatalf("unknown ablation %q", which)
	}
}

// runDevice implements the per-device fleet workflow: draw a defect
// profile for one manufactured unit (as a march-test station would),
// archive it, and evaluate or fault-aware-retrain the golden model
// against it.
func runDevice(env *experiments.Env, verb, dataset string, psa float64, profile string) {
	if dataset == "both" {
		dataset = "c10"
	}
	if verb == "" {
		fatalf("device needs a verb: draw | eval | retrain")
	}
	net := env.Pretrained(dataset)
	_, test := env.Dataset(dataset)
	weights := core.WeightTensors(net)
	switch verb {
	case "draw":
		rng := tensor.NewRNG(env.Scale.Seed).Stream("device-profile")
		dm := fault.DrawDeviceMap(rng, fault.ChenModel(), weights, psa)
		f, err := os.Create(profile)
		if err != nil {
			fatalf("create %s: %v", profile, err)
		}
		defer f.Close()
		if err := dm.Save(f); err != nil {
			fatalf("save profile: %v", err)
		}
		fmt.Printf("drew device profile: %d stuck cells at Psa=%g -> %s\n", dm.NumFaults(), psa, profile)
	case "eval", "retrain":
		f, err := os.Open(profile)
		if err != nil {
			fatalf("open %s: %v (run 'ftpim device draw' first)", profile, err)
		}
		dm, err := fault.LoadDeviceMap(f)
		f.Close()
		if err != nil {
			fatalf("load profile: %v", err)
		}
		acc := core.EvalOnDevice(net, test, dm, 128)
		fmt.Printf("golden model on this device: %.2f%%\n", acc*100)
		if verb == "retrain" {
			train, _ := env.Dataset(dataset)
			cfg := core.Config{
				Epochs: env.Scale.FTEpochs, Batch: env.Scale.Batch,
				LR: env.Scale.FTLR, Momentum: env.Scale.Momentum,
				WeightDecay: env.Scale.WeightDecay, Aug: env.Scale.Aug,
				Seed: env.Scale.Seed + 97,
			}
			copyNet := env.Pretrained(dataset) // retrain a copy via snapshot
			snap := copyNet.Snapshot()
			core.FaultAwareRetrain(copyNet, train, cfg, dm)
			after := core.EvalOnDevice(copyNet, test, dm, 128)
			if err := copyNet.Restore(snap); err != nil {
				fatalf("restore golden model: %v", err)
			}
			fmt.Printf("after fault-aware retraining [5]:  %.2f%%\n", after*100)
		}
	default:
		fatalf("unknown device verb %q", verb)
	}
}

func runAll(env *experiments.Env, outDir string) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fatalf("mkdir %s: %v", outDir, err)
	}
	write := func(name, content string) {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatalf("write %s: %v", path, err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	for _, ds := range []string{"c10", "c100"} {
		t1 := experiments.Table1(env, ds)
		var txt, csv strings.Builder
		t1.Table().Render(&txt)
		t1.Table().RenderCSV(&csv)
		write("table1-"+ds+".txt", txt.String())
		write("table1-"+ds+".csv", csv.String())

		f2r := experiments.Figure2(env, ds)
		write("figure2-"+ds+".csv", f2r.CSV())
		write("figure2-"+ds+".txt", f2r.Plot())
	}
	t2 := experiments.Table2(env)
	var txt, csv strings.Builder
	t2.Table().Render(&txt)
	t2.Table().RenderCSV(&csv)
	write("table2.txt", txt.String())
	write("table2.csv", csv.String())

	var ab strings.Builder
	rows := experiments.AblationLadder(env, "c10", 0.1, 4)
	experiments.LadderTable(rows, 0.1).Render(&ab)
	res := experiments.AblationResample(env, "c10", 0.1)
	fmt.Fprintf(&ab, "\nA2: per-epoch clean %.2f%% defect %.2f%% | per-batch clean %.2f%% defect %.2f%%\n",
		res.PerEpochCleanAcc, res.PerEpochDefectAcc, res.PerBatchCleanAcc, res.PerBatchDefectAcc)
	cb := experiments.AblationCrossbar(env, "c10", 0.01, reram.DefaultMapOptions())
	fmt.Fprintf(&ab, "\nA3 @Psa=0.01: clean %.2f%% | quantized %.2f%% | weight-level %.2f%% | circuit %.2f%%\n",
		cb.CleanAcc, cb.QuantizedAcc, cb.WeightLevelAcc, cb.CircuitAcc)
	write("ablations.txt", ab.String())
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "ftpim: "+format+"\n", a...)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `ftpim — fault-tolerant DNNs for ReRAM PIM: experiment runner

commands:
  table1    regenerate Table I (defect accuracy vs testing fault rate)
  table2    regenerate Table II (Stability Score, dense vs ADMM-pruned)
  fig2      regenerate Figure 2 (pruned-model fragility, no FT training)
  ablation  run an ablation study (-which ladder|resample|crossbar)
  device    per-device workflow: draw | eval | retrain (-psa, -profile)
  all       regenerate everything into -out DIR

common flags: -preset smoke|quick|repro|paper   -cache DIR   -dataset c10|c100|both   -workers N`)
}
