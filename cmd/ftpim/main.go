// Command ftpim regenerates the paper's tables and figures and runs
// the ablation studies.
//
// Usage:
//
//	ftpim table1 [-preset repro] [-dataset c10|c100|both] [-cache DIR] [-csv]
//	ftpim table2 [-preset repro] [-cache DIR]
//	ftpim fig2   [-preset repro] [-dataset c10|c100|both] [-cache DIR] [-csv]
//	ftpim ablation [-preset repro] [-which ladder|resample|crossbar] [-cache DIR]
//	ftpim scenarios [-preset repro] [-dataset c10] [-csv] [SPEC ...]
//	ftpim device draw|eval|retrain [-psa RATE] [-profile FILE] [-dataset c10]
//	ftpim all    [-preset repro] [-cache DIR] [-out DIR]
//	ftpim serve  [-addr HOST:PORT] [-max-batch N] [-batch-window D] [-queue N]
//	             [-executors N] [-model FILE.ftpm] [-loadtest [-lt-clients N]
//	             [-lt-requests N] [-bench-out FILE]]
//	ftpim export [-preset repro] [-dataset c10] [-o FILE.ftpm] [-calib N]
//	ftpim quantbench [-preset repro] [-dataset c10] [-calib N]
//	             [-lt-clients N] [-lt-requests N] [-bench-out FILE]
//	ftpim coordinator [-addr HOST:PORT] [-dist-lease N] [-dist-lease-ttl D]
//	             [-dist-fallback-after D] [-runs N] [-checkpoint DIR [-resume]]
//	ftpim worker -connect HOST:PORT [-worker-id ID] [-dist-slow-ms N]
//	ftpim version
//
// The default preset ("repro") is the scaled-down reproduction
// described in DESIGN.md; "paper" runs the full-scale protocol (slow);
// "quick" is a seconds-scale run and "smoke" a sub-second one.
//
// -fault SPEC selects the stuck-at fault scenario every command
// injects from — "chen" (the paper's i.i.d. ratios, the default),
// "transient[:r0=..,r1=..]" (fresh lesion per forward pass),
// "cluster[:len=..,tile=..,r0=..,r1=..]" (row-burst defects), or
// "drop" (SA0-only transient, the drop-connect distribution). Specs
// are parsed by fault.Parse; 'ftpim scenarios' cross-evaluates the FT
// schemes under every built-in scenario (or the specs given as
// positional arguments).
//
// -numerics exact|fast selects the GEMM tier: "exact" is the
// bitwise-pinned scalar order every byte-identity contract (caching,
// checkpoint resume, distributed sweeps) is defined against; "fast"
// dispatches to AVX2+FMA microkernels that are ULP-pinned against
// exact and 2-8x faster. Empty inherits FTPIM_NUMERICS (default
// exact). Requesting fast on a host without AVX2+FMA warns and runs
// exact. coordinator/worker always force exact: a fleet cannot
// guarantee a uniform tier, and the folded table must stay
// byte-identical to the single-process sweep.
//
// -workers N parallelizes the defect-evaluation Monte-Carlo loop and
// the large tensor kernels over N goroutines (default: all cores).
// Results are bit-identical at every worker count; -workers 1 is the
// exact legacy serial path.
//
// -events FILE streams every run event as schema-versioned JSON Lines
// (one object per line, schema "ftpim.events/v1") alongside the human
// progress output on stderr.
//
// Ctrl-C (SIGINT) cancels the run at the next batch or Monte-Carlo run
// boundary: partially trained models are not cached, the model cache is
// never left with a truncated entry, and the process exits with status
// 130.
//
// serve exposes the trained model as a long-running HTTP service
// (POST /v1/infer, POST /v1/defect-eval, GET /v1/healthz): concurrent
// inference requests are coalesced into micro-batches under a
// -batch-window latency budget, overload answers 429 + Retry-After,
// and SIGTERM/Ctrl-C drains gracefully — admission stops, queued
// batches flush, in-flight requests complete, exit 0. With -loadtest
// the process instead drives an in-process load test against its own
// handler and reports p50/p99 latency and throughput (optionally
// recorded to -bench-out as JSON).
//
// export quantizes the trained float model to int8 (symmetric,
// per-row weight scales, activation scales calibrated on -calib
// training images) and writes it as a single FTPM container file.
// serve -model FILE.ftpm serves that file without touching training
// or the gob cache: the file is mmap'd read-only and the int8 weights
// alias the mapped pages, so cold start is file-open fast. quantbench
// measures the int8 path's three claims — accuracy parity with
// float32, cold-start speedup over the gob cache, and serving
// throughput — into results/BENCH_quant.json.
//
// coordinator/worker distribute a defect sweep across processes: the
// coordinator shards each rate's Monte-Carlo runs into leases and
// serves them over TCP; workers rebuild the identical model from the
// job's preset+dataset (training is deterministic) and stream per-run
// accuracies back. The folded table is byte-identical to the
// single-process sweep at any worker count and under any worker kill
// schedule: a worker that dies or stalls past -dist-lease-ttl has its
// leases re-issued, a pool that stays empty past -dist-fallback-after
// degrades to in-process evaluation, and SIGTERM drains cleanly
// (completed rates are rendered, exit 0). With -checkpoint DIR the
// coordinator snapshots folded results after every lease and a
// restart with -resume continues where it left off.
//
// -checkpoint DIR enables crash-safe checkpointing: every training run
// snapshots its full state (weights, optimizer velocity, BN statistics,
// RNG cursor, epoch history) to DIR at epoch boundaries, every
// -ckpt-every epochs, and Ctrl-C flushes the last boundary before the
// process exits. Re-running the same command with -resume continues
// from the newest intact checkpoint and produces bit-identical results
// to the uninterrupted run; torn or bit-flipped checkpoint files fail
// their checksums and fall back to the previous good snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/ftpim/ftpim/internal/ckpt"
	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/ftpm"
	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/report"
	"github.com/ftpim/ftpim/internal/reram"
	"github.com/ftpim/ftpim/internal/tensor"
)

func main() {
	os.Exit(run())
}

// run is main's body with an explicit exit code so deferred cleanup
// (the -events file, signal teardown) executes before the process
// exits: 0 success, 1 error, 2 usage, 130 interrupted (128 + SIGINT).
func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	cmd, args := os.Args[1], os.Args[2:]
	if cmd == "version" || cmd == "-version" || cmd == "--version" {
		printVersion(os.Stdout)
		return 0
	}
	verb := ""
	if cmd == "device" && len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		verb, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	preset := fs.String("preset", "repro", "experiment scale: smoke, quick, repro, or paper")
	cache := fs.String("cache", ".cache", "model cache directory (empty to disable)")
	dataset := fs.String("dataset", "both", "dataset: c10, c100, or both")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	which := fs.String("which", "ladder", "ablation: ladder, resample, or crossbar")
	psa := fs.Float64("psa", 0.01, "device: per-cell stuck-at rate when drawing a profile")
	profile := fs.String("profile", "device.profile", "device: profile file path")
	outDir := fs.String("out", "results", "output directory for 'all'")
	faultSpec := fs.String("fault", "",
		"fault scenario spec (name[:key=value,...], e.g. chen, transient, cluster:len=8, drop); empty = chen defaults")
	verbose := fs.Bool("v", true, "log training progress")
	events := fs.String("events", "", "write schema-versioned JSONL run events to FILE")
	numerics := fs.String("numerics", "",
		"GEMM tier: exact (bitwise-pinned scalar) or fast (AVX2+FMA, ULP-pinned vs exact); empty = $FTPIM_NUMERICS or exact")
	workers := fs.Int("workers", runtime.NumCPU(),
		"worker goroutines for defect evaluation and sharded kernels (1 = serial legacy path; results are identical at any count)")
	checkpoint := fs.String("checkpoint", "",
		"crash-safe checkpoint directory: every training run snapshots its full state there (empty to disable)")
	ckptEvery := fs.Int("ckpt-every", 1, "epochs between checkpoint writes")
	resume := fs.Bool("resume", false,
		"resume interrupted training runs from the newest intact checkpoint in -checkpoint")
	addr := fs.String("addr", "127.0.0.1:8080", "serve: listen address")
	maxBatch := fs.Int("max-batch", 32, "serve: largest inference micro-batch")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond,
		"serve: micro-batch latency budget, measured from the first queued request")
	queueDepth := fs.Int("queue", 256, "serve: infer admission queue depth (full queue answers 429)")
	executors := fs.Int("executors", 2, "serve: concurrent batch executors, one warm model clone each")
	loadtest := fs.Bool("loadtest", false,
		"serve: skip listening and drive an in-process load test instead")
	ltClients := fs.Int("lt-clients", 1000, "serve -loadtest: concurrent clients")
	ltRequests := fs.Int("lt-requests", 4, "serve -loadtest: infer requests per client")
	ltEvalEvery := fs.Int("lt-eval-every", 0,
		"serve -loadtest: mix in one defect-eval per client every N infer requests (0 = none)")
	benchOut := fs.String("bench-out", "",
		"serve -loadtest: write the load-test record (JSON) to FILE; quantbench: record path (default results/BENCH_quant.json)")
	modelFile := fs.String("model", "",
		"serve: serve a quantized FTPM model file zero-copy (skips training and the gob cache; Monte-Carlo endpoints answer 501)")
	exportOut := fs.String("o", "", "export: output FTPM path (default model-DATASET.ftpm)")
	calibN := fs.Int("calib", 256,
		"export/quantbench: calibration images drawn from the train split for activation scales")
	connect := fs.String("connect", "", "worker: coordinator address (HOST:PORT)")
	workerID := fs.String("worker-id", "", "worker: pool id (default: host-pid)")
	distLease := fs.Int("dist-lease", 8, "coordinator: Monte-Carlo runs per lease")
	distLeaseTTL := fs.Duration("dist-lease-ttl", 10*time.Second,
		"coordinator: lease heartbeat deadline; a silent lease is re-issued after this")
	distFallback := fs.Duration("dist-fallback-after", 3*time.Second,
		"coordinator: how long the worker pool may be empty before leases run in-process")
	distRuns := fs.Int("runs", 0,
		"coordinator: override the preset's Monte-Carlo runs per rate (0 = preset default)")
	distSlowMs := fs.Int("dist-slow-ms", 0,
		"worker: artificial delay per lease in milliseconds (failover testing aid)")

	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Validate flag combinations up front: a sweep that runs for hours
	// must not discover an unusable flag value at its first write.
	if *workers < 0 {
		return usageErr("-workers must be >= 0, got %d", *workers)
	}
	if *ckptEvery < 1 {
		return usageErr("-ckpt-every must be >= 1, got %d", *ckptEvery)
	}
	if *resume && *checkpoint == "" {
		return usageErr("-resume requires -checkpoint DIR")
	}
	if *checkpoint != "" {
		if err := probeWritableDir(*checkpoint); err != nil {
			return usageErr("-checkpoint %s is not writable: %v", *checkpoint, err)
		}
	}
	if *maxBatch < 1 {
		return usageErr("-max-batch must be >= 1, got %d", *maxBatch)
	}
	if *batchWindow < 0 {
		return usageErr("-batch-window must be >= 0, got %v", *batchWindow)
	}
	if *queueDepth < 1 {
		return usageErr("-queue must be >= 1, got %d", *queueDepth)
	}
	if *executors < 1 {
		return usageErr("-executors must be >= 1, got %d", *executors)
	}
	if *loadtest && (*ltClients < 1 || *ltRequests < 1) {
		return usageErr("-lt-clients and -lt-requests must be >= 1")
	}
	if *distLease < 1 {
		return usageErr("-dist-lease must be >= 1, got %d", *distLease)
	}
	if *distLeaseTTL <= 0 || *distFallback <= 0 {
		return usageErr("-dist-lease-ttl and -dist-fallback-after must be positive")
	}
	if *distRuns < 0 || *distSlowMs < 0 {
		return usageErr("-runs and -dist-slow-ms must be >= 0")
	}
	if *calibN < 1 {
		return usageErr("-calib must be >= 1, got %d", *calibN)
	}
	if *modelFile != "" && cmd != "serve" {
		return usageErr("-model is a serve flag")
	}
	if *numerics != "" {
		n, nerr := tensor.ParseNumerics(*numerics)
		if nerr != nil {
			return usageErr("-numerics: %v", nerr)
		}
		if n == tensor.NumericsFast && (cmd == "coordinator" || cmd == "worker") {
			return usageErr("-numerics=fast is not allowed for %s: the distributed sweep is a byte-identity contract and a mixed fleet cannot guarantee one tier", cmd)
		}
		tensor.SetNumerics(n)
	}
	if cmd == "coordinator" || cmd == "worker" {
		// The dist protocol promises the folded table is byte-identical
		// to the single-process sweep, which only holds if every process
		// in the fleet runs the same tier; exact is the one tier every
		// host has, so force it even over an inherited FTPIM_NUMERICS.
		if prev := tensor.SetNumerics(tensor.NumericsExact); prev != tensor.NumericsExact {
			fmt.Fprintf(os.Stderr, "ftpim: %s forces exact numerics (FTPIM_NUMERICS requested %s)\n", cmd, prev)
		}
	} else if tensor.RequestedNumerics() == tensor.NumericsFast && !tensor.FastSupported() {
		fmt.Fprintln(os.Stderr, "ftpim: fast numerics requested but this CPU lacks AVX2+FMA; running exact")
	}
	var scenario fault.Scenario
	if *faultSpec != "" {
		var perr error
		if scenario, perr = fault.Parse(*faultSpec); perr != nil {
			return usageErr("-fault: %v", perr)
		}
	}

	var sinks []obs.Sink
	if *verbose {
		sinks = append(sinks, obs.NewProgress(os.Stderr))
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftpim: create %s: %v\n", *events, err)
			return 1
		}
		defer f.Close()
		sinks = append(sinks, obs.NewJSONL(f))
	}
	if n := crashAfterFromEnv(); n > 0 {
		sinks = append(sinks, newCrashAfterSink(n))
	}
	sink := obs.Multi(sinks...)

	// One-shot startup event so every progress stream and JSONL event
	// file records which numerics tier produced its numbers (and why,
	// when a requested fast tier had to demote to exact).
	if sink.Enabled() {
		sink.Emit(obs.Event{
			Kind:  obs.KindNumerics,
			Phase: tensor.ActiveNumerics().String(),
			Key:   tensor.RequestedNumerics().String(),
			Msg:   tensor.CPUFeatures(),
		})
	}

	// SIGINT/SIGTERM cancel the context; every training batch and
	// Monte-Carlo run checks it, so interruption lands on a clean
	// boundary. A second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tensor.SetWorkers(*workers)
	env := experiments.NewEnv(*preset, *cache, sink)
	env.Scale.Workers = *workers
	env.Scenario = scenario
	if *checkpoint != "" {
		env.Ckpt = ckpt.NewStore(*checkpoint, ckpt.DefaultKeep, *resume, sink)
		env.CkptEvery = *ckptEvery
	}

	datasets := []string{"c10", "c100"}
	switch *dataset {
	case "c10":
		datasets = []string{"c10"}
	case "c100":
		datasets = []string{"c100"}
	case "both":
	default:
		return fail("unknown dataset %q", *dataset)
	}
	var err error
	switch cmd {
	case "table1":
		for _, ds := range datasets {
			var res *experiments.Table1Result
			if res, err = experiments.Table1(ctx, env, ds); err != nil {
				break
			}
			emitTable(os.Stdout, res.Table(), *csv)
		}
	case "table2":
		var res *experiments.Table2Result
		if res, err = experiments.Table2(ctx, env); err == nil {
			emitTable(os.Stdout, res.Table(), *csv)
		}
	case "fig2":
		for _, ds := range datasets {
			var res *experiments.Figure2Result
			if res, err = experiments.Figure2(ctx, env, ds); err != nil {
				break
			}
			if *csv {
				fmt.Print(res.CSV())
			} else {
				fmt.Print(res.Plot())
			}
		}
	case "ablation":
		err = runAblation(ctx, env, *which)
	case "scenarios":
		err = runScenarios(ctx, env, *dataset, *csv, fs.Args())
	case "device":
		err = runDevice(ctx, env, verb, *dataset, *psa, *profile)
	case "all":
		err = runAll(ctx, env, *outDir)
	case "serve":
		err = runServe(ctx, env, *dataset, serveOpts{
			addr: *addr, maxBatch: *maxBatch, batchWindow: *batchWindow,
			queue: *queueDepth, executors: *executors, model: *modelFile,
			loadtest: *loadtest, ltClients: *ltClients, ltRequests: *ltRequests,
			ltEvalEvery: *ltEvalEvery, benchOut: *benchOut,
		})
	case "export":
		err = runExport(ctx, env, *dataset, *exportOut, *calibN)
	case "quantbench":
		err = runQuantBench(ctx, env, *dataset, quantBenchOpts{
			preset: *preset, cache: *cache, out: *benchOut, calibN: *calibN,
			clients: *ltClients, requests: *ltRequests,
		})
	case "coordinator":
		err = runCoordinator(ctx, env, *dataset, distOpts{
			addr: *addr, leaseRuns: *distLease, leaseTTL: *distLeaseTTL,
			fallbackAfter: *distFallback, runs: *distRuns,
		})
	case "worker":
		err = runWorker(ctx, env, distOpts{
			connect: *connect, workerID: *workerID, slowMs: *distSlowMs,
		})
	case "help", "-h", "--help":
		usage()
		return 0
	default:
		return fail("unknown command %q", cmd)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ftpim: interrupted")
			return 130
		}
		return fail("%v", err)
	}
	return 0
}

func emitTable(w io.Writer, t *report.Table, csv bool) {
	if csv {
		t.RenderCSV(w)
	} else {
		t.Render(w)
		fmt.Fprintln(w)
	}
}

func runAblation(ctx context.Context, env *experiments.Env, which string) error {
	switch which {
	case "ladder":
		rows, err := experiments.AblationLadder(ctx, env, "c10", 0.1, 4)
		if err != nil {
			return err
		}
		experiments.LadderTable(rows, 0.1).Render(os.Stdout)
	case "resample":
		res, err := experiments.AblationResample(ctx, env, "c10", 0.1)
		if err != nil {
			return err
		}
		t := report.NewTable("A2: fault resampling granularity at Psa^T=0.1",
			"variant", "clean acc %", "defect acc % @0.1")
		t.AddRow("per-epoch", f2(res.PerEpochCleanAcc), f2(res.PerEpochDefectAcc))
		t.AddRow("per-batch", f2(res.PerBatchCleanAcc), f2(res.PerBatchDefectAcc))
		t.Render(os.Stdout)
	case "crossbar":
		res, err := experiments.AblationCrossbar(ctx, env, "c10", 0.01, reram.DefaultMapOptions())
		if err != nil {
			return err
		}
		t := report.NewTable("A3: weight-level fault model vs circuit-level crossbar (Psa=0.01)",
			"measurement", "accuracy %")
		t.AddRow("digital weights (clean)", f2(res.CleanAcc))
		t.AddRow("crossbar, quantized, fault-free", f2(res.QuantizedAcc))
		t.AddRow("weight-level stuck-at injection", f2(res.WeightLevelAcc))
		t.AddRow("circuit-level per-cell fault maps", f2(res.CircuitAcc))
		t.Render(os.Stdout)
	default:
		return fmt.Errorf("unknown ablation %q", which)
	}
	return nil
}

// runScenarios cross-evaluates the FT schemes under each fault
// scenario (positional args as specs; none = every built-in) and
// renders the stability table.
func runScenarios(ctx context.Context, env *experiments.Env, dataset string, csv bool, specs []string) error {
	if dataset == "both" {
		dataset = "c10"
	}
	res, err := experiments.ScenarioSweep(ctx, env, dataset, specs)
	if err != nil {
		return err
	}
	emitTable(os.Stdout, res.Table(), csv)
	return nil
}

// runDevice implements the per-device fleet workflow: draw a defect
// profile for one manufactured unit (as a march-test station would),
// archive it, and evaluate or fault-aware-retrain the golden model
// against it.
func runDevice(ctx context.Context, env *experiments.Env, verb, dataset string, psa float64, profile string) error {
	if dataset == "both" {
		dataset = "c10"
	}
	if verb == "" {
		return errors.New("device needs a verb: draw | eval | retrain")
	}
	net, err := env.Pretrained(ctx, dataset)
	if err != nil {
		return err
	}
	_, test := env.Dataset(dataset)
	weights := core.WeightTensors(net)
	switch verb {
	case "draw":
		// The profile is drawn from the selected fault scenario (-fault);
		// the default chen scenario reproduces the historical
		// DrawDeviceMap(ChenModel()) stream byte for byte.
		sc := env.Scenario
		if sc == nil {
			sc = fault.Default()
		}
		rng := tensor.NewRNG(env.Scale.Seed).Stream("device-profile")
		dm := sc.DrawMap(rng, weights, psa)
		f, err := os.Create(profile)
		if err != nil {
			return fmt.Errorf("create %s: %v", profile, err)
		}
		defer f.Close()
		if err := dm.Save(f); err != nil {
			return fmt.Errorf("save profile: %v", err)
		}
		fmt.Printf("drew device profile: %d stuck cells at Psa=%g -> %s\n", dm.NumFaults(), psa, profile)
	case "eval", "retrain":
		f, err := os.Open(profile)
		if err != nil {
			return fmt.Errorf("open %s: %v (run 'ftpim device draw' first)", profile, err)
		}
		dm, err := fault.LoadDeviceMap(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load profile: %v", err)
		}
		acc, err := core.EvalOnDevice(ctx, net, test, dm, 128)
		if err != nil {
			return err
		}
		fmt.Printf("golden model on this device: %.2f%%\n", acc*100)
		if verb == "retrain" {
			train, _ := env.Dataset(dataset)
			cfg := core.Config{
				Epochs: env.Scale.FTEpochs, Batch: env.Scale.Batch,
				LR: env.Scale.FTLR, Momentum: env.Scale.Momentum,
				WeightDecay: env.Scale.WeightDecay, Aug: env.Scale.Aug,
				Seed: env.Scale.Seed + 97, Sink: env.Sink,
			}
			if env.Ckpt != nil {
				cfg.Ckpt = env.Ckpt.Run("device-retrain-" + dataset)
				cfg.CkptEvery = env.CkptEvery
			}
			copyNet, err := env.Pretrained(ctx, dataset) // retrain a copy via snapshot
			if err != nil {
				return err
			}
			snap := copyNet.Snapshot()
			if _, err := core.FaultAwareRetrain(ctx, copyNet, train, cfg, dm); err != nil {
				if rerr := copyNet.Restore(snap); rerr != nil {
					return fmt.Errorf("restore golden model: %v", rerr)
				}
				return err
			}
			after, aerr := core.EvalOnDevice(ctx, copyNet, test, dm, 128)
			if err := copyNet.Restore(snap); err != nil {
				return fmt.Errorf("restore golden model: %v", err)
			}
			if aerr != nil {
				return aerr
			}
			fmt.Printf("after fault-aware retraining [5]:  %.2f%%\n", after*100)
			if cfg.Ckpt != nil {
				cfg.Ckpt.Clear() // retrain finished; its checkpoints are dead weight
			}
		}
	default:
		return fmt.Errorf("unknown device verb %q", verb)
	}
	return nil
}

func runAll(ctx context.Context, env *experiments.Env, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("mkdir %s: %v", outDir, err)
	}
	write := func(name, content string) error {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return fmt.Errorf("write %s: %v", path, err)
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	for _, ds := range []string{"c10", "c100"} {
		t1, err := experiments.Table1(ctx, env, ds)
		if err != nil {
			return err
		}
		var txt, csv strings.Builder
		t1.Table().Render(&txt)
		t1.Table().RenderCSV(&csv)
		if err := write("table1-"+ds+".txt", txt.String()); err != nil {
			return err
		}
		if err := write("table1-"+ds+".csv", csv.String()); err != nil {
			return err
		}

		f2r, err := experiments.Figure2(ctx, env, ds)
		if err != nil {
			return err
		}
		if err := write("figure2-"+ds+".csv", f2r.CSV()); err != nil {
			return err
		}
		if err := write("figure2-"+ds+".txt", f2r.Plot()); err != nil {
			return err
		}
	}
	t2, err := experiments.Table2(ctx, env)
	if err != nil {
		return err
	}
	var txt, csv strings.Builder
	t2.Table().Render(&txt)
	t2.Table().RenderCSV(&csv)
	if err := write("table2.txt", txt.String()); err != nil {
		return err
	}
	if err := write("table2.csv", csv.String()); err != nil {
		return err
	}

	sres, err := experiments.ScenarioSweep(ctx, env, "c10", nil)
	if err != nil {
		return err
	}
	var stxt, scsv strings.Builder
	sres.Table().Render(&stxt)
	sres.Table().RenderCSV(&scsv)
	if err := write("stability-scenarios.txt", stxt.String()); err != nil {
		return err
	}
	if err := write("stability-scenarios.csv", scsv.String()); err != nil {
		return err
	}

	var ab strings.Builder
	rows, err := experiments.AblationLadder(ctx, env, "c10", 0.1, 4)
	if err != nil {
		return err
	}
	experiments.LadderTable(rows, 0.1).Render(&ab)
	res, err := experiments.AblationResample(ctx, env, "c10", 0.1)
	if err != nil {
		return err
	}
	fmt.Fprintf(&ab, "\nA2: per-epoch clean %.2f%% defect %.2f%% | per-batch clean %.2f%% defect %.2f%%\n",
		res.PerEpochCleanAcc, res.PerEpochDefectAcc, res.PerBatchCleanAcc, res.PerBatchDefectAcc)
	cb, err := experiments.AblationCrossbar(ctx, env, "c10", 0.01, reram.DefaultMapOptions())
	if err != nil {
		return err
	}
	fmt.Fprintf(&ab, "\nA3 @Psa=0.01: clean %.2f%% | quantized %.2f%% | weight-level %.2f%% | circuit %.2f%%\n",
		cb.CleanAcc, cb.QuantizedAcc, cb.WeightLevelAcc, cb.CircuitAcc)
	return write("ablations.txt", ab.String())
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func fail(format string, a ...any) int {
	fmt.Fprintf(os.Stderr, "ftpim: "+format+"\n", a...)
	return 1
}

// printVersion reports the build plus this host's numeric
// capabilities: the active GEMM tier and the CPU vector features
// backing the fast tier, so "which tier will this machine run?" is
// answerable without starting an experiment.
func printVersion(w io.Writer) {
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	cpu := tensor.CPUFeatures()
	if cpu == "" {
		cpu = "none"
	}
	tier := tensor.ActiveNumerics().String()
	if tensor.FastSupported() {
		tier += " (fast tier available)"
	} else {
		tier += " (fast tier unavailable)"
	}
	fmt.Fprintf(w, "ftpim %s %s %s/%s\nnumerics: %s\ncpu features: %s\nmodel format: %s (int8 symmetric, zero-copy mmap)\n",
		version, runtime.Version(), runtime.GOOS, runtime.GOARCH, tier, cpu, ftpm.FormatName)
}

// usageErr reports a flag-validation failure with the usage exit code.
func usageErr(format string, a ...any) int {
	fmt.Fprintf(os.Stderr, "ftpim: "+format+"\n", a...)
	return 2
}

// probeWritableDir verifies dir exists (creating it if needed) and
// accepts writes, by round-tripping a probe file — the cheapest honest
// answer to "will the first checkpoint write succeed?".
func probeWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// crashAfterFromEnv reads FTPIM_CRASH_AFTER_CKPT, the deterministic
// kill switch used by the kill-and-resume CI leg: a positive integer N
// makes the process die with SIGKILL's exit status right after the Nth
// checkpoint reaches disk. Unset, empty, or non-positive disables it.
func crashAfterFromEnv() int {
	v := os.Getenv("FTPIM_CRASH_AFTER_CKPT")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		fmt.Fprintf(os.Stderr, "ftpim: ignoring FTPIM_CRASH_AFTER_CKPT=%q (want a positive integer)\n", v)
		return 0
	}
	return n
}

// crashAfterSink counts ckpt.save events and exits hard — no deferred
// cleanup, exactly like a kill — when the quota is reached. It emulates
// a crash at a reproducible training position, which a real SIGKILL
// cannot do.
type crashAfterSink struct {
	left atomic.Int64
}

func newCrashAfterSink(n int) *crashAfterSink {
	s := &crashAfterSink{}
	s.left.Store(int64(n))
	return s
}

func (s *crashAfterSink) Enabled() bool { return true }

func (s *crashAfterSink) Emit(e obs.Event) {
	if e.Kind == obs.KindCkptSave && s.left.Add(-1) == 0 {
		fmt.Fprintln(os.Stderr, "ftpim: FTPIM_CRASH_AFTER_CKPT quota reached; simulating crash")
		os.Exit(137)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `ftpim — fault-tolerant DNNs for ReRAM PIM: experiment runner

commands:
  table1    regenerate Table I (defect accuracy vs testing fault rate)
  table2    regenerate Table II (Stability Score, dense vs ADMM-pruned)
  fig2      regenerate Figure 2 (pruned-model fragility, no FT training)
  ablation  run an ablation study (-which ladder|resample|crossbar)
  scenarios cross-evaluate FT schemes under each fault scenario
            (positional SPECs, default: chen transient cluster drop)
  device    per-device workflow: draw | eval | retrain (-psa, -profile)
  all       regenerate everything into -out DIR
  serve     HTTP inference + defect-eval service with dynamic
            micro-batching (-addr, -max-batch, -batch-window, -queue,
            -executors; -loadtest for an in-process load test with
            -lt-clients/-lt-requests/-bench-out; -model FILE.ftpm
            serves an exported int8 model zero-copy via mmap)
  export    quantize the trained model to int8 and write one
            mmap-able FTPM file (-o FILE.ftpm, -calib N)
  quantbench  measure int8 vs float32: accuracy parity, cold-start
            speedup (mmap'd FTPM vs gob cache), serving throughput;
            writes results/BENCH_quant.json (-bench-out to override)
  coordinator  shard the defect sweep over TCP workers with lease-based
            failover (-addr, -dist-lease, -dist-lease-ttl,
            -dist-fallback-after, -runs; -checkpoint/-resume for
            restartable sweeps); byte-identical to the single-process
            sweep at any worker count
  worker    join a coordinator's pool (-connect HOST:PORT, -worker-id,
            -dist-slow-ms); dials with jittered exponential backoff
  version   print build, numerics tier, and detected CPU features

common flags: -preset smoke|quick|repro|paper   -cache DIR   -dataset c10|c100|both
              -workers N   -events FILE (JSONL run events)   -v=false (quiet)
              -checkpoint DIR   -ckpt-every N   -resume
              -fault SPEC (fault scenario: chen, transient, cluster:len=8, drop, ...)
              -numerics exact|fast (GEMM tier; fast = AVX2+FMA microkernels,
              ULP-pinned against the bitwise-pinned exact tier; default exact,
              or $FTPIM_NUMERICS; coordinator/worker always run exact)

Ctrl-C cancels at the next batch / Monte-Carlo run boundary (exit 130);
partially trained models are never cached. With -checkpoint DIR every
training run snapshots its full state (weights, optimizer, RNG cursor)
at epoch boundaries, Ctrl-C flushes a final checkpoint before exiting,
and a later run with -resume continues bit-identically from the newest
intact snapshot — torn or corrupted files are detected by checksum and
skipped.`)
}
