package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/ftpm"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/serve"
)

// serveOpts carries the serve-specific flag values from run().
type serveOpts struct {
	addr        string
	maxBatch    int
	batchWindow time.Duration
	queue       int
	executors   int
	model       string // FTPM file to serve instead of the trained float model
	loadtest    bool
	ltClients   int
	ltRequests  int
	ltEvalEvery int
	benchOut    string
}

// runServe starts the HTTP serving front door (or, with -loadtest,
// drives an in-process load test against it and records the results).
// The model is the env's pretrained network for the dataset — cached
// like every other experiment artifact, so a warm cache serves within
// seconds of process start. Cancelling ctx (SIGTERM/SIGINT) stops
// admission, flushes in-flight micro-batches, and returns nil for a
// clean exit 0.
func runServe(ctx context.Context, env *experiments.Env, dataset string, o serveOpts) error {
	if dataset == "both" {
		dataset = "c10"
	}
	cfg := serve.Config{
		MaxBatch:    o.maxBatch,
		BatchWindow: o.batchWindow,
		QueueDepth:  o.queue,
		Executors:   o.executors,
		Eval:        env.DefectEval(),
		Sink:        env.Sink,
	}
	// With -model the process never touches training or the gob cache:
	// the exported FTPM file is mmap'd and its int8 weights serve
	// directly from the page cache. Monte-Carlo endpoints need mutable
	// float planes and answer 501 in this mode.
	var net *nn.Network
	if o.model != "" {
		m, err := ftpm.Load(o.model)
		if err != nil {
			return err
		}
		defer m.Close()
		cfg.Quantized = m.Net
		cfg.ModelFormat = ftpm.FormatName
		src := "read"
		if m.Mapped {
			src = "mmap"
		}
		fmt.Fprintf(os.Stderr, "ftpim: loaded %s (%s/%s, %s) zero-copy via %s\n",
			o.model, m.Meta.Model, m.Meta.Dataset, ftpm.FormatName, src)
	} else {
		var err error
		if net, err = env.Pretrained(ctx, dataset); err != nil {
			return err
		}
	}
	_, test := env.Dataset(dataset)
	s, err := serve.New(net, test, cfg)
	if err != nil {
		return err
	}

	if o.loadtest {
		img := make([]float32, func() int { c, h, w := test.Dims(); return c * h * w }())
		test.Example(0, img)
		fmt.Fprintf(os.Stderr, "ftpim: load test: %d clients x %d requests against %s/%s\n",
			o.ltClients, o.ltRequests, env.Scale.Name, dataset)
		res, err := serve.Load(s.Handler(), serve.LoadOptions{
			Clients:   o.ltClients,
			Requests:  o.ltRequests,
			Image:     img,
			EvalEvery: o.ltEvalEvery,
		})
		s.Drain()
		if err != nil {
			return err
		}
		fmt.Printf("load test: %d ok (%d infer, %d defect-eval), %d retried 429s, %d errors\n",
			res.Requests, res.Infer, res.Evals, res.Rejected, res.Errors)
		fmt.Printf("latency: p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
			res.P50ms, res.P90ms, res.P99ms, res.MaxMs)
		fmt.Printf("throughput: %.1f req/s over %.2fs, mean batch %.2f\n",
			res.Throughput, res.Seconds, res.MeanBatch)
		if o.benchOut != "" {
			if err := serve.WriteBench(o.benchOut, env.Scale.Name, cfg, o.ltClients, o.ltRequests, res); err != nil {
				return fmt.Errorf("write %s: %v", o.benchOut, err)
			}
			fmt.Printf("wrote %s\n", o.benchOut)
		}
		return nil
	}

	fmt.Fprintf(os.Stderr, "ftpim: serving %s/%s on %s (max batch %d, window %s)\n",
		env.Scale.Name, dataset, o.addr, cfg.Normalize().MaxBatch, cfg.Normalize().BatchWindow)
	if err := s.Run(ctx, o.addr); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "ftpim: drained, exiting")
	return nil
}
