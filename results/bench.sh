#!/bin/sh
# Regenerates the raw numbers behind results/BENCH_gemm.json: the packed
# GEMM kernels against the pre-blocking reference kernels (the *Ref*
# benchmarks time the old implementations, which stay in-tree as bitwise
# oracles), plus the sharded-path benchmarks behind BENCH_parallel.json.
# Run from the repository root; paste medians into the JSON by hand.
set -e

echo "== serial kernel before/after (BENCH_gemm.json) =="
go test ./internal/tensor/ -run '^$' -bench '256Serial|MatMul64' \
  -benchtime 25x -count 3 -timeout 30m

echo "== sharded paths (BENCH_parallel.json) =="
go test . -run '^$' -bench 'Parallel' -benchtime 5x -timeout 30m
