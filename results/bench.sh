#!/bin/sh
# Regenerates the raw numbers behind results/BENCH_gemm.json and
# results/BENCH_conv.json: the packed GEMM kernels and the fused
# implicit-GEMM convolution against their materialized reference
# compositions (the *Ref* benchmarks time the old implementations in the
# same binary; both stay in-tree as bitwise oracles), plus the
# sharded-path benchmarks behind BENCH_parallel.json.
#
# The '256Serial' pattern also matches the *Fast256Serial benchmarks,
# which pin the fast (AVX2+FMA) tier for the same shapes — on hosts
# without AVX2+FMA they report SKIP. The exact-tier numbers are what
# the bitwise contracts are defined against; the fast numbers are the
# headline speedups in BENCH_gemm.json.
# Run from the repository root; paste medians into the JSON by hand.
set -e

echo "== serial kernel before/after (BENCH_gemm.json) =="
go test ./internal/tensor/ -run '^$' -bench '256Serial|MatMul64' \
  -benchtime 25x -count 3 -timeout 30m

echo "== fused conv before/after (BENCH_conv.json) =="
go test ./internal/tensor/ -run '^$' -bench 'ConvFwd|ConvBwd' \
  -benchtime 25x -count 3 -timeout 30m

echo "== sharded paths (BENCH_parallel.json) =="
go test . -run '^$' -bench 'Parallel' -benchtime 5x -timeout 30m

echo "== serving layer (BENCH_serve.json) =="
go build -o ftpim ./cmd/ftpim
./ftpim serve -preset smoke -dataset c10 -loadtest \
  -lt-clients 1000 -lt-requests 4 -lt-eval-every 4 \
  -bench-out results/BENCH_serve.json
