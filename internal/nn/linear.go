package nn

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Linear is a fully connected layer: y = x·Wᵀ + b over (N, in) inputs.
// W is stored (out, in) — rows are output neurons, matching the
// crossbar column mapping used by internal/reram.
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param
	lastIn  *tensor.Tensor
	ws      tensor.Workspace // slot 0: forward out; slot 1: dW; slot 2: dX
}

// NewLinear creates a fully connected layer with He initialization.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In: in, Out: out,
		Weight: NewParam(name+".weight", out, in),
		Bias:   NewParam(name+".bias", out),
	}
	l.Bias.Decay = false
	tensor.InitHe(l.Weight.W, rng, in)
	return l
}

// Forward computes y = x·Wᵀ + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear input shape %v, want (N,%d)", x.Shape(), l.In))
	}
	out := l.ws.Get(0, x.Dim(0), l.Out)
	tensor.MatMulTBInto(out, x, l.Weight.W) // (N,in)·(out,in)ᵀ = (N,out)
	bd := l.Bias.W.Data()
	for i := 0; i < out.Dim(0); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += bd[j]
		}
	}
	if train {
		l.lastIn = x
	} else {
		l.lastIn = nil
	}
	return out
}

// Backward accumulates dW = dYᵀ·x and db, returning dX = dY·W.
func (l *Linear) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if l.lastIn == nil {
		panic("nn: Linear.Backward without training Forward")
	}
	dW := l.ws.Get(1, l.Out, l.In)
	tensor.MatMulTAInto(dW, dOut, l.lastIn) // (N,out)ᵀ·(N,in) = (out,in)
	l.Weight.Grad.AddInPlace(dW)
	gd := l.Bias.Grad.Data()
	for i := 0; i < dOut.Dim(0); i++ {
		row := dOut.Row(i)
		for j, v := range row {
			gd[j] += v
		}
	}
	dX := l.ws.Get(2, dOut.Dim(0), l.In)
	tensor.MatMulInto(dX, dOut, l.Weight.W) // (N,out)·(out,in) = (N,in)
	return dX
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }
