package nn

// Int8 quantized inference path (ROADMAP item 4).
//
// A QuantizedNetwork is an inference-only mirror of a trained float32
// Network: conv and linear layers carry int8 weights with symmetric
// per-row (per output channel) scales, activations are quantized
// per-tensor with a scale calibrated post-training, and the matrix
// work runs through the int8 kernel family in internal/tensor
// (Im2RowS8 + GemmS8TB, int32 accumulators). Everything the int8
// contract cannot express well — batch norm, ReLU, pooling, the
// residual add — runs in float32 on the dequantized activations, so
// only the GEMM-shaped 99% of the FLOPs moves to int8.
//
// Determinism: integer accumulation is associative, so the int8 GEMMs
// are bit-identical across kernel tiers AND worker counts (a stronger
// contract than the float path's exact/fast split); the float fallback
// stages are element-wise serial loops. A QuantizedNetwork forward is
// therefore bit-deterministic at any worker count with no tier caveat.
//
// Memory: the int8 weight planes are shared, never written. Clones for
// concurrent serving share them (4x less weight traffic than float32),
// and internal/ftpm aliases them directly into an mmap'd model file.

import (
	"fmt"
	"math"

	"github.com/ftpim/ftpim/internal/tensor"
)

// QLayer is one layer of the quantized inference path.
type QLayer interface {
	// Forward runs the layer in inference mode. Outputs live in
	// layer-owned workspaces, valid until the next call.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// CloneQ returns an execution-independent copy: weight planes and
	// scales are shared (they are immutable), workspaces and scratch
	// are fresh.
	CloneQ() QLayer
}

// QuantizedNetwork is the int8 inference mirror of a Network. Build
// one with QuantizeNetwork (from a trained float model) or load one
// from an exported FTPM file via internal/ftpm.
type QuantizedNetwork struct {
	Layers []QLayer
}

// Forward runs the network in inference mode. The train flag exists
// only to satisfy the shared metrics.Forwarder signature; the
// quantized path has no training mode and panics if it is requested.
func (q *QuantizedNetwork) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		panic("nn: QuantizedNetwork is inference-only")
	}
	for _, l := range q.Layers {
		x = l.Forward(x)
	}
	return x
}

// NumParams returns the total stored parameter count (int8 weights,
// biases, and folded batch-norm affines) — the quantized analogue of
// Network.NumParams.
func (q *QuantizedNetwork) NumParams() int {
	n := 0
	var count func(l QLayer)
	count = func(l QLayer) {
		switch t := l.(type) {
		case *QConv2D:
			n += len(t.WQ) + len(t.Bias)
		case *QLinear:
			n += len(t.WQ) + len(t.Bias)
		case *QBatchNorm:
			n += len(t.Scale) + len(t.Shift)
		case *QBasicBlock:
			count(t.Conv1)
			count(t.BN1)
			count(t.Conv2)
			count(t.BN2)
		}
	}
	for _, l := range q.Layers {
		count(l)
	}
	return n
}

// Clone returns a copy safe for concurrent use: immutable weight
// planes and scales are shared, per-layer workspaces are fresh.
func (q *QuantizedNetwork) Clone() *QuantizedNetwork {
	out := &QuantizedNetwork{Layers: make([]QLayer, len(q.Layers))}
	for i, l := range q.Layers {
		out.Layers[i] = l.CloneQ()
	}
	return out
}

// QConv2D is the int8 convolution: weights (OutC, InC·KH·KW) as int8
// rows with per-row scales, input activations quantized per-tensor
// with the calibrated XScale. Per sample, the input plane is
// quantized once, lowered patch-major (Im2RowS8), multiplied in int32
// (GemmS8TB: m=OutC, k=InC·KH·KW, n=outArea), and dequantized with
// bias into the float output plane.
type QConv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	WQ          []int8    // (OutC, InC·KH·KW) row-major; may alias an mmap'd file
	WScale      []float32 // per-row weight scales, len OutC
	Bias        []float32 // len OutC, nil when the float layer had none
	XScale      float32   // calibrated per-tensor input scale

	maxAbs  float32 // calibration accumulator (QuantizeNetwork only)
	xq      []int8  // quantized input plane scratch
	patches []int8  // outArea × k patch panel scratch
	acc     []int32 // OutC × outArea accumulator scratch
	ws      tensor.Workspace
}

// NewQConv2D builds a quantized conv layer from its stored planes
// (the FTPM loader's constructor). wq/wScale/bias are retained, not
// copied.
func NewQConv2D(inC, outC, kh, kw, stride, pad int, wq []int8, wScale, bias []float32, xScale float32) *QConv2D {
	return &QConv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		WQ: wq, WScale: wScale, Bias: bias, XScale: xScale,
	}
}

// Forward computes the int8 convolution for an NCHW batch.
func (l *QConv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != l.InC {
		panic(fmt.Sprintf("nn: QConv2D input shape %v, want (N,%d,H,W)", x.Shape(), l.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH := tensor.ConvOutSize(h, l.KH, l.Stride, l.Pad)
	outW := tensor.ConvOutSize(w, l.KW, l.Stride, l.Pad)
	outArea := outH * outW
	k := l.InC * l.KH * l.KW
	plane := l.InC * h * w
	out := l.ws.Get(0, n, l.OutC, outH, outW)
	if len(l.xq) < plane {
		l.xq = make([]int8, plane)
	}
	if len(l.patches) < outArea*k {
		l.patches = make([]int8, outArea*k)
	}
	if len(l.acc) < l.OutC*outArea {
		l.acc = make([]int32, l.OutC*outArea)
	}
	xd, od := x.Data(), out.Data()
	xs := l.XScale
	for i := 0; i < n; i++ {
		tensor.QuantizeLinear(l.xq[:plane], xd[i*plane:(i+1)*plane], xs)
		tensor.Im2RowS8(l.patches[:outArea*k], l.xq[:plane], l.InC, h, w,
			l.KH, l.KW, l.Stride, l.Pad, outH, outW)
		tensor.GemmS8TB(l.acc[:l.OutC*outArea], l.WQ, l.patches[:outArea*k],
			l.OutC, k, outArea)
		base := i * l.OutC * outArea
		for oc := 0; oc < l.OutC; oc++ {
			s := l.WScale[oc] * xs
			var b float32
			if l.Bias != nil {
				b = l.Bias[oc]
			}
			arow := l.acc[oc*outArea : (oc+1)*outArea]
			orow := od[base+oc*outArea : base+(oc+1)*outArea]
			for j, v := range arow {
				orow[j] = float32(v)*s + b
			}
		}
	}
	return out
}

// CloneQ shares the weight planes and scales, fresh scratch.
func (l *QConv2D) CloneQ() QLayer {
	return NewQConv2D(l.InC, l.OutC, l.KH, l.KW, l.Stride, l.Pad,
		l.WQ, l.WScale, l.Bias, l.XScale)
}

// observe feeds one calibration batch's input into the running
// max-abs estimate.
func (l *QConv2D) observe(x *tensor.Tensor) {
	if m := tensor.MaxAbs(x.Data()); m > l.maxAbs {
		l.maxAbs = m
	}
}

// QLinear is the int8 fully connected layer: y = dequant(xq·WQᵀ) + b.
type QLinear struct {
	In, Out int
	WQ      []int8    // (Out, In) row-major; may alias an mmap'd file
	WScale  []float32 // per-row scales, len Out
	Bias    []float32 // len Out, nil when absent
	XScale  float32

	maxAbs float32
	xq     []int8
	acc    []int32
	ws     tensor.Workspace
}

// NewQLinear builds a quantized linear layer from its stored planes.
func NewQLinear(in, out int, wq []int8, wScale, bias []float32, xScale float32) *QLinear {
	return &QLinear{In: in, Out: out, WQ: wq, WScale: wScale, Bias: bias, XScale: xScale}
}

// Forward computes the int8 matmul for an (N, In) batch.
func (l *QLinear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: QLinear input shape %v, want (N,%d)", x.Shape(), l.In))
	}
	n := x.Dim(0)
	out := l.ws.Get(0, n, l.Out)
	if len(l.xq) < n*l.In {
		l.xq = make([]int8, n*l.In)
	}
	if len(l.acc) < n*l.Out {
		l.acc = make([]int32, n*l.Out)
	}
	xs := l.XScale
	tensor.QuantizeLinear(l.xq[:n*l.In], x.Data(), xs)
	tensor.GemmS8TB(l.acc[:n*l.Out], l.xq[:n*l.In], l.WQ, n, l.In, l.Out)
	od := out.Data()
	for i := 0; i < n; i++ {
		arow := l.acc[i*l.Out : (i+1)*l.Out]
		orow := od[i*l.Out : (i+1)*l.Out]
		for j, v := range arow {
			orow[j] = float32(v) * l.WScale[j] * xs
			if l.Bias != nil {
				orow[j] += l.Bias[j]
			}
		}
	}
	return out
}

// CloneQ shares the weight planes and scales, fresh scratch.
func (l *QLinear) CloneQ() QLayer {
	return NewQLinear(l.In, l.Out, l.WQ, l.WScale, l.Bias, l.XScale)
}

func (l *QLinear) observe(x *tensor.Tensor) {
	if m := tensor.MaxAbs(x.Data()); m > l.maxAbs {
		l.maxAbs = m
	}
}

// QBatchNorm is inference batch norm folded to a per-channel affine:
// y = Scale[c]·x + Shift[c], with Scale = γ/√(var+ε) and
// Shift = β − mean·Scale precomputed from the float layer's running
// statistics at quantization time.
type QBatchNorm struct {
	C            int
	Scale, Shift []float32
	ws           tensor.Workspace
}

// NewQBatchNorm builds a folded batch-norm layer (slices retained).
func NewQBatchNorm(scale, shift []float32) *QBatchNorm {
	return &QBatchNorm{C: len(scale), Scale: scale, Shift: shift}
}

// Forward applies the per-channel affine over an NCHW batch.
func (l *QBatchNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != l.C {
		panic(fmt.Sprintf("nn: QBatchNorm input shape %v, want (N,%d,H,W)", x.Shape(), l.C))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	area := h * w
	out := l.ws.Get(0, x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		for c := 0; c < l.C; c++ {
			s, b := l.Scale[c], l.Shift[c]
			base := (i*l.C + c) * area
			for j := 0; j < area; j++ {
				od[base+j] = s*xd[base+j] + b
			}
		}
	}
	return out
}

// CloneQ shares the affine, fresh workspace.
func (l *QBatchNorm) CloneQ() QLayer { return NewQBatchNorm(l.Scale, l.Shift) }

// QReLU clamps negatives to zero (float, inference only).
type QReLU struct {
	ws tensor.Workspace
}

// NewQReLU returns a quantized-path ReLU.
func NewQReLU() *QReLU { return &QReLU{} }

// Forward clamps negatives; explicit zeros because the workspace
// buffer carries the previous batch's values.
func (l *QReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := l.ws.Get(0, x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		} else {
			od[i] = 0
		}
	}
	return out
}

// CloneQ returns a fresh ReLU.
func (l *QReLU) CloneQ() QLayer { return NewQReLU() }

// QGlobalAvgPool averages each channel spatially: (N,C,H,W) → (N,C).
type QGlobalAvgPool struct {
	ws tensor.Workspace
}

// NewQGlobalAvgPool returns a quantized-path global average pool.
func NewQGlobalAvgPool() *QGlobalAvgPool { return &QGlobalAvgPool{} }

// Forward averages spatially.
func (l *QGlobalAvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	area := h * w
	out := l.ws.Get(0, n, c)
	xd, od := x.Data(), out.Data()
	inv := 1 / float32(area)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * area
			var s float32
			for j := 0; j < area; j++ {
				s += xd[base+j]
			}
			od[i*c+ch] = s * inv
		}
	}
	return out
}

// CloneQ returns a fresh pool.
func (l *QGlobalAvgPool) CloneQ() QLayer { return NewQGlobalAvgPool() }

// QFlatten reshapes (N, ...) to (N, rest) as a view.
type QFlatten struct {
	ws tensor.Workspace
}

// NewQFlatten returns a quantized-path flatten.
func NewQFlatten() *QFlatten { return &QFlatten{} }

// Forward flattens all but the batch dimension.
func (l *QFlatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	return l.ws.View(0, x.Data(), n, x.Len()/n)
}

// CloneQ returns a fresh flatten.
func (l *QFlatten) CloneQ() QLayer { return NewQFlatten() }

// QBasicBlock is the quantized residual block: int8 convs, folded BN,
// float ReLUs and residual add, option-A shortcut exactly as the
// float BasicBlock computes it.
type QBasicBlock struct {
	Conv1 *QConv2D
	BN1   *QBatchNorm
	Conv2 *QConv2D
	BN2   *QBatchNorm

	InC, OutC, Stride int

	downsample   bool
	relu1, relu2 QReLU
	ws           tensor.Workspace // slot 0: shortcut out
}

// NewQBasicBlock assembles a quantized residual block.
func NewQBasicBlock(conv1 *QConv2D, bn1 *QBatchNorm, conv2 *QConv2D, bn2 *QBatchNorm, inC, outC, stride int) *QBasicBlock {
	return &QBasicBlock{
		Conv1: conv1, BN1: bn1, Conv2: conv2, BN2: bn2,
		InC: inC, OutC: outC, Stride: stride,
		downsample: stride != 1 || inC != outC,
	}
}

// Forward runs the block: relu(BN2(Conv2(relu(BN1(Conv1 x)))) + shortcut).
func (b *QBasicBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := b.Conv1.Forward(x)
	h = b.BN1.Forward(h)
	h = b.relu1.Forward(h)
	h = b.Conv2.Forward(h)
	h = b.BN2.Forward(h)
	var short *tensor.Tensor
	if b.downsample {
		short = b.shortcut(x)
	} else {
		short = x
	}
	h.AddInPlace(short)
	return b.relu2.Forward(h)
}

// shortcut is the option-A projection: stride-s spatial subsample with
// zero-padded channels, matching BasicBlock.shortcutForward.
func (b *QBasicBlock) shortcut(x *tensor.Tensor) *tensor.Tensor {
	n, hIn, wIn := x.Dim(0), x.Dim(2), x.Dim(3)
	hOut := (hIn + b.Stride - 1) / b.Stride
	wOut := (wIn + b.Stride - 1) / b.Stride
	out := b.ws.GetZeroed(0, n, b.OutC, hOut, wOut)
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		for c := 0; c < b.InC; c++ {
			inBase := (i*b.InC + c) * hIn * wIn
			outBase := (i*b.OutC + c) * hOut * wOut
			for y := 0; y < hOut; y++ {
				for xcol := 0; xcol < wOut; xcol++ {
					od[outBase+y*wOut+xcol] = xd[inBase+y*b.Stride*wIn+xcol*b.Stride]
				}
			}
		}
	}
	return out
}

// CloneQ deep-clones the block structure, sharing the weight planes.
func (b *QBasicBlock) CloneQ() QLayer {
	return NewQBasicBlock(
		b.Conv1.CloneQ().(*QConv2D), b.BN1.CloneQ().(*QBatchNorm),
		b.Conv2.CloneQ().(*QConv2D), b.BN2.CloneQ().(*QBatchNorm),
		b.InC, b.OutC, b.Stride)
}

// QIdentity passes its input through — the quantized image of layers
// that are a no-op at inference (Dropout).
type QIdentity struct{}

// NewQIdentity returns the identity layer.
func NewQIdentity() *QIdentity { return &QIdentity{} }

// Forward returns x.
func (QIdentity) Forward(x *tensor.Tensor) *tensor.Tensor { return x }

// CloneQ returns the identity layer.
func (QIdentity) CloneQ() QLayer { return QIdentity{} }

// QuantizeNetwork builds the int8 inference mirror of a trained
// network. Weights are quantized symmetrically per row (per output
// channel) immediately; activation scales are calibrated by running
// the calibration batches through the FLOAT network in inference mode
// and recording the max-abs input seen at every quantized layer —
// post-training calibration, no retraining. At least one batch is
// required; more batches tighten the scales.
//
// The float network is not mutated (inference-mode forwards only),
// but its layer workspaces are clobbered like any forward pass.
func QuantizeNetwork(net *Network, calib []*tensor.Tensor) (*QuantizedNetwork, error) {
	if net == nil {
		return nil, fmt.Errorf("nn: QuantizeNetwork: nil network")
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("nn: QuantizeNetwork needs at least one calibration batch")
	}
	fls := flattenLayers(net.Body.Layers)
	q := &QuantizedNetwork{Layers: make([]QLayer, len(fls))}
	for i, fl := range fls {
		ql, err := quantizeLayer(fl)
		if err != nil {
			return nil, err
		}
		q.Layers[i] = ql
	}
	for _, batch := range calib {
		x := batch
		for i, fl := range fls {
			x = calibStep(fl, q.Layers[i], x)
		}
	}
	for _, ql := range q.Layers {
		finalizeScales(ql)
	}
	return q, nil
}

// flattenLayers expands nested Sequentials into one flat layer list.
func flattenLayers(ls []Layer) []Layer {
	var out []Layer
	for _, l := range ls {
		if s, ok := l.(*Sequential); ok {
			out = append(out, flattenLayers(s.Layers)...)
			continue
		}
		out = append(out, l)
	}
	return out
}

// quantizeLayer maps one float layer to its quantized mirror,
// quantizing weights but leaving activation scales for calibration.
func quantizeLayer(fl Layer) (QLayer, error) {
	switch f := fl.(type) {
	case *Conv2D:
		return quantizeConv(f), nil
	case *Linear:
		wq := make([]int8, f.Out*f.In)
		ws := make([]float32, f.Out)
		tensor.QuantizeRows(wq, ws, f.Weight.W.Data(), f.Out, f.In)
		var bias []float32
		if f.Bias != nil {
			bias = append([]float32(nil), f.Bias.W.Data()...)
		}
		return NewQLinear(f.In, f.Out, wq, ws, bias, 0), nil
	case *BatchNorm2D:
		return foldBatchNorm(f), nil
	case *ReLU:
		return NewQReLU(), nil
	case *GlobalAvgPool2D:
		return NewQGlobalAvgPool(), nil
	case *Flatten:
		return NewQFlatten(), nil
	case *Dropout:
		return NewQIdentity(), nil
	case *BasicBlock:
		return NewQBasicBlock(
			quantizeConv(f.Conv1), foldBatchNorm(f.BN1),
			quantizeConv(f.Conv2), foldBatchNorm(f.BN2),
			f.inC, f.outC, f.stride), nil
	default:
		return nil, fmt.Errorf("nn: QuantizeNetwork: unsupported layer type %T", fl)
	}
}

func quantizeConv(f *Conv2D) *QConv2D {
	k := f.InC * f.KH * f.KW
	wq := make([]int8, f.OutC*k)
	ws := make([]float32, f.OutC)
	tensor.QuantizeRows(wq, ws, f.Weight.W.Data(), f.OutC, k)
	var bias []float32
	if f.Bias != nil {
		bias = append([]float32(nil), f.Bias.W.Data()...)
	}
	return NewQConv2D(f.InC, f.OutC, f.KH, f.KW, f.Stride, f.Pad, wq, ws, bias, 0)
}

// foldBatchNorm precomputes the inference affine from running stats.
func foldBatchNorm(bn *BatchNorm2D) *QBatchNorm {
	scale := make([]float32, bn.C)
	shift := make([]float32, bn.C)
	gd, bd := bn.Gamma.W.Data(), bn.Beta.W.Data()
	rm, rv := bn.RunningMean.Data(), bn.RunningVar.Data()
	for c := 0; c < bn.C; c++ {
		inv := float32(1 / math.Sqrt(float64(rv[c])+bn.Eps))
		scale[c] = gd[c] * inv
		shift[c] = bd[c] - rm[c]*scale[c]
	}
	return NewQBatchNorm(scale, shift)
}

// calibStep advances one float layer in inference mode while feeding
// quantized-layer input observations. BasicBlock is walked internally
// so its second conv sees its true input.
func calibStep(fl Layer, ql QLayer, x *tensor.Tensor) *tensor.Tensor {
	switch f := fl.(type) {
	case *Conv2D:
		ql.(*QConv2D).observe(x)
	case *Linear:
		ql.(*QLinear).observe(x)
	case *BasicBlock:
		qb := ql.(*QBasicBlock)
		qb.Conv1.observe(x)
		h := f.Conv1.Forward(x, false)
		h = f.BN1.Forward(h, false)
		h = f.relu1.Forward(h, false)
		qb.Conv2.observe(h)
		h = f.Conv2.Forward(h, false)
		h = f.BN2.Forward(h, false)
		var short *tensor.Tensor
		if f.downsample {
			short = f.shortcutForward(x)
		} else {
			short = x
		}
		h.AddInPlace(short)
		return f.relu2.Forward(h, false)
	}
	return fl.Forward(x, false)
}

// finalizeScales converts accumulated max-abs observations into
// activation scales.
func finalizeScales(ql QLayer) {
	switch l := ql.(type) {
	case *QConv2D:
		l.XScale = tensor.ScaleFor(l.maxAbs)
	case *QLinear:
		l.XScale = tensor.ScaleFor(l.maxAbs)
	case *QBasicBlock:
		l.Conv1.XScale = tensor.ScaleFor(l.Conv1.maxAbs)
		l.Conv2.XScale = tensor.ScaleFor(l.Conv2.maxAbs)
	}
}
