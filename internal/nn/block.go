package nn

import (
	"github.com/ftpim/ftpim/internal/tensor"
)

// BasicBlock is the CIFAR ResNet residual block:
//
//	out = ReLU( BN2(Conv2( ReLU(BN1(Conv1(x))) )) + shortcut(x) )
//
// The shortcut is the identity when shape is preserved, and otherwise
// "option A" from He et al.: stride-2 spatial subsampling with
// zero-padded channels (parameter-free, as used by the original CIFAR
// ResNet-20/32 the paper evaluates).
type BasicBlock struct {
	Conv1 *Conv2D
	BN1   *BatchNorm2D
	Conv2 *Conv2D
	BN2   *BatchNorm2D

	relu1, relu2 *ReLU
	downsample   bool
	inC, outC    int
	stride       int
	lastInShape  []int
	ws           tensor.Workspace // slot 0: shortcut out; slot 1: shortcut dX
}

// NewBasicBlock builds a residual block mapping inC→outC channels with
// the given stride on its first convolution.
func NewBasicBlock(name string, inC, outC, stride int, rng *tensor.RNG) *BasicBlock {
	return &BasicBlock{
		Conv1:      NewConv2D(name+".conv1", inC, outC, 3, 3, stride, 1, false, rng),
		BN1:        NewBatchNorm2D(name+".bn1", outC),
		Conv2:      NewConv2D(name+".conv2", outC, outC, 3, 3, 1, 1, false, rng),
		BN2:        NewBatchNorm2D(name+".bn2", outC),
		relu1:      NewReLU(),
		relu2:      NewReLU(),
		downsample: stride != 1 || inC != outC,
		inC:        inC, outC: outC, stride: stride,
	}
}

// Forward runs the residual block.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b.lastInShape = append(b.lastInShape[:0], x.Shape()...)
	h := b.Conv1.Forward(x, train)
	h = b.BN1.Forward(h, train)
	h = b.relu1.Forward(h, train)
	h = b.Conv2.Forward(h, train)
	h = b.BN2.Forward(h, train)

	var short *tensor.Tensor
	if b.downsample {
		short = b.shortcutForward(x)
	} else {
		short = x
	}
	h.AddInPlace(short)
	return b.relu2.Forward(h, train)
}

// shortcutForward implements option-A: spatial subsample + channel pad.
func (b *BasicBlock) shortcutForward(x *tensor.Tensor) *tensor.Tensor {
	n, _, hIn, wIn := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hOut := (hIn + b.stride - 1) / b.stride
	wOut := (wIn + b.stride - 1) / b.stride
	// Zero-padded channels [inC, outC) are never written below, so the
	// reused buffer must start zeroed.
	out := b.ws.GetZeroed(0, n, b.outC, hOut, wOut)
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		for c := 0; c < b.inC; c++ {
			inBase := (i*b.inC + c) * hIn * wIn
			outBase := (i*b.outC + c) * hOut * wOut
			for y := 0; y < hOut; y++ {
				for xcol := 0; xcol < wOut; xcol++ {
					od[outBase+y*wOut+xcol] = xd[inBase+y*b.stride*wIn+xcol*b.stride]
				}
			}
		}
	}
	return out
}

// shortcutBackward scatters a gradient through the option-A shortcut.
func (b *BasicBlock) shortcutBackward(dOut *tensor.Tensor) *tensor.Tensor {
	n := dOut.Dim(0)
	hIn, wIn := b.lastInShape[2], b.lastInShape[3]
	hOut, wOut := dOut.Dim(2), dOut.Dim(3)
	// Only strided positions are written below; the rest must be zero.
	dX := b.ws.GetZeroed(1, n, b.inC, hIn, wIn)
	dd, dxd := dOut.Data(), dX.Data()
	for i := 0; i < n; i++ {
		for c := 0; c < b.inC; c++ { // padded channels carry no gradient
			outBase := (i*b.outC + c) * hOut * wOut
			inBase := (i*b.inC + c) * hIn * wIn
			for y := 0; y < hOut; y++ {
				for xcol := 0; xcol < wOut; xcol++ {
					dxd[inBase+y*b.stride*wIn+xcol*b.stride] = dd[outBase+y*wOut+xcol]
				}
			}
		}
	}
	return dX
}

// Backward propagates through both branches and sums the input grads.
func (b *BasicBlock) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	d := b.relu2.Backward(dOut)
	// d flows into both the residual branch and the shortcut.
	dBranch := b.BN2.Backward(d)
	dBranch = b.Conv2.Backward(dBranch)
	dBranch = b.relu1.Backward(dBranch)
	dBranch = b.BN1.Backward(dBranch)
	dBranch = b.Conv1.Backward(dBranch)

	var dShort *tensor.Tensor
	if b.downsample {
		dShort = b.shortcutBackward(d)
	} else {
		dShort = d
	}
	dBranch.AddInPlace(dShort)
	return dBranch
}

// Params returns the block's parameters in a stable order.
func (b *BasicBlock) Params() []*Param {
	ps := b.Conv1.Params()
	ps = append(ps, b.BN1.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	ps = append(ps, b.BN2.Params()...)
	return ps
}

// BatchNorms exposes the block's BN layers for serialization.
func (b *BasicBlock) BatchNorms() []*BatchNorm2D { return []*BatchNorm2D{b.BN1, b.BN2} }
