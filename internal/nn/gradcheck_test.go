package nn

import (
	"math"
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

// lossOf runs a full forward pass (training mode) and returns the
// softmax cross-entropy loss.
func lossOf(net *Network, x *tensor.Tensor, labels []int) float64 {
	out := net.Forward(x, true)
	loss, _ := SoftmaxCrossEntropy(out, labels)
	return loss
}

// analyticGrads runs forward+backward once and returns copies of every
// parameter gradient plus the input gradient.
func analyticGrads(net *Network, x *tensor.Tensor, labels []int) ([]*tensor.Tensor, *tensor.Tensor) {
	net.ZeroGrad()
	out := net.Forward(x, true)
	_, dOut := SoftmaxCrossEntropy(out, labels)
	dX := net.Backward(dOut)
	var gs []*tensor.Tensor
	for _, p := range net.Params() {
		gs = append(gs, p.Grad.Clone())
	}
	return gs, dX
}

// checkGrad compares analytic and central-difference gradients.
// float32 forward passes limit attainable precision, so the tolerance
// is relative with a generous absolute floor.
func checkGrad(t *testing.T, net *Network, x *tensor.Tensor, labels []int) {
	t.Helper()
	gs, dX := analyticGrads(net, x, labels)
	const eps = 3e-3
	const rtol, atol = 0.08, 2e-3

	compare := func(name string, w *tensor.Tensor, analytic *tensor.Tensor) {
		t.Helper()
		d := w.Data()
		for i := 0; i < len(d); i++ {
			orig := d[i]
			d[i] = orig + eps
			lp := lossOf(net, x, labels)
			d[i] = orig - eps
			lm := lossOf(net, x, labels)
			d[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(analytic.Data()[i])
			if diff := math.Abs(num - ana); diff > atol+rtol*math.Abs(num) {
				t.Fatalf("%s[%d]: analytic %.6f vs numeric %.6f (diff %.6f)", name, i, ana, num, diff)
			}
		}
	}

	for pi, p := range net.Params() {
		compare(p.Name, p.W, gs[pi])
	}
	compare("input", x, dX)
}

func smallInput(r *tensor.RNG, n, c, h, w int) (*tensor.Tensor, []int) {
	x := tensor.New(n, c, h, w)
	tensor.FillNormal(x, r, 0, 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = int(r.Uint64() % 3)
	}
	return x, labels
}

func TestGradCheckLinear(t *testing.T) {
	r := tensor.NewRNG(11)
	net := NewNetwork(NewLinear("fc", 6, 3, r))
	x := tensor.New(4, 6)
	tensor.FillNormal(x, r, 0, 1)
	labels := []int{0, 1, 2, 1}
	checkGrad(t, net, x, labels)
}

func TestGradCheckConv(t *testing.T) {
	r := tensor.NewRNG(12)
	net := NewNetwork(
		NewConv2D("c", 2, 3, 3, 3, 1, 1, true, r),
		NewGlobalAvgPool2D(),
	)
	x, labels := smallInput(r, 2, 2, 5, 5)
	checkGrad(t, net, x, labels)
}

func TestGradCheckConvStride2NoBias(t *testing.T) {
	r := tensor.NewRNG(13)
	net := NewNetwork(
		NewConv2D("c", 2, 3, 3, 3, 2, 1, false, r),
		NewFlatten(),
		NewLinear("fc", 3*3*3, 3, r),
	)
	x, labels := smallInput(r, 2, 2, 5, 5)
	checkGrad(t, net, x, labels)
}

func TestGradCheckReLUStack(t *testing.T) {
	r := tensor.NewRNG(14)
	net := NewNetwork(
		NewLinear("fc1", 5, 8, r),
		NewReLU(),
		NewLinear("fc2", 8, 3, r),
	)
	x := tensor.New(3, 5)
	tensor.FillNormal(x, r, 0, 1)
	checkGrad(t, net, x, []int{2, 0, 1})
}

func TestGradCheckBatchNorm(t *testing.T) {
	r := tensor.NewRNG(15)
	net := NewNetwork(
		NewConv2D("c", 1, 3, 3, 3, 1, 1, false, r),
		NewBatchNorm2D("bn", 3),
		NewGlobalAvgPool2D(),
	)
	x, labels := smallInput(r, 3, 1, 4, 4)
	checkGrad(t, net, x, labels)
}

func TestGradCheckBasicBlockIdentity(t *testing.T) {
	r := tensor.NewRNG(16)
	net := NewNetwork(
		NewBasicBlock("b", 3, 3, 1, r),
		NewGlobalAvgPool2D(),
	)
	x, labels := smallInput(r, 2, 3, 4, 4)
	checkGrad(t, net, x, labels)
}

func TestGradCheckBasicBlockDownsample(t *testing.T) {
	r := tensor.NewRNG(17)
	net := NewNetwork(
		NewBasicBlock("b", 2, 4, 2, r),
		NewGlobalAvgPool2D(),
		NewLinear("fc", 4, 3, r),
	)
	x, labels := smallInput(r, 2, 2, 6, 6)
	checkGrad(t, net, x, labels)
}
