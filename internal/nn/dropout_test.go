package nn

import (
	"math"
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

func TestDropoutEvalIsIdentity(t *testing.T) {
	r := tensor.NewRNG(1)
	d := NewDropout(0.5, r)
	x := tensor.New(4, 8)
	tensor.FillNormal(x, r, 0, 1)
	y := d.Forward(x, false)
	if !y.Equal(x) {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainDropsAndScales(t *testing.T) {
	r := tensor.NewRNG(2)
	d := NewDropout(0.5, r)
	x := tensor.Full(1, 10000)
	y := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected value %v (want 0 or 2)", v)
		}
	}
	if math.Abs(float64(zeros)/10000-0.5) > 0.03 {
		t.Fatalf("drop fraction %v, want ≈0.5", float64(zeros)/10000)
	}
	if zeros+twos != 10000 {
		t.Fatal("count mismatch")
	}
	// Expectation preserved.
	if math.Abs(y.Mean()-1) > 0.05 {
		t.Fatalf("inverted dropout should preserve expectation, mean=%v", y.Mean())
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	r := tensor.NewRNG(3)
	d := NewDropout(0.3, r)
	x := tensor.Full(1, 100)
	y := d.Forward(x, true)
	g := tensor.Ones(100)
	dx := d.Backward(g)
	for i := range y.Data() {
		if (y.Data()[i] == 0) != (dx.Data()[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestDropoutZeroProbIsIdentityInTraining(t *testing.T) {
	r := tensor.NewRNG(4)
	d := NewDropout(0, r)
	x := tensor.New(3, 3)
	tensor.FillNormal(x, r, 0, 1)
	if !d.Forward(x, true).Equal(x) {
		t.Fatal("p=0 dropout must be identity")
	}
}

func TestDropoutBadProbPanics(t *testing.T) {
	r := tensor.NewRNG(5)
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for p=%v", p)
				}
			}()
			NewDropout(p, r)
		}()
	}
}

func TestDropoutGradCheck(t *testing.T) {
	// Dropout is linear given a fixed mask, so analytic and numeric
	// gradients agree exactly if the mask is frozen. Freeze it by
	// setting P=0.4 and re-seeding the layer's RNG between passes is
	// not possible; instead check the linearity property directly:
	// Backward(g) == g ⊙ mask where mask = Forward(1s)/keep... covered
	// by TestDropoutBackwardUsesSameMask. Here check scaling linearity.
	r := tensor.NewRNG(6)
	d := NewDropout(0.4, r)
	x := tensor.Full(1, 50)
	d.Forward(x, true)
	g1 := tensor.Full(1, 50)
	g2 := tensor.Full(2, 50)
	dx1 := d.Backward(g1).Clone() // Backward reuses its buffer per call
	dx2 := d.Backward(g2)
	for i := range dx1.Data() {
		if dx2.Data()[i] != 2*dx1.Data()[i] {
			t.Fatal("dropout backward not linear")
		}
	}
}
