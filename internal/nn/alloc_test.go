//go:build !race

// Allocation-regression tests for the workspace-backed hot path.
// Excluded under -race (the race runtime changes allocation behavior);
// workers are pinned to 1 because spawning shard goroutines allocates.

package nn

import (
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

// TestWarmTrainStepAllocs pins the ISSUE budget: a warm forward +
// loss + backward step over a conv/bn/relu/pool/linear stack must stay
// within 2 heap allocations per op.
func TestWarmTrainStepAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	rng := tensor.NewRNG(7)
	net := NewNetwork(
		NewConv2D("c1", 3, 4, 3, 3, 1, 1, true, rng),
		NewBatchNorm2D("bn1", 4),
		NewReLU(),
		NewBasicBlock("b1", 4, 8, 2, rng),
		NewGlobalAvgPool2D(),
		NewFlatten(),
		NewLinear("fc", 8, 5, rng),
	)
	x := tensor.New(2, 3, 8, 8)
	tensor.FillNormal(x, rng, 0, 1)
	labels := []int{1, 3}
	var lossWS tensor.Workspace

	step := func() {
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, dOut := SoftmaxCrossEntropyWS(&lossWS, out, labels)
		net.Backward(dOut)
	}
	for i := 0; i < 3; i++ { // warm all workspaces and scratch
		step()
	}
	if avg := testing.AllocsPerRun(30, step); avg > 2 {
		t.Fatalf("warm train step allocates %.1f/op, budget is 2", avg)
	}
}

// TestWarmConvAllocs isolates the fused implicit-GEMM convolution:
// once the layer's workspace slots (out, dX, dW chunks) and the tensor
// package's panel pool are warm, a forward + backward pair must not
// allocate at all — the column matrix the old lowering materialized is
// gone, not merely pooled.
func TestWarmConvAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	rng := tensor.NewRNG(9)
	conv := NewConv2D("c", 4, 8, 3, 3, 1, 1, false, rng)
	x := tensor.New(4, 4, 12, 12)
	tensor.FillNormal(x, rng, 0, 1)
	dOut := tensor.New(4, 8, 12, 12)
	tensor.FillNormal(dOut, rng, 0, 1)
	step := func() {
		conv.Weight.Grad.Zero()
		conv.Forward(x, true)
		conv.Backward(dOut)
	}
	for i := 0; i < 3; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(30, step); avg > 0 {
		t.Fatalf("warm fused conv fwd+bwd allocates %.1f/op, want 0", avg)
	}
}

// TestWarmEvalForwardAllocs covers the inference path used by
// metrics.Evaluate: repeated eval-mode forwards must not allocate once
// the workspaces are warm.
func TestWarmEvalForwardAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	rng := tensor.NewRNG(8)
	net := NewNetwork(
		NewConv2D("c1", 3, 4, 3, 3, 1, 1, true, rng),
		NewBatchNorm2D("bn1", 4),
		NewReLU(),
		NewGlobalAvgPool2D(),
		NewFlatten(),
		NewLinear("fc", 4, 5, rng),
	)
	x := tensor.New(2, 3, 8, 8)
	tensor.FillNormal(x, rng, 0, 1)
	for i := 0; i < 3; i++ {
		net.Forward(x, false)
	}
	if avg := testing.AllocsPerRun(30, func() { net.Forward(x, false) }); avg > 0 {
		t.Fatalf("warm eval forward allocates %.1f/op, want 0", avg)
	}
}

// TestQuantizedInferWarmAllocs pins the int8 inference path: once the
// per-layer int8 scratch (xq, patches, int32 accumulators) and float
// workspaces are warm, a quantized forward must not allocate — the
// quantized serve hot path depends on this.
func TestQuantizedInferWarmAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	rng := tensor.NewRNG(11)
	net := NewNetwork(
		NewConv2D("c1", 3, 8, 3, 3, 1, 1, true, rng),
		NewBatchNorm2D("bn1", 8),
		NewReLU(),
		NewBasicBlock("b1", 8, 16, 2, rng),
		NewGlobalAvgPool2D(),
		NewFlatten(),
		NewLinear("fc", 16, 10, rng),
	)
	calib := tensor.New(4, 3, 12, 12)
	tensor.FillNormal(calib, rng, 0, 1)
	q, err := QuantizeNetwork(net, []*tensor.Tensor{calib})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3, 12, 12)
	tensor.FillNormal(x, rng, 0, 1)
	for i := 0; i < 3; i++ {
		q.Forward(x, false)
	}
	if avg := testing.AllocsPerRun(30, func() { q.Forward(x, false) }); avg > 0 {
		t.Fatalf("warm quantized forward allocates %.1f/op, want 0", avg)
	}
}
