package nn

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Dropout implements inverted dropout: during training each activation
// is zeroed with probability P and the survivors are scaled by
// 1/(1−P); at inference it is the identity. The layer owns a
// deterministic RNG stream so training runs remain reproducible.
type Dropout struct {
	P   float64
	rng *tensor.RNG

	mask []float32
	ws   tensor.Workspace // slot 0: forward out; slot 1: backward dX
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng.Stream("dropout")}
}

// Forward applies dropout in training mode; identity at inference.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		return x
	}
	out := d.ws.Get(0, x.Shape()...)
	xd, od := x.Data(), out.Data()
	if len(d.mask) < len(xd) {
		d.mask = make([]float32, len(xd))
	}
	keep := float32(1 / (1 - d.P))
	for i, v := range xd {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
			od[i] = 0 // reused buffer: dropped lanes must be cleared
		} else {
			d.mask[i] = keep
			od[i] = v * keep
		}
	}
	return out
}

// Backward gates the gradient by the dropout mask.
func (d *Dropout) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	dX := d.ws.Get(1, dOut.Shape()...)
	dd, dxd := dOut.Data(), dX.Data()
	for i, v := range dd {
		dxd[i] = v * d.mask[i]
	}
	return dX
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
