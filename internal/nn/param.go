// Package nn implements the neural-network layers and losses used to
// train the fault-tolerant models: im2col-backed 2-D convolution,
// batch normalization, ReLU, pooling, linear layers, CIFAR-style
// residual basic blocks and a softmax cross-entropy loss, all with
// hand-written backward passes.
//
// Layers follow a simple define-by-run contract: Forward caches what
// Backward needs; Backward consumes the output gradient and returns the
// input gradient while accumulating parameter gradients into each
// Param.Grad.
package nn

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Param is one learnable tensor together with its gradient and an
// optional pruning mask.
//
// When Mask is non-nil it has the same shape as W with entries in
// {0,1}; pruned positions (mask 0) are kept at zero by the optimizer.
// Fault injection deliberately ignores the mask: a pruned weight still
// occupies ReRAM cells, and a stuck-on cell drags it to ±wmax — which
// is exactly why pruned models are more fragile (paper §IV-C).
type Param struct {
	Name  string
	W     *tensor.Tensor
	Grad  *tensor.Tensor
	Mask  *tensor.Tensor
	Decay bool // whether weight decay applies (convention: not for BN/bias)
}

// NewParam allocates a parameter and its gradient buffer.
func NewParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		W:     tensor.New(shape...),
		Grad:  tensor.New(shape...),
		Decay: true,
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ApplyMask zeroes pruned weight entries (no-op when Mask is nil).
func (p *Param) ApplyMask() {
	if p.Mask == nil {
		return
	}
	p.W.MulInPlace(p.Mask)
}

// Sparsity returns the fraction of weights pinned to zero by the mask
// (0 when unmasked).
func (p *Param) Sparsity() float64 {
	if p.Mask == nil {
		return 0
	}
	zeros := 0
	for _, v := range p.Mask.Data() {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(p.Mask.Len())
}

func (p *Param) String() string {
	return fmt.Sprintf("Param(%s %v)", p.Name, p.W.Shape())
}

// Layer is the interface every network building block implements.
type Layer interface {
	// Forward runs the layer. train selects training behaviour
	// (batch statistics, caching for backward).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dOut and returns dIn, accumulating parameter
	// gradients. Must be called after a Forward with train=true.
	Backward(dOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
	// CloneLayer returns a deep copy of the layer: parameters, masks
	// and inference state (e.g. batch-norm running statistics) are
	// copied; transient forward/backward caches are not. Clones share
	// no mutable state with the original, so they may be used
	// concurrently from different goroutines.
	CloneLayer() Layer
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward applies every layer's backward pass in reverse order.
func (s *Sequential) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dOut = s.Layers[i].Backward(dOut)
	}
	return dOut
}

// Params collects parameters from all layers in order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
