package nn

import "github.com/ftpim/ftpim/internal/tensor"

// Deep-cloning support. The parallel defect-evaluation protocol in
// internal/core gives every worker goroutine its own scratch network so
// fault injection and forward passes never share mutable state; the
// clones are bit-identical to the original (weights, masks, batch-norm
// running statistics), which keeps parallel evaluation results exactly
// equal to the serial path.

// Clone returns a deep copy of the parameter: weights, gradient and
// mask (when present) each get fresh storage.
func (p *Param) Clone() *Param {
	c := &Param{Name: p.Name, W: p.W.Clone(), Grad: p.Grad.Clone(), Decay: p.Decay}
	if p.Mask != nil {
		c.Mask = p.Mask.Clone()
	}
	return c
}

// Clone returns a deep copy of the network sharing no mutable state
// with the original.
func (n *Network) Clone() *Network {
	return &Network{Body: n.Body.CloneLayer().(*Sequential)}
}

// CloneLayer implements Layer.
func (s *Sequential) CloneLayer() Layer {
	c := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		c.Layers[i] = l.CloneLayer()
	}
	return c
}

// CloneLayer implements Layer.
func (c *Conv2D) CloneLayer() Layer {
	cc := &Conv2D{
		InC: c.InC, OutC: c.OutC, KH: c.KH, KW: c.KW,
		Stride: c.Stride, Pad: c.Pad,
		Weight: c.Weight.Clone(),
	}
	if c.Bias != nil {
		cc.Bias = c.Bias.Clone()
	}
	return cc
}

// CloneLayer implements Layer.
func (l *Linear) CloneLayer() Layer {
	return &Linear{In: l.In, Out: l.Out, Weight: l.Weight.Clone(), Bias: l.Bias.Clone()}
}

// CloneLayer implements Layer.
func (bn *BatchNorm2D) CloneLayer() Layer {
	return &BatchNorm2D{
		C: bn.C, Eps: bn.Eps, Momentum: bn.Momentum,
		Gamma: bn.Gamma.Clone(), Beta: bn.Beta.Clone(),
		RunningMean: bn.RunningMean.Clone(),
		RunningVar:  bn.RunningVar.Clone(),
	}
}

// CloneLayer implements Layer.
func (b *BasicBlock) CloneLayer() Layer {
	return &BasicBlock{
		Conv1: b.Conv1.CloneLayer().(*Conv2D),
		BN1:   b.BN1.CloneLayer().(*BatchNorm2D),
		Conv2: b.Conv2.CloneLayer().(*Conv2D),
		BN2:   b.BN2.CloneLayer().(*BatchNorm2D),
		relu1: NewReLU(), relu2: NewReLU(),
		downsample: b.downsample,
		inC:        b.inC, outC: b.outC, stride: b.stride,
	}
}

// CloneLayer implements Layer.
func (r *ReLU) CloneLayer() Layer { return NewReLU() }

// CloneLayer implements Layer.
func (f *Flatten) CloneLayer() Layer { return NewFlatten() }

// CloneLayer implements Layer.
func (g *GlobalAvgPool2D) CloneLayer() Layer { return NewGlobalAvgPool2D() }

// CloneLayer implements Layer. The clone's dropout stream restarts from
// the layer's derived seed; clones are intended for inference, where
// dropout is inert.
func (d *Dropout) CloneLayer() Layer {
	return &Dropout{P: d.P, rng: tensor.NewRNG(d.rng.Seed())}
}
