package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/ftpim/ftpim/internal/tensor"
)

func TestReLUForward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float32{-2, 0, 3, -0.5}, 1, 4)
	y := r.Forward(x, false)
	want := []float32{0, 0, 3, 0}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("ReLU got %v", y.Data())
		}
	}
}

func TestReLUBackwardMasks(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float32{-1, 2}, 1, 2)
	r.Forward(x, true)
	d := r.Backward(tensor.FromSlice([]float32{5, 7}, 1, 2))
	if d.At(0, 0) != 0 || d.At(0, 1) != 7 {
		t.Fatalf("ReLU backward got %v", d.Data())
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("Flatten shape %v", y.Shape())
	}
	d := f.Backward(tensor.New(2, 60))
	if d.Rank() != 4 || d.Dim(3) != 5 {
		t.Fatalf("Flatten backward shape %v", d.Shape())
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := NewGlobalAvgPool2D()
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 10, 10, 10}, 1, 2, 2, 2)
	y := g.Forward(x, true)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 10 {
		t.Fatalf("GAP got %v", y.Data())
	}
	d := g.Backward(tensor.FromSlice([]float32{4, 8}, 1, 2))
	for i := 0; i < 4; i++ {
		if d.Data()[i] != 1 {
			t.Fatalf("GAP backward got %v", d.Data())
		}
	}
}

func TestLinearForwardKnown(t *testing.T) {
	r := tensor.NewRNG(1)
	l := NewLinear("fc", 2, 2, r)
	l.Weight.W.CopyFrom(tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2))
	l.Bias.W.CopyFrom(tensor.FromSlice([]float32{10, 20}, 2))
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	y := l.Forward(x, false)
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Fatalf("Linear got %v", y.Data())
	}
}

func TestConvMatchesLinearFor1x1(t *testing.T) {
	// A 1×1 convolution over a 1×1 image is exactly a linear layer.
	r := tensor.NewRNG(2)
	conv := NewConv2D("c", 3, 4, 1, 1, 1, 0, true, r)
	x := tensor.New(2, 3, 1, 1)
	tensor.FillNormal(x, r, 0, 1)
	y := conv.Forward(x, false)
	for i := 0; i < 2; i++ {
		for oc := 0; oc < 4; oc++ {
			var want float32
			for ic := 0; ic < 3; ic++ {
				want += conv.Weight.W.At(oc, ic) * x.At(i, ic, 0, 0)
			}
			want += conv.Bias.W.At(oc)
			if got := y.At(i, oc, 0, 0); math.Abs(float64(got-want)) > 1e-5 {
				t.Fatalf("1x1 conv mismatch: %v vs %v", got, want)
			}
		}
	}
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	r := tensor.NewRNG(3)
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(8, 2, 3, 3)
	tensor.FillNormal(x, r, 5, 2) // deliberately off-center
	y := bn.Forward(x, true)
	// Per channel, output should be ~N(0,1) with gamma=1 beta=0.
	for c := 0; c < 2; c++ {
		var sum, sq float64
		cnt := 0
		for i := 0; i < 8; i++ {
			for j := 0; j < 9; j++ {
				v := float64(y.Data()[(i*2+c)*9+j])
				sum += v
				sq += v * v
				cnt++
			}
		}
		mean := sum / float64(cnt)
		variance := sq/float64(cnt) - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d not normalized: mean=%v var=%v", c, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	r := tensor.NewRNG(4)
	bn := NewBatchNorm2D("bn", 1)
	x := tensor.New(16, 1, 2, 2)
	tensor.FillNormal(x, r, 3, 1)
	for i := 0; i < 50; i++ { // converge the running stats
		bn.Forward(x, true)
	}
	y := bn.Forward(x, false).Clone() // Forward reuses its buffer per call
	if math.Abs(y.Mean()) > 0.1 {
		t.Fatalf("eval output mean %v, want ≈0", y.Mean())
	}
	// Eval must be deterministic and independent of batch composition.
	single := tensor.FromSlice(x.Data()[:4], 1, 1, 2, 2)
	y1 := bn.Forward(single, false)
	for j := 0; j < 4; j++ {
		if math.Abs(float64(y1.Data()[j]-y.Data()[j])) > 1e-6 {
			t.Fatal("eval-mode BN must not depend on batch composition")
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 0, 0}, 1, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{1})
	if math.Abs(loss-math.Log(3)) > 1e-6 {
		t.Fatalf("uniform loss=%v want ln3", loss)
	}
	// grad = (1/3 - onehot)/1
	if math.Abs(float64(grad.At(0, 1))-(1.0/3-1)) > 1e-6 {
		t.Fatalf("grad=%v", grad.Data())
	}
}

func TestSoftmaxCrossEntropyGradSumsToZero(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 + int(r.Uint64()%5)
		c := 2 + int(r.Uint64()%6)
		logits := tensor.New(n, c)
		tensor.FillNormal(logits, r, 0, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = int(r.Uint64() % uint64(c))
		}
		_, g := SoftmaxCrossEntropy(logits, labels)
		// Each row of the gradient sums to zero (softmax sums to 1,
		// one-hot sums to 1).
		for i := 0; i < n; i++ {
			var s float64
			for _, v := range g.Row(i) {
				s += float64(v)
			}
			if math.Abs(s) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 5, 2,
		9, 0, 0,
		0, 0, 7,
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 2}); got != 1 {
		t.Fatalf("acc=%v", got)
	}
	if got := Accuracy(logits, []int{0, 0, 2}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("acc=%v", got)
	}
}

func TestTopKAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{3, 2, 1, 0}, 1, 4)
	if TopKAccuracy(logits, []int{2}, 1) != 0 {
		t.Fatal("top1 should miss")
	}
	if TopKAccuracy(logits, []int{2}, 3) != 1 {
		t.Fatal("top3 should hit")
	}
	if TopKAccuracy(logits, []int{3}, 10) != 1 {
		t.Fatal("k>=classes is always a hit")
	}
}

func TestParamMaskAndSparsity(t *testing.T) {
	p := NewParam("w", 4)
	p.W.CopyFrom(tensor.FromSlice([]float32{1, 2, 3, 4}, 4))
	p.Mask = tensor.FromSlice([]float32{1, 0, 1, 0}, 4)
	p.ApplyMask()
	if p.W.At(1) != 0 || p.W.At(3) != 0 || p.W.At(0) != 1 {
		t.Fatalf("mask not applied: %v", p.W.Data())
	}
	if p.Sparsity() != 0.5 {
		t.Fatalf("sparsity=%v", p.Sparsity())
	}
}

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	r := tensor.NewRNG(5)
	build := func() *Network {
		rr := tensor.NewRNG(99) // identical-architecture twin
		return NewNetwork(
			NewConv2D("c", 1, 2, 3, 3, 1, 1, false, rr),
			NewBatchNorm2D("bn", 2),
			NewReLU(),
			NewGlobalAvgPool2D(),
			NewLinear("fc", 2, 3, rr),
		)
	}
	a := build()
	// Touch BN stats and weights so they differ from init.
	x := tensor.New(4, 1, 5, 5)
	tensor.FillNormal(x, r, 1, 2)
	a.Forward(x, true)
	a.Params()[0].Mask = tensor.Ones(a.Params()[0].W.Shape()...)

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := build()
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	outA := a.Forward(x, false)
	outB := b.Forward(x, false)
	if !outA.AllClose(outB, 1e-6) {
		t.Fatal("loaded network must reproduce outputs exactly")
	}
	if b.Params()[0].Mask == nil {
		t.Fatal("mask not restored")
	}
}

func TestNetworkLoadShapeMismatch(t *testing.T) {
	r := tensor.NewRNG(6)
	a := NewNetwork(NewLinear("fc", 3, 2, r))
	b := NewNetwork(NewLinear("fc", 4, 2, r))
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Load(&buf); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSnapshotRestore(t *testing.T) {
	r := tensor.NewRNG(7)
	net := NewNetwork(NewLinear("fc", 4, 2, r))
	snap := net.Snapshot()
	w0 := net.Params()[0].W.Clone()
	net.Params()[0].W.Fill(123)
	if err := net.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !net.Params()[0].W.Equal(w0) {
		t.Fatal("restore did not bring weights back")
	}
}

func TestWeightParamsExcludesBNAndBias(t *testing.T) {
	r := tensor.NewRNG(8)
	net := NewNetwork(
		NewConv2D("c", 1, 2, 3, 3, 1, 1, false, r),
		NewBatchNorm2D("bn", 2),
		NewGlobalAvgPool2D(),
		NewLinear("fc", 2, 3, r),
	)
	wp := net.WeightParams()
	if len(wp) != 2 {
		t.Fatalf("want 2 weight params (conv, fc), got %d", len(wp))
	}
	for _, p := range wp {
		if !p.Decay {
			t.Fatal("WeightParams must be Decay params")
		}
	}
}

func TestNetworkSparsity(t *testing.T) {
	r := tensor.NewRNG(9)
	net := NewNetwork(NewLinear("fc", 4, 1, r))
	if net.Sparsity() != 0 {
		t.Fatal("dense network must report 0 sparsity")
	}
	p := net.WeightParams()[0]
	p.Mask = tensor.FromSlice([]float32{0, 0, 1, 1}, 1, 4)
	if net.Sparsity() != 0.5 {
		t.Fatalf("sparsity=%v", net.Sparsity())
	}
}

func TestBasicBlockShapes(t *testing.T) {
	r := tensor.NewRNG(10)
	b := NewBasicBlock("b", 4, 8, 2, r)
	x := tensor.New(2, 4, 8, 8)
	tensor.FillNormal(x, r, 0, 1)
	y := b.Forward(x, false)
	if y.Dim(1) != 8 || y.Dim(2) != 4 || y.Dim(3) != 4 {
		t.Fatalf("block output shape %v", y.Shape())
	}
	// Identity block preserves shape.
	b2 := NewBasicBlock("b2", 4, 4, 1, r)
	y2 := b2.Forward(x, false)
	if !y2.SameShape(x) {
		t.Fatalf("identity block changed shape: %v", y2.Shape())
	}
}

func TestBasicBlockIdentityPathAtZeroWeights(t *testing.T) {
	// With all conv weights zero and BN beta/gamma at the init values
	// (gamma=1, beta=0, zero input stats), the block reduces to
	// ReLU(shortcut(x)).
	r := tensor.NewRNG(11)
	b := NewBasicBlock("b", 2, 2, 1, r)
	b.Conv1.Weight.W.Zero()
	b.Conv2.Weight.W.Zero()
	x := tensor.New(1, 2, 3, 3)
	tensor.FillNormal(x, r, 0, 1)
	y := b.Forward(x, false)
	for i, v := range x.Data() {
		want := v
		if want < 0 {
			want = 0
		}
		if math.Abs(float64(y.Data()[i]-want)) > 1e-5 {
			t.Fatalf("zero-weight block should be ReLU(x): idx %d got %v want %v", i, y.Data()[i], want)
		}
	}
}
