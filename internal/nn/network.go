package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Network wraps a layer stack with the bookkeeping a training loop
// needs: parameter access, gradient clearing, and full state
// (de)serialization including batch-norm running statistics and pruning
// masks.
type Network struct {
	Body *Sequential

	// params caches the flattened parameter list. Layer topology is
	// fixed after construction, and Load mutates parameter tensors in
	// place (pointer identity is stable), so the cache never goes stale.
	params []*Param
}

// NewNetwork wraps the given layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{Body: NewSequential(layers...)}
}

// Forward runs the network.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return n.Body.Forward(x, train)
}

// Backward back-propagates an output gradient.
func (n *Network) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	return n.Body.Backward(dOut)
}

// Params returns all learnable parameters in a stable order. The list
// is computed once and cached; callers must not append to it.
func (n *Network) Params() []*Param {
	if n.params == nil {
		n.params = n.Body.Params()
	}
	return n.params
}

// WeightParams returns only the weight-decayed parameters — conv and
// linear weight matrices — which are the tensors mapped onto ReRAM
// crossbars and therefore the ones fault injection targets.
func (n *Network) WeightParams() []*Param {
	var ps []*Param
	for _, p := range n.Params() {
		if p.Decay {
			ps = append(ps, p)
		}
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ApplyMasks re-applies all pruning masks (no-op for dense params).
func (n *Network) ApplyMasks() {
	for _, p := range n.Params() {
		p.ApplyMask()
	}
}

// NumParams returns the total learnable element count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Len()
	}
	return total
}

// Sparsity returns the overall fraction of weight entries pruned to
// zero across the weight (Decay) parameters.
func (n *Network) Sparsity() float64 {
	total, zeros := 0, 0
	for _, p := range n.WeightParams() {
		total += p.W.Len()
		if p.Mask != nil {
			for _, v := range p.Mask.Data() {
				if v == 0 {
					zeros++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zeros) / float64(total)
}

// BatchNorms walks the network and returns every BatchNorm2D in order.
func (n *Network) BatchNorms() []*BatchNorm2D {
	var bns []*BatchNorm2D
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *Sequential:
			for _, c := range v.Layers {
				walk(c)
			}
		case *BasicBlock:
			bns = append(bns, v.BN1, v.BN2)
		case *BatchNorm2D:
			bns = append(bns, v)
		}
	}
	walk(n.Body)
	return bns
}

// netState is the gob wire format for a network's learnable state.
// gob cannot encode nil pointers, so mask presence is tracked
// explicitly and only non-nil masks travel on the wire.
type netState struct {
	Params  []*tensor.Tensor
	HasMask []bool
	Masks   []*tensor.Tensor // non-nil masks only, in param order
	BNMean  []*tensor.Tensor
	BNVar   []*tensor.Tensor
}

// Save serializes all weights, masks, and batch-norm running stats.
// The architecture itself is not saved; Load must be called on a
// network of identical construction.
func (n *Network) Save(w io.Writer) error {
	st := netState{}
	for _, p := range n.Params() {
		st.Params = append(st.Params, p.W)
		st.HasMask = append(st.HasMask, p.Mask != nil)
		if p.Mask != nil {
			st.Masks = append(st.Masks, p.Mask)
		}
	}
	for _, bn := range n.BatchNorms() {
		m, v := bn.Stats()
		st.BNMean = append(st.BNMean, m)
		st.BNVar = append(st.BNVar, v)
	}
	return gob.NewEncoder(w).Encode(&st)
}

// Load restores state previously written by Save into a structurally
// identical network.
func (n *Network) Load(r io.Reader) error {
	var st netState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return err
	}
	ps := n.Params()
	if len(st.Params) != len(ps) {
		return fmt.Errorf("nn: state has %d params, network has %d", len(st.Params), len(ps))
	}
	mi := 0
	for i, p := range ps {
		if !p.W.SameShape(st.Params[i]) {
			return fmt.Errorf("nn: param %d shape %v != saved %v", i, p.W.Shape(), st.Params[i].Shape())
		}
		p.W.CopyFrom(st.Params[i])
		if len(st.HasMask) > i && st.HasMask[i] {
			if mi >= len(st.Masks) {
				return fmt.Errorf("nn: corrupt state: mask flag without mask payload")
			}
			p.Mask = st.Masks[mi]
			mi++
		} else {
			p.Mask = nil
		}
	}
	bns := n.BatchNorms()
	if len(st.BNMean) != len(bns) {
		return fmt.Errorf("nn: state has %d batchnorms, network has %d", len(st.BNMean), len(bns))
	}
	for i, bn := range bns {
		bn.RunningMean.CopyFrom(st.BNMean[i])
		bn.RunningVar.CopyFrom(st.BNVar[i])
	}
	return nil
}

// Snapshot returns the serialized state as bytes (convenience wrapper
// around Save).
func (n *Network) Snapshot() []byte {
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		panic(err) // bytes.Buffer cannot fail; a gob error here is a bug
	}
	return buf.Bytes()
}

// Restore loads state captured by Snapshot.
func (n *Network) Restore(state []byte) error {
	return n.Load(bytes.NewReader(state))
}
