package nn

import (
	"math"

	"github.com/ftpim/ftpim/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss over
// a batch of logits (N, classes) with integer labels, returning the
// loss and the gradient with respect to the logits.
//
// The gradient is (softmax(z) − onehot(y)) / N, the textbook fused
// form, which is numerically stable because softmax is computed with
// the row-max subtracted.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, dLogits *tensor.Tensor) {
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: SoftmaxCrossEntropy label count mismatch")
	}
	probs := tensor.Softmax(logits, nil)
	dLogits = probs // reuse: gradient is probs with label column shifted
	invN := float32(1 / float64(n))
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= c {
			panic("nn: label out of range")
		}
		p := float64(probs.At(i, y))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		row := dLogits.Row(i)
		row[y] -= 1
		for j := range row {
			row[j] *= invN
		}
	}
	return loss / float64(n), dLogits
}

// Accuracy returns the fraction of rows of logits whose argmax equals
// the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	correct := 0
	for i := 0; i < n; i++ {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// TopKAccuracy returns the fraction of rows whose label is among the k
// largest logits.
func TopKAccuracy(logits *tensor.Tensor, labels []int, k int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	if k >= c {
		return 1
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		target := row[labels[i]]
		higher := 0
		for _, v := range row {
			if v > target {
				higher++
			}
		}
		if higher < k {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
