package nn

import (
	"math"

	"github.com/ftpim/ftpim/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss over
// a batch of logits (N, classes) with integer labels, returning the
// loss and the gradient with respect to the logits.
//
// The gradient is (softmax(z) − onehot(y)) / N, the textbook fused
// form, which is numerically stable because softmax is computed with
// the row-max subtracted.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, dLogits *tensor.Tensor) {
	return softmaxCrossEntropy(tensor.Softmax(logits, nil), labels)
}

// SoftmaxCrossEntropyWS is SoftmaxCrossEntropy drawing its probability
// buffer (which doubles as the returned gradient) from ws slot 0, so a
// warm training loop pays no allocation for the loss. The gradient is
// valid until the next call with the same workspace.
func SoftmaxCrossEntropyWS(ws *tensor.Workspace, logits *tensor.Tensor, labels []int) (loss float64, dLogits *tensor.Tensor) {
	probs := ws.Get(0, logits.Shape()...)
	tensor.Softmax(logits, probs)
	return softmaxCrossEntropy(probs, labels)
}

// softmaxCrossEntropy turns softmax probabilities into the mean loss and
// in-place gradient shared by both entry points above.
func softmaxCrossEntropy(probs *tensor.Tensor, labels []int) (loss float64, dLogits *tensor.Tensor) {
	n, c := probs.Dim(0), probs.Dim(1)
	if len(labels) != n {
		panic("nn: SoftmaxCrossEntropy label count mismatch")
	}
	dLogits = probs // reuse: gradient is probs with label column shifted
	invN := float32(1 / float64(n))
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= c {
			panic("nn: label out of range")
		}
		p := float64(probs.At(i, y))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		row := dLogits.Row(i)
		row[y] -= 1
		for j := range row {
			row[j] *= invN
		}
	}
	return loss / float64(n), dLogits
}

// Accuracy returns the fraction of rows of logits whose argmax equals
// the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	correct := 0
	for i := 0; i < n; i++ {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// TopKAccuracy returns the fraction of rows whose label is among the k
// largest logits.
func TopKAccuracy(logits *tensor.Tensor, labels []int, k int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	if k >= c {
		return 1
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		target := row[labels[i]]
		higher := 0
		for _, v := range row {
			if v > target {
				higher++
			}
		}
		if higher < k {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
