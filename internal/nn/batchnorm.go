package nn

import (
	"fmt"
	"math"

	"github.com/ftpim/ftpim/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW batch to zero mean and
// unit variance using batch statistics during training and running
// statistics at inference, followed by a learned affine transform.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate (PyTorch convention)

	Gamma, Beta             *Param
	RunningMean, RunningVar *tensor.Tensor

	// backward caches
	lastXHat  *tensor.Tensor
	invStd    []float32
	lastShape []int
	ws        tensor.Workspace // slot 0: forward out; slot 1: backward dX
}

// NewBatchNorm2D creates a batch-norm layer for c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam(name+".gamma", c),
		Beta:        NewParam(name+".beta", c),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.Ones(c),
	}
	bn.Gamma.W.Fill(1)
	bn.Gamma.Decay = false
	bn.Beta.Decay = false
	return bn
}

// Forward normalizes x per channel.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D input shape %v, want (N,%d,H,W)", x.Shape(), bn.C))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	area := h * w
	cnt := n * area
	out := bn.ws.Get(0, x.Shape()...) // every element written below
	xd, od := x.Data(), out.Data()
	gd, bd := bn.Gamma.W.Data(), bn.Beta.W.Data()

	if train {
		if bn.lastXHat == nil || !bn.lastXHat.SameShape(x) {
			bn.lastXHat = tensor.New(x.Shape()...)
		}
		if len(bn.invStd) < bn.C {
			bn.invStd = make([]float32, bn.C)
		}
		xh := bn.lastXHat.Data()
		for c := 0; c < bn.C; c++ {
			var sum, sq float64
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * area
				for j := 0; j < area; j++ {
					v := float64(xd[base+j])
					sum += v
					sq += v * v
				}
			}
			mean := sum / float64(cnt)
			variance := sq/float64(cnt) - mean*mean
			if variance < 0 {
				variance = 0
			}
			inv := float32(1 / math.Sqrt(variance+bn.Eps))
			bn.invStd[c] = inv
			m32 := float32(mean)
			g, b := gd[c], bd[c]
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * area
				for j := 0; j < area; j++ {
					xn := (xd[base+j] - m32) * inv
					xh[base+j] = xn
					od[base+j] = g*xn + b
				}
			}
			// Unbiased variance for the running estimate, as PyTorch does.
			unb := variance
			if cnt > 1 {
				unb = variance * float64(cnt) / float64(cnt-1)
			}
			rm, rv := bn.RunningMean.Data(), bn.RunningVar.Data()
			rm[c] = float32((1-bn.Momentum)*float64(rm[c]) + bn.Momentum*mean)
			rv[c] = float32((1-bn.Momentum)*float64(rv[c]) + bn.Momentum*unb)
		}
		bn.lastShape = append(bn.lastShape[:0], x.Shape()...)
	} else {
		rm, rv := bn.RunningMean.Data(), bn.RunningVar.Data()
		for c := 0; c < bn.C; c++ {
			inv := float32(1 / math.Sqrt(float64(rv[c])+bn.Eps))
			m, g, b := rm[c], gd[c], bd[c]
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * area
				for j := 0; j < area; j++ {
					od[base+j] = g*(xd[base+j]-m)*inv + b
				}
			}
		}
		bn.lastXHat = nil
	}
	return out
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if bn.lastXHat == nil {
		panic("nn: BatchNorm2D.Backward without training Forward")
	}
	n, h, w := dOut.Dim(0), dOut.Dim(2), dOut.Dim(3)
	area := h * w
	cnt := float64(n * area)
	dX := bn.ws.Get(1, dOut.Shape()...) // every element written below
	dd, xh, dxd := dOut.Data(), bn.lastXHat.Data(), dX.Data()
	gG, gB := bn.Gamma.Grad.Data(), bn.Beta.Grad.Data()
	gd := bn.Gamma.W.Data()

	for c := 0; c < bn.C; c++ {
		var sumDy, sumDyXh float64
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * area
			for j := 0; j < area; j++ {
				dy := float64(dd[base+j])
				sumDy += dy
				sumDyXh += dy * float64(xh[base+j])
			}
		}
		gB[c] += float32(sumDy)
		gG[c] += float32(sumDyXh)
		k := float64(gd[c]) * float64(bn.invStd[c])
		meanDy := sumDy / cnt
		meanDyXh := sumDyXh / cnt
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * area
			for j := 0; j < area; j++ {
				dy := float64(dd[base+j])
				xn := float64(xh[base+j])
				dxd[base+j] = float32(k * (dy - meanDy - xn*meanDyXh))
			}
		}
	}
	return dX
}

// Params returns gamma and beta.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Stats returns the running mean/var tensors (shared, not copies); used
// by model serialization.
func (bn *BatchNorm2D) Stats() (mean, variance *tensor.Tensor) {
	return bn.RunningMean, bn.RunningVar
}
