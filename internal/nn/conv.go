package nn

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs, lowered to GEMM via
// im2col. Weights are stored flat as (outC, inC·kh·kw), which is also
// the layout mapped onto ReRAM crossbar columns by internal/reram.
// Bias is optional and off by default (batch norm follows every conv in
// the ResNet models).
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	Weight      *Param
	Bias        *Param // nil when disabled
	lastIn      *tensor.Tensor
	colBuf      []float32   // per-sample im2col scratch (serial path, backward)
	colBufs     [][]float32 // per-shard im2col scratch (parallel forward)
	dColBuf     *tensor.Tensor
	dWTmp       *tensor.Tensor
	ws          tensor.Workspace // slot 0: forward out; slot 1: backward dX
	inH, inW    int
	outH, outW  int
}

// convShardFlops is the minimum per-forward multiply count above which
// the batch loop shards samples across goroutines. Each sample's
// lowering and GEMM are fully independent, so sharding is bit-identical
// to the serial loop.
const convShardFlops = 1 << 16

// NewConv2D creates a 3×3-style convolution layer. He initialization
// is applied with fan-in inC·kh·kw.
func NewConv2D(name string, inC, outC, kh, kw, stride, pad int, bias bool, rng *tensor.RNG) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		Weight: NewParam(name+".weight", outC, inC*kh*kw),
	}
	tensor.InitHe(c.Weight.W, rng, inC*kh*kw)
	if bias {
		c.Bias = NewParam(name+".bias", outC)
		c.Bias.Decay = false
	}
	return c
}

// Forward computes the convolution for an NCHW batch.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input shape %v, want (N,%d,H,W)", x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.inH, c.inW = h, w
	c.outH = tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	outArea := c.outH * c.outW
	colRows := c.InC * c.KH * c.KW
	// The output (like every layer's) lives in the layer's workspace:
	// it is valid until the next Forward call and every element is
	// written below, so Get (unspecified contents) is safe.
	out := c.ws.Get(0, n, c.OutC, c.outH, c.outW)
	inStride := c.InC * h * w
	outStride := c.OutC * outArea
	if workers := tensor.Workers(); n >= 2 && workers > 1 && n*colRows*outArea*c.OutC >= convShardFlops {
		// Shard the batch: every shard gets its own im2col scratch so
		// samples never share mutable state. Results are bit-identical
		// to the serial loop because samples are independent.
		shards := workers
		if shards > n {
			shards = n
		}
		for len(c.colBufs) < shards {
			c.colBufs = append(c.colBufs, nil)
		}
		for s := 0; s < shards; s++ {
			if len(c.colBufs[s]) < colRows*outArea {
				c.colBufs[s] = make([]float32, colRows*outArea)
			}
		}
		tensor.ParallelForN(workers, n, func(shard, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.forwardSample(x, out, i, inStride, outStride, colRows, outArea, c.colBufs[shard])
			}
		})
	} else {
		if len(c.colBuf) < colRows*outArea {
			c.colBuf = make([]float32, colRows*outArea)
		}
		for i := 0; i < n; i++ {
			// A method rather than a closure: a closure shared with the
			// parallel branch would escape (one heap alloc) per Forward.
			c.forwardSample(x, out, i, inStride, outStride, colRows, outArea, c.colBuf)
		}
	}
	if c.Bias != nil {
		bd := c.Bias.W.Data()
		od := out.Data()
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.OutC; oc++ {
				base := i*outStride + oc*outArea
				b := bd[oc]
				for j := 0; j < outArea; j++ {
					od[base+j] += b
				}
			}
		}
	}
	if train {
		c.lastIn = x
	} else {
		c.lastIn = nil
	}
	return out
}

// forwardSample lowers sample i via im2col and multiplies it with the
// weight matrix straight into the batch output.
func (c *Conv2D) forwardSample(x, out *tensor.Tensor, i, inStride, outStride, colRows, outArea int, buf []float32) {
	src := x.Data()[i*inStride : (i+1)*inStride]
	tensor.Im2Col(src, c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad, buf)
	// Raw-slice GEMM: the operands are sub-slices of the batch
	// buffers, so no per-sample tensor headers are allocated.
	tensor.Gemm(out.Data()[i*outStride:(i+1)*outStride],
		c.Weight.W.Data(), buf[:colRows*outArea], c.OutC, colRows, outArea)
}

// Backward accumulates dW (and db) and returns dX. The im2col of each
// sample is recomputed rather than cached, trading FLOPs for memory.
func (c *Conv2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic("nn: Conv2D.Backward without training Forward")
	}
	x := c.lastIn
	n := x.Dim(0)
	outArea := c.outH * c.outW
	colRows := c.InC * c.KH * c.KW
	inStride := c.InC * c.inH * c.inW
	outStride := c.OutC * outArea

	if c.dWTmp == nil || !c.dWTmp.SameShape(c.Weight.W) {
		c.dWTmp = tensor.New(c.Weight.W.Shape()...)
	}
	if c.dColBuf == nil || c.dColBuf.Len() != colRows*outArea {
		c.dColBuf = tensor.New(colRows, outArea)
	}
	if len(c.colBuf) < colRows*outArea { // parallel Forward leaves this unsized
		c.colBuf = make([]float32, colRows*outArea)
	}
	// Col2Im accumulates into its destination, so dX must start zeroed.
	dX := c.ws.GetZeroed(1, x.Shape()...)
	for i := 0; i < n; i++ {
		src := x.Data()[i*inStride : (i+1)*inStride]
		tensor.Im2Col(src, c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad, c.colBuf)
		col := c.colBuf[:colRows*outArea]
		dY := dOut.Data()[i*outStride : (i+1)*outStride]

		// dW += dY · colᵀ
		tensor.GemmTB(c.dWTmp.Data(), dY, col, c.OutC, outArea, colRows)
		c.Weight.Grad.AddInPlace(c.dWTmp)

		// dcol = Wᵀ · dY ; dX_i = col2im(dcol)
		tensor.GemmTA(c.dColBuf.Data(), c.Weight.W.Data(), dY, c.OutC, colRows, outArea)
		tensor.Col2Im(c.dColBuf.Data(), c.InC, c.inH, c.inW, c.KH, c.KW,
			c.Stride, c.Pad, dX.Data()[i*inStride:(i+1)*inStride])
	}
	if c.Bias != nil {
		gd := c.Bias.Grad.Data()
		dd := dOut.Data()
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.OutC; oc++ {
				base := i*outStride + oc*outArea
				var s float32
				for j := 0; j < outArea; j++ {
					s += dd[base+j]
				}
				gd[oc] += s
			}
		}
	}
	return dX
}

// Params returns the convolution's parameters.
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}
