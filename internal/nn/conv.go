package nn

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs, lowered to GEMM
// implicitly: input patches are packed straight into the blocked GEMM's
// column panels (tensor.ConvGemmForward/Backward) and the whole batch
// runs as one OutC × (InC·kh·kw) × (N·outH·outW) product — no column
// matrix is ever materialized. Weights are stored flat as
// (outC, inC·kh·kw), which is also the layout mapped onto ReRAM
// crossbar columns by internal/reram. Bias is optional and off by
// default (batch norm follows every conv in the ResNet models).
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	Weight      *Param
	Bias        *Param // nil when disabled
	lastIn      *tensor.Tensor
	// ws slots: 0 forward out; 1 backward dX; 2 per-sample dW chunks.
	ws         tensor.Workspace
	inH, inW   int
	outH, outW int
}

// NewConv2D creates a 3×3-style convolution layer. He initialization
// is applied with fan-in inC·kh·kw.
func NewConv2D(name string, inC, outC, kh, kw, stride, pad int, bias bool, rng *tensor.RNG) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		Weight: NewParam(name+".weight", outC, inC*kh*kw),
	}
	tensor.InitHe(c.Weight.W, rng, inC*kh*kw)
	if bias {
		c.Bias = NewParam(name+".bias", outC)
		c.Bias.Decay = false
	}
	return c
}

// Forward computes the convolution for an NCHW batch as one implicit
// GEMM over the whole batch; panel sharding inside ConvGemmForward
// parallelizes across output columns, bit-identical at any worker
// count.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input shape %v, want (N,%d,H,W)", x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.inH, c.inW = h, w
	c.outH = tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	outArea := c.outH * c.outW
	// The output (like every layer's) lives in the layer's workspace:
	// it is valid until the next Forward call and every element is
	// written by the GEMM, so Get (unspecified contents) is safe.
	out := c.ws.Get(0, n, c.OutC, c.outH, c.outW)
	tensor.ConvGemmForward(out.Data(), c.Weight.W.Data(), x.Data(),
		n, c.InC, h, w, c.OutC, c.KH, c.KW, c.Stride, c.Pad)
	if c.Bias != nil {
		bd := c.Bias.W.Data()
		od := out.Data()
		outStride := c.OutC * outArea
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.OutC; oc++ {
				base := i*outStride + oc*outArea
				b := bd[oc]
				for j := 0; j < outArea; j++ {
					od[base+j] += b
				}
			}
		}
	}
	if train {
		c.lastIn = x
	} else {
		c.lastIn = nil
	}
	return out
}

// Backward accumulates dW (and db) and returns dX. Column rows are
// regenerated on the fly inside ConvGemmBackward rather than cached,
// trading FLOPs for memory. The batched call produces one dW chunk per
// sample; adding them to the gradient in ascending sample order below
// preserves the per-sample accumulation order of the serial
// GemmTB+AddInPlace loop it replaced, keeping the §6/§7 bit-identity
// contract.
func (c *Conv2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic("nn: Conv2D.Backward without training Forward")
	}
	x := c.lastIn
	n := x.Dim(0)
	outArea := c.outH * c.outW
	colRows := c.InC * c.KH * c.KW

	// The fused col2im consumer accumulates into dX, so it must start
	// zeroed; the chunk buffer is fully written by the batched call.
	dX := c.ws.GetZeroed(1, x.Shape()...)
	chunks := c.ws.Get(2, n, c.OutC, colRows)
	tensor.ConvGemmBackward(dX.Data(), chunks.Data(), c.Weight.W.Data(),
		x.Data(), dOut.Data(), n, c.InC, c.inH, c.inW, c.OutC, c.KH, c.KW,
		c.Stride, c.Pad)
	gd := c.Weight.Grad.Data()
	cd := chunks.Data()
	wlen := c.OutC * colRows
	for i := 0; i < n; i++ {
		chunk := cd[i*wlen : (i+1)*wlen]
		for j, v := range chunk {
			gd[j] += v
		}
	}
	if c.Bias != nil {
		bg := c.Bias.Grad.Data()
		dd := dOut.Data()
		outStride := c.OutC * outArea
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.OutC; oc++ {
				base := i*outStride + oc*outArea
				var s float32
				for j := 0; j < outArea; j++ {
					s += dd[base+j]
				}
				bg[oc] += s
			}
		}
	}
	return dX
}

// Params returns the convolution's parameters.
func (c *Conv2D) Params() []*Param {
	if c.Bias != nil {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}
