package nn

import "github.com/ftpim/ftpim/internal/tensor"

// ReLU is the rectified linear activation, max(0, x).
type ReLU struct {
	mask []bool
	ws   tensor.Workspace // slot 0: forward out; slot 1: backward dX
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward clamps negatives to zero, caching the active mask for
// backward when training. The inactive branch writes an explicit zero
// because the workspace buffer carries the previous iteration's values.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := r.ws.Get(0, x.Shape()...)
	xd, od := x.Data(), out.Data()
	if train {
		if len(r.mask) < len(xd) {
			r.mask = make([]bool, len(xd))
		}
		for i, v := range xd {
			if v > 0 {
				od[i] = v
				r.mask[i] = true
			} else {
				od[i] = 0
				r.mask[i] = false
			}
		}
	} else {
		for i, v := range xd {
			if v > 0 {
				od[i] = v
			} else {
				od[i] = 0
			}
		}
	}
	return out
}

// Backward gates the gradient by the cached activation mask.
func (r *ReLU) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	dX := r.ws.Get(1, dOut.Shape()...)
	dd, dxd := dOut.Data(), dX.Data()
	for i, v := range dd {
		if r.mask[i] {
			dxd[i] = v
		} else {
			dxd[i] = 0
		}
	}
	return dX
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Flatten reshapes (N, C, H, W) to (N, C·H·W).
type Flatten struct {
	lastShape []int
	ws        tensor.Workspace // slot 0: forward view; slot 1: backward view
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the batch dimension. The input's shape is
// copied, not aliased: upstream layers reuse their shape slices in
// place, so a retained reference would be silently rewritten.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.lastShape = append(f.lastShape[:0], x.Shape()...)
	n := x.Dim(0)
	return f.ws.View(0, x.Data(), n, x.Len()/n)
}

// Backward restores the original shape.
func (f *Flatten) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	return f.ws.View(1, dOut.Data(), f.lastShape...)
}

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// GlobalAvgPool2D averages each channel over its spatial extent,
// mapping (N, C, H, W) to (N, C).
type GlobalAvgPool2D struct {
	lastShape []int
	ws        tensor.Workspace // slot 0: forward out; slot 1: backward dX
}

// NewGlobalAvgPool2D returns a global average pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Forward averages spatially.
func (g *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.lastShape = append(g.lastShape[:0], x.Shape()...)
	area := h * w
	out := g.ws.Get(0, n, c)
	xd, od := x.Data(), out.Data()
	inv := 1 / float32(area)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * area
			var s float32
			for j := 0; j < area; j++ {
				s += xd[base+j]
			}
			od[i*c+ch] = s * inv
		}
	}
	return out
}

// Backward spreads each channel gradient uniformly over the spatial
// positions.
func (g *GlobalAvgPool2D) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	area := h * w
	dX := g.ws.Get(1, n, c, h, w)
	dd, dxd := dOut.Data(), dX.Data()
	inv := 1 / float32(area)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			v := dd[i*c+ch] * inv
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				dxd[base+j] = v
			}
		}
	}
	return dX
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }
