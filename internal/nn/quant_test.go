package nn

import (
	"math"
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

// quantTestNet builds a small network covering every layer kind the
// quantizer maps (conv, bn, relu, residual block with option-A
// shortcut, dropout, pool, flatten, linear), runs a few training
// steps' worth of forwards so the batch-norm running statistics move
// off their init values, and returns it with a calibration batch.
func quantTestNet(t *testing.T, seed uint64) (*Network, *tensor.Tensor) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	net := NewNetwork(
		NewConv2D("c1", 3, 8, 3, 3, 1, 1, true, rng),
		NewBatchNorm2D("bn1", 8),
		NewReLU(),
		NewBasicBlock("b1", 8, 16, 2, rng),
		NewDropout(0.1, rng),
		NewGlobalAvgPool2D(),
		NewFlatten(),
		NewLinear("fc", 16, 10, rng),
	)
	warm := tensor.New(8, 3, 12, 12)
	for i := 0; i < 4; i++ {
		tensor.FillNormal(warm, rng, 0, 1)
		net.Forward(warm, true) // move BN running stats
	}
	calib := tensor.New(16, 3, 12, 12)
	tensor.FillNormal(calib, rng, 0, 1)
	return net, calib
}

// TestQuantizedCloseToFloat checks the int8 forward tracks the float
// forward within a few percent relative L2 error on the logits —
// the per-network analogue of the <1pp accuracy acceptance bound.
func TestQuantizedCloseToFloat(t *testing.T) {
	net, calib := quantTestNet(t, 41)
	q, err := QuantizeNetwork(net, []*tensor.Tensor{calib})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	x := tensor.New(16, 3, 12, 12)
	tensor.FillNormal(x, rng, 0, 1)

	fOut := append([]float32(nil), net.Forward(x, false).Data()...)
	qOut := q.Forward(x, false).Data()
	if len(fOut) != len(qOut) {
		t.Fatalf("output length mismatch: %d vs %d", len(fOut), len(qOut))
	}
	var num, den float64
	for i := range fOut {
		d := float64(fOut[i] - qOut[i])
		num += d * d
		den += float64(fOut[i]) * float64(fOut[i])
	}
	rel := math.Sqrt(num / den)
	if rel > 0.05 {
		t.Fatalf("quantized logits relative L2 error %.4f, want <= 0.05", rel)
	}
}

// TestQuantizedDeterministic pins the quantized path's determinism
// contract: int32 accumulation is associative, so the forward is
// bitwise identical across repeated runs AND across worker counts —
// no exact/fast tier split applies.
func TestQuantizedDeterministic(t *testing.T) {
	net, calib := quantTestNet(t, 42)
	q, err := QuantizeNetwork(net, []*tensor.Tensor{calib})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(6)
	x := tensor.New(8, 3, 12, 12)
	tensor.FillNormal(x, rng, 0, 1)

	var ref []float32
	for _, workers := range []int{1, 2, 4, 1} { // trailing 1 = repeat-run check
		prev := tensor.SetWorkers(workers)
		out := q.Forward(x, false).Data()
		tensor.SetWorkers(prev)
		if ref == nil {
			ref = append([]float32(nil), out...)
			continue
		}
		for i, v := range out {
			if v != ref[i] {
				t.Fatalf("workers=%d: output[%d] = %v, want bitwise %v", workers, i, v, ref[i])
			}
		}
	}
}

// TestQuantizeNetworkRepeatable: quantizing the same float network
// twice yields bitwise-identical planes, scales, and outputs.
func TestQuantizeNetworkRepeatable(t *testing.T) {
	net, calib := quantTestNet(t, 43)
	q1, err := QuantizeNetwork(net, []*tensor.Tensor{calib})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := QuantizeNetwork(net, []*tensor.Tensor{calib})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(7)
	x := tensor.New(4, 3, 12, 12)
	tensor.FillNormal(x, rng, 0, 1)
	o1 := q1.Forward(x, false).Data()
	o2 := q2.Forward(x, false).Data()
	for i, v := range o1 {
		if v != o2[i] {
			t.Fatalf("re-quantized output[%d] = %v, want bitwise %v", i, o2[i], v)
		}
	}
}

// TestQuantizedCloneSharesWeightsIndependentScratch: a clone must
// alias the immutable int8 planes (that is the zero-copy contract the
// FTPM loader relies on) while producing bitwise-identical outputs
// from its own scratch.
func TestQuantizedCloneSharesWeightsIndependentScratch(t *testing.T) {
	net, calib := quantTestNet(t, 44)
	q, err := QuantizeNetwork(net, []*tensor.Tensor{calib})
	if err != nil {
		t.Fatal(err)
	}
	c := q.Clone()

	qc, ok := q.Layers[0].(*QConv2D)
	if !ok {
		t.Fatalf("layer 0 is %T, want *QConv2D", q.Layers[0])
	}
	cc := c.Layers[0].(*QConv2D)
	if &qc.WQ[0] != &cc.WQ[0] || &qc.WScale[0] != &cc.WScale[0] {
		t.Fatal("clone copied weight planes; they must be shared")
	}

	rng := tensor.NewRNG(8)
	x := tensor.New(4, 3, 12, 12)
	tensor.FillNormal(x, rng, 0, 1)
	o1 := append([]float32(nil), q.Forward(x, false).Data()...)

	// Run the clone on a different batch first: if scratch were
	// shared, this would clobber the original's buffers mid-flight.
	y := tensor.New(4, 3, 12, 12)
	tensor.FillNormal(y, rng, 0, 1)
	c.Forward(y, false)
	o2 := c.Forward(x, false).Data()
	for i, v := range o1 {
		if v != o2[i] {
			t.Fatalf("clone output[%d] = %v, want bitwise %v", i, o2[i], v)
		}
	}
}

// TestQuantizedNetworkTrainPanics: the quantized path has no training
// mode; asking for one is a programming error, not a silent fallback.
func TestQuantizedNetworkTrainPanics(t *testing.T) {
	net, calib := quantTestNet(t, 45)
	q, err := QuantizeNetwork(net, []*tensor.Tensor{calib})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Forward(train=true) did not panic")
		}
	}()
	q.Forward(calib, true)
}

// TestQuantizeNetworkErrors covers the argument contract.
func TestQuantizeNetworkErrors(t *testing.T) {
	if _, err := QuantizeNetwork(nil, nil); err == nil {
		t.Fatal("nil network accepted")
	}
	net, _ := quantTestNet(t, 46)
	if _, err := QuantizeNetwork(net, nil); err == nil {
		t.Fatal("empty calibration set accepted")
	}
}
