package nn

import (
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

// cloneTestNet builds a network covering every layer kind that
// CloneLayer must handle.
func cloneTestNet() *Network {
	rng := tensor.NewRNG(7)
	return NewNetwork(
		NewConv2D("c1", 3, 6, 3, 3, 1, 1, true, rng),
		NewBatchNorm2D("bn1", 6),
		NewReLU(),
		NewBasicBlock("blk", 6, 8, 2, rng),
		NewGlobalAvgPool2D(),
		NewDropout(0.3, rng),
		NewLinear("fc", 8, 5, rng),
	)
}

func randInput(seed uint64) *tensor.Tensor {
	x := tensor.New(4, 3, 8, 8)
	tensor.FillNormal(x, tensor.NewRNG(seed), 0, 1)
	return x
}

// TestNetworkCloneForwardIdentical checks a clone's inference output is
// bit-identical to the original's.
func TestNetworkCloneForwardIdentical(t *testing.T) {
	net := cloneTestNet()
	// Perturb BN running stats and add a mask so the clone must carry
	// non-default inference state.
	bn := net.BatchNorms()[0]
	bn.RunningMean.Fill(0.25)
	bn.RunningVar.Fill(1.5)
	p := net.WeightParams()[0]
	p.Mask = tensor.Ones(p.W.Shape()...)
	p.Mask.Data()[0] = 0
	p.W.Data()[0] = 0

	clone := net.Clone()
	x := randInput(11)
	want := net.Forward(x, false)
	got := clone.Forward(x, false)
	if !got.Equal(want) {
		t.Fatal("clone forward differs from original")
	}
}

// TestNetworkCloneIsDeep checks clones share no parameter, mask, or
// batch-norm storage with the original.
func TestNetworkCloneIsDeep(t *testing.T) {
	net := cloneTestNet()
	net.WeightParams()[0].Mask = tensor.Ones(net.WeightParams()[0].W.Shape()...)
	clone := net.Clone()

	np, cp := net.Params(), clone.Params()
	if len(np) != len(cp) {
		t.Fatalf("param count %d vs %d", len(np), len(cp))
	}
	x := randInput(13)
	// Forward reuses the layer-owned output buffer, so snapshot it
	// before running the network again.
	want := net.Forward(x, false).Clone()

	for _, p := range cp {
		p.W.Fill(42)
		if p.Mask != nil {
			p.Mask.Fill(0)
		}
	}
	for _, bn := range clone.BatchNorms() {
		bn.RunningMean.Fill(-9)
		bn.RunningVar.Fill(9)
	}
	if got := net.Forward(x, false); !got.Equal(want) {
		t.Fatal("mutating the clone changed the original's output")
	}
	for i := range np {
		if np[i].W == cp[i].W || np[i].Grad == cp[i].Grad {
			t.Fatalf("param %d shares storage with its clone", i)
		}
		if np[i].Name != cp[i].Name || np[i].Decay != cp[i].Decay {
			t.Fatalf("param %d metadata not copied", i)
		}
	}
}

// TestNetworkCloneStateRoundTrip checks a clone accepts the original's
// snapshot (i.e. the architectures match exactly).
func TestNetworkCloneStateRoundTrip(t *testing.T) {
	net := cloneTestNet()
	clone := net.Clone()
	if err := clone.Restore(net.Snapshot()); err != nil {
		t.Fatalf("clone rejected original snapshot: %v", err)
	}
}

// TestConvForwardParallelEquivalence checks the panel-sharded implicit-
// GEMM conv forward is bit-identical to the serial path, including
// shapes where the column panels do not divide evenly across shards.
func TestConvForwardParallelEquivalence(t *testing.T) {
	rng := tensor.NewRNG(3)
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		conv := NewConv2D("c", 4, 9, 3, 3, 1, 1, true, rng)
		x := tensor.New(n, 4, 10, 10)
		tensor.FillNormal(x, tensor.NewRNG(uint64(n)), 0, 1)

		var want *tensor.Tensor
		old := tensor.SetWorkers(1)
		want = conv.Forward(x, false).Clone() // Forward reuses its buffer
		for _, w := range []int{2, 4, 16} {
			tensor.SetWorkers(w)
			if got := conv.Forward(x, false); !got.Equal(want) {
				tensor.SetWorkers(old)
				t.Fatalf("conv forward differs at n=%d workers=%d", n, w)
			}
		}
		tensor.SetWorkers(old)
	}
}

// TestConvTrainAfterParallelForward checks backward still works when
// the preceding forward took the parallel branch.
func TestConvTrainAfterParallelForward(t *testing.T) {
	old := tensor.SetWorkers(8)
	defer tensor.SetWorkers(old)
	rng := tensor.NewRNG(5)
	conv := NewConv2D("c", 3, 8, 3, 3, 1, 1, false, rng)
	x := tensor.New(6, 3, 12, 12)
	tensor.FillNormal(x, tensor.NewRNG(2), 0, 1)
	out := conv.Forward(x, true)
	dX := conv.Backward(out)
	if !dX.SameShape(x) {
		t.Fatalf("backward shape %v", dX.Shape())
	}
	if !conv.Weight.Grad.IsFinite() {
		t.Fatal("non-finite weight gradient")
	}
}

// TestConvBackwardParallelEquivalence checks the sample-sharded fused
// backward produces bit-identical gradients at every worker count,
// including batches that do not divide evenly across shards.
func TestConvBackwardParallelEquivalence(t *testing.T) {
	rng := tensor.NewRNG(17)
	for _, n := range []int{1, 3, 5, 8} {
		conv := NewConv2D("c", 4, 9, 3, 3, 1, 1, false, rng)
		x := tensor.New(n, 4, 10, 10)
		tensor.FillNormal(x, tensor.NewRNG(uint64(n)+40), 0, 1)
		dOut := tensor.New(n, 9, 10, 10)
		tensor.FillNormal(dOut, tensor.NewRNG(uint64(n)+80), 0, 1)

		old := tensor.SetWorkers(1)
		conv.Forward(x, true)
		wantDX := conv.Backward(dOut).Clone() // Backward reuses its buffer
		wantDW := conv.Weight.Grad.Clone()
		for _, w := range []int{2, 4, 16} {
			tensor.SetWorkers(w)
			conv.Weight.Grad.Zero()
			conv.Forward(x, true)
			dX := conv.Backward(dOut)
			if !dX.Equal(wantDX) || !conv.Weight.Grad.Equal(wantDW) {
				tensor.SetWorkers(old)
				t.Fatalf("conv backward differs at n=%d workers=%d", n, w)
			}
		}
		tensor.SetWorkers(old)
	}
}
