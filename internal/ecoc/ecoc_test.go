package ecoc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ftpim/ftpim/internal/tensor"
)

func TestCodebookShapeAndDistance(t *testing.T) {
	rng := tensor.NewRNG(1)
	cb := NewRandomCodebook(10, 32, rng)
	if cb.Classes != 10 || cb.Bits != 32 {
		t.Fatalf("codebook misconfigured: %+v", cb)
	}
	if d := cb.MinDistance(); d < 32/8 {
		t.Fatalf("min distance %d below guarantee", d)
	}
	for c := 0; c < 10; c++ {
		for _, v := range cb.Code(c) {
			if v != 1 && v != -1 {
				t.Fatal("codeword entries must be ±1")
			}
		}
	}
}

func TestCodebookBadConfigPanics(t *testing.T) {
	rng := tensor.NewRNG(2)
	for _, bad := range [][2]int{{1, 16}, {4, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", bad)
				}
			}()
			NewRandomCodebook(bad[0], bad[1], rng)
		}()
	}
}

func TestDecodeExactCodeword(t *testing.T) {
	rng := tensor.NewRNG(3)
	cb := NewRandomCodebook(6, 24, rng)
	for c := 0; c < 6; c++ {
		logits := make([]float32, 24)
		for b, v := range cb.Code(c) {
			logits[b] = float32(v) * 3 // confident logits matching the code
		}
		if got := cb.Decode(logits); got != c {
			t.Fatalf("decode(%d's codeword) = %d", c, got)
		}
	}
}

func TestDecodeCorrectsFlippedBits(t *testing.T) {
	rng := tensor.NewRNG(4)
	cb := NewRandomCodebook(4, 32, rng)
	canFix := (cb.MinDistance() - 1) / 2
	if canFix < 1 {
		t.Skip("code too weak at this seed")
	}
	logits := make([]float32, 32)
	for b, v := range cb.Code(2) {
		logits[b] = float32(v)
	}
	for f := 0; f < canFix; f++ { // flip the first canFix bits
		logits[f] = -logits[f]
	}
	if got := cb.Decode(logits); got != 2 {
		t.Fatalf("ECOC should correct %d flips, decoded %d", canFix, got)
	}
}

func TestLossGradientNumeric(t *testing.T) {
	rng := tensor.NewRNG(5)
	cb := NewRandomCodebook(3, 8, rng)
	logits := tensor.New(2, 8)
	tensor.FillNormal(logits, rng, 0, 1)
	labels := []int{1, 2}
	_, grad := cb.Loss(logits, labels)
	const eps = 1e-3
	for i := 0; i < logits.Len(); i++ {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := cb.Loss(logits, labels)
		logits.Data()[i] = orig - eps
		lm, _ := cb.Loss(logits, labels)
		logits.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if diff := math.Abs(num - float64(grad.Data()[i])); diff > 1e-4 {
			t.Fatalf("grad[%d]: numeric %v vs analytic %v", i, num, grad.Data()[i])
		}
	}
}

func TestLossDecreasesTowardCodeword(t *testing.T) {
	// Gradient descent on the loss alone should drive logits toward the
	// label's codeword signs.
	rng := tensor.NewRNG(6)
	cb := NewRandomCodebook(4, 16, rng)
	logits := tensor.New(1, 16)
	tensor.FillNormal(logits, rng, 0, 0.1)
	labels := []int{3}
	first, _ := cb.Loss(logits, labels)
	for i := 0; i < 300; i++ {
		_, g := cb.Loss(logits, labels)
		logits.Axpy(-5, g)
	}
	last, _ := cb.Loss(logits, labels)
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if cb.Decode(logits.Row(0)) != 3 {
		t.Fatal("optimized logits should decode to the label")
	}
	if acc := cb.Accuracy(logits, labels); acc != 1 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestLossGradRowsConsistentProperty(t *testing.T) {
	// Each bit's gradient lies in (−1/N, +1/N) — σ−t01 ∈ (−1,1).
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		cb := NewRandomCodebook(3, 8, rng)
		n := 1 + int(rng.Uint64()%4)
		logits := tensor.New(n, 8)
		tensor.FillNormal(logits, rng, 0, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = int(rng.Uint64() % 3)
		}
		_, g := cb.Loss(logits, labels)
		bound := float32(1) / float32(n)
		for _, v := range g.Data() {
			if v <= -bound || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
