package ecoc_test

import (
	"testing"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/ecoc"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/optim"
	"github.com/ftpim/ftpim/internal/tensor"
)

// TestECOCComposesWithFTTraining demonstrates the paper's compatibility
// claim: a network with an ECOC head trains through the same
// stochastic fault-injection scheme, and the redundant code bits keep
// decoding accuracy above the plain setup's collapse level under
// faults.
func TestECOCComposesWithFTTraining(t *testing.T) {
	cfg := data.SynthConfig{
		Classes: 4, TrainPer: 40, TestPer: 25,
		Channels: 3, Size: 8, Basis: 10, CoefNoise: 0.1,
		NoiseStd: 0.25, ShiftMax: 1, JitterStd: 0.1, Seed: 41,
	}
	train, test := data.Generate(cfg)
	rng := tensor.NewRNG(9)
	cb := ecoc.NewRandomCodebook(4, 16, rng.Stream("codes"))

	// Conv trunk with a 16-bit ECOC head instead of 4 class logits.
	net := models.BuildSimpleCNN(models.SimpleCNNConfig{
		InChannels: 3, Width: 4, Classes: cb.Bits, Seed: 7,
	})

	// Hand-rolled training loop with fault injection: core.Train is
	// wired to softmax-CE, so the ECOC loss drives the same machinery
	// directly.
	// Phase 1: clean pretraining; phase 2: stochastic FT retraining —
	// the same protocol Algorithm 1 prescribes for the softmax head.
	opt := optim.NewSGD(net.Params(), 0.05, 0.9, 1e-4)
	loader := data.NewLoader(train, 16, data.Augment{Flip: true}, true, rng.Stream("shuffle"))
	weights := weightTensors(net)
	const pre, ft = 10, 8
	sched := optim.NewCosine(0.05, pre)
	ftSched := optim.NewCosine(0.02, ft)
	for epoch := 0; epoch < pre+ft; epoch++ {
		var dm *fault.DeviceMap
		if epoch < pre {
			opt.LR = sched.LR(epoch)
		} else {
			opt.LR = ftSched.LR(epoch - pre)
			dm = fault.DrawDeviceMap(rng.StreamN("faults", epoch), fault.ChenModel(), weights, 0.05)
		}
		loader.Epoch()
		for {
			x, y := loader.Next()
			if x == nil {
				break
			}
			var lesion *fault.Lesion
			if dm != nil {
				lesion = dm.Apply(weights)
			}
			net.ZeroGrad()
			out := net.Forward(x, true)
			_, dOut := cb.Loss(out, y)
			net.Backward(dOut)
			if lesion != nil {
				lesion.Undo()
			}
			opt.Step()
		}
	}

	evalAcc := func() float64 {
		c, h, w := test.Dims()
		x := tensor.FromSlice(test.Images.Data(), test.N(), c, h, w)
		return cb.Accuracy(net.Forward(x, false), test.Labels)
	}
	clean := evalAcc()
	if clean < 0.6 {
		t.Fatalf("ECOC+FT training did not learn: clean acc %.3f", clean)
	}

	// Under the training fault rate the decoded accuracy must stay well
	// above chance (0.25).
	inj := fault.NewInjector(fault.ChenModel(), weights)
	var sum float64
	const runs = 8
	for run := 0; run < runs; run++ {
		lesion := inj.Inject(rng.StreamN("eval", run), 0.05)
		sum += evalAcc()
		lesion.Undo()
	}
	if defect := sum / runs; defect < 0.4 {
		t.Fatalf("ECOC+FT defect accuracy %.3f too close to chance", defect)
	}
}

func weightTensors(net *nn.Network) []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, p := range net.WeightParams() {
		ts = append(ts, p.W)
	}
	return ts
}
