// Package ecoc implements error-correcting output codes for DNN
// classifiers (Liu et al., DAC'19 [28]). Instead of one logit per
// class, the network emits B code bits; each class is assigned a
// ±1 codeword, training minimizes per-bit logistic loss, and inference
// decodes to the nearest codeword. Redundant bits let the classifier
// absorb corrupted logits — the output-side complement to the paper's
// weight-side stochastic fault-tolerant training, with which it
// composes (the paper notes the two are compatible; the test suite
// demonstrates ECOC + FT training end to end).
package ecoc

import (
	"fmt"
	"math"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Codebook assigns every class a ±1 codeword of Bits bits.
//
// A Codebook is not safe for concurrent Decode/Accuracy calls: decoding
// reuses a cached code matrix and score buffer. Give each goroutine its
// own codebook (or guard it) when decoding in parallel.
type Codebook struct {
	Classes int
	Bits    int
	codes   [][]int8 // classes × bits, entries ±1

	mat    *tensor.Tensor // codes as float32, built lazily for decoding
	scores []float32      // per-class correlation scratch
}

// NewRandomCodebook draws random balanced codewords with a guaranteed
// minimum pairwise Hamming distance of at least bits/8 (retrying rows
// that land too close). bits should comfortably exceed log2(classes);
// 4–8× is typical for ECOC.
func NewRandomCodebook(classes, bits int, rng *tensor.RNG) *Codebook {
	if classes < 2 || bits < 2 {
		panic(fmt.Sprintf("ecoc: need ≥2 classes and ≥2 bits, got %d/%d", classes, bits))
	}
	minDist := bits / 8
	cb := &Codebook{Classes: classes, Bits: bits}
	const maxTries = 2000
	for c := 0; c < classes; c++ {
		ok := false
		for try := 0; try < maxTries && !ok; try++ {
			row := make([]int8, bits)
			for b := range row {
				if rng.Uint64()%2 == 0 {
					row[b] = 1
				} else {
					row[b] = -1
				}
			}
			ok = true
			for _, prev := range cb.codes {
				if hamming(prev, row) < minDist {
					ok = false
					break
				}
			}
			if ok {
				cb.codes = append(cb.codes, row)
			}
		}
		if !ok {
			panic(fmt.Sprintf("ecoc: cannot place %d codewords of %d bits with distance ≥%d", classes, bits, minDist))
		}
	}
	return cb
}

func hamming(a, b []int8) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// MinDistance returns the smallest pairwise Hamming distance — the
// code can correct ⌊(MinDistance−1)/2⌋ flipped bits.
func (cb *Codebook) MinDistance() int {
	best := cb.Bits + 1
	for i := 0; i < len(cb.codes); i++ {
		for j := i + 1; j < len(cb.codes); j++ {
			if d := hamming(cb.codes[i], cb.codes[j]); d < best {
				best = d
			}
		}
	}
	return best
}

// Code returns class c's codeword (±1 entries; do not mutate).
func (cb *Codebook) Code(c int) []int8 { return cb.codes[c] }

// Decode maps one row of bit logits to the class whose codeword best
// matches, scoring by the soft correlation Σ_b code_b·logit_b (which
// subsumes Hamming decoding on the signs but weighs confident bits
// more).
func (cb *Codebook) Decode(logits []float32) int {
	if len(logits) != cb.Bits {
		panic(fmt.Sprintf("ecoc: logit width %d, want %d bits", len(logits), cb.Bits))
	}
	if cb.mat == nil {
		cb.mat = tensor.New(cb.Classes, cb.Bits)
		md := cb.mat.Data()
		for c, code := range cb.codes {
			for b, v := range code {
				md[c*cb.Bits+b] = float32(v)
			}
		}
		cb.scores = make([]float32, cb.Classes)
	}
	// One matrix-vector product scores all classes; ties resolve to the
	// lowest class index, as the scalar loop did.
	tensor.MatVecInto(cb.scores, cb.mat, logits)
	best, bi := float32(math.Inf(-1)), 0
	for c, s := range cb.scores {
		if s > best {
			best, bi = s, c
		}
	}
	return bi
}

// Loss computes the logistic code-bit loss over a batch of bit logits
// (N × Bits) against the labels' codewords — summed over bits, averaged
// over the batch, so the gradient scale matches a softmax head's —
// returning the gradient with respect to the logits:
//
//	ℓ = Σ_b softplus(−t_b·z_b),  dℓ/dz_b = σ(z_b) − (t_b+1)/2,  t ∈ {−1, +1}.
func (cb *Codebook) Loss(logits *tensor.Tensor, labels []int) (loss float64, dLogits *tensor.Tensor) {
	n := logits.Dim(0)
	if logits.Dim(1) != cb.Bits {
		panic(fmt.Sprintf("ecoc: logit width %d, want %d bits", logits.Dim(1), cb.Bits))
	}
	if len(labels) != n {
		panic("ecoc: label count mismatch")
	}
	dLogits = tensor.New(logits.Shape()...)
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		code := cb.codes[labels[i]]
		zrow := logits.Row(i)
		grow := dLogits.Row(i)
		for b, z := range zrow {
			t := float64(code[b])
			// softplus(−t·z), numerically stable.
			x := -t * float64(z)
			if x > 0 {
				loss += x + math.Log1p(math.Exp(-x))
			} else {
				loss += math.Log1p(math.Exp(x))
			}
			sig := 1 / (1 + math.Exp(-float64(z)))
			grow[b] = float32((sig - (t+1)/2) * invN)
		}
	}
	return loss * invN, dLogits
}

// Accuracy decodes every row and compares with the labels.
func (cb *Codebook) Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	correct := 0
	for i := 0; i < n; i++ {
		if cb.Decode(logits.Row(i)) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
