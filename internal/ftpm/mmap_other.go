//go:build !(linux || darwin)

package ftpm

import "fmt"

// mmapFile is unavailable on this platform; Load falls back to
// reading the whole file into memory.
func mmapFile(path string) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("ftpm: mmap unsupported on this platform")
}
