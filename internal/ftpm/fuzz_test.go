package ftpm

import (
	"testing"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// FuzzLoadModel drives Decode with arbitrary bytes, mirroring the
// checkpoint container's FuzzLoadCheckpoint: it must never panic and
// never allocate unboundedly, and anything it accepts must re-encode
// to the exact input bytes — FTPM has a single canonical byte
// representation (sorted sections, layer-order blobs), so
// decode∘encode is the identity on valid files.
func FuzzLoadModel(f *testing.F) {
	rng := tensor.NewRNG(51)
	net := nn.NewNetwork(
		nn.NewConv2D("c1", 1, 2, 3, 3, 1, 1, true, rng),
		nn.NewBatchNorm2D("bn1", 2),
		nn.NewReLU(),
		nn.NewGlobalAvgPool2D(),
		nn.NewFlatten(),
		nn.NewLinear("fc", 2, 2, rng),
	)
	calib := tensor.New(2, 1, 6, 6)
	tensor.FillNormal(calib, rng, 0, 1)
	q, err := nn.QuantizeNetwork(net, []*tensor.Tensor{calib})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := Encode(q, Meta{Model: "fuzz", Dataset: "synthetic"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])              // truncated tail
	f.Add(append([]byte(nil), valid[4:]...)) // missing magic
	f.Add([]byte("FTPM"))                    // magic only
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[20] ^= 0x10
	f.Add(mut) // bit flip

	f.Fuzz(func(t *testing.T, data []byte) {
		got, meta, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(got, meta)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode∘encode is not identity: %d in, %d out", len(data), len(re))
		}
	})
}
