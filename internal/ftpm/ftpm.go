// Package ftpm is the exported single-file model format: an int8
// quantized network plus its architecture, scales, and provenance in
// one mmap-able file.
//
// FTPM reuses the hardened section container from internal/ckpt (same
// wire discipline: magic, version, sorted sections, per-section
// CRC-32) under its own magic 'FTPM'. The ckpt checkpoint format
// snapshots a float training run mid-flight; FTPM is the deployment
// artifact — inference-only, quantized, write-once.
//
// The section count in the container is hard-bounded (64), so FTPM
// does NOT use one section per layer (a ResNet-32 has 31 weighted
// layers and would overflow). Instead it consolidates:
//
//	"arch"    binary layer list (kinds, shapes, activation scales)
//	"weights" every int8 weight plane, concatenated in layer order
//	"scales"  every per-row weight scale, float32 LE, layer order
//	"biases"  every bias vector, float32 LE, layer order
//	"bn"      every folded batch-norm affine (scale then shift), layer order
//	"meta"    JSON provenance (model/dataset/accuracies)
//
// Layer order fully determines every blob offset, so decode walks one
// cursor per blob and requires each to land exactly at its blob's end.
//
// Zero-copy contract: Decode aliases the "weights" payload — the
// network's int8 planes point INTO the input buffer (an mmap'd region
// under Load). int8 has alignment 1, so the cast is always valid. The
// float32 blobs are small (per-channel, not per-weight) and their
// payload offsets carry no alignment guarantee, so they are decoded
// into fresh slices. Consequences: the mapped file must outlive the
// network (Model.Close unmaps — drop the network first), and the
// weights are immutable — the mapping is PROT_READ, so a stray write
// faults instead of corrupting the model. Fault-injection (defect
// eval) stays on the float path, which owns its planes.
package ftpm

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"unsafe"

	"github.com/ftpim/ftpim/internal/ckpt"
	"github.com/ftpim/ftpim/internal/nn"
)

// FormatVersion is the FTPM container version.
const FormatVersion = 1

// FormatName is the human-readable format identifier surfaced by
// `ftpim version` and /v1/healthz.
const FormatName = "ftpm-v1"

// format instantiates the shared ckpt section container for FTPM.
var format = ckpt.Format{Magic: [4]byte{'F', 'T', 'P', 'M'}, Version: FormatVersion, Tag: "ftpm"}

// Decoder hardening bounds: dimensions in the arch section are
// validated against these before any multiplication, so hostile files
// cannot overflow size arithmetic or demand huge allocations.
const (
	maxLayers = 1024
	maxDim    = 1 << 16
)

// Meta is the provenance block stored alongside the weights.
type Meta struct {
	Model    string  `json:"model"`               // e.g. "resnet8"
	Dataset  string  `json:"dataset"`             // e.g. "repro"
	Classes  int     `json:"classes,omitempty"`   // output classes
	FloatAcc float64 `json:"float_acc,omitempty"` // float32 top-1 at export
	QuantAcc float64 `json:"quant_acc,omitempty"` // int8 top-1 at export
	Created  string  `json:"created,omitempty"`   // RFC 3339, informational
}

// archLayer is one layer of the topology, the in-memory form of one
// arch-section record. Blob offsets are not stored: decode derives
// them from the dims, walking each blob with a cursor in layer order.
type archLayer struct {
	Kind   string
	InC    int
	OutC   int
	KH     int
	KW     int
	Stride int
	Pad    int
	In     int
	Out    int
	C      int
	Bias   bool
	XScale float32
	// Sub is a residual block's internal sequence: conv, bn, conv, bn.
	Sub []archLayer
}

// The arch section is a fixed little-endian binary encoding rather
// than JSON: cold start is the format's reason to exist, and profiling
// showed reflective JSON decoding of the layer list dominating Load
// (~75% of its time on a ResNet-20). Layout: u32 layer count, then per
// layer a kind byte followed by that kind's fields (u32 dims, a 0/1
// bias byte, f32 activation scale; blocks carry a sub-count byte and
// nested records). The encoding is canonical — exactly one byte string
// per network — which the loader enforces (bias bytes must be 0 or 1,
// sub-count must be 4, no trailing bytes) so decode∘encode stays the
// identity the fuzz harness pins.
const (
	kindConv byte = iota + 1
	kindLinear
	kindBN
	kindReLU
	kindGAP
	kindFlatten
	kindIdentity
	kindBlock
)

func marshalArch(layers []archLayer) ([]byte, error) {
	dst := binary.LittleEndian.AppendUint32(nil, uint32(len(layers)))
	var err error
	for _, al := range layers {
		if dst, err = appendArchLayer(dst, al); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func appendArchLayer(dst []byte, al archLayer) ([]byte, error) {
	switch al.Kind {
	case "conv":
		dst = append(dst, kindConv)
		dst = appendU32s(dst, al.InC, al.OutC, al.KH, al.KW, al.Stride, al.Pad)
		dst = append(dst, boolByte(al.Bias))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(al.XScale))
	case "linear":
		dst = append(dst, kindLinear)
		dst = appendU32s(dst, al.In, al.Out)
		dst = append(dst, boolByte(al.Bias))
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(al.XScale))
	case "bn":
		dst = append(dst, kindBN)
		dst = appendU32s(dst, al.C)
	case "relu":
		dst = append(dst, kindReLU)
	case "gap":
		dst = append(dst, kindGAP)
	case "flatten":
		dst = append(dst, kindFlatten)
	case "identity":
		dst = append(dst, kindIdentity)
	case "block":
		dst = append(dst, kindBlock)
		dst = appendU32s(dst, al.InC, al.OutC, al.Stride)
		dst = append(dst, byte(len(al.Sub)))
		var err error
		for _, sl := range al.Sub {
			if dst, err = appendArchLayer(dst, sl); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("ftpm: unknown layer kind %q", al.Kind)
	}
	return dst, nil
}

func appendU32s(dst []byte, vs ...int) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// archReader walks the arch section with a sticky truncation flag, so
// record parsing reads straight through and checks once per layer.
type archReader struct {
	b    []byte
	off  int
	fail bool
}

func (r *archReader) u8() byte {
	if r.off >= len(r.b) {
		r.fail = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *archReader) u32() int {
	if r.off+4 > len(r.b) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return int(v)
}

func (r *archReader) f32() float32 {
	return math.Float32frombits(uint32(r.u32()))
}

// bool reads a canonical 0/1 byte; any other value is corruption (and
// would break the decode∘encode identity).
func (r *archReader) bool() bool {
	v := r.u8()
	if v > 1 {
		r.fail = true
	}
	return v == 1
}

func readArchLayer(r *archReader, allowBlock bool) (archLayer, error) {
	var al archLayer
	switch kind := r.u8(); kind {
	case kindConv:
		al = archLayer{Kind: "conv", InC: r.u32(), OutC: r.u32(), KH: r.u32(),
			KW: r.u32(), Stride: r.u32(), Pad: r.u32(), Bias: r.bool(), XScale: r.f32()}
	case kindLinear:
		al = archLayer{Kind: "linear", In: r.u32(), Out: r.u32(), Bias: r.bool(), XScale: r.f32()}
	case kindBN:
		al = archLayer{Kind: "bn", C: r.u32()}
	case kindReLU:
		al = archLayer{Kind: "relu"}
	case kindGAP:
		al = archLayer{Kind: "gap"}
	case kindFlatten:
		al = archLayer{Kind: "flatten"}
	case kindIdentity:
		al = archLayer{Kind: "identity"}
	case kindBlock:
		if !allowBlock {
			return al, fmt.Errorf("ftpm: nested block")
		}
		al = archLayer{Kind: "block", InC: r.u32(), OutC: r.u32(), Stride: r.u32()}
		if n := r.u8(); !r.fail && n != 4 {
			return al, fmt.Errorf("ftpm: block sub-count %d, want 4", n)
		}
		for i := 0; i < 4 && !r.fail; i++ {
			sl, err := readArchLayer(r, false)
			if err != nil {
				return al, err
			}
			al.Sub = append(al.Sub, sl)
		}
	default:
		return al, fmt.Errorf("ftpm: unknown layer kind %d", kind)
	}
	if r.fail {
		return al, fmt.Errorf("ftpm: truncated arch section")
	}
	return al, nil
}

func unmarshalArch(b []byte) ([]archLayer, error) {
	r := &archReader{b: b}
	n := r.u32()
	if r.fail || n < 1 || n > maxLayers {
		return nil, fmt.Errorf("ftpm: implausible layer count %d", n)
	}
	layers := make([]archLayer, 0, n)
	for i := 0; i < n; i++ {
		al, err := readArchLayer(r, true)
		if err != nil {
			return nil, err
		}
		layers = append(layers, al)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("ftpm: %d trailing bytes in arch section", len(b)-r.off)
	}
	return layers, nil
}

// blobs accumulates the consolidated sections during encode and walks
// them with cursors during decode.
type blobs struct {
	weights                 []int8
	scales                  []float32
	biases                  []float32
	bn                      []float32
	wOff, sOff, bOff, bnOff int
}

// Encode serializes a calibrated quantized network into one FTPM
// container. The network must come out of nn.QuantizeNetwork (or an
// FTPM decode): every conv/linear layer needs a positive activation
// scale.
func Encode(q *nn.QuantizedNetwork, meta Meta) ([]byte, error) {
	if q == nil || len(q.Layers) == 0 {
		return nil, fmt.Errorf("ftpm: empty network")
	}
	if len(q.Layers) > maxLayers {
		return nil, fmt.Errorf("ftpm: %d layers exceeds limit %d", len(q.Layers), maxLayers)
	}
	var layers []archLayer
	var bl blobs
	for _, l := range q.Layers {
		al, err := encodeLayer(l, &bl)
		if err != nil {
			return nil, err
		}
		layers = append(layers, al)
	}
	archBin, err := marshalArch(layers)
	if err != nil {
		return nil, err
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("ftpm: encode meta: %w", err)
	}
	return ckpt.EncodeContainer(format, map[string][]byte{
		"arch":    archBin,
		"weights": bytesOfS8(bl.weights),
		"scales":  appendF32(nil, bl.scales),
		"biases":  appendF32(nil, bl.biases),
		"bn":      appendF32(nil, bl.bn),
		"meta":    metaJSON,
	})
}

func encodeLayer(l nn.QLayer, bl *blobs) (archLayer, error) {
	switch t := l.(type) {
	case *nn.QConv2D:
		if t.XScale <= 0 {
			return archLayer{}, fmt.Errorf("ftpm: conv layer not calibrated (XScale=%v)", t.XScale)
		}
		bl.weights = append(bl.weights, t.WQ...)
		bl.scales = append(bl.scales, t.WScale...)
		bl.biases = append(bl.biases, t.Bias...)
		return archLayer{
			Kind: "conv", InC: t.InC, OutC: t.OutC, KH: t.KH, KW: t.KW,
			Stride: t.Stride, Pad: t.Pad, Bias: t.Bias != nil, XScale: t.XScale,
		}, nil
	case *nn.QLinear:
		if t.XScale <= 0 {
			return archLayer{}, fmt.Errorf("ftpm: linear layer not calibrated (XScale=%v)", t.XScale)
		}
		bl.weights = append(bl.weights, t.WQ...)
		bl.scales = append(bl.scales, t.WScale...)
		bl.biases = append(bl.biases, t.Bias...)
		return archLayer{
			Kind: "linear", In: t.In, Out: t.Out, Bias: t.Bias != nil, XScale: t.XScale,
		}, nil
	case *nn.QBatchNorm:
		bl.bn = append(bl.bn, t.Scale...)
		bl.bn = append(bl.bn, t.Shift...)
		return archLayer{Kind: "bn", C: t.C}, nil
	case *nn.QReLU:
		return archLayer{Kind: "relu"}, nil
	case *nn.QGlobalAvgPool:
		return archLayer{Kind: "gap"}, nil
	case *nn.QFlatten:
		return archLayer{Kind: "flatten"}, nil
	case nn.QIdentity, *nn.QIdentity:
		return archLayer{Kind: "identity"}, nil
	case *nn.QBasicBlock:
		var sub []archLayer
		for _, inner := range []nn.QLayer{t.Conv1, t.BN1, t.Conv2, t.BN2} {
			al, err := encodeLayer(inner, bl)
			if err != nil {
				return archLayer{}, err
			}
			sub = append(sub, al)
		}
		return archLayer{
			Kind: "block", InC: t.InC, OutC: t.OutC, Stride: t.Stride, Sub: sub,
		}, nil
	default:
		return archLayer{}, fmt.Errorf("ftpm: unsupported layer type %T", l)
	}
}

// Decode reconstructs the quantized network from one FTPM container.
// The returned network's int8 weight planes ALIAS b (see the package
// comment's zero-copy contract); float planes are copies.
func Decode(b []byte) (*nn.QuantizedNetwork, Meta, error) {
	var meta Meta
	sections, err := ckpt.DecodeContainer(format, b)
	if err != nil {
		return nil, meta, err
	}
	for _, name := range []string{"arch", "weights", "scales", "biases", "bn", "meta"} {
		if _, ok := sections[name]; !ok {
			return nil, meta, fmt.Errorf("ftpm: missing section %q", name)
		}
	}
	if len(sections) != 6 {
		return nil, meta, fmt.Errorf("ftpm: unexpected extra sections (%d, want 6)", len(sections))
	}
	if err := json.Unmarshal(sections["meta"], &meta); err != nil {
		return nil, meta, fmt.Errorf("ftpm: bad meta section: %w", err)
	}
	layers, err := unmarshalArch(sections["arch"])
	if err != nil {
		return nil, meta, err
	}
	bl := blobs{weights: int8sOf(sections["weights"])}
	if bl.scales, err = decodeF32(sections["scales"]); err != nil {
		return nil, meta, fmt.Errorf("ftpm: scales section: %w", err)
	}
	if bl.biases, err = decodeF32(sections["biases"]); err != nil {
		return nil, meta, fmt.Errorf("ftpm: biases section: %w", err)
	}
	if bl.bn, err = decodeF32(sections["bn"]); err != nil {
		return nil, meta, fmt.Errorf("ftpm: bn section: %w", err)
	}
	q := &nn.QuantizedNetwork{Layers: make([]nn.QLayer, len(layers))}
	for i, al := range layers {
		ql, err := buildLayer(al, &bl, true)
		if err != nil {
			return nil, meta, err
		}
		q.Layers[i] = ql
	}
	// Every blob must be fully consumed: leftover bytes mean the arch
	// and the planes disagree, which is corruption, not slack.
	if bl.wOff != len(bl.weights) || bl.sOff != len(bl.scales) ||
		bl.bOff != len(bl.biases) || bl.bnOff != len(bl.bn) {
		return nil, meta, fmt.Errorf("ftpm: blob sizes disagree with arch (weights %d/%d, scales %d/%d, biases %d/%d, bn %d/%d)",
			bl.wOff, len(bl.weights), bl.sOff, len(bl.scales), bl.bOff, len(bl.biases), bl.bnOff, len(bl.bn))
	}
	return q, meta, nil
}

// takeW/takeF advance a blob cursor, bounds-checked.
func (bl *blobs) takeW(n int) ([]int8, error) {
	if n < 0 || bl.wOff+n > len(bl.weights) {
		return nil, fmt.Errorf("ftpm: weights blob exhausted (need %d at %d of %d)", n, bl.wOff, len(bl.weights))
	}
	s := bl.weights[bl.wOff : bl.wOff+n]
	bl.wOff += n
	return s, nil
}

func takeF(buf []float32, off *int, n int, what string) ([]float32, error) {
	if n < 0 || *off+n > len(buf) {
		return nil, fmt.Errorf("ftpm: %s blob exhausted (need %d at %d of %d)", what, n, *off, len(buf))
	}
	s := buf[*off : *off+n]
	*off += n
	return s, nil
}

// dimOK validates one dimension against the hardening bound.
func dimOK(vs ...int) bool {
	for _, v := range vs {
		if v < 1 || v > maxDim {
			return false
		}
	}
	return true
}

func scaleOK(s float32) bool {
	return s > 0 && !math.IsInf(float64(s), 0) && !math.IsNaN(float64(s))
}

func buildLayer(al archLayer, bl *blobs, allowBlock bool) (nn.QLayer, error) {
	switch al.Kind {
	case "conv":
		if !dimOK(al.InC, al.OutC, al.KH, al.KW, al.Stride) || al.Pad < 0 || al.Pad > maxDim {
			return nil, fmt.Errorf("ftpm: implausible conv dims %+v", al)
		}
		if !scaleOK(al.XScale) {
			return nil, fmt.Errorf("ftpm: conv activation scale %v out of range", al.XScale)
		}
		k := al.InC * al.KH * al.KW
		wq, err := bl.takeW(al.OutC * k)
		if err != nil {
			return nil, err
		}
		ws, err := takeF(bl.scales, &bl.sOff, al.OutC, "scales")
		if err != nil {
			return nil, err
		}
		var bias []float32
		if al.Bias {
			if bias, err = takeF(bl.biases, &bl.bOff, al.OutC, "biases"); err != nil {
				return nil, err
			}
		}
		for _, s := range ws {
			if !scaleOK(s) {
				return nil, fmt.Errorf("ftpm: conv weight scale %v out of range", s)
			}
		}
		return nn.NewQConv2D(al.InC, al.OutC, al.KH, al.KW, al.Stride, al.Pad, wq, ws, bias, al.XScale), nil
	case "linear":
		if !dimOK(al.In, al.Out) {
			return nil, fmt.Errorf("ftpm: implausible linear dims %+v", al)
		}
		if !scaleOK(al.XScale) {
			return nil, fmt.Errorf("ftpm: linear activation scale %v out of range", al.XScale)
		}
		wq, err := bl.takeW(al.Out * al.In)
		if err != nil {
			return nil, err
		}
		ws, err := takeF(bl.scales, &bl.sOff, al.Out, "scales")
		if err != nil {
			return nil, err
		}
		var bias []float32
		if al.Bias {
			if bias, err = takeF(bl.biases, &bl.bOff, al.Out, "biases"); err != nil {
				return nil, err
			}
		}
		for _, s := range ws {
			if !scaleOK(s) {
				return nil, fmt.Errorf("ftpm: linear weight scale %v out of range", s)
			}
		}
		return nn.NewQLinear(al.In, al.Out, wq, ws, bias, al.XScale), nil
	case "bn":
		if !dimOK(al.C) {
			return nil, fmt.Errorf("ftpm: implausible bn channels %d", al.C)
		}
		scale, err := takeF(bl.bn, &bl.bnOff, al.C, "bn")
		if err != nil {
			return nil, err
		}
		shift, err := takeF(bl.bn, &bl.bnOff, al.C, "bn")
		if err != nil {
			return nil, err
		}
		return nn.NewQBatchNorm(scale, shift), nil
	case "relu":
		return nn.NewQReLU(), nil
	case "gap":
		return nn.NewQGlobalAvgPool(), nil
	case "flatten":
		return nn.NewQFlatten(), nil
	case "identity":
		return nn.NewQIdentity(), nil
	case "block":
		if !allowBlock {
			return nil, fmt.Errorf("ftpm: nested block")
		}
		if !dimOK(al.InC, al.OutC, al.Stride) {
			return nil, fmt.Errorf("ftpm: implausible block dims %+v", al)
		}
		if len(al.Sub) != 4 || al.Sub[0].Kind != "conv" || al.Sub[1].Kind != "bn" ||
			al.Sub[2].Kind != "conv" || al.Sub[3].Kind != "bn" {
			return nil, fmt.Errorf("ftpm: block must contain conv,bn,conv,bn")
		}
		parts := make([]nn.QLayer, 4)
		for i, sl := range al.Sub {
			p, err := buildLayer(sl, bl, false)
			if err != nil {
				return nil, err
			}
			parts[i] = p
		}
		return nn.NewQBasicBlock(
			parts[0].(*nn.QConv2D), parts[1].(*nn.QBatchNorm),
			parts[2].(*nn.QConv2D), parts[3].(*nn.QBatchNorm),
			al.InC, al.OutC, al.Stride), nil
	default:
		return nil, fmt.Errorf("ftpm: unknown layer kind %q", al.Kind)
	}
}

// Save writes the network to path via temp-file+rename, so a crash
// mid-export leaves either the old file or the new one, never a torn
// model.
func Save(path string, q *nn.QuantizedNetwork, meta Meta) error {
	data, err := Encode(q, meta)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Model is a loaded FTPM file: the reconstructed network plus the
// backing mapping it aliases.
type Model struct {
	Net    *nn.QuantizedNetwork
	Meta   Meta
	Mapped bool // true when the weights alias an mmap'd region

	unmap func() error
}

// Close releases the backing mapping. The network's int8 planes alias
// it, so the network (and every Clone — clones share the planes) must
// not be used after Close.
func (m *Model) Close() error {
	if m.unmap == nil {
		return nil
	}
	u := m.unmap
	m.unmap = nil
	return u()
}

// Load opens an exported model, zero-copy: on unix the file is mmap'd
// PROT_READ and the int8 weight planes alias the mapping (cold-start
// cost is one page-table setup plus decoding the small float/JSON
// sections, independent of weight volume); elsewhere — or if mmap
// fails — it falls back to reading the file into memory.
func Load(path string) (*Model, error) {
	b, unmap, err := mmapFile(path)
	mapped := err == nil
	if err != nil {
		if b, err = os.ReadFile(path); err != nil {
			return nil, err
		}
	}
	net, meta, err := Decode(b)
	if err != nil {
		if mapped {
			unmap()
		}
		return nil, err
	}
	m := &Model{Net: net, Meta: meta, Mapped: mapped}
	if mapped {
		m.unmap = unmap
	}
	return m, nil
}

// bytesOfS8 views an int8 slice as bytes without copying (encode side).
func bytesOfS8(s []int8) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s))
}

// int8sOf views a byte slice as int8 without copying (decode side —
// this is the zero-copy aliasing step; int8 has alignment 1, so the
// cast is valid at any offset).
func int8sOf(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}

// appendF32 appends float32 values to dst as little-endian bytes.
func appendF32(dst []byte, vs []float32) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// decodeF32 decodes a little-endian float32 blob into a fresh slice
// (copied: payload offsets carry no 4-byte alignment guarantee, and
// the floats are per-channel — tiny next to the int8 planes).
func decodeF32(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("length %d not a multiple of 4", len(b))
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}
