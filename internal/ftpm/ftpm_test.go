package ftpm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// testQNet builds a small calibrated quantized network covering every
// layer kind FTPM serializes, plus an input batch for output checks.
func testQNet(t testing.TB, seed uint64) (*nn.QuantizedNetwork, *tensor.Tensor) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	net := nn.NewNetwork(
		nn.NewConv2D("c1", 2, 4, 3, 3, 1, 1, true, rng),
		nn.NewBatchNorm2D("bn1", 4),
		nn.NewReLU(),
		nn.NewBasicBlock("b1", 4, 8, 2, rng),
		nn.NewDropout(0.1, rng),
		nn.NewGlobalAvgPool2D(),
		nn.NewFlatten(),
		nn.NewLinear("fc", 8, 4, rng),
	)
	warm := tensor.New(4, 2, 8, 8)
	for i := 0; i < 3; i++ {
		tensor.FillNormal(warm, rng, 0, 1)
		net.Forward(warm, true) // move BN running stats off init
	}
	calib := tensor.New(8, 2, 8, 8)
	tensor.FillNormal(calib, rng, 0, 1)
	q, err := nn.QuantizeNetwork(net, []*tensor.Tensor{calib})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 2, 8, 8)
	tensor.FillNormal(x, rng, 0, 1)
	return q, x
}

func sampleMeta() Meta {
	return Meta{Model: "testnet", Dataset: "synthetic", Classes: 4,
		FloatAcc: 0.91, QuantAcc: 0.90, Created: "2026-08-08T00:00:00Z"}
}

// TestEncodeDecodeRoundTrip: the decoded network must produce
// bitwise-identical outputs to the source network (int8 planes and
// scales survive exactly), and the meta block must survive.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	q, x := testQNet(t, 31)
	b, err := Encode(q, sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	got, meta, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if meta != sampleMeta() {
		t.Fatalf("meta round trip: got %+v", meta)
	}
	want := append([]float32(nil), q.Forward(x, false).Data()...)
	out := got.Forward(x, false).Data()
	for i, v := range want {
		if out[i] != v {
			t.Fatalf("decoded output[%d] = %v, want bitwise %v", i, out[i], v)
		}
	}
}

// TestEncodeDeterministic: identical networks encode to identical
// bytes (sorted sections + layer-order blobs).
func TestEncodeDeterministic(t *testing.T) {
	q, _ := testQNet(t, 32)
	a, err := Encode(q, sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(q, sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical networks must encode to identical bytes")
	}
}

// TestDecodeAliasesWeights pins the zero-copy contract: the decoded
// network's int8 planes must point INTO the input buffer, not into a
// copy.
func TestDecodeAliasesWeights(t *testing.T) {
	q, _ := testQNet(t, 33)
	b, err := Encode(q, sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	lo := uintptr(unsafe.Pointer(&b[0]))
	hi := lo + uintptr(len(b))
	checked := 0
	for _, l := range got.Layers {
		var wq []int8
		switch t := l.(type) {
		case *nn.QConv2D:
			wq = t.WQ
		case *nn.QLinear:
			wq = t.WQ
		case *nn.QBasicBlock:
			wq = t.Conv1.WQ
		default:
			continue
		}
		p := uintptr(unsafe.Pointer(&wq[0]))
		if p < lo || p >= hi {
			t.Fatalf("layer %T weight plane does not alias the input buffer", l)
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d weighted layers checked, want >= 3", checked)
	}
}

// TestDecodeRejectsAllTruncationsAndBitFlips mirrors the checkpoint
// container's corruption table: every single-byte truncation and
// every single-bit flip of a valid model file must fail to decode —
// never a panic, never a silently different model. (Unlike ckpt,
// ftpm pins the full section set and blob/arch agreement, so every
// flip must be REJECTED outright, including framing flips the generic
// container would tolerate.)
func TestDecodeRejectsAllTruncationsAndBitFlips(t *testing.T) {
	q, _ := testQNet(t, 34)
	b, err := Encode(q, sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes must not decode", n, len(b))
		}
	}
	mut := make([]byte, len(b))
	for i := range b {
		for bit := 0; bit < 8; bit++ {
			copy(mut, b)
			mut[i] ^= 1 << bit
			if _, _, err := Decode(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d must not decode", i, bit)
			}
		}
	}
}

// TestSaveLoad exercises the file path end to end: Save writes
// atomically, Load memory-maps (on unix) and the loaded network
// matches the source bitwise.
func TestSaveLoad(t *testing.T) {
	q, x := testQNet(t, 35)
	path := filepath.Join(t.TempDir(), "model.ftpm")
	if err := Save(path, q, sampleMeta()); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta != sampleMeta() {
		t.Fatalf("meta: got %+v", m.Meta)
	}
	want := append([]float32(nil), q.Forward(x, false).Data()...)
	out := m.Net.Forward(x, false).Data()
	for i, v := range want {
		if out[i] != v {
			t.Fatalf("loaded output[%d] = %v, want bitwise %v", i, out[i], v)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

// TestLoadMapped: on linux the load path must actually mmap, and the
// network's planes must alias the mapping (the cold-start win the
// format exists for).
func TestLoadMapped(t *testing.T) {
	q, _ := testQNet(t, 36)
	path := filepath.Join(t.TempDir(), "model.ftpm")
	if err := Save(path, q, sampleMeta()); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !m.Mapped {
		t.Skip("mmap unavailable on this platform")
	}
	// A clone shares the mapped planes — serving replicas add no
	// weight memory.
	c := m.Net.Clone()
	qc := m.Net.Layers[0].(*nn.QConv2D)
	cc := c.Layers[0].(*nn.QConv2D)
	if &qc.WQ[0] != &cc.WQ[0] {
		t.Fatal("clone copied mapped weight plane")
	}
}

// TestLoadErrors covers the failure surface: missing file, garbage
// file.
func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ftpm")); err == nil {
		t.Fatal("missing file accepted")
	}
	p := filepath.Join(t.TempDir(), "garbage.ftpm")
	if err := os.WriteFile(p, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(p); err == nil {
		t.Fatal("garbage file accepted")
	}
}

// TestEncodeRejectsUncalibrated: exporting a network whose activation
// scales were never calibrated is an error, not a silent zero-scale
// model.
func TestEncodeRejectsUncalibrated(t *testing.T) {
	q := &nn.QuantizedNetwork{Layers: []nn.QLayer{
		nn.NewQConv2D(1, 1, 1, 1, 1, 0, []int8{1}, []float32{1}, nil, 0),
	}}
	if _, err := Encode(q, Meta{}); err == nil {
		t.Fatal("uncalibrated network accepted")
	}
	if _, err := Encode(nil, Meta{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := Encode(&nn.QuantizedNetwork{}, Meta{}); err == nil {
		t.Fatal("empty network accepted")
	}
}
