//go:build !race

// Allocation-regression pin for the mmap-backed inference path.
// Excluded under -race (the race runtime changes allocation behavior);
// workers pinned to 1 because spawning shard goroutines allocates.

package ftpm

import (
	"path/filepath"
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

// TestMappedModelWarmForwardAllocs: a warm forward on a model whose
// weight planes alias the mmap'd file must not allocate — the
// zero-copy load feeds the same 0-alloc hot path as an in-memory
// quantized network.
func TestMappedModelWarmForwardAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	q, x := testQNet(t, 61)
	path := filepath.Join(t.TempDir(), "model.ftpm")
	if err := Save(path, q, sampleMeta()); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 3; i++ {
		m.Net.Forward(x, false)
	}
	if avg := testing.AllocsPerRun(30, func() { m.Net.Forward(x, false) }); avg > 0 {
		t.Fatalf("warm mmap-backed forward allocates %.1f/op, want 0", avg)
	}
}
