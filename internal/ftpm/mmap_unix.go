//go:build linux || darwin

package ftpm

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only. The returned closer unmaps; after it
// runs, every slice aliasing the region is invalid. PROT_READ makes
// the weight planes genuinely immutable — a stray write through an
// aliased slice faults instead of silently corrupting the model.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("ftpm: unmappable file size %d", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("ftpm: mmap: %w", err)
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
