package dist

// Fuzz target for the wire decoder: arbitrary bytes must yield a
// clean error or a fully-validated message — never a panic. A
// coordinator accepts TCP connections from anything that can reach
// its port, so the decoder is the trust boundary.

import (
	"testing"
)

func FuzzDecodeMessage(f *testing.F) {
	// Seed with every valid message shape plus near-miss corruptions.
	seeds := []Message{
		{Type: MsgHello, Worker: "w0", PID: 42},
		{Type: MsgJob, Job: &Job{Preset: "smoke", Dataset: "cifar10",
			Rates: []float64{0, 0.02, 0.1}, Runs: 6, Seed: 42, Batch: 32}},
		{Type: MsgLeaseReq, Worker: "w0"},
		{Type: MsgLease, Lease: &Lease{ID: 1, RateIndex: 0, Rate: 0.02, Seed: 7961, Start: 0, End: 2, TTLMs: 10_000}},
		{Type: MsgNoLease, RetryMs: 100},
		{Type: MsgHeartbeat, Worker: "w0", LeaseID: 1},
		{Type: MsgResult, Worker: "w0", LeaseID: 1, Accs: []float64{0.5, 0.75}},
		{Type: MsgDone},
		{Type: MsgError, Err: "boom"},
	}
	for _, m := range seeds {
		frame, err := EncodeMessage(m)
		if err != nil {
			f.Fatalf("seed %s: %v", m.Type, err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"v":1}`))
	f.Add([]byte(`{"v":1,"type":"lease","lease":{"id":-1}}`))
	f.Add([]byte(`{"v":1,"type":"result","lease_id":1,"accs":[1e308]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMessage(b)
		if err != nil {
			return
		}
		// Anything the decoder accepts must satisfy its own validator —
		// the state machines rely on that.
		if m.V != ProtocolVersion {
			t.Fatalf("accepted message with version %d", m.V)
		}
		if verr := m.validate(); verr != nil {
			t.Fatalf("accepted message fails validate: %v (%+v)", verr, m)
		}
		// And must re-encode: accepted messages are relayable.
		if _, err := EncodeMessage(m); err != nil {
			t.Fatalf("accepted message does not re-encode: %v (%+v)", err, m)
		}
	})
}
