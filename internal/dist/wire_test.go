package dist

import (
	"math"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgHello, Worker: "w0", PID: 1234},
		{Type: MsgJob, Job: &Job{Preset: "smoke", Dataset: "cifar10", Scenario: "chen",
			Rates: []float64{0, 0.02, 0.1}, Runs: 6, Seed: 42, Batch: 32}},
		{Type: MsgLeaseReq, Worker: "w0"},
		{Type: MsgLease, Lease: &Lease{ID: 3, RateIndex: 1, Rate: 0.02, Seed: 7961, Start: 2, End: 4, TTLMs: 10_000}},
		{Type: MsgNoLease, RetryMs: 100},
		{Type: MsgHeartbeat, Worker: "w0", LeaseID: 3},
		{Type: MsgResult, Worker: "w0", LeaseID: 3, Accs: []float64{0.5, 0.75}},
		{Type: MsgResult, Worker: "w0", LeaseID: 3, Err: "boom"},
		{Type: MsgDone},
		{Type: MsgError, Err: "expected hello"},
	}
	for _, m := range msgs {
		frame, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %s: %v", m.Type, err)
		}
		got, err := DecodeMessage(frame[4:])
		if err != nil {
			t.Fatalf("decode %s: %v", m.Type, err)
		}
		if got.Type != m.Type || got.Worker != m.Worker || got.LeaseID != m.LeaseID || got.Err != m.Err {
			t.Fatalf("round trip mangled %s: %+v -> %+v", m.Type, m, got)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		m    Message
		want string
	}{
		{"unknown type", Message{Type: "gossip"}, "unknown message type"},
		{"hello without id", Message{Type: MsgHello}, "without worker id"},
		{"job without job", Message{Type: MsgJob}, "without job"},
		{"job with bad rate", Message{Type: MsgJob, Job: &Job{Rates: []float64{1.5}, Runs: 1}}, "outside [0, 1]"},
		{"job with zero runs", Message{Type: MsgJob, Job: &Job{Rates: []float64{0.1}}}, "runs"},
		{"lease without lease", Message{Type: MsgLease}, "without lease"},
		{"lease empty range", Message{Type: MsgLease, Lease: &Lease{ID: 1, Rate: 0.1, Start: 3, End: 3, TTLMs: 1}}, "run range"},
		{"lease no ttl", Message{Type: MsgLease, Lease: &Lease{ID: 1, Rate: 0.1, Start: 0, End: 2}}, "ttl"},
		{"heartbeat without lease", Message{Type: MsgHeartbeat}, "without lease id"},
		{"result without payload", Message{Type: MsgResult, LeaseID: 1}, "neither"},
		{"result with wild acc", Message{Type: MsgResult, LeaseID: 1, Accs: []float64{2}}, "not an accuracy"},
		{"result with NaN", Message{Type: MsgResult, LeaseID: 1, Accs: []float64{math.NaN()}}, "result"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Encode via raw JSON where the struct can't express the
			// invalid state (NaN fails json.Marshal).
			frame, err := EncodeMessage(tc.m)
			if err != nil {
				return // encoder already rejected it: equally safe
			}
			if _, err := DecodeMessage(frame[4:]); err == nil {
				t.Fatalf("decoded invalid message %+v", tc.m)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	if _, err := DecodeMessage([]byte(`{"v":99,"type":"done"}`)); err == nil {
		t.Fatal("decoded a frame from protocol version 99")
	}
}
