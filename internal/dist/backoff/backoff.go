// Package backoff implements jittered exponential backoff with context
// cancellation, shared by every transient-retry loop in the distributed
// layer (worker dials, reconnects after a coordinator restart). It
// replaces ad-hoc sleeps: a Policy describes the schedule, a Retrier
// executes it, and both the clock and the jitter source are pluggable
// so tests run instantly against a fake clock.
package backoff

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy describes a retry schedule. The zero value of every field
// resolves to a documented default via Normalize.
type Policy struct {
	// Base is the delay before the second attempt (<=0 → 100ms). The
	// first attempt always runs immediately.
	Base time.Duration
	// Max caps every delay after jitter (<=0 → 5s).
	Max time.Duration
	// Factor multiplies the delay after each failed attempt (<1 → 2).
	Factor float64
	// Jitter is the fraction of each delay that is randomized: the
	// effective delay is uniform in [d·(1-Jitter), d·(1+Jitter)],
	// clamped to Max. Negative → 0.2 (the default); 0 disables jitter
	// (useful for exact-schedule tests).
	Jitter float64
	// Attempts bounds the total number of attempts (<=0 → unlimited;
	// retry until the context is cancelled or the operation succeeds).
	Attempts int
}

// Normalize resolves zero-valued fields to their defaults.
func (p Policy) Normalize() Policy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0.2
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the pre-jitter delay before attempt n (0-based): 0 for
// the first attempt, then Base·Factor^(n-1) capped at Max. The policy
// must be normalized.
func (p Policy) Delay(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	d := float64(p.Base)
	for i := 1; i < n; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			return p.Max
		}
	}
	if d > float64(p.Max) {
		return p.Max
	}
	return time.Duration(d)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry/Do stop immediately and return the
// underlying error instead of burning the remaining attempts. A nil
// err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

// Retrier executes operations under a Policy. The zero value (plus a
// Policy) uses the real clock and a time-seeded jitter source; tests
// inject Sleep and Rand for instant, reproducible schedules.
type Retrier struct {
	Policy Policy
	// Sleep waits for d or until ctx is cancelled, returning ctx's
	// error in the latter case (nil → real clock).
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand supplies jitter (nil → a private time-seeded source).
	// Retrier methods are not safe for concurrent use when Rand is
	// shared; give each goroutine its own Retrier.
	Rand *rand.Rand
}

// jittered applies the policy's jitter to d, clamped to [0, Max].
func (r *Retrier) jittered(d time.Duration) time.Duration {
	p := r.Policy
	if d <= 0 || p.Jitter == 0 {
		return d
	}
	if r.Rand == nil {
		r.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	// Uniform in [1-Jitter, 1+Jitter].
	f := 1 + p.Jitter*(2*r.Rand.Float64()-1)
	j := time.Duration(float64(d) * f)
	if j > p.Max {
		j = p.Max
	}
	if j < 0 {
		j = 0
	}
	return j
}

func realSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs op under the retrier's policy: attempt, and on a retryable
// error sleep the jittered exponential delay and attempt again, until
// op succeeds, returns a Permanent error, the attempt budget is
// exhausted, or ctx is cancelled. The returned error is nil on
// success, ctx's error on cancellation, and otherwise the last
// attempt's error.
func (r *Retrier) Do(ctx context.Context, op func() error) error {
	p := r.Policy.Normalize()
	r.Policy = p
	sleep := r.Sleep
	if sleep == nil {
		sleep = realSleep
	}
	var last error
	for attempt := 0; p.Attempts <= 0 || attempt < p.Attempts; attempt++ {
		if d := r.jittered(p.Delay(attempt)); d > 0 || attempt > 0 {
			if err := sleep(ctx, d); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		last = op()
		if last == nil {
			return nil
		}
		var perm permanentError
		if errors.As(last, &perm) {
			return perm.err
		}
	}
	return last
}

// Retry runs op under p with the real clock — the common entry point:
//
//	err := backoff.Retry(ctx, backoff.Policy{Attempts: 5}, dial)
func Retry(ctx context.Context, p Policy, op func() error) error {
	r := &Retrier{Policy: p}
	return r.Do(ctx, op)
}
