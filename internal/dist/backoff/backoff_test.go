package backoff

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// fakeClock records requested sleeps without waiting.
type fakeClock struct {
	slept []time.Duration
}

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.slept = append(c.slept, d)
	return nil
}

func TestDelaySchedule(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2}.Normalize()
	want := []time.Duration{
		0,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for n, w := range want {
		if got := p.Delay(n); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	clock := &fakeClock{}
	r := &Retrier{
		Policy: Policy{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Factor: 2, Attempts: 10},
		Sleep:  clock.sleep,
	}
	fails := 3
	err := r.Do(context.Background(), func() error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	// 4 attempts: the 2nd..4th each slept once (jittered 10, 20, 40ms).
	if len(clock.slept) != 3 {
		t.Fatalf("slept %d times (%v), want 3", len(clock.slept), clock.slept)
	}
	for i, d := range clock.slept {
		base := 10 * time.Millisecond << i
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if hi > 40*time.Millisecond {
			hi = 40 * time.Millisecond
		}
		if d < lo || d > hi {
			t.Errorf("sleep %d = %v outside jitter window [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	clock := &fakeClock{}
	r := &Retrier{
		Policy: Policy{Base: time.Millisecond, Attempts: 4, Jitter: 0},
		Sleep:  clock.sleep,
	}
	calls := 0
	sentinel := errors.New("still down")
	err := r.Do(context.Background(), func() error { calls++; return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls != 4 {
		t.Fatalf("op ran %d times, want 4", calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	r := &Retrier{
		Policy: Policy{Base: time.Millisecond, Attempts: 10, Jitter: 0},
		Sleep:  (&fakeClock{}).sleep,
	}
	calls := 0
	sentinel := errors.New("bad config")
	err := r.Do(context.Background(), func() error { calls++; return Permanent(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times after Permanent, want 1", calls)
	}
}

func TestRetryHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Retrier{
		Policy: Policy{Base: time.Millisecond, Jitter: 0}, // unlimited attempts
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // cancelled while waiting for the next attempt
			return ctx.Err()
		},
	}
	calls := 0
	err := r.Do(ctx, func() error { calls++; return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times, want 1", calls)
	}
}

func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, Policy{Attempts: 3}, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("op ran %d times on a dead context, want 0", calls)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}.Normalize()
	mk := func() *Retrier {
		return &Retrier{Policy: p, Rand: rand.New(rand.NewSource(7))}
	}
	a, b := mk(), mk()
	for n := 1; n < 6; n++ {
		d := p.Delay(n)
		ja := a.jittered(d)
		if jb := b.jittered(d); ja != jb {
			t.Fatalf("same seed diverged at attempt %d: %v != %v", n, ja, jb)
		}
		lo := time.Duration(float64(d) * 0.5)
		hi := time.Duration(float64(d) * 1.5)
		if hi > p.Max {
			hi = p.Max
		}
		if ja < lo || ja > hi {
			t.Fatalf("jittered(%v) = %v outside [%v, %v]", d, ja, lo, hi)
		}
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}
