package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// ProtocolVersion is the coordinator/worker wire protocol version.
// Every message carries it; a mismatch is rejected at decode so a
// stale worker binary fails loudly instead of folding garbage.
const ProtocolVersion = 1

// MaxFrameBytes bounds one wire frame. The largest legitimate message
// is a result carrying one lease's per-run accuracies — a few KiB —
// so anything near the cap is hostile or corrupt, and the reader can
// reject it before allocating.
const MaxFrameBytes = 1 << 20

// MsgType labels one protocol message.
type MsgType string

// Protocol message types. The conversation is: worker sends hello,
// coordinator replies job; worker then loops lease_req → (lease |
// nolease | done), evaluates each lease (sending heartbeat frames
// while it works), and reports result. Either side may send error
// before closing the connection.
const (
	MsgHello     MsgType = "hello"
	MsgJob       MsgType = "job"
	MsgLeaseReq  MsgType = "lease_req"
	MsgLease     MsgType = "lease"
	MsgNoLease   MsgType = "nolease"
	MsgHeartbeat MsgType = "heartbeat"
	MsgResult    MsgType = "result"
	MsgDone      MsgType = "done"
	MsgError     MsgType = "error"
)

// Job describes the sweep a coordinator is sharding, sent to every
// worker at registration. Workers resolve the model and dataset from
// it (preset + dataset name reproduce the exact trained weights, since
// training is deterministic); Scenario is a fault.Parse spec.
type Job struct {
	Preset   string    `json:"preset,omitempty"`
	Dataset  string    `json:"dataset,omitempty"`
	Scenario string    `json:"scenario,omitempty"`
	Rates    []float64 `json:"rates"`
	Runs     int       `json:"runs"`
	Seed     uint64    `json:"seed"`
	Batch    int       `json:"batch"`
}

// Lease is one unit of work: the contiguous Monte-Carlo run range
// [Start, End) of rate index RateIndex, to be drawn from the
// positional stream rooted at Seed (the sweep's RateSeed for that
// rate). TTLMs is the heartbeat deadline: a lease not completed or
// heartbeated within it is re-issued to another worker.
type Lease struct {
	ID        int64   `json:"id"`
	RateIndex int     `json:"rate_index"`
	Rate      float64 `json:"rate"`
	Seed      uint64  `json:"seed"`
	Start     int     `json:"start"`
	End       int     `json:"end"`
	TTLMs     int64   `json:"ttl_ms"`
}

// Runs returns the number of Monte-Carlo runs the lease covers.
func (l Lease) Runs() int { return l.End - l.Start }

// TTL returns the lease deadline as a duration.
func (l Lease) TTL() time.Duration { return time.Duration(l.TTLMs) * time.Millisecond }

// Message is one wire frame's payload. Only the fields relevant to a
// Type are set.
type Message struct {
	V    int     `json:"v"`
	Type MsgType `json:"type"`
	// Worker identifies the sender on hello/heartbeat (and the
	// intended worker on coordinator replies, informationally).
	Worker string `json:"worker,omitempty"`
	// PID is the worker's OS process id, sent with hello so operators
	// (and the chaos suite) can correlate pool members with processes.
	PID     int     `json:"pid,omitempty"`
	Job     *Job    `json:"job,omitempty"`
	Lease   *Lease  `json:"lease,omitempty"`
	LeaseID int64   `json:"lease_id,omitempty"`
	// Accs carries a result's per-run accuracies, index 0 = the
	// lease's Start run.
	Accs []float64 `json:"accs,omitempty"`
	// Err carries a result's evaluation failure, or an error message.
	Err string `json:"err,omitempty"`
	// RetryMs tells a worker how long to wait before the next
	// lease_req after a nolease.
	RetryMs int64 `json:"retry_ms,omitempty"`
}

// EncodeMessage serializes m into one length-prefixed frame.
func EncodeMessage(m Message) ([]byte, error) {
	m.V = ProtocolVersion
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("dist: encode %s: %w", m.Type, err)
	}
	if len(body) > MaxFrameBytes {
		return nil, fmt.Errorf("dist: %s message is %d bytes, frame cap is %d", m.Type, len(body), MaxFrameBytes)
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame, nil
}

// DecodeMessage parses and validates one frame payload (the bytes
// after the length prefix). Arbitrary input yields a descriptive
// error, never a panic — the fuzz target pins this.
func DecodeMessage(b []byte) (Message, error) {
	var m Message
	if len(b) > MaxFrameBytes {
		return m, fmt.Errorf("dist: %d-byte message exceeds frame cap %d", len(b), MaxFrameBytes)
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return Message{}, fmt.Errorf("dist: malformed message: %v", err)
	}
	if m.V != ProtocolVersion {
		return Message{}, fmt.Errorf("dist: protocol version %d, want %d", m.V, ProtocolVersion)
	}
	if err := m.validate(); err != nil {
		return Message{}, err
	}
	return m, nil
}

// validate enforces per-type structural invariants so the state
// machines on both sides only ever see well-formed messages.
func (m Message) validate() error {
	switch m.Type {
	case MsgHello:
		if m.Worker == "" {
			return fmt.Errorf("dist: hello without worker id")
		}
	case MsgJob:
		if m.Job == nil {
			return fmt.Errorf("dist: job message without job")
		}
		return m.Job.validate()
	case MsgLease:
		if m.Lease == nil {
			return fmt.Errorf("dist: lease message without lease")
		}
		return m.Lease.validate()
	case MsgHeartbeat:
		if m.LeaseID <= 0 {
			return fmt.Errorf("dist: heartbeat without lease id")
		}
	case MsgResult:
		if m.LeaseID <= 0 {
			return fmt.Errorf("dist: result without lease id")
		}
		if m.Err == "" && len(m.Accs) == 0 {
			return fmt.Errorf("dist: result %d has neither accuracies nor an error", m.LeaseID)
		}
		for i, a := range m.Accs {
			if math.IsNaN(a) || a < 0 || a > 1 {
				return fmt.Errorf("dist: result %d accs[%d] = %v is not an accuracy", m.LeaseID, i, a)
			}
		}
	case MsgLeaseReq, MsgNoLease, MsgDone, MsgError:
	default:
		return fmt.Errorf("dist: unknown message type %q", m.Type)
	}
	return nil
}

func (j *Job) validate() error {
	if len(j.Rates) == 0 || len(j.Rates) > 4096 {
		return fmt.Errorf("dist: job has %d rates", len(j.Rates))
	}
	for i, r := range j.Rates {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("dist: job rates[%d] = %v is outside [0, 1]", i, r)
		}
	}
	if j.Runs < 1 || j.Runs > 1<<20 {
		return fmt.Errorf("dist: job runs = %d is outside [1, %d]", j.Runs, 1<<20)
	}
	if j.Batch < 0 {
		return fmt.Errorf("dist: job batch = %d is negative", j.Batch)
	}
	return nil
}

func (l *Lease) validate() error {
	if l.ID <= 0 {
		return fmt.Errorf("dist: lease id %d", l.ID)
	}
	if l.RateIndex < 0 || l.RateIndex > 4096 {
		return fmt.Errorf("dist: lease rate index %d", l.RateIndex)
	}
	if math.IsNaN(l.Rate) || l.Rate < 0 || l.Rate > 1 {
		return fmt.Errorf("dist: lease rate %v is outside [0, 1]", l.Rate)
	}
	if l.Start < 0 || l.End <= l.Start || l.End > 1<<20 {
		return fmt.Errorf("dist: lease run range [%d, %d)", l.Start, l.End)
	}
	if l.TTLMs <= 0 {
		return fmt.Errorf("dist: lease ttl %dms", l.TTLMs)
	}
	return nil
}

// frameConn wraps a connection with the length-prefixed message codec.
// Sends are serialized by a mutex so a heartbeat goroutine and the
// session loop can share the connection; reads have a single owner.
type frameConn struct {
	c   net.Conn
	r   *bufio.Reader
	wmu sync.Mutex
}

func newFrameConn(c net.Conn) *frameConn {
	return &frameConn{c: c, r: bufio.NewReaderSize(c, 32<<10)}
}

func (fc *frameConn) send(m Message) error {
	frame, err := EncodeMessage(m)
	if err != nil {
		return err
	}
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	fc.c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	_, err = fc.c.Write(frame)
	return err
}

// recv reads one message, failing if no complete frame arrives within
// timeout (0 → no deadline).
func (fc *frameConn) recv(timeout time.Duration) (Message, error) {
	if timeout > 0 {
		fc.c.SetReadDeadline(time.Now().Add(timeout))
	} else {
		fc.c.SetReadDeadline(time.Time{})
	}
	var hdr [4]byte
	if _, err := io.ReadFull(fc.r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return Message{}, fmt.Errorf("dist: implausible frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fc.r, body); err != nil {
		return Message{}, err
	}
	return DecodeMessage(body)
}

func (fc *frameConn) close() { fc.c.Close() }
