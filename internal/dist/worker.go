package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"github.com/ftpim/ftpim/internal/dist/backoff"
	"github.com/ftpim/ftpim/internal/obs"
)

// EvalFunc evaluates one lease's Monte-Carlo run range and returns
// its per-run accuracies (index 0 = the lease's Start run). It must
// honor the positional-RNG contract — core.EvalDefectRuns does.
type EvalFunc func(ctx context.Context, l Lease) ([]float64, error)

// WorkerConfig tunes RunWorker.
type WorkerConfig struct {
	// Addr is the coordinator's host:port (required).
	Addr string
	// ID names this worker in the pool ("" → "host-pid"). Reconnects
	// under the same ID evict the stale registration.
	ID string
	// Dial schedules connection attempts: jittered exponential backoff
	// with capped attempts. Zero-valued fields take backoff defaults;
	// Attempts <= 0 → 8 dial attempts per connection burst.
	Dial backoff.Policy
	// ReconnectWindow bounds how long the worker keeps re-dialing
	// after losing an established session (<=0 → 30s). A coordinator
	// that finished and exited is indistinguishable from a crashed
	// one, so the worker gives up cleanly once the window closes.
	ReconnectWindow time.Duration
	// Setup resolves a Job into the evaluator for its leases —
	// typically by training-or-loading the preset's model and wrapping
	// core.EvalDefectRuns. Called once per distinct job (required).
	Setup func(ctx context.Context, job Job) (EvalFunc, error)
	// Sink receives log events (nil → obs.Null).
	Sink obs.Sink
}

func (c WorkerConfig) normalize() (WorkerConfig, error) {
	if c.Addr == "" {
		return c, errors.New("dist: worker has no coordinator address")
	}
	if c.Setup == nil {
		return c, errors.New("dist: worker has no Setup")
	}
	if c.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		c.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	c.Dial = c.Dial.Normalize()
	if c.Dial.Attempts <= 0 {
		c.Dial.Attempts = 8
	}
	if c.ReconnectWindow <= 0 {
		c.ReconnectWindow = 30 * time.Second
	}
	c.Sink = obs.Or(c.Sink)
	return c, nil
}

// RunWorker connects to the coordinator and evaluates leases until
// the sweep is done. Transient dial failures retry under cfg.Dial's
// jittered backoff; a session lost mid-sweep re-dials for up to
// ReconnectWindow before concluding the coordinator is gone for good.
// Returns nil on a clean MsgDone (or when the coordinator vanished
// after at least one established session — the sweep has moved on
// without us), ctx.Err() on cancellation, and a real error only when
// the worker could never join or cannot evaluate the job.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	var evalFn EvalFunc
	var evalJob Job
	sessions := 0
	for {
		conn, err := dial(ctx, cfg)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if sessions > 0 {
				// We were part of a sweep once; the coordinator not
				// answering anymore almost certainly means it finished
				// and exited between our frames.
				obs.Logf(cfg.Sink, "worker %s: coordinator gone after %d session(s), exiting", cfg.ID, sessions)
				return nil
			}
			return fmt.Errorf("dist: worker %s could not reach coordinator %s: %w", cfg.ID, cfg.Addr, err)
		}
		sessions++
		done, err := runSession(ctx, cfg, newFrameConn(conn), &evalFn, &evalJob)
		if done {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			var perm permanentSessionError
			if errors.As(err, &perm) {
				return perm.err
			}
			obs.Logf(cfg.Sink, "worker %s: session lost (%v), reconnecting", cfg.ID, err)
		}
		// Bound the re-dial phase: if the coordinator does not come
		// back within the window, treat the sweep as over.
		rctx, cancel := context.WithTimeout(ctx, cfg.ReconnectWindow)
		conn2, err := dial(rctx, cfg)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			obs.Logf(cfg.Sink, "worker %s: coordinator did not return within %v, exiting", cfg.ID, cfg.ReconnectWindow)
			return nil
		}
		done, err = runSession(ctx, cfg, newFrameConn(conn2), &evalFn, &evalJob)
		if done {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			var perm permanentSessionError
			if errors.As(err, &perm) {
				return perm.err
			}
		}
	}
}

// permanentSessionError marks a session failure no reconnect can fix
// (e.g. the job itself cannot be evaluated here).
type permanentSessionError struct{ err error }

func (e permanentSessionError) Error() string { return e.err.Error() }

// dial connects to the coordinator under the backoff policy.
func dial(ctx context.Context, cfg WorkerConfig) (net.Conn, error) {
	var conn net.Conn
	err := backoff.Retry(ctx, cfg.Dial, func() error {
		d := net.Dialer{Timeout: 5 * time.Second}
		c, err := d.DialContext(ctx, "tcp", cfg.Addr)
		if err != nil {
			return err
		}
		conn = c
		return nil
	})
	return conn, err
}

// runSession drives one coordinator connection: hello → job, then the
// lease loop. Returns done=true on MsgDone. The evaluator is cached
// across sessions in *evalFn/*evalJob — reconnects to the same sweep
// skip the (expensive) model setup.
func runSession(ctx context.Context, cfg WorkerConfig, fc *frameConn, evalFn *EvalFunc, evalJob *Job) (done bool, err error) {
	defer fc.close()
	// Unblock the session reads if the worker is cancelled mid-wait.
	stop := context.AfterFunc(ctx, func() { fc.close() })
	defer stop()
	if err := fc.send(Message{Type: MsgHello, Worker: cfg.ID, PID: os.Getpid()}); err != nil {
		return false, err
	}
	m, err := fc.recv(30 * time.Second)
	if err != nil {
		return false, err
	}
	if m.Type != MsgJob || m.Job == nil {
		return false, fmt.Errorf("dist: expected job, got %s", m.Type)
	}
	if *evalFn == nil || !sameJob(*evalJob, *m.Job) {
		fn, err := cfg.Setup(ctx, *m.Job)
		if err != nil {
			return false, permanentSessionError{fmt.Errorf("dist: worker %s cannot evaluate job: %w", cfg.ID, err)}
		}
		*evalFn = fn
		*evalJob = *m.Job
	}
	for {
		if err := fc.send(Message{Type: MsgLeaseReq, Worker: cfg.ID}); err != nil {
			return false, err
		}
		m, err := fc.recv(30 * time.Second)
		if err != nil {
			return false, err
		}
		switch m.Type {
		case MsgDone:
			obs.Logf(cfg.Sink, "worker %s: sweep done", cfg.ID)
			return true, nil
		case MsgNoLease:
			wait := time.Duration(m.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			timedWait(ctx, wait)
			if ctx.Err() != nil {
				return false, ctx.Err()
			}
		case MsgLease:
			if err := evalLease(ctx, cfg, fc, *evalFn, *m.Lease); err != nil {
				return false, err
			}
		case MsgError:
			return false, fmt.Errorf("dist: coordinator: %s", m.Err)
		default:
			return false, fmt.Errorf("dist: unexpected %s", m.Type)
		}
	}
}

// evalLease evaluates one lease while a background goroutine
// heartbeats at TTL/4, then reports the result (or the evaluation
// error — the coordinator re-issues the lease elsewhere).
func evalLease(ctx context.Context, cfg WorkerConfig, fc *frameConn, fn EvalFunc, l Lease) error {
	hbCtx, hbCancel := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := l.TTL() / 4
		if interval < 5*time.Millisecond {
			interval = 5 * time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				// Best effort: a send failure surfaces as a session
				// error on the main loop's next send.
				fc.send(Message{Type: MsgHeartbeat, Worker: cfg.ID, LeaseID: l.ID})
			}
		}
	}()
	accs, evalErr := fn(ctx, l)
	hbCancel()
	<-hbDone
	if ctx.Err() != nil {
		return ctx.Err()
	}
	res := Message{Type: MsgResult, Worker: cfg.ID, LeaseID: l.ID}
	if evalErr != nil {
		res.Err = evalErr.Error()
		obs.Logf(cfg.Sink, "worker %s: lease %d failed: %v", cfg.ID, l.ID, evalErr)
	} else {
		res.Accs = accs
	}
	return fc.send(res)
}

// sameJob reports whether two jobs describe the same sweep.
func sameJob(a, b Job) bool {
	if a.Preset != b.Preset || a.Dataset != b.Dataset || a.Scenario != b.Scenario ||
		a.Runs != b.Runs || a.Seed != b.Seed || a.Batch != b.Batch ||
		len(a.Rates) != len(b.Rates) {
		return false
	}
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			return false
		}
	}
	return true
}
