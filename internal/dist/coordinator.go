// Package dist shards defect-evaluation sweeps across worker
// processes: a coordinator owns the Monte-Carlo run space and hands
// out run-range leases over a length-prefixed JSON protocol on TCP;
// workers evaluate leases with core.EvalDefectRuns and stream results
// back.
//
// # Determinism
//
// Run r of rate index i always draws its faults from
// fault.RunRNG(DefectEval.RateSeed(i), r) — position alone — so any
// partition of the run space into leases, evaluated by any set of
// processes in any order, folds back into the exact per-run accuracy
// sequence a single-process core.EvalDefectSweep produces. The
// coordinator folds results by run index and summarizes per rate, so
// the distributed answer is byte-identical at any worker count and
// under any kill schedule. The determinism and chaos suites pin this.
//
// # Fault tolerance
//
// Leases carry a TTL; workers heartbeat at TTL/4 while evaluating. A
// lease whose deadline passes (stalled worker) or whose worker's
// connection drops (dead worker) is re-issued to the next worker that
// asks. A worker that reports an evaluation error surrenders the
// lease for re-issue; a lease that fails MaxLeaseAttempts times fails
// the sweep (unless local fallback can still run it). Workers dial
// and re-dial the coordinator under jittered exponential backoff
// (internal/dist/backoff), so a coordinator restart — which reloads
// folded results from its internal/ckpt checkpoint — picks the fleet
// back up without losing completed work.
//
// # Degradation ladder
//
// 1. Healthy pool: leases round-robin to whoever asks first.
// 2. Worker lost or stalled: its leases are re-issued to the
//    survivors (obs events dist.worker.lost / dist.reissue).
// 3. Empty pool (no worker ever joined, or all died) for longer than
//    FallbackAfter: the coordinator executes pending leases in-process
//    through Config.Local (dist.fallback events) — the sweep always
//    completes, just slower.
// 4. Cancellation (SIGTERM): assignment stops, in-flight leases get a
//    grace period to land, and the fully-completed rate prefix is
//    returned with ctx's error — the CLI renders the partial table
//    and exits 0.
package dist

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"github.com/ftpim/ftpim/internal/ckpt"
	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/obs"
)

// LocalFunc evaluates one lease in the coordinator's own process —
// the zero-worker fallback. It must obey the same positional-RNG
// contract as a worker (core.EvalDefectRuns does).
type LocalFunc func(ctx context.Context, l Lease) ([]float64, error)

// Config tunes a Coordinator. Zero values resolve to documented
// defaults via Normalize.
type Config struct {
	// LeaseRuns is the number of Monte-Carlo runs per lease (<=0 → 8).
	// Smaller leases re-issue less work on a worker death; larger ones
	// amortize protocol overhead.
	LeaseRuns int
	// LeaseTTL is the heartbeat deadline: a lease neither completed
	// nor heartbeated within it is re-issued (<=0 → 10s).
	LeaseTTL time.Duration
	// FallbackAfter is how long the pool must be empty (from start, or
	// from the last worker's departure) before pending leases execute
	// in-process via Local (<=0 → 3s). Ignored when Local is nil.
	FallbackAfter time.Duration
	// DoneLinger keeps the coordinator answering for this long after
	// the sweep completes, so workers still evaluating a re-issued
	// duplicate get a clean MsgDone instead of a connection error
	// (<=0 → 500ms).
	DoneLinger time.Duration
	// DrainGrace bounds how long a cancelled coordinator waits for
	// outstanding leases to land before returning partial results
	// (<=0 → 1s).
	DrainGrace time.Duration
	// MaxLeaseAttempts caps how many times one lease may fail with a
	// worker error before the sweep is failed (<=0 → 5). With Local
	// set the lease stays eligible for in-process fallback instead.
	MaxLeaseAttempts int
	// RetryHint is the poll interval sent to workers when no lease is
	// pending (<=0 → 100ms).
	RetryHint time.Duration

	// Eval supplies the sweep protocol: Runs, Seed (RateSeed derives
	// each rate's stream), Batch, and the fault Scenario. Normalized
	// by New.
	Eval core.DefectEval
	// Rates is the sweep's fault-rate axis (required).
	Rates []float64
	// Job is the spec sent to workers. New fills Rates/Runs/Seed/Batch
	// from Eval and, when empty, Scenario from Eval's scenario spec;
	// Preset/Dataset identify the model and are the caller's business.
	Job Job
	// Local, when set, evaluates leases in-process whenever the pool
	// is empty — the documented zero-worker fallback. Nil means the
	// coordinator waits for workers indefinitely.
	Local LocalFunc
	// Ckpt, when set, persists folded results after every lease so a
	// restarted coordinator (same Config, resume-enabled ckpt.Run)
	// resumes instead of re-evaluating completed ranges.
	Ckpt *ckpt.Run
	// Sink receives dist.* and eval.rate events (nil → obs.Null).
	Sink obs.Sink
}

// Normalize resolves zero-valued tuning fields to their defaults.
func (c Config) Normalize() Config {
	if c.LeaseRuns <= 0 {
		c.LeaseRuns = 8
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.FallbackAfter <= 0 {
		c.FallbackAfter = 3 * time.Second
	}
	if c.DoneLinger <= 0 {
		c.DoneLinger = 500 * time.Millisecond
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = time.Second
	}
	if c.MaxLeaseAttempts <= 0 {
		c.MaxLeaseAttempts = 5
	}
	if c.RetryHint <= 0 {
		c.RetryHint = 100 * time.Millisecond
	}
	c.Eval = c.Eval.Normalize()
	c.Sink = obs.Or(c.Sink)
	return c
}

// lease is the coordinator's view of one work unit.
type lease struct {
	Lease
	attempts int // failed evaluation attempts
}

// outstanding tracks one issued lease.
type outstanding struct {
	l      *lease
	worker string
	expiry time.Time
}

// workerConn is one registered pool member.
type workerConn struct {
	id     string
	pid    int
	fc     *frameConn
	leases int // outstanding leases held
}

// localWorker is the pseudo worker id in-process fallback runs under.
const localWorker = "(local)"

// Coordinator owns one sweep's run space and the worker pool
// evaluating it. Create with New, run with Serve or Run.
type Coordinator struct {
	cfg   Config
	sink  obs.Sink
	job   Job
	rates []float64

	mu         sync.Mutex
	accs       [][]float64 // [rate][run] folded accuracies
	foldedRun  [][]bool
	remaining  int // runs not yet folded
	leases     map[int64]*lease
	pending    []*lease // FIFO; re-issues go to the front
	out        map[int64]*outstanding
	workers    map[string]*workerConn
	lastWorker time.Time // start, last join, or last departure
	draining   bool
	fatal      error
	reissues   int
	restored   int // runs prefolded from a checkpoint

	done     chan struct{}
	doneOnce sync.Once

	listener net.Listener
	lisOnce  sync.Once
}

// New builds a Coordinator for cfg's sweep and, when cfg.Ckpt is a
// resume-enabled run, pre-folds results from the newest intact
// checkpoint whose job matches.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.Normalize()
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("dist: no rates to sweep")
	}
	for i, r := range cfg.Rates {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return nil, fmt.Errorf("dist: rates[%d] = %v is outside [0, 1]", i, r)
		}
	}
	job := cfg.Job
	job.Rates = cfg.Rates
	job.Runs = cfg.Eval.Runs
	job.Seed = cfg.Eval.Seed
	job.Batch = cfg.Eval.Batch
	if job.Scenario == "" {
		job.Scenario = cfg.Eval.Scenario.Spec()
	}
	c := &Coordinator{
		cfg:        cfg,
		sink:       cfg.Sink,
		job:        job,
		rates:      cfg.Rates,
		leases:     map[int64]*lease{},
		out:        map[int64]*outstanding{},
		workers:    map[string]*workerConn{},
		lastWorker: time.Now(),
		done:       make(chan struct{}),
	}
	c.accs = make([][]float64, len(c.rates))
	c.foldedRun = make([][]bool, len(c.rates))
	for i, rate := range c.rates {
		n := cfg.Eval.Runs
		if rate == 0 {
			// No stochasticity at rate zero: one clean pass, exactly
			// like EvalDefect's short-circuit.
			n = 1
		}
		c.accs[i] = make([]float64, n)
		c.foldedRun[i] = make([]bool, n)
		c.remaining += n
	}
	c.restoreCkpt()
	c.buildLeases()
	if c.remaining == 0 {
		c.signalDone()
	}
	return c, nil
}

// buildLeases chunks every rate's unfolded run space into pending
// leases. Must run before Serve; callers hold no lock yet.
func (c *Coordinator) buildLeases() {
	id := int64(0)
	for i := range c.rates {
		runs := len(c.accs[i])
		for start := 0; start < runs; start += c.cfg.LeaseRuns {
			end := start + c.cfg.LeaseRuns
			if end > runs {
				end = runs
			}
			all := true
			for r := start; r < end; r++ {
				if !c.foldedRun[i][r] {
					all = false
					break
				}
			}
			if all {
				continue // fully restored from checkpoint
			}
			id++
			l := &lease{Lease: Lease{
				ID:        id,
				RateIndex: i,
				Rate:      c.rates[i],
				Seed:      c.cfg.Eval.RateSeed(i),
				Start:     start,
				End:       end,
				TTLMs:     c.cfg.LeaseTTL.Milliseconds(),
			}}
			c.leases[id] = l
			c.pending = append(c.pending, l)
		}
	}
}

// Run listens on addr and serves the sweep to completion (or
// cancellation). See Serve.
func (c *Coordinator) Run(ctx context.Context, addr string) ([]metrics.Summary, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return c.Serve(ctx, lis)
}

// Addr returns the coordinator's listen address once Serve has been
// called ("" before). Useful with a ":0" listener in tests.
func (c *Coordinator) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.listener == nil {
		return ""
	}
	return c.listener.Addr().String()
}

// Serve accepts workers on lis and runs the sweep to completion,
// returning one Summary per rate — byte-identical to a single-process
// core.EvalDefectSweep with the same DefectEval and rates. On
// cancellation it drains (assignment stops, outstanding leases get
// DrainGrace to land) and returns the summaries of the
// fully-completed rate prefix together with ctx's error, mirroring
// EvalDefectSweep's partial-result contract.
func (c *Coordinator) Serve(ctx context.Context, lis net.Listener) ([]metrics.Summary, error) {
	c.mu.Lock()
	c.listener = lis
	c.mu.Unlock()
	defer lis.Close()
	ictx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.acceptLoop(lis) }()
	go func() { defer wg.Done(); c.monitor(ictx) }()
	if c.cfg.Local != nil {
		wg.Add(1)
		go func() { defer wg.Done(); c.fallbackLoop(ictx) }()
	}

	var err error
	select {
	case <-c.done:
		c.mu.Lock()
		err = c.fatal
		c.mu.Unlock()
		if err == nil {
			// Give workers still chewing a re-issued duplicate a clean
			// goodbye: broadcast done, keep answering for the linger.
			c.broadcast(Message{Type: MsgDone})
			timedWait(ctx, c.cfg.DoneLinger)
		}
	case <-ctx.Done():
		c.mu.Lock()
		c.draining = true
		c.mu.Unlock()
		c.awaitOutstanding(c.cfg.DrainGrace)
		err = ctx.Err()
	}
	cancel()
	lis.Close()
	c.closeConns()
	wg.Wait()
	return c.completedSummaries(), err
}

// timedWait sleeps for d or until ctx is cancelled.
func timedWait(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// awaitOutstanding polls until no lease is outstanding or the grace
// period elapses — in-flight results folded during the window count
// toward the partial summaries.
func (c *Coordinator) awaitOutstanding(grace time.Duration) {
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(c.out)
		c.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// completedSummaries summarizes the fully-folded rate prefix (all
// rates after a completed sweep) and emits one eval.rate event per
// summarized rate.
func (c *Coordinator) completedSummaries() []metrics.Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []metrics.Summary
	for i := range c.rates {
		complete := true
		for _, f := range c.foldedRun[i] {
			if !f {
				complete = false
				break
			}
		}
		if !complete {
			break
		}
		s := metrics.Summarize(c.accs[i])
		out = append(out, s)
		if c.sink.Enabled() {
			c.sink.Emit(obs.Event{Kind: obs.KindEvalRate, Rate: c.rates[i], Acc: s.Mean, N: s.N})
		}
	}
	return out
}

func (c *Coordinator) signalDone() {
	c.doneOnce.Do(func() { close(c.done) })
}

// broadcast sends m to every registered worker (best effort).
func (c *Coordinator) broadcast(m Message) {
	c.mu.Lock()
	conns := make([]*frameConn, 0, len(c.workers))
	for _, w := range c.workers {
		conns = append(conns, w.fc)
	}
	c.mu.Unlock()
	for _, fc := range conns {
		fc.send(m)
	}
}

func (c *Coordinator) closeConns() {
	c.mu.Lock()
	conns := make([]*frameConn, 0, len(c.workers))
	for _, w := range c.workers {
		conns = append(conns, w.fc)
	}
	c.mu.Unlock()
	for _, fc := range conns {
		fc.close()
	}
}

func (c *Coordinator) acceptLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed: Serve is exiting
		}
		go c.handleConn(conn)
	}
}

// handleConn owns one worker connection: registration, then the
// lease_req/heartbeat/result loop. Any read error (including the
// missed-frame deadline) unregisters the worker and re-queues its
// outstanding leases.
func (c *Coordinator) handleConn(conn net.Conn) {
	fc := newFrameConn(conn)
	defer fc.close()
	m, err := fc.recv(10 * time.Second)
	if err != nil || m.Type != MsgHello {
		fc.send(Message{Type: MsgError, Err: "expected hello"})
		return
	}
	w := c.register(m.Worker, m.PID, fc)
	defer c.unregister(w, "connection closed")
	if err := fc.send(Message{Type: MsgJob, Job: &c.job}); err != nil {
		return
	}
	// A healthy worker is never silent longer than the heartbeat
	// interval (TTL/4) plus the nolease poll; 2×TTL of silence means
	// the peer is gone or wedged — either way the monitor has already
	// re-issued its leases, so drop the connection.
	readTimeout := 2 * c.cfg.LeaseTTL
	for {
		m, err := fc.recv(readTimeout)
		if err != nil {
			return
		}
		switch m.Type {
		case MsgLeaseReq:
			if err := fc.send(c.assign(w)); err != nil {
				return
			}
		case MsgHeartbeat:
			c.heartbeat(w.id, m.LeaseID)
		case MsgResult:
			if m.Err != "" {
				c.failLease(w.id, m.LeaseID, m.Err)
			} else {
				c.fold(w.id, m.LeaseID, m.Accs)
			}
		case MsgError:
			return
		default:
			fc.send(Message{Type: MsgError, Err: fmt.Sprintf("unexpected %s", m.Type)})
			return
		}
	}
}

// register adds (or replaces) a pool member. A reconnecting worker
// reuses its id: the stale connection is closed and its handler's
// unregister becomes a no-op, while the leases it held are re-queued
// immediately — the reconnected process has abandoned them.
func (c *Coordinator) register(id string, pid int, fc *frameConn) *workerConn {
	c.mu.Lock()
	if old, ok := c.workers[id]; ok {
		old.fc.close()
		c.requeueWorkerLocked(id, "worker reconnected")
	}
	w := &workerConn{id: id, pid: pid, fc: fc}
	c.workers[id] = w
	c.lastWorker = time.Now()
	n := len(c.workers)
	c.mu.Unlock()
	if c.sink.Enabled() {
		c.sink.Emit(obs.Event{Kind: obs.KindDistWorkerJoin, Key: id, N: n})
	}
	return w
}

// unregister removes w (if still the registered holder of its id) and
// re-queues its outstanding leases.
func (c *Coordinator) unregister(w *workerConn, reason string) {
	c.mu.Lock()
	if c.workers[w.id] != w {
		c.mu.Unlock()
		return // replaced by a reconnect; nothing to clean up
	}
	delete(c.workers, w.id)
	c.lastWorker = time.Now()
	n := len(c.workers)
	c.requeueWorkerLocked(w.id, reason)
	done := c.remaining == 0
	c.mu.Unlock()
	if !done && c.sink.Enabled() {
		c.sink.Emit(obs.Event{Kind: obs.KindDistWorkerLost, Key: w.id, N: n, Msg: reason})
	}
}

// requeueWorkerLocked returns every lease outstanding to worker id to
// the front of the pending queue. Caller holds c.mu.
func (c *Coordinator) requeueWorkerLocked(id, reason string) {
	for leaseID, o := range c.out {
		if o.worker != id {
			continue
		}
		delete(c.out, leaseID)
		c.pending = append([]*lease{o.l}, c.pending...)
		c.reissues++
		if c.remaining > 0 && c.sink.Enabled() {
			c.sink.Emit(obs.Event{
				Kind: obs.KindDistReissue, Key: id, Run: int(leaseID),
				Rate: o.l.Rate, N: o.l.Runs(), Msg: reason,
			})
		}
	}
}

// assign hands the next pending lease to w, or reports done/nolease.
func (c *Coordinator) assign(w *workerConn) Message {
	c.mu.Lock()
	if c.remaining == 0 || c.fatal != nil {
		c.mu.Unlock()
		return Message{Type: MsgDone}
	}
	if c.draining || len(c.pending) == 0 {
		retry := c.cfg.RetryHint.Milliseconds()
		c.mu.Unlock()
		return Message{Type: MsgNoLease, RetryMs: retry}
	}
	l := c.pending[0]
	c.pending = c.pending[1:]
	c.out[l.ID] = &outstanding{l: l, worker: w.id, expiry: time.Now().Add(c.cfg.LeaseTTL)}
	w.leases++
	c.mu.Unlock()
	if c.sink.Enabled() {
		c.sink.Emit(obs.Event{Kind: obs.KindDistLease, Key: w.id, Run: int(l.ID), Rate: l.Rate, N: l.Runs()})
	}
	return Message{Type: MsgLease, Worker: w.id, Lease: &l.Lease}
}

// heartbeat extends a lease's deadline. Heartbeats for revoked or
// unknown leases are ignored — the worker will learn its fate when it
// reports the result.
func (c *Coordinator) heartbeat(workerID string, leaseID int64) {
	c.mu.Lock()
	if o := c.out[leaseID]; o != nil && o.worker == workerID {
		o.expiry = time.Now().Add(c.cfg.LeaseTTL)
	}
	c.mu.Unlock()
}

// fold merges one lease's per-run accuracies into the sweep at their
// absolute run indices. Folding is idempotent: a late result for a
// re-issued lease carries bit-identical values (positional RNG), so
// whichever copy lands first wins and the rest are no-ops.
func (c *Coordinator) fold(workerID string, leaseID int64, accs []float64) {
	c.mu.Lock()
	l := c.leases[leaseID]
	if l == nil {
		c.mu.Unlock()
		return // unknown lease (stale incarnation); nothing to fold
	}
	if o := c.out[leaseID]; o != nil && (o.worker == workerID || o.worker == localWorker && workerID == localWorker) {
		delete(c.out, leaseID)
		if w := c.workers[o.worker]; w != nil {
			w.leases--
		}
	}
	if len(accs) != l.Runs() {
		c.mu.Unlock()
		c.failLease(workerID, leaseID, fmt.Sprintf("result has %d accuracies, lease covers %d runs", len(accs), l.Runs()))
		return
	}
	i := l.RateIndex
	newly := 0
	for k, run := 0, l.Start; run < l.End; k, run = k+1, run+1 {
		if !c.foldedRun[i][run] {
			c.foldedRun[i][run] = true
			c.accs[i][run] = accs[k]
			newly++
		}
	}
	c.remaining -= newly
	doneNow := c.remaining == 0
	var sections map[string][]byte
	if newly > 0 && c.cfg.Ckpt != nil {
		sections = c.snapshotLocked()
	}
	c.mu.Unlock()
	if sections != nil {
		c.saveCkpt(sections)
	}
	if doneNow {
		c.signalDone()
	}
}

// failLease records one failed evaluation attempt and re-queues the
// lease. A lease that keeps failing across MaxLeaseAttempts workers
// fails the sweep — unless local fallback exists to give it a final
// in-process home.
func (c *Coordinator) failLease(workerID string, leaseID int64, reason string) {
	c.mu.Lock()
	l := c.leases[leaseID]
	if l == nil {
		c.mu.Unlock()
		return
	}
	if o := c.out[leaseID]; o != nil {
		delete(c.out, leaseID)
		if w := c.workers[o.worker]; w != nil {
			w.leases--
		}
	}
	alreadyFolded := true
	for run := l.Start; run < l.End; run++ {
		if !c.foldedRun[l.RateIndex][run] {
			alreadyFolded = false
			break
		}
	}
	if alreadyFolded {
		c.mu.Unlock()
		return
	}
	l.attempts++
	fatal := l.attempts >= c.cfg.MaxLeaseAttempts && c.cfg.Local == nil
	if fatal {
		c.fatal = fmt.Errorf("dist: lease %d (rate %g, runs [%d,%d)) failed %d times, last: %s",
			leaseID, l.Rate, l.Start, l.End, l.attempts, reason)
	} else {
		c.pending = append([]*lease{l}, c.pending...)
		c.reissues++
	}
	c.mu.Unlock()
	if c.sink.Enabled() {
		c.sink.Emit(obs.Event{
			Kind: obs.KindDistReissue, Key: workerID, Run: int(leaseID),
			Rate: l.Rate, N: l.Runs(), Msg: reason,
		})
	}
	if fatal {
		c.signalDone()
	}
}

// monitor re-issues leases whose heartbeat deadline has passed — the
// stalled-worker path (a dead worker's connection error is faster).
func (c *Coordinator) monitor(ctx context.Context) {
	tick := c.cfg.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		type expired struct {
			l      *lease
			worker string
		}
		var exp []expired
		c.mu.Lock()
		for leaseID, o := range c.out {
			if now.After(o.expiry) {
				delete(c.out, leaseID)
				if w := c.workers[o.worker]; w != nil {
					w.leases--
				}
				c.pending = append([]*lease{o.l}, c.pending...)
				c.reissues++
				exp = append(exp, expired{o.l, o.worker})
			}
		}
		c.mu.Unlock()
		if c.sink.Enabled() {
			for _, e := range exp {
				c.sink.Emit(obs.Event{
					Kind: obs.KindDistReissue, Key: e.worker, Run: int(e.l.ID),
					Rate: e.l.Rate, N: e.l.Runs(), Msg: "missed heartbeat",
				})
			}
		}
	}
}

// fallbackLoop executes pending leases in-process whenever the worker
// pool has been empty for FallbackAfter — covering both "no worker
// ever joined" and "every worker died" without ever hanging the
// sweep.
func (c *Coordinator) fallbackLoop(ctx context.Context) {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.done:
			return
		case <-t.C:
		}
		c.mu.Lock()
		idle := len(c.workers) == 0 && time.Since(c.lastWorker) >= c.cfg.FallbackAfter
		if !idle || c.draining || c.fatal != nil || len(c.pending) == 0 {
			c.mu.Unlock()
			continue
		}
		l := c.pending[0]
		c.pending = c.pending[1:]
		// Registered as outstanding so a drain waits for it; the expiry
		// is moot (the local evaluator cannot stall silently).
		c.out[l.ID] = &outstanding{l: l, worker: localWorker, expiry: time.Now().Add(24 * time.Hour)}
		c.mu.Unlock()
		if c.sink.Enabled() {
			c.sink.Emit(obs.Event{Kind: obs.KindDistFallback, Run: int(l.ID), Rate: l.Rate, N: l.Runs()})
		}
		accs, err := c.cfg.Local(ctx, l.Lease)
		if err != nil {
			if ctx.Err() != nil {
				c.mu.Lock()
				delete(c.out, l.ID)
				c.pending = append([]*lease{l}, c.pending...)
				c.mu.Unlock()
				return
			}
			c.failLease(localWorker, l.ID, err.Error())
			continue
		}
		c.fold(localWorker, l.ID, accs)
	}
}

// Stats is a point-in-time snapshot of the coordinator's pool and
// progress, for tests and operator introspection.
type Stats struct {
	Workers     int
	Pending     int
	Outstanding int
	FoldedRuns  int
	TotalRuns   int
	Reissues    int
	Restored    int
	// LeasesByWorker maps worker id → outstanding lease count;
	// PIDByWorker maps worker id → the OS pid it reported.
	LeasesByWorker map[string]int
	PIDByWorker    map[string]int
}

// Stats returns a snapshot of pool membership and sweep progress.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	folded := 0
	for i := range c.foldedRun {
		total += len(c.foldedRun[i])
		for _, f := range c.foldedRun[i] {
			if f {
				folded++
			}
		}
	}
	s := Stats{
		Workers:        len(c.workers),
		Pending:        len(c.pending),
		Outstanding:    len(c.out),
		FoldedRuns:     folded,
		TotalRuns:      total,
		Reissues:       c.reissues,
		Restored:       c.restored,
		LeasesByWorker: map[string]int{},
		PIDByWorker:    map[string]int{},
	}
	for id, w := range c.workers {
		s.LeasesByWorker[id] = w.leases
		s.PIDByWorker[id] = w.pid
	}
	return s
}

// ---- checkpointing ----------------------------------------------------

// ckptMeta identifies the sweep a checkpoint belongs to; a restored
// checkpoint whose meta differs is ignored rather than mis-folded.
type ckptMeta struct {
	V   int `json:"v"`
	Job Job `json:"job"`
}

const (
	ckptSectionMeta  = "dist.meta"
	ckptSectionState = "dist.state"
)

// snapshotLocked serializes the folded state. Caller holds c.mu.
func (c *Coordinator) snapshotLocked() map[string][]byte {
	meta, err := json.Marshal(ckptMeta{V: 1, Job: c.job})
	if err != nil {
		return nil
	}
	var state []byte
	state = binary.LittleEndian.AppendUint32(state, uint32(len(c.rates)))
	for i := range c.rates {
		state = binary.LittleEndian.AppendUint32(state, uint32(len(c.accs[i])))
		for run := range c.accs[i] {
			if c.foldedRun[i][run] {
				state = append(state, 1)
			} else {
				state = append(state, 0)
			}
			state = binary.LittleEndian.AppendUint64(state, math.Float64bits(c.accs[i][run]))
		}
	}
	return map[string][]byte{ckptSectionMeta: meta, ckptSectionState: state}
}

func (c *Coordinator) saveCkpt(sections map[string][]byte) {
	path, size, err := c.cfg.Ckpt.Save(sections)
	if err != nil {
		obs.Logf(c.sink, "dist: checkpoint save failed: %v", err)
		return
	}
	if c.sink.Enabled() {
		c.sink.Emit(obs.Event{Kind: obs.KindCkptSave, Key: path, N: size})
	}
}

// restoreCkpt pre-folds results from the newest intact checkpoint
// whose job matches this sweep. Runs during New, before any
// concurrency exists.
func (c *Coordinator) restoreCkpt() {
	if c.cfg.Ckpt == nil {
		return
	}
	sections, path, ok := c.cfg.Ckpt.Load()
	if !ok {
		return
	}
	var meta ckptMeta
	if err := json.Unmarshal(sections[ckptSectionMeta], &meta); err != nil || meta.V != 1 {
		obs.Logf(c.sink, "dist: ignoring checkpoint %s: unreadable meta", path)
		return
	}
	want, _ := json.Marshal(ckptMeta{V: 1, Job: c.job})
	got, _ := json.Marshal(meta)
	if string(want) != string(got) {
		obs.Logf(c.sink, "dist: ignoring checkpoint %s: different sweep", path)
		return
	}
	state := sections[ckptSectionState]
	off := 0
	u32 := func() (int, bool) {
		if off+4 > len(state) {
			return 0, false
		}
		v := int(binary.LittleEndian.Uint32(state[off:]))
		off += 4
		return v, true
	}
	nRates, ok2 := u32()
	if !ok2 || nRates != len(c.rates) {
		obs.Logf(c.sink, "dist: ignoring checkpoint %s: rate count mismatch", path)
		return
	}
	type cell struct {
		folded bool
		acc    float64
	}
	restored := make([][]cell, nRates)
	for i := 0; i < nRates; i++ {
		n, ok3 := u32()
		if !ok3 || n != len(c.accs[i]) {
			obs.Logf(c.sink, "dist: ignoring checkpoint %s: run count mismatch", path)
			return
		}
		restored[i] = make([]cell, n)
		for r := 0; r < n; r++ {
			if off+9 > len(state) {
				obs.Logf(c.sink, "dist: ignoring checkpoint %s: truncated state", path)
				return
			}
			restored[i][r] = cell{
				folded: state[off] == 1,
				acc:    math.Float64frombits(binary.LittleEndian.Uint64(state[off+1:])),
			}
			off += 9
		}
	}
	for i := range restored {
		for r, cl := range restored[i] {
			if cl.folded && !c.foldedRun[i][r] {
				c.foldedRun[i][r] = true
				c.accs[i][r] = cl.acc
				c.remaining--
				c.restored++
			}
		}
	}
	if c.sink.Enabled() {
		c.sink.Emit(obs.Event{Kind: obs.KindCkptRestore, Key: path, N: c.restored})
	}
}
