// Determinism and failover suite for the distributed defect-eval
// layer. The oracle everywhere is single-process core.EvalDefectSweep:
// whatever the pool does — any worker count, errors, restarts — the
// folded summaries must be exactly (bitwise) the oracle's.
package dist_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ftpim/ftpim/internal/ckpt"
	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/dist"
	"github.com/ftpim/ftpim/internal/dist/backoff"
	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/obs"
)

var testRates = []float64{0, 0.02, 0.1}

// fixture builds the smoke-scale model and test set deterministically
// from seeds — every call (in any process) yields identical weights,
// which is exactly how real workers reconstruct the coordinator's
// model from a Job.
func fixture(t testing.TB) (*nn.Network, *data.Dataset) {
	t.Helper()
	s := experiments.ScaleFor("smoke")
	net := models.BuildResNet(models.ResNetConfig{
		Depth: s.DepthC10, Classes: s.C10.Classes, InChannels: 3,
		WidthMult: s.Width, Seed: s.Seed,
	})
	_, test := data.Generate(s.C10)
	return net, test
}

func evalCfg() core.DefectEval {
	return core.DefectEval{Runs: 6, Batch: 32, Seed: 42, Workers: 2}
}

// oracle computes the single-process reference sweep.
func oracle(t testing.TB) []metrics.Summary {
	t.Helper()
	net, test := fixture(t)
	want, err := core.EvalDefectSweep(context.Background(), net, test, testRates, evalCfg())
	if err != nil {
		t.Fatalf("oracle sweep: %v", err)
	}
	return want
}

// evalFunc builds the worker-side evaluator over its own model copy.
func evalFunc(t testing.TB) dist.EvalFunc {
	t.Helper()
	net, test := fixture(t)
	return func(ctx context.Context, l dist.Lease) ([]float64, error) {
		cfg := evalCfg()
		cfg.Seed = l.Seed
		return core.EvalDefectRuns(ctx, net, test, l.Rate, l.Start, l.End, cfg)
	}
}

// baseConfig is the test coordinator config: small leases so every
// sweep exercises multiple assignments, short timings so failover
// paths run in test time.
func baseConfig(sink obs.Sink) dist.Config {
	return dist.Config{
		LeaseRuns:     2,
		LeaseTTL:      2 * time.Second,
		FallbackAfter: time.Hour, // tests opt in to fallback explicitly
		DoneLinger:    50 * time.Millisecond,
		DrainGrace:    2 * time.Second,
		RetryHint:     5 * time.Millisecond,
		Eval:          evalCfg(),
		Rates:         testRates,
		Job:           dist.Job{Preset: "smoke", Dataset: "cifar10"},
		Sink:          sink,
	}
}

// startCoordinator serves cfg on a loopback listener and returns the
// address plus a wait() that joins Serve's result.
func startCoordinator(t *testing.T, ctx context.Context, cfg dist.Config) (*dist.Coordinator, string, func() ([]metrics.Summary, error)) {
	t.Helper()
	c, err := dist.New(cfg)
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	type res struct {
		sums []metrics.Summary
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		sums, err := c.Serve(ctx, lis)
		ch <- res{sums, err}
	}()
	return c, lis.Addr().String(), func() ([]metrics.Summary, error) {
		select {
		case r := <-ch:
			return r.sums, r.err
		case <-time.After(2 * time.Minute):
			t.Fatal("coordinator did not finish within 2 minutes")
			return nil, nil
		}
	}
}

// workerCfg is the in-process worker config dialing addr.
func workerCfg(t testing.TB, id, addr string, fn dist.EvalFunc) dist.WorkerConfig {
	return dist.WorkerConfig{
		Addr:            addr,
		ID:              id,
		Dial:            backoff.Policy{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Attempts: 20},
		ReconnectWindow: 500 * time.Millisecond,
		Setup: func(ctx context.Context, job dist.Job) (dist.EvalFunc, error) {
			return fn, nil
		},
	}
}

// TestDistDeterminism pins the headline guarantee: the distributed
// sweep is exactly equal to single-process EvalDefectSweep at worker
// counts 1, 2 and 4.
func TestDistDeterminism(t *testing.T) {
	want := oracle(t)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx := context.Background()
			_, addr, wait := startCoordinator(t, ctx, baseConfig(nil))
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					cfg := workerCfg(t, fmt.Sprintf("w%d", id), addr, evalFunc(t))
					if err := dist.RunWorker(ctx, cfg); err != nil {
						t.Errorf("worker %d: %v", id, err)
					}
				}(w)
			}
			got, err := wait()
			if err != nil {
				t.Fatalf("Serve: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("distributed sweep diverged from oracle:\n got %+v\nwant %+v", got, want)
			}
			wg.Wait()
		})
	}
}

// TestZeroWorkerFallback pins the degradation floor: with no worker
// ever joining, the coordinator runs every lease in-process and still
// produces the oracle sweep, emitting dist.fallback events.
func TestZeroWorkerFallback(t *testing.T) {
	want := oracle(t)
	rec := &obs.Recorder{}
	cfg := baseConfig(rec)
	cfg.FallbackAfter = 10 * time.Millisecond
	local := evalFunc(t)
	cfg.Local = dist.LocalFunc(local)
	_, _, wait := startCoordinator(t, context.Background(), cfg)
	got, err := wait()
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback sweep diverged from oracle:\n got %+v\nwant %+v", got, want)
	}
	if n := rec.Count(obs.KindDistFallback); n == 0 {
		t.Fatal("no dist.fallback events emitted")
	}
}

// TestLateWorkersFallBack covers the pool dying mid-sweep: one worker
// joins, evaluates a bit, exits (simulated by a context cancel);
// in-process fallback finishes the remainder and the folded sweep
// still matches the oracle.
func TestWorkerDeathFallsBackToLocal(t *testing.T) {
	want := oracle(t)
	rec := &obs.Recorder{}
	cfg := baseConfig(rec)
	cfg.FallbackAfter = 50 * time.Millisecond
	cfg.Local = dist.LocalFunc(evalFunc(t))
	ctx := context.Background()
	co, addr, wait := startCoordinator(t, ctx, cfg)

	// Worker that abandons the sweep after its first completed lease.
	wctx, wcancel := context.WithCancel(ctx)
	inner := evalFunc(t)
	var leases atomic.Int64
	fn := func(ctx context.Context, l dist.Lease) ([]float64, error) {
		accs, err := inner(ctx, l)
		if leases.Add(1) == 1 {
			// Quit after this result lands: RunWorker sees the cancel
			// on its next lease request.
			go wcancel()
			time.Sleep(10 * time.Millisecond)
		}
		return accs, err
	}
	err := dist.RunWorker(wctx, workerCfg(t, "mortal", addr, fn))
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("worker: %v", err)
	}

	got, err := wait()
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sweep diverged after worker death:\n got %+v\nwant %+v", got, want)
	}
	if s := co.Stats(); s.FoldedRuns != s.TotalRuns {
		t.Fatalf("stats: %d/%d runs folded", s.FoldedRuns, s.TotalRuns)
	}
	_ = rec
}

// TestEvalErrorReissue pins lease re-issue on worker-reported errors:
// a worker whose evaluator fails its first two calls surrenders those
// leases, the coordinator re-issues them (dist.reissue), and the
// final sweep is still the oracle's.
func TestEvalErrorReissue(t *testing.T) {
	want := oracle(t)
	rec := &obs.Recorder{}
	ctx := context.Background()
	_, addr, wait := startCoordinator(t, ctx, baseConfig(rec))
	inner := evalFunc(t)
	var calls atomic.Int64
	fn := func(ctx context.Context, l dist.Lease) ([]float64, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("synthetic transient failure")
		}
		return inner(ctx, l)
	}
	if err := dist.RunWorker(ctx, workerCfg(t, "flaky", addr, fn)); err != nil {
		t.Fatalf("worker: %v", err)
	}
	got, err := wait()
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sweep diverged after eval errors:\n got %+v\nwant %+v", got, want)
	}
	if n := rec.Count(obs.KindDistReissue); n < 2 {
		t.Fatalf("dist.reissue events = %d, want >= 2", n)
	}
}

// TestPersistentFailureFailsSweep pins the attempt cap: a lease that
// fails on every attempt (and no local fallback) fails the sweep
// instead of hanging it.
func TestPersistentFailureFailsSweep(t *testing.T) {
	cfg := baseConfig(nil)
	cfg.MaxLeaseAttempts = 3
	ctx := context.Background()
	_, addr, wait := startCoordinator(t, ctx, cfg)
	fn := func(ctx context.Context, l dist.Lease) ([]float64, error) {
		return nil, errors.New("permanently broken")
	}
	werr := make(chan error, 1)
	go func() { werr <- dist.RunWorker(ctx, workerCfg(t, "broken", addr, fn)) }()
	_, err := wait()
	if err == nil {
		t.Fatal("sweep succeeded with a permanently failing lease")
	}
	select {
	case <-werr:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after sweep failure")
	}
}

// TestDrainOnCancel pins graceful degradation under SIGTERM-style
// cancellation: assignment stops, and Serve returns the completed
// rate prefix with ctx's error — each returned summary exactly equal
// to the oracle's.
func TestDrainOnCancel(t *testing.T) {
	want := oracle(t)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := baseConfig(nil)
	_, addr, wait := startCoordinator(t, ctx, cfg)
	inner := evalFunc(t)
	var folded atomic.Int64
	fn := func(c context.Context, l dist.Lease) ([]float64, error) {
		accs, err := inner(c, l)
		if folded.Add(1) == 2 {
			cancel() // cancel mid-sweep, after some results landed
		}
		return accs, err
	}
	go dist.RunWorker(ctx, workerCfg(t, "w0", addr, fn))
	got, err := wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve err = %v, want context.Canceled", err)
	}
	if len(got) > len(want) {
		t.Fatalf("partial result has %d rates, sweep only has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("partial rate %d diverged: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestCkptRestart pins coordinator crash recovery: a first coordinator
// folds part of the sweep and is cancelled; a second one on the same
// checkpoint run restores the folded prefix (Stats().Restored > 0)
// and finishes, matching the oracle exactly.
func TestCkptRestart(t *testing.T) {
	want := oracle(t)
	dir := t.TempDir()

	ctx1, cancel1 := context.WithCancel(context.Background())
	cfg1 := baseConfig(nil)
	cfg1.Ckpt = ckpt.NewStore(dir, 100, false, nil).Run("dist")
	_, addr, wait1 := startCoordinator(t, ctx1, cfg1)
	inner := evalFunc(t)
	var folded atomic.Int64
	fn := func(c context.Context, l dist.Lease) ([]float64, error) {
		accs, err := inner(c, l)
		if folded.Add(1) == 2 {
			cancel1()
		}
		return accs, err
	}
	go dist.RunWorker(ctx1, workerCfg(t, "w0", addr, fn))
	if _, err := wait1(); !errors.Is(err, context.Canceled) {
		t.Fatalf("first coordinator err = %v, want context.Canceled", err)
	}

	cfg2 := baseConfig(nil)
	cfg2.Ckpt = ckpt.NewStore(dir, 100, true, nil).Run("dist")
	ctx2 := context.Background()
	co2, addr2, wait2 := startCoordinator(t, ctx2, cfg2)
	if s := co2.Stats(); s.Restored == 0 {
		t.Fatal("restarted coordinator restored nothing from the checkpoint")
	}
	go dist.RunWorker(ctx2, workerCfg(t, "w1", addr2, evalFunc(t)))
	got, err := wait2()
	if err != nil {
		t.Fatalf("second coordinator: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed sweep diverged from oracle:\n got %+v\nwant %+v", got, want)
	}
}

// TestWorkerNeverJoins pins the worker-side failure mode: dialing a
// dead address exhausts the backoff attempts and returns an error
// (rather than retrying forever).
func TestWorkerNeverJoins(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := lis.Addr().String()
	lis.Close() // nothing listens here anymore
	cfg := workerCfg(t, "orphan", addr, nil)
	cfg.Dial.Attempts = 3
	cfg.Setup = func(ctx context.Context, job dist.Job) (dist.EvalFunc, error) {
		t.Error("Setup ran without a coordinator")
		return nil, nil
	}
	if err := dist.RunWorker(context.Background(), cfg); err == nil {
		t.Fatal("worker joined a dead address")
	}
}
