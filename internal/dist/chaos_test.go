//go:build unix

// Chaos suite: real worker processes, real signals. One worker is
// SIGKILLed while it holds a lease (dead-worker path: connection
// error → immediate re-issue), another is SIGSTOPped past the
// heartbeat deadline (stalled-worker path: monitor re-issue), and the
// folded sweep must still be exactly the single-process oracle.
package dist_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"syscall"
	"testing"
	"time"

	"github.com/ftpim/ftpim/internal/dist"
	"github.com/ftpim/ftpim/internal/obs"
)

// TestDistWorkerProcess is the helper-process body, not a test: the
// chaos test re-executes its own binary with DIST_WORKER_ADDR set,
// and this function becomes a real worker process that can be killed
// or stopped without taking the test down with it.
func TestDistWorkerProcess(t *testing.T) {
	addr := os.Getenv("DIST_WORKER_ADDR")
	if addr == "" {
		t.Skip("helper process body; set DIST_WORKER_ADDR to run")
	}
	slow := time.Duration(0)
	if ms, err := strconv.Atoi(os.Getenv("DIST_WORKER_SLOW_MS")); err == nil && ms > 0 {
		slow = time.Duration(ms) * time.Millisecond
	}
	inner := evalFunc(t)
	fn := func(ctx context.Context, l dist.Lease) ([]float64, error) {
		if slow > 0 {
			// Stretch each lease so the parent has a window to deliver
			// signals mid-evaluation.
			select {
			case <-time.After(slow):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return inner(ctx, l)
	}
	cfg := workerCfg(t, os.Getenv("DIST_WORKER_ID"), addr, fn)
	if err := dist.RunWorker(context.Background(), cfg); err != nil {
		t.Fatalf("worker: %v", err)
	}
}

// spawnWorker launches this test binary as a real worker process.
func spawnWorker(t *testing.T, id, addr string, slow time.Duration) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDistWorkerProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"DIST_WORKER_ADDR="+addr,
		"DIST_WORKER_ID="+id,
		fmt.Sprintf("DIST_WORKER_SLOW_MS=%d", slow.Milliseconds()),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn worker %s: %v", id, err)
	}
	return cmd
}

// leaseHolder polls Stats until some live worker holds a lease,
// returning its id and pid. Workers in `exclude` are ignored.
func leaseHolder(t *testing.T, co *dist.Coordinator, exclude map[string]bool, deadline time.Duration) (string, int) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		s := co.Stats()
		for id, n := range s.LeasesByWorker {
			if n > 0 && !exclude[id] {
				if pid := s.PIDByWorker[id]; pid > 0 {
					return id, pid
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no worker took a lease within %v (stats %+v)", deadline, co.Stats())
	return "", 0
}

// TestChaosKillAndStall is the headline fault-tolerance test: three
// real worker processes; one dies by SIGKILL while holding a lease,
// one stalls under SIGSTOP past its heartbeat deadline; the survivor
// finishes the sweep and the result is byte-identical to the
// single-process oracle.
func TestChaosKillAndStall(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	want := oracle(t)
	rec := &obs.Recorder{}
	cfg := baseConfig(rec)
	cfg.LeaseRuns = 1 // many small leases: plenty of mid-lease windows
	cfg.LeaseTTL = time.Second
	ctx := context.Background()
	co, addr, wait := startCoordinator(t, ctx, cfg)

	const slow = 300 * time.Millisecond
	procs := map[string]*exec.Cmd{}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("chaos-%d", i)
		procs[id] = spawnWorker(t, id, addr, slow)
	}
	t.Cleanup(func() {
		for _, cmd := range procs {
			if cmd.Process != nil {
				cmd.Process.Signal(syscall.SIGCONT)
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	})

	// Victim 1: SIGKILL while it holds a lease. The broken connection
	// re-queues its leases immediately.
	exclude := map[string]bool{}
	killID, killPID := leaseHolder(t, co, exclude, 30*time.Second)
	if err := syscall.Kill(killPID, syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL %s (pid %d): %v", killID, killPID, err)
	}
	exclude[killID] = true

	// Victim 2: SIGSTOP past the heartbeat deadline. The monitor must
	// re-issue its lease without the connection ever erroring.
	stallID, stallPID := leaseHolder(t, co, exclude, 30*time.Second)
	if err := syscall.Kill(stallPID, syscall.SIGSTOP); err != nil {
		t.Fatalf("SIGSTOP %s (pid %d): %v", stallID, stallPID, err)
	}
	exclude[stallID] = true

	got, err := wait()
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos sweep diverged from oracle:\n got %+v\nwant %+v", got, want)
	}
	if n := rec.Count(obs.KindDistWorkerLost); n == 0 {
		t.Fatal("no dist.worker.lost events after a SIGKILL")
	}
	if n := rec.Count(obs.KindDistReissue); n == 0 {
		t.Fatal("no dist.reissue events after kill + stall")
	}
	// The stalled worker specifically must have triggered a re-issue
	// (by missed heartbeat or by its connection timing out).
	found := false
	for _, e := range rec.Events() {
		if e.Kind == obs.KindDistReissue && e.Key == stallID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no re-issue recorded for the stalled worker %s", stallID)
	}

	// The survivor should exit cleanly once the sweep broadcasts done.
	syscall.Kill(stallPID, syscall.SIGCONT)
	for id, cmd := range procs {
		if exclude[id] {
			continue
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case werr := <-done:
			var exit *exec.ExitError
			if werr != nil && !errors.As(werr, &exit) {
				t.Fatalf("surviving worker %s: %v", id, werr)
			}
			if werr != nil {
				t.Fatalf("surviving worker %s exited non-zero: %v", id, werr)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("surviving worker %s did not exit after done", id)
		}
	}
}
