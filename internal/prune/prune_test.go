package prune

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

func randParams(r *tensor.RNG, sizes ...int) []*nn.Param {
	var ps []*nn.Param
	for i, n := range sizes {
		p := nn.NewParam("p", n)
		tensor.FillNormal(p.W, r, 0, 1)
		_ = i
		ps = append(ps, p)
	}
	return ps
}

func TestMagnitudePruneSparsityExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		ps := randParams(r, 500)
		target := 0.1 + 0.8*r.Float64()
		MagnitudePrune(ps, target, false)
		got := Sparsity(ps)
		// Exactness up to 1 element (ties are measure-zero for normals).
		return math.Abs(got-target) <= 2.0/500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMagnitudePruneKeepsLargest(t *testing.T) {
	p := nn.NewParam("w", 4)
	p.W.CopyFrom(tensor.FromSlice([]float32{0.1, -5, 0.2, 3}, 4))
	MagnitudePrune([]*nn.Param{p}, 0.5, false)
	d := p.W.Data()
	if d[0] != 0 || d[2] != 0 {
		t.Fatalf("small weights should be pruned: %v", d)
	}
	if d[1] != -5 || d[3] != 3 {
		t.Fatalf("large weights must survive: %v", d)
	}
}

func TestMagnitudePruneGlobalVsPerLayer(t *testing.T) {
	r := tensor.NewRNG(1)
	// Layer A has tiny weights, layer B large ones. Global pruning
	// should wipe out mostly A; per-layer pruning hits both equally.
	mk := func() []*nn.Param {
		a := nn.NewParam("a", 100)
		b := nn.NewParam("b", 100)
		tensor.FillNormal(a.W, r.Stream("a"), 0, 0.01)
		tensor.FillNormal(b.W, r.Stream("b"), 0, 10)
		return []*nn.Param{a, b}
	}
	psG := mk()
	MagnitudePrune(psG, 0.5, true)
	if psG[0].Sparsity() < 0.95 {
		t.Fatalf("global pruning should remove nearly all tiny-layer weights, got %v", psG[0].Sparsity())
	}
	if psG[1].Sparsity() > 0.05 {
		t.Fatalf("global pruning should spare the large layer, got %v", psG[1].Sparsity())
	}
	psL := mk()
	MagnitudePrune(psL, 0.5, false)
	if math.Abs(psL[0].Sparsity()-0.5) > 0.02 || math.Abs(psL[1].Sparsity()-0.5) > 0.02 {
		t.Fatal("per-layer pruning should hit each layer equally")
	}
}

func TestMagnitudePruneZeroSparsityClearsMasks(t *testing.T) {
	r := tensor.NewRNG(2)
	ps := randParams(r, 50)
	MagnitudePrune(ps, 0.5, false)
	if ps[0].Mask == nil {
		t.Fatal("mask expected")
	}
	MagnitudePrune(ps, 0, false)
	if ps[0].Mask != nil {
		t.Fatal("sparsity 0 should clear masks")
	}
}

func TestMagnitudePruneBadSparsityPanics(t *testing.T) {
	r := tensor.NewRNG(3)
	ps := randParams(r, 10)
	for _, bad := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for sparsity %v", bad)
				}
			}()
			MagnitudePrune(ps, bad, false)
		}()
	}
}

func TestProjectTopKExactCount(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 10 + int(r.Uint64()%200)
		x := tensor.New(n)
		tensor.FillNormal(x, r, 0, 1)
		sp := r.Float64() * 0.95
		projectTopK(x, sp)
		zeros := 0
		for _, v := range x.Data() {
			if v == 0 {
				zeros++
			}
		}
		return zeros == int(float64(n)*sp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectTopKWithTies(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 1, 1, 1, 2, 2}, 6)
	projectTopK(x, 0.5) // zero exactly 3
	zeros := 0
	for _, v := range x.Data() {
		if v == 0 {
			zeros++
		}
	}
	if zeros != 3 {
		t.Fatalf("tie handling broke exact count: %v", x.Data())
	}
	// The 2s must survive.
	if x.At(4) != 2 || x.At(5) != 2 {
		t.Fatal("largest entries must survive ties")
	}
}

func TestADMMPenaltyGradDirection(t *testing.T) {
	// With W ≠ Z and U = 0, the penalty gradient must point from W
	// towards Z (i.e. g = ρ(W−Z)).
	p := nn.NewParam("w", 2)
	p.W.CopyFrom(tensor.FromSlice([]float32{1, -3}, 2))
	a := NewADMM([]*nn.Param{p}, 0.5, 2)
	// Z = projection of W: keeps -3, zeroes 1.
	p.ZeroGrad()
	a.AddPenaltyGrad()
	g := p.Grad.Data()
	if math.Abs(float64(g[0]-2*1)) > 1e-6 { // ρ·(1−0+0)
		t.Fatalf("grad[0]=%v want 2", g[0])
	}
	if math.Abs(float64(g[1])) > 1e-6 { // W=Z there
		t.Fatalf("grad[1]=%v want 0", g[1])
	}
}

func TestADMMDualUpdateReducesResidualOnStaticProblem(t *testing.T) {
	// Minimize ‖W−W0‖² s.t. sparsity: gradient descent on the penalty
	// alone should drive W towards Z and the residual to ~0.
	r := tensor.NewRNG(4)
	p := nn.NewParam("w", 50)
	tensor.FillNormal(p.W, r, 0, 1)
	a := NewADMM([]*nn.Param{p}, 0.6, 1)
	initial := a.PrimalResidual()
	for iter := 0; iter < 200; iter++ {
		p.ZeroGrad()
		a.AddPenaltyGrad()
		for j, g := range p.Grad.Data() {
			p.W.Data()[j] -= 0.1 * g
		}
		if iter%10 == 9 {
			a.UpdateDuals()
		}
	}
	if got := a.PrimalResidual(); got > initial*0.05 {
		t.Fatalf("ADMM did not converge: residual %v (initial %v)", got, initial)
	}
}

func TestADMMFinalizeInstallsMasks(t *testing.T) {
	r := tensor.NewRNG(5)
	ps := randParams(r, 100)
	a := NewADMM(ps, 0.7, 1)
	a.Finalize()
	if ps[0].Mask == nil {
		t.Fatal("Finalize must install a mask")
	}
	got := Sparsity(ps)
	if math.Abs(got-0.7) > 0.02 {
		t.Fatalf("finalized sparsity %v, want ≈0.7", got)
	}
	// Weights must be masked immediately.
	zeros := 0
	for _, v := range ps[0].W.Data() {
		if v == 0 {
			zeros++
		}
	}
	if zeros != 70 {
		t.Fatalf("weights not hard-pruned: %d zeros", zeros)
	}
}

func TestADMMBadConfigPanics(t *testing.T) {
	r := tensor.NewRNG(6)
	ps := randParams(r, 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for rho=0")
			}
		}()
		NewADMM(ps, 0.5, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for sparsity=1")
			}
		}()
		NewADMM(ps, 1, 1)
	}()
}

func TestSparsityNoMasks(t *testing.T) {
	r := tensor.NewRNG(7)
	ps := randParams(r, 10, 10)
	if Sparsity(ps) != 0 {
		t.Fatal("unmasked params must report 0")
	}
}
