package prune_test

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/prune"
	"github.com/ftpim/ftpim/internal/tensor"
)

// One-shot magnitude pruning zeroes the smallest weights and installs
// a mask that keeps them at zero through later training.
func ExampleMagnitudePrune() {
	p := nn.NewParam("fc.weight", 6)
	p.W.CopyFrom(tensor.FromSlice([]float32{0.9, -0.1, 0.4, -0.8, 0.05, 0.6}, 6))

	prune.MagnitudePrune([]*nn.Param{p}, 0.5, false)
	fmt.Printf("weights: %v\n", p.W.Data())
	fmt.Printf("sparsity: %.2f\n", prune.Sparsity([]*nn.Param{p}))
	// Output:
	// weights: [0.9 -0 0 -0.8 0 0.6]
	// sparsity: 0.50
}
