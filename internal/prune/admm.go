package prune

import (
	"fmt"
	"math"
	"sort"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// ADMM drives the alternating-direction-method-of-multipliers pruning
// of Zhang et al. [12]. The weight loss is augmented with
//
//	(ρ/2)·Σ ‖W − Z + U‖²
//
// where Z is the projection of W+U onto the sparsity constraint set
// (top-k magnitude) and U is the scaled dual variable. The training
// loop calls AddPenaltyGrad after every backward pass and UpdateDuals
// every few epochs; Finalize hard-prunes to the learned pattern.
type ADMM struct {
	Rho      float64
	Sparsity float64

	params []*nn.Param
	z, u   []*tensor.Tensor
}

// NewADMM initializes the auxiliary variables: Z starts at the
// projection of the current weights, U at zero.
func NewADMM(params []*nn.Param, sparsity, rho float64) *ADMM {
	if sparsity < 0 || sparsity >= 1 {
		panic(fmt.Sprintf("prune: ADMM sparsity %v out of [0,1)", sparsity))
	}
	if rho <= 0 {
		panic("prune: ADMM rho must be positive")
	}
	a := &ADMM{Rho: rho, Sparsity: sparsity, params: params}
	for _, p := range params {
		z := p.W.Clone()
		projectTopK(z, sparsity)
		a.z = append(a.z, z)
		a.u = append(a.u, tensor.New(p.W.Shape()...))
	}
	return a
}

// AddPenaltyGrad adds ρ·(W − Z + U) to each parameter gradient — the
// gradient of the augmented-Lagrangian penalty. Call after the task
// backward pass, before the optimizer step.
func (a *ADMM) AddPenaltyGrad() {
	rho := float32(a.Rho)
	for i, p := range a.params {
		g, w := p.Grad.Data(), p.W.Data()
		zd, ud := a.z[i].Data(), a.u[i].Data()
		for j := range g {
			g[j] += rho * (w[j] - zd[j] + ud[j])
		}
	}
}

// UpdateDuals performs the Z and U updates:
//
//	Z ← Π_S(W + U),  U ← U + W − Z.
func (a *ADMM) UpdateDuals() {
	for i, p := range a.params {
		w := p.W.Data()
		zd, ud := a.z[i].Data(), a.u[i].Data()
		for j := range zd {
			zd[j] = w[j] + ud[j]
		}
		projectTopK(a.z[i], a.Sparsity)
		for j := range ud {
			ud[j] += w[j] - zd[j]
		}
	}
}

// ADMMState is the serializable auxiliary state of an ADMM run — the
// Z projections and scaled duals U — captured by ExportState so a
// checkpointed ADMM training phase can resume mid-run with identical
// penalty gradients and dual updates.
type ADMMState struct {
	Z, U []*tensor.Tensor
}

// ExportState returns a deep copy of the Z and U variables.
func (a *ADMM) ExportState() *ADMMState {
	st := &ADMMState{}
	for i := range a.params {
		st.Z = append(st.Z, a.z[i].Clone())
		st.U = append(st.U, a.u[i].Clone())
	}
	return st
}

// ImportState restores Z and U captured by ExportState into an ADMM
// instance over a structurally identical parameter set.
func (a *ADMM) ImportState(st *ADMMState) error {
	if st == nil || len(st.Z) != len(a.z) || len(st.U) != len(a.u) {
		return fmt.Errorf("prune: ADMM state shape mismatch")
	}
	for i := range a.z {
		if !a.z[i].SameShape(st.Z[i]) || !a.u[i].SameShape(st.U[i]) {
			return fmt.Errorf("prune: ADMM state tensor %d shape mismatch", i)
		}
	}
	for i := range a.z {
		a.z[i].CopyFrom(st.Z[i])
		a.u[i].CopyFrom(st.U[i])
	}
	return nil
}

// PrimalResidual returns ‖W − Z‖₂ summed over params — the convergence
// measure of the ADMM split.
func (a *ADMM) PrimalResidual() float64 {
	var sum float64
	for i, p := range a.params {
		w := p.W.Data()
		zd := a.z[i].Data()
		for j := range w {
			d := float64(w[j] - zd[j])
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// Finalize hard-prunes every parameter to its Z sparsity pattern
// (per-layer top-k of the final W+U projection), installing masks for
// the fine-tuning phase.
func (a *ADMM) Finalize() {
	for i, p := range a.params {
		mask := tensor.Ones(p.W.Shape()...)
		md := mask.Data()
		for j, zv := range a.z[i].Data() {
			if zv == 0 {
				md[j] = 0
			}
		}
		p.Mask = mask
		p.ApplyMask()
	}
}

// projectTopK zeroes all but the (1−sparsity) fraction of largest-
// magnitude entries of t (per-tensor projection, as in [12]).
func projectTopK(t *tensor.Tensor, sparsity float64) {
	n := t.Len()
	k := int(float64(n) * sparsity) // number to zero
	if k <= 0 {
		return
	}
	if k >= n {
		t.Zero()
		return
	}
	mags := make([]float32, n)
	d := t.Data()
	for i, v := range d {
		mags[i] = abs32(v)
	}
	sorted := append([]float32(nil), mags...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	thr := sorted[k]
	// Zero strictly-below-threshold entries first, then resolve ties at
	// the threshold so exactly k entries are zeroed.
	zeroed := 0
	for i := range d {
		if mags[i] < thr {
			d[i] = 0
			zeroed++
		}
	}
	if zeroed < k {
		for i := range d {
			if zeroed == k {
				break
			}
			if mags[i] == thr && d[i] != 0 {
				d[i] = 0
				zeroed++
			}
		}
	}
}
