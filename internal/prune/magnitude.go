// Package prune implements the weight-pruning methods the paper pairs
// with fault-tolerant training: one-shot magnitude pruning (Han et al.,
// NeurIPS'15 [27]) and ADMM-based systematic pruning (Zhang et al.,
// ECCV'18 [12]). Both produce {0,1} masks on the weight parameters;
// the optimizer keeps masked weights at exactly zero.
package prune

import (
	"fmt"
	"sort"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// MagnitudePrune applies one-shot magnitude pruning at the given
// sparsity (fraction of weights zeroed). With global=true a single
// threshold is computed across all params; otherwise each param is
// pruned to the sparsity independently (per-layer). Masks are installed
// on the params and applied immediately.
func MagnitudePrune(params []*nn.Param, sparsity float64, global bool) {
	if sparsity < 0 || sparsity >= 1 {
		panic(fmt.Sprintf("prune: sparsity %v out of [0,1)", sparsity))
	}
	if sparsity == 0 {
		for _, p := range params {
			p.Mask = nil
		}
		return
	}
	if global {
		var all []float32
		for _, p := range params {
			for _, v := range p.W.Data() {
				all = append(all, abs32(v))
			}
		}
		thr := kthSmallest(all, int(float64(len(all))*sparsity))
		for _, p := range params {
			maskBelow(p, thr)
		}
		return
	}
	for _, p := range params {
		mags := make([]float32, p.W.Len())
		for i, v := range p.W.Data() {
			mags[i] = abs32(v)
		}
		thr := kthSmallest(mags, int(float64(len(mags))*sparsity))
		maskBelow(p, thr)
	}
}

// maskBelow installs a mask zeroing every |w| < thr.
func maskBelow(p *nn.Param, thr float32) {
	mask := tensor.Ones(p.W.Shape()...)
	md := mask.Data()
	for i, v := range p.W.Data() {
		if abs32(v) < thr {
			md[i] = 0
		}
	}
	p.Mask = mask
	p.ApplyMask()
}

// kthSmallest returns the value v such that exactly k elements are
// < v when pruning with "< v" semantics; i.e. the k-th order statistic
// (0 ⇒ −inf behaviour: nothing pruned).
func kthSmallest(vals []float32, k int) float32 {
	if k <= 0 {
		return 0 // |w| >= 0 always, so nothing is < 0
	}
	if k >= len(vals) {
		k = len(vals) - 1
	}
	s := append([]float32(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[k]
}

// Sparsity reports the achieved zero fraction across params (by mask).
func Sparsity(params []*nn.Param) float64 {
	total, zeros := 0, 0
	for _, p := range params {
		total += p.W.Len()
		if p.Mask == nil {
			continue
		}
		for _, v := range p.Mask.Data() {
			if v == 0 {
				zeros++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zeros) / float64(total)
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
