package data

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/ftpim/ftpim/internal/tensor"
)

func tinySynth() SynthConfig {
	return SynthConfig{
		Classes: 4, TrainPer: 12, TestPer: 5,
		Channels: 3, Size: 8, Basis: 8,
		NoiseStd: 0.2, ShiftMax: 1, JitterStd: 0.1,
		Seed: 7,
	}
}

func TestGenerateShapesAndLabels(t *testing.T) {
	train, test := Generate(tinySynth())
	if train.N() != 48 || test.N() != 20 {
		t.Fatalf("N train=%d test=%d", train.N(), test.N())
	}
	c, h, w := train.Dims()
	if c != 3 || h != 8 || w != 8 {
		t.Fatalf("dims %d %d %d", c, h, w)
	}
	for _, l := range train.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
	}
	hist := train.ClassHistogram()
	for cl, n := range hist {
		if n != 12 {
			t.Fatalf("class %d has %d examples, want 12", cl, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(tinySynth())
	b, _ := Generate(tinySynth())
	if !a.Images.Equal(b.Images) {
		t.Fatal("same seed must generate identical data")
	}
	cfg := tinySynth()
	cfg.Seed = 8
	c, _ := Generate(cfg)
	if a.Images.Equal(c.Images) {
		t.Fatal("different seeds should generate different data")
	}
}

func TestGenerateNormalized(t *testing.T) {
	train, _ := Generate(tinySynth())
	c, h, w := train.Dims()
	area := h * w
	xd := train.Images.Data()
	for ch := 0; ch < c; ch++ {
		var sum, sq float64
		for i := 0; i < train.N(); i++ {
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				v := float64(xd[base+j])
				sum += v
				sq += v * v
			}
		}
		cnt := float64(train.N() * area)
		mean := sum / cnt
		variance := sq/cnt - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d not normalized: mean=%v var=%v", ch, mean, variance)
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A nearest-class-mean classifier on raw pixels must beat chance by
	// a wide margin, otherwise the synthetic task carries no signal.
	train, test := Generate(tinySynth())
	c, h, w := train.Dims()
	stride := c * h * w
	means := make([][]float64, train.Classes)
	counts := make([]int, train.Classes)
	for i := range means {
		means[i] = make([]float64, stride)
	}
	for i := 0; i < train.N(); i++ {
		l := train.Labels[i]
		counts[l]++
		img := train.Images.Data()[i*stride : (i+1)*stride]
		for j, v := range img {
			means[l][j] += float64(v)
		}
	}
	for l := range means {
		for j := range means[l] {
			means[l][j] /= float64(counts[l])
		}
	}
	correct := 0
	for i := 0; i < test.N(); i++ {
		img := test.Images.Data()[i*stride : (i+1)*stride]
		best, bl := math.Inf(1), -1
		for l := range means {
			var d float64
			for j, v := range img {
				diff := float64(v) - means[l][j]
				d += diff * diff
			}
			if d < best {
				best, bl = d, l
			}
		}
		if bl == test.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.N())
	if acc < 0.5 {
		t.Fatalf("nearest-mean accuracy %.2f; synthetic task is not learnable", acc)
	}
}

func TestSubsetAndHead(t *testing.T) {
	train, _ := Generate(tinySynth())
	sub := train.Subset([]int{3, 0})
	if sub.N() != 2 || sub.Labels[0] != train.Labels[3] || sub.Labels[1] != train.Labels[0] {
		t.Fatal("Subset mislabeled")
	}
	head := train.Head(5)
	if head.N() != 5 || head.Labels[2] != train.Labels[2] {
		t.Fatal("Head wrong")
	}
	if train.Head(10_000).N() != train.N() {
		t.Fatal("Head should clamp")
	}
}

func TestLoaderCoversEveryExampleOnce(t *testing.T) {
	train, _ := Generate(tinySynth())
	rng := tensor.NewRNG(3)
	l := NewLoader(train, 7, Augment{}, true, rng)
	l.Epoch()
	seen := 0
	labelCount := make([]int, train.Classes)
	for {
		x, y := l.Next()
		if x == nil {
			break
		}
		if x.Dim(0) != len(y) {
			t.Fatal("batch size mismatch")
		}
		seen += len(y)
		for _, li := range y {
			labelCount[li]++
		}
	}
	if seen != train.N() {
		t.Fatalf("epoch visited %d of %d examples", seen, train.N())
	}
	for cl, n := range labelCount {
		if n != 12 {
			t.Fatalf("class %d seen %d times", cl, n)
		}
	}
	if l.Steps() != (train.N()+6)/7 {
		t.Fatalf("Steps=%d", l.Steps())
	}
}

func TestLoaderShuffleChangesOrder(t *testing.T) {
	train, _ := Generate(tinySynth())
	rng := tensor.NewRNG(4)
	l := NewLoader(train, train.N(), Augment{}, true, rng)
	l.Epoch()
	_, y1 := l.Next()
	first := append([]int(nil), y1...)
	l.Epoch()
	_, y2 := l.Next()
	same := true
	for i := range first {
		if first[i] != y2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("reshuffled epoch should differ (overwhelmingly likely)")
	}
}

func TestLoaderNoShuffleStableOrder(t *testing.T) {
	train, _ := Generate(tinySynth())
	l := NewLoader(train, 5, Augment{}, false, tensor.NewRNG(1))
	l.Epoch()
	_, y := l.Next()
	for i, li := range y {
		if li != train.Labels[i] {
			t.Fatal("unshuffled loader must preserve order")
		}
	}
}

func TestAugmentPreservesEnergyScale(t *testing.T) {
	// Augmentation must not blow up or zero out images.
	train, _ := Generate(tinySynth())
	rng := tensor.NewRNG(5)
	l := NewLoader(train, 16, Augment{Flip: true, ShiftMax: 2}, true, rng)
	l.Epoch()
	x, _ := l.Next()
	if !x.IsFinite() {
		t.Fatal("augmented batch has NaN/Inf")
	}
	if x.MaxAbs() == 0 {
		t.Fatal("augmented batch is all zero")
	}
}

func TestFlipIsInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		c, h, w := 2, 4, 6
		img := make([]float32, c*h*w)
		for i := range img {
			img[i] = r.Normal(0, 1)
		}
		orig := append([]float32(nil), img...)
		flip := func(im []float32) {
			for ch := 0; ch < c; ch++ {
				for y := 0; y < h; y++ {
					row := im[(ch*h+y)*w : (ch*h+y)*w+w]
					for x := 0; x < w/2; x++ {
						row[x], row[w-1-x] = row[w-1-x], row[x]
					}
				}
			}
		}
		flip(img)
		flip(img)
		for i := range img {
			if img[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// buildCIFARStream fabricates n CIFAR-10-format records.
func buildCIFARStream(n int, classes int) []byte {
	r := tensor.NewRNG(9)
	buf := make([]byte, 0, n*(1+cifarPixels))
	for i := 0; i < n; i++ {
		buf = append(buf, byte(i%classes))
		for j := 0; j < cifarPixels; j++ {
			buf = append(buf, byte(r.Uint64()%256))
		}
	}
	return buf
}

func TestParseCIFARReader(t *testing.T) {
	raw := buildCIFARStream(6, 10)
	ds, err := ParseCIFARReader(bytes.NewReader(raw), "fake", 10)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 6 || ds.Classes != 10 {
		t.Fatalf("N=%d classes=%d", ds.N(), ds.Classes)
	}
	c, h, w := ds.Dims()
	if c != 3 || h != 32 || w != 32 {
		t.Fatalf("dims %d %d %d", c, h, w)
	}
	if ds.Labels[3] != 3 {
		t.Fatalf("label[3]=%d", ds.Labels[3])
	}
	// Pixels are scaled to [0,1].
	if ds.Images.Max() > 1 || ds.Images.Min() < 0 {
		t.Fatal("pixel scaling out of range")
	}
}

func TestParseCIFARReaderTruncated(t *testing.T) {
	raw := buildCIFARStream(2, 10)
	if _, err := ParseCIFARReader(bytes.NewReader(raw[:len(raw)-10]), "bad", 10); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestLoadCIFAR10DirMissing(t *testing.T) {
	if _, _, err := LoadCIFAR10Dir(t.TempDir()); err == nil {
		t.Fatal("expected error when files are missing")
	}
}

// Epoch reshuffles the previous permutation in place, so PermState /
// SetPermState must round-trip the exact batch order a fresh loader
// with the same RNG state would otherwise not reproduce.
func TestLoaderPermStateRoundTrip(t *testing.T) {
	ds, _ := Generate(SynthConfig{Classes: 3, TrainPer: 20, TestPer: 5, Channels: 1, Size: 4, Basis: 4, Seed: 2})

	a := NewLoader(ds, 7, Augment{}, true, tensor.NewRNG(3))
	a.Epoch()
	a.Epoch() // two shuffles deep: perm != shuffle(identity)
	if a.PermState() == nil {
		t.Fatal("PermState must be non-nil after Epoch")
	}

	b := NewLoader(ds, 7, Augment{}, true, tensor.NewRNG(9))
	if b.PermState() != nil {
		t.Fatal("PermState before any Epoch must be nil")
	}
	if err := b.SetPermState(a.PermState()); err != nil {
		t.Fatal(err)
	}
	// Same perm, no reshuffle: both loaders must emit identical label
	// sequences.
	for {
		_, la := a.Next()
		_, lb := b.Next()
		if la == nil && lb == nil {
			break
		}
		if len(la) != len(lb) {
			t.Fatal("batch sizes diverged")
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatal("restored permutation produced a different batch order")
			}
		}
	}
}

func TestLoaderSetPermStateValidates(t *testing.T) {
	ds, _ := Generate(SynthConfig{Classes: 3, TrainPer: 10, TestPer: 5, Channels: 1, Size: 4, Basis: 4, Seed: 2})
	l := NewLoader(ds, 4, Augment{}, true, tensor.NewRNG(1))
	if err := l.SetPermState([]int{0, 1}); err == nil {
		t.Fatal("wrong-length perm must be rejected")
	}
	bad := make([]int, ds.N())
	for i := range bad {
		bad[i] = 0 // duplicate indices
	}
	if err := l.SetPermState(bad); err == nil {
		t.Fatal("non-permutation must be rejected")
	}
	oob := make([]int, ds.N())
	for i := range oob {
		oob[i] = i
	}
	oob[0] = ds.N() // out of range
	if err := l.SetPermState(oob); err == nil {
		t.Fatal("out-of-range index must be rejected")
	}
}
