// Package data provides the image-classification datasets the
// experiments train on: a deterministic synthetic CIFAR-like generator
// (the default, since the reproduction environment has no dataset
// files) and a loader for the real CIFAR-10/100 binary format which is
// used verbatim when the files are present.
package data

import (
	"fmt"
	"math"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Dataset is an in-memory labeled image set in NCHW layout.
type Dataset struct {
	Name    string
	Images  *tensor.Tensor // (N, C, H, W), normalized
	Labels  []int
	Classes int
}

// N returns the number of examples.
func (d *Dataset) N() int { return len(d.Labels) }

// Dims returns (C, H, W).
func (d *Dataset) Dims() (c, h, w int) {
	return d.Images.Dim(1), d.Images.Dim(2), d.Images.Dim(3)
}

// Example copies example i into dst (C·H·W floats) and returns its label.
func (d *Dataset) Example(i int, dst []float32) int {
	c, h, w := d.Dims()
	stride := c * h * w
	copy(dst, d.Images.Data()[i*stride:(i+1)*stride])
	return d.Labels[i]
}

// Subset returns a view dataset containing the examples at idx.
func (d *Dataset) Subset(idx []int) *Dataset {
	c, h, w := d.Dims()
	stride := c * h * w
	out := &Dataset{
		Name:    d.Name + "-subset",
		Images:  tensor.New(len(idx), c, h, w),
		Labels:  make([]int, len(idx)),
		Classes: d.Classes,
	}
	for j, i := range idx {
		copy(out.Images.Data()[j*stride:(j+1)*stride], d.Images.Data()[i*stride:(i+1)*stride])
		out.Labels[j] = d.Labels[i]
	}
	return out
}

// Head returns the first n examples as a view-copy (convenient for
// quicker evaluation sweeps).
func (d *Dataset) Head(n int) *Dataset {
	if n > d.N() {
		n = d.N()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	s := d.Subset(idx)
	s.Name = d.Name
	return s
}

// Normalize shifts and scales images in place to zero mean and unit
// std per channel, returning the statistics used.
func (d *Dataset) Normalize() (mean, std []float32) {
	c, h, w := d.Dims()
	n := d.N()
	area := h * w
	mean = make([]float32, c)
	std = make([]float32, c)
	xd := d.Images.Data()
	for ch := 0; ch < c; ch++ {
		var sum, sq float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				v := float64(xd[base+j])
				sum += v
				sq += v * v
			}
		}
		cnt := float64(n * area)
		m := sum / cnt
		variance := sq/cnt - m*m
		if variance < 1e-12 {
			variance = 1e-12
		}
		mean[ch] = float32(m)
		std[ch] = float32(math.Sqrt(variance))
		inv := 1 / std[ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				xd[base+j] = (xd[base+j] - mean[ch]) * inv
			}
		}
	}
	return mean, std
}

// ApplyNormalization normalizes with externally supplied statistics
// (e.g. the training set's), as required for a test split.
func (d *Dataset) ApplyNormalization(mean, std []float32) {
	c, h, w := d.Dims()
	if len(mean) != c || len(std) != c {
		panic(fmt.Sprintf("data: normalization stats for %d channels, dataset has %d", len(mean), c))
	}
	area := h * w
	xd := d.Images.Data()
	for ch := 0; ch < c; ch++ {
		inv := 1 / std[ch]
		for i := 0; i < d.N(); i++ {
			base := (i*c + ch) * area
			for j := 0; j < area; j++ {
				xd[base+j] = (xd[base+j] - mean[ch]) * inv
			}
		}
	}
}

// ClassHistogram returns per-class example counts (length Classes).
func (d *Dataset) ClassHistogram() []int {
	h := make([]int, d.Classes)
	for _, l := range d.Labels {
		h[l]++
	}
	return h
}
