package data

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/ftpim/ftpim/internal/tensor"
)

// CIFAR binary-format constants (https://www.cs.toronto.edu/~kriz/cifar.html).
const (
	cifarSide   = 32
	cifarPixels = 3 * cifarSide * cifarSide // 3072
)

// LoadCIFAR10Dir loads the CIFAR-10 binary distribution from dir
// (data_batch_1..5.bin and test_batch.bin). Both splits are returned
// normalized with the training statistics.
func LoadCIFAR10Dir(dir string) (train, test *Dataset, err error) {
	var trainFiles []string
	for i := 1; i <= 5; i++ {
		trainFiles = append(trainFiles, filepath.Join(dir, fmt.Sprintf("data_batch_%d.bin", i)))
	}
	train, err = loadCIFARFiles("cifar10-train", trainFiles, 10, false)
	if err != nil {
		return nil, nil, err
	}
	test, err = loadCIFARFiles("cifar10-test", []string{filepath.Join(dir, "test_batch.bin")}, 10, false)
	if err != nil {
		return nil, nil, err
	}
	mean, std := train.Normalize()
	test.ApplyNormalization(mean, std)
	return train, test, nil
}

// LoadCIFAR100Dir loads the CIFAR-100 binary distribution from dir
// (train.bin and test.bin) using the fine labels.
func LoadCIFAR100Dir(dir string) (train, test *Dataset, err error) {
	train, err = loadCIFARFiles("cifar100-train", []string{filepath.Join(dir, "train.bin")}, 100, true)
	if err != nil {
		return nil, nil, err
	}
	test, err = loadCIFARFiles("cifar100-test", []string{filepath.Join(dir, "test.bin")}, 100, true)
	if err != nil {
		return nil, nil, err
	}
	mean, std := train.Normalize()
	test.ApplyNormalization(mean, std)
	return train, test, nil
}

// loadCIFARFiles parses concatenated CIFAR records. CIFAR-100 records
// carry a coarse label byte before the fine label byte.
func loadCIFARFiles(name string, paths []string, classes int, coarseByte bool) (*Dataset, error) {
	record := 1 + cifarPixels
	if coarseByte {
		record = 2 + cifarPixels
	}
	var raw []byte
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("data: %w", err)
		}
		raw = append(raw, b...)
	}
	return parseCIFARRecords(raw, name, classes, coarseByte, record)
}

func parseCIFARRecords(raw []byte, name string, classes int, coarseByte bool, record int) (*Dataset, error) {
	if len(raw)%record != 0 {
		return nil, fmt.Errorf("data: %s size %d is not a multiple of record size %d", name, len(raw), record)
	}
	n := len(raw) / record
	d := &Dataset{
		Name:    name,
		Images:  tensor.New(n, 3, cifarSide, cifarSide),
		Labels:  make([]int, n),
		Classes: classes,
	}
	xd := d.Images.Data()
	for i := 0; i < n; i++ {
		rec := raw[i*record : (i+1)*record]
		label := int(rec[0])
		pix := rec[1:]
		if coarseByte {
			label = int(rec[1]) // fine label
			pix = rec[2:]
		}
		if label >= classes {
			return nil, fmt.Errorf("data: %s record %d label %d out of range", name, i, label)
		}
		d.Labels[i] = label
		base := i * cifarPixels
		for j := 0; j < cifarPixels; j++ {
			xd[base+j] = float32(pix[j]) / 255
		}
	}
	return d, nil
}

// ParseCIFARReader parses CIFAR-10-format records from a stream; it
// exists so tests can exercise the record parser without disk files.
func ParseCIFARReader(r io.Reader, name string, classes int) (*Dataset, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return parseCIFARRecords(raw, name, classes, false, 1+cifarPixels)
}
