package data

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Augment holds the light data-augmentation settings used during
// training: random horizontal flips and random shifts with zero
// padding (the CIFAR "random crop" equivalent).
type Augment struct {
	Flip     bool
	ShiftMax int
}

// Loader iterates over a dataset in shuffled mini-batches, optionally
// augmenting each example. The batch tensor is reused between
// iterations — consumers must not retain it across Next calls.
type Loader struct {
	DS      *Dataset
	Batch   int
	Aug     Augment
	Shuffle bool

	rng    *tensor.RNG
	perm   []int
	cursor int
	buf    []float32 // full-batch image storage; partial batches view a prefix
	images tensor.Tensor
	labels []int
	shift  []float32 // augment scratch plane
}

// NewLoader creates a mini-batch loader. rng drives shuffling and
// augmentation; pass a dedicated stream for reproducibility.
func NewLoader(ds *Dataset, batch int, aug Augment, shuffle bool, rng *tensor.RNG) *Loader {
	if batch <= 0 {
		panic("data: batch size must be positive")
	}
	return &Loader{DS: ds, Batch: batch, Aug: aug, Shuffle: shuffle, rng: rng}
}

// Epoch resets the iterator and reshuffles.
func (l *Loader) Epoch() {
	n := l.DS.N()
	if l.perm == nil || len(l.perm) != n {
		l.perm = make([]int, n)
		for i := range l.perm {
			l.perm[i] = i
		}
	}
	if l.Shuffle {
		l.rng.Shuffle(n, func(i, j int) { l.perm[i], l.perm[j] = l.perm[j], l.perm[i] })
	}
	l.cursor = 0
}

// Steps returns the number of batches per epoch (final partial batch
// included).
func (l *Loader) Steps() int { return (l.DS.N() + l.Batch - 1) / l.Batch }

// PermState returns a copy of the current shuffle permutation (nil
// before the first Epoch call). Epoch reshuffles the previous epoch's
// permutation in place rather than starting from identity, so the
// permutation — like the RNG cursor — is sequential state a resumed
// training run must restore to replay the original batch order.
func (l *Loader) PermState() []int {
	if l.perm == nil {
		return nil
	}
	return append([]int(nil), l.perm...)
}

// SetPermState restores a permutation captured by PermState, validating
// that it is a permutation of the dataset's indices.
func (l *Loader) SetPermState(perm []int) error {
	n := l.DS.N()
	if len(perm) != n {
		return fmt.Errorf("data: perm state has %d entries, dataset has %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return fmt.Errorf("data: perm state is not a permutation of [0,%d)", n)
		}
		seen[p] = true
	}
	l.perm = append([]int(nil), perm...)
	return nil
}

// Next returns the next mini-batch, or (nil, nil) at epoch end. The
// returned tensors/slices are reused on the following call.
func (l *Loader) Next() (*tensor.Tensor, []int) {
	n := l.DS.N()
	if l.cursor >= n {
		return nil, nil
	}
	bs := l.Batch
	if l.cursor+bs > n {
		bs = n - l.cursor
	}
	c, h, w := l.DS.Dims()
	stride := c * h * w
	// The storage is sized for a full batch once; the final partial
	// batch re-views a prefix of it instead of reallocating.
	if len(l.buf) < l.Batch*stride {
		l.buf = make([]float32, l.Batch*stride)
		l.labels = make([]int, l.Batch)
	}
	l.images.SetView(l.buf[:bs*stride], bs, c, h, w)
	for bi := 0; bi < bs; bi++ {
		src := l.perm[l.cursor+bi]
		dst := l.buf[bi*stride : (bi+1)*stride]
		l.labels[bi] = l.DS.Example(src, dst)
		l.augment(dst, c, h, w)
	}
	l.cursor += bs
	return &l.images, l.labels[:bs]
}

// augment applies flip/shift in place to one CHW example.
func (l *Loader) augment(img []float32, c, h, w int) {
	if l.Aug.Flip && l.rng.Uint64()%2 == 0 {
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				row := img[(ch*h+y)*w : (ch*h+y)*w+w]
				for x := 0; x < w/2; x++ {
					row[x], row[w-1-x] = row[w-1-x], row[x]
				}
			}
		}
	}
	if l.Aug.ShiftMax > 0 {
		m := l.Aug.ShiftMax
		dx := int(l.rng.Uint64()%uint64(2*m+1)) - m
		dy := int(l.rng.Uint64()%uint64(2*m+1)) - m
		if dx != 0 || dy != 0 {
			if len(l.shift) < h*w {
				l.shift = make([]float32, h*w)
			}
			shifted := l.shift[:h*w]
			for ch := 0; ch < c; ch++ {
				plane := img[ch*h*w : (ch+1)*h*w]
				for i := range shifted {
					shifted[i] = 0
				}
				for y := 0; y < h; y++ {
					sy := y - dy
					if sy < 0 || sy >= h {
						continue
					}
					for x := 0; x < w; x++ {
						sx := x - dx
						if sx < 0 || sx >= w {
							continue
						}
						shifted[y*w+x] = plane[sy*w+sx]
					}
				}
				copy(plane, shifted)
			}
		}
	}
}
