package data

import (
	"fmt"
	"math"

	"github.com/ftpim/ftpim/internal/tensor"
)

// SynthConfig controls the synthetic CIFAR-like generator.
//
// Each class is a point in a shared low-frequency texture space: class
// prototypes are coefficient vectors over a bank of random 2-D
// sinusoid basis textures. A sample re-mixes its class coefficients
// with per-sample coefficient noise (CoefNoise — the knob that creates
// genuine class overlap, since coefficient-space perturbations survive
// convolutional averaging), then applies random circular shift,
// horizontal flip, gain/offset jitter, and additive pixel noise. With
// many classes drawn from a fixed-size basis the classes crowd the
// space and the task gets harder — mirroring how CIFAR-100 is harder
// than CIFAR-10 at equal resolution.
type SynthConfig struct {
	Classes   int
	TrainPer  int // training examples per class
	TestPer   int // test examples per class
	Channels  int
	Size      int     // square image side
	Basis     int     // number of shared sinusoid basis textures
	CoefNoise float64 // per-sample coefficient noise (class overlap)
	NoiseStd  float64 // additive pixel noise
	ShiftMax  int     // max circular shift in either axis
	JitterStd float64 // per-sample gain jitter
	Seed      uint64
}

// SynthC10 is the repro-preset analogue of CIFAR-10.
func SynthC10() SynthConfig {
	return SynthConfig{
		Classes: 10, TrainPer: 200, TestPer: 60,
		Channels: 3, Size: 16, Basis: 24,
		CoefNoise: 0.25, NoiseStd: 0.35, ShiftMax: 2, JitterStd: 0.15,
		Seed: 1001,
	}
}

// SynthC100 is the repro-preset analogue of CIFAR-100: many more
// classes packed into a barely larger basis plus stronger coefficient
// noise, so the baseline accuracy lands far below the 10-class task,
// as in the paper.
func SynthC100() SynthConfig {
	return SynthConfig{
		Classes: 100, TrainPer: 30, TestPer: 8,
		Channels: 3, Size: 16, Basis: 40,
		CoefNoise: 0.08, NoiseStd: 0.45, ShiftMax: 2, JitterStd: 0.15,
		Seed: 2002,
	}
}

// Generate builds the train and test splits. The generator is fully
// deterministic in cfg.Seed. Both splits are normalized with the train
// split's per-channel statistics.
func Generate(cfg SynthConfig) (train, test *Dataset) {
	if cfg.Classes <= 0 || cfg.Size <= 0 || cfg.Channels <= 0 || cfg.Basis <= 0 {
		panic(fmt.Sprintf("data: invalid synth config %+v", cfg))
	}
	root := tensor.NewRNG(cfg.Seed)

	basis := makeBasis(root.Stream("basis"), cfg)
	coeffs := makeClassCoeffs(root.Stream("protos"), cfg)

	train = sampleSplit(root.Stream("train"), cfg, basis, coeffs, cfg.TrainPer, "train")
	test = sampleSplit(root.Stream("test"), cfg, basis, coeffs, cfg.TestPer, "test")
	mean, std := train.Normalize()
	test.ApplyNormalization(mean, std)
	return train, test
}

// makeBasis builds cfg.Basis smooth texture fields of shape C×S×S.
func makeBasis(r *tensor.RNG, cfg SynthConfig) []*tensor.Tensor {
	s := cfg.Size
	basis := make([]*tensor.Tensor, cfg.Basis)
	for b := range basis {
		t := tensor.New(cfg.Channels, s, s)
		// Each basis texture is a sum of a few random low-frequency
		// plane waves, channel-correlated but not identical.
		waves := 2 + int(r.Uint64()%3)
		type wave struct{ fx, fy, phase, amp float64 }
		ws := make([]wave, waves)
		for i := range ws {
			ws[i] = wave{
				fx:    (r.Float64()*2 - 1) * 2.5,
				fy:    (r.Float64()*2 - 1) * 2.5,
				phase: r.Float64() * 2 * math.Pi,
				amp:   0.5 + r.Float64(),
			}
		}
		for c := 0; c < cfg.Channels; c++ {
			chPhase := r.Float64() * math.Pi
			chGain := 0.6 + 0.8*r.Float64()
			for y := 0; y < s; y++ {
				for x := 0; x < s; x++ {
					var v float64
					for _, w := range ws {
						v += w.amp * math.Sin(2*math.Pi*(w.fx*float64(x)+w.fy*float64(y))/float64(s)+w.phase+chPhase)
					}
					t.Set(float32(chGain*v), c, y, x)
				}
			}
		}
		basis[b] = t
	}
	return basis
}

// makeClassCoeffs draws one sparse coefficient vector per class.
func makeClassCoeffs(r *tensor.RNG, cfg SynthConfig) [][]float32 {
	coeffs := make([][]float32, cfg.Classes)
	active := 3
	if active > cfg.Basis {
		active = cfg.Basis
	}
	for cl := range coeffs {
		c := make([]float32, cfg.Basis)
		perm := r.Perm(cfg.Basis)
		for k := 0; k < active; k++ {
			coef := float32(0.7 + 0.8*r.Float64())
			if r.Uint64()%2 == 0 {
				coef = -coef
			}
			c[perm[k]] = coef
		}
		coeffs[cl] = c
	}
	return coeffs
}

// sampleSplit draws per examples of every class.
func sampleSplit(r *tensor.RNG, cfg SynthConfig, basis []*tensor.Tensor, coeffs [][]float32, per int, split string) *Dataset {
	n := per * cfg.Classes
	d := &Dataset{
		Name:    fmt.Sprintf("synth-c%d-%s", cfg.Classes, split),
		Images:  tensor.New(n, cfg.Channels, cfg.Size, cfg.Size),
		Labels:  make([]int, n),
		Classes: cfg.Classes,
	}
	s := cfg.Size
	stride := cfg.Channels * s * s
	mixed := tensor.New(cfg.Channels, s, s)
	i := 0
	for cl := 0; cl < cfg.Classes; cl++ {
		base := coeffs[cl]
		for e := 0; e < per; e++ {
			// Coefficient-space remix: the class overlap knob.
			mixed.Zero()
			for k, c := range base {
				ck := c
				if cfg.CoefNoise > 0 {
					ck += r.Normal(0, cfg.CoefNoise)
				}
				if ck != 0 {
					mixed.Axpy(ck, basis[k])
				}
			}
			dst := d.Images.Data()[i*stride : (i+1)*stride]
			dx := int(r.Uint64()%uint64(2*cfg.ShiftMax+1)) - cfg.ShiftMax
			dy := int(r.Uint64()%uint64(2*cfg.ShiftMax+1)) - cfg.ShiftMax
			flip := r.Uint64()%2 == 0
			gain := float32(1 + r.Normal(0, cfg.JitterStd))
			offset := r.Normal(0, cfg.JitterStd/2)
			for c := 0; c < cfg.Channels; c++ {
				for y := 0; y < s; y++ {
					sy := ((y+dy)%s + s) % s
					for x := 0; x < s; x++ {
						sx := ((x+dx)%s + s) % s
						if flip {
							sx = s - 1 - sx
						}
						v := gain*mixed.At(c, sy, sx) + offset + r.Normal(0, cfg.NoiseStd)
						dst[(c*s+y)*s+x] = v
					}
				}
			}
			d.Labels[i] = cl
			i++
		}
	}
	// Shuffle so mini-batches are class-mixed.
	perm := r.Perm(n)
	out := d.Subset(perm)
	out.Name = d.Name
	return out
}
