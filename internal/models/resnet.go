// Package models builds the network architectures evaluated in the
// paper: the CIFAR-style ResNet family (ResNet-20 on CIFAR-10,
// ResNet-32 on CIFAR-100) plus small CNN/MLP baselines used by tests
// and examples. A width multiplier and input-size parameter let the
// same topology run at paper scale or at the reduced repro scale.
package models

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// ResNetConfig describes a CIFAR-style residual network: three stages
// of n BasicBlocks each with base widths {16, 32, 64}·WidthMult, giving
// depth 6n+2.
type ResNetConfig struct {
	Depth      int // 20, 32, 44, 56, ... (6n+2)
	Classes    int
	InChannels int
	WidthMult  float64 // 1.0 = paper scale; repro preset uses 0.25
	Seed       uint64
}

// ResNet20 returns the CIFAR-10 configuration from the paper.
func ResNet20(classes int) ResNetConfig {
	return ResNetConfig{Depth: 20, Classes: classes, InChannels: 3, WidthMult: 1, Seed: 42}
}

// ResNet32 returns the CIFAR-100 configuration from the paper.
func ResNet32(classes int) ResNetConfig {
	return ResNetConfig{Depth: 32, Classes: classes, InChannels: 3, WidthMult: 1, Seed: 42}
}

// Scaled returns a copy with a different width multiplier.
func (c ResNetConfig) Scaled(mult float64) ResNetConfig {
	c.WidthMult = mult
	return c
}

// widths returns the three stage widths after scaling (minimum 4).
func (c ResNetConfig) widths() [3]int {
	base := [3]int{16, 32, 64}
	var out [3]int
	for i, b := range base {
		w := int(float64(b)*c.WidthMult + 0.5)
		if w < 4 {
			w = 4
		}
		out[i] = w
	}
	return out
}

// BuildResNet constructs the network. Depth must be 6n+2.
func BuildResNet(cfg ResNetConfig) *nn.Network {
	if (cfg.Depth-2)%6 != 0 || cfg.Depth < 8 {
		panic(fmt.Sprintf("models: ResNet depth %d is not of the form 6n+2", cfg.Depth))
	}
	if cfg.Classes <= 0 {
		panic("models: ResNet needs a positive class count")
	}
	if cfg.InChannels <= 0 {
		cfg.InChannels = 3
	}
	if cfg.WidthMult <= 0 {
		cfg.WidthMult = 1
	}
	n := (cfg.Depth - 2) / 6
	w := cfg.widths()
	rng := tensor.NewRNG(cfg.Seed).Stream("resnet-init")

	layers := []nn.Layer{
		nn.NewConv2D("conv1", cfg.InChannels, w[0], 3, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("bn1", w[0]),
		nn.NewReLU(),
	}
	inC := w[0]
	for stage := 0; stage < 3; stage++ {
		outC := w[stage]
		for b := 0; b < n; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			name := fmt.Sprintf("stage%d.block%d", stage+1, b)
			layers = append(layers, nn.NewBasicBlock(name, inC, outC, stride, rng))
			inC = outC
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool2D(),
		nn.NewLinear("fc", inC, cfg.Classes, rng),
	)
	return nn.NewNetwork(layers...)
}

// NumBlocks returns the residual block count for a 6n+2 depth.
func NumBlocks(depth int) int { return (depth - 2) / 6 * 3 }
