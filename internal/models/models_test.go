package models

import (
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

func TestResNet20ParamCountPaperScale(t *testing.T) {
	net := BuildResNet(ResNet20(10))
	// The canonical CIFAR ResNet-20 has ~0.27M parameters.
	n := net.NumParams()
	if n < 260_000 || n > 290_000 {
		t.Fatalf("ResNet-20 params = %d, want ≈272k", n)
	}
}

func TestResNet32Deeper(t *testing.T) {
	n20 := BuildResNet(ResNet20(10)).NumParams()
	n32 := BuildResNet(ResNet32(10)).NumParams()
	if n32 <= n20 {
		t.Fatalf("ResNet-32 (%d) should have more params than ResNet-20 (%d)", n32, n20)
	}
}

func TestResNetForwardShape(t *testing.T) {
	cfg := ResNet20(10).Scaled(0.25)
	net := BuildResNet(cfg)
	x := tensor.New(2, 3, 16, 16)
	tensor.FillNormal(x, tensor.NewRNG(1), 0, 1)
	y := net.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("output shape %v", y.Shape())
	}
	if !y.IsFinite() {
		t.Fatal("forward produced NaN/Inf")
	}
}

func TestResNetTrainEvalForwardBothWork(t *testing.T) {
	net := BuildResNet(ResNetConfig{Depth: 8, Classes: 5, InChannels: 3, WidthMult: 0.25, Seed: 3})
	x := tensor.New(4, 3, 8, 8)
	tensor.FillNormal(x, tensor.NewRNG(2), 0, 1)
	yt := net.Forward(x, true).Clone() // Forward reuses its buffer per call
	ye := net.Forward(x, false)
	if !yt.IsFinite() || !ye.IsFinite() {
		t.Fatal("NaN in forward")
	}
}

func TestResNetBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on depth 21")
		}
	}()
	BuildResNet(ResNetConfig{Depth: 21, Classes: 10})
}

func TestResNetDeterministicInit(t *testing.T) {
	a := BuildResNet(ResNet20(10).Scaled(0.25))
	b := BuildResNet(ResNet20(10).Scaled(0.25))
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !pa[i].W.Equal(pb[i].W) {
			t.Fatalf("param %d (%s) differs between identical builds", i, pa[i].Name)
		}
	}
}

func TestResNetWidthMultShrinks(t *testing.T) {
	full := BuildResNet(ResNet20(10)).NumParams()
	quarter := BuildResNet(ResNet20(10).Scaled(0.25)).NumParams()
	if quarter >= full/4 {
		t.Fatalf("quarter width should shrink params much more than 4x: %d vs %d", quarter, full)
	}
}

func TestResNetMinWidthFloor(t *testing.T) {
	cfg := ResNet20(10).Scaled(0.01)
	w := cfg.widths()
	for _, x := range w {
		if x < 4 {
			t.Fatalf("width floor violated: %v", w)
		}
	}
	// And it still builds and runs.
	net := BuildResNet(cfg)
	x := tensor.New(1, 3, 8, 8)
	if out := net.Forward(x, false); out.Dim(1) != 10 {
		t.Fatal("tiny ResNet broken")
	}
}

func TestSimpleCNNForward(t *testing.T) {
	net := BuildSimpleCNN(SimpleCNNConfig{InChannels: 3, Width: 4, Classes: 7, Seed: 1})
	x := tensor.New(2, 3, 10, 10)
	tensor.FillNormal(x, tensor.NewRNG(5), 0, 1)
	y := net.Forward(x, false)
	if y.Dim(1) != 7 {
		t.Fatalf("SimpleCNN output %v", y.Shape())
	}
}

func TestMLPForwardAndDepth(t *testing.T) {
	net := BuildMLP(MLPConfig{In: 12, Hidden: []int{16, 8}, Classes: 3, Seed: 1})
	x := tensor.New(5, 12)
	tensor.FillNormal(x, tensor.NewRNG(6), 0, 1)
	y := net.Forward(x, false)
	if y.Dim(0) != 5 || y.Dim(1) != 3 {
		t.Fatalf("MLP output %v", y.Shape())
	}
	// 3 linear layers → 6 params (W+b each).
	if len(net.Params()) != 6 {
		t.Fatalf("MLP param groups = %d", len(net.Params()))
	}
}

func TestNumBlocks(t *testing.T) {
	if NumBlocks(20) != 9 || NumBlocks(32) != 15 {
		t.Fatalf("NumBlocks wrong: %d %d", NumBlocks(20), NumBlocks(32))
	}
}

func TestResNetAcceptsNonStandardInputSize(t *testing.T) {
	// The all-conv + GAP topology is input-size agnostic; the repro
	// preset relies on this with 16×16 images.
	net := BuildResNet(ResNet20(10).Scaled(0.25))
	for _, size := range []int{8, 12, 16, 32} {
		x := tensor.New(1, 3, size, size)
		y := net.Forward(x, false)
		if y.Dim(1) != 10 {
			t.Fatalf("size %d failed", size)
		}
	}
}
