package models

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// SimpleCNNConfig describes a small conv-BN-ReLU stack with one
// downsampling step, used by fast tests and the quickstart example.
type SimpleCNNConfig struct {
	InChannels int
	Width      int
	Classes    int
	Seed       uint64
}

// BuildSimpleCNN constructs conv(w)-BN-ReLU-conv(2w,s2)-BN-ReLU-GAP-FC.
func BuildSimpleCNN(cfg SimpleCNNConfig) *nn.Network {
	if cfg.Width <= 0 || cfg.Classes <= 0 {
		panic(fmt.Sprintf("models: invalid SimpleCNN config %+v", cfg))
	}
	if cfg.InChannels <= 0 {
		cfg.InChannels = 3
	}
	rng := tensor.NewRNG(cfg.Seed).Stream("simplecnn-init")
	return nn.NewNetwork(
		nn.NewConv2D("conv1", cfg.InChannels, cfg.Width, 3, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("bn1", cfg.Width),
		nn.NewReLU(),
		nn.NewConv2D("conv2", cfg.Width, 2*cfg.Width, 3, 3, 2, 1, false, rng),
		nn.NewBatchNorm2D("bn2", 2*cfg.Width),
		nn.NewReLU(),
		nn.NewGlobalAvgPool2D(),
		nn.NewLinear("fc", 2*cfg.Width, cfg.Classes, rng),
	)
}

// MLPConfig describes a plain multilayer perceptron over flattened
// inputs; handy for the fastest unit tests.
type MLPConfig struct {
	In      int
	Hidden  []int
	Classes int
	Seed    uint64
}

// BuildMLP constructs Flatten-(Linear-ReLU)*-Linear.
func BuildMLP(cfg MLPConfig) *nn.Network {
	if cfg.In <= 0 || cfg.Classes <= 0 {
		panic(fmt.Sprintf("models: invalid MLP config %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed).Stream("mlp-init")
	var layers []nn.Layer
	layers = append(layers, nn.NewFlatten())
	in := cfg.In
	for i, h := range cfg.Hidden {
		layers = append(layers, nn.NewLinear(fmt.Sprintf("fc%d", i+1), in, h, rng), nn.NewReLU())
		in = h
	}
	layers = append(layers, nn.NewLinear("out", in, cfg.Classes, rng))
	return nn.NewNetwork(layers...)
}
