package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Demo", "method", "a", "b")
	t.AddRow("base", "10.0", "20.0")
	t.AddRow("ours", "30.0", "15.0")
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	sample().Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "method") {
		t.Fatalf("missing title/header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestHighlightMarks(t *testing.T) {
	tb := sample()
	tb.Highlight(1, 1)
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "*30.0") {
		t.Fatalf("highlight missing:\n%s", buf.String())
	}
}

func TestHighlightTopK(t *testing.T) {
	tb := NewTable("", "m", "v")
	tb.AddRow("a", "1.5")
	tb.AddRow("b", "9.5")
	tb.AddRow("c", "5.0")
	tb.AddRow("d", "x") // unparsable: skipped
	tb.HighlightTopK(1, 2, ParsePercent)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "*9.5") || !strings.Contains(out, "*5.0") {
		t.Fatalf("top-2 not highlighted:\n%s", out)
	}
	if strings.Contains(out, "*1.5") {
		t.Fatal("bottom value wrongly highlighted")
	}
}

func TestRenderCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`with,comma`, `with"quote`)
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	out := buf.String()
	if !strings.Contains(out, `"with,comma"`) || !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("csv escaping broken:\n%s", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := sample()
	tb.Highlight(0, 1)
	var buf bytes.Buffer
	tb.RenderMarkdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "| method | a | b |") {
		t.Fatalf("markdown header broken:\n%s", out)
	}
	if !strings.Contains(out, "**10.0**") {
		t.Fatalf("markdown bold missing:\n%s", out)
	}
}

func TestAsciiPlotAndCSV(t *testing.T) {
	series := []Series{
		{Name: "dense", X: []float64{0, 0.01, 0.1}, Y: []float64{0.9, 0.8, 0.3}},
		{Name: "pruned", X: []float64{0, 0.01, 0.1}, Y: []float64{0.9, 0.5, 0.1}},
	}
	var buf bytes.Buffer
	AsciiPlot(&buf, "fig", series, 20)
	out := buf.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "#") {
		t.Fatalf("plot missing bars:\n%s", out)
	}
	buf.Reset()
	SeriesCSV(&buf, series)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,dense,pruned" || len(lines) != 4 {
		t.Fatalf("csv series broken:\n%s", buf.String())
	}
}

func TestParsePercent(t *testing.T) {
	if v, ok := ParsePercent(" 92.53 "); !ok || v != 92.53 {
		t.Fatalf("ParsePercent: %v %v", v, ok)
	}
	if _, ok := ParsePercent("n/a"); ok {
		t.Fatal("should fail on garbage")
	}
}

func TestAsciiPlotEmptySafe(t *testing.T) {
	var buf bytes.Buffer
	AsciiPlot(&buf, "empty", nil, 10)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("title missing")
	}
}
