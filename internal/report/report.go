// Package report renders experiment results as aligned text tables,
// Markdown, CSV, and quick ASCII line plots for the figure
// reproductions.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned table with an optional per-cell
// highlight set (the paper bolds the top-3 defect accuracies per
// column).
type Table struct {
	Title     string
	Header    []string
	Rows      [][]string
	highlight map[[2]int]bool
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header, highlight: map[[2]int]bool{}}
}

// AddRow appends a row; the cell count should match the header.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Highlight marks cell (row, col) for emphasis (rendered with a '*').
func (t *Table) Highlight(row, col int) {
	t.highlight[[2]int{row, col}] = true
}

// HighlightTopK marks the k largest numeric values in a column.
func (t *Table) HighlightTopK(col, k int, parse func(string) (float64, bool)) {
	type rv struct {
		row int
		v   float64
	}
	var vals []rv
	for i, r := range t.Rows {
		if col < len(r) {
			if v, ok := parse(r[col]); ok {
				vals = append(vals, rv{i, v})
			}
		}
	}
	for n := 0; n < k && n < len(vals); n++ {
		best := n
		for j := n + 1; j < len(vals); j++ {
			if vals[j].v > vals[best].v {
				best = j
			}
		}
		vals[n], vals[best] = vals[best], vals[n]
		t.Highlight(vals[n].row, col)
	}
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	cells := func(row []string, ri int) []string {
		out := make([]string, len(row))
		for ci, c := range row {
			if t.highlight[[2]int{ri, ci}] {
				c = "*" + c
			}
			out[ci] = c
		}
		return out
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	rendered := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		rendered[ri] = cells(r, ri)
		for ci, c := range rendered[ri] {
			if ci < len(widths) && len(c) > widths[ci] {
				widths[ci] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	var sb strings.Builder
	for i, h := range t.Header {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
	for _, r := range rendered {
		sb.Reset()
		for ci, c := range r {
			width := len(c)
			if ci < len(widths) {
				width = widths[ci]
			}
			fmt.Fprintf(&sb, "%-*s  ", width, c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

func lineWidth(widths []int) int {
	n := 0
	for _, w := range widths {
		n += w + 2
	}
	if n >= 2 {
		n -= 2
	}
	return n
}

// RenderCSV writes the table as CSV (no highlighting).
func (t *Table) RenderCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
}

// RenderMarkdown writes the table as a GitHub-flavored Markdown table,
// bolding highlighted cells.
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for ri, r := range t.Rows {
		cells := make([]string, len(r))
		for ci, c := range r {
			if t.highlight[[2]int{ri, ci}] {
				c = "**" + c + "**"
			}
			cells[ci] = c
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
}

// Series is one named line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// AsciiPlot renders series as a crude terminal line chart: one row per
// X position, one column block per series, plus a bar for the first
// series. It is intentionally simple — the CSV output is the precise
// artifact; the plot is for eyeballing shape.
func AsciiPlot(w io.Writer, title string, series []Series, width int) {
	if width <= 0 {
		width = 40
	}
	fmt.Fprintln(w, title)
	if len(series) == 0 {
		return
	}
	ymax := math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			if v > ymax {
				ymax = v
			}
		}
	}
	if ymax <= 0 || math.IsInf(ymax, -1) {
		ymax = 1
	}
	fmt.Fprintf(w, "%-10s", "x")
	for _, s := range series {
		fmt.Fprintf(w, " %12s", trunc(s.Name, 12))
	}
	fmt.Fprintln(w)
	for i := range series[0].X {
		fmt.Fprintf(w, "%-10.4g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(w, " %12.4f", s.Y[i])
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		// Bar for the first series.
		n := int(series[0].Y[i] / ymax * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  |%s\n", strings.Repeat("#", n))
	}
}

// SeriesCSV writes aligned series as CSV with an x column.
func SeriesCSV(w io.Writer, series []Series) {
	if len(series) == 0 {
		return
	}
	names := make([]string, 0, len(series)+1)
	names = append(names, "x")
	for _, s := range series {
		names = append(names, s.Name)
	}
	fmt.Fprintln(w, strings.Join(names, ","))
	for i := range series[0].X {
		parts := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				parts = append(parts, fmt.Sprintf("%g", s.Y[i]))
			} else {
				parts = append(parts, "")
			}
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
}

// ParsePercent parses strings like "92.53" for HighlightTopK.
func ParsePercent(s string) (float64, bool) {
	var v float64
	if _, err := fmt.Sscanf(strings.TrimSpace(s), "%f", &v); err != nil {
		return 0, false
	}
	return v, true
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
