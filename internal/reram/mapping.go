package reram

import (
	"fmt"
	"math"

	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/tensor"
)

// MapOptions configures how a weight matrix is laid out on crossbars.
type MapOptions struct {
	TileRows int     // crossbar rows (inputs per tile)
	TileCols int     // crossbar columns (outputs per tile)
	Levels   int     // conductance levels per cell (0 = analog/continuous)
	Gmin     float64 // minimum cell conductance
	Gmax     float64 // maximum cell conductance
	ADCBits  int     // per-tile output ADC resolution (0 = ideal)
}

// DefaultMapOptions mirrors a typical ISAAC-style 128×128 array with
// 4-bit cells.
func DefaultMapOptions() MapOptions {
	return MapOptions{TileRows: 128, TileCols: 128, Levels: 16, Gmin: 0.1, Gmax: 10, ADCBits: 0}
}

// MappedMatrix is a weight matrix W (out×in) programmed onto tiled
// differential crossbar pairs: each weight is the scaled difference of
// a positive-array and a negative-array cell,
//
//	w_ij = (G⁺_ij − G⁻_ij) / gPerW,  gPerW = (Gmax−Gmin)/wmax.
//
// Rows of each crossbar carry inputs, columns carry outputs.
type MappedMatrix struct {
	OutDim, InDim int
	Opts          MapOptions
	Wmax          float64
	gPerW         float64

	// pos/neg[rt][ct] cover input rows [rt·TR, …) × output cols [ct·TC, …).
	pos, neg [][]*Crossbar
	rowTiles int
	colTiles int

	// MatVec scratch, built on first use (see MatVecInto).
	mvY, mvV, mvPos, mvNeg []float64
}

// MapMatrix programs w (out×in) onto differential crossbar tiles.
func MapMatrix(w *tensor.Tensor, opts MapOptions) *MappedMatrix {
	if w.Rank() != 2 {
		panic(fmt.Sprintf("reram: MapMatrix wants rank-2 weights, got %v", w.Shape()))
	}
	if opts.TileRows <= 0 || opts.TileCols <= 0 {
		panic("reram: tile dims must be positive")
	}
	out, in := w.Dim(0), w.Dim(1)
	wmax := float64(w.MaxAbs())
	if wmax == 0 {
		wmax = 1 // all-zero matrix still maps (to Gmin everywhere)
	}
	m := &MappedMatrix{
		OutDim: out, InDim: in, Opts: opts,
		Wmax:     wmax,
		gPerW:    (opts.Gmax - opts.Gmin) / wmax,
		rowTiles: (in + opts.TileRows - 1) / opts.TileRows,
		colTiles: (out + opts.TileCols - 1) / opts.TileCols,
	}
	for rt := 0; rt < m.rowTiles; rt++ {
		var prow, nrow []*Crossbar
		rows := minInt(opts.TileRows, in-rt*opts.TileRows)
		for ct := 0; ct < m.colTiles; ct++ {
			cols := minInt(opts.TileCols, out-ct*opts.TileCols)
			prow = append(prow, NewCrossbar(rows, cols, opts.Levels, opts.Gmin, opts.Gmax))
			nrow = append(nrow, NewCrossbar(rows, cols, opts.Levels, opts.Gmin, opts.Gmax))
		}
		m.pos = append(m.pos, prow)
		m.neg = append(m.neg, nrow)
	}
	m.Reprogram(w)
	return m
}

// Reprogram rewrites the crossbar targets from a (possibly updated)
// weight matrix of the original shape, keeping all fault state. The
// conductance scale is re-derived from the new weights.
func (m *MappedMatrix) Reprogram(w *tensor.Tensor) {
	if w.Dim(0) != m.OutDim || w.Dim(1) != m.InDim {
		panic(fmt.Sprintf("reram: Reprogram shape %v, want (%d,%d)", w.Shape(), m.OutDim, m.InDim))
	}
	wmax := float64(w.MaxAbs())
	if wmax == 0 {
		wmax = 1
	}
	m.Wmax = wmax
	m.gPerW = (m.Opts.Gmax - m.Opts.Gmin) / wmax
	for i := 0; i < m.InDim; i++ {
		rt, r := i/m.Opts.TileRows, i%m.Opts.TileRows
		for o := 0; o < m.OutDim; o++ {
			ct, c := o/m.Opts.TileCols, o%m.Opts.TileCols
			wv := float64(w.At(o, i))
			gp, gn := m.Opts.Gmin, m.Opts.Gmin
			if wv >= 0 {
				gp = m.Opts.Gmin + wv*m.gPerW
			} else {
				gn = m.Opts.Gmin - wv*m.gPerW
			}
			m.pos[rt][ct].Program(r, c, gp)
			m.neg[rt][ct].Program(r, c, gn)
		}
	}
}

// InjectFaults draws stuck-at faults over every cell of every tile
// (both differential arrays) and returns the number injected.
func (m *MappedMatrix) InjectFaults(rng *tensor.RNG, fm fault.Model, psa float64) int {
	n := 0
	for rt := range m.pos {
		for ct := range m.pos[rt] {
			n += m.pos[rt][ct].InjectFaults(rng, fm, psa)
			n += m.neg[rt][ct].InjectFaults(rng, fm, psa)
		}
	}
	return n
}

// InjectClusteredFaults draws row-burst stuck-at faults over every
// tile of both differential arrays, the circuit-level realization of
// the weight-level fault.Clustered scenario: each physical crossbar
// confines a burst to one of its wordlines, which is exactly the
// scenario's tile-boundary rule (Tile = crossbar width). Returns the
// number of cells faulted.
func (m *MappedMatrix) InjectClusteredFaults(rng *tensor.RNG, c fault.Clustered, psa float64) int {
	if err := c.Validate(); err != nil {
		panic("reram: " + err.Error())
	}
	n := 0
	for rt := range m.pos {
		for ct := range m.pos[rt] {
			n += m.pos[rt][ct].InjectRowBursts(rng, c.Mix, psa, c.Len)
			n += m.neg[rt][ct].InjectRowBursts(rng, c.Mix, psa, c.Len)
		}
	}
	return n
}

// ClearFaults heals every cell.
func (m *MappedMatrix) ClearFaults() {
	for rt := range m.pos {
		for ct := range m.pos[rt] {
			m.pos[rt][ct].ClearFaults()
			m.neg[rt][ct].ClearFaults()
		}
	}
}

// NumCells returns the total physical cell count (2 per weight).
func (m *MappedMatrix) NumCells() int { return 2 * m.OutDim * m.InDim }

// NumFaults counts faulty cells across all tiles.
func (m *MappedMatrix) NumFaults() int {
	n := 0
	for rt := range m.pos {
		for ct := range m.pos[rt] {
			n += m.pos[rt][ct].NumFaults() + m.neg[rt][ct].NumFaults()
		}
	}
	return n
}

// Tiles returns the differential crossbar pair covering tile (rt, ct).
func (m *MappedMatrix) Tiles(rt, ct int) (pos, neg *Crossbar) {
	return m.pos[rt][ct], m.neg[rt][ct]
}

// TileGrid returns the number of row and column tiles.
func (m *MappedMatrix) TileGrid() (rowTiles, colTiles int) { return m.rowTiles, m.colTiles }

// EffectiveWeights reconstructs the weight matrix the analog array
// actually implements — quantization and stuck-at faults included.
func (m *MappedMatrix) EffectiveWeights() *tensor.Tensor {
	w := tensor.New(m.OutDim, m.InDim)
	for i := 0; i < m.InDim; i++ {
		rt, r := i/m.Opts.TileRows, i%m.Opts.TileRows
		for o := 0; o < m.OutDim; o++ {
			ct, c := o/m.Opts.TileCols, o%m.Opts.TileCols
			gp := m.pos[rt][ct].Effective(r, c)
			gn := m.neg[rt][ct].Effective(r, c)
			w.Set(float32((gp-gn)/m.gPerW), o, i)
		}
	}
	return w
}

// MatVec runs the analog computation y = W_eff·x, tile by tile, with
// optional per-tile ADC quantization of partial sums, and returns the
// result scaled back to weight units.
func (m *MappedMatrix) MatVec(x []float32) []float32 {
	return m.MatVecInto(make([]float32, m.OutDim), x)
}

// MatVecInto is MatVec writing into a caller-provided destination of
// length OutDim, returning it. The tile accumulators are cached on the
// matrix, so warm calls do not allocate; consequently a MappedMatrix is
// not safe for concurrent MatVec use.
func (m *MappedMatrix) MatVecInto(out []float32, x []float32) []float32 {
	if len(x) != m.InDim {
		panic(fmt.Sprintf("reram: MatVec input length %d, want %d", len(x), m.InDim))
	}
	if len(out) != m.OutDim {
		panic(fmt.Sprintf("reram: MatVec destination length %d, want %d", len(out), m.OutDim))
	}
	if m.mvY == nil {
		m.mvY = make([]float64, m.OutDim)
		m.mvV = make([]float64, m.Opts.TileRows)
		m.mvPos = make([]float64, m.Opts.TileCols)
		m.mvNeg = make([]float64, m.Opts.TileCols)
	}
	y := m.mvY
	for i := range y {
		y[i] = 0
	}
	for rt := 0; rt < m.rowTiles; rt++ {
		lo := rt * m.Opts.TileRows
		hi := minInt(lo+m.Opts.TileRows, m.InDim)
		v := m.mvV[:hi-lo]
		var vmax float64
		for i := lo; i < hi; i++ {
			v[i-lo] = float64(x[i])
			if a := math.Abs(v[i-lo]); a > vmax {
				vmax = a
			}
		}
		for ct := 0; ct < m.colTiles; ct++ {
			cols := m.pos[rt][ct].Cols
			ip := m.pos[rt][ct].MatVecInto(m.mvPos[:cols], v)
			in := m.neg[rt][ct].MatVecInto(m.mvNeg[:cols], v)
			colBase := ct * m.Opts.TileCols
			for c := range ip {
				diff := ip[c] - in[c]
				if m.Opts.ADCBits > 0 {
					diff = m.adcQuantize(diff, vmax, hi-lo)
				}
				y[colBase+c] += diff
			}
		}
	}
	inv := 1 / m.gPerW
	for i, v := range y {
		out[i] = float32(v * inv)
	}
	return out
}

// adcQuantize snaps a differential tile current to the ADC's grid. The
// full-scale range is the worst-case tile current ±vmax·rows·(Gmax−Gmin).
func (m *MappedMatrix) adcQuantize(i, vmax float64, rows int) float64 {
	fs := vmax * float64(rows) * (m.Opts.Gmax - m.Opts.Gmin)
	if fs == 0 {
		return 0
	}
	levels := float64(int(1) << m.Opts.ADCBits)
	step := 2 * fs / levels
	q := math.Round(i/step) * step
	if q > fs {
		q = fs
	}
	if q < -fs {
		q = -fs
	}
	return q
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
