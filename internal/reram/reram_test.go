package reram

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

func TestCrossbarProgramRead(t *testing.T) {
	x := NewCrossbar(4, 3, 0, 0.1, 10)
	x.Program(2, 1, 5)
	if x.Target(2, 1) != 5 || x.Effective(2, 1) != 5 {
		t.Fatal("program/read mismatch")
	}
	// Untouched cells sit at Gmin.
	if x.Effective(0, 0) != 0.1 {
		t.Fatal("default conductance should be Gmin")
	}
}

func TestCrossbarQuantizeClamps(t *testing.T) {
	x := NewCrossbar(1, 1, 0, 1, 2)
	if x.Quantize(0) != 1 || x.Quantize(5) != 2 {
		t.Fatal("clamping failed")
	}
}

func TestCrossbarQuantizeLevels(t *testing.T) {
	x := NewCrossbar(1, 1, 3, 0, 1) // levels at 0, 0.5, 1
	cases := map[float64]float64{0.1: 0, 0.3: 0.5, 0.5: 0.5, 0.8: 1, 0.74: 0.5}
	for in, want := range cases {
		if got := x.Quantize(in); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Quantize(%v)=%v want %v", in, got, want)
		}
	}
}

func TestCrossbarFaultsOverrideReads(t *testing.T) {
	x := NewCrossbar(2, 2, 0, 0.1, 10)
	x.Program(0, 0, 5)
	x.SetFault(0, 0, FaultSA0)
	if x.Effective(0, 0) != 0.1 {
		t.Fatal("SA0 must read Gmin")
	}
	x.SetFault(0, 0, FaultSA1)
	if x.Effective(0, 0) != 10 {
		t.Fatal("SA1 must read Gmax")
	}
	if x.Target(0, 0) != 5 {
		t.Fatal("fault must not clobber the programmed target")
	}
	x.ClearFaults()
	if x.Effective(0, 0) != 5 {
		t.Fatal("ClearFaults must restore reads")
	}
}

func TestCrossbarMatVec(t *testing.T) {
	x := NewCrossbar(2, 2, 0, 0, 10)
	x.Program(0, 0, 1)
	x.Program(0, 1, 2)
	x.Program(1, 0, 3)
	x.Program(1, 1, 4)
	y := x.MatVec([]float64{1, 0.5})
	if math.Abs(y[0]-2.5) > 1e-12 || math.Abs(y[1]-4) > 1e-12 {
		t.Fatalf("MatVec got %v", y)
	}
}

func TestCrossbarInjectFaultsRate(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := NewCrossbar(200, 200, 0, 0.1, 10)
	n := x.InjectFaults(rng, fault.ChenModel(), 0.05)
	got := float64(n) / 40000
	if math.Abs(got-0.05) > 0.01 {
		t.Fatalf("fault rate %v, want ≈0.05", got)
	}
	if x.NumFaults() != n {
		t.Fatal("NumFaults mismatch")
	}
}

func TestMapMatrixRoundTripNoFaults(t *testing.T) {
	// With continuous conductances and no faults, the effective weights
	// must reproduce the originals to float precision.
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		out := 1 + int(r.Uint64()%10)
		in := 1 + int(r.Uint64()%10)
		w := tensor.New(out, in)
		tensor.FillNormal(w, r, 0, 1)
		opts := MapOptions{TileRows: 4, TileCols: 4, Levels: 0, Gmin: 0.1, Gmax: 10}
		m := MapMatrix(w, opts)
		return m.EffectiveWeights().AllClose(w, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMapMatrixQuantizationError(t *testing.T) {
	r := tensor.NewRNG(2)
	w := tensor.New(8, 8)
	tensor.FillNormal(w, r, 0, 1)
	opts := DefaultMapOptions()
	opts.Levels = 16
	m := MapMatrix(w, opts)
	eff := m.EffectiveWeights()
	// Max quantization error per weight is one level step / gPerW / 2 —
	// and differential mapping means only one of the two cells is off
	// the rail.
	wmax := float64(w.MaxAbs())
	step := wmax / float64(opts.Levels-1)
	diff := tensor.Sub(eff, w)
	if float64(diff.MaxAbs()) > step/2+1e-9 {
		t.Fatalf("quantization error %v exceeds half step %v", diff.MaxAbs(), step/2)
	}
	// Quantization must actually change something at 16 levels.
	if eff.Equal(w) {
		t.Fatal("expected nonzero quantization error")
	}
}

func TestMapMatrixMatVecMatchesEffectiveWeights(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		out := 1 + int(r.Uint64()%12)
		in := 1 + int(r.Uint64()%12)
		w := tensor.New(out, in)
		tensor.FillNormal(w, r, 0, 1)
		opts := MapOptions{TileRows: 5, TileCols: 3, Levels: 32, Gmin: 0.1, Gmax: 10}
		m := MapMatrix(w, opts)
		m.InjectFaults(r.Stream("f"), fault.ChenModel(), 0.05)
		x := make([]float32, in)
		for i := range x {
			x[i] = r.Normal(0, 1)
		}
		got := m.MatVec(x)
		eff := m.EffectiveWeights()
		want := tensor.MatVec(eff, x)
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-3*(1+math.Abs(float64(want[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMapMatrixSA1DragsToWmax(t *testing.T) {
	w := tensor.Full(0.5, 2, 2)
	w.Set(1, 0, 0) // wmax = 1
	opts := MapOptions{TileRows: 4, TileCols: 4, Levels: 0, Gmin: 0.1, Gmax: 10}
	m := MapMatrix(w, opts)
	pos, _ := m.Tiles(0, 0)
	pos.SetFault(1, 1, FaultSA1) // cell for weight (out=1,in=1), positive array
	eff := m.EffectiveWeights()
	// G+ pinned to Gmax; weight 0.5 had G+ = Gmin+0.5·gPerW, G− = Gmin.
	// Effective w = (Gmax − Gmin)/gPerW = wmax = 1.
	if math.Abs(float64(eff.At(1, 1))-1) > 1e-6 {
		t.Fatalf("SA1 on positive cell should drag weight to +wmax, got %v", eff.At(1, 1))
	}
}

func TestMapMatrixSA0NegativeCellZeroesNegativeWeight(t *testing.T) {
	w := tensor.Full(-0.5, 1, 1)
	opts := MapOptions{TileRows: 2, TileCols: 2, Levels: 0, Gmin: 0.1, Gmax: 10}
	m := MapMatrix(w, opts)
	_, neg := m.Tiles(0, 0)
	neg.SetFault(0, 0, FaultSA0) // negative cell stuck at Gmin
	eff := m.EffectiveWeights()
	if math.Abs(float64(eff.At(0, 0))) > 1e-6 {
		t.Fatalf("SA0 on the active negative cell should zero the weight, got %v", eff.At(0, 0))
	}
}

func TestMapMatrixADCQuantizationDegradesGracefully(t *testing.T) {
	r := tensor.NewRNG(3)
	w := tensor.New(6, 6)
	tensor.FillNormal(w, r, 0, 1)
	x := make([]float32, 6)
	for i := range x {
		x[i] = r.Normal(0, 1)
	}
	ideal := MapMatrix(w, MapOptions{TileRows: 8, TileCols: 8, Levels: 0, Gmin: 0.1, Gmax: 10})
	yIdeal := ideal.MatVec(x)

	errAt := func(bits int) float64 {
		opts := MapOptions{TileRows: 8, TileCols: 8, Levels: 0, Gmin: 0.1, Gmax: 10, ADCBits: bits}
		m := MapMatrix(w, opts)
		y := m.MatVec(x)
		var e float64
		for i := range y {
			d := float64(y[i] - yIdeal[i])
			e += d * d
		}
		return e
	}
	if errAt(4) <= errAt(10) {
		t.Fatal("coarser ADC should have larger error")
	}
	if errAt(14) > 1e-3 {
		t.Fatalf("14-bit ADC error too large: %v", errAt(14))
	}
}

func TestReprogramKeepsFaults(t *testing.T) {
	r := tensor.NewRNG(4)
	w := tensor.New(4, 4)
	tensor.FillNormal(w, r, 0, 1)
	m := MapMatrix(w, MapOptions{TileRows: 4, TileCols: 4, Levels: 0, Gmin: 0.1, Gmax: 10})
	m.InjectFaults(r.Stream("f"), fault.ChenModel(), 0.2)
	nf := m.NumFaults()
	if nf == 0 {
		t.Skip("no faults drawn at this seed")
	}
	w2 := tensor.New(4, 4)
	tensor.FillNormal(w2, r, 0, 2)
	m.Reprogram(w2)
	if m.NumFaults() != nf {
		t.Fatal("Reprogram must preserve fault state")
	}
}

func TestMarchTestFindsExactlyTheFaults(t *testing.T) {
	rng := tensor.NewRNG(5)
	x := NewCrossbar(10, 10, 0, 0.1, 10)
	x.SetFault(2, 3, FaultSA0)
	x.SetFault(7, 1, FaultSA1)
	found := MarchTest(x, 1, rng)
	if len(found) != 2 {
		t.Fatalf("found %d faults, want 2: %+v", len(found), found)
	}
	byPos := map[[2]int]CellFault{}
	for _, f := range found {
		byPos[[2]int{f.Row, f.Col}] = f.Kind
	}
	if byPos[[2]int{2, 3}] != FaultSA0 || byPos[[2]int{7, 1}] != FaultSA1 {
		t.Fatalf("wrong classification: %+v", byPos)
	}
}

func TestMarchTestNonDestructive(t *testing.T) {
	rng := tensor.NewRNG(6)
	x := NewCrossbar(4, 4, 0, 0.1, 10)
	x.Program(1, 2, 3.7)
	MarchTest(x, 1, rng)
	if x.Target(1, 2) != 3.7 {
		t.Fatal("march test must restore programmed targets")
	}
}

func TestMarchTestCoverage(t *testing.T) {
	rng := tensor.NewRNG(7)
	x := NewCrossbar(100, 100, 0, 0.1, 10)
	x.InjectFaults(rng, fault.ChenModel(), 0.1)
	total := x.NumFaults()
	found := len(MarchTest(x, 0.5, rng.Stream("cov")))
	// Expect ≈ half detected; binomial 5σ bounds.
	mean := 0.5 * float64(total)
	sigma := math.Sqrt(float64(total) * 0.25)
	if math.Abs(float64(found)-mean) > 5*sigma {
		t.Fatalf("coverage 0.5 found %d of %d", found, total)
	}
}

func TestRepairColumnsHealsDetectedColumns(t *testing.T) {
	rng := tensor.NewRNG(8)
	w := tensor.New(6, 6)
	tensor.FillNormal(w, rng, 0, 1)
	m := MapMatrix(w, MapOptions{TileRows: 8, TileCols: 8, Levels: 0, Gmin: 0.1, Gmax: 10})
	pos, _ := m.Tiles(0, 0)
	pos.SetFault(0, 2, FaultSA1)
	pos.SetFault(3, 2, FaultSA0) // two faults, same column
	pos.SetFault(1, 4, FaultSA1)
	det := MarchTestMatrix(m, 1, rng)
	rep := RepairColumns(m, det, 4, 0, rng) // perfect spares
	if rep.FaultyColumns != 2 || rep.RepairedColumns != 2 {
		t.Fatalf("report %+v", rep)
	}
	if m.NumFaults() != 0 {
		t.Fatalf("faults remain after repair: %d", m.NumFaults())
	}
}

func TestRepairColumnsSparesExhaust(t *testing.T) {
	rng := tensor.NewRNG(9)
	w := tensor.New(6, 6)
	tensor.FillNormal(w, rng, 0, 1)
	m := MapMatrix(w, MapOptions{TileRows: 8, TileCols: 8, Levels: 0, Gmin: 0.1, Gmax: 10})
	pos, _ := m.Tiles(0, 0)
	for c := 0; c < 5; c++ {
		pos.SetFault(0, c, FaultSA1)
	}
	det := MarchTestMatrix(m, 1, rng)
	rep := RepairColumns(m, det, 2, 0, rng)
	if rep.RepairedColumns != 2 {
		t.Fatalf("expected 2 repairs with 2 spares, got %+v", rep)
	}
	if m.NumFaults() != 3 {
		t.Fatalf("expected 3 faults left, got %d", m.NumFaults())
	}
}

func TestMapNetworkEffectiveWeightsRoundTrip(t *testing.T) {
	r := tensor.NewRNG(10)
	net := nn.NewNetwork(
		nn.NewConv2D("c", 1, 2, 3, 3, 1, 1, false, r),
		nn.NewBatchNorm2D("bn", 2),
		nn.NewReLU(),
		nn.NewGlobalAvgPool2D(),
		nn.NewLinear("fc", 2, 3, r),
	)
	x := tensor.New(2, 1, 6, 6)
	tensor.FillNormal(x, r, 0, 1)
	clean := net.Forward(x, false).Clone()

	mn := MapNetwork(net, MapOptions{TileRows: 16, TileCols: 16, Levels: 0, Gmin: 0.1, Gmax: 10})
	if mn.NumCells() != 2*(2*9+3*2) {
		t.Fatalf("NumCells=%d", mn.NumCells())
	}
	undo := mn.ApplyEffectiveWeights()
	faithful := net.Forward(x, false)
	if !faithful.AllClose(clean, 1e-3) {
		t.Fatal("fault-free analog deployment should match digital inference")
	}
	undo()

	// Now with faults the outputs must change.
	mn.InjectFaults(r.Stream("f"), fault.ChenModel(), 0.3)
	undo2 := mn.ApplyEffectiveWeights()
	faulty := net.Forward(x, false)
	if faulty.AllClose(clean, 1e-6) {
		t.Fatal("30% faults should perturb the outputs")
	}
	undo2()
	restored := net.Forward(x, false)
	if !restored.AllClose(clean, 1e-6) {
		t.Fatal("undo must restore digital weights exactly")
	}
}
