package reram

// Column remapping baseline (Chen et al., DATE'17 [3]): instead of
// spending spare columns, permute which logical output column is routed
// onto which physical crossbar column, so that columns whose cells are
// stuck land on outputs whose desired conductances are closest to the
// stuck values. The permutation is free in hardware (programming order
// plus output routing), but — like fault-aware retraining — it is
// device-specific: it must be recomputed for every manufactured chip
// against its own defect map.

// RemapReport summarizes one remapping pass.
type RemapReport struct {
	TilesRemapped int
	CostBefore    float64 // Σ (G_desired − G_effective)² before
	CostAfter     float64 // after remapping
}

// remapCost is the squared conductance error logical column lc's
// targets suffer when routed onto physical column p's fault pattern.
func remapCost(x *Crossbar, lc, p int) float64 {
	var cost float64
	for r := 0; r < x.Rows; r++ {
		want := x.g[r*x.Cols+lc]
		switch x.faults[r*x.Cols+p] {
		case FaultSA0:
			d := want - x.Gmin
			cost += d * d
		case FaultSA1:
			d := want - x.Gmax
			cost += d * d
		}
	}
	return cost
}

// RemapColumns greedily assigns logical columns to physical columns on
// every tile of m, processing the logical columns that suffer the
// largest fault-induced error first, and installs the permutation via
// SetColPerm when it reduces the total squared conductance error.
//
// Greedy assignment is the standard heuristic for this baseline; an
// optimal assignment would solve a bipartite matching.
func RemapColumns(m *MappedMatrix) RemapReport {
	rep := RemapReport{}
	rt, ct := m.TileGrid()
	for i := 0; i < rt; i++ {
		for j := 0; j < ct; j++ {
			pos, neg := m.Tiles(i, j)
			for _, xb := range []*Crossbar{pos, neg} {
				before, after, changed := remapOne(xb)
				rep.CostBefore += before
				rep.CostAfter += after
				if changed {
					rep.TilesRemapped++
				}
			}
		}
	}
	return rep
}

// ResetColPerms restores identity routing on every tile of m.
func (m *MappedMatrix) ResetColPerms() {
	rt, ct := m.TileGrid()
	for i := 0; i < rt; i++ {
		for j := 0; j < ct; j++ {
			pos, neg := m.Tiles(i, j)
			pos.SetColPerm(nil)
			neg.SetColPerm(nil)
		}
	}
}

// remapOne remaps a single crossbar; returns identity-routing cost,
// achieved cost, and whether a permutation was installed.
func remapOne(x *Crossbar) (before, after float64, changed bool) {
	x.SetColPerm(nil) // evaluate and assign against identity routing
	n := x.Cols
	idCosts := make([]float64, n)
	var hurt []int
	for c := 0; c < n; c++ {
		idCosts[c] = remapCost(x, c, c)
		before += idCosts[c]
	}
	for c := 0; c < n; c++ {
		if idCosts[c] > 0 {
			hurt = append(hurt, c)
		}
	}
	if len(hurt) == 0 {
		return before, before, false
	}

	assign := make([]int, n) // logical → physical
	taken := make([]bool, n)
	for i := range assign {
		assign[i] = -1
	}
	// Worst-hurt logical columns pick their best free physical column
	// first (selection sort by descending identity cost).
	order := append([]int(nil), hurt...)
	for i := 0; i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if idCosts[order[j]] > idCosts[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	for _, lc := range order {
		bestP, bestCost := -1, 0.0
		for p := 0; p < n; p++ {
			if taken[p] {
				continue
			}
			c := remapCost(x, lc, p)
			if bestP == -1 || c < bestCost {
				bestP, bestCost = p, c
			}
		}
		assign[lc] = bestP
		taken[bestP] = true
	}
	// Remaining logical columns keep their own slot when free, else
	// take any free one.
	for lc := 0; lc < n; lc++ {
		if assign[lc] != -1 {
			continue
		}
		if !taken[lc] {
			assign[lc] = lc
			taken[lc] = true
			continue
		}
		for p := 0; p < n; p++ {
			if !taken[p] {
				assign[lc] = p
				taken[p] = true
				break
			}
		}
	}
	for lc := 0; lc < n; lc++ {
		after += remapCost(x, lc, assign[lc])
	}
	if after >= before {
		return before, before, false
	}
	x.SetColPerm(assign)
	return before, after, true
}
