package reram

import (
	"github.com/ftpim/ftpim/internal/tensor"
)

// RepairReport summarizes a redundant-column repair pass.
type RepairReport struct {
	FaultyColumns   int // logical columns with ≥1 detected fault
	RepairedColumns int // columns remapped to a healthy spare
	SparesUsed      int
	SparesAvailable int
}

// RepairColumns implements the redundant-column baseline (Liu et al.,
// DAC'17 [4]): each crossbar tile carries `spares` spare columns; a
// logical column containing at least one detected faulty cell is
// remapped onto a healthy spare until the tile's spares run out.
//
// The simulation realizes a successful remap by clearing the fault
// state of the repaired column (its cells are now physically the
// spare's, which march-tested healthy). Spare columns themselves fail
// at the same per-cell rate, which is modeled by drawing the number of
// healthy spares per tile binomially with the same fault statistics.
func RepairColumns(m *MappedMatrix, detections []TileFaults, spares int, cellFaultRate float64, rng *tensor.RNG) RepairReport {
	rep := RepairReport{}
	// Index detections per physical tile array.
	type key struct {
		rt, ct int
		pos    bool
	}
	byTile := map[key][]DetectedFault{}
	for _, tf := range detections {
		byTile[key{tf.RowTile, tf.ColTile, tf.Positive}] = tf.Faults
	}
	rt, ct := m.TileGrid()
	for i := 0; i < rt; i++ {
		for j := 0; j < ct; j++ {
			for _, positive := range []bool{true, false} {
				pos, neg := m.Tiles(i, j)
				xb := pos
				if !positive {
					xb = neg
				}
				faults := byTile[key{i, j, positive}]
				if len(faults) == 0 {
					continue
				}
				// Healthy spares: each spare column survives if all its
				// cells are fault-free.
				healthySpares := 0
				for s := 0; s < spares; s++ {
					ok := true
					for r := 0; r < xb.Rows; r++ {
						if rng.Float64() < cellFaultRate {
							ok = false
							break
						}
					}
					if ok {
						healthySpares++
					}
				}
				rep.SparesAvailable += spares
				// Columns with faults, worst (most faults) first would be
				// smarter; simple order is what [4] evaluates.
				colFaults := map[int]int{}
				for _, f := range faults {
					colFaults[f.Col]++
				}
				rep.FaultyColumns += len(colFaults)
				for col := 0; col < xb.Cols && healthySpares > 0; col++ {
					if colFaults[col] == 0 {
						continue
					}
					for r := 0; r < xb.Rows; r++ {
						xb.SetFault(r, col, FaultNone)
					}
					healthySpares--
					rep.SparesUsed++
					rep.RepairedColumns++
				}
			}
		}
	}
	return rep
}
