package reram

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/tensor"
)

func TestSetColPermValidation(t *testing.T) {
	x := NewCrossbar(2, 3, 0, 0.1, 10)
	for _, bad := range [][]int{{0, 1}, {0, 1, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for perm %v", bad)
				}
			}()
			x.SetColPerm(bad)
		}()
	}
	x.SetColPerm([]int{2, 0, 1})
	if x.ColPerm()[0] != 2 {
		t.Fatal("perm not installed")
	}
	x.SetColPerm(nil)
	if x.ColPerm() != nil {
		t.Fatal("perm not cleared")
	}
}

func TestColPermRoutesFaults(t *testing.T) {
	x := NewCrossbar(1, 2, 0, 0, 10)
	x.Program(0, 0, 7)
	x.Program(0, 1, 3)
	x.SetFault(0, 0, FaultSA1) // physical column 0 is stuck at Gmax=10
	// Identity: logical 0 reads stuck, logical 1 healthy.
	if x.Effective(0, 0) != 10 || x.Effective(0, 1) != 3 {
		t.Fatalf("identity routing wrong: %v %v", x.Effective(0, 0), x.Effective(0, 1))
	}
	// Swap: logical 0 now uses healthy physical 1, keeps target 7.
	x.SetColPerm([]int{1, 0})
	if x.Effective(0, 0) != 7 {
		t.Fatalf("remapped logical 0 should read its target 7, got %v", x.Effective(0, 0))
	}
	if x.Effective(0, 1) != 10 {
		t.Fatalf("remapped logical 1 should hit the stuck cell, got %v", x.Effective(0, 1))
	}
	// MatVec agrees with Effective.
	y := x.MatVec([]float64{1})
	if y[0] != 7 || y[1] != 10 {
		t.Fatalf("MatVec ignores permutation: %v", y)
	}
}

func TestRemapColumnsMovesStuckColumnToSmallTarget(t *testing.T) {
	// Logical column 0 wants high conductances but its physical column
	// is stuck off; logical column 1 wants Gmin everywhere. Remapping
	// should route column 0 onto the healthy column and column 1 onto
	// the stuck-off one (which matches its targets perfectly).
	w := tensor.New(2, 2) // out=2, in=2
	w.Set(1, 0, 0)
	w.Set(1, 0, 1) // output 0: large positive weights
	// output 1: zeros
	m := MapMatrix(w, MapOptions{TileRows: 4, TileCols: 4, Levels: 0, Gmin: 0.1, Gmax: 10})
	pos, _ := m.Tiles(0, 0)
	pos.SetFault(0, 0, FaultSA0)
	pos.SetFault(1, 0, FaultSA0)

	before := m.EffectiveWeights()
	if math.Abs(float64(before.At(0, 0))) > 0.2 {
		t.Fatalf("setup broken: weight should be crushed, got %v", before.At(0, 0))
	}
	rep := RemapColumns(m)
	if rep.TilesRemapped == 0 || rep.CostAfter >= rep.CostBefore {
		t.Fatalf("remap should help: %+v", rep)
	}
	after := m.EffectiveWeights()
	if math.Abs(float64(after.At(0, 0))-1) > 1e-6 || math.Abs(float64(after.At(0, 1))-1) > 1e-6 {
		t.Fatalf("output 0 should be fully restored, got %v %v", after.At(0, 0), after.At(0, 1))
	}
	if math.Abs(float64(after.At(1, 0))) > 1e-6 {
		t.Fatalf("output 1 (zeros) should still read zero, got %v", after.At(1, 0))
	}
}

func TestRemapNeverIncreasesCost(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		out := 2 + int(r.Uint64()%10)
		in := 2 + int(r.Uint64()%10)
		w := tensor.New(out, in)
		tensor.FillNormal(w, r, 0, 1)
		m := MapMatrix(w, MapOptions{TileRows: 6, TileCols: 6, Levels: 0, Gmin: 0.1, Gmax: 10})
		m.InjectFaults(r.Stream("f"), fault.ChenModel(), 0.1)
		rep := RemapColumns(m)
		return rep.CostAfter <= rep.CostBefore+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRemapNoFaultsNoChange(t *testing.T) {
	r := tensor.NewRNG(1)
	w := tensor.New(4, 4)
	tensor.FillNormal(w, r, 0, 1)
	m := MapMatrix(w, MapOptions{TileRows: 4, TileCols: 4, Levels: 0, Gmin: 0.1, Gmax: 10})
	rep := RemapColumns(m)
	if rep.TilesRemapped != 0 || rep.CostBefore != 0 {
		t.Fatalf("healthy chip should not be touched: %+v", rep)
	}
}

func TestWriteNoiseZeroIsIdentity(t *testing.T) {
	r := tensor.NewRNG(2)
	x := NewCrossbar(4, 4, 0, 0.1, 10)
	x.Program(1, 1, 5)
	x.ApplyWriteNoise(r, 0)
	if x.Target(1, 1) != 5 {
		t.Fatal("zero noise must not perturb")
	}
}

func TestWriteNoisePerturbsWithinRails(t *testing.T) {
	r := tensor.NewRNG(3)
	x := NewCrossbar(20, 20, 0, 0.1, 10)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			x.Program(i, j, 5)
		}
	}
	x.ApplyWriteNoise(r, 0.1)
	changed := false
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			g := x.Target(i, j)
			if g != 5 {
				changed = true
			}
			if g < 0.1 || g > 10 {
				t.Fatalf("noise escaped rails: %v", g)
			}
		}
	}
	if !changed {
		t.Fatal("noise should perturb targets")
	}
}

func TestWriteNoiseNegativePanics(t *testing.T) {
	x := NewCrossbar(1, 1, 0, 0.1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.ApplyWriteNoise(tensor.NewRNG(1), -0.1)
}

func TestWriteNoiseDegradesAccuracyGracefully(t *testing.T) {
	// Write noise perturbs effective weights proportionally.
	r := tensor.NewRNG(4)
	w := tensor.New(8, 8)
	tensor.FillNormal(w, r, 0, 1)
	m := MapMatrix(w, MapOptions{TileRows: 8, TileCols: 8, Levels: 0, Gmin: 0.1, Gmax: 10})
	m.ApplyWriteNoise(r.Stream("n"), 0.05)
	diff := tensor.Sub(m.EffectiveWeights(), w)
	rms := diff.Norm2() / w.Norm2()
	if rms == 0 || rms > 0.5 {
		t.Fatalf("5%% write noise should give small nonzero weight error, got %v", rms)
	}
}
