// Package reram simulates ReRAM crossbar arrays at the circuit level:
// conductance programming with multi-level quantization, differential
// weight mapping with tiling, per-cell stuck-at fault maps, analog
// matrix-vector products with optional ADC quantization, march-test
// fault detection and redundant-column repair.
//
// The paper evaluates with the faster weight-level model in
// internal/fault; this package provides the substrate that model
// abstracts, the device-specific repair baselines the paper compares
// against ([4], [5], [25]), and the ablation that validates the
// weight-level simplification.
package reram

import (
	"fmt"
	"math"

	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/tensor"
)

// CellFault is the physical state of one crossbar cell.
type CellFault uint8

// Cell fault states.
const (
	FaultNone CellFault = iota
	FaultSA0            // stuck at Gmin
	FaultSA1            // stuck at Gmax
)

func (f CellFault) String() string {
	switch f {
	case FaultSA0:
		return "SA0"
	case FaultSA1:
		return "SA1"
	default:
		return "ok"
	}
}

// Crossbar is one R×C array of programmable conductances. Programmed
// targets are stored separately from fault state so that re-programming
// (e.g. after retraining) does not lose the defect pattern.
//
// Targets are addressed by *logical* column; stuck-at faults live on
// *physical* columns. The two coincide unless a column permutation has
// been installed by SetColPerm (the remapping baseline [3]), which
// re-routes each logical column onto a chosen physical column.
type Crossbar struct {
	Rows, Cols int
	Gmin, Gmax float64
	Levels     int // discrete conductance levels; 0 disables quantization

	g       []float64 // programmed target conductances, row-major, logical
	faults  []CellFault
	colPerm []int // logical→physical column map; nil = identity
}

// NewCrossbar allocates a crossbar with all cells at Gmin and no
// faults.
func NewCrossbar(rows, cols, levels int, gmin, gmax float64) *Crossbar {
	if rows <= 0 || cols <= 0 || gmax <= gmin {
		panic(fmt.Sprintf("reram: invalid crossbar %dx%d G=[%g,%g]", rows, cols, gmin, gmax))
	}
	x := &Crossbar{
		Rows: rows, Cols: cols, Gmin: gmin, Gmax: gmax, Levels: levels,
		g:      make([]float64, rows*cols),
		faults: make([]CellFault, rows*cols),
	}
	for i := range x.g {
		x.g[i] = gmin
	}
	return x
}

// Quantize snaps a conductance to the crossbar's level grid and clamps
// it to [Gmin, Gmax].
func (x *Crossbar) Quantize(g float64) float64 {
	if g < x.Gmin {
		g = x.Gmin
	}
	if g > x.Gmax {
		g = x.Gmax
	}
	if x.Levels < 2 {
		return g
	}
	step := (x.Gmax - x.Gmin) / float64(x.Levels-1)
	return x.Gmin + math.Round((g-x.Gmin)/step)*step
}

// Program writes a target conductance into cell (r, c), quantized to
// the level grid. The write succeeds logically even on a faulty cell;
// the fault only manifests on read.
func (x *Crossbar) Program(r, c int, g float64) {
	x.g[r*x.Cols+c] = x.Quantize(g)
}

// Target returns the programmed (pre-fault) conductance of cell (r, c).
func (x *Crossbar) Target(r, c int) float64 { return x.g[r*x.Cols+c] }

// phys maps a logical column to its physical column.
func (x *Crossbar) phys(c int) int {
	if x.colPerm == nil {
		return c
	}
	return x.colPerm[c]
}

// SetColPerm installs a logical→physical column permutation (the
// output-routing trick of the remapping baseline [3]). perm must be a
// permutation of [0, Cols); nil restores the identity.
func (x *Crossbar) SetColPerm(perm []int) {
	if perm == nil {
		x.colPerm = nil
		return
	}
	if len(perm) != x.Cols {
		panic(fmt.Sprintf("reram: permutation length %d, want %d", len(perm), x.Cols))
	}
	seen := make([]bool, x.Cols)
	for _, p := range perm {
		if p < 0 || p >= x.Cols || seen[p] {
			panic("reram: not a permutation")
		}
		seen[p] = true
	}
	x.colPerm = append([]int(nil), perm...)
}

// ColPerm returns the installed permutation (nil = identity).
func (x *Crossbar) ColPerm() []int { return x.colPerm }

// Effective returns the conductance logical cell (r, c) actually
// presents: the programmed target unless the routed physical cell is
// stuck.
func (x *Crossbar) Effective(r, c int) float64 {
	switch x.faults[r*x.Cols+x.phys(c)] {
	case FaultSA0:
		return x.Gmin
	case FaultSA1:
		return x.Gmax
	default:
		return x.g[r*x.Cols+c]
	}
}

// Fault returns the fault state of cell (r, c).
func (x *Crossbar) Fault(r, c int) CellFault { return x.faults[r*x.Cols+c] }

// SetFault pins the fault state of cell (r, c).
func (x *Crossbar) SetFault(r, c int, f CellFault) { x.faults[r*x.Cols+c] = f }

// ClearFaults resets every cell to healthy.
func (x *Crossbar) ClearFaults() {
	for i := range x.faults {
		x.faults[i] = FaultNone
	}
}

// InjectFaults draws independent per-cell stuck-at faults with total
// rate psa, split SA0/SA1 by the model, and returns the number injected.
func (x *Crossbar) InjectFaults(rng *tensor.RNG, m fault.Model, psa float64) int {
	if psa < 0 || psa > 1 {
		panic(fmt.Sprintf("reram: psa %v out of [0,1]", psa))
	}
	p1 := m.P1()
	n := 0
	for i := range x.faults {
		if rng.Float64() >= psa {
			continue
		}
		if rng.Float64() < p1 {
			x.faults[i] = FaultSA1
		} else {
			x.faults[i] = FaultSA0
		}
		n++
	}
	return n
}

// InjectRowBursts draws spatially-clustered stuck-at faults: defects
// arrive as bursts of up to burstLen consecutive cells along a
// wordline (row), all sharing one stuck-at kind — the circuit-level
// counterpart of the weight-level "cluster" scenario (fault.Clustered
// with Tile = Cols). Burst starts are drawn per cell at rate
// psa/burstLen so the expected per-cell fault rate stays ≈ psa; a
// burst truncates at its row boundary. Returns the number of cells
// faulted.
func (x *Crossbar) InjectRowBursts(rng *tensor.RNG, m fault.Model, psa float64, burstLen int) int {
	if psa < 0 || psa > 1 {
		panic(fmt.Sprintf("reram: psa %v out of [0,1]", psa))
	}
	if burstLen < 1 {
		panic(fmt.Sprintf("reram: burst length %d < 1", burstLen))
	}
	pStart := psa / float64(burstLen)
	p1 := m.P1()
	n := 0
	for i := 0; i < len(x.faults); {
		if rng.Float64() >= pStart {
			i++
			continue
		}
		rowEnd := (i/x.Cols + 1) * x.Cols
		end := i + burstLen
		if end > rowEnd {
			end = rowEnd
		}
		f := FaultSA0
		if rng.Float64() < p1 {
			f = FaultSA1
		}
		for ; i < end; i++ {
			x.faults[i] = f
			n++
		}
	}
	return n
}

// NumFaults counts faulty cells.
func (x *Crossbar) NumFaults() int {
	n := 0
	for _, f := range x.faults {
		if f != FaultNone {
			n++
		}
	}
	return n
}

// MatVec computes the column currents I_c = Σ_r v_r · G_eff(r, c) for
// an input voltage vector v of length Rows — the crossbar's in-situ
// dot product.
func (x *Crossbar) MatVec(v []float64) []float64 {
	return x.MatVecInto(make([]float64, x.Cols), v)
}

// MatVecInto is MatVec accumulating into a caller-provided destination
// of length Cols (overwritten), returning it. Hot evaluation loops
// reuse one destination per tile to avoid per-call allocation.
func (x *Crossbar) MatVecInto(out, v []float64) []float64 {
	if len(v) != x.Rows {
		panic(fmt.Sprintf("reram: MatVec input length %d, want %d", len(v), x.Rows))
	}
	if len(out) != x.Cols {
		panic(fmt.Sprintf("reram: MatVec destination length %d, want %d", len(out), x.Cols))
	}
	for c := range out {
		out[c] = 0
	}
	for r := 0; r < x.Rows; r++ {
		vr := v[r]
		if vr == 0 {
			continue
		}
		base := r * x.Cols
		for c := 0; c < x.Cols; c++ {
			g := x.g[base+c]
			switch x.faults[base+x.phys(c)] {
			case FaultSA0:
				g = x.Gmin
			case FaultSA1:
				g = x.Gmax
			}
			out[c] += vr * g
		}
	}
	return out
}
