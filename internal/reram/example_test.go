package reram_test

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/reram"
	"github.com/ftpim/ftpim/internal/tensor"
)

// Map a weight matrix onto differential crossbar tiles, break one
// cell, and read back the weights the analog array now implements.
func ExampleMapMatrix() {
	w := tensor.FromSlice([]float32{0.5, -1.0}, 1, 2) // 1 output, 2 inputs
	m := reram.MapMatrix(w, reram.MapOptions{
		TileRows: 4, TileCols: 4, Levels: 0, Gmin: 0.1, Gmax: 10,
	})
	fmt.Printf("fault-free readback: %.2f %.2f\n",
		m.EffectiveWeights().At(0, 0), m.EffectiveWeights().At(0, 1))

	pos, _ := m.Tiles(0, 0)
	pos.SetFault(0, 0, reram.FaultSA1) // input 0's positive cell sticks on
	fmt.Printf("after stuck-on fault: %.2f %.2f\n",
		m.EffectiveWeights().At(0, 0), m.EffectiveWeights().At(0, 1))
	// Output:
	// fault-free readback: 0.50 -1.00
	// after stuck-on fault: 1.00 -1.00
}

// A march test finds every stuck cell on an array.
func ExampleMarchTest() {
	x := reram.NewCrossbar(4, 4, 0, 0.1, 10)
	x.SetFault(1, 2, reram.FaultSA0)
	x.SetFault(3, 0, reram.FaultSA1)
	for _, f := range reram.MarchTest(x, 1.0, tensor.NewRNG(1)) {
		fmt.Printf("cell (%d,%d): %s\n", f.Row, f.Col, f.Kind)
	}
	// Output:
	// cell (1,2): SA0
	// cell (3,0): SA1
}
