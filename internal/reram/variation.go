package reram

import (
	"github.com/ftpim/ftpim/internal/tensor"
)

// ApplyWriteNoise perturbs every healthy cell's programmed conductance
// by multiplicative Gaussian noise with relative standard deviation
// relStd, clamped to [Gmin, Gmax]. This models the residual
// program-verify error of real ReRAM writes (device-to-device and
// cycle-to-cycle variation), the second non-ideality (after stuck-at
// faults) discussed in the paper's ReRAM background.
func (x *Crossbar) ApplyWriteNoise(rng *tensor.RNG, relStd float64) {
	if relStd < 0 {
		panic("reram: negative write-noise std")
	}
	if relStd == 0 {
		return
	}
	for i := range x.g {
		g := x.g[i] * (1 + float64(rng.Normal(0, relStd)))
		if g < x.Gmin {
			g = x.Gmin
		}
		if g > x.Gmax {
			g = x.Gmax
		}
		x.g[i] = g
	}
}

// ApplyWriteNoise perturbs every tile of the mapped matrix.
func (m *MappedMatrix) ApplyWriteNoise(rng *tensor.RNG, relStd float64) {
	for rt := range m.pos {
		for ct := range m.pos[rt] {
			m.pos[rt][ct].ApplyWriteNoise(rng, relStd)
			m.neg[rt][ct].ApplyWriteNoise(rng, relStd)
		}
	}
}

// ApplyWriteNoise perturbs the whole mapped network.
func (mn *MappedNetwork) ApplyWriteNoise(rng *tensor.RNG, relStd float64) {
	for _, m := range mn.Mats {
		m.ApplyWriteNoise(rng, relStd)
	}
}
