package reram

import (
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// MappedNetwork holds one MappedMatrix per weight parameter of a
// network — the full model programmed onto crossbars. Conv weights are
// already stored flat as (outC, inC·kh·kw), so every weight param maps
// directly.
type MappedNetwork struct {
	Net    *nn.Network
	Params []*nn.Param
	Mats   []*MappedMatrix
	Opts   MapOptions
}

// MapNetwork programs every weight (Decay) parameter of net onto
// crossbar tiles.
func MapNetwork(net *nn.Network, opts MapOptions) *MappedNetwork {
	mn := &MappedNetwork{Net: net, Opts: opts}
	for _, p := range net.WeightParams() {
		mn.Params = append(mn.Params, p)
		mn.Mats = append(mn.Mats, MapMatrix(p.W, opts))
	}
	return mn
}

// InjectFaults draws stuck-at faults across all mapped arrays.
func (mn *MappedNetwork) InjectFaults(rng *tensor.RNG, fm fault.Model, psa float64) int {
	n := 0
	for _, m := range mn.Mats {
		n += m.InjectFaults(rng, fm, psa)
	}
	return n
}

// ClearFaults heals every array.
func (mn *MappedNetwork) ClearFaults() {
	for _, m := range mn.Mats {
		m.ClearFaults()
	}
}

// ApplyEffectiveWeights overwrites the network's weight params with the
// effective (quantized + faulted) weights the crossbars implement and
// returns an undo function restoring the digital weights. Running
// inference between the two calls evaluates the model exactly as the
// analog hardware would compute it (up to ADC effects, which are
// exercised separately through MatVec).
func (mn *MappedNetwork) ApplyEffectiveWeights() (undo func()) {
	saved := make([]*tensor.Tensor, len(mn.Params))
	for i, p := range mn.Params {
		saved[i] = p.W.Clone()
		eff := mn.Mats[i].EffectiveWeights()
		p.W.CopyFrom(eff.Reshape(p.W.Shape()...))
	}
	return func() {
		for i, p := range mn.Params {
			p.W.CopyFrom(saved[i])
		}
	}
}

// Reprogram rewrites all crossbar targets from the network's current
// weights (fault maps are preserved).
func (mn *MappedNetwork) Reprogram() {
	for i, p := range mn.Params {
		mn.Mats[i].Reprogram(p.W)
	}
}

// NumFaults counts faulty cells across the whole deployment.
func (mn *MappedNetwork) NumFaults() int {
	n := 0
	for _, m := range mn.Mats {
		n += m.NumFaults()
	}
	return n
}

// NumCells returns the total physical cell count of the deployment.
func (mn *MappedNetwork) NumCells() int {
	n := 0
	for _, m := range mn.Mats {
		n += m.NumCells()
	}
	return n
}
