package reram

import (
	"testing"

	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/tensor"
)

func TestNewCrossbarBadConfigPanics(t *testing.T) {
	cases := []struct {
		r, c       int
		gmin, gmax float64
	}{
		{0, 4, 0.1, 10},
		{4, 0, 0.1, 10},
		{4, 4, 10, 0.1},
		{4, 4, 5, 5},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", tc)
				}
			}()
			NewCrossbar(tc.r, tc.c, 0, tc.gmin, tc.gmax)
		}()
	}
}

func TestCrossbarMatVecLengthPanics(t *testing.T) {
	x := NewCrossbar(3, 3, 0, 0.1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.MatVec([]float64{1, 2})
}

func TestCrossbarInjectBadRatePanics(t *testing.T) {
	x := NewCrossbar(2, 2, 0, 0.1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.InjectFaults(tensor.NewRNG(1), fault.ChenModel(), 1.5)
}

func TestMapMatrixRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank-1 weights")
		}
	}()
	MapMatrix(tensor.New(4), DefaultMapOptions())
}

func TestMapMatrixZeroTilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero tile dims")
		}
	}()
	MapMatrix(tensor.New(2, 2), MapOptions{TileRows: 0, TileCols: 4, Gmin: 0.1, Gmax: 10})
}

func TestMapMatrixAllZeroWeights(t *testing.T) {
	// An all-zero matrix must map (wmax falls back to 1) and read back
	// as zeros.
	m := MapMatrix(tensor.New(3, 3), MapOptions{TileRows: 4, TileCols: 4, Levels: 0, Gmin: 0.1, Gmax: 10})
	eff := m.EffectiveWeights()
	if eff.MaxAbs() != 0 {
		t.Fatalf("zero matrix should read back zero, got %v", eff.MaxAbs())
	}
}

func TestMapMatrixTilingCoversOddShapes(t *testing.T) {
	// 5×7 with 3×2 tiles: ragged edges on both axes.
	r := tensor.NewRNG(1)
	w := tensor.New(5, 7)
	tensor.FillNormal(w, r, 0, 1)
	m := MapMatrix(w, MapOptions{TileRows: 3, TileCols: 2, Levels: 0, Gmin: 0.1, Gmax: 10})
	rt, ct := m.TileGrid()
	if rt != 3 || ct != 3 { // in=7→3 row tiles, out=5→3 col tiles
		t.Fatalf("tile grid %d×%d", rt, ct)
	}
	if !m.EffectiveWeights().AllClose(w, 1e-4) {
		t.Fatal("ragged tiling broke the round trip")
	}
	x := make([]float32, 7)
	for i := range x {
		x[i] = r.Normal(0, 1)
	}
	got := m.MatVec(x)
	want := tensor.MatVec(w, x)
	for i := range got {
		if d := got[i] - want[i]; d > 1e-3 || d < -1e-3 {
			t.Fatalf("ragged MatVec mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestMarchTestBadCoveragePanics(t *testing.T) {
	x := NewCrossbar(2, 2, 0, 0.1, 10)
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for coverage %v", bad)
				}
			}()
			MarchTest(x, bad, tensor.NewRNG(1))
		}()
	}
}

func TestCellFaultString(t *testing.T) {
	if FaultNone.String() != "ok" || FaultSA0.String() != "SA0" || FaultSA1.String() != "SA1" {
		t.Fatal("CellFault strings wrong")
	}
}

func TestQuantizeMonotone(t *testing.T) {
	x := NewCrossbar(1, 1, 8, 0, 1)
	prev := -1.0
	for g := 0.0; g <= 1.0; g += 0.01 {
		q := x.Quantize(g)
		if q < prev {
			t.Fatalf("quantization not monotone at %v", g)
		}
		prev = q
	}
}
