package reram

import (
	"github.com/ftpim/ftpim/internal/tensor"
)

// DetectedFault is one fault found by a march test.
type DetectedFault struct {
	Row, Col int
	Kind     CellFault
}

// MarchTest performs an idealized march-style test on a crossbar:
// every cell is written to Gmin and read, then written to Gmax and
// read; a cell that cannot present both extremes is flagged. coverage
// in (0, 1] models imperfect test escape — each faulty cell is
// detected with that probability (1 = perfect detection, as assumed by
// the repair baselines in the paper's related work [22], [23]).
//
// The test is non-destructive here: programmed targets are restored
// afterwards, modeling the re-programming pass that follows testing.
func MarchTest(x *Crossbar, coverage float64, rng *tensor.RNG) []DetectedFault {
	if coverage <= 0 || coverage > 1 {
		panic("reram: march coverage must be in (0,1]")
	}
	var found []DetectedFault
	saved := make([]float64, x.Rows*x.Cols)
	for r := 0; r < x.Rows; r++ {
		for c := 0; c < x.Cols; c++ {
			saved[r*x.Cols+c] = x.Target(r, c)
		}
	}
	for r := 0; r < x.Rows; r++ {
		for c := 0; c < x.Cols; c++ {
			x.Program(r, c, x.Gmin)
			low := x.Effective(r, c)
			x.Program(r, c, x.Gmax)
			high := x.Effective(r, c)
			var kind CellFault
			switch {
			case low != x.Gmin: // cannot reach the low rail → stuck on
				kind = FaultSA1
			case high != x.Gmax: // cannot reach the high rail → stuck off
				kind = FaultSA0
			default:
				continue
			}
			if coverage < 1 && rng.Float64() >= coverage {
				continue // test escape
			}
			found = append(found, DetectedFault{Row: r, Col: c, Kind: kind})
		}
	}
	for r := 0; r < x.Rows; r++ {
		for c := 0; c < x.Cols; c++ {
			x.Program(r, c, saved[r*x.Cols+c])
		}
	}
	return found
}

// MarchTestMatrix runs MarchTest over every tile of a mapped matrix
// and returns per-tile detections keyed by (rowTile, colTile, posArray).
type TileFaults struct {
	RowTile, ColTile int
	Positive         bool
	Faults           []DetectedFault
}

// MarchTestMatrix tests all tiles of m.
func MarchTestMatrix(m *MappedMatrix, coverage float64, rng *tensor.RNG) []TileFaults {
	var out []TileFaults
	rt, ct := m.TileGrid()
	for i := 0; i < rt; i++ {
		for j := 0; j < ct; j++ {
			pos, neg := m.Tiles(i, j)
			if f := MarchTest(pos, coverage, rng); len(f) > 0 {
				out = append(out, TileFaults{RowTile: i, ColTile: j, Positive: true, Faults: f})
			}
			if f := MarchTest(neg, coverage, rng); len(f) > 0 {
				out = append(out, TileFaults{RowTile: i, ColTile: j, Positive: false, Faults: f})
			}
		}
	}
	return out
}
