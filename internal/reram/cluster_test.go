package reram

// Circuit-level tests for the row-burst (clustered) fault injectors:
// realized rate tracking, wordline confinement, shared burst kinds, and
// the tiled MappedMatrix front door that realizes fault.Clustered on
// physical crossbars.

import (
	"testing"

	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/tensor"
)

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic: %s", what)
		}
	}()
	f()
}

func TestInjectRowBurstsRealizedRate(t *testing.T) {
	x := NewCrossbar(200, 100, 0, 0.1, 10)
	const psa = 0.05
	n := x.InjectRowBursts(tensor.NewRNG(41), fault.ChenModel(), psa, 8)
	if n != x.NumFaults() {
		t.Fatalf("returned count %d, NumFaults says %d", n, x.NumFaults())
	}
	rate := float64(n) / float64(200*100)
	// Starts are thinned to psa/burstLen, so the expected per-cell rate
	// is psa minus a small row-truncation loss.
	if rate < 0.6*psa || rate > 1.2*psa {
		t.Fatalf("realized rate %.4f, want ≈ %.2f", rate, psa)
	}
}

// TestInjectRowBurstsConfinedToWordlines pins the truncation rule with
// a burst length far beyond the row width: every burst must then run
// from its start to exactly the end of its wordline, one kind per
// burst, never spilling into the next row.
func TestInjectRowBurstsConfinedToWordlines(t *testing.T) {
	const rows, cols = 256, 16
	x := NewCrossbar(rows, cols, 0, 0.1, 10)
	// Starts are thinned to psa/burstLen, so a long burst needs a high
	// rate and many rows to draw a non-vacuous sample.
	n := x.InjectRowBursts(tensor.NewRNG(7), fault.ChenModel(), 0.5, 10*cols)
	if n == 0 {
		t.Fatal("no bursts drawn; test is vacuous")
	}
	cleanRows := 0
	for r := 0; r < rows; r++ {
		start := -1
		for c := 0; c < cols; c++ {
			if x.Fault(r, c) != FaultNone {
				start = c
				break
			}
		}
		if start < 0 {
			cleanRows++
			continue
		}
		kind := x.Fault(r, start)
		for c := start; c < cols; c++ {
			if x.Fault(r, c) != kind {
				t.Fatalf("row %d: cell %d is %v, burst kind is %v (burst broken or mixed)", r, c, x.Fault(r, c), kind)
			}
		}
	}
	if cleanRows == 0 {
		t.Fatal("every row faulted; truncation check has no negative cases")
	}
	x.ClearFaults()
	if x.NumFaults() != 0 {
		t.Fatal("ClearFaults left faults behind")
	}
}

func TestInjectRowBurstsRejectsBadArgs(t *testing.T) {
	x := NewCrossbar(4, 4, 0, 0.1, 10)
	mustPanic(t, "psa out of range", func() {
		x.InjectRowBursts(tensor.NewRNG(1), fault.ChenModel(), 1.5, 4)
	})
	mustPanic(t, "burst length < 1", func() {
		x.InjectRowBursts(tensor.NewRNG(1), fault.ChenModel(), 0.1, 0)
	})
}

func TestMappedMatrixInjectClusteredFaults(t *testing.T) {
	w := tensor.New(40, 30)
	r := tensor.NewRNG(3)
	for i := 0; i < w.Len(); i++ {
		w.Data()[i] = r.Normal(0, 1)
	}
	opts := DefaultMapOptions()
	opts.TileRows, opts.TileCols = 16, 16
	m := MapMatrix(w, opts)

	n := m.InjectClusteredFaults(tensor.NewRNG(9), fault.NewClustered(4, 0, fault.ChenModel()), 0.2)
	if n == 0 {
		t.Fatal("no clustered faults injected at psa=0.2")
	}
	if n != m.NumFaults() {
		t.Fatalf("returned count %d, NumFaults says %d", n, m.NumFaults())
	}
	// Bursts must land on both differential arrays of the tile grid.
	rt, ct := m.TileGrid()
	pn, nn := 0, 0
	for i := 0; i < rt; i++ {
		for j := 0; j < ct; j++ {
			p, ng := m.Tiles(i, j)
			pn += p.NumFaults()
			nn += ng.NumFaults()
		}
	}
	if pn == 0 || nn == 0 {
		t.Fatalf("faults pos=%d neg=%d; both arrays must be exposed", pn, nn)
	}
	if pn+nn != n {
		t.Fatalf("tile sum %d != injected %d", pn+nn, n)
	}
	m.ClearFaults()
	if m.NumFaults() != 0 {
		t.Fatal("ClearFaults left faults behind")
	}
}

func TestMappedMatrixInjectClusteredFaultsValidates(t *testing.T) {
	m := MapMatrix(tensor.New(8, 8), DefaultMapOptions())
	mustPanic(t, "invalid clustered scenario", func() {
		m.InjectClusteredFaults(tensor.NewRNG(1), fault.Clustered{Len: -1, Tile: 8, Mix: fault.ChenModel()}, 0.1)
	})
}
