package reram

import (
	"math"
	"testing"

	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/tensor"
)

// highMagCols flags the logical columns of x that carry above-average
// conductance (Σ_r Target − Gmin): the columns whose outputs matter
// most and which remapping is supposed to protect.
func highMagCols(x *Crossbar) []bool {
	mag := make([]float64, x.Cols)
	var mean float64
	for c := 0; c < x.Cols; c++ {
		for r := 0; r < x.Rows; r++ {
			mag[c] += x.Target(r, c) - x.Gmin
		}
		mean += mag[c]
	}
	mean /= float64(x.Cols)
	high := make([]bool, x.Cols)
	for c := range high {
		high[c] = mag[c] > mean
	}
	return high
}

// highMagFaultCount runs a full-coverage march over every tile of m and
// counts the detected stuck-off (SA0) faults that land on
// high-magnitude logical columns under the currently installed routing
// and corrupt the value the column presents. SA0 cells pin a
// conductance to Gmin, so they are the faults that crush large
// weights; SA1 cells (stuck at Gmax) are cheapest when parked on
// high-conductance columns, and the remapper legitimately routes them
// there. A stuck cell whose pinned value matches the desired target is
// free under either routing.
func highMagFaultCount(t *testing.T, m *MappedMatrix, rng *tensor.RNG) int {
	t.Helper()
	count := 0
	for _, tf := range MarchTestMatrix(m, 1, rng) {
		pos, neg := m.Tiles(tf.RowTile, tf.ColTile)
		xb := pos
		if !tf.Positive {
			xb = neg
		}
		high := highMagCols(xb)
		for _, f := range tf.Faults {
			if f.Kind == FaultSA0 && high[f.Col] && xb.Effective(f.Row, f.Col) != xb.Target(f.Row, f.Col) {
				count++
			}
		}
	}
	return count
}

// The in-field repair path: march-test a defective chip, remap its
// columns, march-test again. Remapping must never route MORE faulty
// cells onto the high-magnitude columns than identity routing did, and
// ResetColPerms must restore identity routing exactly.
func TestRepairPathNeverHurtsHighMagnitudeColumns(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597} {
		r := tensor.NewRNG(seed)
		out := 4 + int(r.Uint64()%12)
		in := 4 + int(r.Uint64()%12)
		w := tensor.New(out, in)
		tensor.FillNormal(w, r, 0, 1)
		m := MapMatrix(w, MapOptions{TileRows: 8, TileCols: 8, Levels: 0, Gmin: 0.1, Gmax: 10})
		m.InjectFaults(r.Stream("f"), fault.ChenModel(), 0.08)

		identityWeights := m.EffectiveWeights()
		before := highMagFaultCount(t, m, r.Stream("march"))
		RemapColumns(m)
		after := highMagFaultCount(t, m, r.Stream("march"))
		if after > before {
			t.Fatalf("seed %d: remap routed %d faults onto high-magnitude columns, identity had %d",
				seed, after, before)
		}

		// ResetColPerms must restore identity on every tile, byte for byte:
		// ColPerm reads nil and the effective weights match the pre-remap
		// (identity-routed) ones exactly.
		m.ResetColPerms()
		rt, ct := m.TileGrid()
		for i := 0; i < rt; i++ {
			for j := 0; j < ct; j++ {
				pos, neg := m.Tiles(i, j)
				if pos.ColPerm() != nil || neg.ColPerm() != nil {
					t.Fatalf("seed %d: tile (%d,%d) still has a column permutation after reset", seed, i, j)
				}
			}
		}
		if !m.EffectiveWeights().Equal(identityWeights) {
			t.Fatalf("seed %d: ResetColPerms did not restore identity routing", seed)
		}
	}
}

// A march test at full coverage finds exactly the injected fault
// population, and the repair path never touches the programmed targets
// (repair is routing-only; re-programming is a separate pass).
func TestMarchTestMatrixFindsAllInjectedFaults(t *testing.T) {
	r := tensor.NewRNG(7)
	w := tensor.New(10, 10)
	tensor.FillNormal(w, r, 0, 1)
	m := MapMatrix(w, MapOptions{TileRows: 6, TileCols: 6, Levels: 0, Gmin: 0.1, Gmax: 10})
	injected := m.InjectFaults(r.Stream("f"), fault.ChenModel(), 0.1)

	targetsBefore := make(map[[4]int]float64)
	rt, ct := m.TileGrid()
	for i := 0; i < rt; i++ {
		for j := 0; j < ct; j++ {
			pos, neg := m.Tiles(i, j)
			for ri := 0; ri < pos.Rows; ri++ {
				for ci := 0; ci < pos.Cols; ci++ {
					targetsBefore[[4]int{i, j, ri, ci}] = pos.Target(ri, ci)
					targetsBefore[[4]int{i, j, ri + 1000, ci}] = neg.Target(ri, ci)
				}
			}
		}
	}

	detected := 0
	for _, tf := range MarchTestMatrix(m, 1, r.Stream("march")) {
		detected += len(tf.Faults)
	}
	if detected != injected {
		t.Fatalf("full-coverage march detected %d of %d injected faults", detected, injected)
	}
	RemapColumns(m)
	for i := 0; i < rt; i++ {
		for j := 0; j < ct; j++ {
			pos, neg := m.Tiles(i, j)
			for ri := 0; ri < pos.Rows; ri++ {
				for ci := 0; ci < pos.Cols; ci++ {
					if got := pos.Target(ri, ci); math.Abs(got-targetsBefore[[4]int{i, j, ri, ci}]) > 0 {
						t.Fatalf("remap changed a programmed target on tile (%d,%d)+", i, j)
					}
					if got := neg.Target(ri, ci); math.Abs(got-targetsBefore[[4]int{i, j, ri + 1000, ci}]) > 0 {
						t.Fatalf("remap changed a programmed target on tile (%d,%d)-", i, j)
					}
				}
			}
		}
	}
}
