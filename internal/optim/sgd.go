// Package optim provides the stochastic-gradient-descent optimizer and
// learning-rate schedules used by the training recipes in this library
// (SGD with momentum and weight decay, cosine and multi-step LR).
package optim

import (
	"fmt"
	"math"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// SGD implements stochastic gradient descent with classical or Nesterov
// momentum and decoupled-from-schedule L2 weight decay (added to the
// gradient, PyTorch-style).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	Nesterov    bool

	params   []*nn.Param
	velocity []*tensor.Tensor
}

// NewSGD creates an optimizer over the given parameters.
func NewSGD(params []*nn.Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, params: params}
	s.velocity = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		s.velocity[i] = tensor.New(p.W.Shape()...)
	}
	return s
}

// Params returns the parameter set being optimized.
func (s *SGD) Params() []*nn.Param { return s.params }

// Step applies one update:
//
//	g ← grad + wd·w   (wd only on Decay params)
//	v ← μ·v + g
//	w ← w − lr·v      (or lr·(g + μ·v) with Nesterov)
//
// Pruning masks are re-applied after the update so pruned weights stay
// exactly zero.
func (s *SGD) Step() {
	lr := float32(s.LR)
	mu := float32(s.Momentum)
	for i, p := range s.params {
		w, g, v := p.W.Data(), p.Grad.Data(), s.velocity[i].Data()
		wd := float32(0)
		if p.Decay {
			wd = float32(s.WeightDecay)
		}
		if s.Nesterov {
			for j := range w {
				gj := g[j] + wd*w[j]
				v[j] = mu*v[j] + gj
				w[j] -= lr * (gj + mu*v[j])
			}
		} else {
			for j := range w {
				gj := g[j] + wd*w[j]
				v[j] = mu*v[j] + gj
				w[j] -= lr * v[j]
			}
		}
		p.ApplyMask()
	}
}

// ZeroGrad clears all parameter gradients.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// ResetVelocity clears momentum buffers; used when a training phase
// restarts (e.g. between progressive fault-tolerant training stages).
func (s *SGD) ResetVelocity() {
	for _, v := range s.velocity {
		v.Zero()
	}
}

// ExportState returns a deep copy of the momentum buffers, in parameter
// order — the optimizer state a training checkpoint must carry for a
// resumed run to take bit-identical update steps.
func (s *SGD) ExportState() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(s.velocity))
	for i, v := range s.velocity {
		out[i] = v.Clone()
	}
	return out
}

// ImportState restores momentum buffers captured by ExportState into an
// optimizer over a structurally identical parameter set.
func (s *SGD) ImportState(velocity []*tensor.Tensor) error {
	if len(velocity) != len(s.velocity) {
		return fmt.Errorf("optim: state has %d velocity buffers, optimizer has %d", len(velocity), len(s.velocity))
	}
	for i, v := range velocity {
		if !s.velocity[i].SameShape(v) {
			return fmt.Errorf("optim: velocity %d shape %v != saved %v", i, s.velocity[i].Shape(), v.Shape())
		}
	}
	for i, v := range velocity {
		s.velocity[i].CopyFrom(v)
	}
	return nil
}

// GradNorm returns the global L2 norm of all gradients; handy for
// debugging divergence.
func (s *SGD) GradNorm() float64 {
	var sum float64
	for _, p := range s.params {
		for _, g := range p.Grad.Data() {
			sum += float64(g) * float64(g)
		}
	}
	return math.Sqrt(sum)
}

// ClipGradNorm scales all gradients so the global norm is at most c.
// Returns the pre-clip norm.
func (s *SGD) ClipGradNorm(c float64) float64 {
	n := s.GradNorm()
	if n > c && n > 0 {
		scale := float32(c / n)
		for _, p := range s.params {
			p.Grad.Scale(scale)
		}
	}
	return n
}
