package optim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// quadratic sets up a single 1-element parameter minimizing f(w) = w².
func quadratic(w0 float32) *nn.Param {
	p := nn.NewParam("w", 1)
	p.W.Data()[0] = w0
	return p
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := quadratic(5)
	s := NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	for i := 0; i < 200; i++ {
		s.ZeroGrad()
		p.Grad.Data()[0] = 2 * p.W.Data()[0] // df/dw
		s.Step()
	}
	if w := p.W.Data()[0]; math.Abs(float64(w)) > 1e-4 {
		t.Fatalf("did not converge: w=%v", w)
	}
}

func TestSGDMomentumFasterOnIllConditioned(t *testing.T) {
	// On f(w)=0.5·k·w² with small k, momentum should make more progress
	// than plain SGD in the same step budget.
	run := func(momentum float64) float64 {
		p := quadratic(10)
		s := NewSGD([]*nn.Param{p}, 0.05, momentum, 0)
		for i := 0; i < 50; i++ {
			s.ZeroGrad()
			p.Grad.Data()[0] = 0.1 * p.W.Data()[0]
			s.Step()
		}
		return math.Abs(float64(p.W.Data()[0]))
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum should converge faster on an ill-conditioned quadratic")
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := quadratic(1)
	s := NewSGD([]*nn.Param{p}, 0.1, 0, 0.5)
	s.ZeroGrad() // zero gradient: only decay acts
	s.Step()
	want := float32(1 - 0.1*0.5)
	if got := p.W.Data()[0]; math.Abs(float64(got-want)) > 1e-6 {
		t.Fatalf("decay step got %v want %v", got, want)
	}
}

func TestSGDWeightDecaySkipsNonDecayParams(t *testing.T) {
	p := quadratic(1)
	p.Decay = false
	s := NewSGD([]*nn.Param{p}, 0.1, 0, 0.5)
	s.ZeroGrad()
	s.Step()
	if got := p.W.Data()[0]; got != 1 {
		t.Fatalf("non-decay param changed: %v", got)
	}
}

func TestSGDRespectsMask(t *testing.T) {
	p := nn.NewParam("w", 4)
	p.W.CopyFrom(tensor.FromSlice([]float32{1, 2, 3, 4}, 4))
	p.Mask = tensor.FromSlice([]float32{1, 0, 1, 0}, 4)
	p.ApplyMask()
	s := NewSGD([]*nn.Param{p}, 0.1, 0.9, 0)
	for i := 0; i < 5; i++ {
		s.ZeroGrad()
		for j := range p.Grad.Data() {
			p.Grad.Data()[j] = 1
		}
		s.Step()
	}
	if p.W.At(1) != 0 || p.W.At(3) != 0 {
		t.Fatalf("pruned weights moved: %v", p.W.Data())
	}
	if p.W.At(0) >= 1 {
		t.Fatal("unpruned weights should have moved down")
	}
}

func TestNesterovDiffersFromClassic(t *testing.T) {
	run := func(nesterov bool) float32 {
		p := quadratic(3)
		s := NewSGD([]*nn.Param{p}, 0.1, 0.9, 0)
		s.Nesterov = nesterov
		for i := 0; i < 3; i++ {
			s.ZeroGrad()
			p.Grad.Data()[0] = 2 * p.W.Data()[0]
			s.Step()
		}
		return p.W.Data()[0]
	}
	if run(true) == run(false) {
		t.Fatal("Nesterov and classic momentum should differ after several steps")
	}
}

func TestResetVelocity(t *testing.T) {
	p := quadratic(1)
	s := NewSGD([]*nn.Param{p}, 0.1, 0.9, 0)
	p.Grad.Data()[0] = 1
	s.Step()
	s.ResetVelocity()
	w0 := p.W.Data()[0]
	s.ZeroGrad()
	s.Step() // zero grad + zero velocity = no movement
	if p.W.Data()[0] != w0 {
		t.Fatal("ResetVelocity did not clear momentum")
	}
}

func TestGradNormAndClip(t *testing.T) {
	p := nn.NewParam("w", 2)
	s := NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	p.Grad.CopyFrom(tensor.FromSlice([]float32{3, 4}, 2))
	if n := s.GradNorm(); math.Abs(n-5) > 1e-9 {
		t.Fatalf("GradNorm=%v want 5", n)
	}
	pre := s.ClipGradNorm(1)
	if math.Abs(pre-5) > 1e-9 {
		t.Fatalf("pre-clip norm=%v", pre)
	}
	if n := s.GradNorm(); math.Abs(n-1) > 1e-5 {
		t.Fatalf("post-clip norm=%v want 1", n)
	}
	// Clipping below the threshold is a no-op.
	if s.ClipGradNorm(10); math.Abs(s.GradNorm()-1) > 1e-5 {
		t.Fatal("clip below threshold must not rescale")
	}
}

func TestCosineScheduleEndpoints(t *testing.T) {
	c := NewCosine(0.1, 100)
	if c.LR(0) != 0.1 {
		t.Fatalf("LR(0)=%v", c.LR(0))
	}
	if last := c.LR(99); math.Abs(last) > 1e-12 {
		t.Fatalf("LR(last)=%v want 0", last)
	}
	if c.LR(1000) != 0 {
		t.Fatal("past-end LR should be Final")
	}
}

func TestCosineMonotoneDecreasing(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		epochs := 2 + int(r.Uint64()%200)
		c := NewCosine(0.1, epochs)
		prev := math.Inf(1)
		for e := 0; e < epochs; e++ {
			lr := c.LR(e)
			if lr > prev+1e-12 || lr < 0 {
				return false
			}
			prev = lr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiStep(t *testing.T) {
	m := NewMultiStep(1.0, []int{10, 20}, 0.1)
	if m.LR(0) != 1 || m.LR(9) != 1 {
		t.Fatal("before first milestone")
	}
	if math.Abs(m.LR(10)-0.1) > 1e-12 || math.Abs(m.LR(19)-0.1) > 1e-12 {
		t.Fatal("after first milestone")
	}
	if math.Abs(m.LR(25)-0.01) > 1e-12 {
		t.Fatal("after second milestone")
	}
}

func TestWarmup(t *testing.T) {
	w := &Warmup{Inner: Constant(0.4), WarmupEpochs: 4}
	if math.Abs(w.LR(0)-0.1) > 1e-12 {
		t.Fatalf("LR(0)=%v", w.LR(0))
	}
	if math.Abs(w.LR(3)-0.4) > 1e-12 {
		t.Fatalf("LR(3)=%v", w.LR(3))
	}
	if w.LR(10) != 0.4 {
		t.Fatal("post-warmup should defer to inner")
	}
}
