package optim

import "math"

// Schedule maps an epoch index (0-based) to a learning rate.
type Schedule interface {
	LR(epoch int) float64
}

// Constant is a fixed learning rate.
type Constant float64

// LR implements Schedule.
func (c Constant) LR(int) float64 { return float64(c) }

// Cosine anneals from Initial to Final over Epochs following half a
// cosine period — the recipe the paper uses (initial LR 0.1 over 160
// epochs).
type Cosine struct {
	Initial float64
	Final   float64
	Epochs  int
}

// NewCosine builds a cosine schedule decaying to zero.
func NewCosine(initial float64, epochs int) *Cosine {
	return &Cosine{Initial: initial, Epochs: epochs}
}

// LR implements Schedule.
func (c *Cosine) LR(epoch int) float64 {
	if c.Epochs <= 1 {
		return c.Initial
	}
	if epoch >= c.Epochs {
		return c.Final
	}
	if epoch < 0 {
		epoch = 0
	}
	t := float64(epoch) / float64(c.Epochs-1)
	return c.Final + 0.5*(c.Initial-c.Final)*(1+math.Cos(math.Pi*t))
}

// MultiStep multiplies the base LR by Gamma at each milestone epoch.
type MultiStep struct {
	Base       float64
	Milestones []int
	Gamma      float64
}

// NewMultiStep builds the classic step schedule.
func NewMultiStep(base float64, milestones []int, gamma float64) *MultiStep {
	ms := make([]int, len(milestones))
	copy(ms, milestones)
	return &MultiStep{Base: base, Milestones: ms, Gamma: gamma}
}

// LR implements Schedule.
func (m *MultiStep) LR(epoch int) float64 {
	lr := m.Base
	for _, ms := range m.Milestones {
		if epoch >= ms {
			lr *= m.Gamma
		}
	}
	return lr
}

// Warmup wraps a schedule with linear warmup over the first
// WarmupEpochs epochs.
type Warmup struct {
	Inner        Schedule
	WarmupEpochs int
}

// LR implements Schedule.
func (w *Warmup) LR(epoch int) float64 {
	if epoch < w.WarmupEpochs && w.WarmupEpochs > 0 {
		return w.Inner.LR(0) * float64(epoch+1) / float64(w.WarmupEpochs)
	}
	return w.Inner.LR(epoch)
}
