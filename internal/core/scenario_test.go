package core_test

// Determinism-equivalence and behavior tests for the pluggable fault
// scenarios: every registered scenario must evaluate bit-identically
// at any worker count and across clone-pool reuse, and drop-connect FT
// must improve defect robustness like the other FT schemes.

import (
	"testing"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
)

// smallNet builds the small CNN the drop-connect test trains.
func smallNet(classes, channels int) *nn.Network {
	return models.BuildSimpleCNN(models.SimpleCNNConfig{
		InChannels: channels, Width: 4, Classes: classes, Seed: 23,
	})
}

// TestScenarioEvalDeterminism extends the worker-count equivalence
// suite to every registered fault scenario: serial, 2-worker, and
// 4-worker evaluation must produce bitwise-equal summaries.
func TestScenarioEvalDeterminism(t *testing.T) {
	net, test := presetFixture(t, "smoke")
	for _, spec := range fault.Names() {
		t.Run(spec, func(t *testing.T) {
			base := core.DefectEval{
				Runs: 4, Batch: 32, Seed: 42, Workers: 1,
				Scenario: fault.MustParse(spec),
			}
			for _, psa := range []float64{0.01, 0.1} {
				want := evalD(t, net, test, psa, base)
				for _, w := range []int{2, 4} {
					cfg := base
					cfg.Workers = w
					got := evalD(t, net, test, psa, cfg)
					if got != want {
						t.Fatalf("psa=%g workers=%d: %+v != serial %+v", psa, w, got, want)
					}
				}
			}
		})
	}
}

// TestScenarioSweepCloneReuse pins that a clone pool checked out for
// one scenario is safe to reuse for another and back: interleaved
// sweeps must reproduce each other bit for bit, and the live network
// must be untouched throughout.
func TestScenarioSweepCloneReuse(t *testing.T) {
	net, test := presetFixture(t, "smoke")
	before := net.Snapshot()
	rates := []float64{0.02, 0.1}

	sweep := func(spec string) []float64 {
		cfg := core.DefectEval{
			Runs: 3, Batch: 32, Seed: 7, Workers: 2,
			Scenario: fault.MustParse(spec),
		}
		sums, err := core.EvalDefectSweep(ctxbg, net, test, rates, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var means []float64
		for _, s := range sums {
			means = append(means, s.Mean)
		}
		return means
	}

	chen1 := sweep("chen")
	cluster1 := sweep("cluster")
	transient1 := sweep("transient")
	chen2 := sweep("chen")
	cluster2 := sweep("cluster")
	transient2 := sweep("transient")

	pairs := [][2][]float64{{chen1, chen2}, {cluster1, cluster2}, {transient1, transient2}}
	for i, p := range pairs {
		for j := range p[0] {
			if p[0][j] != p[1][j] {
				t.Fatalf("pair %d rate %d: first pass %v, after pool reuse %v", i, j, p[0][j], p[1][j])
			}
		}
	}
	if err := net.Restore(before); err != nil {
		t.Fatalf("network mutated by scenario sweeps: %v", err)
	}

	// Distinct scenarios must actually draw distinct fault patterns —
	// otherwise the registry is silently collapsing to one model.
	if chen1[1] == cluster1[1] && chen1[0] == cluster1[0] {
		t.Fatal("chen and cluster sweeps are identical; scenario plumbing is inert")
	}
}

// TestScenarioDefaultMatchesLegacyModel pins backward compatibility:
// DefectEval with no Scenario must be bit-identical to the explicit
// chen scenario and to the legacy Model field.
func TestScenarioDefaultMatchesLegacyModel(t *testing.T) {
	net, test := presetFixture(t, "smoke")
	base := core.DefectEval{Runs: 4, Batch: 32, Seed: 11, Workers: 2}

	legacy := evalD(t, net, test, 0.05, base)

	withScenario := base
	withScenario.Scenario = fault.MustParse("chen")
	if got := evalD(t, net, test, 0.05, withScenario); got != legacy {
		t.Fatalf("explicit chen scenario %+v != default path %+v", got, legacy)
	}

	withModel := base
	withModel.Model = fault.ChenModel()
	if got := evalD(t, net, test, 0.05, withModel); got != legacy {
		t.Fatalf("legacy Model field %+v != default path %+v", got, legacy)
	}
}

// TestTransientScenarioRedrawsPerBatch distinguishes transient from
// persistent evaluation: with a transient scenario every batch sees a
// different lesion, so a multi-batch eval must generally diverge from
// the persistent scenario at the same coordinates (same seed, same
// model mix).
func TestTransientScenarioRedrawsPerBatch(t *testing.T) {
	net, test := presetFixture(t, "smoke")
	base := core.DefectEval{Runs: 3, Batch: 16, Seed: 5, Workers: 1}

	persistent := base
	persistent.Scenario = fault.MustParse("chen")
	transient := base
	transient.Scenario = fault.MustParse("transient")

	accP := evalD(t, net, test, 0.15, persistent)
	accT := evalD(t, net, test, 0.15, transient)
	if accP == accT {
		t.Fatalf("transient eval identical to persistent (%+v); per-step redraw is not happening", accP)
	}
}

// TestConfigTransientScenarioForcesPerBatch pins the Normalize rule: a
// transient training scenario implies per-batch resampling.
func TestConfigTransientScenarioForcesPerBatch(t *testing.T) {
	cfg := core.Config{
		Epochs: 1, Batch: 8, LR: 0.1,
		Scenario: fault.MustParse("transient"),
	}.Normalize()
	if !cfg.PerBatch {
		t.Fatal("transient scenario did not force PerBatch")
	}
	if (core.Config{Epochs: 1, Batch: 8, LR: 0.1}).Normalize().PerBatch {
		t.Fatal("default config must not force PerBatch")
	}
}

// TestDropConnectFTImprovesDefectAccuracy is the paper-level claim for
// the new FT scheme: drop-connect training (no fault model assumed)
// must beat the baseline under stuck-at defects at a meaningful rate.
func TestDropConnectFTImprovesDefectAccuracy(t *testing.T) {
	cfg := data.SynthConfig{
		Classes: 4, TrainPer: 40, TestPer: 25,
		Channels: 2, Size: 8, Basis: 8, CoefNoise: 0.15,
		NoiseStd: 0.3, Seed: 19,
	}
	train, test := data.Generate(cfg)
	base := smallNet(4, 2)
	tc := core.Config{Epochs: 6, Batch: 16, LR: 0.1, Momentum: 0.9, Seed: 3}
	if _, err := core.Train(ctxbg, base, train, tc); err != nil {
		t.Fatal(err)
	}

	dc := smallNet(4, 2)
	if err := dc.Restore(base.Snapshot()); err != nil {
		t.Fatal(err)
	}
	dcCfg := tc
	dcCfg.Epochs = 8
	dcCfg.LR = 0.05
	if _, err := core.DropConnectFT(ctxbg, dc, train, dcCfg, 0.1); err != nil {
		t.Fatal(err)
	}

	ev := core.DefectEval{Runs: 8, Batch: 64, Seed: 77, Workers: 2}
	accBase := evalD(t, base, test, 0.1, ev)
	accDC := evalD(t, dc, test, 0.1, ev)
	if accDC.Mean <= accBase.Mean {
		t.Fatalf("drop-connect FT did not help: %.4f <= baseline %.4f", accDC.Mean, accBase.Mean)
	}
}
