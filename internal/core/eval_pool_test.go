// Internal test for the sweep clone pool: the create counter is
// unexported, so this lives in package core (unlike the determinism
// suite in parallel_test.go, which needs internal/experiments).
package core

import (
	"context"
	"testing"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

func poolFixture() (*nn.Network, *data.Dataset) {
	rng := tensor.NewRNG(5)
	net := nn.NewNetwork(
		nn.NewConv2D("c1", 3, 4, 3, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("bn1", 4),
		nn.NewReLU(),
		nn.NewGlobalAvgPool2D(),
		nn.NewFlatten(),
		nn.NewLinear("fc", 4, 4, rng),
	)
	cfg := data.SynthC10()
	cfg.Classes, cfg.TrainPer, cfg.TestPer, cfg.Size = 4, 4, 8, 8
	_, test := data.Generate(cfg)
	return net, test
}

// TestEvalDefectSweepReusesClones pins the scheduling optimization: a
// multi-rate sweep must construct at most Workers clones in total —
// not Workers per rate — and produce the same summaries as standalone
// EvalDefect calls with the per-rate derived seeds.
func TestEvalDefectSweepReusesClones(t *testing.T) {
	net, test := poolFixture()
	rates := []float64{0.01, 0.05, 0.1, 0.2}
	cfg := DefectEval{Runs: 6, Batch: 16, Seed: 77, Workers: 3}

	before := evalCloneCreates.Load()
	got, err := EvalDefectSweep(context.Background(), net, test, rates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	created := evalCloneCreates.Load() - before
	if created > int64(cfg.Workers) {
		t.Fatalf("sweep over %d rates created %d clones, want <= %d",
			len(rates), created, cfg.Workers)
	}

	for i, r := range rates {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*7_919
		want, err := EvalDefect(context.Background(), net, test, r, c)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("rate %g: pooled sweep %+v != standalone %+v", r, got[i], want)
		}
	}
}
