package core

import (
	"sort"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/nn"
)

// PaperRates is the candidate stuck-at-rate list evaluated in the
// paper's Table I (both as training targets and the progressive
// ladder pool).
var PaperRates = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}

// Ladder builds the ascending Psa ladder for progressive FT training
// toward the target rate: every candidate rate strictly below the
// target, capped at maxRungs (keeping the rungs closest to the
// target), followed by the target itself.
func Ladder(target float64, maxRungs int) []float64 {
	if target <= 0 {
		panic("core: ladder target must be positive")
	}
	if maxRungs < 1 {
		maxRungs = 1
	}
	var below []float64
	for _, r := range PaperRates {
		if r < target {
			below = append(below, r)
		}
	}
	sort.Float64s(below)
	if len(below) > maxRungs-1 {
		below = below[len(below)-(maxRungs-1):]
	}
	return append(below, target)
}

// OneShotFT runs one-shot stochastic fault-tolerant training: the full
// epoch budget at the fixed target rate Psa^T (Algorithm 1, first
// branch). Batch-norm statistics are recalibrated on clean weights
// afterwards (see RecalibrateBN).
func OneShotFT(net *nn.Network, ds *data.Dataset, cfg Config, target float64) *Result {
	cfg.FaultRate = target
	res := Train(net, ds, cfg)
	RecalibrateBN(net, ds, cfg.Batch)
	return res
}

// ProgressiveFT runs progressive stochastic fault-tolerant training
// (Algorithm 1, second branch): the ladder is climbed rung by rung,
// training epochsPerStage epochs at each rate. The LR schedule restarts
// each stage, matching the paper's iterative retraining.
func ProgressiveFT(net *nn.Network, ds *data.Dataset, cfg Config, ladder []float64, epochsPerStage int) *Result {
	if len(ladder) == 0 {
		panic("core: empty progressive ladder")
	}
	if epochsPerStage <= 0 {
		epochsPerStage = cfg.Epochs
	}
	total := &Result{}
	for stage, rate := range ladder {
		c := cfg
		c.Epochs = epochsPerStage
		c.FaultRate = rate
		c.Seed = cfg.Seed + uint64(stage)*1_000_003
		c.logf("progressive stage %d/%d: Psa=%g", stage+1, len(ladder), rate)
		r := Train(net, ds, c)
		base := len(total.History)
		for i, st := range r.History {
			st.Epoch = base + i
			total.History = append(total.History, st)
		}
	}
	RecalibrateBN(net, ds, cfg.Batch)
	return total
}
