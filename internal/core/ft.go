package core

import (
	"context"
	"sort"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/obs"
)

// PaperRates is the candidate stuck-at-rate list evaluated in the
// paper's Table I (both as training targets and the progressive
// ladder pool).
var PaperRates = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}

// Ladder builds the ascending Psa ladder for progressive FT training
// toward the target rate: every candidate rate strictly below the
// target, capped at maxRungs (keeping the rungs closest to the
// target), followed by the target itself.
func Ladder(target float64, maxRungs int) []float64 {
	if target <= 0 {
		panic("core: ladder target must be positive")
	}
	if maxRungs < 1 {
		maxRungs = 1
	}
	var below []float64
	for _, r := range PaperRates {
		if r < target {
			below = append(below, r)
		}
	}
	sort.Float64s(below)
	if len(below) > maxRungs-1 {
		below = below[len(below)-(maxRungs-1):]
	}
	return append(below, target)
}

// OneShotFT runs one-shot stochastic fault-tolerant training: the full
// epoch budget at the fixed target rate Psa^T (Algorithm 1, first
// branch). Batch-norm statistics are recalibrated on clean weights
// afterwards (see RecalibrateBN).
//
// On cancellation the partial training Result and ctx's error are
// returned; BN recalibration is skipped so the interrupted weights are
// exactly what Train left behind.
func OneShotFT(ctx context.Context, net *nn.Network, ds *data.Dataset, cfg Config, target float64) (*Result, error) {
	cfg.FaultRate = target
	res, err := Train(ctx, net, ds, cfg)
	if err != nil {
		return res, err
	}
	if err := RecalibrateBN(ctx, net, ds, cfg.Batch); err != nil {
		return res, err
	}
	return res, nil
}

// DropConnectFT runs drop-connect fault-tolerant retraining (arXiv
// 2404.15498): every mini-batch a fresh SA0-only transient lesion
// zeroes each weight independently with probability drop, the batch
// runs forward and backward through the dropped weights, and the
// gradient applies straight-through to the clean weights — Algorithm
// 1's injection hook re-pointed at the "drop" scenario. Unlike
// one-shot FT at a fixed stuck-at mix, the regularization is
// position-agnostic, hardening the network against whatever defect
// pattern a device ships with. BN statistics are recalibrated on clean
// weights afterwards; on cancellation recalibration is skipped and the
// partial Result plus ctx's error are returned.
//
// Any Scenario/FaultModel/PerBatch already in cfg is overridden; the
// rest of the configuration (epochs, LR schedule, ADMM, checkpoints)
// composes as with the other FT schemes.
func DropConnectFT(ctx context.Context, net *nn.Network, ds *data.Dataset, cfg Config, drop float64) (*Result, error) {
	cfg.Scenario = fault.DropConnect()
	cfg.FaultModel = fault.NewModel(0, 0)
	cfg.PerBatch = true
	cfg.FaultRate = drop
	res, err := Train(ctx, net, ds, cfg)
	if err != nil {
		return res, err
	}
	if err := RecalibrateBN(ctx, net, ds, cfg.Batch); err != nil {
		return res, err
	}
	return res, nil
}

// ProgressiveFT runs progressive stochastic fault-tolerant training
// (Algorithm 1, second branch): the ladder is climbed rung by rung,
// training epochsPerStage epochs at each rate. The LR schedule restarts
// each stage, matching the paper's iterative retraining.
//
// One ft.stage event is emitted per rung. On cancellation the history
// accumulated so far (including the interrupted stage's completed
// epochs) and ctx's error are returned; BN recalibration is skipped.
func ProgressiveFT(ctx context.Context, net *nn.Network, ds *data.Dataset, cfg Config, ladder []float64, epochsPerStage int) (*Result, error) {
	if len(ladder) == 0 {
		panic("core: empty progressive ladder")
	}
	if epochsPerStage <= 0 {
		epochsPerStage = cfg.Epochs
	}
	sink := obs.Or(cfg.Sink)
	total := &Result{}
	// A checkpoint written by a later rung means every earlier rung
	// already completed: skip straight to the checkpointed stage and
	// replay its cumulative history; Train then resumes within it. The
	// peeked meta is revalidated stage-locally by Train's own restore,
	// so a stale or foreign checkpoint degrades to a fresh ladder.
	startStage := 0
	if cfg.Ckpt != nil {
		if m := peekCkptMeta(cfg.Ckpt); m != nil &&
			m.Stage > 0 && m.Stage < len(ladder) &&
			m.Seed == cfg.Seed+uint64(m.Stage)*1_000_003 &&
			m.Epochs == epochsPerStage && m.FaultRate == ladder[m.Stage] &&
			len(m.Prefix) == m.Stage*epochsPerStage {
			startStage = m.Stage
			total.History = append(total.History, m.Prefix...)
		}
	}
	for stage, rate := range ladder {
		if stage < startStage {
			continue
		}
		c := cfg
		c.Epochs = epochsPerStage
		c.FaultRate = rate
		c.Seed = cfg.Seed + uint64(stage)*1_000_003
		c.ckptStage = stage
		c.ckptPrefix = append([]EpochStats(nil), total.History...)
		if sink.Enabled() {
			sink.Emit(obs.Event{
				Kind: obs.KindFTStage, Stage: stage + 1,
				Stages: len(ladder), Rate: rate,
			})
		}
		r, err := Train(ctx, net, ds, c)
		base := len(total.History)
		for i, st := range r.History {
			st.Epoch = base + i
			total.History = append(total.History, st)
		}
		if err != nil {
			return total, err
		}
	}
	if err := RecalibrateBN(ctx, net, ds, cfg.Batch); err != nil {
		return total, err
	}
	return total, nil
}
