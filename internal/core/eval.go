package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/obs"
)

// DefectEval parameterizes the defect-accuracy protocol: the paper
// applies random stuck-at faults to the trained weights and averages
// the test accuracy over num_of_runs repetitions (100 in the paper;
// the repro preset uses fewer).
//
// Workers bounds the goroutines used for the Monte-Carlo loop:
// 0 → runtime.NumCPU(), 1 → the exact legacy serial path. Results are
// bit-identical at every worker count: run r always draws its faults
// from fault.RunRNG(Seed, r) and is evaluated on a private clone of
// the network, so neither scheduling nor sharing can perturb the
// floating-point stream.
type DefectEval struct {
	Runs    int         // <= 0 → 10
	Batch   int         // <= 0 → 64 (metrics.Evaluate default)
	Model   fault.Model // zero value → fault.ChenModel()
	Seed    uint64
	Workers int // 0 = all cores, 1 = serial reference path

	// Numerics, when non-empty ("exact" or "fast"), declares the
	// kernel numerics tier this evaluation's results are pinned to;
	// the Eval* entry points fail fast when the process tier differs.
	// See core.CheckNumerics. Empty follows the process tier.
	Numerics string

	// Scenario selects the fault distribution. Nil resolves to the
	// persistent stuck-at scenario over Model — i.e. fault.Default()
	// when Model is also unset — so legacy configurations behave
	// byte-identically. When both are set, Scenario wins and Model is
	// ignored.
	Scenario fault.Scenario

	// Sink receives one eval.run event per Monte-Carlo run plus a
	// timing event per EvalDefect call (nil → obs.Null). With Workers
	// > 1 the eval.run events arrive from worker goroutines in
	// scheduling order; Event.Run identifies the draw. Events never
	// perturb results: summaries are bit-identical with any sink.
	Sink obs.Sink
}

// Normalize returns d with every optional zero-valued field resolved to
// its documented default:
//
//   - Runs <= 0 → 10
//   - Batch <= 0 → 64
//   - Model zero value → fault.ChenModel() (an explicitly set but
//     degenerate model panics loudly instead of being remapped)
//   - Scenario nil → the stuck-at scenario over the resolved Model
//     (an explicitly set but invalid scenario panics, matching Model)
//   - Workers <= 0 → runtime.NumCPU()
//   - Sink nil → obs.Null
//
// The Eval* entry points apply Normalize internally; callers only need
// it to inspect the effective configuration.
func (d DefectEval) Normalize() DefectEval {
	if d.Runs <= 0 {
		d.Runs = 10
	}
	if d.Batch <= 0 {
		d.Batch = 64
	}
	d.Model = d.model()
	d.Scenario = d.scenario()
	if d.Workers <= 0 {
		d.Workers = runtime.NumCPU()
	}
	d.Sink = obs.Or(d.Sink)
	return d
}

// model resolves the effective fault model: the zero value means
// "unset" and yields the paper's ChenModel; an explicitly set model is
// validated so a degenerate choice fails loudly here rather than
// silently evaluating the wrong fault mix.
func (d DefectEval) model() fault.Model {
	if d.Model.IsZero() {
		return fault.ChenModel()
	}
	if err := d.Model.Validate(); err != nil {
		panic("core: invalid DefectEval.Model: " + err.Error())
	}
	return d.Model
}

// scenario resolves the effective fault scenario: nil means "unset"
// and yields the persistent stuck-at scenario over the resolved Model
// (fault.Default() when Model is unset too); an explicitly set
// scenario is validated so an unusable one fails loudly here.
func (d DefectEval) scenario() fault.Scenario {
	if d.Scenario == nil {
		return fault.StuckAt(d.model())
	}
	if err := d.Scenario.Validate(); err != nil {
		panic("core: invalid DefectEval.Scenario: " + err.Error())
	}
	return d.Scenario
}

// EvalClean returns the fault-free test accuracy.
func EvalClean(net *nn.Network, ds *data.Dataset, batch int) float64 {
	return metrics.Evaluate(net, ds, batch)
}

// CloneEntry is one reusable worker state: a deep clone of the source
// network plus a fault injector bound to the clone's weight tensors.
// Net may be mutated freely (forward passes, lesions) as long as every
// lesion is undone before the entry goes back to its pool.
type CloneEntry struct {
	Net  *nn.Network
	inj  fault.Injector
	spec string // scenario spec inj was built for
}

// Injector returns the entry's current injector, bound to Net's
// weights (nil until InjectorFor has run).
func (e *CloneEntry) Injector() fault.Injector { return e.inj }

// InjectorFor returns an injector of scenario sc bound to Net's
// weights, rebuilding it only when the scenario changed since the
// last call — a pooled entry evaluating the same scenario keeps its
// injector (and the injector's recycled lesion) across checkouts.
func (e *CloneEntry) InjectorFor(sc fault.Scenario) fault.Injector {
	if spec := sc.Spec(); e.inj == nil || e.spec != spec {
		e.inj = sc.NewInjector(WeightTensors(e.Net))
		e.spec = spec
	}
	return e.inj
}

// ClonePool hands out reusable deep clones of a source network. A
// clone is safe to reuse between checkouts because every lesion is
// undone bitwise before the entry is returned and the source network
// is never mutated — so a pooled clone is indistinguishable from a
// fresh one, and results stay bit-identical to per-call cloning. Only
// the scheduling changes: a multi-rate sweep creates at most Workers
// clones total instead of Workers per rate, and a serving process
// creates one clone per concurrent executor for its whole lifetime.
//
// The pool is safe for concurrent use. Entries must not be shared:
// layers keep scratch buffers and fault injection mutates weights in
// place, so each checked-out entry belongs to exactly one goroutine
// until Put.
type ClonePool struct {
	mu      sync.Mutex
	src     *nn.Network
	sc      fault.Scenario
	entries []*CloneEntry
}

// NewClonePool creates a pool of clones of src whose injectors default
// to scenario sc. Nil resolves to fault.Default(); an explicitly set
// invalid scenario panics, matching DefectEval.Normalize. Entries can
// still be re-bound to other scenarios via CloneEntry.InjectorFor.
func NewClonePool(src *nn.Network, sc fault.Scenario) *ClonePool {
	sc = (DefectEval{Scenario: sc}).scenario()
	return &ClonePool{src: src, sc: sc}
}

// evalCloneCreates counts clone constructions for the pool-reuse test.
var evalCloneCreates atomic.Int64

// Get checks an entry out of the pool, cloning the source network if
// no idle entry is available.
func (p *ClonePool) Get() *CloneEntry {
	p.mu.Lock()
	if n := len(p.entries); n > 0 {
		e := p.entries[n-1]
		p.entries = p.entries[:n-1]
		p.mu.Unlock()
		return e
	}
	p.mu.Unlock()
	evalCloneCreates.Add(1)
	clone := p.src.Clone()
	e := &CloneEntry{Net: clone}
	e.InjectorFor(p.sc)
	return e
}

// Put returns an entry for reuse. The caller must have undone every
// lesion it applied; the entry's weights must be bit-identical to the
// source network's.
func (p *ClonePool) Put(e *CloneEntry) {
	p.mu.Lock()
	p.entries = append(p.entries, e)
	p.mu.Unlock()
}

// stepHook redraws a transient-scenario lesion before every evaluation
// batch and undoes it afterwards: batch `step` of run `run` always
// sees the lesion of position (seed, run, step), regardless of worker
// count or scheduling. One hook is allocated per eval call (or per
// worker) outside the warm loop, keeping the steady-state run path
// within its allocation budget.
type stepHook struct {
	inj    fault.Injector
	seed   uint64
	run    int
	psa    float64
	lesion *fault.Lesion
}

// newStepHook returns the per-batch hook for a transient scenario, or
// nil for persistent ones.
func newStepHook(sc fault.Scenario, inj fault.Injector, seed uint64, psa float64) *stepHook {
	if !sc.Transient() {
		return nil
	}
	return &stepHook{inj: inj, seed: seed, psa: psa}
}

func (h *stepHook) BeforeBatch(step int) {
	h.lesion = h.inj.InjectStep(h.seed, h.run, step, h.psa)
}

func (h *stepHook) AfterBatch(int) { h.lesion.Undo() }

// evalRun executes one Monte-Carlo run: a persistent scenario injects
// once and holds the lesion across the whole pass; a transient one
// (hook != nil) redraws per batch through the hook.
func evalRun(net *nn.Network, ds *data.Dataset, cfg DefectEval, inj fault.Injector, hook *stepHook, run int, psa float64) float64 {
	if hook != nil {
		hook.run = run
		return metrics.EvaluateHooked(net, ds, cfg.Batch, hook)
	}
	lesion := inj.InjectRun(cfg.Seed, run, psa)
	acc := metrics.Evaluate(net, ds, cfg.Batch)
	lesion.Undo()
	return acc
}

// EvalDefect measures the model's accuracy under stuck-at faults at
// rate psa, averaged over cfg.Runs independent injections. The
// network's weights are identical before and after the call. With
// cfg.Workers != 1 the runs execute concurrently on private network
// clones; the returned Summary is bit-identical to the serial path.
//
// Cancelling ctx aborts at the next Monte-Carlo run boundary; the
// lesion in flight is undone first, so the live network's weights are
// always restored. On cancellation the Summary is the zero value and
// the error is ctx's.
func EvalDefect(ctx context.Context, net *nn.Network, ds *data.Dataset, psa float64, cfg DefectEval) (metrics.Summary, error) {
	if err := CheckNumerics(cfg.Numerics); err != nil {
		return metrics.Summary{}, err
	}
	return evalDefect(ctx, net, ds, psa, cfg.Normalize(), nil)
}

// evalDefect is EvalDefect with an optional worker-clone pool: nil
// means per-call clones (the standalone entry point); EvalDefectSweep
// passes one pool so clones survive across its rates. cfg must already
// be normalized.
func evalDefect(ctx context.Context, net *nn.Network, ds *data.Dataset, psa float64, cfg DefectEval, pool *ClonePool) (metrics.Summary, error) {
	sink := cfg.Sink
	start := time.Now()
	if psa == 0 {
		// No stochasticity at rate zero; one clean pass suffices.
		if err := ctx.Err(); err != nil {
			return metrics.Summary{}, err
		}
		acc := metrics.Evaluate(net, ds, cfg.Batch)
		if sink.Enabled() {
			sink.Emit(obs.Event{Kind: obs.KindEvalRun, Run: 1, Rate: 0, Acc: acc})
			sink.Emit(obs.Event{Kind: obs.KindTiming, Phase: "eval", Seconds: time.Since(start).Seconds(), N: 1})
		}
		return metrics.Summarize([]float64{acc}), nil
	}
	if cfg.Workers > 1 && cfg.Runs > 1 {
		return evalDefectParallel(ctx, net, ds, psa, cfg, start, pool)
	}
	// Serial reference path: inject into the live network, evaluate,
	// undo. The parallel path must match this bit for bit.
	inj := cfg.Scenario.NewInjector(WeightTensors(net))
	hook := newStepHook(cfg.Scenario, inj, cfg.Seed, psa)
	accs := make([]float64, 0, cfg.Runs)
	for run := 0; run < cfg.Runs; run++ {
		if err := ctx.Err(); err != nil {
			return metrics.Summary{}, err
		}
		acc := evalRun(net, ds, cfg, inj, hook, run, psa)
		accs = append(accs, acc)
		if sink.Enabled() {
			sink.Emit(obs.Event{Kind: obs.KindEvalRun, Run: run + 1, Rate: psa, Acc: acc})
		}
	}
	if sink.Enabled() {
		sink.Emit(obs.Event{Kind: obs.KindTiming, Phase: "eval", Seconds: time.Since(start).Seconds(), N: cfg.Runs})
	}
	return metrics.Summarize(accs), nil
}

// evalDefectParallel fans the Monte-Carlo runs out over cfg.Workers
// workers. Each worker owns one deep clone of the network (fault
// injection mutates weights in place, and layers keep scratch buffers,
// so the live network cannot be shared); run r draws from fault.RunRNG
// (cfg.Seed, r) exactly as the serial loop does and stores its
// accuracy at index r, so the Summary is computed over the identical
// value sequence regardless of scheduling. When pool is non-nil the
// worker clones are checked out of it and returned on exit, so a
// multi-rate sweep reuses them instead of re-cloning per rate. On
// cancellation the dispatcher stops handing out runs, the workers
// drain and finish their clones (the live network was never touched),
// and the zero Summary plus ctx's error is returned.
func evalDefectParallel(ctx context.Context, net *nn.Network, ds *data.Dataset, psa float64, cfg DefectEval, start time.Time, pool *ClonePool) (metrics.Summary, error) {
	w := cfg.Workers
	if w > cfg.Runs {
		w = cfg.Runs
	}
	sink := cfg.Sink
	accs := make([]float64, cfg.Runs)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var e *CloneEntry
			if pool != nil {
				e = pool.Get()
				defer pool.Put(e)
			} else {
				evalCloneCreates.Add(1)
				e = &CloneEntry{Net: net.Clone()}
			}
			inj := e.InjectorFor(cfg.Scenario)
			hook := newStepHook(cfg.Scenario, inj, cfg.Seed, psa)
			for run := range jobs {
				if ctx.Err() != nil {
					continue // drain without evaluating
				}
				acc := evalRun(e.Net, ds, cfg, inj, hook, run, psa)
				accs[run] = acc
				if sink.Enabled() {
					sink.Emit(obs.Event{Kind: obs.KindEvalRun, Run: run + 1, Rate: psa, Acc: acc})
				}
			}
		}()
	}
dispatch:
	for run := 0; run < cfg.Runs; run++ {
		select {
		case jobs <- run:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return metrics.Summary{}, err
	}
	if sink.Enabled() {
		sink.Emit(obs.Event{Kind: obs.KindTiming, Phase: "eval", Seconds: time.Since(start).Seconds(), N: cfg.Runs})
	}
	return metrics.Summarize(accs), nil
}

// RateSeed derives the Monte-Carlo seed of rate index i in a sweep:
// every rate keeps an independent positional stream, and the offset is
// part of the determinism contract — a distributed coordinator hands
// RateSeed(i) to workers so their draws match EvalDefectSweep exactly.
func (d DefectEval) RateSeed(i int) uint64 {
	return d.Seed + uint64(i)*7_919
}

// EvalDefectRuns evaluates the contiguous Monte-Carlo run range
// [start, end) at rate psa and returns the per-run accuracies in run
// order (index 0 is run `start`). Run r draws its faults from
// fault.RunRNG(cfg.Seed, r) — position alone — so any partition of
// [0, cfg.Runs) into ranges, evaluated by any mix of processes, folds
// back into the exact value sequence EvalDefect produces in one
// process. This is the worker-side primitive of the distributed
// defect-eval layer (internal/dist); cfg.Seed should be the sweep's
// RateSeed for the rate being sharded.
//
// At psa == 0 there is no stochasticity and every run yields the same
// single clean pass, mirroring EvalDefect's rate-zero short-circuit.
// The network's weights are identical before and after the call. On
// cancellation the error is ctx's and the slice is nil.
func EvalDefectRuns(ctx context.Context, net *nn.Network, ds *data.Dataset, psa float64, start, end int, cfg DefectEval) ([]float64, error) {
	if start < 0 || end < start {
		return nil, fmt.Errorf("core: invalid run range [%d, %d)", start, end)
	}
	if err := CheckNumerics(cfg.Numerics); err != nil {
		return nil, err
	}
	cfg = cfg.Normalize()
	n := end - start
	if n == 0 {
		return nil, ctx.Err()
	}
	sink := cfg.Sink
	tStart := time.Now()
	accs := make([]float64, n)
	if psa == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		acc := metrics.Evaluate(net, ds, cfg.Batch)
		for i := range accs {
			accs[i] = acc
		}
		if sink.Enabled() {
			sink.Emit(obs.Event{Kind: obs.KindEvalRun, Run: start + 1, Rate: 0, Acc: acc})
			sink.Emit(obs.Event{Kind: obs.KindTiming, Phase: "eval", Seconds: time.Since(tStart).Seconds(), N: n})
		}
		return accs, nil
	}
	if w := cfg.Workers; w > 1 && n > 1 {
		if w > n {
			w = n
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				e := &CloneEntry{Net: net.Clone()}
				inj := e.InjectorFor(cfg.Scenario)
				hook := newStepHook(cfg.Scenario, inj, cfg.Seed, psa)
				for run := range jobs {
					if ctx.Err() != nil {
						continue // drain without evaluating
					}
					acc := evalRun(e.Net, ds, cfg, inj, hook, run, psa)
					accs[run-start] = acc
					if sink.Enabled() {
						sink.Emit(obs.Event{Kind: obs.KindEvalRun, Run: run + 1, Rate: psa, Acc: acc})
					}
				}
			}()
		}
	dispatch:
		for run := start; run < end; run++ {
			select {
			case jobs <- run:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
	} else {
		// Serial path: inject into the live network, evaluate, undo —
		// exactly the EvalDefect reference loop over a sub-range.
		inj := cfg.Scenario.NewInjector(WeightTensors(net))
		hook := newStepHook(cfg.Scenario, inj, cfg.Seed, psa)
		for run := start; run < end; run++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			acc := evalRun(net, ds, cfg, inj, hook, run, psa)
			accs[run-start] = acc
			if sink.Enabled() {
				sink.Emit(obs.Event{Kind: obs.KindEvalRun, Run: run + 1, Rate: psa, Acc: acc})
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sink.Enabled() {
		sink.Emit(obs.Event{Kind: obs.KindTiming, Phase: "eval", Seconds: time.Since(tStart).Seconds(), N: n})
	}
	return accs, nil
}

// EvalDefectSweep evaluates the model across a list of testing fault
// rates, returning mean defect accuracy per rate — one Table I row.
// Each rate's Monte-Carlo loop is parallelized by EvalDefect (rates
// keep their independent derived seeds, so the sweep is bit-identical
// at any cfg.Workers). Worker network clones are pooled across the
// rates: the sweep clones at most cfg.Workers times total rather than
// per rate — a scheduling-only change, since every lesion is undone
// bitwise before a clone is reused.
//
// On cancellation the summaries of the rates completed so far are
// returned together with ctx's error; the in-flight rate is dropped.
func EvalDefectSweep(ctx context.Context, net *nn.Network, ds *data.Dataset, rates []float64, cfg DefectEval) ([]metrics.Summary, error) {
	if err := CheckNumerics(cfg.Numerics); err != nil {
		return nil, err
	}
	cfg = cfg.Normalize()
	sink := cfg.Sink
	var pool *ClonePool
	if cfg.Workers > 1 && cfg.Runs > 1 {
		pool = NewClonePool(net, cfg.Scenario)
	}
	out := make([]metrics.Summary, 0, len(rates))
	for i, r := range rates {
		c := cfg
		c.Seed = cfg.RateSeed(i)
		s, err := evalDefect(ctx, net, ds, r, c, pool)
		if err != nil {
			return out, err
		}
		out = append(out, s)
		if sink.Enabled() {
			sink.Emit(obs.Event{Kind: obs.KindEvalRate, Rate: r, Acc: s.Mean, N: s.N})
		}
	}
	return out, nil
}

// EvalOnDevice deploys the network onto one fixed defective device and
// returns the resulting accuracy (weights restored afterwards). A
// pre-cancelled ctx returns before the lesion is applied; cancellation
// is otherwise checked once up front — a single evaluation pass is the
// finest abort granularity the metrics layer offers.
func EvalOnDevice(ctx context.Context, net *nn.Network, ds *data.Dataset, dm *fault.DeviceMap, batch int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	lesion := dm.Apply(WeightTensors(net))
	defer lesion.Undo()
	return metrics.Evaluate(net, ds, batch), nil
}

// StabilityReport bundles the three accuracy stages of Figure 1 plus
// the Stability Scores at chosen rates — one Table II row.
type StabilityReport struct {
	AccPretrain float64
	AccRetrain  float64
	Rates       []float64
	AccDefect   []float64
	SS          []float64
}

// Stability computes a StabilityReport for a (possibly FT-retrained)
// network. accPretrain is the ideal accuracy of the original pretrained
// model the FT model was derived from. The per-rate defect runs are
// parallelized by EvalDefect under cfg.Workers with bit-identical
// results. On cancellation the partially filled report is returned
// together with ctx's error.
func Stability(ctx context.Context, net *nn.Network, ds *data.Dataset, accPretrain float64, rates []float64, cfg DefectEval) (StabilityReport, error) {
	cfg = cfg.Normalize()
	rep := StabilityReport{
		AccPretrain: accPretrain,
		AccRetrain:  EvalClean(net, ds, cfg.Batch),
		Rates:       rates,
	}
	for i, r := range rates {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*104_729
		s, err := EvalDefect(ctx, net, ds, r, c)
		if err != nil {
			return rep, err
		}
		rep.AccDefect = append(rep.AccDefect, s.Mean)
		rep.SS = append(rep.SS, metrics.StabilityScore(rep.AccRetrain, accPretrain, s.Mean))
	}
	return rep, nil
}
