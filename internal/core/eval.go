package core

import (
	"runtime"
	"sync"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/nn"
)

// DefectEval parameterizes the defect-accuracy protocol: the paper
// applies random stuck-at faults to the trained weights and averages
// the test accuracy over num_of_runs repetitions (100 in the paper;
// the repro preset uses fewer).
//
// Workers bounds the goroutines used for the Monte-Carlo loop:
// 0 → runtime.NumCPU(), 1 → the exact legacy serial path. Results are
// bit-identical at every worker count: run r always draws its faults
// from fault.RunRNG(Seed, r) and is evaluated on a private clone of
// the network, so neither scheduling nor sharing can perturb the
// floating-point stream.
type DefectEval struct {
	Runs    int
	Batch   int
	Model   fault.Model // zero value → fault.ChenModel()
	Seed    uint64
	Workers int // 0 = all cores, 1 = serial reference path
}

func (d DefectEval) model() fault.Model {
	if d.Model.Ratio0 == 0 && d.Model.Ratio1 == 0 {
		return fault.ChenModel()
	}
	return d.Model
}

// workers resolves the effective Monte-Carlo worker count.
func (d DefectEval) workers() int {
	if d.Workers > 0 {
		return d.Workers
	}
	return runtime.NumCPU()
}

// EvalClean returns the fault-free test accuracy.
func EvalClean(net *nn.Network, ds *data.Dataset, batch int) float64 {
	return metrics.Evaluate(net, ds, batch)
}

// EvalDefect measures the model's accuracy under stuck-at faults at
// rate psa, averaged over cfg.Runs independent injections. The
// network's weights are identical before and after the call. With
// cfg.Workers != 1 the runs execute concurrently on private network
// clones; the returned Summary is bit-identical to the serial path.
func EvalDefect(net *nn.Network, ds *data.Dataset, psa float64, cfg DefectEval) metrics.Summary {
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	if psa == 0 {
		// No stochasticity at rate zero; one clean pass suffices.
		acc := metrics.Evaluate(net, ds, cfg.Batch)
		return metrics.Summarize([]float64{acc})
	}
	if w := cfg.workers(); w > 1 && cfg.Runs > 1 {
		return evalDefectParallel(net, ds, psa, cfg, w)
	}
	// Serial reference path: inject into the live network, evaluate,
	// undo. The parallel path must match this bit for bit.
	inj := fault.NewInjector(cfg.model(), WeightTensors(net))
	accs := make([]float64, 0, cfg.Runs)
	for run := 0; run < cfg.Runs; run++ {
		lesion := inj.InjectRun(cfg.Seed, run, psa)
		accs = append(accs, metrics.Evaluate(net, ds, cfg.Batch))
		lesion.Undo()
	}
	return metrics.Summarize(accs)
}

// evalDefectParallel fans the Monte-Carlo runs out over w workers.
// Each worker owns one deep clone of the network (fault injection
// mutates weights in place, and layers keep scratch buffers, so the
// live network cannot be shared); run r draws from fault.RunRNG
// (cfg.Seed, r) exactly as the serial loop does and stores its
// accuracy at index r, so the Summary is computed over the identical
// value sequence regardless of scheduling.
func evalDefectParallel(net *nn.Network, ds *data.Dataset, psa float64, cfg DefectEval, w int) metrics.Summary {
	if w > cfg.Runs {
		w = cfg.Runs
	}
	accs := make([]float64, cfg.Runs)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := net.Clone()
			inj := fault.NewInjector(cfg.model(), WeightTensors(clone))
			for run := range jobs {
				lesion := inj.InjectRun(cfg.Seed, run, psa)
				accs[run] = metrics.Evaluate(clone, ds, cfg.Batch)
				lesion.Undo()
			}
		}()
	}
	for run := 0; run < cfg.Runs; run++ {
		jobs <- run
	}
	close(jobs)
	wg.Wait()
	return metrics.Summarize(accs)
}

// EvalDefectSweep evaluates the model across a list of testing fault
// rates, returning mean defect accuracy per rate — one Table I row.
// Each rate's Monte-Carlo loop is parallelized by EvalDefect (rates
// keep their independent derived seeds, so the sweep is bit-identical
// at any cfg.Workers).
func EvalDefectSweep(net *nn.Network, ds *data.Dataset, rates []float64, cfg DefectEval) []metrics.Summary {
	out := make([]metrics.Summary, len(rates))
	for i, r := range rates {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*7_919
		out[i] = EvalDefect(net, ds, r, c)
	}
	return out
}

// EvalOnDevice deploys the network onto one fixed defective device and
// returns the resulting accuracy (weights restored afterwards).
func EvalOnDevice(net *nn.Network, ds *data.Dataset, dm *fault.DeviceMap, batch int) float64 {
	lesion := dm.Apply(WeightTensors(net))
	defer lesion.Undo()
	return metrics.Evaluate(net, ds, batch)
}

// StabilityReport bundles the three accuracy stages of Figure 1 plus
// the Stability Scores at chosen rates — one Table II row.
type StabilityReport struct {
	AccPretrain float64
	AccRetrain  float64
	Rates       []float64
	AccDefect   []float64
	SS          []float64
}

// Stability computes a StabilityReport for a (possibly FT-retrained)
// network. accPretrain is the ideal accuracy of the original pretrained
// model the FT model was derived from. The per-rate defect runs are
// parallelized by EvalDefect under cfg.Workers with bit-identical
// results.
func Stability(net *nn.Network, ds *data.Dataset, accPretrain float64, rates []float64, cfg DefectEval) StabilityReport {
	rep := StabilityReport{
		AccPretrain: accPretrain,
		AccRetrain:  EvalClean(net, ds, cfg.Batch),
		Rates:       rates,
	}
	for i, r := range rates {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*104_729
		s := EvalDefect(net, ds, r, c)
		rep.AccDefect = append(rep.AccDefect, s.Mean)
		rep.SS = append(rep.SS, metrics.StabilityScore(rep.AccRetrain, accPretrain, s.Mean))
	}
	return rep
}
