package core

import (
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// DefectEval parameterizes the defect-accuracy protocol: the paper
// applies random stuck-at faults to the trained weights and averages
// the test accuracy over num_of_runs repetitions (100 in the paper;
// the repro preset uses fewer).
type DefectEval struct {
	Runs  int
	Batch int
	Model fault.Model // zero value → fault.ChenModel()
	Seed  uint64
}

func (d DefectEval) model() fault.Model {
	if d.Model.Ratio0 == 0 && d.Model.Ratio1 == 0 {
		return fault.ChenModel()
	}
	return d.Model
}

// EvalClean returns the fault-free test accuracy.
func EvalClean(net *nn.Network, ds *data.Dataset, batch int) float64 {
	return metrics.Evaluate(net, ds, batch)
}

// EvalDefect measures the model's accuracy under stuck-at faults at
// rate psa, averaged over cfg.Runs independent injections. The
// network's weights are identical before and after the call.
func EvalDefect(net *nn.Network, ds *data.Dataset, psa float64, cfg DefectEval) metrics.Summary {
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	if psa == 0 {
		// No stochasticity at rate zero; one clean pass suffices.
		acc := metrics.Evaluate(net, ds, cfg.Batch)
		return metrics.Summarize([]float64{acc})
	}
	weights := WeightTensors(net)
	inj := fault.NewInjector(cfg.model(), weights)
	rng := tensor.NewRNG(cfg.Seed)
	accs := make([]float64, 0, cfg.Runs)
	for run := 0; run < cfg.Runs; run++ {
		lesion := inj.Inject(rng.StreamN("defect-run", run), psa)
		accs = append(accs, metrics.Evaluate(net, ds, cfg.Batch))
		lesion.Undo()
	}
	return metrics.Summarize(accs)
}

// EvalDefectSweep evaluates the model across a list of testing fault
// rates, returning mean defect accuracy per rate — one Table I row.
func EvalDefectSweep(net *nn.Network, ds *data.Dataset, rates []float64, cfg DefectEval) []metrics.Summary {
	out := make([]metrics.Summary, len(rates))
	for i, r := range rates {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*7_919
		out[i] = EvalDefect(net, ds, r, c)
	}
	return out
}

// EvalOnDevice deploys the network onto one fixed defective device and
// returns the resulting accuracy (weights restored afterwards).
func EvalOnDevice(net *nn.Network, ds *data.Dataset, dm *fault.DeviceMap, batch int) float64 {
	lesion := dm.Apply(WeightTensors(net))
	defer lesion.Undo()
	return metrics.Evaluate(net, ds, batch)
}

// StabilityReport bundles the three accuracy stages of Figure 1 plus
// the Stability Scores at chosen rates — one Table II row.
type StabilityReport struct {
	AccPretrain float64
	AccRetrain  float64
	Rates       []float64
	AccDefect   []float64
	SS          []float64
}

// Stability computes a StabilityReport for a (possibly FT-retrained)
// network. accPretrain is the ideal accuracy of the original pretrained
// model the FT model was derived from.
func Stability(net *nn.Network, ds *data.Dataset, accPretrain float64, rates []float64, cfg DefectEval) StabilityReport {
	rep := StabilityReport{
		AccPretrain: accPretrain,
		AccRetrain:  EvalClean(net, ds, cfg.Batch),
		Rates:       rates,
	}
	for i, r := range rates {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*104_729
		s := EvalDefect(net, ds, r, c)
		rep.AccDefect = append(rep.AccDefect, s.Mean)
		rep.SS = append(rep.SS, metrics.StabilityScore(rep.AccRetrain, accPretrain, s.Mean))
	}
	return rep
}
