package core_test

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/core"
)

// The progressive ladder toward a 10% target rate, capped at three
// rungs, climbs through the paper's candidate list.
func ExampleLadder() {
	fmt.Println(core.Ladder(0.1, 3))
	fmt.Println(core.Ladder(0.02, 10))
	// Output:
	// [0.02 0.05 0.1]
	// [0.005 0.01 0.02]
}
