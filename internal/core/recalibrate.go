package core

import (
	"context"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// RecalibrateBN re-estimates every batch-norm layer's running
// statistics by streaming the training set through the network with
// its *clean* weights.
//
// During stochastic fault-tolerant training the forward passes — and
// therefore the BN running averages — see faulted weights. The faults
// are undone before each optimizer step, but the statistics keep the
// contamination, which depresses the retrained model's ideal accuracy.
// One clean statistics pass after FT training removes that artifact
// (the deployment-time analogue is calibrating the golden model once
// before mass programming; it is device-independent).
//
// Cancelling ctx aborts at the next batch boundary with ctx's error;
// the saved per-layer momenta are restored, but the partially updated
// running statistics are left as-is — the caller abandoning the run
// must not rely on them. A nil error means the full pass ran.
func RecalibrateBN(ctx context.Context, net *nn.Network, ds *data.Dataset, batch int) error {
	bns := net.BatchNorms()
	if len(bns) == 0 {
		return nil
	}
	saved := make([]float64, len(bns))
	for i, bn := range bns {
		saved[i] = bn.Momentum
		bn.RunningMean.Zero()
		bn.RunningVar.Fill(1)
	}
	defer func() {
		for i, bn := range bns {
			bn.Momentum = saved[i]
		}
	}()
	loader := data.NewLoader(ds, batch, data.Augment{}, false, tensor.NewRNG(0))
	loader.Epoch()
	step := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		x, _ := loader.Next()
		if x == nil {
			break
		}
		// Cumulative moving average: momentum 1/(t+1) turns the
		// exponential update into an exact mean over batches.
		m := 1.0 / float64(step+1)
		for _, bn := range bns {
			bn.Momentum = m
		}
		net.Forward(x, true)
		step++
	}
	return nil
}
