package core

import (
	"context"
	"math"
	"testing"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/prune"
	"github.com/ftpim/ftpim/internal/tensor"
)

// bg is the context for tests that never cancel.
var bg = context.Background()

// testTask returns a small, easily learnable task and a fresh model.
func testTask() (*data.Dataset, *data.Dataset) {
	cfg := data.SynthConfig{
		Classes: 4, TrainPer: 40, TestPer: 25,
		Channels: 3, Size: 8, Basis: 10,
		NoiseStd: 0.25, ShiftMax: 1, JitterStd: 0.1,
		Seed: 31,
	}
	return data.Generate(cfg)
}

func testModel(seed uint64) *nn.Network {
	return models.BuildSimpleCNN(models.SimpleCNNConfig{InChannels: 3, Width: 4, Classes: 4, Seed: seed})
}

func quickCfg() Config {
	return Config{
		Epochs: 8, Batch: 16, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4,
		Aug:  data.Augment{Flip: true, ShiftMax: 1},
		Seed: 5,
	}
}

// mustTrain runs Train under a background context, failing the test on
// an (impossible without cancellation) error.
func mustTrain(t *testing.T, net *nn.Network, ds *data.Dataset, cfg Config) *Result {
	t.Helper()
	res, err := Train(bg, net, ds, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return res
}

// mustEvalDefect runs EvalDefect under a background context.
func mustEvalDefect(t *testing.T, net *nn.Network, ds *data.Dataset, psa float64, cfg DefectEval) metrics.Summary {
	t.Helper()
	s, err := EvalDefect(bg, net, ds, psa, cfg)
	if err != nil {
		t.Fatalf("EvalDefect: %v", err)
	}
	return s
}

func TestTrainLearns(t *testing.T) {
	train, test := testTask()
	net := testModel(1)
	before := metrics.Evaluate(net, test, 64)
	res := mustTrain(t, net, train, quickCfg())
	after := metrics.Evaluate(net, test, 64)
	if after < 0.7 {
		t.Fatalf("test accuracy %.3f after training (was %.3f) — did not learn", after, before)
	}
	if res.History[len(res.History)-1].Loss >= res.History[0].Loss {
		t.Fatal("loss did not decrease")
	}
	if res.FinalLoss() != res.History[len(res.History)-1].Loss {
		t.Fatal("FinalLoss accessor wrong")
	}
}

func TestTrainDeterministic(t *testing.T) {
	train, _ := testTask()
	cfg := quickCfg()
	cfg.Epochs = 3
	a, b := testModel(1), testModel(1)
	ra := mustTrain(t, a, train, cfg)
	rb := mustTrain(t, b, train, cfg)
	for i := range ra.History {
		if ra.History[i].Loss != rb.History[i].Loss {
			t.Fatal("same seed must reproduce the training trace exactly")
		}
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !pa[i].W.Equal(pb[i].W) {
			t.Fatal("weights diverged across identical runs")
		}
	}
}

func TestTrainBadConfigPanics(t *testing.T) {
	train, _ := testTask()
	for _, cfg := range []Config{
		{Epochs: 0, Batch: 8, LR: 0.1},
		{Epochs: 1, Batch: 0, LR: 0.1},
		{Epochs: 1, Batch: 8, LR: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", cfg)
				}
			}()
			Train(bg, testModel(1), train, cfg)
		}()
	}
}

func TestFTTrainingLearnsUnderFaults(t *testing.T) {
	train, test := testTask()
	net := testModel(2)
	cfg := quickCfg()
	if _, err := OneShotFT(bg, net, train, cfg, 0.05); err != nil {
		t.Fatal(err)
	}
	acc := metrics.Evaluate(net, test, 64)
	if acc < 0.6 {
		t.Fatalf("FT training collapsed: clean acc %.3f", acc)
	}
}

// TestFTBeatsBaselineUnderFaults is the paper's headline claim at unit
// scale: under a substantial fault rate, the FT-retrained model must be
// clearly more accurate than the plain pretrained model. Per Algorithm
// 1, FT training starts from a well-trained model.
func TestFTBeatsBaselineUnderFaults(t *testing.T) {
	train, test := testTask()
	psaTest := 0.2
	ev := DefectEval{Runs: 10, Batch: 64, Seed: 77}

	base := testModel(3)
	mustTrain(t, base, train, quickCfg())
	baseDefect := mustEvalDefect(t, base, test, psaTest, ev).Mean

	ft := testModel(3)
	if err := ft.Restore(base.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := OneShotFT(bg, ft, train, quickCfg(), 0.2); err != nil {
		t.Fatal(err)
	}
	ftDefect := mustEvalDefect(t, ft, test, psaTest, ev).Mean

	if ftDefect <= baseDefect+0.05 {
		t.Fatalf("FT model (%.3f) should clearly beat baseline (%.3f) under %.0f%% faults",
			ftDefect, baseDefect, psaTest*100)
	}
}

func TestEvalDefectRestoresWeights(t *testing.T) {
	train, test := testTask()
	net := testModel(4)
	cfg := quickCfg()
	cfg.Epochs = 2
	mustTrain(t, net, train, cfg)
	snap := net.Snapshot()
	mustEvalDefect(t, net, test, 0.1, DefectEval{Runs: 3, Batch: 64, Seed: 9})
	after := net.Snapshot()
	if string(snap) != string(after) {
		t.Fatal("EvalDefect must leave weights untouched")
	}
}

func TestEvalDefectZeroRateEqualsClean(t *testing.T) {
	train, test := testTask()
	net := testModel(5)
	cfg := quickCfg()
	cfg.Epochs = 2
	mustTrain(t, net, train, cfg)
	clean := EvalClean(net, test, 64)
	s := mustEvalDefect(t, net, test, 0, DefectEval{Runs: 5, Batch: 64})
	if s.Mean != clean || s.N != 1 || s.Std != 0 {
		t.Fatalf("zero-rate defect eval should be one clean pass: %+v vs %v", s, clean)
	}
}

func TestEvalDefectDegradesWithRate(t *testing.T) {
	train, test := testTask()
	net := testModel(6)
	mustTrain(t, net, train, quickCfg())
	ev := DefectEval{Runs: 6, Batch: 64, Seed: 3}
	low := mustEvalDefect(t, net, test, 0.005, ev).Mean
	high := mustEvalDefect(t, net, test, 0.3, ev).Mean
	if high >= low {
		t.Fatalf("accuracy should degrade with fault rate: %.3f @0.005 vs %.3f @0.3", low, high)
	}
}

func TestEvalDefectSweep(t *testing.T) {
	train, test := testTask()
	net := testModel(7)
	cfg := quickCfg()
	cfg.Epochs = 2
	mustTrain(t, net, train, cfg)
	rates := []float64{0, 0.01, 0.2}
	sums, err := EvalDefectSweep(bg, net, test, rates, DefectEval{Runs: 3, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatal("sweep length mismatch")
	}
	if sums[0].Mean <= sums[2].Mean {
		t.Fatalf("sweep should degrade: %v", sums)
	}
}

func TestLadder(t *testing.T) {
	l := Ladder(0.05, 10)
	want := []float64{0.005, 0.01, 0.02, 0.05}
	if len(l) != len(want) {
		t.Fatalf("ladder %v", l)
	}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("ladder %v want %v", l, want)
		}
	}
	// maxRungs truncation keeps the rungs nearest the target.
	l = Ladder(0.1, 3)
	want = []float64{0.02, 0.05, 0.1}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("truncated ladder %v want %v", l, want)
		}
	}
	// Non-candidate target still ends the ladder.
	l = Ladder(0.03, 3)
	if l[len(l)-1] != 0.03 {
		t.Fatalf("ladder must end at target: %v", l)
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatalf("ladder not ascending: %v", l)
		}
	}
}

func TestProgressiveFTHistoryAndLearning(t *testing.T) {
	train, test := testTask()
	net := testModel(8)
	cfg := quickCfg()
	res, err := ProgressiveFT(bg, net, train, cfg, []float64{0.01, 0.05}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 6 {
		t.Fatalf("history length %d, want 6", len(res.History))
	}
	if res.History[0].FaultRate != 0.01 || res.History[5].FaultRate != 0.05 {
		t.Fatal("stage rates wrong")
	}
	for i, st := range res.History {
		if st.Epoch != i {
			t.Fatal("epoch renumbering wrong")
		}
	}
	if acc := metrics.Evaluate(net, test, 64); acc < 0.55 {
		t.Fatalf("progressive FT collapsed: %.3f", acc)
	}
}

func TestProgressiveEmptyLadderPanics(t *testing.T) {
	train, _ := testTask()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ProgressiveFT(bg, testModel(1), train, quickCfg(), nil, 1)
}

func TestFaultAwareRetrainHelpsOwnDeviceOnly(t *testing.T) {
	train, test := testTask()
	net := testModel(9)
	mustTrain(t, net, train, quickCfg())

	rng := tensor.NewRNG(123)
	weights := WeightTensors(net)
	dev := fault.DrawDeviceMap(rng.Stream("devA"), fault.ChenModel(), weights, 0.08)

	before, _ := EvalOnDevice(bg, net, test, dev, 64)
	cfg := quickCfg()
	cfg.Epochs = 6
	if _, err := FaultAwareRetrain(bg, net, train, cfg, dev); err != nil {
		t.Fatal(err)
	}
	after, _ := EvalOnDevice(bg, net, test, dev, 64)
	if after <= before {
		t.Fatalf("device-specific retraining should help its own device: %.3f -> %.3f", before, after)
	}
}

func TestEvalOnDeviceRestores(t *testing.T) {
	train, test := testTask()
	net := testModel(10)
	cfg := quickCfg()
	cfg.Epochs = 2
	mustTrain(t, net, train, cfg)
	snap := net.Snapshot()
	dev := fault.DrawDeviceMap(tensor.NewRNG(5).Stream("d"), fault.ChenModel(), WeightTensors(net), 0.1)
	EvalOnDevice(bg, net, test, dev, 64)
	if string(net.Snapshot()) != string(snap) {
		t.Fatal("EvalOnDevice must restore weights")
	}
}

func TestADMMTrainingProducesSparseAccurateModel(t *testing.T) {
	train, test := testTask()
	net := testModel(11)
	mustTrain(t, net, train, quickCfg()) // pretrain

	admm := prune.NewADMM(net.WeightParams(), 0.5, 0.01)
	cfg := quickCfg()
	cfg.Epochs = 6
	cfg.ADMM = admm
	cfg.ADMMInterval = 2
	mustTrain(t, net, train, cfg)
	admm.Finalize()

	if sp := net.Sparsity(); math.Abs(sp-0.5) > 0.05 {
		t.Fatalf("sparsity %.3f, want ≈0.5", sp)
	}
	// Fine-tune with masks fixed.
	ft := quickCfg()
	ft.Epochs = 4
	mustTrain(t, net, train, ft)
	if sp := net.Sparsity(); math.Abs(sp-0.5) > 0.05 {
		t.Fatalf("fine-tuning must preserve sparsity, got %.3f", sp)
	}
	if acc := metrics.Evaluate(net, test, 64); acc < 0.6 {
		t.Fatalf("pruned model accuracy %.3f too low", acc)
	}
}

func TestStabilityReportOrdering(t *testing.T) {
	train, test := testTask()
	base := testModel(12)
	mustTrain(t, base, train, quickCfg())
	accPre := EvalClean(base, test, 64)

	ev := DefectEval{Runs: 20, Batch: 64, Seed: 11}
	rates := []float64{0.1, 0.2}
	repBase, err := Stability(bg, base, test, accPre, rates, ev)
	if err != nil {
		t.Fatal(err)
	}

	ft := testModel(12)
	if err := ft.Restore(base.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ftCfg := quickCfg()
	ftCfg.Epochs = 12
	if _, err := OneShotFT(bg, ft, train, ftCfg, 0.2); err != nil {
		t.Fatal(err)
	}
	repFT, err := Stability(bg, ft, test, accPre, rates, ev)
	if err != nil {
		t.Fatal(err)
	}

	for i := range rates {
		if repFT.AccDefect[i] <= repBase.AccDefect[i] {
			t.Fatalf("FT defect acc should dominate at rate %v: %.3f vs %.3f",
				rates[i], repFT.AccDefect[i], repBase.AccDefect[i])
		}
	}
	// SS comparisons are meaningful at moderate rates (the paper uses
	// 0.01/0.02); at extreme rates both models are deep in collapse.
	if !math.IsInf(repFT.SS[0], 1) && !math.IsInf(repBase.SS[0], 1) &&
		repFT.SS[0] <= repBase.SS[0] {
		t.Fatalf("FT SS should dominate at rate %v: %.3f vs %.3f",
			rates[0], repFT.SS[0], repBase.SS[0])
	}
	if len(repFT.SS) != 2 || len(repFT.AccDefect) != 2 {
		t.Fatal("report shape wrong")
	}
}

func TestPerBatchResamplingStillLearns(t *testing.T) {
	train, test := testTask()
	net := testModel(13)
	cfg := quickCfg()
	cfg.PerBatch = true
	if _, err := OneShotFT(bg, net, train, cfg, 0.05); err != nil {
		t.Fatal(err)
	}
	if acc := metrics.Evaluate(net, test, 64); acc < 0.55 {
		t.Fatalf("per-batch FT collapsed: %.3f", acc)
	}
}

func TestWeightTensorsMatchesWeightParams(t *testing.T) {
	net := testModel(14)
	ts := WeightTensors(net)
	ps := net.WeightParams()
	if len(ts) != len(ps) {
		t.Fatal("length mismatch")
	}
	for i := range ts {
		if ts[i] != ps[i].W {
			t.Fatal("WeightTensors must alias the live weight tensors")
		}
	}
}

func TestTrainEvalTracking(t *testing.T) {
	train, test := testTask()
	net := testModel(30)
	cfg := quickCfg()
	cfg.Epochs = 4
	cfg.EvalDS = test
	res := mustTrain(t, net, train, cfg)
	if res.BestEvalAcc <= 0 {
		t.Fatal("BestEvalAcc not tracked")
	}
	for _, st := range res.History {
		if st.EvalAcc < 0 || st.EvalAcc > 1 {
			t.Fatalf("EvalAcc out of range: %v", st.EvalAcc)
		}
	}
	best := 0.0
	for _, st := range res.History {
		if st.EvalAcc > best {
			best = st.EvalAcc
		}
	}
	if best != res.BestEvalAcc {
		t.Fatalf("BestEvalAcc %v != max history %v", res.BestEvalAcc, best)
	}
}

func TestTrainKeepBestRestoresBestWeights(t *testing.T) {
	train, test := testTask()
	net := testModel(31)
	cfg := quickCfg()
	cfg.Epochs = 6
	cfg.EvalDS = test
	cfg.KeepBest = true
	res := mustTrain(t, net, train, cfg)
	// The final network must score exactly the tracked best accuracy.
	if got := EvalClean(net, test, cfg.Batch); got != res.BestEvalAcc {
		t.Fatalf("restored accuracy %v != best %v", got, res.BestEvalAcc)
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{Epochs: 4, Batch: 8, LR: 0.1}.Normalize()
	if c.Schedule == nil {
		t.Fatal("Normalize must install the cosine schedule")
	}
	if c.ADMMInterval != 3 {
		t.Fatalf("ADMMInterval default %d, want 3", c.ADMMInterval)
	}
	if c.FaultModel != fault.ChenModel() {
		t.Fatalf("zero fault model must resolve to ChenModel, got %+v", c.FaultModel)
	}
	if c.Sink == nil {
		t.Fatal("Normalize must resolve a nil sink")
	}
}

func TestDefectEvalNormalizeDefaults(t *testing.T) {
	d := DefectEval{}.Normalize()
	if d.Runs != 10 || d.Batch != 64 {
		t.Fatalf("defaults wrong: %+v", d)
	}
	if d.Model != fault.ChenModel() {
		t.Fatalf("zero model must resolve to ChenModel, got %+v", d.Model)
	}
	if d.Workers < 1 {
		t.Fatalf("workers default %d", d.Workers)
	}
	if d.Sink == nil {
		t.Fatal("Normalize must resolve a nil sink")
	}
	// Explicit values pass through untouched.
	d = DefectEval{Runs: 3, Batch: 32, Workers: 2, Model: fault.Uniform()}.Normalize()
	if d.Runs != 3 || d.Batch != 32 || d.Workers != 2 || d.Model != fault.Uniform() {
		t.Fatalf("explicit values must pass through: %+v", d)
	}
}

// TestHalfZeroFaultModelPanics pins the IsZero/Validate contract: the
// zero model means "default", but an explicitly degenerate model (set
// but unusable) must fail loudly instead of silently becoming Chen.
func TestHalfZeroFaultModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative-ratio model must panic in Normalize")
		}
	}()
	DefectEval{Model: fault.NewModel(-1, 2)}.Normalize()
}
