package core

import (
	"math"
	"testing"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/prune"
	"github.com/ftpim/ftpim/internal/tensor"
)

// testTask returns a small, easily learnable task and a fresh model.
func testTask() (*data.Dataset, *data.Dataset) {
	cfg := data.SynthConfig{
		Classes: 4, TrainPer: 40, TestPer: 25,
		Channels: 3, Size: 8, Basis: 10,
		NoiseStd: 0.25, ShiftMax: 1, JitterStd: 0.1,
		Seed: 31,
	}
	return data.Generate(cfg)
}

func testModel(seed uint64) *nn.Network {
	return models.BuildSimpleCNN(models.SimpleCNNConfig{InChannels: 3, Width: 4, Classes: 4, Seed: seed})
}

func quickCfg() Config {
	return Config{
		Epochs: 8, Batch: 16, LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4,
		Aug:  data.Augment{Flip: true, ShiftMax: 1},
		Seed: 5,
	}
}

func TestTrainLearns(t *testing.T) {
	train, test := testTask()
	net := testModel(1)
	before := metrics.Evaluate(net, test, 64)
	res := Train(net, train, quickCfg())
	after := metrics.Evaluate(net, test, 64)
	if after < 0.7 {
		t.Fatalf("test accuracy %.3f after training (was %.3f) — did not learn", after, before)
	}
	if res.History[len(res.History)-1].Loss >= res.History[0].Loss {
		t.Fatal("loss did not decrease")
	}
	if res.FinalLoss() != res.History[len(res.History)-1].Loss {
		t.Fatal("FinalLoss accessor wrong")
	}
}

func TestTrainDeterministic(t *testing.T) {
	train, _ := testTask()
	cfg := quickCfg()
	cfg.Epochs = 3
	a, b := testModel(1), testModel(1)
	ra := Train(a, train, cfg)
	rb := Train(b, train, cfg)
	for i := range ra.History {
		if ra.History[i].Loss != rb.History[i].Loss {
			t.Fatal("same seed must reproduce the training trace exactly")
		}
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !pa[i].W.Equal(pb[i].W) {
			t.Fatal("weights diverged across identical runs")
		}
	}
}

func TestTrainBadConfigPanics(t *testing.T) {
	train, _ := testTask()
	for _, cfg := range []Config{
		{Epochs: 0, Batch: 8, LR: 0.1},
		{Epochs: 1, Batch: 0, LR: 0.1},
		{Epochs: 1, Batch: 8, LR: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", cfg)
				}
			}()
			Train(testModel(1), train, cfg)
		}()
	}
}

func TestFTTrainingLearnsUnderFaults(t *testing.T) {
	train, test := testTask()
	net := testModel(2)
	cfg := quickCfg()
	OneShotFT(net, train, cfg, 0.05)
	acc := metrics.Evaluate(net, test, 64)
	if acc < 0.6 {
		t.Fatalf("FT training collapsed: clean acc %.3f", acc)
	}
}

// TestFTBeatsBaselineUnderFaults is the paper's headline claim at unit
// scale: under a substantial fault rate, the FT-retrained model must be
// clearly more accurate than the plain pretrained model. Per Algorithm
// 1, FT training starts from a well-trained model.
func TestFTBeatsBaselineUnderFaults(t *testing.T) {
	train, test := testTask()
	psaTest := 0.2
	ev := DefectEval{Runs: 10, Batch: 64, Seed: 77}

	base := testModel(3)
	Train(base, train, quickCfg())
	baseDefect := EvalDefect(base, test, psaTest, ev).Mean

	ft := testModel(3)
	if err := ft.Restore(base.Snapshot()); err != nil {
		t.Fatal(err)
	}
	OneShotFT(ft, train, quickCfg(), 0.2)
	ftDefect := EvalDefect(ft, test, psaTest, ev).Mean

	if ftDefect <= baseDefect+0.05 {
		t.Fatalf("FT model (%.3f) should clearly beat baseline (%.3f) under %.0f%% faults",
			ftDefect, baseDefect, psaTest*100)
	}
}

func TestEvalDefectRestoresWeights(t *testing.T) {
	train, test := testTask()
	net := testModel(4)
	cfg := quickCfg()
	cfg.Epochs = 2
	Train(net, train, cfg)
	snap := net.Snapshot()
	EvalDefect(net, test, 0.1, DefectEval{Runs: 3, Batch: 64, Seed: 9})
	after := net.Snapshot()
	if string(snap) != string(after) {
		t.Fatal("EvalDefect must leave weights untouched")
	}
}

func TestEvalDefectZeroRateEqualsClean(t *testing.T) {
	train, test := testTask()
	net := testModel(5)
	cfg := quickCfg()
	cfg.Epochs = 2
	Train(net, train, cfg)
	clean := EvalClean(net, test, 64)
	s := EvalDefect(net, test, 0, DefectEval{Runs: 5, Batch: 64})
	if s.Mean != clean || s.N != 1 || s.Std != 0 {
		t.Fatalf("zero-rate defect eval should be one clean pass: %+v vs %v", s, clean)
	}
}

func TestEvalDefectDegradesWithRate(t *testing.T) {
	train, test := testTask()
	net := testModel(6)
	Train(net, train, quickCfg())
	ev := DefectEval{Runs: 6, Batch: 64, Seed: 3}
	low := EvalDefect(net, test, 0.005, ev).Mean
	high := EvalDefect(net, test, 0.3, ev).Mean
	if high >= low {
		t.Fatalf("accuracy should degrade with fault rate: %.3f @0.005 vs %.3f @0.3", low, high)
	}
}

func TestEvalDefectSweep(t *testing.T) {
	train, test := testTask()
	net := testModel(7)
	cfg := quickCfg()
	cfg.Epochs = 2
	Train(net, train, cfg)
	rates := []float64{0, 0.01, 0.2}
	sums := EvalDefectSweep(net, test, rates, DefectEval{Runs: 3, Batch: 64})
	if len(sums) != 3 {
		t.Fatal("sweep length mismatch")
	}
	if sums[0].Mean <= sums[2].Mean {
		t.Fatalf("sweep should degrade: %v", sums)
	}
}

func TestLadder(t *testing.T) {
	l := Ladder(0.05, 10)
	want := []float64{0.005, 0.01, 0.02, 0.05}
	if len(l) != len(want) {
		t.Fatalf("ladder %v", l)
	}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("ladder %v want %v", l, want)
		}
	}
	// maxRungs truncation keeps the rungs nearest the target.
	l = Ladder(0.1, 3)
	want = []float64{0.02, 0.05, 0.1}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("truncated ladder %v want %v", l, want)
		}
	}
	// Non-candidate target still ends the ladder.
	l = Ladder(0.03, 3)
	if l[len(l)-1] != 0.03 {
		t.Fatalf("ladder must end at target: %v", l)
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatalf("ladder not ascending: %v", l)
		}
	}
}

func TestProgressiveFTHistoryAndLearning(t *testing.T) {
	train, test := testTask()
	net := testModel(8)
	cfg := quickCfg()
	res := ProgressiveFT(net, train, cfg, []float64{0.01, 0.05}, 3)
	if len(res.History) != 6 {
		t.Fatalf("history length %d, want 6", len(res.History))
	}
	if res.History[0].FaultRate != 0.01 || res.History[5].FaultRate != 0.05 {
		t.Fatal("stage rates wrong")
	}
	for i, st := range res.History {
		if st.Epoch != i {
			t.Fatal("epoch renumbering wrong")
		}
	}
	if acc := metrics.Evaluate(net, test, 64); acc < 0.55 {
		t.Fatalf("progressive FT collapsed: %.3f", acc)
	}
}

func TestProgressiveEmptyLadderPanics(t *testing.T) {
	train, _ := testTask()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ProgressiveFT(testModel(1), train, quickCfg(), nil, 1)
}

func TestFaultAwareRetrainHelpsOwnDeviceOnly(t *testing.T) {
	train, test := testTask()
	net := testModel(9)
	Train(net, train, quickCfg())

	rng := tensor.NewRNG(123)
	weights := WeightTensors(net)
	dev := fault.DrawDeviceMap(rng.Stream("devA"), fault.ChenModel(), weights, 0.08)

	before := EvalOnDevice(net, test, dev, 64)
	cfg := quickCfg()
	cfg.Epochs = 6
	FaultAwareRetrain(net, train, cfg, dev)
	after := EvalOnDevice(net, test, dev, 64)
	if after <= before {
		t.Fatalf("device-specific retraining should help its own device: %.3f -> %.3f", before, after)
	}
}

func TestEvalOnDeviceRestores(t *testing.T) {
	train, test := testTask()
	net := testModel(10)
	cfg := quickCfg()
	cfg.Epochs = 2
	Train(net, train, cfg)
	snap := net.Snapshot()
	dev := fault.DrawDeviceMap(tensor.NewRNG(5).Stream("d"), fault.ChenModel(), WeightTensors(net), 0.1)
	EvalOnDevice(net, test, dev, 64)
	if string(net.Snapshot()) != string(snap) {
		t.Fatal("EvalOnDevice must restore weights")
	}
}

func TestADMMTrainingProducesSparseAccurateModel(t *testing.T) {
	train, test := testTask()
	net := testModel(11)
	Train(net, train, quickCfg()) // pretrain

	admm := prune.NewADMM(net.WeightParams(), 0.5, 0.01)
	cfg := quickCfg()
	cfg.Epochs = 6
	cfg.ADMM = admm
	cfg.ADMMInterval = 2
	Train(net, train, cfg)
	admm.Finalize()

	if sp := net.Sparsity(); math.Abs(sp-0.5) > 0.05 {
		t.Fatalf("sparsity %.3f, want ≈0.5", sp)
	}
	// Fine-tune with masks fixed.
	ft := quickCfg()
	ft.Epochs = 4
	Train(net, train, ft)
	if sp := net.Sparsity(); math.Abs(sp-0.5) > 0.05 {
		t.Fatalf("fine-tuning must preserve sparsity, got %.3f", sp)
	}
	if acc := metrics.Evaluate(net, test, 64); acc < 0.6 {
		t.Fatalf("pruned model accuracy %.3f too low", acc)
	}
}

func TestStabilityReportOrdering(t *testing.T) {
	train, test := testTask()
	base := testModel(12)
	Train(base, train, quickCfg())
	accPre := EvalClean(base, test, 64)

	ev := DefectEval{Runs: 20, Batch: 64, Seed: 11}
	rates := []float64{0.1, 0.2}
	repBase := Stability(base, test, accPre, rates, ev)

	ft := testModel(12)
	if err := ft.Restore(base.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ftCfg := quickCfg()
	ftCfg.Epochs = 12
	OneShotFT(ft, train, ftCfg, 0.2)
	repFT := Stability(ft, test, accPre, rates, ev)

	for i := range rates {
		if repFT.AccDefect[i] <= repBase.AccDefect[i] {
			t.Fatalf("FT defect acc should dominate at rate %v: %.3f vs %.3f",
				rates[i], repFT.AccDefect[i], repBase.AccDefect[i])
		}
	}
	// SS comparisons are meaningful at moderate rates (the paper uses
	// 0.01/0.02); at extreme rates both models are deep in collapse.
	if !math.IsInf(repFT.SS[0], 1) && !math.IsInf(repBase.SS[0], 1) &&
		repFT.SS[0] <= repBase.SS[0] {
		t.Fatalf("FT SS should dominate at rate %v: %.3f vs %.3f",
			rates[0], repFT.SS[0], repBase.SS[0])
	}
	if len(repFT.SS) != 2 || len(repFT.AccDefect) != 2 {
		t.Fatal("report shape wrong")
	}
}

func TestPerBatchResamplingStillLearns(t *testing.T) {
	train, test := testTask()
	net := testModel(13)
	cfg := quickCfg()
	cfg.PerBatch = true
	OneShotFT(net, train, cfg, 0.05)
	if acc := metrics.Evaluate(net, test, 64); acc < 0.55 {
		t.Fatalf("per-batch FT collapsed: %.3f", acc)
	}
}

func TestWeightTensorsMatchesWeightParams(t *testing.T) {
	net := testModel(14)
	ts := WeightTensors(net)
	ps := net.WeightParams()
	if len(ts) != len(ps) {
		t.Fatal("length mismatch")
	}
	for i := range ts {
		if ts[i] != ps[i].W {
			t.Fatal("WeightTensors must alias the live weight tensors")
		}
	}
}

func TestTrainEvalTracking(t *testing.T) {
	train, test := testTask()
	net := testModel(30)
	cfg := quickCfg()
	cfg.Epochs = 4
	cfg.EvalDS = test
	res := Train(net, train, cfg)
	if res.BestEvalAcc <= 0 {
		t.Fatal("BestEvalAcc not tracked")
	}
	for _, st := range res.History {
		if st.EvalAcc < 0 || st.EvalAcc > 1 {
			t.Fatalf("EvalAcc out of range: %v", st.EvalAcc)
		}
	}
	best := 0.0
	for _, st := range res.History {
		if st.EvalAcc > best {
			best = st.EvalAcc
		}
	}
	if best != res.BestEvalAcc {
		t.Fatalf("BestEvalAcc %v != max history %v", res.BestEvalAcc, best)
	}
}

func TestTrainKeepBestRestoresBestWeights(t *testing.T) {
	train, test := testTask()
	net := testModel(31)
	cfg := quickCfg()
	cfg.Epochs = 6
	cfg.EvalDS = test
	cfg.KeepBest = true
	res := Train(net, train, cfg)
	// The final network must score exactly the tracked best accuracy.
	if got := EvalClean(net, test, cfg.Batch); got != res.BestEvalAcc {
		t.Fatalf("restored accuracy %v != best %v", got, res.BestEvalAcc)
	}
}
