package core

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// CheckNumerics validates a declared numerics tier ("", "exact" or
// "fast") against the process-wide active tier. The tier itself is a
// process-global knob (tensor.SetNumerics, the ftpim -numerics flag)
// set once at startup; Config.Numerics / DefectEval.Numerics do not
// switch it — they declare what the run requires, and the Train/Eval
// entry points fail fast on a mismatch so a run whose outputs feed a
// byte-identity contract can never silently execute under the wrong
// tier. Empty declares nothing and always passes.
func CheckNumerics(declared string) error {
	if declared == "" {
		return nil
	}
	want, err := tensor.ParseNumerics(declared)
	if err != nil {
		return fmt.Errorf("core: invalid Numerics: %w", err)
	}
	if got := tensor.ActiveNumerics(); got != want {
		return fmt.Errorf("core: run pinned to %s numerics but the process tier is %s (set via tensor.SetNumerics or ftpim -numerics)", want, got)
	}
	return nil
}
