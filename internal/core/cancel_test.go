// Cancellation suite for the context-aware core API: every entry point
// must abort at the next batch / Monte-Carlo run boundary, leave the
// live network's weights exactly as they were, and report ctx's error.
// Lives in the external test package alongside the determinism suite so
// it exercises the public API surface only.
package core_test

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/optim"
)

// smokeTrainSet returns the smoke preset's training split.
func smokeTrainSet(t *testing.T) *data.Dataset {
	t.Helper()
	train, _ := data.Generate(experiments.ScaleFor("smoke").C10)
	return train
}

// cancelAfter is a Sink that cancels a context once it has seen n
// events of the given kind. Emit may be called concurrently from
// worker goroutines, so the counter is atomic.
type cancelAfter struct {
	kind   obs.Kind
	n      int64
	seen   atomic.Int64
	cancel context.CancelFunc
}

func (c *cancelAfter) Enabled() bool { return true }

func (c *cancelAfter) Emit(e obs.Event) {
	if e.Kind == c.kind && c.seen.Add(1) == c.n {
		c.cancel()
	}
}

// TestEvalDefectPreCanceled checks that an already-canceled context
// returns immediately with the zero Summary at both the serial and the
// parallel path, without touching the network.
func TestEvalDefectPreCanceled(t *testing.T) {
	net, test := presetFixture(t, "smoke")
	snap := net.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 8} {
		s, err := core.EvalDefect(ctx, net, test, 0.05, core.DefectEval{Runs: 4, Batch: 64, Seed: 1, Workers: w})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", w, err)
		}
		if !reflect.DeepEqual(s, metrics.Summary{}) {
			t.Fatalf("workers=%d: want zero Summary on cancellation, got %+v", w, s)
		}
	}
	if string(net.Snapshot()) != string(snap) {
		t.Fatal("canceled EvalDefect must leave weights untouched")
	}
}

// TestEvalDefectSweepCancelMidway cancels from inside the sink after
// the first completed rate and checks the sweep returns promptly with
// exactly the completed prefix and the weights restored.
func TestEvalDefectSweepCancelMidway(t *testing.T) {
	for _, workers := range []int{1, 8} {
		net, test := presetFixture(t, "smoke")
		snap := net.Snapshot()
		rates := []float64{0.01, 0.02, 0.05, 0.1}

		ctx, cancel := context.WithCancel(context.Background())
		sink := &cancelAfter{kind: obs.KindEvalRate, n: 1, cancel: cancel}
		cfg := core.DefectEval{Runs: 3, Batch: 64, Seed: 7, Workers: workers, Sink: sink}
		got, err := core.EvalDefectSweep(ctx, net, test, rates, cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if len(got) == 0 || len(got) >= len(rates) {
			t.Fatalf("workers=%d: want a strict prefix of completed rates, got %d/%d", workers, len(got), len(rates))
		}
		if string(net.Snapshot()) != string(snap) {
			t.Fatalf("workers=%d: canceled sweep must restore weights", workers)
		}

		// The completed prefix must match an uncanceled sweep bit for bit.
		cfg.Sink = nil
		full, err := core.EvalDefectSweep(ctxbg, net, test, rates, cfg)
		if err != nil {
			t.Fatalf("EvalDefectSweep: %v", err)
		}
		if !reflect.DeepEqual(got, full[:len(got)]) {
			t.Fatalf("workers=%d: canceled prefix diverges from full sweep", workers)
		}
	}
}

// TestTrainCancelMidway cancels after the first epoch's event and
// checks Train returns the partial history with ctx's error, leaving
// the network with the weights of the completed epochs (no in-flight
// lesion).
func TestTrainCancelMidway(t *testing.T) {
	net, _ := presetFixture(t, "smoke")
	s := smokeTrainSet(t)

	ctx, cancel := context.WithCancel(context.Background())
	sink := &cancelAfter{kind: obs.KindTrainEpoch, n: 1, cancel: cancel}
	// A constant schedule makes "1 epoch of a 6-epoch run" bit-identical
	// to a fresh 1-epoch run (cosine would anneal differently).
	res, err := core.Train(ctx, net, s, core.Config{
		Epochs: 6, Batch: 16, LR: 0.05, Momentum: 0.9, Seed: 3,
		Schedule: optim.Constant(0.05), Sink: sink,
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || len(res.History) != 1 {
		t.Fatalf("want the one completed epoch in the partial Result, got %+v", res)
	}
	// The returned weights must be usable: accuracy after cancellation
	// must match a fresh 1-epoch run bit for bit (no in-flight lesion).
	ref, _ := presetFixture(t, "smoke")
	if _, err := core.Train(ctxbg, ref, s, core.Config{
		Epochs: 1, Batch: 16, LR: 0.05, Momentum: 0.9, Seed: 3,
		Schedule: optim.Constant(0.05),
	}); err != nil {
		t.Fatalf("reference Train: %v", err)
	}
	accGot := core.EvalClean(net, s, 64)
	accRef := core.EvalClean(ref, s, 64)
	if accGot != accRef {
		t.Fatalf("canceled Train diverged from 1-epoch run: %.6f vs %.6f", accGot, accRef)
	}
}

// TestProgressiveFTCancelMidway cancels after the first ladder stage
// announcement and checks the partial history is returned.
func TestProgressiveFTCancelMidway(t *testing.T) {
	net, _ := presetFixture(t, "smoke")
	s := smokeTrainSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	sink := &cancelAfter{kind: obs.KindFTStage, n: 2, cancel: cancel}
	res, err := core.ProgressiveFT(ctx, net, s, core.Config{
		Epochs: 2, Batch: 16, LR: 0.02, Momentum: 0.9, Seed: 5, Sink: sink,
	}, []float64{0.01, 0.05, 0.1}, 1)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || len(res.History) == 0 || len(res.History) >= 3 {
		t.Fatalf("want a strict prefix of stage history, got %+v", res)
	}
}

// TestEvalDefectSinkEquivalence checks the "events observe, never
// perturb" contract: summaries with the Null sink and with a recording
// sink are bit-identical at the serial and parallel paths, and the
// recorder sees exactly one eval.run event per Monte-Carlo draw plus
// one timing event.
func TestEvalDefectSinkEquivalence(t *testing.T) {
	net, test := presetFixture(t, "smoke")
	const runs = 6
	for _, w := range []int{1, 8} {
		base := core.DefectEval{Runs: runs, Batch: 64, Seed: 11, Workers: w}
		silent := evalD(t, net, test, 0.05, base)

		rec := &obs.Recorder{}
		cfg := base
		cfg.Sink = rec
		observed := evalD(t, net, test, 0.05, cfg)

		if !reflect.DeepEqual(silent, observed) {
			t.Fatalf("workers=%d: sink perturbed the summary: %+v vs %+v", w, silent, observed)
		}
		if got := rec.Count(obs.KindEvalRun); got != runs {
			t.Fatalf("workers=%d: want %d eval.run events, got %d", w, runs, got)
		}
		if got := rec.Count(obs.KindTiming); got != 1 {
			t.Fatalf("workers=%d: want 1 timing event, got %d", w, got)
		}
		// Every run ordinal 1..runs appears exactly once regardless of
		// scheduling order.
		seen := map[int]bool{}
		for _, e := range rec.Events() {
			if e.Kind == obs.KindEvalRun {
				if seen[e.Run] {
					t.Fatalf("workers=%d: run %d reported twice", w, e.Run)
				}
				seen[e.Run] = true
			}
		}
		for r := 1; r <= runs; r++ {
			if !seen[r] {
				t.Fatalf("workers=%d: run %d never reported", w, r)
			}
		}
	}
}
