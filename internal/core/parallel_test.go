// Determinism-equivalence suite for the parallel defect-evaluation
// engine. Lives in an external test package so it can pull preset
// definitions from internal/experiments without an import cycle.
package core_test

import (
	"context"
	"reflect"
	"testing"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/experiments"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// ctxbg is the context for tests that never cancel.
var ctxbg = context.Background()

// evalD unwraps EvalDefect under a background context.
func evalD(t *testing.T, net *nn.Network, ds *data.Dataset, psa float64, cfg core.DefectEval) metrics.Summary {
	t.Helper()
	s, err := core.EvalDefect(ctxbg, net, ds, psa, cfg)
	if err != nil {
		t.Fatalf("EvalDefect: %v", err)
	}
	return s
}

// presetFixture builds a preset-scale model and test set without
// training: deterministic He-initialized weights are exactly as
// sensitive to scheduling bugs as trained ones, and keep the suite
// fast enough for -race CI.
func presetFixture(t *testing.T, preset string) (*nn.Network, *data.Dataset) {
	t.Helper()
	s := experiments.ScaleFor(preset)
	net := models.BuildResNet(models.ResNetConfig{
		Depth: s.DepthC10, Classes: s.C10.Classes, InChannels: 3,
		WidthMult: s.Width, Seed: s.Seed,
	})
	_, test := data.Generate(s.C10)
	return net, test
}

// TestEvalDefectDeterminism checks that EvalDefect produces exactly
// equal Summary values (bitwise float equality) at every worker count,
// on both the smoke and quick presets.
func TestEvalDefectDeterminism(t *testing.T) {
	for _, preset := range []string{"smoke", "quick"} {
		t.Run(preset, func(t *testing.T) {
			net, test := presetFixture(t, preset)
			base := core.DefectEval{Runs: 6, Batch: 32, Seed: 42, Workers: 1}
			for _, psa := range []float64{0.005, 0.05, 0.2} {
				want := evalD(t, net, test, psa, base)
				for _, w := range []int{2, 3, 8} {
					cfg := base
					cfg.Workers = w
					got := evalD(t, net, test, psa, cfg)
					if got != want {
						t.Fatalf("psa=%g workers=%d: %+v != serial %+v", psa, w, got, want)
					}
				}
			}
		})
	}
}

// TestEvalDefectSweepDeterminism checks the whole Table-I sweep is
// bit-identical between the serial path and an 8-worker pool, and that
// the live network's weights are untouched afterwards.
func TestEvalDefectSweepDeterminism(t *testing.T) {
	for _, preset := range []string{"smoke", "quick"} {
		t.Run(preset, func(t *testing.T) {
			s := experiments.ScaleFor(preset)
			net, test := presetFixture(t, preset)
			before := net.Snapshot()

			serial := core.DefectEval{Runs: s.DefectRuns, Batch: 32, Seed: s.Seed * 31, Workers: 1}
			parallel := serial
			parallel.Workers = 8

			want, err := core.EvalDefectSweep(ctxbg, net, test, s.TestRates, serial)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.EvalDefectSweep(ctxbg, net, test, s.TestRates, parallel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sweep differs:\nserial   %+v\nparallel %+v", want, got)
			}
			after := net.Snapshot()
			if len(before) != len(after) {
				t.Fatal("snapshot size changed")
			}
			for i := range before {
				if before[i] != after[i] {
					t.Fatal("EvalDefectSweep mutated the live network")
				}
			}
		})
	}
}

// TestStabilityDeterminism checks Stability reports match exactly
// between worker counts on both presets.
func TestStabilityDeterminism(t *testing.T) {
	for _, preset := range []string{"smoke", "quick"} {
		t.Run(preset, func(t *testing.T) {
			s := experiments.ScaleFor(preset)
			net, test := presetFixture(t, preset)
			accPre := core.EvalClean(net, test, 32)

			serial := core.DefectEval{Runs: 5, Batch: 32, Seed: 7, Workers: 1}
			parallel := serial
			parallel.Workers = 8
			want, err := core.Stability(ctxbg, net, test, accPre, s.SSRates, serial)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.Stability(ctxbg, net, test, accPre, s.SSRates, parallel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("stability differs:\nserial   %+v\nparallel %+v", want, got)
			}
		})
	}
}

// TestEvalDefectWorkersDefault checks Workers: 0 (all cores) matches
// the serial reference too — the default must not change results.
func TestEvalDefectWorkersDefault(t *testing.T) {
	net, test := presetFixture(t, "smoke")
	serial := evalD(t, net, test, 0.05, core.DefectEval{Runs: 4, Batch: 16, Seed: 9, Workers: 1})
	auto := evalD(t, net, test, 0.05, core.DefectEval{Runs: 4, Batch: 16, Seed: 9})
	if serial != auto {
		t.Fatalf("Workers=0 (%+v) differs from serial (%+v)", auto, serial)
	}
}

// TestEvalDefectKernelWorkersInvariance drives the *kernel*-level knob
// together with the Monte-Carlo pool: the sharded matmul/conv paths
// inside Evaluate must not perturb results either.
func TestEvalDefectKernelWorkersInvariance(t *testing.T) {
	net, test := presetFixture(t, "smoke")
	cfg := core.DefectEval{Runs: 4, Batch: 16, Seed: 3, Workers: 2}

	old := tensor.SetWorkers(1)
	want := evalD(t, net, test, 0.02, cfg)
	tensor.SetWorkers(8)
	got := evalD(t, net, test, 0.02, cfg)
	tensor.SetWorkers(old)
	if got != want {
		t.Fatalf("kernel workers changed results: %+v != %+v", got, want)
	}
}
