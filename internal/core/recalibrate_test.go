package core

import (
	"math"
	"testing"

	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
)

func TestRecalibrateBNRestoresCleanStats(t *testing.T) {
	train, test := testTask()
	net := testModel(20)
	mustTrain(t, net, train, quickCfg())
	cleanAcc := metrics.Evaluate(net, test, 64)

	// Pollute the BN running statistics.
	for _, bn := range net.BatchNorms() {
		bn.RunningMean.Fill(3)
		bn.RunningVar.Fill(9)
	}
	polluted := metrics.Evaluate(net, test, 64)
	if polluted >= cleanAcc {
		t.Skip("pollution did not hurt; cannot test recovery")
	}
	RecalibrateBN(bg, net, train, 32)
	recovered := metrics.Evaluate(net, test, 64)
	if recovered < cleanAcc-0.1 {
		t.Fatalf("recalibration did not recover accuracy: %.3f -> %.3f -> %.3f",
			cleanAcc, polluted, recovered)
	}
}

func TestRecalibrateBNPreservesMomentum(t *testing.T) {
	train, _ := testTask()
	net := testModel(21)
	cfg := quickCfg()
	cfg.Epochs = 1
	mustTrain(t, net, train, cfg)
	want := net.BatchNorms()[0].Momentum
	RecalibrateBN(bg, net, train, 32)
	if got := net.BatchNorms()[0].Momentum; got != want {
		t.Fatalf("momentum clobbered: %v -> %v", want, got)
	}
}

func TestRecalibrateBNDoesNotTouchWeights(t *testing.T) {
	train, _ := testTask()
	net := testModel(22)
	cfg := quickCfg()
	cfg.Epochs = 1
	mustTrain(t, net, train, cfg)
	w0 := net.Params()[0].W.Clone()
	RecalibrateBN(bg, net, train, 32)
	if !net.Params()[0].W.Equal(w0) {
		t.Fatal("recalibration must not change weights")
	}
}

func TestRecalibrateBNNoBNLayersSafe(t *testing.T) {
	train, _ := testTask()
	net := mlpNet()
	RecalibrateBN(bg, net, train, 32) // must not panic
}

func TestRecalibrateBNStatsAreBatchAverages(t *testing.T) {
	// After recalibration, eval-mode outputs on the training set should
	// be near zero mean per channel (stats match the data).
	train, _ := testTask()
	net := testModel(23)
	mustTrain(t, net, train, quickCfg())
	RecalibrateBN(bg, net, train, 32)
	bn := net.BatchNorms()[0]
	for c := 0; c < bn.C; c++ {
		if v := bn.RunningVar.At(c); v <= 0 || math.IsNaN(float64(v)) {
			t.Fatalf("bad recalibrated variance %v", v)
		}
	}
}

func mlpNet() *nn.Network {
	return models.BuildMLP(models.MLPConfig{In: 3 * 8 * 8, Hidden: []int{8}, Classes: 4, Seed: 1})
}
