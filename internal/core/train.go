// Package core implements the paper's contribution: stochastic
// fault-tolerant (FT) training of DNNs for ReRAM-based
// processing-in-memory accelerators.
//
// The key mechanism (Algorithm 1 of the paper) fuses the model weights
// with freshly sampled stuck-at faults during retraining. Each epoch a
// fault pattern with rate Psa is drawn; every mini-batch runs forward
// and backward through the faulted weights, and the resulting gradient
// is applied to the clean weights (straight-through). Two schemes are
// provided: one-shot training at a fixed target rate Psa^T, and
// progressive training up an ascending ladder of rates ending at Psa^T.
//
// The package also provides the defect evaluation protocol (average
// accuracy over repeated random fault injections) and the
// device-specific fault-aware retraining baseline the paper compares
// against.
//
// Every long-running entry point (Train, OneShotFT, ProgressiveFT,
// EvalDefect, EvalDefectSweep, Stability) takes a context.Context and
// an observability sink: cancelling the context aborts the run at the
// next batch or Monte-Carlo run boundary — weights are never left
// mid-mutation — and structured run events stream to the configured
// obs.Sink. Events observe, never perturb: results with any sink are
// bit-identical to results with none, at every worker count.
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/ftpim/ftpim/internal/ckpt"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/optim"
	"github.com/ftpim/ftpim/internal/prune"
	"github.com/ftpim/ftpim/internal/tensor"
)

// Config parameterizes one training run (clean, stochastic-FT, ADMM or
// device-pinned).
type Config struct {
	Epochs      int
	Batch       int
	LR          float64
	Momentum    float64
	WeightDecay float64
	Schedule    optim.Schedule // nil → cosine from LR over Epochs
	Aug         data.Augment
	Seed        uint64

	// Numerics, when non-empty ("exact" or "fast"), declares the
	// kernel numerics tier this run's results are pinned to. Train
	// fails fast when the process-wide tier (tensor.SetNumerics /
	// ftpim -numerics) differs, instead of silently producing results
	// under the wrong tier. Empty follows the process tier — correct
	// for everything except runs whose outputs feed byte-identity
	// contracts, which should pin "exact".
	Numerics string

	// FaultRate is the stochastic training stuck-at rate Psa. Zero
	// disables fault injection (plain training).
	FaultRate  float64
	FaultModel fault.Model // zero value → fault.ChenModel()
	// Scenario selects the training fault distribution. Nil resolves
	// to the persistent stuck-at scenario over FaultModel, preserving
	// legacy behavior bit for bit; when both are set, Scenario wins. A
	// transient scenario forces PerBatch (its faults are momentary by
	// definition).
	Scenario fault.Scenario
	// PerBatch resamples the fault pattern every mini-batch instead of
	// every epoch (Algorithm 1 resamples per epoch; per-batch is the
	// A2 ablation).
	PerBatch bool
	// Pinned, when set, trains against one fixed device defect map —
	// the device-specific fault-aware retraining baseline [5].
	// FaultRate is ignored.
	Pinned *fault.DeviceMap

	// ADMM, when set, adds the augmented-Lagrangian pruning penalty and
	// updates the duals every ADMMInterval epochs (default 3).
	ADMM         *prune.ADMM
	ADMMInterval int

	// EvalDS, when set, is evaluated (clean, inference mode) after
	// every epoch; with KeepBest the weights giving the best EvalDS
	// accuracy are restored at the end of Train — a standard guard
	// against late-schedule regressions, useful for short FT budgets.
	EvalDS   *data.Dataset
	KeepBest bool

	// Sink receives structured run events — train.epoch per epoch,
	// ft.stage per progressive rung, timing at the end (nil → obs.Null).
	// Events observe the run and never perturb its RNG or float
	// streams, so results are identical with any sink attached.
	Sink obs.Sink

	// Ckpt, when set, makes the run crash-safe: the full training state
	// (weights, masks, BN stats, SGD velocity, ADMM duals, shuffle-RNG
	// cursor, epoch history) is snapshotted at epoch boundaries through
	// this checkpoint run, and — when the run was created resumable — the
	// newest intact snapshot is restored on entry, skipping the already-
	// completed epochs. Checkpoints never perturb the run: the resumed
	// final weights and EpochStats are bit-identical to an uninterrupted
	// run's, at every worker count. Nil disables checkpointing with zero
	// cost on the training hot path.
	Ckpt *ckpt.Run
	// CkptEvery is the number of epochs between checkpoint writes
	// (<= 0 → 1). The final epoch of the run and a context cancellation
	// always flush the last completed boundary regardless of interval.
	CkptEvery int

	// ckptStage tags checkpoints with the multi-stage position of this
	// Train call (progressive-FT rung index); ckptPrefix is the
	// cumulative history of completed earlier stages, round-tripped
	// through checkpoints so a resumed ladder reports its full trace.
	// Both are managed by ProgressiveFT.
	ckptStage  int
	ckptPrefix []EpochStats
}

// Normalize returns cfg with every optional zero-valued field resolved
// to its documented default:
//
//   - Schedule nil → cosine annealing from LR over Epochs
//   - ADMMInterval <= 0 → 3
//   - FaultModel zero value → fault.ChenModel() (an explicitly set but
//     degenerate model panics loudly instead of being remapped)
//   - Scenario nil → stuck-at scenario over the resolved FaultModel
//     (an explicitly set but invalid scenario panics, matching
//     FaultModel); a transient scenario sets PerBatch
//   - Sink nil → obs.Null
//
// Train applies Normalize internally; callers only need it to inspect
// the effective configuration. Required fields (Epochs, Batch, LR) are
// not defaulted — Train panics when they are invalid.
func (c Config) Normalize() Config {
	if c.Schedule == nil {
		c.Schedule = optim.NewCosine(c.LR, c.Epochs)
	}
	if c.ADMMInterval <= 0 {
		c.ADMMInterval = 3
	}
	c.FaultModel = c.model()
	c.Scenario = c.scenario()
	if c.Scenario.Transient() {
		c.PerBatch = true
	}
	c.Sink = obs.Or(c.Sink)
	return c
}

// scenario resolves the effective training fault scenario, mirroring
// DefectEval.scenario.
func (c Config) scenario() fault.Scenario {
	if c.Scenario == nil {
		return fault.StuckAt(c.model())
	}
	if err := c.Scenario.Validate(); err != nil {
		panic("core: invalid Config.Scenario: " + err.Error())
	}
	return c.Scenario
}

// model resolves the effective fault model: the zero value means
// "unset" and yields the paper's ChenModel; an explicitly set model is
// validated so a degenerate choice fails loudly here rather than
// deep inside an injection pass.
func (c Config) model() fault.Model {
	if c.FaultModel.IsZero() {
		return fault.ChenModel()
	}
	if err := c.FaultModel.Validate(); err != nil {
		panic("core: invalid Config.FaultModel: " + err.Error())
	}
	return c.FaultModel
}

// EpochStats records one epoch of training.
type EpochStats struct {
	Epoch     int
	LR        float64
	Loss      float64 // mean batch loss
	TrainAcc  float64 // accuracy on (augmented, possibly faulted) batches
	EvalAcc   float64 // clean accuracy on Config.EvalDS (0 when unset)
	FaultRate float64 // Psa used this epoch
}

// Result is a training run's trace.
type Result struct {
	History []EpochStats
	// BestEvalAcc and BestEpoch are set when Config.EvalDS is used.
	BestEvalAcc float64
	BestEpoch   int
}

// FinalLoss returns the last epoch's mean loss (0 for an empty run).
func (r *Result) FinalLoss() float64 {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[len(r.History)-1].Loss
}

// WeightTensors returns the crossbar-mapped weight tensors of a
// network — the fault-injection targets.
func WeightTensors(net *nn.Network) []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, p := range net.WeightParams() {
		ts = append(ts, p.W)
	}
	return ts
}

// Train runs the configured training loop on net. It implements plain
// training (FaultRate 0), one-shot stochastic fault-tolerant training
// (FaultRate > 0), device-pinned retraining (Pinned) and ADMM-penalized
// training, which compose freely.
//
// Cancelling ctx aborts at the next mini-batch boundary — any injected
// fault pattern has already been undone at that point, so the weights
// hold a consistent (partially trained) state — and Train returns the
// partial Result together with ctx's error. A nil error means the full
// epoch budget ran.
//
// With Config.Ckpt set, the run additionally snapshots its full state
// at epoch boundaries (and flushes the last boundary on cancellation),
// and resumes from the newest intact snapshot when one matching this
// run exists — replaying the remaining epochs bit-identically to an
// uninterrupted run. A cancellation mid-epoch is resumed from the
// preceding boundary; the interrupted epoch replays in full.
func Train(ctx context.Context, net *nn.Network, ds *data.Dataset, cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 || cfg.Batch <= 0 {
		panic(fmt.Sprintf("core: invalid config epochs=%d batch=%d", cfg.Epochs, cfg.Batch))
	}
	if cfg.LR <= 0 {
		panic("core: LR must be positive")
	}
	if err := CheckNumerics(cfg.Numerics); err != nil {
		return nil, err
	}
	cfg = cfg.Normalize()
	sink := cfg.Sink

	rng := tensor.NewRNG(cfg.Seed)
	opt := optim.NewSGD(net.Params(), cfg.LR, cfg.Momentum, cfg.WeightDecay)
	shuffleRNG := rng.Stream("shuffle")
	loader := data.NewLoader(ds, cfg.Batch, cfg.Aug, true, shuffleRNG)
	weights := WeightTensors(net)
	faultRNG := rng.Stream("train-faults")
	sc := cfg.Scenario

	start := time.Now()
	res := &Result{}
	var lossWS tensor.Workspace // softmax probs/gradient, reused per batch
	cs := newCkptSaver(&cfg, net, opt, shuffleRNG, loader)
	startEpoch, bestState, samples := cs.restore(res)
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		opt.LR = cfg.Schedule.LR(epoch)

		// Per Algorithm 1 the fault pattern is redrawn each epoch and
		// held fixed across the epoch's batches (unless PerBatch).
		var dm *fault.DeviceMap
		switch {
		case cfg.Pinned != nil:
			dm = cfg.Pinned
		case cfg.FaultRate > 0 && !cfg.PerBatch:
			dm = sc.DrawMap(faultRNG.StreamN("epoch", epoch), weights, cfg.FaultRate)
		}

		loader.Epoch()
		var lossSum float64
		var correct, seen, batches int
		for step := 0; ; step++ {
			if err := ctx.Err(); err != nil {
				cs.onCancel(epoch)
				return res, err
			}
			x, y := loader.Next()
			if x == nil {
				break
			}
			if cfg.PerBatch && cfg.FaultRate > 0 && cfg.Pinned == nil {
				dm = sc.DrawMap(faultRNG.StreamN("batch", epoch*100000+step), weights, cfg.FaultRate)
			}
			var lesion *fault.Lesion
			if dm != nil {
				lesion = dm.Apply(weights)
			}
			net.ZeroGrad()
			out := net.Forward(x, true)
			loss, dOut := nn.SoftmaxCrossEntropyWS(&lossWS, out, y)
			for i := 0; i < len(y); i++ {
				if out.ArgMaxRow(i) == y[i] {
					correct++
				}
			}
			seen += len(y)
			net.Backward(dOut)
			if lesion != nil {
				// Straight-through: restore clean weights, then apply
				// the gradient computed at the faulted point.
				lesion.Undo()
			}
			if cfg.ADMM != nil {
				cfg.ADMM.AddPenaltyGrad()
			}
			opt.Step()
			lossSum += loss
			batches++
		}
		if cfg.ADMM != nil && (epoch+1)%cfg.ADMMInterval == 0 {
			cfg.ADMM.UpdateDuals()
		}
		samples += seen
		st := EpochStats{
			Epoch:     epoch,
			LR:        opt.LR,
			Loss:      lossSum / float64(batches),
			TrainAcc:  float64(correct) / float64(seen),
			FaultRate: cfg.FaultRate,
		}
		if cfg.Pinned != nil {
			st.FaultRate = cfg.Pinned.Psa
		}
		if cfg.EvalDS != nil {
			st.EvalAcc = EvalClean(net, cfg.EvalDS, cfg.Batch)
			if st.EvalAcc > res.BestEvalAcc {
				res.BestEvalAcc = st.EvalAcc
				res.BestEpoch = epoch
				if cfg.KeepBest {
					bestState = net.Snapshot()
				}
			}
		}
		res.History = append(res.History, st)
		cs.epochEnd(epoch, res, bestState, samples)
		if sink.Enabled() {
			sink.Emit(obs.Event{
				Kind: obs.KindTrainEpoch, Epoch: epoch + 1,
				LR: st.LR, Loss: st.Loss, Acc: st.TrainAcc,
				EvalAcc: st.EvalAcc, Rate: st.FaultRate,
			})
		}
	}
	if cfg.KeepBest && bestState != nil {
		if err := net.Restore(bestState); err != nil {
			panic(fmt.Sprintf("core: best-snapshot restore failed: %v", err))
		}
		obs.Logf(sink, "restored best epoch %d (eval acc %.4f)", res.BestEpoch, res.BestEvalAcc)
	}
	if sink.Enabled() {
		sink.Emit(obs.Event{
			Kind: obs.KindTiming, Phase: "train",
			Seconds: time.Since(start).Seconds(), N: samples,
		})
	}
	return res, nil
}
