package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/ftpim/ftpim/internal/ckpt"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/optim"
	"github.com/ftpim/ftpim/internal/prune"
	"github.com/ftpim/ftpim/internal/tensor"
)

// Checkpoint section names. "meta" carries the gob-encoded trainMeta;
// the rest carry the state blobs it describes.
const (
	secMeta = "meta" // trainMeta (gob)
	secNet  = "net"  // nn.Network snapshot (params, masks, BN stats)
	secOpt  = "opt"  // SGD momentum buffers ([]*tensor.Tensor, gob)
	secRNG  = "rng"  // shuffle/augmentation RNG cursor (tensor.RNG state)
	secPerm = "perm" // loader shuffle permutation ([]int, gob)
	secBest = "best" // KeepBest network snapshot (present iff HasBest)
	secADMM = "admm" // prune.ADMMState (gob, present iff ADMM configured)
)

// trainMeta identifies the training position a checkpoint captures and
// carries the run bookkeeping that is not tensor state. A checkpoint
// is only resumed when Seed, Stage, Epochs, and FaultRate all match
// the configured run — otherwise it belongs to a different experiment
// and is ignored.
type trainMeta struct {
	Seed      uint64
	Stage     int
	Epochs    int // per-stage epoch budget of the run that wrote this
	Epoch     int // completed epochs within the stage
	FaultRate float64
	Samples   int

	// Numerics records the kernel numerics tier active when the
	// snapshot was written ("" in pre-tier checkpoints means "exact",
	// the only tier that existed). Resuming under a different tier
	// would break the bit-identical-resume contract, so restore
	// starts fresh instead.
	Numerics string

	BestEvalAcc float64
	BestEpoch   int
	HasBest     bool

	// History is the rung-local epoch trace up to Epoch; Prefix is the
	// cumulative trace of completed earlier stages (ProgressiveFT),
	// round-tripped so a resumed ladder reports the full history.
	History []EpochStats
	Prefix  []EpochStats
}

// ckptSaver threads crash-safe checkpointing through one Train call.
// A nil *ckptSaver is the disabled configuration: every method is a
// nil-check away from a plain return, so the no-checkpoint run path
// does not allocate or branch beyond that check (pinned by
// TestCkptDisabledAddsZeroAllocs).
type ckptSaver struct {
	run   *ckpt.Run
	every int
	sink  obs.Sink

	net    *nn.Network
	opt    *optim.SGD
	rng    *tensor.RNG
	loader *data.Loader
	admm   *prune.ADMM

	seed   uint64
	stage  int
	epochs int
	rate   float64
	prefix []EpochStats

	// pending is the fully captured state of the last completed epoch;
	// saved tracks whether it already reached disk, so a cancellation
	// mid-epoch can flush the last boundary exactly once.
	pending map[string][]byte
	saved   bool
}

// newCkptSaver builds the saver for a normalized config, or nil when
// checkpointing is disabled.
func newCkptSaver(cfg *Config, net *nn.Network, opt *optim.SGD, rng *tensor.RNG, loader *data.Loader) *ckptSaver {
	if cfg.Ckpt == nil {
		return nil
	}
	every := cfg.CkptEvery
	if every < 1 {
		every = 1
	}
	rate := cfg.FaultRate
	if cfg.Pinned != nil {
		rate = cfg.Pinned.Psa
	}
	return &ckptSaver{
		run: cfg.Ckpt, every: every, sink: cfg.Sink,
		net: net, opt: opt, rng: rng, loader: loader, admm: cfg.ADMM,
		seed: cfg.Seed, stage: cfg.ckptStage, epochs: cfg.Epochs,
		rate: rate, prefix: cfg.ckptPrefix,
	}
}

func gobEncode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("core: checkpoint gob encode: %v", err)) // in-memory encode of our own types cannot fail
	}
	return buf.Bytes()
}

// capture serializes the full training state at an epoch boundary:
// epoch epochs are complete, the optimizer has applied its last step,
// and the shuffle RNG sits exactly where the next epoch's reshuffle
// will draw from.
func (c *ckptSaver) capture(epoch int, res *Result, bestState []byte, samples int) map[string][]byte {
	meta := trainMeta{
		Seed: c.seed, Stage: c.stage, Epochs: c.epochs, Epoch: epoch + 1,
		FaultRate: c.rate, Samples: samples,
		Numerics: tensor.ActiveNumerics().String(),
		BestEvalAcc: res.BestEvalAcc, BestEpoch: res.BestEpoch,
		HasBest: bestState != nil,
		History: res.History, Prefix: c.prefix,
	}
	rngState, err := c.rng.MarshalState()
	if err != nil {
		panic(fmt.Sprintf("core: RNG state capture: %v", err))
	}
	sections := map[string][]byte{
		secMeta: gobEncode(&meta),
		secNet:  c.net.Snapshot(),
		secOpt:  gobEncode(c.opt.ExportState()),
		secRNG:  rngState,
		secPerm: gobEncode(c.loader.PermState()),
	}
	if bestState != nil {
		sections[secBest] = bestState
	}
	if c.admm != nil {
		sections[secADMM] = gobEncode(c.admm.ExportState())
	}
	return sections
}

// epochEnd records the just-completed epoch's state and writes it to
// disk when the epoch lands on the save interval or is the stage's
// last. Write failures are reported through the sink and otherwise
// ignored: losing crash-safety must not kill a healthy training run.
func (c *ckptSaver) epochEnd(epoch int, res *Result, bestState []byte, samples int) {
	if c == nil {
		return
	}
	c.pending = c.capture(epoch, res, bestState, samples)
	c.saved = false
	if (epoch+1)%c.every == 0 || epoch+1 == c.epochs {
		c.flush(epoch + 1)
	}
}

// onCancel flushes the last completed epoch's state if it has not
// reached disk yet — the "SIGINT writes a final checkpoint" path. The
// in-flight epoch is deliberately not captured: mid-epoch weights are
// not a resumable boundary, and the resumed run replays the whole
// interrupted epoch bit-identically instead.
func (c *ckptSaver) onCancel(epoch int) {
	if c == nil || c.pending == nil || c.saved {
		return
	}
	c.flush(epoch)
}

// flush writes the pending snapshot; completedEpochs is only used for
// the ckpt.save event.
func (c *ckptSaver) flush(completedEpochs int) {
	path, size, err := c.run.Save(c.pending)
	if err != nil {
		obs.Logf(c.sink, "checkpoint save failed (training continues without crash safety): %v", err)
		return
	}
	c.saved = true
	if c.sink.Enabled() {
		c.sink.Emit(obs.Event{
			Kind: obs.KindCkptSave, Key: path,
			Epoch: completedEpochs, Stage: c.stage, N: size,
		})
	}
}

// restore loads the newest intact checkpoint matching this run and
// applies it to the network, optimizer, RNG, and (when configured)
// ADMM state, returning the number of completed epochs to skip plus
// the restored KeepBest snapshot and sample counter. A checkpoint for
// a different stage/seed/budget is silently ignored (normal when a
// multi-stage run resumes past it); one that matches but fails to
// apply is reported and ignored, leaving the fresh-start state intact.
// Returns 0 start epochs when there is nothing to resume.
func (c *ckptSaver) restore(res *Result) (startEpoch int, bestState []byte, samples int) {
	if c == nil {
		return 0, nil, 0
	}
	sections, path, ok := c.run.Load()
	if !ok {
		return 0, nil, 0
	}
	var meta trainMeta
	if err := gob.NewDecoder(bytes.NewReader(sections[secMeta])).Decode(&meta); err != nil {
		obs.Logf(c.sink, "checkpoint %s meta undecodable (%v); starting fresh", path, err)
		return 0, nil, 0
	}
	if meta.Stage != c.stage {
		// A different phase of this run's sequence — expected during
		// multi-stage resumes, not worth a log line.
		return 0, nil, 0
	}
	if meta.Seed != c.seed || meta.Epochs != c.epochs || meta.FaultRate != c.rate ||
		meta.Epoch < 1 || meta.Epoch > c.epochs || len(meta.History) != meta.Epoch {
		obs.Logf(c.sink, "checkpoint %s belongs to a different run (seed/budget/rate mismatch); starting fresh", path)
		return 0, nil, 0
	}
	ckptTier := meta.Numerics
	if ckptTier == "" {
		ckptTier = tensor.NumericsExact.String() // pre-tier checkpoint
	}
	if active := tensor.ActiveNumerics().String(); ckptTier != active {
		obs.Logf(c.sink, "checkpoint %s was written under %s numerics but the process tier is %s; starting fresh (resume must be bit-identical)", path, ckptTier, active)
		return 0, nil, 0
	}
	if c.admm != nil && sections[secADMM] == nil {
		obs.Logf(c.sink, "checkpoint %s lacks ADMM state; starting fresh", path)
		return 0, nil, 0
	}
	// Decode everything before mutating anything, so a half-bad
	// checkpoint cannot leave the run in a mixed state.
	var velocity []*tensor.Tensor
	if err := gob.NewDecoder(bytes.NewReader(sections[secOpt])).Decode(&velocity); err != nil {
		obs.Logf(c.sink, "checkpoint %s optimizer state undecodable (%v); starting fresh", path, err)
		return 0, nil, 0
	}
	var perm []int
	if err := gob.NewDecoder(bytes.NewReader(sections[secPerm])).Decode(&perm); err != nil {
		obs.Logf(c.sink, "checkpoint %s loader state undecodable (%v); starting fresh", path, err)
		return 0, nil, 0
	}
	var admmState *prune.ADMMState
	if c.admm != nil {
		if err := gob.NewDecoder(bytes.NewReader(sections[secADMM])).Decode(&admmState); err != nil {
			obs.Logf(c.sink, "checkpoint %s ADMM state undecodable (%v); starting fresh", path, err)
			return 0, nil, 0
		}
	}
	orig := c.net.Snapshot()
	apply := func() error {
		if err := c.net.Restore(sections[secNet]); err != nil {
			return fmt.Errorf("network: %w", err)
		}
		if err := c.opt.ImportState(velocity); err != nil {
			return fmt.Errorf("optimizer: %w", err)
		}
		if c.admm != nil {
			if err := c.admm.ImportState(admmState); err != nil {
				return fmt.Errorf("admm: %w", err)
			}
		}
		if err := c.rng.UnmarshalState(sections[secRNG]); err != nil {
			return fmt.Errorf("rng: %w", err)
		}
		if err := c.loader.SetPermState(perm); err != nil {
			return fmt.Errorf("loader: %w", err)
		}
		return nil
	}
	if err := apply(); err != nil {
		// Roll the network back to its fresh-start weights; restoring
		// our own snapshot onto the same architecture cannot fail.
		if rerr := c.net.Restore(orig); rerr != nil {
			panic(fmt.Sprintf("core: checkpoint rollback failed: %v", rerr))
		}
		obs.Logf(c.sink, "checkpoint %s unusable (%v); starting fresh", path, err)
		return 0, nil, 0
	}
	res.History = append(res.History, meta.History...)
	res.BestEvalAcc = meta.BestEvalAcc
	res.BestEpoch = meta.BestEpoch
	if meta.HasBest {
		bestState = append([]byte(nil), sections[secBest]...)
	}
	// The restored state is exactly what epochEnd captured, so a
	// cancellation before the next boundary has nothing new to flush.
	c.pending = sections
	c.saved = true
	if c.sink.Enabled() {
		c.sink.Emit(obs.Event{
			Kind: obs.KindCkptRestore, Key: path,
			Epoch: meta.Epoch, Stage: meta.Stage,
		})
	}
	return meta.Epoch, bestState, meta.Samples
}

// peekCkptMeta decodes just the meta section of a run's newest intact
// checkpoint — ProgressiveFT uses it to decide which ladder stage to
// resume at before entering the stage loop. Returns nil when there is
// nothing to resume.
func peekCkptMeta(run *ckpt.Run) *trainMeta {
	if run == nil {
		return nil
	}
	sections, _, ok := run.Load()
	if !ok {
		return nil
	}
	var meta trainMeta
	if err := gob.NewDecoder(bytes.NewReader(sections[secMeta])).Decode(&meta); err != nil {
		return nil
	}
	return &meta
}
