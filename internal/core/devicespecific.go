package core

import (
	"context"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/nn"
)

// FaultAwareRetrain is the device-specific baseline (Xia et al.,
// DAC'17 [5]): the defect map of one physical device — assumed known
// from a march test — is pinned onto the weights during every training
// step, so the surviving weights learn to compensate for that exact
// device. The result is excellent on that device and useless on any
// other, which is the scalability problem the paper's stochastic
// schemes remove: retraining must be repeated per manufactured unit.
//
// Cancellation behaves exactly as in Train: the partial Result and
// ctx's error are returned.
func FaultAwareRetrain(ctx context.Context, net *nn.Network, ds *data.Dataset, cfg Config, dm *fault.DeviceMap) (*Result, error) {
	cfg.Pinned = dm
	cfg.FaultRate = 0
	return Train(ctx, net, ds, cfg)
}
