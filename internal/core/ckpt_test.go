package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ftpim/ftpim/internal/ckpt"
	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/tensor"
)

// cancelAfterEpochs cancels a context once n train.epoch events have
// been emitted — the deterministic stand-in for a kill signal landing
// mid-run (the cancellation is observed at the next batch boundary,
// i.e. one batch into the following epoch).
type cancelAfterEpochs struct {
	cancel context.CancelFunc
	left   int
}

func (c *cancelAfterEpochs) Enabled() bool { return true }
func (c *cancelAfterEpochs) Emit(e obs.Event) {
	if e.Kind == obs.KindTrainEpoch {
		if c.left--; c.left == 0 {
			c.cancel()
		}
	}
}

// eventCollector records every event of the kinds it watches.
type eventCollector struct {
	kinds  map[obs.Kind]bool
	events []obs.Event
}

func collect(kinds ...obs.Kind) *eventCollector {
	m := map[obs.Kind]bool{}
	for _, k := range kinds {
		m[k] = true
	}
	return &eventCollector{kinds: m}
}

func (c *eventCollector) Enabled() bool { return true }
func (c *eventCollector) Emit(e obs.Event) {
	if c.kinds[e.Kind] {
		c.events = append(c.events, e)
	}
}

func (c *eventCollector) count(k obs.Kind) int {
	n := 0
	for _, e := range c.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// ckptCfg is quickCfg with a shorter budget plus KeepBest, so the
// checkpoint path exercises the best-snapshot section too.
func ckptCfg() Config {
	cfg := quickCfg()
	cfg.Epochs = 5
	cfg.FaultRate = 0.05
	return cfg
}

func TestKillAndResumeBitIdentical(t *testing.T) {
	train, test := testTask()
	for _, workers := range []int{1, 4} {
		prev := tensor.SetWorkers(workers)
		t.Cleanup(func() { tensor.SetWorkers(prev) })

		cfg := ckptCfg()
		cfg.EvalDS = test
		cfg.KeepBest = true

		// Control: the uninterrupted run, no checkpointing at all.
		control := testModel(77)
		wantRes := mustTrain(t, control, train, cfg)
		want := control.Snapshot()

		// Interrupt at every possible epoch boundary and resume each.
		for stopAfter := 1; stopAfter < cfg.Epochs; stopAfter++ {
			dir := t.TempDir()

			ctx, cancel := context.WithCancel(context.Background())
			icfg := cfg
			icfg.Sink = &cancelAfterEpochs{cancel: cancel, left: stopAfter}
			icfg.Ckpt = ckpt.NewStore(dir, 100, false, nil).Run("run")
			interrupted := testModel(77)
			if _, err := Train(ctx, interrupted, train, icfg); err == nil {
				t.Fatal("interrupted run must return the cancellation error")
			}
			cancel()

			rcfg := cfg
			rcfg.Ckpt = ckpt.NewStore(dir, 100, true, nil).Run("run")
			resumedNet := testModel(77)
			gotRes, err := Train(context.Background(), resumedNet, train, rcfg)
			if err != nil {
				t.Fatalf("resume after %d epochs: %v", stopAfter, err)
			}
			if got := resumedNet.Snapshot(); string(got) != string(want) {
				t.Fatalf("workers=%d stop=%d: resumed weights differ from uninterrupted run",
					workers, stopAfter)
			}
			if len(gotRes.History) != len(wantRes.History) {
				t.Fatalf("workers=%d stop=%d: history %d epochs, want %d",
					workers, stopAfter, len(gotRes.History), len(wantRes.History))
			}
			for i := range wantRes.History {
				if gotRes.History[i] != wantRes.History[i] {
					t.Fatalf("workers=%d stop=%d: epoch %d stats diverged:\n got %+v\nwant %+v",
						workers, stopAfter, i, gotRes.History[i], wantRes.History[i])
				}
			}
			if gotRes.BestEvalAcc != wantRes.BestEvalAcc || gotRes.BestEpoch != wantRes.BestEpoch {
				t.Fatalf("workers=%d stop=%d: best-epoch bookkeeping diverged", workers, stopAfter)
			}
		}
	}
}

func TestResumeEmitsRestoreEvent(t *testing.T) {
	train, _ := testTask()
	cfg := ckptCfg()
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	icfg := cfg
	icfg.Sink = &cancelAfterEpochs{cancel: cancel, left: 2}
	icfg.Ckpt = ckpt.NewStore(dir, 100, false, nil).Run("run")
	Train(ctx, testModel(3), train, icfg)
	cancel()

	sink := collect(obs.KindCkptRestore, obs.KindCkptSave)
	rcfg := cfg
	rcfg.Sink = sink
	rcfg.Ckpt = ckpt.NewStore(dir, 100, true, sink).Run("run")
	if _, err := Train(bg, testModel(3), train, rcfg); err != nil {
		t.Fatal(err)
	}
	if n := sink.count(obs.KindCkptRestore); n != 1 {
		t.Fatalf("want exactly 1 ckpt.restore event, got %d", n)
	}
	if n := sink.count(obs.KindCkptSave); n == 0 {
		t.Fatal("resumed run must keep checkpointing")
	}
}

func TestResumeFallsBackPastCorruptNewest(t *testing.T) {
	train, _ := testTask()
	cfg := ckptCfg()
	dir := t.TempDir()

	// Full (uninterrupted) checkpointed run is the control.
	ccfg := cfg
	ccfg.Ckpt = ckpt.NewStore(dir, 100, false, nil).Run("run")
	control := testModel(9)
	wantRes := mustTrain(t, control, train, ccfg)
	want := control.Snapshot()

	// Bit-flip the newest checkpoint; resume must report ckpt.corrupt,
	// fall back one epoch, replay it, and still match the control.
	run := ckpt.NewStore(dir, 100, true, nil).Run("run")
	corruptNewestCkpt(t, run.Dir())

	sink := collect(obs.KindCkptCorrupt, obs.KindCkptRestore)
	rcfg := cfg
	rcfg.Sink = sink
	rcfg.Ckpt = ckpt.NewStore(dir, 100, true, sink).Run("run")
	resumed := testModel(9)
	gotRes, err := Train(bg, resumed, train, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if sink.count(obs.KindCkptCorrupt) == 0 {
		t.Fatal("corrupted newest checkpoint must emit ckpt.corrupt")
	}
	if sink.count(obs.KindCkptRestore) != 1 {
		t.Fatal("must restore from the fallback checkpoint")
	}
	if string(resumed.Snapshot()) != string(want) {
		t.Fatal("resume through corruption must still match the uninterrupted run")
	}
	if len(gotRes.History) != len(wantRes.History) {
		t.Fatalf("history %d epochs, want %d", len(gotRes.History), len(wantRes.History))
	}
}

func TestResumeIgnoresForeignCheckpoint(t *testing.T) {
	train, _ := testTask()
	dir := t.TempDir()

	// Checkpoint a run with one seed...
	cfg := ckptCfg()
	cfg.Ckpt = ckpt.NewStore(dir, 100, false, nil).Run("run")
	mustTrain(t, testModel(5), train, cfg)

	// ...then "resume" with a different seed: the checkpoint belongs to
	// a different experiment and must be ignored, not half-applied.
	other := cfg
	other.Seed = cfg.Seed + 1
	other.Ckpt = ckpt.NewStore(dir, 100, true, nil).Run("run")
	a := testModel(5)
	resA, err := Train(bg, a, train, other)
	if err != nil {
		t.Fatal(err)
	}

	fresh := other
	fresh.Ckpt = nil
	b := testModel(5)
	resB := mustTrain(t, b, train, fresh)
	if string(a.Snapshot()) != string(b.Snapshot()) {
		t.Fatal("foreign checkpoint must be ignored; run must match a fresh one")
	}
	if len(resA.History) != len(resB.History) {
		t.Fatal("foreign checkpoint must not shorten the run")
	}
}

func TestProgressiveFTKillAndResume(t *testing.T) {
	train, _ := testTask()
	cfg := quickCfg()
	cfg.Epochs = 4 // per-stage budget fallback (epochsPerStage passed below)
	ladder := []float64{0.01, 0.05, 0.1}
	const perStage = 2

	control := testModel(42)
	wantRes, err := ProgressiveFT(bg, control, train, cfg, ladder, perStage)
	if err != nil {
		t.Fatal(err)
	}
	want := control.Snapshot()

	// Kill inside every stage (after 1, 3, 5 total epochs → stages 0..2).
	for _, stopAfter := range []int{1, 3, 5} {
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		icfg := cfg
		icfg.Sink = &cancelAfterEpochs{cancel: cancel, left: stopAfter}
		icfg.Ckpt = ckpt.NewStore(dir, 100, false, nil).Run("prog")
		if _, err := ProgressiveFT(ctx, testModel(42), train, icfg, ladder, perStage); err == nil {
			t.Fatalf("stop=%d: interrupted ladder must return the cancellation error", stopAfter)
		}
		cancel()

		rcfg := cfg
		rcfg.Ckpt = ckpt.NewStore(dir, 100, true, nil).Run("prog")
		resumed := testModel(42)
		gotRes, err := ProgressiveFT(bg, resumed, train, rcfg, ladder, perStage)
		if err != nil {
			t.Fatal(err)
		}
		if string(resumed.Snapshot()) != string(want) {
			t.Fatalf("stop=%d: resumed ladder weights differ from uninterrupted ladder", stopAfter)
		}
		if len(gotRes.History) != len(wantRes.History) {
			t.Fatalf("stop=%d: history %d epochs, want %d", stopAfter, len(gotRes.History), len(wantRes.History))
		}
		for i := range wantRes.History {
			if gotRes.History[i] != wantRes.History[i] {
				t.Fatalf("stop=%d: epoch %d stats diverged", stopAfter, i)
			}
		}
	}
}

func TestCompletedRunResumesAsNoOp(t *testing.T) {
	train, _ := testTask()
	cfg := ckptCfg()
	dir := t.TempDir()
	cfg.Ckpt = ckpt.NewStore(dir, 100, false, nil).Run("run")
	control := testModel(13)
	wantRes := mustTrain(t, control, train, cfg)

	rcfg := cfg
	rcfg.Ckpt = ckpt.NewStore(dir, 100, true, nil).Run("run")
	resumed := testModel(13)
	gotRes, err := Train(bg, resumed, train, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumed.Snapshot()) != string(control.Snapshot()) {
		t.Fatal("re-running a completed checkpointed run must reproduce its final state")
	}
	if len(gotRes.History) != len(wantRes.History) {
		t.Fatal("no-op resume must return the full history")
	}
}

// corruptNewestCkpt flips one payload bit in the newest checkpoint
// file under dir, simulating on-disk corruption of the latest write.
func corruptNewestCkpt(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ftck") && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no checkpoint files to corrupt")
	}
	path := filepath.Join(dir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// The no-checkpoint configuration must not add a single allocation to
// the per-epoch path: a nil saver's methods return before touching
// anything.
func TestCkptDisabledAddsZeroAllocs(t *testing.T) {
	var cs *ckptSaver
	res := &Result{}
	if got := testing.AllocsPerRun(100, func() {
		cs.epochEnd(3, res, nil, 128)
		cs.onCancel(3)
	}); got != 0 {
		t.Fatalf("disabled checkpointing allocates %.0f times per epoch, want 0", got)
	}
}
