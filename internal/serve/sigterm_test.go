package serve

// End-to-end shutdown test over a real listener: SIGTERM lands while
// a micro-batch is still open (requests admitted, window not yet
// expired) and a defect-eval is mid-sweep. The contract: every
// admitted request completes with 200, Serve returns cleanly, the
// drain is announced on the event stream, and the weight-restoration
// invariant holds — after serving lesioned evals, both the source
// network and the pooled clones are bitwise identical to the
// pre-serve snapshot.
//
// Not parallel: it installs a process-wide SIGTERM handler and
// signals its own process.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/obs"
)

func TestSIGTERMMidBatchDrainsCleanly(t *testing.T) {
	var events bytes.Buffer
	var evMu sync.Mutex
	sink := obs.NewJSONL(&lockedWriter{w: &events, mu: &evMu})
	sink.SetClock(nil)

	src, test := fixture()
	before := src.Snapshot()

	s, err := New(src, test, Config{
		// A wide-open batch: room for 8, window long enough that the
		// signal reliably lands before the timer fires.
		MaxBatch:    8,
		BatchWindow: 2 * time.Second,
		Eval:        core.DefectEval{Runs: 3, Batch: 16, Seed: 42, Workers: 1},
		Sink:        sink,
	})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()

	// Three infer requests open a batch; one defect-eval runs a
	// lesion/restore sweep concurrently on a pooled clone.
	img, _ := json.Marshal(InferRequest{Image: testImage(test)})
	type result struct {
		code int
		body string
		err  error
	}
	const inferClients = 3
	results := make([]result, inferClients+1)
	var wg sync.WaitGroup
	post := func(i int, path string, body []byte) {
		defer wg.Done()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			results[i].err = err
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		results[i] = result{code: resp.StatusCode, body: string(b)}
	}
	for i := 0; i < inferClients; i++ {
		wg.Add(1)
		go post(i, "/v1/infer", img)
	}
	var evalDone atomic.Bool
	wg.Add(1)
	go func() {
		defer evalDone.Store(true)
		post(inferClients, "/v1/defect-eval", []byte(`{"rates":[0,0.05,0.1],"runs":40}`))
	}()

	// Wait until every infer request has been admitted into the open
	// batch and the defect-eval holds its admission token (or already
	// finished on a fast machine), then deliver SIGTERM mid-window.
	waitFor(t, func() bool {
		return s.accepted.Load() == inferClients &&
			(len(s.evals) == 1 || evalDone.Load())
	})
	if s.batchSeq.Load() != 0 {
		t.Fatal("batch dispatched before the signal; widen BatchWindow")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve did not return after SIGTERM")
	}
	wg.Wait()

	// Every request admitted before the signal completed successfully.
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("client %d: HTTP %d after drain, want 200: %s", i, r.code, r.body)
		}
	}
	// The admitted requests were coalesced into at most two flushed
	// batches (the open batch plus at most one leftover flush), never
	// dropped or re-queued past the drain.
	var inf InferResponse
	if err := json.Unmarshal([]byte(results[0].body), &inf); err != nil {
		t.Fatal(err)
	}
	if inf.Batch < 1 || inf.Batch > inferClients {
		t.Fatalf("drained batch size %d, want 1..%d", inf.Batch, inferClients)
	}

	// The listener is closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting connections after drain")
	}

	// The drain was announced exactly once on the event stream.
	evMu.Lock()
	stream := events.String()
	evMu.Unlock()
	if got := bytes.Count([]byte(stream), []byte(`"kind":"serve.drain"`)); got != 1 {
		t.Fatalf("serve.drain emitted %d times, want 1; stream:\n%s", got, stream)
	}

	// Weight-restoration invariants: the source network was never
	// touched, and pooled clones — which ran both inference and
	// lesioned defect sweeps — restored bitwise.
	if !bytes.Equal(src.Snapshot(), before) {
		t.Fatal("source network weights changed while serving")
	}
	e := s.pool.Get()
	defer s.pool.Put(e)
	if !bytes.Equal(e.Net.Snapshot(), before) {
		t.Fatal("pooled clone weights diverged from source after lesioned sweeps")
	}
}

// lockedWriter serializes sink writes against the test's final read.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
