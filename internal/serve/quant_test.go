package serve

// Contract tests for the quantized serving mode: /v1/infer runs the
// int8 path, /v1/healthz reports the model format, and the
// Monte-Carlo endpoints degrade explicitly when no float model is
// available.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

// quantFixture quantizes the float fixture, calibrating on the test
// split's images (serving semantics don't depend on model quality).
func quantFixture(t *testing.T) (*nn.Network, *nn.QuantizedNetwork, *data.Dataset) {
	t.Helper()
	net, test := fixture()
	q, err := nn.QuantizeNetwork(net, []*tensor.Tensor{test.Images})
	if err != nil {
		t.Fatal(err)
	}
	return net, q, test
}

func healthOf(t *testing.T, s *Server) HealthResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestQuantizedOnlyServing covers the pure-FTPM deployment shape: no
// float model at all. Infer serves from the int8 clone bit-identically
// to a direct quantized forward; healthz names the format; the
// Monte-Carlo endpoints answer 501 unsupported rather than panicking
// on the missing pool.
func TestQuantizedOnlyServing(t *testing.T) {
	_, q, test := quantFixture(t)
	s, err := New(nil, test, Config{Quantized: q, ModelFormat: "ftpm-v1"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Drain)

	img := testImage(test)
	body, _ := json.Marshal(InferRequest{Image: img})
	rec := postJSON(s.Handler(), "/v1/infer", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("infer: HTTP %d: %s", rec.Code, rec.Body)
	}
	var resp InferResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var x tensor.Tensor
	c, h, w := test.Dims()
	x.SetView(img, 1, c, h, w)
	out := q.Forward(&x, false)
	if resp.Class != out.ArgMaxRow(0) {
		t.Fatalf("served class %d, direct quantized forward %d", resp.Class, out.ArgMaxRow(0))
	}
	for i, v := range resp.Scores {
		if v != out.Data()[i] {
			t.Fatalf("served score[%d] = %v, want bitwise %v", i, v, out.Data()[i])
		}
	}

	hr := healthOf(t, s)
	if hr.ModelFormat != "ftpm-v1" || !hr.Quantized {
		t.Fatalf("healthz model_format=%q quantized=%v, want ftpm-v1/true", hr.ModelFormat, hr.Quantized)
	}
	if hr.Params != q.NumParams() || hr.Params == 0 {
		t.Fatalf("healthz params=%d, want %d", hr.Params, q.NumParams())
	}

	evalBody, _ := json.Marshal(DefectEvalRequest{Rates: []float64{0.01}, Runs: 1})
	for _, path := range []string{"/v1/defect-eval", "/v1/stability"} {
		rec := postJSON(s.Handler(), path, evalBody)
		if rec.Code != http.StatusNotImplemented {
			t.Fatalf("%s on quantized-only server: HTTP %d, want 501", path, rec.Code)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code != CodeUnsupported {
			t.Fatalf("%s error envelope = %s", path, rec.Body)
		}
	}
}

// TestQuantizedHybridServing covers the float+quantized pairing: the
// int8 network serves infer while the float model keeps the
// Monte-Carlo endpoints alive.
func TestQuantizedHybridServing(t *testing.T) {
	net, q, test := quantFixture(t)
	s, err := New(net, test, Config{Quantized: q, ModelFormat: "ftpm-v1", MaxEvalRuns: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Drain)

	img := testImage(test)
	body, _ := json.Marshal(InferRequest{Image: img})
	rec := postJSON(s.Handler(), "/v1/infer", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("infer: HTTP %d: %s", rec.Code, rec.Body)
	}
	var resp InferResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var x tensor.Tensor
	c, h, w := test.Dims()
	x.SetView(img, 1, c, h, w)
	if want := q.Forward(&x, false).ArgMaxRow(0); resp.Class != want {
		t.Fatalf("hybrid infer class %d, want quantized path's %d", resp.Class, want)
	}

	evalBody, _ := json.Marshal(DefectEvalRequest{Rates: []float64{0.01}, Runs: 1})
	rec = postJSON(s.Handler(), "/v1/defect-eval", evalBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("hybrid defect-eval: HTTP %d: %s", rec.Code, rec.Body)
	}
	if hr := healthOf(t, s); !hr.Quantized || hr.ModelFormat != "ftpm-v1" {
		t.Fatalf("hybrid healthz = %+v", hr)
	}
}

// TestDefaultModelFormat: the float path reports its historical
// weight source.
func TestDefaultModelFormat(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	if hr := healthOf(t, s); hr.ModelFormat != "gob-cache" || hr.Quantized {
		t.Fatalf("float healthz model_format=%q quantized=%v, want gob-cache/false", hr.ModelFormat, hr.Quantized)
	}
}

// TestNewRejectsNoModelAtAll: nil float and nil quantized is a
// configuration error.
func TestNewRejectsNoModelAtAll(t *testing.T) {
	_, test := fixture()
	if _, err := New(nil, test, Config{}); err == nil {
		t.Fatal("New(nil, test, {}) must fail")
	}
}
