package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/tensor"
)

// maxBodyBytes bounds request bodies; a CIFAR-scale image encodes in
// well under 100 KiB of JSON, so 1 MiB leaves generous headroom while
// keeping hostile payloads cheap to reject.
const maxBodyBytes = 1 << 20

// InferRequest is the body of POST /v1/infer: one image as a flat
// C·H·W float array in the model's normalized input space.
type InferRequest struct {
	Image []float32 `json:"image"`
}

// InferResponse is the body of a successful /v1/infer call. Batch
// reports how many concurrent requests were coalesced into the
// micro-batch that served this one — useful for load-test assertions
// and capacity tuning, irrelevant to the prediction itself.
type InferResponse struct {
	Class  int       `json:"class"`
	Scores []float32 `json:"scores"`
	Batch  int       `json:"batch"`
}

// DefectEvalRequest is the body of POST /v1/defect-eval: a
// Monte-Carlo stability evaluation over the given stuck-at rates.
// Omitted fields inherit the server's configured defaults; in
// particular an omitted scenario uses the server's configured fault
// scenario ("chen" unless overridden), so pre-scenario request bodies
// behave byte-identically.
type DefectEvalRequest struct {
	Rates []float64 `json:"rates"`
	Runs  int       `json:"runs,omitempty"`
	Seed  *uint64   `json:"seed,omitempty"`
	Batch int       `json:"batch,omitempty"`
	// Scenario is a fault-scenario spec string resolved by
	// fault.Parse, e.g. "chen:r0=1,r1=1", "transient", "cluster:len=8",
	// "drop".
	Scenario string `json:"scenario,omitempty"`
}

// RateResult is one rate's Monte-Carlo summary, mirroring
// metrics.Summary field for field.
type RateResult struct {
	Rate float64 `json:"rate"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
}

// DefectEvalResponse is the body of a successful /v1/defect-eval
// call. It echoes the effective seed and runs so a client can
// reproduce the result offline with a direct engine call. Scenario is
// the canonical spec of the scenario the request selected; it is
// omitted when the request didn't set one, keeping legacy responses
// byte-identical.
type DefectEvalResponse struct {
	Seed     uint64       `json:"seed"`
	Runs     int          `json:"runs"`
	Scenario string       `json:"scenario,omitempty"`
	Results  []RateResult `json:"results"`
}

// NewDefectEvalResponse assembles the wire response for one sweep.
// Exported (package-internally shared with the conformance suite) so
// the byte-identity test serializes direct engine results through the
// exact code path the handler uses.
func NewDefectEvalResponse(seed uint64, runs int, rates []float64, sums []metrics.Summary) DefectEvalResponse {
	resp := DefectEvalResponse{Seed: seed, Runs: runs, Results: make([]RateResult, len(sums))}
	for i, s := range sums {
		resp.Results[i] = RateResult{
			Rate: rates[i], N: s.N, Mean: s.Mean, Std: s.Std,
			Min: s.Min, Max: s.Max, P50: s.P50,
		}
	}
	return resp
}

// StabilityRequest is the body of POST /v1/stability: the paper's
// Stability Score protocol (Eq. 1) over the given stuck-at rates.
// Field semantics match DefectEvalRequest; omitted fields inherit the
// server's configured defaults.
type StabilityRequest struct {
	Rates    []float64 `json:"rates"`
	Runs     int       `json:"runs,omitempty"`
	Seed     *uint64   `json:"seed,omitempty"`
	Batch    int       `json:"batch,omitempty"`
	Scenario string    `json:"scenario,omitempty"`
}

// StabilityRateResult is one rate's defect accuracy and Stability
// Score. SS is null when the score is +Inf — the defect accuracy
// matched or exceeded the reference accuracy, i.e. zero degradation —
// since JSON cannot encode infinities.
type StabilityRateResult struct {
	Rate      float64  `json:"rate"`
	AccDefect float64  `json:"acc_defect"`
	SS        *float64 `json:"ss"`
}

// StabilityResponse is the body of a successful /v1/stability call.
// AccPretrain is the served model's fault-free accuracy (the server
// hosts one model, so the deployed weights are their own pretrain
// reference); AccRetrain is the clean accuracy of the same weights —
// identical here, but kept as two fields to mirror
// core.StabilityReport and stay forward-compatible with serving
// FT-model/base-model pairs.
type StabilityResponse struct {
	Seed        uint64                `json:"seed"`
	Runs        int                   `json:"runs"`
	AccPretrain float64               `json:"acc_pretrain"`
	AccRetrain  float64               `json:"acc_retrain"`
	Scenario    string                `json:"scenario,omitempty"`
	Results     []StabilityRateResult `json:"results"`
}

// NewStabilityResponse assembles the wire response for one stability
// report. Exported for the same reason as NewDefectEvalResponse: the
// conformance suite serializes direct engine results through the exact
// code path the handler uses.
func NewStabilityResponse(seed uint64, runs int, rep core.StabilityReport) StabilityResponse {
	resp := StabilityResponse{
		Seed: seed, Runs: runs,
		AccPretrain: rep.AccPretrain, AccRetrain: rep.AccRetrain,
		Results: make([]StabilityRateResult, len(rep.Rates)),
	}
	for i := range rep.Rates {
		rr := StabilityRateResult{Rate: rep.Rates[i], AccDefect: rep.AccDefect[i]}
		if ss := rep.SS[i]; !math.IsInf(ss, 1) {
			v := ss
			rr.SS = &v
		}
		resp.Results[i] = rr
	}
	return resp
}

// HealthResponse is the body of GET /v1/healthz.
type HealthResponse struct {
	Status   string  `json:"status"` // "ok" or "draining"
	Params   int     `json:"params"`
	Classes  int     `json:"classes"`
	Dims     [3]int  `json:"dims"` // C, H, W
	Queue    int     `json:"queue"`
	QueueCap int     `json:"queue_cap"`
	MaxBatch int     `json:"max_batch"`
	UptimeS  float64 `json:"uptime_s"`
	// Worker-pool status: configured executors, how many sit idle
	// right now, how many defect-eval requests are in flight against
	// the eval concurrency cap, and the lifetime count of admitted
	// infer requests.
	Executors     int   `json:"executors"`
	IdleExecutors int   `json:"idle_executors"`
	EvalsInFlight int   `json:"evals_in_flight"`
	EvalCap       int   `json:"eval_cap"`
	Accepted      int64 `json:"accepted"`
	// Numerics is the active GEMM tier ("exact" or "fast") and CPU the
	// vector features backing the fast tier (empty on hosts without
	// AVX2+FMA). Callers that require byte-identical outputs across a
	// fleet can reject instances whose tier differs from their own.
	Numerics string `json:"numerics"`
	CPU      string `json:"cpu_features,omitempty"`
	// ModelFormat names the weight source ("gob-cache" or "ftpm-v1")
	// and Quantized whether /v1/infer runs the int8 path. The int8
	// path is bit-deterministic at every worker count and numerics
	// tier, so fleet byte-identity checks can skip the Numerics
	// comparison on quantized instances.
	ModelFormat string `json:"model_format"`
	Quantized   bool   `json:"quantized"`
}

// ErrorResponse is the envelope every non-2xx response carries.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody identifies a failure with a stable machine-readable code
// and a human-readable message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes used by the API.
const (
	CodeBadRequest       = "bad_request"
	CodeTooLarge         = "too_large"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeOverloaded       = "overloaded"
	CodeDraining         = "draining"
	CodeCanceled         = "canceled"
	CodeUnsupported      = "unsupported"
)

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/infer":
			s.route(w, r, "infer", http.MethodPost, s.handleInfer)
		case "/v1/defect-eval":
			s.route(w, r, "defect-eval", http.MethodPost, s.handleDefectEval)
		case "/v1/stability":
			s.route(w, r, "stability", http.MethodPost, s.handleStability)
		case "/v1/healthz":
			s.route(w, r, "healthz", http.MethodGet, s.handleHealthz)
		default:
			s.route(w, r, "unknown", r.Method, func(w http.ResponseWriter, r *http.Request) int {
				return s.writeError(w, http.StatusNotFound, CodeNotFound,
					fmt.Sprintf("no route %s", r.URL.Path))
			})
		}
	})
}

// route enforces the method, runs the handler, and emits one
// serve.request event carrying the route name, final status, and
// latency. Handlers return the status they wrote.
func (s *Server) route(w http.ResponseWriter, r *http.Request, name, method string, h func(http.ResponseWriter, *http.Request) int) {
	start := time.Now()
	var status int
	if r.Method != method {
		w.Header().Set("Allow", method)
		status = s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("%s requires %s", r.URL.Path, method))
	} else {
		status = h(w, r)
	}
	if s.sink.Enabled() {
		s.sink.Emit(obs.Event{
			Kind:    obs.KindServeRequest,
			Phase:   name,
			N:       status,
			Seconds: time.Since(start).Seconds(),
		})
	}
}

// writeJSON writes a 200 response. Marshalling a response struct
// cannot fail; write errors mean the client went away and are
// ignored, as an access log (the serve.request event) still records
// the outcome.
func (s *Server) writeJSON(w http.ResponseWriter, v any) int {
	b, err := json.Marshal(v)
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(b, '\n'))
	return http.StatusOK
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(ErrorResponse{Error: ErrorBody{Code: code, Message: msg}})
	w.Write(append(b, '\n'))
	return status
}

// decodeJSON decodes a request body strictly: unknown fields,
// trailing garbage, oversized bodies, and syntactically invalid JSON
// (including NaN/Inf literals and out-of-range numbers, which
// encoding/json already rejects) all yield a 4xx error code.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) (code string, status int, err error) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return CodeTooLarge, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", maxBodyBytes)
		}
		return CodeBadRequest, http.StatusBadRequest, fmt.Errorf("invalid JSON: %v", err)
	}
	// A second document after the first is a malformed request, not a
	// stream.
	if dec.More() {
		return CodeBadRequest, http.StatusBadRequest, errors.New("trailing data after JSON body")
	}
	return "", 0, nil
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) int {
	var req InferRequest
	if code, status, err := decodeJSON(w, r, &req); err != nil {
		return s.writeError(w, status, code, err.Error())
	}
	if len(req.Image) != s.stride {
		return s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("image has %d values, model expects %d (%d×%d×%d)",
				len(req.Image), s.stride, s.c, s.h, s.w))
	}
	// encoding/json cannot produce NaN/Inf from valid input, but the
	// engine must never see them even if the decoder changes.
	for i, v := range req.Image {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return s.writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("image[%d] is not finite", i))
		}
	}
	ir := &inferReq{
		img:    req.Image,
		scores: make([]float32, s.classes),
		enq:    time.Now(),
		done:   make(chan struct{}),
	}
	// The admission read lock pairs with Drain's write lock: a request
	// that passes the draining check here is guaranteed to land in the
	// queue before drainCh closes, so the batcher will flush it.
	s.admission.RLock()
	if s.draining.Load() {
		s.admission.RUnlock()
		return s.writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
	}
	select {
	case s.queue <- ir:
		s.accepted.Add(1)
		s.admission.RUnlock()
	default:
		s.admission.RUnlock()
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		return s.writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("infer queue full (%d requests)", s.cfg.QueueDepth))
	}
	<-ir.done
	return s.writeJSON(w, InferResponse{Class: ir.class, Scores: ir.scores, Batch: ir.batch})
}

// evalRequestParams is the Monte-Carlo request surface shared by
// /v1/defect-eval and /v1/stability (both request structs convert to
// it field for field).
type evalRequestParams struct {
	Rates    []float64
	Runs     int
	Seed     *uint64
	Batch    int
	Scenario string
}

// validateEval checks the shared Monte-Carlo request fields and
// resolves them over the server's configured defaults, returning the
// effective eval config and the canonical scenario spec ("" when the
// request omitted one). A non-zero status means the error response
// was already written. Validation order (rates presence → rate count
// → rate range → runs → batch → scenario) is pinned by the error
// tests.
func (s *Server) validateEval(w http.ResponseWriter, p evalRequestParams) (core.DefectEval, string, int) {
	var zero core.DefectEval
	if len(p.Rates) == 0 {
		return zero, "", s.writeError(w, http.StatusBadRequest, CodeBadRequest, "rates must be non-empty")
	}
	if len(p.Rates) > s.cfg.MaxEvalRates {
		return zero, "", s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("%d rates exceeds the limit of %d", len(p.Rates), s.cfg.MaxEvalRates))
	}
	for i, rate := range p.Rates {
		if math.IsNaN(rate) || rate < 0 || rate > 1 {
			return zero, "", s.writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("rates[%d] = %v is outside [0, 1]", i, rate))
		}
	}
	if p.Runs < 0 || p.Runs > s.cfg.MaxEvalRuns {
		return zero, "", s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("runs = %d is outside [0, %d]", p.Runs, s.cfg.MaxEvalRuns))
	}
	if p.Batch < 0 {
		return zero, "", s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch = %d is negative", p.Batch))
	}
	cfg := s.cfg.Eval
	spec := ""
	if p.Scenario != "" {
		sc, err := fault.Parse(p.Scenario)
		if err != nil {
			return zero, "", s.writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		}
		cfg.Scenario = sc
		spec = sc.Spec()
	}
	if p.Runs > 0 {
		cfg.Runs = p.Runs
	}
	if p.Seed != nil {
		cfg.Seed = *p.Seed
	}
	if p.Batch > 0 {
		cfg.Batch = p.Batch
	}
	return cfg, spec, 0
}

// acquireEval performs the draining check and takes one defect-eval
// admission token (the semaphore is shared by /v1/defect-eval and
// /v1/stability, so the combined concurrency stays capped). A non-zero
// status means the request was rejected and the response written;
// otherwise the caller must invoke the returned release func.
func (s *Server) acquireEval(w http.ResponseWriter) (func(), int) {
	if s.pool == nil {
		// Quantized-only instance: fault injection mutates float weight
		// planes, which this server doesn't have (its int8 planes may
		// alias a read-only mmap).
		return nil, s.writeError(w, http.StatusNotImplemented, CodeUnsupported,
			"defect evaluation requires the float model; this instance serves a quantized model only")
	}
	if s.draining.Load() {
		return nil, s.writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
	}
	select {
	case s.evals <- struct{}{}:
		return func() { <-s.evals }, 0
	default:
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		return nil, s.writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("at defect-eval concurrency limit (%d)", s.cfg.EvalConcurrency))
	}
}

func (s *Server) handleDefectEval(w http.ResponseWriter, r *http.Request) int {
	var req DefectEvalRequest
	if code, status, err := decodeJSON(w, r, &req); err != nil {
		return s.writeError(w, status, code, err.Error())
	}
	cfg, spec, status := s.validateEval(w, evalRequestParams(req))
	if status != 0 {
		return status
	}
	release, status := s.acquireEval(w)
	if status != 0 {
		return status
	}
	defer release()
	// A checked-out clone is bit-identical to the source model and the
	// sweep's Monte-Carlo draws depend only on (seed, run), so this
	// response matches a direct core.EvalDefectSweep call byte for
	// byte regardless of which clone served it or what else the server
	// is doing. The lesions are undone before the clone is pooled.
	e := s.pool.Get()
	defer s.pool.Put(e)
	sums, err := core.EvalDefectSweep(r.Context(), e.Net, s.test, req.Rates, cfg)
	if err != nil {
		// Only a cancelled request context reaches here: the client
		// went away (or the listener is shutting down with a deadline).
		return s.writeError(w, http.StatusServiceUnavailable, CodeCanceled, err.Error())
	}
	resp := NewDefectEvalResponse(cfg.Seed, cfg.Runs, req.Rates, sums)
	resp.Scenario = spec
	return s.writeJSON(w, resp)
}

func (s *Server) handleStability(w http.ResponseWriter, r *http.Request) int {
	var req StabilityRequest
	if code, status, err := decodeJSON(w, r, &req); err != nil {
		return s.writeError(w, status, code, err.Error())
	}
	cfg, spec, status := s.validateEval(w, evalRequestParams(req))
	if status != 0 {
		return status
	}
	release, status := s.acquireEval(w)
	if status != 0 {
		return status
	}
	defer release()
	e := s.pool.Get()
	defer s.pool.Put(e)
	rep, err := core.Stability(r.Context(), e.Net, s.test, s.cleanAcc(), req.Rates, cfg)
	if err != nil {
		return s.writeError(w, http.StatusServiceUnavailable, CodeCanceled, err.Error())
	}
	resp := NewStabilityResponse(cfg.Seed, cfg.Runs, rep)
	resp.Scenario = spec
	return s.writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) int {
	h := HealthResponse{
		Status:        "ok",
		Params:        s.params,
		Classes:       s.classes,
		Dims:          [3]int{s.c, s.h, s.w},
		Queue:         len(s.queue),
		QueueCap:      cap(s.queue),
		MaxBatch:      s.cfg.MaxBatch,
		UptimeS:       time.Since(s.start).Seconds(),
		Executors:     s.cfg.Executors,
		IdleExecutors: len(s.execs),
		EvalsInFlight: len(s.evals),
		EvalCap:       s.cfg.EvalConcurrency,
		Accepted:      s.accepted.Load(),
		Numerics:      tensor.ActiveNumerics().String(),
		CPU:           tensor.CPUFeatures(),
		ModelFormat:   s.cfg.ModelFormat,
		Quantized:     s.qsrc != nil,
	}
	if s.draining.Load() {
		h.Status = "draining"
		// Report draining with 503 so load balancers stop routing
		// here, while the body still describes the instance.
		b, _ := json.Marshal(h)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(append(b, '\n'))
		return http.StatusServiceUnavailable
	}
	return s.writeJSON(w, h)
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
