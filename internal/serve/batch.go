package serve

import (
	"time"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/tensor"
)

// inferReq is one admitted inference request, owned by its handler
// goroutine until the batcher closes done. img and scores are
// allocated at decode time; the batch execution path itself writes
// into them without allocating.
type inferReq struct {
	img    []float32 // validated C·H·W input
	scores []float32 // filled with the output row (len classes)
	class  int
	batch  int       // size of the micro-batch that served this request
	enq    time.Time // admission time; starts the batch latency clock
	done   chan struct{}
}

// executor is one batch-execution lane: a warm network clone from the
// shared pool (or, when the server is quantized, a quantized-network
// clone sharing the immutable int8 planes) plus a reusable batch
// buffer. Executors live for the server's lifetime, so after the
// first few batches the forward pass runs entirely on warm
// workspaces.
type executor struct {
	entry *core.CloneEntry
	qnet  *nn.QuantizedNetwork // int8 lane; when set, runBatch uses it
	buf   []float32            // MaxBatch·stride staging area
	x     tensor.Tensor
}

func (s *Server) newExecutor() *executor {
	e := &executor{buf: make([]float32, s.cfg.MaxBatch*s.stride)}
	if s.qsrc != nil {
		e.qnet = s.qsrc.Clone()
	} else {
		e.entry = s.pool.Get()
	}
	return e
}

// batcher coalesces queued infer requests into micro-batches: the
// first request opens a batch and arms the latency budget; the batch
// dispatches when full or when the budget expires. Dispatch hands the
// batch to an idle executor asynchronously, so coalescing of the next
// batch overlaps with execution of the current one. On drain it
// flushes everything left in the queue and waits for all executors to
// come back idle before announcing completion.
func (s *Server) batcher() {
	defer close(s.drained)
	var pending []*inferReq
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first *inferReq
		select {
		case first = <-s.queue:
		case <-s.drainCh:
			s.finishDrain()
			return
		}
		pending = append(pending[:0], first)
		timer.Reset(s.cfg.BatchWindow)
		draining := false
	collect:
		for len(pending) < s.cfg.MaxBatch {
			select {
			case r := <-s.queue:
				pending = append(pending, r)
			case <-timer.C:
				break collect
			case <-s.drainCh:
				// Flush what we have; finishDrain picks up the rest.
				draining = true
				break collect
			}
		}
		if !timer.Stop() && !draining && len(pending) == s.cfg.MaxBatch {
			// Timer may have fired unobserved while the batch filled;
			// drain the channel so the next Reset starts clean.
			select {
			case <-timer.C:
			default:
			}
		}
		s.dispatch(pending)
		if draining {
			s.finishDrain()
			return
		}
	}
}

// dispatch hands a copy of the batch to an idle executor. Waiting for
// an executor is deliberate backpressure: with every lane busy the
// batcher pauses, the queue fills, and admission starts answering 429.
func (s *Server) dispatch(batch []*inferReq) {
	if len(batch) == 0 {
		return
	}
	reqs := make([]*inferReq, len(batch))
	copy(reqs, batch)
	exec := <-s.execs
	go func() {
		s.runBatch(exec, reqs)
		seq := s.batchSeq.Add(1)
		if s.sink.Enabled() {
			s.sink.Emit(obs.Event{
				Kind:    obs.KindServeBatch,
				Run:     int(seq),
				N:       len(reqs),
				Seconds: time.Since(reqs[0].enq).Seconds(),
			})
		}
		for _, r := range reqs {
			close(r.done)
		}
		s.execs <- exec
	}()
}

// finishDrain empties the admission queue after drainCh has closed
// (no new requests can arrive once it has: Drain holds the admission
// write lock while closing it), dispatches the leftovers as final
// batches, and waits for every executor to return — at which point
// every dispatched batch has completed and released its handlers.
func (s *Server) finishDrain() {
	start := time.Now()
	flushed := 0
	batch := make([]*inferReq, 0, s.cfg.MaxBatch)
	for {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
			flushed++
			if len(batch) == s.cfg.MaxBatch {
				s.dispatch(batch)
				batch = batch[:0]
			}
		default:
			s.dispatch(batch)
			// Reclaim every executor: when all lanes are home, every
			// dispatched batch has completed and closed its dones.
			for i := 0; i < s.cfg.Executors; i++ {
				<-s.execs
			}
			if s.sink.Enabled() {
				s.sink.Emit(obs.Event{
					Kind:    obs.KindServeDrain,
					N:       flushed,
					Seconds: time.Since(start).Seconds(),
				})
			}
			return
		}
	}
}

// runBatch executes one micro-batch on an executor's warm clone:
// stage the images into the batch buffer, run one forward pass, and
// write each request's argmax class and score row back. This is the
// serving hot path; with warm workspaces and the sink disabled it
// performs zero heap allocations (pinned by the alloc suite).
func (s *Server) runBatch(e *executor, reqs []*inferReq) {
	bs := len(reqs)
	for i, r := range reqs {
		copy(e.buf[i*s.stride:(i+1)*s.stride], r.img)
	}
	e.x.SetView(e.buf[:bs*s.stride], bs, s.c, s.h, s.w)
	var out *tensor.Tensor
	if e.qnet != nil {
		out = e.qnet.Forward(&e.x, false)
	} else {
		out = e.entry.Net.Forward(&e.x, false)
	}
	od := out.Data()
	for i, r := range reqs {
		r.class = out.ArgMaxRow(i)
		copy(r.scores, od[i*s.classes:(i+1)*s.classes])
		r.batch = bs
	}
}
