package serve

// HTTP contract tests for the serving layer: response shapes,
// validation failures, admission control, and drain semantics, all
// in-process through the handler.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/tensor"
)

var bg = context.Background()

// fixture builds a small untrained CNN and a matching synthetic test
// split — serving semantics do not depend on model quality.
func fixture() (*nn.Network, *data.Dataset) {
	cfg := data.SynthConfig{
		Classes: 5, TrainPer: 4, TestPer: 8,
		Channels: 3, Size: 8, Basis: 10, CoefNoise: 0.1,
		NoiseStd: 0.3, Seed: 11,
	}
	_, test := data.Generate(cfg)
	net := models.BuildSimpleCNN(models.SimpleCNNConfig{InChannels: 3, Width: 4, Classes: 5, Seed: 2})
	return net, test
}

// newTestServer builds a server over the fixture and registers its
// drain as cleanup so the batcher goroutine never outlives the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *nn.Network, *data.Dataset) {
	t.Helper()
	net, test := fixture()
	s, err := New(net, test, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Drain)
	return s, net, test
}

func testImage(ds *data.Dataset) []float32 {
	c, h, w := ds.Dims()
	img := make([]float32, c*h*w)
	ds.Example(0, img)
	return img
}

func postJSON(h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestInferMatchesDirectForward(t *testing.T) {
	s, net, test := newTestServer(t, Config{})
	img := testImage(test)
	body, _ := json.Marshal(InferRequest{Image: img})
	rec := postJSON(s.Handler(), "/v1/infer", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("infer: HTTP %d: %s", rec.Code, rec.Body)
	}
	var resp InferResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}

	// The served prediction must be bit-identical to a direct forward
	// pass on the source network: executors run deep clones of the
	// same weights through the same deterministic kernels.
	c, h, w := test.Dims()
	var x tensor.Tensor
	x.SetView(img, 1, c, h, w)
	out := net.Forward(&x, false)
	if want := out.ArgMaxRow(0); resp.Class != want {
		t.Fatalf("served class %d, direct forward says %d", resp.Class, want)
	}
	od := out.Data()
	if len(resp.Scores) != test.Classes {
		t.Fatalf("scores has %d entries, want %d", len(resp.Scores), test.Classes)
	}
	for i, v := range resp.Scores {
		if v != od[i] {
			t.Fatalf("scores[%d] = %v, direct forward says %v", i, v, od[i])
		}
	}
	if resp.Batch < 1 {
		t.Fatalf("batch = %d, want >= 1", resp.Batch)
	}
}

// TestConcurrentInfersCoalesce pins the micro-batching behavior: with
// a generous window, concurrent requests must be served by shared
// batches, and every response must match the direct forward pass for
// its own image (no cross-request mixups inside a batch).
func TestConcurrentInfersCoalesce(t *testing.T) {
	s, net, test := newTestServer(t, Config{MaxBatch: 8, BatchWindow: 50 * time.Millisecond})
	c, h, w := test.Dims()
	stride := c * h * w

	const n = 8
	type result struct {
		resp InferResponse
		code int
		idx  int
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			img := make([]float32, stride)
			test.Example(idx%test.N(), img)
			body, _ := json.Marshal(InferRequest{Image: img})
			rec := postJSON(s.Handler(), "/v1/infer", body)
			var resp InferResponse
			json.Unmarshal(rec.Body.Bytes(), &resp)
			results <- result{resp: resp, code: rec.Code, idx: idx}
		}(i)
	}
	wg.Wait()
	close(results)

	batched := 0
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", r.idx, r.code)
		}
		img := make([]float32, stride)
		test.Example(r.idx%test.N(), img)
		var x tensor.Tensor
		x.SetView(img, 1, c, h, w)
		out := net.Forward(&x, false)
		if want := out.ArgMaxRow(0); r.resp.Class != want {
			t.Fatalf("request %d: class %d, want %d", r.idx, r.resp.Class, want)
		}
		if r.resp.Batch > 1 {
			batched++
		}
	}
	if batched == 0 {
		t.Fatal("no request was served by a multi-request micro-batch; coalescing is not happening")
	}
}

func TestInferValidation(t *testing.T) {
	s, _, test := newTestServer(t, Config{})
	h := s.Handler()
	img := testImage(test)
	short, _ := json.Marshal(InferRequest{Image: img[:len(img)-1]})

	cases := []struct {
		name string
		body string
		code string
	}{
		{"empty body", ``, CodeBadRequest},
		{"not json", `lesion`, CodeBadRequest},
		{"nan literal", `{"image":[NaN]}`, CodeBadRequest},
		{"inf literal", `{"image":[Infinity]}`, CodeBadRequest},
		{"overflow number", `{"image":[1e999]}`, CodeBadRequest},
		{"wrong shape", string(short), CodeBadRequest},
		{"wrong type", `{"image":"abc"}`, CodeBadRequest},
		{"unknown field", `{"image":[],"shape":[3,8,8]}`, CodeBadRequest},
		{"trailing garbage", `{"image":[]}{"image":[]}`, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(h, "/v1/infer", []byte(tc.body))
			if rec.Code < 400 || rec.Code >= 500 {
				t.Fatalf("HTTP %d, want 4xx: %s", rec.Code, rec.Body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("error body is not the envelope: %v: %s", err, rec.Body)
			}
			if er.Error.Code != tc.code || er.Error.Message == "" {
				t.Fatalf("error = %+v, want code %q with a message", er.Error, tc.code)
			}
		})
	}

	// An oversized body gets its own code.
	huge := `{"image":[` + strings.Repeat("1,", maxBodyBytes/2) + `1]}`
	rec := postJSON(h, "/v1/infer", []byte(huge))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", rec.Code)
	}
}

func TestDefectEvalValidation(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxEvalRuns: 4, MaxEvalRates: 3})
	h := s.Handler()
	cases := []struct {
		name string
		body string
	}{
		{"no rates", `{}`},
		{"empty rates", `{"rates":[]}`},
		{"rate above one", `{"rates":[1.5]}`},
		{"negative rate", `{"rates":[-0.1]}`},
		{"too many rates", `{"rates":[0.1,0.2,0.3,0.4]}`},
		{"too many runs", `{"rates":[0.1],"runs":5}`},
		{"negative runs", `{"rates":[0.1],"runs":-1}`},
		{"negative batch", `{"rates":[0.1],"batch":-8}`},
		{"unknown field", `{"rates":[0.1],"workers":4}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(h, "/v1/defect-eval", []byte(tc.body))
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400: %s", rec.Code, rec.Body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code == "" {
				t.Fatalf("missing error envelope: %s", rec.Body)
			}
		})
	}
}

func TestRoutingErrors(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	h := s.Handler()

	rec := postJSON(h, "/v1/nope", []byte(`{}`))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown route: HTTP %d, want 404", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/infer", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET infer: HTTP %d, want 405", rr.Code)
	}
	if allow := rr.Header().Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}

func TestHealthz(t *testing.T) {
	s, net, test := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	c, hh, w := test.Dims()
	if h.Status != "ok" || h.Params != net.NumParams() || h.Classes != test.Classes ||
		h.Dims != [3]int{c, hh, w} {
		t.Fatalf("healthz = %+v", h)
	}
	// Pool status: default config, nothing in flight.
	if h.QueueCap != s.cfg.QueueDepth || h.Executors != s.cfg.Executors ||
		h.EvalCap != s.cfg.EvalConcurrency {
		t.Fatalf("healthz pool caps = %+v, config = %+v", h, s.cfg)
	}
	if h.IdleExecutors != s.cfg.Executors || h.EvalsInFlight != 0 || h.Accepted != 0 {
		t.Fatalf("healthz pool status = %+v on an idle server", h)
	}
	// Numerics tier is always reported and matches the process tier;
	// CPU features mirror the tensor package's detection verbatim.
	if h.Numerics != tensor.ActiveNumerics().String() || h.CPU != tensor.CPUFeatures() {
		t.Fatalf("healthz numerics = %q cpu = %q, want %q / %q",
			h.Numerics, h.CPU, tensor.ActiveNumerics(), tensor.CPUFeatures())
	}
}

// TestHealthzReportsBusyPool pins the worker-pool view: an occupied
// eval slot and a checked-out executor are visible in /v1/healthz.
func TestHealthzReportsBusyPool(t *testing.T) {
	s, _, _ := newTestServer(t, Config{Executors: 2, EvalConcurrency: 1})
	s.evals <- struct{}{} // one eval in flight
	e := <-s.execs        // one executor busy
	defer func() { s.execs <- e; <-s.evals }()

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.EvalsInFlight != 1 || h.IdleExecutors != 1 || h.Executors != 2 {
		t.Fatalf("busy pool healthz = %+v, want 1 eval in flight, 1 of 2 executors idle", h)
	}
}

// TestServeTimeoutsConfigured pins the hardened listener defaults:
// zero-valued Config resolves to real read/header/idle timeouts so a
// socket-holding client cannot pin a connection forever.
func TestServeTimeoutsConfigured(t *testing.T) {
	cfg := Config{}.Normalize()
	if cfg.ReadHeaderTimeout <= 0 || cfg.ReadTimeout <= 0 || cfg.IdleTimeout <= 0 {
		t.Fatalf("normalized timeouts = %v/%v/%v, want all positive",
			cfg.ReadHeaderTimeout, cfg.ReadTimeout, cfg.IdleTimeout)
	}
	if cfg.ReadHeaderTimeout > cfg.ReadTimeout {
		t.Fatalf("header timeout %v exceeds read timeout %v", cfg.ReadHeaderTimeout, cfg.ReadTimeout)
	}
}

// TestQueueFullAnswers429 pins admission control deterministically:
// with every executor checked out by the test, a formed batch blocks
// in dispatch, the queue fills, and the next request must be rejected
// with 429 + Retry-After rather than waiting unboundedly.
func TestQueueFullAnswers429(t *testing.T) {
	s, _, test := newTestServer(t, Config{MaxBatch: 1, QueueDepth: 2, Executors: 1})
	h := s.Handler()
	body, _ := json.Marshal(InferRequest{Image: testImage(test)})

	exec := <-s.execs // dispatch now blocks; nothing can execute

	codes := make(chan int, 3)
	post := func() {
		rec := postJSON(h, "/v1/infer", body)
		codes <- rec.Code
	}
	// First request: pulled by the batcher into a batch stuck in
	// dispatch. Two more: fill the queue.
	go post()
	waitFor(t, func() bool { return len(s.queue) == 0 && s.batchSeq.Load() == 0 })
	go post()
	go post()
	waitFor(t, func() bool { return len(s.queue) == 2 })

	rec := postJSON(h, "/v1/infer", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: HTTP %d, want 429: %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code != CodeOverloaded {
		t.Fatalf("429 body = %s", rec.Body)
	}

	s.execs <- exec // release: the three held requests must complete
	for i := 0; i < 3; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("held request finished with HTTP %d", code)
		}
	}
}

// TestEvalConcurrencyLimit pins the defect-eval admission cap using
// the semaphore directly (timing-free): with the only token taken, a
// request must bounce with 429.
func TestEvalConcurrencyLimit(t *testing.T) {
	s, _, _ := newTestServer(t, Config{EvalConcurrency: 1})
	s.evals <- struct{}{} // occupy the only slot
	rec := postJSON(s.Handler(), "/v1/defect-eval", []byte(`{"rates":[0.01],"runs":1}`))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429: %s", rec.Code, rec.Body)
	}
	<-s.evals
	rec = postJSON(s.Handler(), "/v1/defect-eval", []byte(`{"rates":[0.01],"runs":1}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("after release: HTTP %d: %s", rec.Code, rec.Body)
	}
}

// TestDrainFlushesQueuedRequests covers the drain contract without
// signals: requests stuck behind a busy executor are flushed to
// completion, later requests get 503, and Drain is idempotent.
func TestDrainFlushesQueuedRequests(t *testing.T) {
	s, _, test := newTestServer(t, Config{MaxBatch: 2, QueueDepth: 16, Executors: 1, BatchWindow: time.Millisecond})
	h := s.Handler()
	body, _ := json.Marshal(InferRequest{Image: testImage(test)})

	exec := <-s.execs // stall execution so requests pile up
	const n = 5
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			rec := postJSON(h, "/v1/infer", body)
			codes <- rec.Code
		}()
	}
	// With the single executor held, at most MaxBatch requests sit in
	// the batcher's stuck dispatch; the rest must be in the queue.
	waitFor(t, func() bool { return len(s.queue) >= n-s.cfg.MaxBatch })

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	waitFor(t, s.Draining)
	s.execs <- exec // let the flush proceed
	<-drained

	for i := 0; i < n; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("request during drain finished with HTTP %d, want 200", code)
		}
	}

	// Post-drain: everything is refused with the draining code.
	rec := postJSON(h, "/v1/infer", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain infer: HTTP %d, want 503", rec.Code)
	}
	rec = postJSON(h, "/v1/defect-eval", []byte(`{"rates":[0.01]}`))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain defect-eval: HTTP %d, want 503", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: HTTP %d, want 503", rr.Code)
	}
	s.Drain() // idempotent
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func TestNewRejectsBadInputs(t *testing.T) {
	net, test := fixture()
	if _, err := New(nil, test, Config{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := New(net, nil, Config{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
}
