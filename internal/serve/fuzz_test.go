package serve

// Fuzz targets for the JSON request decoders: whatever bytes arrive,
// the handlers must answer 2xx/4xx — never a panic, never a 5xx —
// and every non-2xx body must carry the structured error envelope.
// (`go test` exercises the seed corpus; `go test -fuzz` explores.)

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/ftpim/ftpim/internal/core"
)

// fuzzServer is shared across fuzz iterations; eval costs are capped
// hard so hostile-but-valid bodies stay cheap.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzHandler() http.Handler {
	fuzzOnce.Do(func() {
		net, test := fixture()
		s, err := New(net, test, Config{
			MaxEvalRuns:  3,
			MaxEvalRates: 3,
			Eval:         core.DefectEval{Runs: 2, Batch: 16, Workers: 1},
		})
		if err != nil {
			panic(err)
		}
		fuzzSrv = s
	})
	return fuzzSrv.Handler()
}

// checkResponse enforces the fuzz contract on one response.
func checkResponse(t *testing.T, path string, body []byte, code int, respBody []byte) {
	t.Helper()
	if code >= 500 {
		t.Fatalf("%s: HTTP %d for body %q: %s", path, code, body, respBody)
	}
	if code != http.StatusOK {
		var er ErrorResponse
		if err := json.Unmarshal(respBody, &er); err != nil {
			t.Fatalf("%s: HTTP %d body is not the error envelope: %v: %s", path, code, err, respBody)
		}
		if er.Error.Code == "" || er.Error.Message == "" {
			t.Fatalf("%s: HTTP %d with empty error envelope: %s", path, code, respBody)
		}
	}
}

func FuzzInferRequest(f *testing.F) {
	_, test := fixture()
	valid, _ := json.Marshal(InferRequest{Image: testImage(test)})
	f.Add(string(valid))
	f.Add(``)
	f.Add(`{}`)
	f.Add(`{"image":[]}`)
	f.Add(`{"image":[NaN,Infinity,-Infinity]}`)
	f.Add(`{"image":[1e999]}`)
	f.Add(`{"image":[1,2,3]}`)
	f.Add(`{"image":"not an array"}`)
	f.Add(`{"image":[0.1],"extra":true}`)
	f.Add(`[[[[`)
	f.Add(`{"image":[0.1]} trailing`)
	f.Add(string(valid[:len(valid)/2]))
	f.Add(strings.Repeat(`[`, 10_000))

	h := fuzzHandler()
	f.Fuzz(func(t *testing.T, body string) {
		rec := postJSON(h, "/v1/infer", []byte(body))
		checkResponse(t, "/v1/infer", []byte(body), rec.Code, rec.Body.Bytes())
	})
}

func FuzzDefectEvalRequest(f *testing.F) {
	f.Add(`{"rates":[0.01],"runs":2,"seed":7}`)
	f.Add(`{"rates":[0,1]}`)
	f.Add(``)
	f.Add(`{}`)
	f.Add(`{"rates":[]}`)
	f.Add(`{"rates":[NaN]}`)
	f.Add(`{"rates":[1e999]}`)
	f.Add(`{"rates":[-0.5,2]}`)
	f.Add(`{"rates":[0.1],"runs":-3}`)
	f.Add(`{"rates":[0.1],"runs":100000}`)
	f.Add(`{"rates":[0.1],"batch":-1}`)
	f.Add(`{"rates":[0.1],"seed":-1}`)
	f.Add(`{"rates":[0.1],"workers":9}`)
	f.Add(`{"rates":"all"}`)
	f.Add(`{"rates":[0.1]}{"rates":[0.1]}`)

	h := fuzzHandler()
	f.Fuzz(func(t *testing.T, body string) {
		rec := postJSON(h, "/v1/defect-eval", []byte(body))
		checkResponse(t, "/v1/defect-eval", []byte(body), rec.Code, rec.Body.Bytes())
	})
}
