//go:build !race

package serve

// Allocation-regression pin for the disabled-sink serving hot path:
// once an executor's clone has warm workspaces, executing a
// micro-batch (stage images → forward → write classes and score rows)
// must not allocate at all. The HTTP and JSON layers around it
// allocate per request by nature; the guarantee that matters for
// throughput is that the model execution core stays off the heap.
// Excluded under -race (the race runtime changes allocation behavior);
// tensor workers pinned to 1 because spawning shard goroutines
// allocates.

import (
	"runtime"
	"testing"
	"time"

	"github.com/ftpim/ftpim/internal/tensor"
)

func TestWarmServeBatchAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	s, _, test := newTestServer(t, Config{MaxBatch: 8, Executors: 1})
	img := testImage(test)

	const bs = 8
	reqs := make([]*inferReq, bs)
	for i := range reqs {
		reqs[i] = &inferReq{
			img:    img,
			scores: make([]float32, s.classes),
			enq:    time.Now(),
		}
	}
	exec := <-s.execs
	defer func() { s.execs <- exec }()

	step := func() { s.runBatch(exec, reqs) }
	for i := 0; i < 10; i++ {
		step() // warm the clone's layer workspaces at this batch size
	}
	// Settle the runtime before measuring: the fixture + server setup
	// grow the heap enough that the process's first GC cycle can
	// otherwise land inside the AllocsPerRun window, and its background
	// activity is misattributed to the measured op (observed as a flaky
	// 1.0/op on a 1-CPU host while an alloc-profiled run of the same
	// window records zero mallocs from runBatch).
	runtime.GC()
	if avg := testing.AllocsPerRun(50, step); avg > 0 {
		t.Fatalf("warm serve batch allocates %.1f/op, budget is 0", avg)
	}
}

// TestWarmQuantizedServeBatchAllocs pins the same zero-alloc
// guarantee for the int8 serving lane: once the quantized clone's
// scratch buffers are grown for the batch size, runBatch must stay
// off the heap.
func TestWarmQuantizedServeBatchAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	_, q, test := quantFixture(t)
	s, err := New(nil, test, Config{Quantized: q, MaxBatch: 8, Executors: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Drain)
	img := testImage(test)

	const bs = 8
	reqs := make([]*inferReq, bs)
	for i := range reqs {
		reqs[i] = &inferReq{
			img:    img,
			scores: make([]float32, s.classes),
			enq:    time.Now(),
		}
	}
	exec := <-s.execs
	defer func() { s.execs <- exec }()

	step := func() { s.runBatch(exec, reqs) }
	for i := 0; i < 10; i++ {
		step()
	}
	runtime.GC()
	if avg := testing.AllocsPerRun(50, step); avg > 0 {
		t.Fatalf("warm quantized serve batch allocates %.1f/op, budget is 0", avg)
	}
}
