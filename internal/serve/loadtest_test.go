package serve

// Tests for the in-process load harness: a small always-on smoke run,
// the acceptance-scale run (>=1000 concurrent clients, skipped under
// -short), and a WriteBench round-trip pinning the bench JSON schema.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ftpim/ftpim/internal/core"
)

func TestLoadSmoke(t *testing.T) {
	s, _, test := newTestServer(t, Config{
		MaxBatch:    16,
		BatchWindow: time.Millisecond,
		Eval:        core.DefectEval{Runs: 2, Batch: 16, Workers: 1},
	})
	res, err := Load(s.Handler(), LoadOptions{
		Clients:   32,
		Requests:  3,
		Image:     testImage(test),
		EvalEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d hard errors under smoke load", res.Errors)
	}
	if want := 32 * 3; res.Infer != want {
		t.Fatalf("completed %d infer requests, want %d", res.Infer, want)
	}
	if res.Evals != 32 {
		t.Fatalf("completed %d defect-evals, want 32", res.Evals)
	}
	if res.Throughput <= 0 || res.Seconds <= 0 {
		t.Fatalf("degenerate timing: %+v", res)
	}
	if res.P50ms <= 0 || res.P99ms < res.P50ms || res.MaxMs < res.P99ms {
		t.Fatalf("latency percentiles out of order: p50=%.3f p99=%.3f max=%.3f",
			res.P50ms, res.P99ms, res.MaxMs)
	}
}

// TestLoadThousandClients is the acceptance-scale run: >=1000
// concurrent clients against the in-process handler. On a small host
// this is also the strongest coalescing evidence — with 2 executors
// and 1000 waiting clients, micro-batches must form.
func TestLoadThousandClients(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-client load test skipped in -short mode")
	}
	s, _, test := newTestServer(t, Config{
		MaxBatch:    32,
		BatchWindow: 2 * time.Millisecond,
		QueueDepth:  256,
		Executors:   2,
		Eval:        core.DefectEval{Runs: 2, Batch: 16, Workers: 1},
	})
	res, err := Load(s.Handler(), LoadOptions{
		Clients:   1000,
		Requests:  2,
		Image:     testImage(test),
		EvalEvery: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d hard errors at 1000 clients", res.Errors)
	}
	if want := 1000 * 2; res.Infer != want {
		t.Fatalf("completed %d infer requests, want %d (429s must be retried, not dropped)",
			res.Infer, want)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput %.1f req/s, want > 0", res.Throughput)
	}
	// 1000 clients against a 256-deep queue and 2 executors cannot be
	// served one request per batch.
	if res.MeanBatch <= 1 {
		t.Fatalf("mean batch %.2f at 1000 concurrent clients: micro-batching is not coalescing",
			res.MeanBatch)
	}
	t.Logf("1000 clients: %.1f req/s, p50 %.2fms p99 %.2fms, mean batch %.1f, %d retried 429s",
		res.Throughput, res.P50ms, res.P99ms, res.MeanBatch, res.Rejected)
}

func TestWriteBenchRoundTrip(t *testing.T) {
	cfg := Config{MaxBatch: 32, BatchWindow: 2 * time.Millisecond, QueueDepth: 256, Executors: 2}.Normalize()
	res := LoadResult{
		Clients: 1000, Requests: 2000, Infer: 2000,
		Seconds: 1.5, Throughput: 1333.3,
		P50ms: 4.2, P90ms: 9.9, P99ms: 21.0, MaxMs: 30.1, MeanBatch: 24.6,
	}
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := WriteBench(path, "smoke", cfg, 1000, 2, res); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec BenchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("bench file is not valid JSON: %v", err)
	}
	if rec.Schema != BenchSchemaVersion {
		t.Fatalf("schema %q, want %q", rec.Schema, BenchSchemaVersion)
	}
	if rec.Config.Clients != 1000 || rec.Config.PerClient != 2 || rec.Config.MaxBatch != 32 {
		t.Fatalf("config not preserved: %+v", rec.Config)
	}
	if rec.Result.Throughput != res.Throughput || rec.Result.P99ms != res.P99ms {
		t.Fatalf("result not preserved: %+v", rec.Result)
	}
	if rec.Host.NumCPU <= 0 {
		t.Fatalf("host fingerprint missing: %+v", rec.Host)
	}
}
