package serve

// Conformance and contract tests for POST /v1/stability and for the
// optional scenario field shared with /v1/defect-eval. The stability
// endpoint must be byte-identical to a direct core.Stability call with
// the served model as its own pretrain reference, and a request that
// names a fault scenario must match a direct engine call configured
// with the same parsed scenario.

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/fault"
)

func TestServedStabilityBitIdenticalToDirect(t *testing.T) {
	rates := []float64{0, 0.05, 0.1}
	const runs = 3
	const seed = uint64(4321)
	evalBase := core.DefectEval{Runs: 5, Batch: 16, Seed: 999, Workers: 2}

	s, net, test := newTestServer(t, Config{
		Eval:            evalBase,
		EvalConcurrency: 64,
		MaxEvalRates:    8,
	})
	h := s.Handler()

	// Ground truth: a direct core.Stability call with the request's
	// parameters over the server defaults, using the served model's
	// own clean accuracy as the pretrain reference, serialized through
	// the handler's response constructor.
	cfg := evalBase.Normalize()
	cfg.Runs = runs
	cfg.Seed = seed
	accClean := core.EvalClean(net, test, cfg.Batch)
	rep, err := core.Stability(bg, net, test, accClean, rates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBody, err := json.Marshal(NewStabilityResponse(seed, runs, rep))
	if err != nil {
		t.Fatal(err)
	}
	want := string(wantBody) + "\n"

	body, _ := json.Marshal(StabilityRequest{Rates: rates, Runs: runs, Seed: ptr(seed)})
	const concurrency = 8
	bodies := make([]string, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postJSON(h, "/v1/stability", body)
			if rec.Code != http.StatusOK {
				bodies[i] = "HTTP " + rec.Result().Status + ": " + rec.Body.String()
				return
			}
			bodies[i] = rec.Body.String()
		}(i)
	}
	wg.Wait()
	for i, got := range bodies {
		if got != want {
			t.Fatalf("response %d diverges from the direct engine call\n got: %s\nwant: %s", i, got, want)
		}
	}

	// The rate-0 row injects nothing, so its defect accuracy equals
	// the clean accuracy and SS must be the null (+Inf) encoding.
	var resp StabilityResponse
	if err := json.Unmarshal([]byte(bodies[0]), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].SS != nil {
		t.Fatalf("rate-0 SS = %v, want null (+Inf)", *resp.Results[0].SS)
	}
	if resp.Scenario != "" {
		t.Fatalf("scenario echoed as %q for a request that omitted it", resp.Scenario)
	}
}

// TestServedScenarioMatchesDirect pins that a request naming a fault
// scenario evaluates under exactly that scenario (byte-identical to a
// direct engine call with the parsed scenario) and that the response
// echoes the canonical spec, not the client's shorthand.
func TestServedScenarioMatchesDirect(t *testing.T) {
	evalBase := core.DefectEval{Runs: 3, Batch: 16, Seed: 2024, Workers: 2}
	s, net, test := newTestServer(t, Config{Eval: evalBase, MaxEvalRates: 8})
	h := s.Handler()
	rates := []float64{0.05, 0.1}

	for _, spec := range []string{"transient", "cluster:len=4", "drop"} {
		t.Run(spec, func(t *testing.T) {
			sc := fault.MustParse(spec)
			cfg := evalBase.Normalize()
			cfg.Scenario = sc

			sums, err := core.EvalDefectSweep(bg, net, test, rates, cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantResp := NewDefectEvalResponse(cfg.Seed, cfg.Runs, rates, sums)
			wantResp.Scenario = sc.Spec()
			wantBody, _ := json.Marshal(wantResp)

			body, _ := json.Marshal(DefectEvalRequest{Rates: rates, Scenario: spec})
			rec := postJSON(h, "/v1/defect-eval", body)
			if rec.Code != http.StatusOK {
				t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
			}
			if got, want := rec.Body.String(), string(wantBody)+"\n"; got != want {
				t.Fatalf("scenario %q diverges from direct call:\n got: %s\nwant: %s", spec, got, want)
			}

			// Same contract on the stability endpoint.
			accClean := core.EvalClean(net, test, cfg.Batch)
			rep, err := core.Stability(bg, net, test, accClean, rates, cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantStab := NewStabilityResponse(cfg.Seed, cfg.Runs, rep)
			wantStab.Scenario = sc.Spec()
			wantStabBody, _ := json.Marshal(wantStab)

			body, _ = json.Marshal(StabilityRequest{Rates: rates, Scenario: spec})
			rec = postJSON(h, "/v1/stability", body)
			if rec.Code != http.StatusOK {
				t.Fatalf("stability HTTP %d: %s", rec.Code, rec.Body)
			}
			if got, want := rec.Body.String(), string(wantStabBody)+"\n"; got != want {
				t.Fatalf("stability scenario %q diverges from direct call:\n got: %s\nwant: %s", spec, got, want)
			}
		})
	}
}

// TestLegacyDefectEvalBodyUnchanged pins backward compatibility: a
// pre-scenario request body must produce a response with no scenario
// key at all — byte-identical to what the endpoint returned before the
// field existed.
func TestLegacyDefectEvalBodyUnchanged(t *testing.T) {
	evalBase := core.DefectEval{Runs: 2, Batch: 16, Seed: 7, Workers: 1}
	s, _, _ := newTestServer(t, Config{Eval: evalBase})
	rec := postJSON(s.Handler(), "/v1/defect-eval", []byte(`{"rates":[0.05],"runs":1}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	if strings.Contains(rec.Body.String(), "scenario") {
		t.Fatalf("legacy request got a scenario field in the response: %s", rec.Body)
	}
}

func TestStabilityValidation(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxEvalRuns: 4, MaxEvalRates: 3})
	h := s.Handler()
	cases := []struct {
		name string
		body string
	}{
		{"no rates", `{}`},
		{"empty rates", `{"rates":[]}`},
		{"rate above one", `{"rates":[1.5]}`},
		{"negative rate", `{"rates":[-0.1]}`},
		{"too many rates", `{"rates":[0.1,0.2,0.3,0.4]}`},
		{"too many runs", `{"rates":[0.1],"runs":5}`},
		{"negative runs", `{"rates":[0.1],"runs":-1}`},
		{"negative batch", `{"rates":[0.1],"batch":-8}`},
		{"unknown field", `{"rates":[0.1],"workers":4}`},
		{"unknown scenario", `{"rates":[0.1],"scenario":"nope"}`},
		{"malformed scenario", `{"rates":[0.1],"scenario":"chen:r0"}`},
		{"bad scenario param", `{"rates":[0.1],"scenario":"cluster:len=0"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, path := range []string{"/v1/stability", "/v1/defect-eval"} {
				rec := postJSON(h, path, []byte(tc.body))
				if rec.Code != http.StatusBadRequest {
					t.Fatalf("%s: HTTP %d, want 400: %s", path, rec.Code, rec.Body)
				}
				var er ErrorResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code == "" {
					t.Fatalf("%s: missing error envelope: %s", path, rec.Body)
				}
			}
		})
	}
}

// TestStabilitySharesEvalSemaphore pins that /v1/stability draws from
// the same admission pool as /v1/defect-eval, so the combined
// Monte-Carlo concurrency stays capped.
func TestStabilitySharesEvalSemaphore(t *testing.T) {
	s, _, _ := newTestServer(t, Config{EvalConcurrency: 1})
	s.evals <- struct{}{} // occupy the only slot
	rec := postJSON(s.Handler(), "/v1/stability", []byte(`{"rates":[0.01],"runs":1}`))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429: %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	<-s.evals
	rec = postJSON(s.Handler(), "/v1/stability", []byte(`{"rates":[0.01],"runs":1}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("after release: HTTP %d: %s", rec.Code, rec.Body)
	}
}
