package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"
)

// LoadOptions drives a load test.
type LoadOptions struct {
	// Clients is the number of concurrent client goroutines (<=0 → 64).
	Clients int
	// Requests is the number of successful infer requests each client
	// must complete (<=0 → 4).
	Requests int
	// Image is the request payload; must match the served model's
	// input size.
	Image []float32
	// EvalEvery mixes in one defect-eval request per client after
	// every EvalEvery infer requests (0 disables the mix-in).
	EvalEvery int
	// EvalBody is the defect-eval request used for the mix-in; nil
	// with EvalEvery > 0 defaults to one rate at 0.01 with 2 runs.
	EvalBody *DefectEvalRequest
	// MaxRetries bounds the 429 retries per request (<=0 → 10_000).
	// Admission rejections are the service working as designed; the
	// harness retries them and reports the count.
	MaxRetries int
}

// LoadResult summarizes one load test.
type LoadResult struct {
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"` // successful requests, all kinds
	Infer      int     `json:"infer"`
	Evals      int     `json:"evals"`
	Rejected   int     `json:"rejected_429"` // admission rejections retried
	Errors     int     `json:"errors"`       // non-200, non-429 responses
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"throughput_rps"`
	P50ms      float64 `json:"p50_ms"`
	P90ms      float64 `json:"p90_ms"`
	P99ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	MeanBatch  float64 `json:"mean_batch"` // average micro-batch size over infer responses
}

// Load drives h with opt.Clients concurrent in-process clients, each
// completing opt.Requests infer calls (retrying 429s), and returns
// latency percentiles and throughput. Requests go straight to the
// handler through httptest machinery — no sockets — so thousands of
// concurrent clients exercise the batcher, admission control, and
// JSON layers without exhausting file descriptors.
func Load(h http.Handler, opt LoadOptions) (LoadResult, error) {
	if opt.Clients <= 0 {
		opt.Clients = 64
	}
	if opt.Requests <= 0 {
		opt.Requests = 4
	}
	if opt.MaxRetries <= 0 {
		opt.MaxRetries = 10_000
	}
	if len(opt.Image) == 0 {
		return LoadResult{}, fmt.Errorf("serve: load test needs an image payload")
	}
	inferBody, err := json.Marshal(InferRequest{Image: opt.Image})
	if err != nil {
		return LoadResult{}, err
	}
	var evalBody []byte
	if opt.EvalEvery > 0 {
		eb := opt.EvalBody
		if eb == nil {
			eb = &DefectEvalRequest{Rates: []float64{0.01}, Runs: 2}
		}
		if evalBody, err = json.Marshal(eb); err != nil {
			return LoadResult{}, err
		}
	}

	type clientStats struct {
		latencies []time.Duration
		batchSum  int
		infer     int
		evals     int
		rejected  int
		errors    int
	}
	stats := make([]clientStats, opt.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func(cs *clientStats) {
			defer wg.Done()
			cs.latencies = make([]time.Duration, 0, opt.Requests)
			do := func(path string, body []byte) (*httptest.ResponseRecorder, time.Duration) {
				for attempt := 0; ; attempt++ {
					req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
					rec := httptest.NewRecorder()
					t0 := time.Now()
					h.ServeHTTP(rec, req)
					d := time.Since(t0)
					if rec.Code == http.StatusTooManyRequests && attempt < opt.MaxRetries {
						cs.rejected++
						time.Sleep(500 * time.Microsecond)
						continue
					}
					return rec, d
				}
			}
			for i := 0; i < opt.Requests; i++ {
				rec, d := do("/v1/infer", inferBody)
				if rec.Code != http.StatusOK {
					cs.errors++
					continue
				}
				var resp InferResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Batch < 1 {
					cs.errors++
					continue
				}
				cs.latencies = append(cs.latencies, d)
				cs.batchSum += resp.Batch
				cs.infer++
				if opt.EvalEvery > 0 && (i+1)%opt.EvalEvery == 0 {
					rec, _ := do("/v1/defect-eval", evalBody)
					if rec.Code != http.StatusOK {
						cs.errors++
					} else {
						cs.evals++
					}
				}
			}
		}(&stats[c])
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := LoadResult{Clients: opt.Clients, Seconds: elapsed.Seconds()}
	var all []time.Duration
	batchSum := 0
	for i := range stats {
		cs := &stats[i]
		all = append(all, cs.latencies...)
		batchSum += cs.batchSum
		res.Infer += cs.infer
		res.Evals += cs.evals
		res.Rejected += cs.rejected
		res.Errors += cs.errors
	}
	res.Requests = res.Infer + res.Evals
	if res.Seconds > 0 {
		res.Throughput = float64(res.Requests) / res.Seconds
	}
	if res.Infer > 0 {
		res.MeanBatch = float64(batchSum) / float64(res.Infer)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(all)-1))
			return all[i]
		}
		res.P50ms = ms(pct(0.50))
		res.P90ms = ms(pct(0.90))
		res.P99ms = ms(pct(0.99))
		res.MaxMs = ms(all[len(all)-1])
	}
	return res, nil
}

// BenchRecord is the schema of results/BENCH_serve.json.
type BenchRecord struct {
	Schema      string     `json:"schema"`
	Description string     `json:"description"`
	Host        BenchHost  `json:"host"`
	Config      BenchSetup `json:"config"`
	Result      LoadResult `json:"result"`
}

// BenchHost describes the machine the record was taken on.
type BenchHost struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
}

// BenchSetup records the server and workload shape behind the numbers.
type BenchSetup struct {
	Preset        string  `json:"preset"`
	MaxBatch      int     `json:"max_batch"`
	BatchWindowMs float64 `json:"batch_window_ms"`
	QueueDepth    int     `json:"queue_depth"`
	Executors     int     `json:"executors"`
	Clients       int     `json:"clients"`
	PerClient     int     `json:"requests_per_client"`
}

// BenchSchemaVersion identifies the BENCH_serve.json schema.
const BenchSchemaVersion = "ftpim.bench.serve/v1"

// WriteBench writes a load-test record to path (atomically via temp
// file + rename, like every other artifact the project persists).
func WriteBench(path, preset string, cfg Config, setupClients, perClient int, res LoadResult) error {
	cfg = cfg.Normalize()
	rec := BenchRecord{
		Schema: BenchSchemaVersion,
		Description: "In-process load test of the ftpim serving layer: concurrent clients " +
			"driving POST /v1/infer (plus a defect-eval mix-in) through the micro-batcher. " +
			"Regenerate with: ftpim serve -preset " + preset + " -loadtest -bench-out " + path,
		Host: BenchHost{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()},
		Config: BenchSetup{
			Preset:        preset,
			MaxBatch:      cfg.MaxBatch,
			BatchWindowMs: float64(cfg.BatchWindow) / float64(time.Millisecond),
			QueueDepth:    cfg.QueueDepth,
			Executors:     cfg.Executors,
			Clients:       setupClients,
			PerClient:     perClient,
		},
		Result: res,
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
