// Package serve turns the ftpim engine into a long-running inference
// and defect-evaluation service: an HTTP JSON API with dynamic
// micro-batching, admission control, and graceful drain.
//
// # API
//
//	POST /v1/infer        {"image":[...]}            → {"class":k,"scores":[...],"batch":n}
//	POST /v1/defect-eval  {"rates":[...],"runs":n,…} → {"seed":s,"runs":n,"results":[{rate,n,mean,…}]}
//	POST /v1/stability    {"rates":[...],"runs":n,…} → {"seed":s,…,"results":[{rate,acc_defect,ss,…}]}
//	GET  /v1/healthz                                 → {"status":"ok",…}
//
// Both Monte-Carlo endpoints accept an optional "scenario" spec
// (fault.Parse grammar, e.g. "cluster:len=8"); omitting it keeps the
// server's configured default, so legacy request bodies behave — and
// serialize — exactly as before the field existed.
//
// Malformed requests yield a structured 4xx error envelope
// ({"error":{"code":…,"message":…}}), never a 5xx or a panic.
//
// # Micro-batching
//
// Concurrent infer requests are coalesced by a batcher goroutine: the
// first queued request opens a batch and starts the latency budget
// (Config.BatchWindow); the batch executes as one forward pass when it
// reaches Config.MaxBatch requests or when the budget expires,
// whichever is first. Execution happens on a pool of deep network
// clones (core.ClonePool) whose layer workspaces stay warm, so a
// steady-state batch runs on the zero-alloc path. The source network
// is never mutated.
//
// # Determinism
//
// Defect-eval requests run core.EvalDefectSweep on a checked-out
// clone. Because the clone's weights are bit-identical to the source
// model and every Monte-Carlo run draws from the positional
// fault.RunRNG(seed, run), a served response is bit-identical to a
// direct engine call with the same parameters — at any client
// concurrency and any worker count. The conformance suite pins this.
//
// # Admission control and drain
//
// The infer queue is bounded (Config.QueueDepth) and defect-eval
// concurrency is capped (Config.EvalConcurrency); overload yields
// 429 + Retry-After instead of queue collapse. Cancelling the context
// passed to Serve/Run (the CLI wires SIGTERM and SIGINT to it) stops
// admission with 503 "draining", flushes every queued request through
// the batcher, waits for in-flight work, and returns cleanly.
//
// Every request, executed batch, and drain emits a typed obs event
// (serve.request / serve.batch / serve.drain), so a JSONL sink doubles
// as access telemetry.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/obs"
)

// Config tunes the service. The zero value of every field resolves to
// a documented default via Normalize.
type Config struct {
	// MaxBatch is the largest inference micro-batch (<=0 → 32). A
	// batch executes as soon as it is full, regardless of the window.
	MaxBatch int
	// BatchWindow is the latency budget measured from the first
	// request queued into an open batch (<=0 → 2ms). When it expires
	// the batch executes at whatever size it reached.
	BatchWindow time.Duration
	// QueueDepth bounds the infer admission queue (<=0 → 256). A full
	// queue answers 429 with Retry-After.
	QueueDepth int
	// Executors is the number of concurrent batch executors, each
	// owning one warm network clone (<=0 → 2).
	Executors int
	// EvalConcurrency caps concurrent defect-eval requests (<=0 → 2);
	// excess requests get 429 + Retry-After.
	EvalConcurrency int
	// MaxEvalRuns / MaxEvalRates cap the per-request Monte-Carlo cost
	// a client may ask for (<=0 → 64 runs, 16 rates); larger requests
	// are rejected with 400 rather than silently clamped.
	MaxEvalRuns  int
	MaxEvalRates int
	// RetryAfter is the Retry-After hint on 429 responses (<=0 → 1s).
	RetryAfter time.Duration
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers (<=0 → 5s) — the Slowloris guard.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading one full request, headers and body
	// (<=0 → 30s).
	ReadTimeout time.Duration
	// IdleTimeout closes keep-alive connections with no request in
	// flight (<=0 → 2m). There is deliberately no WriteTimeout: a
	// defect-eval response legitimately takes as long as the eval the
	// client asked for, and slow writers are already bounded by the
	// kernel's send buffer plus IdleTimeout.
	IdleTimeout time.Duration
	// Quantized, when set, serves /v1/infer from this int8 network:
	// every executor gets a Clone (immutable weight planes shared, so
	// replicas add scratch memory only). The float model stays the
	// substrate for defect-eval and stability — fault injection mutates
	// weight planes, which the quantized path's planes (possibly
	// aliasing a read-only mmap) must never be. A nil float model is
	// allowed when Quantized is set; the Monte-Carlo endpoints then
	// answer 501 unsupported.
	Quantized *nn.QuantizedNetwork
	// ModelFormat names the weight source for /v1/healthz and version
	// reporting ("" → "gob-cache"; the FTPM loader passes "ftpm-v1").
	ModelFormat string
	// Eval supplies the defaults for defect-eval and stability
	// requests: Workers, eval batch size, fault scenario, and the
	// seed/runs used when the request omits them. Normalized on New.
	Eval core.DefectEval
	// Sink receives serve.request/serve.batch/serve.drain events plus
	// the engine's own eval events (nil → obs.Null). When disabled the
	// serving hot path skips event construction entirely.
	Sink obs.Sink
}

// Normalize resolves zero-valued fields to their documented defaults.
func (c Config) Normalize() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.EvalConcurrency <= 0 {
		c.EvalConcurrency = 2
	}
	if c.MaxEvalRuns <= 0 {
		c.MaxEvalRuns = 64
	}
	if c.MaxEvalRates <= 0 {
		c.MaxEvalRates = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.ModelFormat == "" {
		c.ModelFormat = "gob-cache"
	}
	c.Eval = c.Eval.Normalize()
	c.Sink = obs.Or(c.Sink)
	return c
}

// Server serves one trained model. Create with New, expose with
// Handler (or Run/Serve for a managed listener), stop with Drain.
type Server struct {
	cfg     Config
	src     *nn.Network
	qsrc    *nn.QuantizedNetwork
	test    *data.Dataset
	c, h, w int
	classes int
	stride  int // floats per image
	params  int
	sink    obs.Sink

	pool  *core.ClonePool // shared clones: infer executors + defect-eval
	queue chan *inferReq
	execs chan *executor // idle executor stack (capacity cfg.Executors)
	evals chan struct{}  // defect-eval admission tokens

	// admission guards the draining flag against the enqueue in
	// handleInfer: Drain takes the write side after setting draining,
	// so once drainCh closes no further request can slip into queue
	// and every request that did is flushed by the batcher.
	admission sync.RWMutex
	draining  atomic.Bool
	drainOnce sync.Once
	drainCh   chan struct{} // closed to start the drain
	drained   chan struct{} // closed when the batcher has flushed

	batchSeq atomic.Int64
	accepted atomic.Int64 // infer requests admitted past the queue
	start    time.Time

	// accClean is the served model's fault-free accuracy, the pretrain
	// reference /v1/stability scores against, computed lazily on the
	// first stability request (on a pooled clone, full test set).
	accClean     float64
	accCleanOnce sync.Once
}

// cleanAcc returns the served model's fault-free accuracy on the
// evaluation dataset, computing it once on first use. The served model
// is its own stability reference: SS compares defect accuracy against
// the very weights being served.
func (s *Server) cleanAcc() float64 {
	s.accCleanOnce.Do(func() {
		e := s.pool.Get()
		defer s.pool.Put(e)
		s.accClean = core.EvalClean(e.Net, s.test, s.cfg.Eval.Batch)
	})
	return s.accClean
}

// New creates a Server for the given trained network and evaluation
// dataset (the split defect-eval requests measure accuracy on). The
// network is deep-cloned for every executor; the original is never
// mutated by the server. model may be nil when cfg.Quantized is set
// (pure quantized serving, e.g. from an mmap'd FTPM file); the
// Monte-Carlo endpoints then answer 501, since fault injection needs
// mutable float planes.
func New(model *nn.Network, test *data.Dataset, cfg Config) (*Server, error) {
	if model == nil && cfg.Quantized == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if test == nil || test.N() == 0 {
		return nil, fmt.Errorf("serve: empty evaluation dataset")
	}
	cfg = cfg.Normalize()
	c, h, w := test.Dims()
	params := 0
	if model != nil {
		params = model.NumParams()
	} else {
		params = cfg.Quantized.NumParams()
	}
	var pool *core.ClonePool
	if model != nil {
		pool = core.NewClonePool(model, cfg.Eval.Scenario)
	}
	s := &Server{
		cfg:     cfg,
		src:     model,
		qsrc:    cfg.Quantized,
		test:    test,
		c:       c,
		h:       h,
		w:       w,
		classes: test.Classes,
		stride:  c * h * w,
		params:  params,
		sink:    cfg.Sink,
		pool:    pool,
		queue:   make(chan *inferReq, cfg.QueueDepth),
		execs:   make(chan *executor, cfg.Executors),
		evals:   make(chan struct{}, cfg.EvalConcurrency),
		drainCh: make(chan struct{}),
		drained: make(chan struct{}),
		start:   time.Now(),
	}
	for i := 0; i < cfg.Executors; i++ {
		s.execs <- s.newExecutor()
	}
	go s.batcher()
	return s, nil
}

// Drain stops admission (new requests get 503), flushes every queued
// request through the batcher, and waits for in-flight batches to
// finish. It is idempotent and safe to call concurrently; every call
// blocks until the drain completes.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		// Admission write lock: after this, no handler can be between
		// its draining check and its enqueue, so the queue can only
		// shrink once drainCh closes.
		s.admission.Lock()
		close(s.drainCh)
		s.admission.Unlock()
	})
	<-s.drained
}

// Draining reports whether the server has begun (or finished) its
// drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve accepts connections on l until ctx is cancelled, then drains:
// admission stops, queued batches flush, in-flight handlers complete,
// and the listener closes. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Order matters: Drain first so handlers blocked on queued infer
	// requests are released, then Shutdown waits for them to write
	// their responses before closing the listener for good.
	s.Drain()
	shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return hs.Shutdown(shCtx)
}

// Run listens on addr and calls Serve.
func (s *Server) Run(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}
