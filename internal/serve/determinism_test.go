package serve

// Determinism conformance at the network boundary: this extends the
// engine's determinism-equivalence suite (internal/core
// parallel_test.go) to the served API. A defect-eval request must
// return byte-identical results to a direct core.EvalDefectSweep call
// with the same parameters — at every tested client concurrency,
// while the server is simultaneously running inference batches on the
// same clone pool.

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/ftpim/ftpim/internal/core"
)

func TestServedDefectEvalBitIdenticalToDirect(t *testing.T) {
	rates := []float64{0, 0.02, 0.1}
	const runs = 3
	const seed = uint64(1234)
	evalBase := core.DefectEval{Runs: 5, Batch: 16, Seed: 999, Workers: 2}

	s, net, test := newTestServer(t, Config{
		Eval:            evalBase,
		EvalConcurrency: 64, // the conformance sweep must never be admission-limited
		MaxEvalRates:    8,
	})
	h := s.Handler()

	// The ground truth: a direct engine call with the request's
	// parameters layered over the server's configured defaults,
	// serialized through the same response constructor the handler
	// uses. EvalDefectSweep restores the live network's weights, so
	// computing it on the source model is side-effect-free.
	cfg := evalBase
	cfg.Runs = runs
	cfg.Seed = seed
	sums, err := core.EvalDefectSweep(bg, net, test, rates, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBody, err := json.Marshal(NewDefectEvalResponse(seed, runs, rates, sums))
	if err != nil {
		t.Fatal(err)
	}
	want := string(wantBody) + "\n"

	body, _ := json.Marshal(DefectEvalRequest{Rates: rates, Runs: runs, Seed: ptr(seed)})
	inferBody, _ := json.Marshal(InferRequest{Image: testImage(test)})

	for _, concurrency := range []int{1, 8, 64} {
		// Background inference load: the defect-eval responses must be
		// unaffected by whatever else the clone pool is serving.
		stopLoad := make(chan struct{})
		var loadWG sync.WaitGroup
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
					postJSON(h, "/v1/infer", inferBody)
					time.Sleep(time.Millisecond)
				}
			}
		}()

		bodies := make([]string, concurrency)
		var wg sync.WaitGroup
		for i := 0; i < concurrency; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rec := postJSON(h, "/v1/defect-eval", body)
				if rec.Code != http.StatusOK {
					bodies[i] = "HTTP " + rec.Result().Status + ": " + rec.Body.String()
					return
				}
				bodies[i] = rec.Body.String()
			}(i)
		}
		wg.Wait()
		close(stopLoad)
		loadWG.Wait()

		for i, got := range bodies {
			if got != want {
				t.Fatalf("concurrency %d: response %d diverges from the direct engine call\n got: %s\nwant: %s",
					concurrency, i, got, want)
			}
		}
	}
}

// TestServedDefectEvalDefaultsEchoed pins that a request omitting
// seed/runs inherits the server's configured defaults and reports
// them, so clients can always reproduce a response offline.
func TestServedDefectEvalDefaultsEchoed(t *testing.T) {
	evalBase := core.DefectEval{Runs: 4, Batch: 16, Seed: 777, Workers: 1}
	s, net, test := newTestServer(t, Config{Eval: evalBase})
	rates := []float64{0.05}

	rec := postJSON(s.Handler(), "/v1/defect-eval", []byte(`{"rates":[0.05]}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	sums, err := core.EvalDefectSweep(bg, net, test, rates, evalBase.Normalize())
	if err != nil {
		t.Fatal(err)
	}
	wantBody, _ := json.Marshal(NewDefectEvalResponse(777, 4, rates, sums))
	if got, want := rec.Body.String(), string(wantBody)+"\n"; got != want {
		t.Fatalf("defaulted request diverges from direct call:\n got: %s\nwant: %s", got, want)
	}
}

func ptr[T any](v T) *T { return &v }
