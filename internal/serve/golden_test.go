package serve

// Golden-file test for the serve.* event stream, mirroring the
// experiments JSONL golden test: a scripted request sequence against
// a single-batch server must emit a schema-versioned, structurally
// reproducible access log. Structural fields (kind, phase, ordinals,
// rate, n) are pinned; measured values (latencies, accuracies,
// timestamps) are excluded so the contract outlives retuning.
//
// Regenerate with:
//
//	go test ./internal/serve -run TestServeEventStream -update

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestServeEventStream(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	sink.SetClock(nil) // omit timestamps: the stream becomes deterministic

	net, test := fixture()
	s, err := New(net, test, Config{
		// MaxBatch 1 makes every request its own batch with no timer
		// involvement, so a sequential driver yields one fixed stream.
		MaxBatch: 1,
		Eval:     core.DefectEval{Runs: 2, Batch: 16, Seed: 5, Workers: 1},
		Sink:     sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	img, _ := json.Marshal(InferRequest{Image: testImage(test)})
	postJSON(h, "/v1/infer", img)
	postJSON(h, "/v1/infer", img)
	postJSON(h, "/v1/defect-eval", []byte(`{"rates":[0,0.05],"runs":2,"seed":5}`))
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	postJSON(h, "/v1/infer", []byte(`{"image":[1,2,3]}`)) // 400
	postJSON(h, "/v1/nope", nil)                          // 404
	s.Drain()

	var keys []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Bytes()
		var rec struct {
			Schema string  `json:"schema"`
			T      string  `json:"t"`
			Kind   string  `json:"kind"`
			Phase  string  `json:"phase"`
			Run    int     `json:"run"`
			Rate   float64 `json:"rate"`
			N      int     `json:"n"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if rec.Schema != obs.SchemaVersion {
			t.Fatalf("line carries schema %q, want %q: %s", rec.Schema, obs.SchemaVersion, line)
		}
		if rec.T != "" {
			t.Fatalf("nil clock must omit the t field: %s", line)
		}
		keys = append(keys, fmt.Sprintf("%s|%s|%d|%g|%d",
			rec.Kind, rec.Phase, rec.Run, rec.Rate, rec.N))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(keys) == 0 {
		t.Fatal("the scripted serve session emitted no events")
	}
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "serve_events.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("event stream diverges from golden at line %d:\n got %q\nwant %q\n(%d vs %d lines; regenerate with -update if intentional)",
					i+1, gl[i], wl[i], len(gl), len(wl))
			}
		}
		t.Fatalf("event stream length diverges from golden: got %d lines, want %d (regenerate with -update if intentional)",
			len(gl), len(wl))
	}
}
