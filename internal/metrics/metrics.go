// Package metrics provides evaluation helpers (batched accuracy),
// summary statistics for repeated defect runs, and the paper's
// Stability Score.
package metrics

import (
	"math"
	"sort"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/tensor"
)

// Forwarder is the inference surface the evaluation loop needs: one
// batched forward pass. Both *nn.Network (float32) and
// *nn.QuantizedNetwork (int8) satisfy it, so every accuracy protocol
// in this package applies to either numeric representation.
type Forwarder interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
}

// Evaluate returns the top-1 accuracy of net on ds, evaluated in
// inference mode with the given batch size.
func Evaluate(net Forwarder, ds *data.Dataset, batch int) float64 {
	return EvaluateHooked(net, ds, batch, nil)
}

// BatchHook observes the batched evaluation loop: BeforeBatch runs
// just before the forward pass of batch `step` (0-based), AfterBatch
// right after its predictions are scored. This is the seam transient
// fault scenarios use to redraw a lesion per inference pass; hooks
// must leave the network's weights bitwise restored by the time
// AfterBatch returns.
type BatchHook interface {
	BeforeBatch(step int)
	AfterBatch(step int)
}

// EvaluateHooked is Evaluate with a per-batch hook; a nil hook is
// exactly Evaluate. The hook receives consecutive step indices in
// dataset order, so a positional-RNG hook produces the same lesion
// sequence on every call.
func EvaluateHooked(net Forwarder, ds *data.Dataset, batch int, h BatchHook) float64 {
	if batch <= 0 {
		batch = 64
	}
	n := ds.N()
	c, hh, w := ds.Dims()
	stride := c * hh * w
	correct := 0
	var x tensor.Tensor // reused view over the dataset, no per-batch alloc
	for start, step := 0, 0; start < n; start, step = start+batch, step+1 {
		bs := batch
		if start+bs > n {
			bs = n - start
		}
		x.SetView(ds.Images.Data()[start*stride:(start+bs)*stride], bs, c, hh, w)
		if h != nil {
			h.BeforeBatch(step)
		}
		out := net.Forward(&x, false)
		for i := 0; i < bs; i++ {
			if out.ArgMaxRow(i) == ds.Labels[start+i] {
				correct++
			}
		}
		if h != nil {
			h.AfterBatch(step)
		}
	}
	return float64(correct) / float64(n)
}

// Summary aggregates repeated measurements (e.g. defect-run accuracy).
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	P50  float64
}

// Summarize computes a Summary over values.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = values[0], values[0]
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, v := range values {
		d := v - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(sq / float64(s.N-1))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if s.N%2 == 1 {
		s.P50 = sorted[s.N/2]
	} else {
		s.P50 = 0.5 * (sorted[s.N/2-1] + sorted[s.N/2])
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean (normal approximation).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// StabilityScore implements the paper's Eq. (1):
//
//	SS(Psa) = Acc_retrain / (Acc_pretrain − Acc_defect).
//
// All accuracies share one unit (fraction or percent — the score is
// only unit-free if Acc units match; the paper uses percent). A higher
// score means less degradation from the ideal accuracy while keeping an
// appealing retrained accuracy. When the defect accuracy matches or
// exceeds the pretrained accuracy the degradation is zero and the
// score is +Inf.
func StabilityScore(accRetrain, accPretrain, accDefect float64) float64 {
	denom := accPretrain - accDefect
	if denom <= 0 {
		return math.Inf(1)
	}
	return accRetrain / denom
}
