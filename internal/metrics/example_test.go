package metrics_test

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/metrics"
)

// The paper's Table II baseline row: a pretrained ResNet-32 with
// 75.10% ideal accuracy that collapses to 2.97% under 1% stuck-at
// faults scores SS ≈ 1.04.
func ExampleStabilityScore() {
	ss := metrics.StabilityScore(75.10, 75.10, 2.97)
	fmt.Printf("SS = %.2f\n", ss)

	// A fault-tolerant model keeps 73.03% under the same faults.
	ss = metrics.StabilityScore(75.38, 75.10, 73.03)
	fmt.Printf("SS = %.2f\n", ss)
	// Output:
	// SS = 1.04
	// SS = 36.42
}

func ExampleSummarize() {
	runs := []float64{0.71, 0.68, 0.73, 0.70}
	s := metrics.Summarize(runs)
	fmt.Printf("mean %.3f over %d runs (min %.2f, max %.2f)\n", s.Mean, s.N, s.Min, s.Max)
	// Output:
	// mean 0.705 over 4 runs (min 0.68, max 0.73)
}
