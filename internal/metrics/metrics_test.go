package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ftpim/ftpim/internal/data"
	"github.com/ftpim/ftpim/internal/models"
	"github.com/ftpim/ftpim/internal/tensor"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.P50 != 2.5 {
		t.Fatalf("summary %+v", s)
	}
	// Sample std of {1,2,3,4} is sqrt(5/3).
	if math.Abs(s.Std-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("std=%v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P50 != 7 || s.CI95() != 0 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.P50 != 5 {
		t.Fatalf("median=%v", s.P50)
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 + int(r.Uint64()%50)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = r.NormFloat64() * 10
		}
		s := Summarize(vs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStabilityScorePaperValues(t *testing.T) {
	// Table II baseline row: 75.10/(75.10−2.97) ≈ 1.04.
	ss := StabilityScore(75.10, 75.10, 2.97)
	if math.Abs(ss-1.0412) > 0.001 {
		t.Fatalf("SS=%v want ≈1.041", ss)
	}
	// One-shot 0.05 row: 75.38/(75.10−73.03) ≈ 36.4.
	ss = StabilityScore(75.38, 75.10, 73.03)
	if math.Abs(ss-36.42) > 0.05 {
		t.Fatalf("SS=%v want ≈36.4", ss)
	}
}

func TestStabilityScoreInfWhenNoDegradation(t *testing.T) {
	if !math.IsInf(StabilityScore(90, 90, 90), 1) {
		t.Fatal("zero degradation should be +Inf")
	}
	if !math.IsInf(StabilityScore(90, 90, 95), 1) {
		t.Fatal("negative degradation should be +Inf")
	}
}

func TestStabilityScoreMonotoneInDefectAcc(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		pre := 50 + 40*r.Float64()
		re := pre + r.NormFloat64()
		d1 := pre * r.Float64() * 0.9
		d2 := d1 + (pre-d1)*0.5*r.Float64()
		// d2 >= d1 → SS(d2) >= SS(d1)
		return StabilityScore(re, pre, d2) >= StabilityScore(re, pre, d1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateOnUntrainedIsChanceLevel(t *testing.T) {
	cfg := data.SynthConfig{
		Classes: 5, TrainPer: 2, TestPer: 40,
		Channels: 3, Size: 8, Basis: 8,
		NoiseStd: 0.3, ShiftMax: 1, JitterStd: 0.1, Seed: 11,
	}
	_, test := data.Generate(cfg)
	net := models.BuildSimpleCNN(models.SimpleCNNConfig{InChannels: 3, Width: 4, Classes: 5, Seed: 2})
	acc := Evaluate(net, test, 32)
	if acc < 0.02 || acc > 0.65 {
		t.Fatalf("untrained accuracy %v looks wrong", acc)
	}
}

func TestEvaluateBatchSizeInvariance(t *testing.T) {
	cfg := data.SynthConfig{
		Classes: 3, TrainPer: 2, TestPer: 15,
		Channels: 3, Size: 8, Basis: 6,
		NoiseStd: 0.3, ShiftMax: 1, JitterStd: 0.1, Seed: 12,
	}
	_, test := data.Generate(cfg)
	net := models.BuildSimpleCNN(models.SimpleCNNConfig{InChannels: 3, Width: 4, Classes: 3, Seed: 3})
	a1 := Evaluate(net, test, 7)
	a2 := Evaluate(net, test, 45)
	a3 := Evaluate(net, test, 1)
	if a1 != a2 || a2 != a3 {
		t.Fatalf("accuracy depends on batch size: %v %v %v", a1, a2, a3)
	}
}
