// Package tensor implements dense float32 tensors and the numeric
// kernels (GEMM, im2col convolution lowering, elementwise maps and
// reductions) that the rest of the library is built on.
//
// Tensors are row-major and always contiguous. The package is
// deliberately small and allocation-conscious: every hot kernel has an
// "into destination" form so training loops can reuse buffers.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major, contiguous float32 tensor.
//
// The zero value is an empty tensor; use New or the constructors below
// for anything useful.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. A scalar may be
// created with New() (rank 0, one element).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (=%d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Shape returns the tensor's shape. The returned slice must not be
// mutated by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i, d := range t.shape {
		if u.shape[i] != d {
			return false
		}
	}
	return true
}

// Reshape returns a view of t with a new shape covering the same number
// of elements. The data is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

// SetView repoints t at data (shared, not copied) with the given shape.
// It is the allocation-free counterpart of FromSlice for hot loops that
// re-slice a larger buffer every iteration: the tensor struct and its
// shape slice are reused in place. len(data) must equal the shape's
// element count.
func (t *Tensor) SetView(data []float32, shape ...int) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// The messages avoid formatting shape itself: referencing it
			// would make the variadic slice escape on every call.
			panic(fmt.Sprintf("tensor: negative dimension %d in SetView shape", d))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: SetView data length %d, shape wants %d elements", len(data), n))
	}
	t.data = data
	t.setShape(shape)
}

// setShape copies shape into t.shape, reusing the existing slice when
// its capacity suffices.
func (t *Tensor) setShape(shape []int) {
	if cap(t.shape) >= len(shape) {
		t.shape = t.shape[:len(shape)]
	} else {
		t.shape = make([]int, len(shape))
	}
	copy(t.shape, shape)
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies u's data into t. Shapes must match in element count.
func (t *Tensor) CopyFrom(u *Tensor) {
	if len(t.data) != len(u.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, u.shape))
	}
	copy(t.data, u.data)
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// String renders a compact description (shape plus a few elements).
func (t *Tensor) String() string {
	n := len(t.data)
	if n <= 8 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%.4g %.4g %.4g ... %.4g] n=%d", t.shape,
		t.data[0], t.data[1], t.data[2], t.data[n-1], n)
}

// Row returns a view of row i of a rank-2 tensor (shared data).
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires rank-2 tensor")
	}
	c := t.shape[1]
	return t.data[i*c : (i+1)*c]
}

// IsFinite reports whether every element is finite (no NaN/Inf).
func (t *Tensor) IsFinite() bool {
	for _, v := range t.data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}

// MaxAbs returns max_i |t_i| (0 for an empty tensor).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all elements in float64 for accuracy.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Norm2 returns the Euclidean norm.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Equal reports exact element-wise equality (and shape equality).
func (t *Tensor) Equal(u *Tensor) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.data {
		if u.data[i] != v {
			return false
		}
	}
	return true
}

// AllClose reports element-wise equality within absolute tolerance tol.
func (t *Tensor) AllClose(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(float64(v)-float64(u.data[i])) > tol {
			return false
		}
	}
	return true
}
