package tensor

import (
	"fmt"
	"math"
	"testing"
)

// The fused implicit-GEMM convolution must be bitwise-equal to the
// materialized Im2Col+Gemm composition it replaced — the same contract
// matmul_oracle_test.go enforces one layer down. The composition of
// exported kernels (Im2Col, Gemm, GemmTB, GemmTA, Col2Im), run at one
// worker, is the oracle here.

// convShape is one point of the conv oracle grid.
type convShape struct {
	n, c, h, w, outC, kh, kw, stride, pad int
}

// convShapes stresses every structural regime of the fused kernels:
// the 1×1/stride-1/pad-0 zero-copy fast path, 1×1 with stride (general
// path), pad ≥ kernel (taps that never touch the image), strides 2–3,
// non-square 5×5 and 2×2 kernels, k%4 tails, panels spanning sample
// boundaries (outArea ≪ gemmJTile), in-sample ragged panels
// (outArea > gemmJTile), and the 32×32 paper shape.
var convShapes = []convShape{
	{1, 1, 3, 3, 1, 1, 1, 1, 0},     // minimal 1×1 fast path
	{2, 3, 8, 8, 4, 1, 1, 1, 0},     // 1×1 fast path, k%4 tail (c=3)
	{3, 4, 9, 9, 5, 1, 1, 2, 0},     // 1×1 with stride: general path
	{2, 2, 6, 6, 3, 3, 3, 1, 1},     // classic 3×3 same-pad
	{2, 3, 7, 5, 4, 3, 3, 1, 3},     // pad == kernel
	{1, 2, 5, 5, 2, 3, 3, 1, 4},     // pad > kernel
	{2, 2, 11, 11, 3, 5, 5, 2, 2},   // 5×5 stride 2
	{2, 3, 10, 10, 4, 2, 2, 2, 0},   // 2×2 stride 2, no pad
	{1, 1, 13, 13, 2, 3, 3, 3, 1},   // stride 3
	{30, 2, 7, 7, 3, 3, 3, 1, 0},    // outArea=25: panels span samples
	{2, 2, 20, 20, 3, 3, 3, 1, 1},   // outArea=400: ragged in-sample panels
	{4, 16, 32, 32, 16, 3, 3, 1, 1}, // paper shape (batch trimmed)
}

// convOracleData builds deterministic (weight, src, dY) buffers for a
// shape. The weight matrix — the GEMM's A operand, whose quads drive
// the skip-zero fast paths — gets the same zero sprinkling, all-zero
// row, and negative zero as oraclePair so skips and accumulation-order
// changes stay observable.
func convOracleData(seed uint64, s convShape) (wd, src, dY []float32) {
	outH := ConvOutSize(s.h, s.kh, s.stride, s.pad)
	outW := ConvOutSize(s.w, s.kw, s.stride, s.pad)
	k := s.c * s.kh * s.kw
	rng := NewRNG(seed)
	wt := New(s.outC, k)
	FillNormal(wt, rng, 0, 1)
	wd = wt.Data()
	for i := 0; i < len(wd); i += 3 {
		wd[i] = 0
	}
	if s.outC > 2 {
		row := wd[2*k : 3*k]
		for i := range row {
			row[i] = 0
		}
	}
	if len(wd) > 1 {
		wd[1] = float32(math32Copysign(0, -1))
	}
	st := New(s.n, s.c, s.h, s.w)
	FillNormal(st, rng, 0, 1)
	src = st.Data()
	dt := New(s.n, s.outC, outH, outW)
	FillNormal(dt, rng, 0, 1)
	return wd, src, dt.Data()
}

// refConvForward is the materialized oracle: per-sample Im2Col into a
// scratch column matrix followed by Gemm — exactly the composition
// nn.Conv2D.Forward performed before the implicit-GEMM path existed.
func refConvForward(wd, src []float32, s convShape) []float32 {
	outH := ConvOutSize(s.h, s.kh, s.stride, s.pad)
	outW := ConvOutSize(s.w, s.kw, s.stride, s.pad)
	outArea := outH * outW
	k := s.c * s.kh * s.kw
	col := make([]float32, k*outArea)
	dst := make([]float32, s.n*s.outC*outArea)
	for i := 0; i < s.n; i++ {
		Im2Col(src[i*s.c*s.h*s.w:(i+1)*s.c*s.h*s.w],
			s.c, s.h, s.w, s.kh, s.kw, s.stride, s.pad, col)
		Gemm(dst[i*s.outC*outArea:(i+1)*s.outC*outArea], wd, col, s.outC, k, outArea)
	}
	return dst
}

// refConvBackward is the materialized backward oracle: per sample,
// GemmTB for the dW chunk and GemmTA+Col2Im for dX, chunks added to
// the gradient in ascending sample order — the pre-fusion
// nn.Conv2D.Backward loop.
func refConvBackward(wd, src, dY []float32, s convShape) (dW, dX []float32) {
	outH := ConvOutSize(s.h, s.kh, s.stride, s.pad)
	outW := ConvOutSize(s.w, s.kw, s.stride, s.pad)
	outArea := outH * outW
	k := s.c * s.kh * s.kw
	chw := s.c * s.h * s.w
	col := make([]float32, k*outArea)
	dcol := make([]float32, k*outArea)
	chunk := make([]float32, s.outC*k)
	dW = make([]float32, s.outC*k)
	dX = make([]float32, s.n*chw)
	for i := 0; i < s.n; i++ {
		Im2Col(src[i*chw:(i+1)*chw], s.c, s.h, s.w, s.kh, s.kw, s.stride, s.pad, col)
		dyi := dY[i*s.outC*outArea : (i+1)*s.outC*outArea]
		GemmTB(chunk, dyi, col, s.outC, outArea, k)
		for j, v := range chunk {
			dW[j] += v
		}
		GemmTA(dcol, wd, dyi, s.outC, k, outArea)
		Col2Im(dcol, s.c, s.h, s.w, s.kh, s.kw, s.stride, s.pad, dX[i*chw:(i+1)*chw])
	}
	return dW, dX
}

func (s convShape) String() string {
	return fmt.Sprintf("n%d_c%d_%dx%d_oc%d_k%dx%d_s%d_p%d",
		s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
}

// convDWMags computes the per-element magnitude sums Σ|dy·col| of the
// weight gradient in float64 — the conditioning reference for the
// fast-tier dW error bound (the axpy-batched fast dW accumulates in a
// different order than the composed GemmTB, so under the fast tier dW
// is ULP/error-bounded against the oracle instead of bitwise).
func convDWMags(src, dY []float32, s convShape) []float64 {
	outH := ConvOutSize(s.h, s.kh, s.stride, s.pad)
	outW := ConvOutSize(s.w, s.kw, s.stride, s.pad)
	outArea := outH * outW
	k := s.c * s.kh * s.kw
	chw := s.c * s.h * s.w
	col := make([]float32, k*outArea)
	mags := make([]float64, s.outC*k)
	for i := 0; i < s.n; i++ {
		Im2Col(src[i*chw:(i+1)*chw], s.c, s.h, s.w, s.kh, s.kw, s.stride, s.pad, col)
		dyi := dY[i*s.outC*outArea : (i+1)*s.outC*outArea]
		for oc := 0; oc < s.outC; oc++ {
			for r := 0; r < k; r++ {
				var m float64
				for p := 0; p < outArea; p++ {
					m += math.Abs(float64(dyi[oc*outArea+p])) * math.Abs(float64(col[r*outArea+p]))
				}
				mags[oc*k+r] += m
			}
		}
	}
	return mags
}

// checkConvDW compares a fused dW against the oracle: bitwise on the
// exact tier, ULP/error-bounded on the fast tier (see convDWMags).
func checkConvDW(t *testing.T, want, got, src, dY []float32, s convShape) {
	t.Helper()
	if ActiveNumerics() == NumericsExact {
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("fused dW differs from GemmTB oracle at %d: %v vs %v", i, got[i], want[i])
			}
		}
		return
	}
	outArea := ConvOutSize(s.h, s.kh, s.stride, s.pad) * ConvOutSize(s.w, s.kw, s.stride, s.pad)
	checkFastVsExact(t, "convDW", want, got, convDWMags(src, dY, s), s.n*outArea)
}

func TestConvGemmForwardMatchesOracleBitwise(t *testing.T) {
	for _, s := range convShapes {
		t.Run(s.String(), func(t *testing.T) {
			wd, src, _ := convOracleData(0xC0117, s)
			var want []float32
			withWorkers(1, func() { want = refConvForward(wd, src, s) })
			outArea := ConvOutSize(s.h, s.kh, s.stride, s.pad) * ConvOutSize(s.w, s.kw, s.stride, s.pad)
			for _, w := range []int{1, 2, 4} {
				withWorkers(w, func() {
					got := make([]float32, len(want))
					for i := range got {
						got[i] = 999
					}
					ConvGemmForward(got, wd, src, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
					if !FromSlice(got, s.n*s.outC, outArea).Equal(FromSlice(want, s.n*s.outC, outArea)) {
						t.Fatalf("workers=%d: fused forward differs from Im2Col+Gemm oracle", w)
					}
				})
			}
		})
	}
}

func TestConvGemmBackwardMatchesOracleBitwise(t *testing.T) {
	for _, s := range convShapes {
		t.Run(s.String(), func(t *testing.T) {
			wd, src, dY := convOracleData(0xBAC1, s)
			var wantDW, wantDX []float32
			withWorkers(1, func() { wantDW, wantDX = refConvBackward(wd, src, dY, s) })
			k := s.c * s.kh * s.kw
			wlen := s.outC * k
			for _, w := range []int{1, 2, 4} {
				withWorkers(w, func() {
					dX := make([]float32, len(wantDX))
					chunks := make([]float32, s.n*wlen)
					ConvGemmBackward(dX, chunks, wd, src, dY, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
					dW := make([]float32, wlen)
					for i := 0; i < s.n; i++ {
						for j, v := range chunks[i*wlen : (i+1)*wlen] {
							dW[j] += v
						}
					}
					checkConvDW(t, wantDW, dW, src, dY, s)
					if !FromSlice(dX, s.n, s.c*s.h*s.w).Equal(FromSlice(wantDX, s.n, s.c*s.h*s.w)) {
						t.Fatalf("workers=%d: fused dX differs from GemmTA+Col2Im oracle", w)
					}
				})
			}
		})
	}
}

// TestIm2ColPanelsMatchesPackedIm2Col pins the exported packed layout:
// Im2ColPanels over a batch must produce exactly packB applied to the
// row-major batch column matrix assembled from per-sample Im2Col calls.
func TestIm2ColPanelsMatchesPackedIm2Col(t *testing.T) {
	for _, s := range convShapes {
		t.Run(s.String(), func(t *testing.T) {
			_, src, _ := convOracleData(0x9A7, s)
			outH := ConvOutSize(s.h, s.kh, s.stride, s.pad)
			outW := ConvOutSize(s.w, s.kw, s.stride, s.pad)
			outArea := outH * outW
			k := s.c * s.kh * s.kw
			cols := s.n * outArea
			// Assemble the conceptual k × (n·outArea) batch column
			// matrix sample by sample, then pack it the way Gemm would.
			batch := make([]float32, k*cols)
			col := make([]float32, k*outArea)
			for i := 0; i < s.n; i++ {
				Im2Col(src[i*s.c*s.h*s.w:(i+1)*s.c*s.h*s.w],
					s.c, s.h, s.w, s.kh, s.kw, s.stride, s.pad, col)
				for p := 0; p < k; p++ {
					copy(batch[p*cols+i*outArea:p*cols+(i+1)*outArea], col[p*outArea:(p+1)*outArea])
				}
			}
			want, buf := packB(batch, k, cols)
			got := make([]float32, k*cols)
			Im2ColPanels(src, s.n, s.c, s.h, s.w, s.kh, s.kw, s.stride, s.pad, got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("packed layout differs at %d: %v vs %v", i, got[i], want[i])
				}
			}
			if buf != nil {
				panelPool.Put(buf)
			}
		})
	}
}

// TestConv1x1FastPathMatchesGeneralPath runs the general panel-packing
// path on a 1×1/stride-1/pad-0 shape (which ConvGemmForward would
// normally route to the zero-copy path) and requires bitwise equality.
func TestConv1x1FastPathMatchesGeneralPath(t *testing.T) {
	s := convShape{3, 5, 9, 9, 4, 1, 1, 1, 0}
	wd, src, dY := convOracleData(0x1F1, s)
	area := s.h * s.w
	perSample := (area + gemmJTile - 1) / gemmJTile
	for _, w := range []int{1, 3} {
		withWorkers(w, func() {
			fast := make([]float32, s.n*s.outC*area)
			ConvGemmForward(fast, wd, src, s.n, s.c, s.h, s.w, s.outC, 1, 1, 1, 0)
			general := make([]float32, len(fast))
			convForwardUnits(general, wd, src, s.c, s.h, s.w, 1, 1, 1, 0, s.h, s.w, s.outC, perSample, 0, s.n*perSample)
			for i := range fast {
				if fast[i] != general[i] {
					t.Fatalf("workers=%d: 1x1 fast path differs from general path at %d", w, i)
				}
			}
		})
	}
	// Backward: the fast flag is chosen inside convBackwardSamples, so
	// pin it against the materialized oracle instead (the general fused
	// path is pinned to the same oracle by the grid test above).
	wantDW, wantDX := refConvBackward(wd, src, dY, s)
	dX := make([]float32, len(wantDX))
	chunks := make([]float32, s.n*s.outC*s.c)
	ConvGemmBackward(dX, chunks, wd, src, dY, s.n, s.c, s.h, s.w, s.outC, 1, 1, 1, 0)
	dW := make([]float32, s.outC*s.c)
	for i := 0; i < s.n; i++ {
		for j, v := range chunks[i*len(dW) : (i+1)*len(dW)] {
			dW[j] += v
		}
	}
	checkConvDW(t, wantDW, dW, src, dY, s)
	if !FromSlice(dX, s.n, s.c*area).Equal(FromSlice(wantDX, s.n, s.c*area)) {
		t.Fatalf("1x1 fast backward dX differs from oracle")
	}
}

// FuzzConvGemmOracle drives the fused forward and backward against the
// materialized composition on fuzz-chosen shapes, including pad ≥
// kernel and degenerate strides.
func FuzzConvGemmOracle(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(3), uint8(8), uint8(4), uint8(3), uint8(1), uint8(1))
	f.Add(uint64(2), uint8(4), uint8(1), uint8(5), uint8(2), uint8(1), uint8(1), uint8(0))
	f.Add(uint64(3), uint8(30), uint8(2), uint8(7), uint8(3), uint8(3), uint8(1), uint8(4))
	f.Add(uint64(4), uint8(2), uint8(2), uint8(19), uint8(3), uint8(5), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, cRaw, hwRaw, ocRaw, kRaw, strideRaw, padRaw uint8) {
		s := convShape{
			n:      int(nRaw)%32 + 1,
			c:      int(cRaw)%5 + 1,
			h:      int(hwRaw)%20 + 1,
			outC:   int(ocRaw)%6 + 1,
			kh:     int(kRaw)%5 + 1,
			stride: int(strideRaw)%3 + 1,
			pad:    int(padRaw) % 6,
		}
		s.w = s.h
		s.kw = s.kh
		if s.h+2*s.pad < s.kh {
			t.Skip("empty output")
		}
		wd, src, dY := convOracleData(seed, s)
		want := refConvForward(wd, src, s)
		got := make([]float32, len(want))
		ConvGemmForward(got, wd, src, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("forward mismatch at %d for %v seed %d", i, s, seed)
			}
		}
		wantDW, wantDX := refConvBackward(wd, src, dY, s)
		k := s.c * s.kh * s.kw
		wlen := s.outC * k
		dX := make([]float32, len(wantDX))
		chunks := make([]float32, s.n*wlen)
		ConvGemmBackward(dX, chunks, wd, src, dY, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
		dW := make([]float32, wlen)
		for i := 0; i < s.n; i++ {
			for j, v := range chunks[i*wlen : (i+1)*wlen] {
				dW[j] += v
			}
		}
		checkConvDW(t, wantDW, dW, src, dY, s)
		for i := range dX {
			if dX[i] != wantDX[i] {
				t.Fatalf("dX mismatch at %d for %v seed %d", i, s, seed)
			}
		}
	})
}

// benchConvShape/benchConvShape12: the paper's 32×32 input shape and
// the repro-scale 12×12 shape used by the training loop benches.
var (
	benchConv32   = convShape{16, 16, 32, 32, 16, 3, 3, 1, 1}
	benchConv12   = convShape{32, 4, 12, 12, 4, 3, 3, 1, 1}
	benchConv1x1  = convShape{16, 32, 16, 16, 32, 1, 1, 1, 0}
	benchConvDeep = convShape{16, 64, 8, 8, 64, 3, 3, 1, 1}
)

func benchConvFwd(b *testing.B, s convShape, fused bool) {
	wd, src, _ := convOracleData(1, s)
	outArea := ConvOutSize(s.h, s.kh, s.stride, s.pad) * ConvOutSize(s.w, s.kw, s.stride, s.pad)
	dst := make([]float32, s.n*s.outC*outArea)
	withWorkers(1, func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fused {
				ConvGemmForward(dst, wd, src, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
			} else {
				refConvForward2(dst, wd, src, s)
			}
		}
	})
}

// refConvForward2 is refConvForward with a caller-owned destination and
// persistent scratch, so the Ref benchmarks measure the materialized
// composition's compute, not allocation.
var refColScratch []float32

func refConvForward2(dst, wd, src []float32, s convShape) {
	outH := ConvOutSize(s.h, s.kh, s.stride, s.pad)
	outW := ConvOutSize(s.w, s.kw, s.stride, s.pad)
	outArea := outH * outW
	k := s.c * s.kh * s.kw
	if len(refColScratch) < k*outArea {
		refColScratch = make([]float32, k*outArea)
	}
	col := refColScratch[:k*outArea]
	for i := 0; i < s.n; i++ {
		Im2Col(src[i*s.c*s.h*s.w:(i+1)*s.c*s.h*s.w],
			s.c, s.h, s.w, s.kh, s.kw, s.stride, s.pad, col)
		Gemm(dst[i*s.outC*outArea:(i+1)*s.outC*outArea], wd, col, s.outC, k, outArea)
	}
}

func benchConvBwd(b *testing.B, s convShape, fused bool) {
	benchConvBwdSparsity(b, s, fused, 0)
}

// benchConvBwdSparsity optionally zeroes a fraction of dY before
// timing — the training regime, where ReLU backprop leaves dY roughly
// half zeros and the fast-tier axpy dW kernel skips whole zero quads.
func benchConvBwdSparsity(b *testing.B, s convShape, fused bool, zeroFrac float64) {
	wd, src, dY := convOracleData(1, s)
	if zeroFrac > 0 {
		r := NewRNG(7)
		for i := range dY {
			if r.Float64() < zeroFrac {
				dY[i] = 0
			}
		}
	}
	k := s.c * s.kh * s.kw
	chw := s.c * s.h * s.w
	dX := make([]float32, s.n*chw)
	chunks := make([]float32, s.n*s.outC*k)
	dW := make([]float32, s.outC*k)
	outArea := ConvOutSize(s.h, s.kh, s.stride, s.pad) * ConvOutSize(s.w, s.kw, s.stride, s.pad)
	col := make([]float32, k*outArea)
	dcol := make([]float32, k*outArea)
	withWorkers(1, func() {
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			for x := range dX {
				dX[x] = 0
			}
			if fused {
				ConvGemmBackward(dX, chunks, wd, src, dY, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
				wlen := s.outC * k
				for i := 0; i < s.n; i++ {
					for j, v := range chunks[i*wlen : (i+1)*wlen] {
						dW[j] += v
					}
				}
			} else {
				for i := 0; i < s.n; i++ {
					Im2Col(src[i*chw:(i+1)*chw], s.c, s.h, s.w, s.kh, s.kw, s.stride, s.pad, col)
					dyi := dY[i*s.outC*outArea : (i+1)*s.outC*outArea]
					GemmTB(chunks[:s.outC*k], dyi, col, s.outC, outArea, k)
					for j, v := range chunks[:s.outC*k] {
						dW[j] += v
					}
					GemmTA(dcol, wd, dyi, s.outC, k, outArea)
					Col2Im(dcol, s.c, s.h, s.w, s.kh, s.kw, s.stride, s.pad, dX[i*chw:(i+1)*chw])
				}
			}
		}
	})
}

func BenchmarkConvFwdFused32(b *testing.B) { benchConvFwd(b, benchConv32, true) }
func BenchmarkConvFwdRef32(b *testing.B)   { benchConvFwd(b, benchConv32, false) }
func BenchmarkConvBwdFused32(b *testing.B) { benchConvBwd(b, benchConv32, true) }
func BenchmarkConvBwdRef32(b *testing.B)   { benchConvBwd(b, benchConv32, false) }
func BenchmarkConvFwdFused12(b *testing.B) { benchConvFwd(b, benchConv12, true) }
func BenchmarkConvFwdRef12(b *testing.B)   { benchConvFwd(b, benchConv12, false) }
func BenchmarkConvBwdFused12(b *testing.B) { benchConvBwd(b, benchConv12, true) }
func BenchmarkConvBwdRef12(b *testing.B)   { benchConvBwd(b, benchConv12, false) }

// The sparse pair times backward with 60% of dY zeroed — the ReLU
// backprop regime the axpy dW kernel's quad skip targets.
func BenchmarkConvBwdFusedSparse32(b *testing.B) { benchConvBwdSparsity(b, benchConv32, true, 0.6) }
func BenchmarkConvBwdRefSparse32(b *testing.B)   { benchConvBwdSparsity(b, benchConv32, false, 0.6) }

// The deep pair is a late-stage ResNet shape (k=576 ≫ outArea=64),
// where dW dominates backward and the dot kernels' per-element
// horizontal reductions over short outArea-length vectors are the
// bottleneck the axpy batching removes.
func BenchmarkConvBwdFusedDeep(b *testing.B) { benchConvBwd(b, benchConvDeep, true) }
func BenchmarkConvBwdRefDeep(b *testing.B)   { benchConvBwd(b, benchConvDeep, false) }

// The pointwise pair exercises the zero-copy 1×1 fast path, where the
// fused forward reads src as the column matrix and packs nothing, and
// the fused backward skips the im2col/col2im index arithmetic.
func BenchmarkConvFwdFused1x1(b *testing.B) { benchConvFwd(b, benchConv1x1, true) }
func BenchmarkConvFwdRef1x1(b *testing.B)   { benchConvFwd(b, benchConv1x1, false) }
func BenchmarkConvBwdFused1x1(b *testing.B) { benchConvBwd(b, benchConv1x1, true) }
func BenchmarkConvBwdRef1x1(b *testing.B)   { benchConvBwd(b, benchConv1x1, false) }
