//go:build !race

// Allocation-regression tests. Excluded under -race: the race runtime
// instruments allocations differently, and the parallel paths are
// pinned to one worker here anyway (spawned goroutines allocate, which
// is why every test below forces Workers=1).

package tensor

import "testing"

func TestGemmWarmAllocs(t *testing.T) {
	withWorkers(1, func() {
		// n > gemmJTile forces the panel-packing path, so this also
		// pins that the pooled packing buffer is reused.
		a, b := randPair(1, 32, 48, 300)
		out := New(32, 300)
		for i := 0; i < 3; i++ { // warm the panel pool
			MatMulInto(out, a, b)
		}
		if avg := testing.AllocsPerRun(50, func() { MatMulInto(out, a, b) }); avg > 0 {
			t.Fatalf("warm MatMulInto allocates %.1f/op, want 0", avg)
		}
	})
}

func TestGemmTAWarmAllocs(t *testing.T) {
	withWorkers(1, func() {
		a, b := New(48, 33), New(48, 40)
		FillNormal(a, NewRNG(2), 0, 1)
		FillNormal(b, NewRNG(3), 0, 1)
		out := New(33, 40)
		MatMulTAInto(out, a, b)
		if avg := testing.AllocsPerRun(50, func() { MatMulTAInto(out, a, b) }); avg > 0 {
			t.Fatalf("warm MatMulTAInto allocates %.1f/op, want 0", avg)
		}
	})
}

func TestGemmTBWarmAllocs(t *testing.T) {
	withWorkers(1, func() {
		a, b := New(32, 48), New(40, 48)
		FillNormal(a, NewRNG(4), 0, 1)
		FillNormal(b, NewRNG(5), 0, 1)
		out := New(32, 40)
		MatMulTBInto(out, a, b)
		if avg := testing.AllocsPerRun(50, func() { MatMulTBInto(out, a, b) }); avg > 0 {
			t.Fatalf("warm MatMulTBInto allocates %.1f/op, want 0", avg)
		}
	})
}

func TestConvGemmForwardWarmAllocs(t *testing.T) {
	withWorkers(1, func() {
		// The 32×32 paper shape: cols = 16·1024 spans many panels, so
		// this pins both the packing panel and the sample-spanning
		// scratch panel to the pool.
		s := benchConv32
		wd, src, _ := convOracleData(9, s)
		dst := make([]float32, s.n*s.outC*s.h*s.w)
		for i := 0; i < 3; i++ { // warm the panel pool
			ConvGemmForward(dst, wd, src, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
		}
		if avg := testing.AllocsPerRun(20, func() {
			ConvGemmForward(dst, wd, src, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
		}); avg > 0 {
			t.Fatalf("warm ConvGemmForward allocates %.1f/op, want 0", avg)
		}
	})
}

func TestConvGemmBackwardWarmAllocs(t *testing.T) {
	withWorkers(1, func() {
		s := convShape{4, 4, 12, 12, 4, 3, 3, 1, 1}
		wd, src, dY := convOracleData(10, s)
		k := s.c * s.kh * s.kw
		dX := make([]float32, s.n*s.c*s.h*s.w)
		chunks := make([]float32, s.n*s.outC*k)
		for i := 0; i < 3; i++ {
			ConvGemmBackward(dX, chunks, wd, src, dY, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
		}
		if avg := testing.AllocsPerRun(20, func() {
			ConvGemmBackward(dX, chunks, wd, src, dY, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
		}); avg > 0 {
			t.Fatalf("warm ConvGemmBackward allocates %.1f/op, want 0", avg)
		}
	})
}

// TestFastTierWarmAllocs: the fast microkernels inherit the zero-alloc
// contract — packed panels (and GemmTA's transpose panel, which only
// the fast path uses) all come from the shared pool.
func TestFastTierWarmAllocs(t *testing.T) {
	requireFast(t)
	defer SetNumerics(SetNumerics(NumericsFast))
	withWorkers(1, func() {
		a, b := randPair(1, 32, 48, 300)
		out := New(32, 300)
		ta, tb2 := New(48, 33), New(48, 40)
		FillNormal(ta, NewRNG(2), 0, 1)
		FillNormal(tb2, NewRNG(3), 0, 1)
		outTA := New(33, 40)
		ba, bb := New(32, 48), New(40, 48)
		FillNormal(ba, NewRNG(4), 0, 1)
		FillNormal(bb, NewRNG(5), 0, 1)
		outTB := New(32, 40)
		s := convShape{4, 4, 12, 12, 4, 3, 3, 1, 1}
		wd, src, dY := convOracleData(10, s)
		k := s.c * s.kh * s.kw
		dst := make([]float32, s.n*s.outC*s.h*s.w)
		dX := make([]float32, s.n*s.c*s.h*s.w)
		chunks := make([]float32, s.n*s.outC*k)
		warm := func() {
			MatMulInto(out, a, b)
			MatMulTAInto(outTA, ta, tb2)
			MatMulTBInto(outTB, ba, bb)
			ConvGemmForward(dst, wd, src, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
			ConvGemmBackward(dX, chunks, wd, src, dY, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
		}
		for i := 0; i < 3; i++ { // warm the panel pool
			warm()
		}
		if avg := testing.AllocsPerRun(20, warm); avg > 0 {
			t.Fatalf("warm fast-tier kernels allocate %.1f/op, want 0", avg)
		}
	})
}

// TestGemmS8TBWarmAllocs: the int8 GEMM needs no packing, so it is
// allocation-free from the first call on both tiers.
func TestGemmS8TBWarmAllocs(t *testing.T) {
	withWorkers(1, func() {
		m, k, n := 64, 144, 16
		a := randS8(1, m*k)
		b := randS8(2, n*k)
		dst := make([]int32, m*n)
		if avg := testing.AllocsPerRun(50, func() { GemmS8TB(dst, a, b, m, k, n) }); avg > 0 {
			t.Fatalf("GemmS8TB allocates %.1f/op, want 0", avg)
		}
		if FastSupported() {
			defer SetNumerics(SetNumerics(NumericsFast))
			if avg := testing.AllocsPerRun(50, func() { GemmS8TB(dst, a, b, m, k, n) }); avg > 0 {
				t.Fatalf("fast GemmS8TB allocates %.1f/op, want 0", avg)
			}
		}
	})
}

func TestMatVecIntoWarmAllocs(t *testing.T) {
	a := New(20, 30)
	FillNormal(a, NewRNG(6), 0, 1)
	x := make([]float32, 30)
	dst := make([]float32, 20)
	if avg := testing.AllocsPerRun(50, func() { MatVecInto(dst, a, x) }); avg > 0 {
		t.Fatalf("MatVecInto allocates %.1f/op, want 0", avg)
	}
}

func TestWorkspaceWarmAllocs(t *testing.T) {
	var ws Workspace
	data := make([]float32, 24)
	ws.Get(0, 4, 6)
	ws.View(1, data, 2, 12)
	avg := testing.AllocsPerRun(50, func() {
		ws.Get(0, 4, 6)
		ws.GetZeroed(0, 2, 6)
		ws.View(1, data, 24)
	})
	if avg > 0 {
		t.Fatalf("warm Workspace ops allocate %.1f/op, want 0", avg)
	}
}

func TestReseedAllocs(t *testing.T) {
	r := NewRNG(1)
	if avg := testing.AllocsPerRun(50, func() {
		r.Reseed(StreamSeedN(42, "defect-run", 3))
		_ = r.Uint64()
	}); avg > 0 {
		t.Fatalf("Reseed path allocates %.1f/op, want 0", avg)
	}
}
