package tensor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary layout: magic "FTT1", rank (uint32), dims (uint32 each),
// then raw little-endian float32 payload.
var magic = [4]byte{'F', 'T', 'T', '1'}

// WriteTo serializes t to w in the library's binary format.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	k, err := w.Write(magic[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	hdr := make([]byte, 4+4*len(t.shape))
	binary.LittleEndian.PutUint32(hdr, uint32(len(t.shape)))
	for i, d := range t.shape {
		binary.LittleEndian.PutUint32(hdr[4+4*i:], uint32(d))
	}
	k, err = w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf := make([]byte, 4*len(t.data))
	for i, v := range t.data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	k, err = w.Write(buf)
	n += int64(k)
	return n, err
}

// ReadFrom deserializes a tensor from r, replacing t's contents.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	var m [4]byte
	k, err := io.ReadFull(r, m[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	if m != magic {
		return n, fmt.Errorf("tensor: bad magic %q", m[:])
	}
	var rk [4]byte
	k, err = io.ReadFull(r, rk[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	rank := int(binary.LittleEndian.Uint32(rk[:]))
	if rank < 0 || rank > 16 {
		return n, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	dims := make([]byte, 4*rank)
	k, err = io.ReadFull(r, dims)
	n += int64(k)
	if err != nil {
		return n, err
	}
	shape := make([]int, rank)
	total := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(dims[4*i:]))
		total *= shape[i]
	}
	if total < 0 || total > 1<<30 {
		return n, fmt.Errorf("tensor: implausible element count %d", total)
	}
	payload := make([]byte, 4*total)
	k, err = io.ReadFull(r, payload)
	n += int64(k)
	if err != nil {
		return n, err
	}
	data := make([]float32, total)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	t.shape = shape
	t.data = data
	return n, nil
}

// GobEncode implements gob.GobEncoder.
func (t *Tensor) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tensor) GobDecode(b []byte) error {
	_, err := t.ReadFrom(bytes.NewReader(b))
	return err
}
