package tensor

// Implicit-GEMM convolution kernels.
//
// The classic lowering (nn.Conv2D before this file existed) pays a
// full write+read of a materialized (C·kh·kw) × (outH·outW) column
// matrix per sample and then runs N tiny per-sample GEMMs that are too
// small to engage the panel blocking in matmul.go. The kernels here
// fuse the lowering into the GEMM instead:
//
//   - Forward treats the whole NCHW batch as ONE GEMM of shape
//     outC × (C·kh·kw) × (N·outH·outW). Input patches are packed
//     panel-by-panel straight into the pooled panelBuf layout the
//     blocked tile kernels (gemmTile2/gemmTile1) already consume — the
//     standalone column matrix is never materialized, and each packed
//     panel is consumed while still cache-hot. Work parallelizes
//     across output-column panels, not only across samples.
//   - Backward streams: dX stages Wᵀ·dY in a pooled scratch block and
//     a fused col2im consumer scatters it row-by-row into the image
//     (no per-layer dcol buffer is retained), and dW is computed as
//     per-sample chunks with column rows generated on the fly (no col
//     buffer at all).
//
// Bit-identity contract (§6/§7 of DESIGN.md): every output element's
// floating-point accumulation order is exactly that of the
// Im2Col+Gemm / GemmTB / GemmTA+Col2Im composition it replaced.
// Batching and panel regrouping only change which elements are
// computed together, never the operation sequence within one element;
// convgemm_test.go pins this against the materialized composition as
// the bitwise oracle across a shape grid, a fuzz target, and several
// worker counts.
//
// One carve-out: the fast tier's dW stage (convSampleDWAxpy in
// gemm_fast.go) batches rank-1 axpy updates instead of running dot
// products, which changes each chunk element's rounding order. It is
// therefore ULP-pinned against the exact oracle like every other
// fast-tier kernel — not bitwise — while remaining bit-deterministic
// and worker-invariant within the fast tier. The exact tier and the
// dX stage keep the full bitwise contract on both tiers.

// Im2ColPanels lowers a whole NCHW batch into the packed column-panel
// layout the blocked GEMM kernels consume: the conceptual
// (C·kh·kw) × (N·outH·outW) column matrix, laid out exactly as packB
// would pack it — the panel starting at batch column j0 occupies
// dst[j0·k:] with row p of the panel at dst[j0·k+p·jw : +jw]
// (k = C·kh·kw, jw = panel width ≤ gemmJTile). Column j0 of the batch
// matrix is output position j0 mod (outH·outW) of sample
// j0 / (outH·outW). dst must hold C·kh·kw·N·outH·outW elements.
//
// ConvGemmForward packs the same panels internally (pooled, one panel
// at a time); this entry point exists for callers that want to pre-pack
// a batch once and as the pinned definition of the packed layout.
func Im2ColPanels(src []float32, n, c, h, w, kh, kw, stride, pad int, dst []float32) {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	if outH <= 0 || outW <= 0 {
		panic("tensor: Im2ColPanels empty output")
	}
	k := c * kh * kw
	cols := n * outH * outW
	if len(src) < n*c*h*w {
		panic("tensor: Im2ColPanels src too small")
	}
	if len(dst) < k*cols {
		panic("tensor: Im2ColPanels dst too small")
	}
	for j0 := 0; j0 < cols; j0 += gemmJTile {
		jw := cols - j0
		if jw > gemmJTile {
			jw = gemmJTile
		}
		im2colPanel(dst[j0*k:], src, c, h, w, kh, kw, stride, pad, outH, outW, j0, jw)
	}
}

// im2colPanel packs one panel — batch columns [j0, j0+jw) — into dst
// with row p of the panel at dst[p*jw : p*jw+jw]. A panel may span
// several samples; each sample's segment is lowered independently.
func im2colPanel(dst, src []float32, c, h, w, kh, kw, stride, pad, outH, outW, j0, jw int) {
	outArea := outH * outW
	chw := c * h * w
	for off := 0; off < jw; {
		i := (j0 + off) / outArea
		q0 := (j0 + off) % outArea
		q1 := q0 + (jw - off)
		if q1 > outArea {
			q1 = outArea
		}
		im2colSeg(dst[off:], jw, src[i*chw:(i+1)*chw], c, h, w, kh, kw, stride, pad, outH, outW, q0, q1)
		off += q1 - q0
	}
}

// im2colSeg lowers output positions [q0, q1) of one CHW image: row p of
// the column matrix lands at dst[p*rowStride : p*rowStride+(q1-q0)].
// It is im2colRow restricted to a position range, split into full
// output-row runs so the inner loops stay branch-light.
func im2colSeg(dst []float32, rowStride int, src []float32, c, h, w, kh, kw, stride, pad, outH, outW, q0, q1 int) {
	oy0, ox0 := q0/outW, q0%outW
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				d := dst[row*rowStride:]
				row++
				di := 0
				oy, ox := oy0, ox0
				for q := q0; q < q1; {
					run := outW - ox
					if run > q1-q {
						run = q1 - q
					}
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for x := 0; x < run; x++ {
							d[di] = 0
							di++
						}
					} else {
						rowBase := chBase + iy*w
						ix := ox*stride - pad + kx
						for x := 0; x < run; x++ {
							if ix >= 0 && ix < w {
								d[di] = src[rowBase+ix]
							} else {
								d[di] = 0
							}
							di++
							ix += stride
						}
					}
					q += run
					oy++
					ox = 0
				}
			}
		}
	}
}

// ConvGemmForward computes the NCHW convolution output
// dst = W · im2col(src) for a whole batch as one implicit GEMM of
// shape outC × (c·kh·kw) × (n·outH·outW). dst is n×outC×outH×outW,
// wd is outC×(c·kh·kw) row-major, src is n×c×h×w. Input patches are
// packed into pooled column panels and consumed immediately by the
// blocked tile kernels; above matMulShardFlops the panels are sharded
// across Workers() goroutines. Results are bit-identical to the
// per-sample Im2Col+Gemm composition at any worker count.
//
// 1×1/stride-1/pad-0 convolutions take a zero-copy fast path: the
// input already is the column matrix, so the tile kernels read src
// directly and nothing is packed at all.
func ConvGemmForward(dst, wd, src []float32, n, c, h, w, outC, kh, kw, stride, pad int) {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	if n == 0 || outC == 0 {
		return
	}
	if outH <= 0 || outW <= 0 {
		panic("tensor: ConvGemmForward empty output")
	}
	outArea := outH * outW
	k := c * kh * kw
	if len(src) < n*c*h*w {
		panic("tensor: ConvGemmForward src too small")
	}
	if len(wd) < outC*k {
		panic("tensor: ConvGemmForward weight too small")
	}
	if len(dst) < n*outC*outArea {
		panic("tensor: ConvGemmForward dst too small")
	}
	if kh == 1 && kw == 1 && stride == 1 && pad == 0 {
		convForward1x1(dst, wd, src, n, c, outArea, outC)
		return
	}
	perSample := (outArea + gemmJTile - 1) / gemmJTile
	units := n * perSample
	if units >= 2 && n*k*outArea*outC >= matMulShardFlops && Workers() > 1 {
		ParallelFor(units, func(_, lo, hi int) {
			convForwardUnits(dst, wd, src, c, h, w, kh, kw, stride, pad, outH, outW, outC, perSample, lo, hi)
		})
		return
	}
	convForwardUnits(dst, wd, src, c, h, w, kh, kw, stride, pad, outH, outW, outC, perSample, 0, units)
}

// convForwardUnits packs and consumes panel units [lo, hi). A unit is
// one column panel of one sample — panels are sample-aligned, so every
// panel's output rows are contiguous dst segments and the tiles write
// straight into the batch output. Each panel is lowered into a pooled
// k×gemmJTile buffer and multiplied while still cache-hot; the column
// matrix as a whole never exists.
func convForwardUnits(dst, wd, src []float32, c, h, w, kh, kw, stride, pad, outH, outW, outC, perSample, lo, hi int) {
	outArea := outH * outW
	k := c * kh * kw
	chw := c * h * w
	outStride := outC * outArea
	pbuf := getPanel(k * gemmJTile)
	for u := lo; u < hi; u++ {
		i, pi := u/perSample, u%perSample
		j0 := pi * gemmJTile
		jw := outArea - j0
		if jw > gemmJTile {
			jw = gemmJTile
		}
		im2colSeg(pbuf.f, jw, src[i*chw:(i+1)*chw], c, h, w, kh, kw, stride, pad, outH, outW, j0, j0+jw)
		convPanelRows(dst, wd, pbuf.f, k, outC, jw, jw, 0, i*outStride+j0, outArea)
	}
	panelPool.Put(pbuf)
}

// convPanelRows runs the 2-row register tiles of matmul.go over all
// outC weight rows for one panel: output row oc lands at
// od[base+oc*orStride : +jw], panel row p is read at pb[pbBase+p*bs :
// +jw]. Reusing gemmTile2/gemmTile1 verbatim is what makes the fused
// path's per-element operation sequence identical to Gemm's.
func convPanelRows(od, wd, pb []float32, k, outC, jw, bs, pbBase, base, orStride int) {
	if useFast() {
		// Fast tier: the same per-row microkernel the fast Gemm path
		// runs, so fused conv stays bit-identical to the composed
		// Im2Col+Gemm oracle within the tier.
		for i := 0; i < outC; i++ {
			fastTile1(od[base+i*orStride:base+i*orStride+jw], wd[i*k:i*k+k], pb, jw, bs, pbBase)
		}
		return
	}
	i := 0
	for ; i+2 <= outC; i += 2 {
		gemmTile2(od[base+i*orStride:base+i*orStride+jw],
			od[base+(i+1)*orStride:base+(i+1)*orStride+jw],
			wd[i*k:i*k+k], wd[(i+1)*k:(i+1)*k+k], pb, jw, bs, pbBase)
	}
	for ; i < outC; i++ {
		gemmTile1(od[base+i*orStride:base+i*orStride+jw], wd[i*k:i*k+k], pb, jw, bs, pbBase)
	}
}

// convForward1x1 is the zero-copy fast path for 1×1/stride-1/pad-0
// convolutions: sample i's column matrix IS its input plane block
// (c × area, row-major), so the tile kernels read src directly with
// panel row stride = area. Panels tile each sample's area columns;
// work parallelizes across (sample, panel) units.
func convForward1x1(dst, wd, src []float32, n, c, area, outC int) {
	if area == 0 {
		return
	}
	perSample := (area + gemmJTile - 1) / gemmJTile
	units := n * perSample
	body := func(lo, hi int) {
		for u := lo; u < hi; u++ {
			i, pi := u/perSample, u%perSample
			j0 := pi * gemmJTile
			jw := area - j0
			if jw > gemmJTile {
				jw = gemmJTile
			}
			convPanelRows(dst, wd, src[i*c*area:(i+1)*c*area],
				c, outC, jw, area, j0, i*outC*area+j0, area)
		}
	}
	if units >= 2 && n*c*area*outC >= matMulShardFlops && Workers() > 1 {
		ParallelFor(units, func(_, lo, hi int) { body(lo, hi) })
		return
	}
	body(0, units)
}

// ConvGemmBackward computes both convolution gradients in one fused
// batched pass:
//
//   - dwChunks receives n per-sample weight-gradient chunks, chunk i
//     (outC×(c·kh·kw) row-major, dY_i · col_iᵀ) at
//     dwChunks[i*outC*c*kh*kw:]. Column rows are generated on the fly
//     from src — the per-sample column matrix is never materialized.
//     The caller adds the chunks to the gradient in ascending sample
//     order, preserving the per-sample accumulation the serial
//     GemmTB+AddInPlace loop performed.
//   - dX (n×c×h×w, pre-zeroed by the caller) receives the fused
//     col2im of Wᵀ·dY: each dcol row pair is computed into pooled
//     scratch and scattered into the image immediately, in ascending
//     row order — exactly Col2Im's accumulation order — without a
//     dcol buffer.
//
// Samples are independent, so the batch shards across Workers()
// goroutines above matMulShardFlops; per-sample results are
// bit-identical to the materialized GemmTB / GemmTA+Col2Im composition
// at any worker count. 1×1/stride-1/pad-0 convolutions skip column-row
// generation (src rows are the column rows, zero-copy) and scatter via
// straight row additions.
func ConvGemmBackward(dX, dwChunks, wd, src, dY []float32, n, c, h, w, outC, kh, kw, stride, pad int) {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	if n == 0 {
		return
	}
	if outH <= 0 || outW <= 0 {
		panic("tensor: ConvGemmBackward empty output")
	}
	outArea := outH * outW
	k := c * kh * kw
	if len(src) < n*c*h*w || len(dX) < n*c*h*w {
		panic("tensor: ConvGemmBackward src/dX too small")
	}
	if len(wd) < outC*k || len(dwChunks) < n*outC*k {
		panic("tensor: ConvGemmBackward weight/chunk buffer too small")
	}
	if len(dY) < n*outC*outArea {
		panic("tensor: ConvGemmBackward dY too small")
	}
	if n >= 2 && n*k*outArea*outC >= matMulShardFlops && Workers() > 1 {
		ParallelFor(n, func(_, lo, hi int) {
			convBackwardSamples(dX, dwChunks, wd, src, dY, c, h, w, outC, kh, kw, stride, pad, outH, outW, lo, hi)
		})
		return
	}
	convBackwardSamples(dX, dwChunks, wd, src, dY, c, h, w, outC, kh, kw, stride, pad, outH, outW, 0, n)
}

// convBackwardSamples processes samples [lo, hi): the dW chunk and the
// fused col2im dX of each sample in turn.
func convBackwardSamples(dX, dwChunks, wd, src, dY []float32, c, h, w, outC, kh, kw, stride, pad, outH, outW, lo, hi int) {
	outArea := outH * outW
	k := c * kh * kw
	chw := c * h * w
	outStride := outC * outArea
	fast := kh == 1 && kw == 1 && stride == 1 && pad == 0
	vec := useFast()
	// Scratch: 4 generated column rows for the exact-tier dW quads, 4
	// gathered patch rows for the fast-tier axpy dW, and a k-row dcol
	// block for dX, all from one pooled panel.
	buf := getPanel(4*outArea + 4*k + k*outArea)
	gen := buf.f[:4*outArea]
	patches := buf.f[4*outArea : 4*outArea+4*k]
	sb := buf.f[4*outArea+4*k:]
	// Fast-tier dW dispatch is by shape: the axpy batching streams
	// rank-1 updates over k-length chunk rows, which wins when the dot
	// kernels would pay a horizontal reduction per element over short
	// outArea-length vectors (deep layers, k >= outArea) and loses to
	// chunk-row load/store traffic when outArea dominates (early
	// layers). The predicate depends only on the layer shape, never on
	// data or worker count, so results stay deterministic.
	axpy := vec && k >= outArea
	for i := lo; i < hi; i++ {
		srci := src[i*chw : (i+1)*chw]
		dyi := dY[i*outStride : (i+1)*outStride]
		if axpy {
			convSampleDWAxpy(dwChunks[i*outC*k:(i+1)*outC*k], srci, dyi, patches,
				c, h, w, outC, kh, kw, stride, pad, outH, outW, fast)
		} else {
			convSampleDW(dwChunks[i*outC*k:(i+1)*outC*k], srci, dyi, gen,
				c, h, w, outC, kh, kw, stride, pad, outH, outW, fast, vec)
		}
		convSampleDX(dX[i*chw:(i+1)*chw], wd, dyi, sb,
			c, h, w, outC, kh, kw, stride, pad, outH, outW, fast)
	}
	panelPool.Put(buf)
}

// im2rowPatch gathers the receptive field of output position (oy, ox)
// as one contiguous k-length row (c·kh·kw, channel-major), with
// out-of-bounds taps written as exact 0 — one row of the patch-major
// (im2row) layout, the transpose of im2colRow's column order.
func im2rowPatch(dst, src []float32, c, h, w, kh, kw, stride, pad, oy, ox int) {
	d := 0
	for ci := 0; ci < c; ci++ {
		plane := src[ci*h*w : (ci+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			iy := oy*stride - pad + ky
			if iy < 0 || iy >= h {
				for kx := 0; kx < kw; kx++ {
					dst[d] = 0
					d++
				}
				continue
			}
			base := iy * w
			ix := ox*stride - pad
			for kx := 0; kx < kw; kx++ {
				if x := ix + kx; x >= 0 && x < w {
					dst[d] = plane[base+x]
				} else {
					dst[d] = 0
				}
				d++
			}
		}
	}
}

// convSampleDW computes one sample's weight-gradient chunk
// dY_i · col_iᵀ with column rows generated on demand — the dot-form
// kernel (fast-tier deep shapes with k >= outArea run convSampleDWAxpy
// instead; see convBackwardSamples). The dot-product bodies are
// exactly gemmTBRows' 1×4 and single-column tiles (fastDot4/fastDot on
// the fast tier — the same microkernels the fast GemmTB runs, keeping
// this form bit-identical to the composed oracle within either tier),
// reordered column-quad-outer so each generated row quad is reused
// across every output row — a reordering across output elements only,
// so each element's accumulation sequence is unchanged.
func convSampleDW(chunk, srci, dyi, gen []float32, c, h, w, outC, kh, kw, stride, pad, outH, outW int, fast, vec bool) {
	outArea := outH * outW
	k := c * kh * kw
	kk := kh * kw
	colRow := func(r, slot int) []float32 {
		if fast {
			return srci[r*outArea : (r+1)*outArea]
		}
		d := gen[slot*outArea : (slot+1)*outArea]
		ch := r / kk
		ky := (r % kk) / kw
		kx := r % kw
		im2colRow(d, srci, ch*h*w, ky, kx, h, w, outH, outW, stride, pad)
		return d
	}
	j := 0
	for ; j+4 <= k; j += 4 {
		b0 := colRow(j, 0)
		b1 := colRow(j+1, 1)
		b2 := colRow(j+2, 2)
		b3 := colRow(j+3, 3)
		for oc := 0; oc < outC; oc++ {
			arow := dyi[oc*outArea : (oc+1)*outArea]
			if vec {
				chunk[oc*k+j], chunk[oc*k+j+1], chunk[oc*k+j+2], chunk[oc*k+j+3] =
					fastDot4(arow, b0, b1, b2, b3)
				continue
			}
			var s0, s1, s2, s3 float32
			p := 0
			for ; p+4 <= outArea; p += 4 {
				a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
				s0 += a0*b0[p] + a1*b0[p+1] + a2*b0[p+2] + a3*b0[p+3]
				s1 += a0*b1[p] + a1*b1[p+1] + a2*b1[p+2] + a3*b1[p+3]
				s2 += a0*b2[p] + a1*b2[p+1] + a2*b2[p+2] + a3*b2[p+3]
				s3 += a0*b3[p] + a1*b3[p+1] + a2*b3[p+2] + a3*b3[p+3]
			}
			for ; p < outArea; p++ {
				av := arow[p]
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			chunk[oc*k+j], chunk[oc*k+j+1], chunk[oc*k+j+2], chunk[oc*k+j+3] = s0, s1, s2, s3
		}
	}
	for ; j < k; j++ {
		brow := colRow(j, 0)
		for oc := 0; oc < outC; oc++ {
			arow := dyi[oc*outArea : (oc+1)*outArea]
			if vec {
				chunk[oc*k+j] = fastDot(arow, brow)
				continue
			}
			var s float32
			p := 0
			for ; p+4 <= outArea; p += 4 {
				s += arow[p]*brow[p] + arow[p+1]*brow[p+1] +
					arow[p+2]*brow[p+2] + arow[p+3]*brow[p+3]
			}
			for ; p < outArea; p++ {
				s += arow[p] * brow[p]
			}
			chunk[oc*k+j] = s
		}
	}
}

// convSampleDX computes one sample's input gradient: the dcol block
// Wᵀ·dY_i is produced by gemmTAShard — the exact kernel behind GemmTA,
// so every dcol element accumulates in the reference order with the
// reference zero skips — into a pooled scratch block shared across the
// shard's samples, then scattered into the pre-zeroed image via
// col2imRow in ascending row order, exactly Col2Im's accumulation
// order. No per-layer dcol buffer is retained; 1×1/stride-1/pad-0
// convolutions skip the index arithmetic and add rows directly.
func convSampleDX(dxi, wd, dyi, sb []float32, c, h, w, outC, kh, kw, stride, pad, outH, outW int, fast bool) {
	outArea := outH * outW
	k := c * kh * kw
	kk := kh * kw
	if useFast() {
		// Serial fast variant: this runs inside the per-sample
		// ParallelFor, so it must not fan out again.
		fastGemmTASerial(sb, wd, dyi, outC, k, outArea)
	} else {
		gemmTAShard(sb, wd, dyi, outC, k, outArea, 0, k)
	}
	for r := 0; r < k; r++ {
		s := sb[r*outArea : (r+1)*outArea]
		if fast {
			drow := dxi[r*outArea : (r+1)*outArea]
			for x, v := range s {
				drow[x] += v
			}
			continue
		}
		col2imRow(dxi, s, (r/kk)*h*w, (r%kk)/kw, r%kw, h, w, outH, outW, stride, pad)
	}
}
