package tensor

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Numerics selects the kernel numerics tier for the whole process.
//
// The two tiers make one contract explicit:
//
//   - NumericsExact (the zero value, and the default): the scalar
//     kernels whose floating-point operation order is bitwise-pinned
//     by the oracle suites. Every determinism-, checkpoint-, and
//     repro-bearing path — distributed leases, checkpoint resume, the
//     determinism-equivalence suites — is contractually exact.
//   - NumericsFast: AVX2+FMA microkernels. FMA fuses the multiply and
//     add with a single rounding and the vectorized reduction sums in
//     a different order, so results differ from exact in the last
//     ULPs; the fast tier is pinned against the exact oracle by
//     ULP-tolerance tests instead of bit identity. Within the fast
//     tier, results are still per-element deterministic: the same
//     shapes produce the same bits at any worker count.
//
// The tier is a process-wide knob (like GOMAXPROCS), set once at
// startup; it is not a per-call parameter.
type Numerics int32

const (
	// NumericsExact is the bitwise-pinned scalar tier (default).
	NumericsExact Numerics = iota
	// NumericsFast is the AVX2+FMA vectorized tier, ULP-pinned
	// against exact. Requesting it on hardware (or a noasm build)
	// without the kernels silently keeps the exact tier active;
	// callers can detect that via FastSupported/ActiveNumerics.
	NumericsFast
)

// String returns the canonical spelling accepted by ParseNumerics.
func (n Numerics) String() string {
	switch n {
	case NumericsExact:
		return "exact"
	case NumericsFast:
		return "fast"
	default:
		return fmt.Sprintf("numerics(%d)", int32(n))
	}
}

// ParseNumerics parses "exact" or "fast" (the -numerics flag values).
func ParseNumerics(s string) (Numerics, error) {
	switch s {
	case "exact":
		return NumericsExact, nil
	case "fast":
		return NumericsFast, nil
	default:
		return NumericsExact, fmt.Errorf("unknown numerics tier %q (want \"exact\" or \"fast\")", s)
	}
}

// numericsMode holds the requested tier. Kernels read it once per
// entry-point call, so flipping it mid-computation affects only
// subsequent calls.
var numericsMode atomic.Int32

// SetNumerics requests a numerics tier for all subsequent kernel
// calls and returns the previously requested tier. Unknown values are
// clamped to NumericsExact.
func SetNumerics(n Numerics) Numerics {
	if n != NumericsFast {
		n = NumericsExact
	}
	return Numerics(numericsMode.Swap(int32(n)))
}

// RequestedNumerics reports the tier last passed to SetNumerics (or
// taken from FTPIM_NUMERICS at init), whether or not it is available.
func RequestedNumerics() Numerics {
	return Numerics(numericsMode.Load())
}

// ActiveNumerics reports the tier kernels actually run in: the
// requested tier, demoted to exact when the fast kernels are not
// compiled in or the CPU lacks AVX2+FMA.
func ActiveNumerics() Numerics {
	if useFast() {
		return NumericsFast
	}
	return NumericsExact
}

// FastSupported reports whether the fast tier can run in this
// process: the assembly kernels are compiled in (amd64, no noasm tag)
// and the CPU plus OS support AVX2, FMA, and YMM state.
func FastSupported() bool {
	return fastSupported
}

// CPUFeatures returns the detected SIMD feature set relevant to the
// fast tier as a comma-separated list (e.g. "avx,avx2,fma"), or ""
// when nothing relevant was detected or detection is unavailable
// (non-amd64 or noasm builds).
func CPUFeatures() string {
	return cpuFeatures
}

// useFast is the dispatch predicate the kernel entry points check.
func useFast() bool {
	return fastSupported && numericsMode.Load() == int32(NumericsFast)
}

// FTPIM_NUMERICS pre-selects the tier before main runs, so whole test
// binaries can be forced onto the fast tier (the CI leg does exactly
// that). An explicit SetNumerics — e.g. from the -numerics flag —
// overrides it.
func init() {
	v := os.Getenv("FTPIM_NUMERICS")
	if v == "" {
		return
	}
	m, err := ParseNumerics(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tensor: ignoring FTPIM_NUMERICS=%q: %v\n", v, err)
		return
	}
	numericsMode.Store(int32(m))
}
