//go:build !amd64 || noasm

package tensor

// Pure-Go builds have no int8 microkernels; useFast() never returns
// true, so these stubs only satisfy the dispatch call sites.

func fastDotS8(a, b []int8) int32 {
	unreachableFast()
	return 0
}

func fastDot4S8(a, b0, b1, b2, b3 []int8) (s0, s1, s2, s3 int32) {
	unreachableFast()
	return
}
