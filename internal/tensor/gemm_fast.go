//go:build amd64 && !noasm

package tensor

// Fast-tier orchestration: the same packing, blocking, and sharding
// schedules as the exact kernels, with the inner loops replaced by the
// AVX2+FMA microkernels in gemm_avx2_amd64.s. The microkernels handle
// the widest multiple of 8 of each span and Go code finishes the
// scalar tail, so any shape runs on either tier.
//
// Fused conv forward/dX and composed GEMM stay bit-identical to each
// other *within* the fast tier for the same reason they do in the
// exact tier: both feed identical per-element operand sequences to the
// same kernels (fastTile1 / fastDot4 / fastDot), and panel addressing
// only changes where values live, not which operations run. The one
// exception is conv dW (convSampleDWAxpy below), which batches rank-1
// axpy updates instead of running the composed GemmTB's dot products —
// a different per-element rounding order, so fast-tier dW is ULP-pinned
// against the exact oracle like any other fast kernel while staying
// bit-deterministic and worker-invariant within the tier.

//go:noescape
func axpy4FMA(dst, b0, b1, b2, b3 *float32, a0, a1, a2, a3 float32, n int)

//go:noescape
func axpyFMA(dst, b *float32, a float32, n int)

//go:noescape
func dot4FMA(a, b0, b1, b2, b3 *float32, n int, out *float32)

//go:noescape
func dotFMA(a, b *float32, n int) float32

// fastTile1 is the fast-tier counterpart of gemmTile1: one output row
// segment against a packed B panel (jw/bs/base addressing identical).
// The quad skip-zero check is kept so pruned models keep their
// sparsity win on the fast tier too.
func fastTile1(orow, arow, pb []float32, jw, bs, base int) {
	for x := range orow {
		orow[x] = 0
	}
	k := len(arow)
	w := jw &^ 7
	p := 0
	for ; p+4 <= k; p += 4 {
		a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		b0 := pb[base+p*bs : base+p*bs+jw]
		b1 := pb[base+(p+1)*bs : base+(p+1)*bs+jw]
		b2 := pb[base+(p+2)*bs : base+(p+2)*bs+jw]
		b3 := pb[base+(p+3)*bs : base+(p+3)*bs+jw]
		if w > 0 {
			axpy4FMA(&orow[0], &b0[0], &b1[0], &b2[0], &b3[0], a0, a1, a2, a3, w)
		}
		for x := w; x < jw; x++ {
			orow[x] += a0*b0[x] + a1*b1[x] + a2*b2[x] + a3*b3[x]
		}
	}
	for ; p < k; p++ {
		av := arow[p]
		if av == 0 {
			continue
		}
		brow := pb[base+p*bs : base+p*bs+jw]
		if w > 0 {
			axpyFMA(&orow[0], &brow[0], av, w)
		}
		for x := w; x < jw; x++ {
			orow[x] += av * brow[x]
		}
	}
}

// fastGemmRows walks output rows [lo, hi) with the column-panel
// schedule of gemmRows, one row at a time (the 4-coefficient axpy
// microkernel already carries the register-tile role gemmTile2 plays
// in the scalar kernel).
func fastGemmRows(od, ad, pb []float32, k, n, lo, hi int) {
	for j0 := 0; j0 < n; j0 += gemmJTile {
		jw := n - j0
		if jw > gemmJTile {
			jw = gemmJTile
		}
		base := j0 * k
		for i := lo; i < hi; i++ {
			fastTile1(od[i*n+j0:i*n+j0+jw], ad[i*k:i*k+k], pb, jw, jw, base)
		}
	}
}

// fastGemm is the fast-tier dst = A·B entry: same packing and row
// sharding as Gemm.
func fastGemm(dst, a, b []float32, m, k, n int) {
	pb, buf := packB(b, k, n)
	if m >= 2 && m*k*n >= matMulShardFlops && Workers() > 1 {
		ParallelFor(m, func(_, lo, hi int) {
			fastGemmRows(dst, a, pb, k, n, lo, hi)
		})
	} else {
		fastGemmRows(dst, a, pb, k, n, 0, m)
	}
	if buf != nil {
		panelPool.Put(buf)
	}
}

// fastGemmTAPanel computes output rows [lo, hi) of dst = Aᵀ·B:
// transpose-pack the shard's A columns into a pooled row-major panel,
// then reuse the fast row kernel against the packed B. Per-element
// results do not depend on the shard bounds, so sharded and serial
// runs agree bitwise within the fast tier.
func fastGemmTAPanel(dst, a, pb []float32, k, m, n, lo, hi int) {
	iw := hi - lo
	t := getPanel(iw * k)
	for p := 0; p < k; p++ {
		col := a[p*m+lo : p*m+hi]
		for ii, v := range col {
			t.f[ii*k+p] = v
		}
	}
	fastGemmRows(dst[lo*n:hi*n], t.f, pb, k, n, 0, iw)
	panelPool.Put(t)
}

// fastGemmTA is the fast-tier dst = Aᵀ·B entry: same shard split as
// GemmTA.
func fastGemmTA(dst, a, b []float32, k, m, n int) {
	pb, buf := packB(b, k, n)
	if m >= 2 && m*k*n >= matMulShardFlops && Workers() > 1 {
		ParallelFor(m, func(_, lo, hi int) {
			fastGemmTAPanel(dst, a, pb, k, m, n, lo, hi)
		})
	} else {
		fastGemmTAPanel(dst, a, pb, k, m, n, 0, m)
	}
	if buf != nil {
		panelPool.Put(buf)
	}
}

// fastGemmTASerial is fastGemmTA without the worker fan-out, for
// callers already running inside a ParallelFor (conv backward's
// per-sample dX stage).
func fastGemmTASerial(dst, a, b []float32, k, m, n int) {
	pb, buf := packB(b, k, n)
	fastGemmTAPanel(dst, a, pb, k, m, n, 0, m)
	if buf != nil {
		panelPool.Put(buf)
	}
}

// convSampleDWAxpy is the fast-tier dW kernel (ROADMAP item 3's axpy
// batching): instead of one dot product per chunk element over
// outArea-length vectors — which regenerates or reloads every column
// row once per output channel — it walks output positions and streams
// rank-1 updates chunk[oc,:] += dy[oc,p]·patch[p,:] through the axpy
// microkernels, so each gathered k-length patch row is reused across
// all outC chunk rows. Four positions are batched per axpy4FMA call; a
// quad whose four dy coefficients are all zero is skipped (ReLU
// backprop zeros), mirroring fastTile1's sparsity win. Each chunk
// element accumulates in ascending p with 4-term FMA groups — a fixed
// sequence for a fixed shape, so the result is bit-deterministic and
// (the per-sample batch shard being the parallel unit) worker-count
// invariant, but differently rounded than the exact tier's dot kernel:
// dW is ULP-pinned against the exact oracle, not bitwise.
func convSampleDWAxpy(chunk, srci, dyi, patches []float32, c, h, w, outC, kh, kw, stride, pad, outH, outW int, fast1x1 bool) {
	outArea := outH * outW
	k := c * kh * kw
	for x := range chunk[:outC*k] {
		chunk[x] = 0
	}
	wq := k &^ 7
	gather := func(p, slot int) []float32 {
		d := patches[slot*k : (slot+1)*k]
		if fast1x1 {
			// 1×1/stride-1/pad-0: the patch row is column p of the
			// c×outArea input plane.
			for ci := 0; ci < c; ci++ {
				d[ci] = srci[ci*outArea+p]
			}
			return d
		}
		im2rowPatch(d, srci, c, h, w, kh, kw, stride, pad, p/outW, p%outW)
		return d
	}
	p := 0
	for ; p+4 <= outArea; p += 4 {
		b0 := gather(p, 0)
		b1 := gather(p+1, 1)
		b2 := gather(p+2, 2)
		b3 := gather(p+3, 3)
		for oc := 0; oc < outC; oc++ {
			a0, a1 := dyi[oc*outArea+p], dyi[oc*outArea+p+1]
			a2, a3 := dyi[oc*outArea+p+2], dyi[oc*outArea+p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			crow := chunk[oc*k : oc*k+k]
			if wq > 0 {
				axpy4FMA(&crow[0], &b0[0], &b1[0], &b2[0], &b3[0], a0, a1, a2, a3, wq)
			}
			for x := wq; x < k; x++ {
				crow[x] += a0*b0[x] + a1*b1[x] + a2*b2[x] + a3*b3[x]
			}
		}
	}
	for ; p < outArea; p++ {
		b0 := gather(p, 0)
		for oc := 0; oc < outC; oc++ {
			av := dyi[oc*outArea+p]
			if av == 0 {
				continue
			}
			crow := chunk[oc*k : oc*k+k]
			if wq > 0 {
				axpyFMA(&crow[0], &b0[0], av, wq)
			}
			for x := wq; x < k; x++ {
				crow[x] += av * b0[x]
			}
		}
	}
}

// fastDot4 returns the four dot products of a against b0..b3
// (all len(a) long): microkernel over the widest multiple of 8,
// scalar tail in Go.
func fastDot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	k := len(a)
	w := k &^ 7
	if w > 0 {
		var out [4]float32
		dot4FMA(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], w, &out[0])
		s0, s1, s2, s3 = out[0], out[1], out[2], out[3]
	}
	for p := w; p < k; p++ {
		av := a[p]
		s0 += av * b0[p]
		s1 += av * b1[p]
		s2 += av * b2[p]
		s3 += av * b3[p]
	}
	return
}

// fastDot returns the dot product of a and b (same length).
func fastDot(a, b []float32) float32 {
	k := len(a)
	w := k &^ 7
	var s float32
	if w > 0 {
		s = dotFMA(&a[0], &b[0], w)
	}
	for p := w; p < k; p++ {
		s += a[p] * b[p]
	}
	return s
}

// fastGemmTBRows computes output rows [lo, hi) of dst = A·Bᵀ with the
// gemmTBRows schedule (B-row blocks of gemmTBJBlock, 1×4 dot tiles).
func fastGemmTBRows(od, ad, bd []float32, k, n, lo, hi int) {
	for j0 := 0; j0 < n; j0 += gemmTBJBlock {
		jb := n - j0
		if jb > gemmTBJBlock {
			jb = gemmTBJBlock
		}
		for i := lo; i < hi; i++ {
			arow := ad[i*k : i*k+k]
			orow := od[i*n : i*n+n]
			j := j0
			for ; j+4 <= j0+jb; j += 4 {
				orow[j], orow[j+1], orow[j+2], orow[j+3] = fastDot4(arow,
					bd[j*k:j*k+k], bd[(j+1)*k:(j+1)*k+k],
					bd[(j+2)*k:(j+2)*k+k], bd[(j+3)*k:(j+3)*k+k])
			}
			for ; j < j0+jb; j++ {
				orow[j] = fastDot(arow, bd[j*k:j*k+k])
			}
		}
	}
}

// fastGemmTB is the fast-tier dst = A·Bᵀ entry: same row sharding as
// GemmTB.
func fastGemmTB(dst, a, b []float32, m, k, n int) {
	if m >= 2 && m*k*n >= matMulShardFlops && Workers() > 1 {
		ParallelFor(m, func(_, lo, hi int) {
			fastGemmTBRows(dst, a, b, k, n, lo, hi)
		})
		return
	}
	fastGemmTBRows(dst, a, b, k, n, 0, m)
}
