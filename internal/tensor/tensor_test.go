package tensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Len() != 24 {
		t.Fatalf("rank=%d len=%d, want 3/24", x.Rank(), x.Len())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad dims %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dim")
		}
	}()
	New(2, -1)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 42
	if x.At(0, 0) != 42 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceBadLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 3)
	if x.At(2, 3) != 7.5 {
		t.Fatal("At/Set mismatch")
	}
	if x.Data()[2*4+3] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = x.At(0, 2)
}

func TestReshapeViewSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 0, 1)
	if x.At(0, 1) != 5 {
		t.Fatal("Reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad reshape")
		}
	}()
	x.Reshape(5, 5)
}

func TestCloneIndependence(t *testing.T) {
	x := Full(3, 2, 2)
	y := x.Clone()
	y.Set(9, 0, 0)
	if x.At(0, 0) != 3 {
		t.Fatal("Clone must deep-copy")
	}
	if !x.SameShape(y) {
		t.Fatal("Clone must preserve shape")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add got %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub got %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul got %v", got)
	}
	c := a.Clone()
	c.Axpy(2, b)
	if c.At(1, 1) != 4+80 {
		t.Fatalf("Axpy got %v", c.Data())
	}
	c = a.Clone()
	c.Scale(0.5)
	if c.At(0, 1) != 1 {
		t.Fatal("Scale failed")
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{-3, 1, 2, -0.5}, 4)
	if a.Sum() != -0.5 {
		t.Fatalf("Sum=%v", a.Sum())
	}
	if a.Mean() != -0.125 {
		t.Fatalf("Mean=%v", a.Mean())
	}
	if a.Max() != 2 || a.Min() != -3 || a.MaxAbs() != 3 {
		t.Fatal("Max/Min/MaxAbs wrong")
	}
	if a.ArgMax() != 2 {
		t.Fatalf("ArgMax=%d", a.ArgMax())
	}
	if math.Abs(a.Norm2()-math.Sqrt(9+1+4+0.25)) > 1e-9 {
		t.Fatalf("Norm2=%v", a.Norm2())
	}
}

func TestVariance(t *testing.T) {
	a := FromSlice([]float32{1, 1, 1, 1}, 4)
	if a.Variance() != 0 {
		t.Fatal("constant tensor must have zero variance")
	}
	b := FromSlice([]float32{0, 2}, 2)
	if b.Variance() != 1 {
		t.Fatalf("Variance=%v want 1", b.Variance())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	x := New(4, 7)
	r := NewRNG(1)
	FillNormal(x, r, 0, 3)
	s := Softmax(x, nil)
	for i := 0; i < 4; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Huge logits must not overflow.
	x := FromSlice([]float32{1e30, 1e30, -1e30}, 1, 3)
	s := Softmax(x, nil)
	if !s.IsFinite() {
		t.Fatal("softmax overflowed")
	}
	if math.Abs(float64(s.At(0, 0))-0.5) > 1e-5 {
		t.Fatalf("expected 0.5, got %v", s.At(0, 0))
	}
}

func TestTranspose(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := Transpose(x)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("bad transpose shape %v", y.Shape())
	}
	if y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Fatalf("bad transpose values %v", y.Data())
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows := 1 + int(r.Uint64()%40)
		cols := 1 + int(r.Uint64()%40)
		x := New(rows, cols)
		FillNormal(x, r, 0, 1)
		return Transpose(Transpose(x)).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsFinite(t *testing.T) {
	x := New(3)
	if !x.IsFinite() {
		t.Fatal("zeros are finite")
	}
	x.Data()[1] = float32(math.NaN())
	if x.IsFinite() {
		t.Fatal("NaN not detected")
	}
	x.Data()[1] = float32(math.Inf(1))
	if x.IsFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1.0005, 2}, 2)
	if !a.AllClose(b, 1e-3) {
		t.Fatal("expected close")
	}
	if a.AllClose(b, 1e-5) {
		t.Fatal("expected not close")
	}
	c := FromSlice([]float32{1, 2}, 1, 2)
	if a.AllClose(c, 1) {
		t.Fatal("different shapes must not be close")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	r := NewRNG(7)
	x := New(3, 5, 2)
	FillNormal(x, r, 0, 2)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var y Tensor
	if _, err := y.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !x.Equal(&y) {
		t.Fatal("round trip mismatch")
	}
}

func TestSerializationBadMagic(t *testing.T) {
	var y Tensor
	if _, err := y.ReadFrom(bytes.NewReader([]byte("XXXX...."))); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestGobRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(r.Uint64()%64)
		x := New(n)
		FillNormal(x, r, 0, 10)
		b, err := x.GobEncode()
		if err != nil {
			return false
		}
		var y Tensor
		if err := y.GobDecode(b); err != nil {
			return false
		}
		return x.Equal(&y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	s1 := NewRNG(42).Stream("faults")
	s2 := NewRNG(42).Stream("faults")
	s3 := NewRNG(42).Stream("init")
	if s1.Float64() != s2.Float64() {
		t.Fatal("same stream name must match")
	}
	if NewRNG(42).Stream("faults").Float64() == s3.Float64() {
		t.Fatal("different stream names should diverge")
	}
}

func TestRNGStreamNIndependent(t *testing.T) {
	r := NewRNG(5)
	a := r.StreamN("run", 0).Float64()
	b := r.StreamN("run", 1).Float64()
	if a == b {
		t.Fatal("StreamN children should differ")
	}
}

func TestInitHeScale(t *testing.T) {
	r := NewRNG(3)
	x := New(10000)
	InitHe(x, r, 50)
	std := math.Sqrt(x.Variance())
	want := math.Sqrt(2.0 / 50)
	if math.Abs(std-want) > 0.05*want {
		t.Fatalf("He std=%v want≈%v", std, want)
	}
}

func TestInitXavierRange(t *testing.T) {
	r := NewRNG(3)
	x := New(1000)
	InitXavier(x, r, 30, 10)
	limit := float32(math.Sqrt(6.0 / 40))
	if x.Max() > limit || x.Min() < -limit {
		t.Fatal("Xavier out of range")
	}
}

func TestApplyAndMap(t *testing.T) {
	x := FromSlice([]float32{-1, 2, -3}, 3)
	y := Map(x, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	if y.At(0) != 0 || y.At(1) != 2 || y.At(2) != 0 {
		t.Fatalf("Map relu wrong: %v", y.Data())
	}
	x.Apply(func(v float32) float32 { return v * v })
	if x.At(2) != 9 {
		t.Fatal("Apply failed")
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot=%v", Dot(a, b))
	}
}
