//go:build !noasm

#include "textflag.h"

// AVX2 int8 dot microkernels (see quant_fast.go).
//
// All kernels require n to be a positive multiple of 16; Go callers
// handle the scalar tail. Each 16-element step sign-extends int8 lanes
// to int16 (VPMOVSXBW), multiplies and pair-sums them into 8 int32
// lanes (VPMADDWD; |product pair| <= 2*127*127, far inside int16
// product / int32 sum range), and accumulates with VPADDD. Integer
// addition is associative, so the lane-parallel accumulation is
// bit-identical to the scalar kernel — there is no ULP contract here.

// func dotS8Asm(a, b *int8, n int) int32
// Returns Σ_x a[x]*b[x] for x in [0, n), two YMM accumulators.
TEXT ·dotS8Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	XORQ AX, AX

dot8_loop32:
	CMPQ CX, $32
	JLT  dot8_loop16
	VPMOVSXBW (DI)(AX*1), Y2
	VPMOVSXBW (SI)(AX*1), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y0, Y0
	VPMOVSXBW 16(DI)(AX*1), Y4
	VPMOVSXBW 16(SI)(AX*1), Y5
	VPMADDWD  Y5, Y4, Y4
	VPADDD    Y4, Y1, Y1
	ADDQ $32, AX
	SUBQ $32, CX
	JMP  dot8_loop32

dot8_loop16:
	CMPQ CX, $16
	JLT  dot8_reduce
	VPMOVSXBW (DI)(AX*1), Y2
	VPMOVSXBW (SI)(AX*1), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y0, Y0
	ADDQ $16, AX
	SUBQ $16, CX
	JMP  dot8_loop16

dot8_reduce:
	VPADDD       Y1, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	MOVL         AX, ret+24(FP)
	VZEROUPPER
	RET

// func dot4S8Asm(a, b0, b1, b2, b3 *int8, n int, out *int32)
// out[q] = Σ_x a[x]*bq[x] for x in [0, n), q in 0..3. The four rows
// share each sign-extended a vector.
TEXT ·dot4S8Asm(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ out+48(FP), DX
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	XORQ AX, AX

dot4s8_loop16:
	CMPQ CX, $16
	JLT  dot4s8_reduce
	VPMOVSXBW (DI)(AX*1), Y4
	VPMOVSXBW (SI)(AX*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y0, Y0
	VPMOVSXBW (R8)(AX*1), Y6
	VPMADDWD  Y6, Y4, Y6
	VPADDD    Y6, Y1, Y1
	VPMOVSXBW (R9)(AX*1), Y7
	VPMADDWD  Y7, Y4, Y7
	VPADDD    Y7, Y2, Y2
	VPMOVSXBW (R10)(AX*1), Y8
	VPMADDWD  Y8, Y4, Y8
	VPADDD    Y8, Y3, Y3
	ADDQ $16, AX
	SUBQ $16, CX
	JMP  dot4s8_loop16

dot4s8_reduce:
	VEXTRACTI128 $1, Y0, X4
	VPADDD       X4, X0, X0
	VPSHUFD      $0xEE, X0, X4
	VPADDD       X4, X0, X0
	VPSHUFD      $0x55, X0, X4
	VPADDD       X4, X0, X0
	VMOVD        X0, AX
	MOVL         AX, (DX)

	VEXTRACTI128 $1, Y1, X4
	VPADDD       X4, X1, X1
	VPSHUFD      $0xEE, X1, X4
	VPADDD       X4, X1, X1
	VPSHUFD      $0x55, X1, X4
	VPADDD       X4, X1, X1
	VMOVD        X1, AX
	MOVL         AX, 4(DX)

	VEXTRACTI128 $1, Y2, X4
	VPADDD       X4, X2, X2
	VPSHUFD      $0xEE, X2, X4
	VPADDD       X4, X2, X2
	VPSHUFD      $0x55, X2, X4
	VPADDD       X4, X2, X2
	VMOVD        X2, AX
	MOVL         AX, 8(DX)

	VEXTRACTI128 $1, Y3, X4
	VPADDD       X4, X3, X3
	VPSHUFD      $0xEE, X3, X4
	VPADDD       X4, X3, X3
	VPSHUFD      $0x55, X3, X4
	VPADDD       X4, X3, X3
	VMOVD        X3, AX
	MOVL         AX, 12(DX)

	VZEROUPPER
	RET
