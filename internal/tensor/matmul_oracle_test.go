package tensor

import (
	"fmt"
	"testing"
)

// The packed, register-tiled kernels must be bitwise-equal to the
// reference kernels they replaced — not merely close: the determinism,
// kill/resume, and golden-CSV contracts all assume GEMM results never
// change. The reference kernels (matMulRows, matMulTARef,
// matMulTBRows) are kept unexported in matmul.go purely as the oracles
// for these tests.
//
// These suites define the *exact* numerics tier, so they pin it
// explicitly (restoring the requested tier afterwards): under the
// FTPIM_NUMERICS=fast CI leg everything else runs fast, but exact must
// still match the oracles bit for bit. numerics_test.go holds the
// fast tier's ULP-pinning counterparts.

// oracleShapes stresses every structural regime of the blocked kernels:
// k%4 tails, single rows/cols, row-tile remainders (m%4, m%2), the
// packed-B path (n > gemmJTile), multi-tile n with a ragged last panel,
// and shapes large enough to cross the parallel-shard threshold.
var oracleShapes = [][3]int{
	{1, 1, 1},
	{1, 5, 3},
	{2, 4, 4},
	{3, 7, 5},
	{4, 16, 8},
	{5, 9, 11},
	{6, 3, 2},
	{7, 13, 17},
	{8, 8, 257},
	{9, 21, 300},
	{16, 64, 256},
	{17, 30, 259},
	{33, 40, 513},
	{64, 64, 64},
	{70, 128, 70},
}

// oraclePair builds a deterministic (A, B) pair with zeros sprinkled in
// A so the skip-zero fast paths — observable through signed zeros — are
// exercised, including whole all-zero quads.
func oraclePair(seed uint64, m, k, n int) (*Tensor, *Tensor) {
	rng := NewRNG(seed)
	a := New(m, k)
	b := New(k, n)
	FillNormal(a, rng, 0, 1)
	FillNormal(b, rng, 0, 1)
	ad := a.Data()
	for i := 0; i < len(ad); i += 3 {
		ad[i] = 0
	}
	// Zero a full row of A so one register-tile lane is all skips.
	if m > 2 {
		row := ad[2*k : 3*k]
		for i := range row {
			row[i] = 0
		}
	}
	// Negative zeros make accumulation-order changes observable even
	// when all products cancel.
	if len(ad) > 1 {
		ad[1] = float32(math32Copysign(0, -1))
	}
	return a, b
}

func math32Copysign(x, s float32) float32 {
	if s < 0 {
		return -x
	}
	return x
}

func TestGemmMatchesReferenceBitwise(t *testing.T) {
	defer SetNumerics(SetNumerics(NumericsExact))
	for _, s := range oracleShapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := oraclePair(0xA11CE, m, k, n)
			want := make([]float32, m*n)
			matMulRows(want, a.Data(), b.Data(), k, n, 0, m)
			for _, w := range []int{1, 3} {
				withWorkers(w, func() {
					got := Full(999, m, n)
					MatMulInto(got, a, b)
					if !got.Equal(FromSlice(want, m, n)) {
						t.Fatalf("workers=%d: packed Gemm differs from reference", w)
					}
				})
			}
		})
	}
}

func TestGemmTAMatchesReferenceBitwise(t *testing.T) {
	defer SetNumerics(SetNumerics(NumericsExact))
	for _, s := range oracleShapes {
		// Reinterpret the triple: A is k×m here.
		k, m, n := s[1], s[0], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", k, m, n), func(t *testing.T) {
			// A is k×m, B is k×n: build B directly (oraclePair's B
			// would have m rows, not k).
			a, _ := oraclePair(0xB0B, k, m, n)
			b := New(k, n)
			FillNormal(b, NewRNG(0xB0B^0x77), 0, 1)
			want := make([]float32, m*n)
			matMulTARef(want, a.Data(), b.Data(), k, m, n)
			for _, w := range []int{1, 4} {
				withWorkers(w, func() {
					got := Full(999, m, n)
					MatMulTAInto(got, a, b)
					if !got.Equal(FromSlice(want, m, n)) {
						t.Fatalf("workers=%d: packed GemmTA differs from reference", w)
					}
				})
			}
		})
	}
}

func TestGemmTBMatchesReferenceBitwise(t *testing.T) {
	defer SetNumerics(SetNumerics(NumericsExact))
	for _, s := range oracleShapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, bt := oraclePair(0xCAFE, m, k, n)
			_ = bt
			rng := NewRNG(0xCAFE + 1)
			b := New(n, k)
			FillNormal(b, rng, 0, 1)
			want := make([]float32, m*n)
			matMulTBRows(want, a.Data(), b.Data(), k, n, 0, m)
			for _, w := range []int{1, 4} {
				withWorkers(w, func() {
					got := Full(999, m, n)
					MatMulTBInto(got, a, b)
					if !got.Equal(FromSlice(want, m, n)) {
						t.Fatalf("workers=%d: packed GemmTB differs from reference", w)
					}
				})
			}
		})
	}
}

// FuzzGemmOracle drives all three packed kernels against their
// reference oracles on fuzz-chosen shapes and seeds.
func FuzzGemmOracle(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(7), uint16(9))
	f.Add(uint64(2), uint8(5), uint8(4), uint16(300))
	f.Add(uint64(3), uint8(1), uint8(1), uint16(1))
	f.Add(uint64(4), uint8(16), uint8(13), uint16(257))
	f.Fuzz(func(t *testing.T, seed uint64, mRaw, kRaw uint8, nRaw uint16) {
		defer SetNumerics(SetNumerics(NumericsExact))
		m := int(mRaw)%24 + 1
		k := int(kRaw)%24 + 1
		n := int(nRaw)%320 + 1
		a, b := oraclePair(seed, m, k, n)
		want := make([]float32, m*n)
		matMulRows(want, a.Data(), b.Data(), k, n, 0, m)
		got := Full(999, m, n)
		MatMulInto(got, a, b)
		if !got.Equal(FromSlice(want, m, n)) {
			t.Fatalf("Gemm mismatch at %dx%dx%d seed %d", m, k, n, seed)
		}

		// Aᵀ·B with the same buffers reinterpreted: a is (m×k), treat
		// as k'=m rows of m'=k columns.
		wantTA := make([]float32, k*n)
		bTA := New(m, n)
		FillNormal(bTA, NewRNG(seed^0x55), 0, 1)
		matMulTARef(wantTA, a.Data(), bTA.Data(), m, k, n)
		gotTA := Full(999, k, n)
		MatMulTAInto(gotTA, a, bTA)
		if !gotTA.Equal(FromSlice(wantTA, k, n)) {
			t.Fatalf("GemmTA mismatch at k=%d m=%d n=%d seed %d", m, k, n, seed)
		}

		bTB := New(n, k)
		FillNormal(bTB, NewRNG(seed^0xAA), 0, 1)
		wantTB := make([]float32, m*n)
		matMulTBRows(wantTB, a.Data(), bTB.Data(), k, n, 0, m)
		gotTB := Full(999, m, n)
		MatMulTBInto(gotTB, a, bTB)
		if !gotTB.Equal(FromSlice(wantTB, m, n)) {
			t.Fatalf("GemmTB mismatch at %dx%dx%d seed %d", m, k, n, seed)
		}
	})
}

func TestMatVecIntoMatchesMatVec(t *testing.T) {
	rng := NewRNG(7)
	a := New(9, 13)
	FillNormal(a, rng, 0, 1)
	x := make([]float32, 13)
	for i := range x {
		x[i] = float32(i) - 6
	}
	want := MatVec(a, x)
	dst := make([]float32, 9)
	got := MatVecInto(dst, a, x)
	if &got[0] != &dst[0] {
		t.Fatalf("MatVecInto did not return the caller's destination")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MatVecInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStreamSeedMatchesStream(t *testing.T) {
	root := NewRNG(42)
	if got, want := StreamSeed(42, "shuffle"), root.Stream("shuffle").Seed(); got != want {
		t.Fatalf("StreamSeed = %d, want %d", got, want)
	}
	if got, want := StreamSeedN(42, "defect-run", 7), root.StreamN("defect-run", 7).Seed(); got != want {
		t.Fatalf("StreamSeedN = %d, want %d", got, want)
	}
	r := NewRNG(1)
	r.Uint64()
	r.Reseed(StreamSeedN(42, "defect-run", 7))
	fresh := root.StreamN("defect-run", 7)
	for i := 0; i < 16; i++ {
		if a, b := r.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("Reseed stream diverges at draw %d: %d vs %d", i, a, b)
		}
	}
}
