package tensor

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand/v2"
)

// RNG is the deterministic random source used everywhere in the
// library. All experiment stochasticity (init, shuffling, fault draws)
// flows through named sub-streams of a single root seed so that runs
// are exactly reproducible.
type RNG struct {
	*rand.Rand
	src  *rand.PCG
	seed uint64
}

// NewRNG returns a PCG-backed RNG for the given seed.
func NewRNG(seed uint64) *RNG {
	src := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{Rand: rand.New(src), src: src, seed: seed}
}

// MarshalState captures the RNG's exact position in its stream: the
// seed it was created with plus the underlying PCG state. A stream
// restored with UnmarshalState produces the same values the original
// would have produced from this point on — the primitive that lets a
// resumed training run replay the identical shuffle and augmentation
// draws an uninterrupted run would see.
func (r *RNG) MarshalState() ([]byte, error) {
	pcg, err := r.src.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(pcg))
	binary.LittleEndian.PutUint64(buf, r.seed)
	copy(buf[8:], pcg)
	return buf, nil
}

// UnmarshalState restores a position captured by MarshalState.
func (r *RNG) UnmarshalState(b []byte) error {
	if len(b) < 8 {
		return errors.New("tensor: RNG state too short")
	}
	if err := r.src.UnmarshalBinary(b[8:]); err != nil {
		return err
	}
	r.seed = binary.LittleEndian.Uint64(b)
	return nil
}

// Seed returns the seed the RNG was created with.
func (r *RNG) Seed() uint64 { return r.seed }

// Reseed resets the RNG in place to the stream NewRNG(seed) would
// produce, without allocating. Hot loops that draw a fresh positional
// stream per iteration (fault.Injector.InjectRun) reuse one RNG this
// way instead of constructing a new one per run.
func (r *RNG) Reseed(seed uint64) {
	r.src.Seed(seed, seed^0x9e3779b97f4a7c15)
	r.seed = seed
}

// fnv64a is an inline FNV-1a hash of s — hash/fnv forces the input
// through an io.Writer interface, which allocates; this does not.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// StreamSeed returns the seed of the child stream (root, name) — the
// seed Stream derives, exposed so callers can Reseed a cached RNG onto
// the stream without allocating.
func StreamSeed(root uint64, name string) uint64 {
	return root ^ fnv64a(name)
}

// StreamSeedN returns the seed of the indexed child stream
// (root, name, n), matching StreamN.
func StreamSeedN(root uint64, name string, n int) uint64 {
	child := root ^ fnv64a(name)
	return child*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
}

// Stream derives an independent child RNG named by a string. Two
// streams with different names are statistically independent; the same
// (seed, name) pair always yields the same stream.
func (r *RNG) Stream(name string) *RNG {
	return NewRNG(StreamSeed(r.seed, name))
}

// StreamN derives an independent child RNG named by a string and an
// index, for per-run / per-epoch sub-streams.
func (r *RNG) StreamN(name string, n int) *RNG {
	return NewRNG(StreamSeedN(r.seed, name, n))
}

// Normal returns a normally distributed float32 with the given mean and
// standard deviation.
func (r *RNG) Normal(mean, std float64) float32 {
	return float32(mean + std*r.NormFloat64())
}

// FillNormal fills t with N(mean, std²) samples.
func FillNormal(t *Tensor, r *RNG, mean, std float64) {
	for i := range t.data {
		t.data[i] = r.Normal(mean, std)
	}
}

// FillUniform fills t with samples from U[lo, hi).
func FillUniform(t *Tensor, r *RNG, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// InitHe fills t with Kaiming-He normal initialization for a layer with
// the given fan-in, the standard choice for ReLU networks.
func InitHe(t *Tensor, r *RNG, fanIn int) {
	if fanIn <= 0 {
		panic("tensor: InitHe requires positive fan-in")
	}
	FillNormal(t, r, 0, math.Sqrt(2/float64(fanIn)))
}

// InitXavier fills t with Glorot-uniform initialization.
func InitXavier(t *Tensor, r *RNG, fanIn, fanOut int) {
	if fanIn <= 0 || fanOut <= 0 {
		panic("tensor: InitXavier requires positive fans")
	}
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	FillUniform(t, r, -limit, limit)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.Rand.Perm(n) }
