package tensor

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// RNG is the deterministic random source used everywhere in the
// library. All experiment stochasticity (init, shuffling, fault draws)
// flows through named sub-streams of a single root seed so that runs
// are exactly reproducible.
type RNG struct {
	*rand.Rand
	src  *rand.PCG
	seed uint64
}

// NewRNG returns a PCG-backed RNG for the given seed.
func NewRNG(seed uint64) *RNG {
	src := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{Rand: rand.New(src), src: src, seed: seed}
}

// MarshalState captures the RNG's exact position in its stream: the
// seed it was created with plus the underlying PCG state. A stream
// restored with UnmarshalState produces the same values the original
// would have produced from this point on — the primitive that lets a
// resumed training run replay the identical shuffle and augmentation
// draws an uninterrupted run would see.
func (r *RNG) MarshalState() ([]byte, error) {
	pcg, err := r.src.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(pcg))
	binary.LittleEndian.PutUint64(buf, r.seed)
	copy(buf[8:], pcg)
	return buf, nil
}

// UnmarshalState restores a position captured by MarshalState.
func (r *RNG) UnmarshalState(b []byte) error {
	if len(b) < 8 {
		return errors.New("tensor: RNG state too short")
	}
	if err := r.src.UnmarshalBinary(b[8:]); err != nil {
		return err
	}
	r.seed = binary.LittleEndian.Uint64(b)
	return nil
}

// Seed returns the seed the RNG was created with.
func (r *RNG) Seed() uint64 { return r.seed }

// Stream derives an independent child RNG named by a string. Two
// streams with different names are statistically independent; the same
// (seed, name) pair always yields the same stream.
func (r *RNG) Stream(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return NewRNG(r.seed ^ h.Sum64())
}

// StreamN derives an independent child RNG named by a string and an
// index, for per-run / per-epoch sub-streams.
func (r *RNG) StreamN(name string, n int) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	child := r.seed ^ h.Sum64()
	return NewRNG(child*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb)
}

// Normal returns a normally distributed float32 with the given mean and
// standard deviation.
func (r *RNG) Normal(mean, std float64) float32 {
	return float32(mean + std*r.NormFloat64())
}

// FillNormal fills t with N(mean, std²) samples.
func FillNormal(t *Tensor, r *RNG, mean, std float64) {
	for i := range t.data {
		t.data[i] = r.Normal(mean, std)
	}
}

// FillUniform fills t with samples from U[lo, hi).
func FillUniform(t *Tensor, r *RNG, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// InitHe fills t with Kaiming-He normal initialization for a layer with
// the given fan-in, the standard choice for ReLU networks.
func InitHe(t *Tensor, r *RNG, fanIn int) {
	if fanIn <= 0 {
		panic("tensor: InitHe requires positive fan-in")
	}
	FillNormal(t, r, 0, math.Sqrt(2/float64(fanIn)))
}

// InitXavier fills t with Glorot-uniform initialization.
func InitXavier(t *Tensor, r *RNG, fanIn, fanOut int) {
	if fanIn <= 0 || fanOut <= 0 {
		panic("tensor: InitXavier requires positive fans")
	}
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	FillUniform(t, r, -limit, limit)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.Rand.Perm(n) }
