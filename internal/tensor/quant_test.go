package tensor

import (
	"fmt"
	"math"
	"testing"
)

// Int8 kernel pinning. The integer kernels carry a stronger contract
// than the float fast tier: because int32 accumulation is exact and
// associative, the AVX2 variant must equal the scalar reference bit
// for bit, at every shape and worker count — no ULP budget anywhere.

// randS8 returns n int8 values spanning the full quantized range,
// deterministically from seed.
func randS8(seed uint64, n int) []int8 {
	r := NewRNG(seed)
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(int32(r.Uint64()%255) - QuantClamp)
	}
	return out
}

func TestQuantizeLinearRoundTrip(t *testing.T) {
	src := []float32{0, 1, -1, 0.5, -0.5, 3.14159, -2.71828, 100, -100}
	maxabs := MaxAbs(src)
	if maxabs != 100 {
		t.Fatalf("MaxAbs = %v, want 100", maxabs)
	}
	scale := ScaleFor(maxabs)
	q := make([]int8, len(src))
	QuantizeLinear(q, src, scale)
	back := make([]float32, len(src))
	Dequantize(back, q, scale)
	for i, v := range src {
		if diff := math.Abs(float64(back[i] - v)); diff > float64(scale)/2+1e-6 {
			t.Fatalf("element %d: %v round-trips to %v (scale %v)", i, v, back[i], scale)
		}
	}
	// Symmetry: +x and -x map to ±q.
	qPos, qNeg := make([]int8, 1), make([]int8, 1)
	QuantizeLinear(qPos, []float32{37.5}, scale)
	QuantizeLinear(qNeg, []float32{-37.5}, scale)
	if qPos[0] != -qNeg[0] {
		t.Fatalf("asymmetric quantization: %d vs %d", qPos[0], qNeg[0])
	}
	// Saturation clamps instead of wrapping.
	QuantizeLinear(qPos, []float32{1e9}, scale)
	QuantizeLinear(qNeg, []float32{-1e9}, scale)
	if qPos[0] != QuantClamp || qNeg[0] != -QuantClamp {
		t.Fatalf("clamp failed: %d, %d", qPos[0], qNeg[0])
	}
}

func TestScaleForDegenerate(t *testing.T) {
	for _, m := range []float32{0, -1, float32(math.NaN()), float32(math.Inf(1))} {
		if s := ScaleFor(m); s != 1 {
			t.Fatalf("ScaleFor(%v) = %v, want 1", m, s)
		}
	}
	q := make([]int8, 3)
	QuantizeLinear(q, []float32{0, 0, 0}, ScaleFor(0))
	for _, v := range q {
		if v != 0 {
			t.Fatal("all-zero tensor must quantize to all-zero bytes")
		}
	}
}

func TestQuantizeRowsPerRowScales(t *testing.T) {
	rows, cols := 4, 9
	src := make([]float32, rows*cols)
	r := NewRNG(11)
	for i := range src {
		src[i] = float32(r.NormFloat64()) * float32(1+i/cols) // growing magnitude per row
	}
	q := make([]int8, rows*cols)
	scales := make([]float32, rows)
	QuantizeRows(q, scales, src, rows, cols)
	for rI := 0; rI < rows; rI++ {
		row := src[rI*cols : (rI+1)*cols]
		if want := ScaleFor(MaxAbs(row)); scales[rI] != want {
			t.Fatalf("row %d scale %v, want %v", rI, scales[rI], want)
		}
		// The row max must hit ±QuantClamp (symmetric full-range use).
		var peak int8
		for _, v := range q[rI*cols : (rI+1)*cols] {
			if v > peak {
				peak = v
			}
			if -v > peak {
				peak = -v
			}
		}
		if peak != QuantClamp {
			t.Fatalf("row %d peak |q| = %d, want %d", rI, peak, QuantClamp)
		}
	}
}

// TestDotS8FastMatchesScalar pins the AVX2 dot kernels bit-identical to
// the scalar reference across lengths that exercise the 32-, 16- and
// tail paths.
func TestDotS8FastMatchesScalar(t *testing.T) {
	requireFast(t)
	for _, k := range []int{1, 3, 15, 16, 17, 31, 32, 33, 48, 64, 100, 255, 1024, 1031} {
		a := randS8(uint64(k)*13+1, k)
		b0 := randS8(uint64(k)*13+2, k)
		b1 := randS8(uint64(k)*13+3, k)
		b2 := randS8(uint64(k)*13+4, k)
		b3 := randS8(uint64(k)*13+5, k)
		want := dotS8Ref(a, b0)
		if got := fastDotS8(a, b0); got != want {
			t.Fatalf("k=%d: fastDotS8 = %d, scalar = %d", k, got, want)
		}
		w0, w1, w2, w3 := dotS8Ref(a, b0), dotS8Ref(a, b1), dotS8Ref(a, b2), dotS8Ref(a, b3)
		g0, g1, g2, g3 := fastDot4S8(a, b0, b1, b2, b3)
		if g0 != w0 || g1 != w1 || g2 != w2 || g3 != w3 {
			t.Fatalf("k=%d: fastDot4S8 = %d,%d,%d,%d want %d,%d,%d,%d", k, g0, g1, g2, g3, w0, w1, w2, w3)
		}
	}
}

// TestDotS8ExtremeValues drives the kernels at the saturation corners
// where an int16 or pair-sum overflow bug would surface.
func TestDotS8ExtremeValues(t *testing.T) {
	k := 1024
	a, b := make([]int8, k), make([]int8, k)
	for i := range a {
		a[i], b[i] = -QuantClamp, -QuantClamp
	}
	want := int32(k) * QuantClamp * QuantClamp
	if got := DotS8(a, b); got != want {
		t.Fatalf("all -127 dot: %d, want %d", got, want)
	}
	if FastSupported() {
		if got := fastDotS8(a, b); got != want {
			t.Fatalf("fast all -127 dot: %d, want %d", got, want)
		}
	}
	for i := range b {
		b[i] = QuantClamp
	}
	if got := DotS8(a, b); got != -want {
		t.Fatalf("mixed-sign dot: %d, want %d", got, -want)
	}
}

func TestGemmS8TBMatchesOracleBothTiers(t *testing.T) {
	shapes := [][3]int{{1, 1, 1}, {3, 7, 5}, {8, 16, 8}, {5, 27, 33}, {17, 48, 65}, {33, 144, 40}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a := randS8(uint64(m*k*n)+1, m*k)
			b := randS8(uint64(m*k*n)+2, n*k)
			want := make([]int32, m*n)
			gemmS8TBRef(want, a, b, m, k, n)

			check := func(name string) {
				got := make([]int32, m*n)
				GemmS8TB(got, a, b, m, k, n)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: element %d = %d, want %d", name, i, got[i], want[i])
					}
				}
			}
			runTier(NumericsExact, func() { check("exact") })
			if FastSupported() {
				runTier(NumericsFast, func() { check("fast") })
			}
		})
	}
}

// TestGemmS8TBWorkerInvariance: the int8 GEMM must be bit-identical at
// every worker count, on both tiers.
func TestGemmS8TBWorkerInvariance(t *testing.T) {
	m, k, n := 33, 64, 129 // crosses matMulShardFlops
	a := randS8(0xABCD, m*k)
	b := randS8(0xEF01, n*k)
	tiers := []Numerics{NumericsExact}
	if FastSupported() {
		tiers = append(tiers, NumericsFast)
	}
	for _, tier := range tiers {
		runTier(tier, func() {
			var ref []int32
			for _, w := range []int{1, 2, 4} {
				got := make([]int32, m*n)
				withWorkers(w, func() { GemmS8TB(got, a, b, m, k, n) })
				if ref == nil {
					ref = got
					continue
				}
				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("tier %v: GemmS8TB differs between workers=1 and workers=%d at %d", tier, w, i)
					}
				}
			}
		})
	}
}

func TestGemvS8MatchesGemm(t *testing.T) {
	m, k := 13, 37
	a := randS8(0x6E4, m*k)
	x := randS8(0x6E5, k)
	want := make([]int32, m)
	gemmS8TBRef(want, a, x, m, k, 1)
	got := make([]int32, m)
	GemvS8(got, a, x, m, k)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GemvS8 element %d = %d, want %d", i, got[i], want[i])
		}
	}
	if FastSupported() {
		runTier(NumericsFast, func() {
			GemvS8(got, a, x, m, k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fast GemvS8 element %d = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestIm2RowS8MatchesNaiveGather pins the patch-major int8 gather
// against a direct per-position receptive-field walk, including the
// zero-padding bytes.
func TestIm2RowS8MatchesNaiveGather(t *testing.T) {
	c, h, w := 3, 7, 6
	kh, kw, stride, pad := 3, 3, 2, 1
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	k := c * kh * kw
	src := randS8(77, c*h*w)
	dst := make([]int8, outH*outW*k)
	Im2RowS8(dst, src, c, h, w, kh, kw, stride, pad, outH, outW)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := dst[(oy*outW+ox)*k : (oy*outW+ox+1)*k]
			d := 0
			for ci := 0; ci < c; ci++ {
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						iy, ix := oy*stride-pad+ky, ox*stride-pad+kx
						var want int8
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							want = src[ci*h*w+iy*w+ix]
						}
						if row[d] != want {
							t.Fatalf("patch (%d,%d) element %d = %d, want %d", oy, ox, d, row[d], want)
						}
						d++
					}
				}
			}
		}
	}
}

// FuzzGemmS8TBFastVsScalar: on fuzz-chosen shapes the fast int8 GEMM
// must equal the scalar reference exactly — the integer analogue of
// FuzzGemmFastVsExact, with bit equality instead of a ULP budget.
func FuzzGemmS8TBFastVsScalar(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(7), uint8(9))
	f.Add(uint64(2), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(3), uint8(16), uint8(48), uint8(33))
	f.Add(uint64(4), uint8(23), uint8(255), uint8(64))
	f.Fuzz(func(t *testing.T, seed uint64, mRaw, kRaw, nRaw uint8) {
		m := int(mRaw)%24 + 1
		k := int(kRaw) + 1
		n := int(nRaw)%80 + 1
		a := randS8(seed, m*k)
		b := randS8(seed^0x9E3779B97F4A7C15, n*k)
		want := make([]int32, m*n)
		gemmS8TBRef(want, a, b, m, k, n)
		got := make([]int32, m*n)
		runTier(NumericsExact, func() { GemmS8TB(got, a, b, m, k, n) })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("exact GemmS8TB diverged from reference at %d", i)
			}
		}
		if FastSupported() {
			runTier(NumericsFast, func() { GemmS8TB(got, a, b, m, k, n) })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fast GemmS8TB diverged from scalar reference at %d", i)
				}
			}
		}
	})
}

// BenchmarkGemmS8 benches the int8 GEMM at the linear-layer and
// conv-patch shapes the quantized forward path runs (names match the
// bench-smoke CI pattern).
func BenchmarkGemmS8(b *testing.B) {
	for _, s := range [][3]int{{32, 256, 64}, {1024, 144, 16}} {
		m, k, n := s[0], s[1], s[2]
		a8 := randS8(1, m*k)
		b8 := randS8(2, n*k)
		dst := make([]int32, m*n)
		b.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(b *testing.B) {
			b.SetBytes(int64(m*k + n*k + 4*m*n))
			for i := 0; i < b.N; i++ {
				GemmS8TB(dst, a8, b8, m, k, n)
			}
		})
	}
}

func BenchmarkGemmS8Fast(b *testing.B) {
	if !FastSupported() {
		b.Skip("fast tier unsupported")
	}
	defer SetNumerics(SetNumerics(NumericsFast))
	m, k, n := 1024, 144, 16
	a8 := randS8(1, m*k)
	b8 := randS8(2, n*k)
	dst := make([]int32, m*n)
	b.SetBytes(int64(m*k + n*k + 4*m*n))
	for i := 0; i < b.N; i++ {
		GemmS8TB(dst, a8, b8, m, k, n)
	}
}
