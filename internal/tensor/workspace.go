package tensor

// Workspace is a small slot-indexed arena of reusable tensors. Layers
// and loops that produce the same-shaped intermediate every iteration
// draw it from a workspace slot instead of allocating: after the first
// call, Get and View are allocation-free as long as the requested size
// fits the slot's current capacity.
//
// A Workspace is NOT safe for concurrent use. The intended ownership is
// one workspace per layer (or per cloned network, per goroutine): the
// parallel evaluation protocol in internal/core gives every worker its
// own deep clone, so workspaces are never shared across goroutines.
//
// A tensor returned by Get or View remains valid only until the next
// Get/View on the same slot; callers that retain a result across
// iterations must Clone it. By convention a given slot is used either
// always through Get or always through View — mixing the two on one
// slot would let Get scribble over the foreign memory a View aliased.
type Workspace struct {
	slots []*Tensor
}

// Get returns the slot's tensor resized to shape, reusing its storage
// when the capacity suffices. The contents are unspecified — callers
// must overwrite every element or use GetZeroed.
func (w *Workspace) Get(slot int, shape ...int) *Tensor {
	t := w.slot(slot)
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in Workspace.Get")
		}
		n *= d
	}
	if cap(t.data) < n {
		t.data = make([]float32, n)
	} else {
		t.data = t.data[:n]
	}
	t.setShape(shape)
	return t
}

// GetZeroed is Get with every element set to zero.
func (w *Workspace) GetZeroed(slot int, shape ...int) *Tensor {
	t := w.Get(slot, shape...)
	t.Zero()
	return t
}

// View repoints the slot's tensor at data (shared, not copied) with the
// given shape — an allocation-free Reshape/FromSlice for hot paths.
// len(data) must equal the shape's element count.
func (w *Workspace) View(slot int, data []float32, shape ...int) *Tensor {
	t := w.slot(slot)
	t.SetView(data, shape...)
	return t
}

// slot returns the slot's tensor, growing the slot table on first use.
func (w *Workspace) slot(i int) *Tensor {
	for len(w.slots) <= i {
		w.slots = append(w.slots, &Tensor{})
	}
	return w.slots[i]
}
