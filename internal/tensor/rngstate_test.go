package tensor

import "testing"

// A stream restored from MarshalState must continue exactly where the
// original left off — the primitive behind bit-identical training
// resume.
func TestRNGStateRoundTrip(t *testing.T) {
	a := NewRNG(5).Stream("shuffle")
	for i := 0; i < 1000; i++ {
		a.Uint64()
	}
	st, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 16)
	for i := range want {
		want[i] = a.Uint64()
	}
	b := NewRNG(999).Stream("other")
	if err := b.UnmarshalState(st); err != nil {
		t.Fatal(err)
	}
	if b.Seed() != NewRNG(5).Stream("shuffle").Seed() {
		t.Fatal("restored stream must report the original seed")
	}
	for i := range want {
		if got := b.Uint64(); got != want[i] {
			t.Fatalf("draw %d after restore: got %d, want %d", i, got, want[i])
		}
	}
}

func TestRNGStateRejectsGarbage(t *testing.T) {
	r := NewRNG(1)
	if err := r.UnmarshalState(nil); err == nil {
		t.Fatal("nil state must be rejected")
	}
	if err := r.UnmarshalState([]byte{1, 2, 3}); err == nil {
		t.Fatal("short state must be rejected")
	}
	// A rejected unmarshal must leave the stream usable.
	r.Uint64()
}
