package tensor

// ConvOutSize returns the output spatial size of a convolution over an
// input of size in with the given kernel size, stride and symmetric
// zero padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers one CHW image into a (C·kh·kw) × (outH·outW) column
// matrix stored row-major in dst, the standard lowering that turns a
// convolution into a GEMM. src holds C·H·W elements; dst must hold
// C·kh·kw·outH·outW elements. Out-of-bounds taps read as zero
// (zero padding).
func Im2Col(src []float32, c, h, w, kh, kw, stride, pad int, dst []float32) {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	outArea := outH * outW
	if len(src) < c*h*w {
		panic("tensor: Im2Col src too small")
	}
	if len(dst) < c*kh*kw*outArea {
		panic("tensor: Im2Col dst too small")
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				im2colRow(dst[row*outArea:(row+1)*outArea], src,
					chBase, ky, kx, h, w, outH, outW, stride, pad)
				row++
			}
		}
	}
}

// im2colRow fills one row of the column matrix: the (ky, kx) tap of the
// channel whose plane starts at src[chBase], over every output
// position. It is the shared inner body of Im2Col and of the implicit-
// GEMM paths in convgemm.go that generate column rows on the fly, so
// every lowering writes identical values.
func im2colRow(d, src []float32, chBase, ky, kx, h, w, outH, outW, stride, pad int) {
	di := 0
	for oy := 0; oy < outH; oy++ {
		iy := oy*stride - pad + ky
		if iy < 0 || iy >= h {
			for ox := 0; ox < outW; ox++ {
				d[di] = 0
				di++
			}
			continue
		}
		rowBase := chBase + iy*w
		ix := -pad + kx
		for ox := 0; ox < outW; ox++ {
			if ix >= 0 && ix < w {
				d[di] = src[rowBase+ix]
			} else {
				d[di] = 0
			}
			di++
			ix += stride
		}
	}
}

// Col2Im scatters a column matrix produced by Im2Col back into a CHW
// image, accumulating where patches overlap. dst (C·H·W) is expected to
// be pre-zeroed by the caller when a fresh gradient is wanted.
func Col2Im(col []float32, c, h, w, kh, kw, stride, pad int, dst []float32) {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	outArea := outH * outW
	if len(dst) < c*h*w {
		panic("tensor: Col2Im dst too small")
	}
	if len(col) < c*kh*kw*outArea {
		panic("tensor: Col2Im col too small")
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				col2imRow(dst, col[row*outArea:(row+1)*outArea],
					chBase, ky, kx, h, w, outH, outW, stride, pad)
				row++
			}
		}
	}
}

// col2imRow scatter-adds one column-matrix row — the (ky, kx) tap of
// the channel whose plane starts at dst[chBase] — back into the image.
// It is the shared inner body of Col2Im and of the fused col2im
// consumer in convgemm.go, so both scatter paths perform identical
// accumulations in identical order.
func col2imRow(dst, s []float32, chBase, ky, kx, h, w, outH, outW, stride, pad int) {
	si := 0
	for oy := 0; oy < outH; oy++ {
		iy := oy*stride - pad + ky
		if iy < 0 || iy >= h {
			si += outW
			continue
		}
		rowBase := chBase + iy*w
		ix := -pad + kx
		for ox := 0; ox < outW; ox++ {
			if ix >= 0 && ix < w {
				dst[rowBase+ix] += s[si]
			}
			si++
			ix += stride
		}
	}
}
