package tensor

import (
	"fmt"
	"math"
)

// Int8 symmetric quantization and integer GEMM/GEMV kernels.
//
// The quantized representation is symmetric with zero-point 0:
//
//	q = clamp(round(x / scale), -127, 127)     scale = maxabs / 127
//
// so q == 0 exactly when a padded or zero input element is quantized —
// the conv kernels can treat zero padding as the 0 byte with no
// correction term. Products accumulate in int32, which is exact for
// every reachable magnitude (|q| <= 127, so |sum| <= 16129·k; int32
// holds that up to k ≈ 133 000, far past any layer in this repo).
//
// Integer addition is associative, so unlike the float kernels the
// int8 family needs no ULP contract: the AVX2 variant (quant_fast.go)
// is bit-identical to the scalar kernels here, and sharding output
// rows across workers cannot change any output element. The tests in
// quant_test.go pin scalar/AVX2 identity and worker invariance as
// exact equality.

// QuantClamp is the symmetric int8 clamp bound: quantized values live
// in [-QuantClamp, QuantClamp] so +x and -x always map to ±q.
const QuantClamp = 127

// MaxAbs returns the largest absolute value in src (0 for empty src).
// NaNs are ignored; ±Inf saturate to the largest finite magnitude seen
// elsewhere being irrelevant — callers quantizing trained weights and
// calibrated activations never see non-finite values, and ScaleFor
// guards the degenerate all-zero case.
func MaxAbs(src []float32) float32 {
	var m float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// ScaleFor returns the symmetric quantization scale for a tensor whose
// largest magnitude is maxabs. An all-zero tensor gets scale 1 so the
// quantized plane is all zeros and dequantization is exact.
func ScaleFor(maxabs float32) float32 {
	if maxabs <= 0 || math.IsInf(float64(maxabs), 0) || math.IsNaN(float64(maxabs)) {
		return 1
	}
	return maxabs / QuantClamp
}

// QuantizeLinear quantizes src into dst with a single symmetric scale:
// dst[i] = clamp(round(src[i]/scale), ±QuantClamp). The rounding is
// round-half-away-from-zero in float64, which is exact and therefore
// identical on every platform. len(dst) must equal len(src); scale
// must be positive.
func QuantizeLinear(dst []int8, src []float32, scale float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeLinear length mismatch %d vs %d", len(dst), len(src)))
	}
	if !(scale > 0) {
		panic("tensor: QuantizeLinear requires a positive scale")
	}
	inv := 1 / float64(scale)
	for i, v := range src {
		q := math.Round(float64(v) * inv)
		if q > QuantClamp {
			q = QuantClamp
		} else if q < -QuantClamp {
			q = -QuantClamp
		}
		dst[i] = int8(q)
	}
}

// QuantizeRows quantizes a row-major rows×cols matrix with one
// symmetric scale per row (per output channel for conv weights, per
// output neuron for linear weights), writing the scales into scales.
// len(dst) and len(src) must be rows*cols and len(scales) rows.
func QuantizeRows(dst []int8, scales []float32, src []float32, rows, cols int) {
	if len(src) != rows*cols || len(dst) != rows*cols || len(scales) != rows {
		panic(fmt.Sprintf("tensor: QuantizeRows shape mismatch rows=%d cols=%d dst=%d src=%d scales=%d",
			rows, cols, len(dst), len(src), len(scales)))
	}
	for r := 0; r < rows; r++ {
		row := src[r*cols : (r+1)*cols]
		s := ScaleFor(MaxAbs(row))
		scales[r] = s
		QuantizeLinear(dst[r*cols:(r+1)*cols], row, s)
	}
}

// Dequantize expands src back to float32: dst[i] = scale * src[i].
func Dequantize(dst []float32, src []int8, scale float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Dequantize length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, q := range src {
		dst[i] = scale * float32(q)
	}
}

// DotS8 returns the int32 dot product of two equal-length int8
// vectors. On the fast tier it runs the VPMADDWD microkernel over the
// widest multiple of 16 with a scalar tail; the result is bit-identical
// either way.
func DotS8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: DotS8 length mismatch %d vs %d", len(a), len(b)))
	}
	if useFast() {
		return fastDotS8(a, b)
	}
	return dotS8Ref(a, b)
}

// dotS8Ref is the scalar int8 dot kernel (and the oracle the AVX2
// variant must match bit for bit).
func dotS8Ref(a, b []int8) int32 {
	var s int32
	p := 0
	for ; p+4 <= len(a); p += 4 {
		s += int32(a[p])*int32(b[p]) + int32(a[p+1])*int32(b[p+1]) +
			int32(a[p+2])*int32(b[p+2]) + int32(a[p+3])*int32(b[p+3])
	}
	for ; p < len(a); p++ {
		s += int32(a[p]) * int32(b[p])
	}
	return s
}

// GemvS8 computes dst = A·x for an int8 matrix A (m×k, row-major) and
// int8 vector x (k), accumulating in int32. dst must have length m.
func GemvS8(dst []int32, a, x []int8, m, k int) {
	if len(a) != m*k || len(x) != k || len(dst) != m {
		panic(fmt.Sprintf("tensor: GemvS8 shape mismatch m=%d k=%d a=%d x=%d dst=%d",
			m, k, len(a), len(x), len(dst)))
	}
	if useFast() {
		for i := 0; i < m; i++ {
			dst[i] = fastDotS8(a[i*k:(i+1)*k], x)
		}
		return
	}
	for i := 0; i < m; i++ {
		dst[i] = dotS8Ref(a[i*k:(i+1)*k], x)
	}
}

// GemmS8TB computes dst = A·Bᵀ over raw row-major int8 slices with
// int32 accumulators: dst m×n, a m×k, b n×k. This is the one product
// shape the quantized forward path needs — linear layers are
// y = x·Wᵀ directly, and conv becomes the same shape once patches are
// gathered patch-major (Im2RowS8) — so, like the float GemmTB, both
// operands' rows are already contiguous and no packing (and therefore
// no allocation) is needed. Output rows are sharded across Workers()
// goroutines above matMulShardFlops; integer accumulation makes the
// result independent of the shard bounds by construction.
func GemmS8TB(dst []int32, a, b []int8, m, k, n int) {
	if len(a) != m*k || len(b) != n*k || len(dst) != m*n {
		panic(fmt.Sprintf("tensor: GemmS8TB shape mismatch m=%d k=%d n=%d a=%d b=%d dst=%d",
			m, k, n, len(a), len(b), len(dst)))
	}
	if m == 0 || n == 0 {
		return
	}
	fast := useFast()
	if m >= 2 && m*k*n >= matMulShardFlops && Workers() > 1 {
		ParallelFor(m, func(_, lo, hi int) {
			gemmS8TBRows(dst, a, b, k, n, lo, hi, fast)
		})
		return
	}
	gemmS8TBRows(dst, a, b, k, n, 0, m, fast)
}

// gemmS8TBRows computes output rows [lo, hi) of dst = A·Bᵀ in 1×4
// register tiles within B-row blocks of gemmTBJBlock — the gemmTBRows
// schedule with integer dot kernels.
func gemmS8TBRows(od []int32, ad, bd []int8, k, n, lo, hi int, fast bool) {
	for j0 := 0; j0 < n; j0 += gemmTBJBlock {
		jb := n - j0
		if jb > gemmTBJBlock {
			jb = gemmTBJBlock
		}
		for i := lo; i < hi; i++ {
			arow := ad[i*k : i*k+k]
			orow := od[i*n : i*n+n]
			j := j0
			for ; j+4 <= j0+jb; j += 4 {
				b0 := bd[j*k : j*k+k]
				b1 := bd[(j+1)*k : (j+1)*k+k]
				b2 := bd[(j+2)*k : (j+2)*k+k]
				b3 := bd[(j+3)*k : (j+3)*k+k]
				if fast {
					orow[j], orow[j+1], orow[j+2], orow[j+3] = fastDot4S8(arow, b0, b1, b2, b3)
				} else {
					var s0, s1, s2, s3 int32
					p := 0
					for ; p+4 <= k; p += 4 {
						a0, a1, a2, a3 := int32(arow[p]), int32(arow[p+1]), int32(arow[p+2]), int32(arow[p+3])
						s0 += a0*int32(b0[p]) + a1*int32(b0[p+1]) + a2*int32(b0[p+2]) + a3*int32(b0[p+3])
						s1 += a0*int32(b1[p]) + a1*int32(b1[p+1]) + a2*int32(b1[p+2]) + a3*int32(b1[p+3])
						s2 += a0*int32(b2[p]) + a1*int32(b2[p+1]) + a2*int32(b2[p+2]) + a3*int32(b2[p+3])
						s3 += a0*int32(b3[p]) + a1*int32(b3[p+1]) + a2*int32(b3[p+2]) + a3*int32(b3[p+3])
					}
					for ; p < k; p++ {
						av := int32(arow[p])
						s0 += av * int32(b0[p])
						s1 += av * int32(b1[p])
						s2 += av * int32(b2[p])
						s3 += av * int32(b3[p])
					}
					orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
				}
			}
			for ; j < j0+jb; j++ {
				brow := bd[j*k : j*k+k]
				if fast {
					orow[j] = fastDotS8(arow, brow)
				} else {
					orow[j] = dotS8Ref(arow, brow)
				}
			}
		}
	}
}

// gemmS8TBRef is the one-dot-per-element reference kernel — the
// bitwise oracle for GemmS8TB in quant_test.go.
func gemmS8TBRef(od []int32, ad, bd []int8, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			od[i*n+j] = dotS8Ref(ad[i*k:(i+1)*k], bd[j*k:(j+1)*k])
		}
	}
}

// Im2RowS8 gathers conv patches of an int8 input plane patch-major:
// dst row q (length c·kh·kw) is the receptive field of output position
// q = y·outW + x, with out-of-bounds (padding) elements written as the
// exact 0 byte. The resulting outH·outW × c·kh·kw matrix feeds
// GemmS8TB against per-output-channel weight rows. Layout matches the
// float im2colRow's column order transposed: patch-major here because
// the int8 GEMM is the Bᵀ (dot) form.
func Im2RowS8(dst, src []int8, c, h, w, kh, kw, stride, pad, outH, outW int) {
	k := c * kh * kw
	if len(src) != c*h*w || len(dst) != outH*outW*k {
		panic(fmt.Sprintf("tensor: Im2RowS8 shape mismatch c=%d h=%d w=%d dst=%d src=%d",
			c, h, w, len(dst), len(src)))
	}
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := dst[(oy*outW+ox)*k : (oy*outW+ox+1)*k]
			d := 0
			for ci := 0; ci < c; ci++ {
				plane := src[ci*h*w : (ci+1)*h*w]
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for kx := 0; kx < kw; kx++ {
							row[d] = 0
							d++
						}
						continue
					}
					base := iy * w
					ix := ox*stride - pad
					for kx := 0; kx < kw; kx++ {
						if x := ix + kx; x >= 0 && x < w {
							row[d] = plane[base+x]
						} else {
							row[d] = 0
						}
						d++
					}
				}
			}
		}
	}
}
