package tensor

import (
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation used to validate the
// optimized kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			out.Set(float32(s), i, j)
		}
	}
	return out
}

func randMat(r *RNG, rows, cols int) *Tensor {
	t := New(rows, cols)
	FillNormal(t, r, 0, 1)
	return t
}

func TestMatMulSmallExact(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("got %v want %v", c.Data(), want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(1)
	a := randMat(r, 9, 9)
	id := New(9, 9)
	for i := 0; i < 9; i++ {
		id.Set(1, i, i)
	}
	if !MatMul(a, id).AllClose(a, 1e-6) {
		t.Fatal("A·I != A")
	}
	if !MatMul(id, a).AllClose(a, 1e-6) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulAgainstNaiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m := 1 + int(r.Uint64()%17)
		k := 1 + int(r.Uint64()%23)
		n := 1 + int(r.Uint64()%19)
		a, b := randMat(r, m, k), randMat(r, k, n)
		return MatMul(a, b).AllClose(naiveMatMul(a, b), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTAMatchesExplicitTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		k := 1 + int(r.Uint64()%16)
		m := 1 + int(r.Uint64()%16)
		n := 1 + int(r.Uint64()%16)
		a, b := randMat(r, k, m), randMat(r, k, n)
		return MatMulTA(a, b).AllClose(MatMul(Transpose(a), b), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTBMatchesExplicitTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m := 1 + int(r.Uint64()%16)
		k := 1 + int(r.Uint64()%16)
		n := 1 + int(r.Uint64()%16)
		a, b := randMat(r, m, k), randMat(r, n, k)
		return MatMulTB(a, b).AllClose(MatMul(a, Transpose(b)), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulIntoReusesBuffer(t *testing.T) {
	r := NewRNG(2)
	a, b := randMat(r, 5, 7), randMat(r, 7, 3)
	out := Full(99, 5, 3)
	MatMulInto(out, a, b)
	if !out.AllClose(naiveMatMul(a, b), 1e-4) {
		t.Fatal("MatMulInto must overwrite stale contents")
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	r := NewRNG(3)
	a := randMat(r, 6, 4)
	x := randMat(r, 4, 1)
	y := MatVec(a, x.Data())
	want := MatMul(a, x)
	for i, v := range y {
		if d := v - want.At(i, 0); d > 1e-5 || d < -1e-5 {
			t.Fatalf("MatVec mismatch at %d: %v vs %v", i, v, want.At(i, 0))
		}
	}
}

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{8, 3, 1, 0, 6},
		{16, 1, 1, 0, 16},
		{16, 1, 2, 0, 8},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Fatalf("ConvOutSize(%+v)=%d want %d", c, got, c.want)
		}
	}
}

// naiveConv performs a direct convolution of one CHW image for
// validating im2col lowering.
func naiveConv(src []float32, c, h, w int, wgt *Tensor, kh, kw, stride, pad int) []float32 {
	outC := wgt.Dim(0)
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	out := make([]float32, outC*outH*outW)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var s float64
				for ic := 0; ic < c; ic++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy, ix := oy*stride-pad+ky, ox*stride-pad+kx
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							s += float64(src[ic*h*w+iy*w+ix]) *
								float64(wgt.At(oc, ic*kh*kw+ky*kw+kx))
						}
					}
				}
				out[oc*outH*outW+oy*outW+ox] = float32(s)
			}
		}
	}
	return out
}

func TestIm2ColConvMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		c := 1 + int(r.Uint64()%3)
		h := 3 + int(r.Uint64()%6)
		w := 3 + int(r.Uint64()%6)
		stride := 1 + int(r.Uint64()%2)
		pad := int(r.Uint64() % 2)
		kh, kw := 3, 3
		outH := ConvOutSize(h, kh, stride, pad)
		outW := ConvOutSize(w, kw, stride, pad)
		if outH <= 0 || outW <= 0 {
			return true
		}
		src := make([]float32, c*h*w)
		for i := range src {
			src[i] = r.Normal(0, 1)
		}
		outC := 1 + int(r.Uint64()%4)
		wgt := randMat(r, outC, c*kh*kw)
		col := New(c*kh*kw, outH*outW)
		Im2Col(src, c, h, w, kh, kw, stride, pad, col.Data())
		got := MatMul(wgt, col)
		want := naiveConv(src, c, h, w, wgt, kh, kw, stride, pad)
		for i, v := range got.Data() {
			if d := float64(v - want[i]); d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImIsIm2ColAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining property of the
	// adjoint pair used by conv backward.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		c, h, w := 2, 6, 5
		kh, kw, stride, pad := 3, 3, 1, 1
		outH := ConvOutSize(h, kh, stride, pad)
		outW := ConvOutSize(w, kw, stride, pad)
		x := make([]float32, c*h*w)
		for i := range x {
			x[i] = r.Normal(0, 1)
		}
		y := make([]float32, c*kh*kw*outH*outW)
		for i := range y {
			y[i] = r.Normal(0, 1)
		}
		colX := make([]float32, len(y))
		Im2Col(x, c, h, w, kh, kw, stride, pad, colX)
		backY := make([]float32, len(x))
		Col2Im(y, c, h, w, kh, kw, stride, pad, backY)
		var lhs, rhs float64
		for i := range y {
			lhs += float64(colX[i]) * float64(y[i])
		}
		for i := range x {
			rhs += float64(x[i]) * float64(backY[i])
		}
		return lhs-rhs < 1e-2 && rhs-lhs < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := NewRNG(1)
	a, bb := randMat(r, 64, 64), randMat(r, 64, 64)
	out := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, a, bb)
	}
}

func BenchmarkIm2Col32(b *testing.B) {
	r := NewRNG(1)
	c, h, w := 16, 32, 32
	src := make([]float32, c*h*w)
	for i := range src {
		src[i] = r.Normal(0, 1)
	}
	dst := make([]float32, c*9*h*w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(src, c, h, w, 3, 3, 1, 1, dst)
	}
}

// benchGemm256 times one of the packed kernels on the 256^3 reference
// shape with a pinned worker count, so serial kernel speed is measured
// apart from sharding. The numerics tier is pinned to exact so the
// scalar kernels are what is measured regardless of FTPIM_NUMERICS.
func benchGemm256(b *testing.B, workers int, run func(out, x, y *Tensor)) {
	benchGemm256Tier(b, workers, NumericsExact, run)
}

func benchGemm256Tier(b *testing.B, workers int, tier Numerics, run func(out, x, y *Tensor)) {
	if tier == NumericsFast && !FastSupported() {
		b.Skip("fast tier unsupported on this host/build")
	}
	old := SetWorkers(workers)
	defer SetWorkers(old)
	oldTier := SetNumerics(tier)
	defer SetNumerics(oldTier)
	r := NewRNG(11)
	x, y := randMat(r, 256, 256), randMat(r, 256, 256)
	out := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(out, x, y)
	}
}

func BenchmarkGemm256Serial(b *testing.B) {
	benchGemm256(b, 1, func(out, x, y *Tensor) { MatMulInto(out, x, y) })
}

func BenchmarkGemmTA256Serial(b *testing.B) {
	benchGemm256(b, 1, func(out, x, y *Tensor) { MatMulTAInto(out, x, y) })
}

func BenchmarkGemmTB256Serial(b *testing.B) {
	benchGemm256(b, 1, func(out, x, y *Tensor) { MatMulTBInto(out, x, y) })
}

// The Fast variants time the AVX2+FMA fast-tier kernels on the same
// shape (skipped when the host or build lacks them), so the
// fast-vs-exact speedup in results/BENCH_gemm.json can be re-measured
// in one binary.
func BenchmarkGemmFast256Serial(b *testing.B) {
	benchGemm256Tier(b, 1, NumericsFast, func(out, x, y *Tensor) { MatMulInto(out, x, y) })
}

func BenchmarkGemmTAFast256Serial(b *testing.B) {
	benchGemm256Tier(b, 1, NumericsFast, func(out, x, y *Tensor) { MatMulTAInto(out, x, y) })
}

func BenchmarkGemmTBFast256Serial(b *testing.B) {
	benchGemm256Tier(b, 1, NumericsFast, func(out, x, y *Tensor) { MatMulTBInto(out, x, y) })
}

// The Ref variants time the pre-blocking reference kernels (the old
// implementations, kept as bitwise oracles) on the same shape, so the
// packed kernels' speedup can be re-measured in one binary.
func BenchmarkGemmRef256Serial(b *testing.B) {
	benchGemm256(b, 1, func(out, x, y *Tensor) { matMulRows(out.Data(), x.Data(), y.Data(), 256, 256, 0, 256) })
}

func BenchmarkGemmTARef256Serial(b *testing.B) {
	benchGemm256(b, 1, func(out, x, y *Tensor) { matMulTARef(out.Data(), x.Data(), y.Data(), 256, 256, 256) })
}

func BenchmarkGemmTBRef256Serial(b *testing.B) {
	benchGemm256(b, 1, func(out, x, y *Tensor) { matMulTBRows(out.Data(), x.Data(), y.Data(), 256, 256, 0, 256) })
}
