package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernels in this package shard by output rows above a size
// threshold. Sharding is bit-deterministic: every output element is
// produced by exactly one goroutine running the same serial reference
// kernel over its row range, so the floating-point accumulation order
// per element is identical at any worker count.

// workerCount holds the configured kernel worker budget. 0 means "use
// runtime.NumCPU()". Accessed atomically so tests and the CLI can
// adjust it while kernels run on other goroutines.
var workerCount atomic.Int64

// SetWorkers sets the maximum number of goroutines the sharded kernels
// may use. n <= 0 restores the default (runtime.NumCPU()); n == 1
// forces the serial reference path everywhere. The previous setting is
// returned so callers can restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerCount.Swap(int64(n)))
}

// Workers reports the effective kernel worker budget.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ParallelFor splits [0, n) into at most Workers() contiguous chunks
// and runs body concurrently on each, blocking until all complete.
// See ParallelForN for the contract.
func ParallelFor(n int, body func(shard, lo, hi int)) {
	ParallelForN(Workers(), n, body)
}

// ParallelForN splits [0, n) into at most w contiguous chunks and runs
// body(shard, lo, hi) on each, blocking until every chunk is done.
// Shard indices are dense, start at 0, and stay below min(w, n), so a
// caller can preallocate min(w, n) scratch buffers and index them by
// shard without locking. With w <= 1 (or n <= 1) body runs once on the
// calling goroutine — the serial path spawns nothing.
func ParallelForN(w, n int, body func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		body(0, 0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for shard, lo := 0, 0; lo < n; shard, lo = shard+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			body(shard, lo, hi)
		}(shard, lo, hi)
	}
	wg.Wait()
}
