//go:build amd64 && !noasm

package tensor

// Fast-tier int8 dot kernels. Unlike the float microkernels these are
// bit-identical to the scalar tier, not merely ULP-pinned: VPMADDWD
// pair sums and the lane-wise VPADDD reduction reorder integer
// additions, and integer addition is associative, so the result equals
// the scalar kernel's for every input. The microkernels require n to
// be a positive multiple of 16; Go callers finish the scalar tail.

//go:noescape
func dotS8Asm(a, b *int8, n int) int32

//go:noescape
func dot4S8Asm(a, b0, b1, b2, b3 *int8, n int, out *int32)

// fastDotS8 returns the int32 dot product of a and b (same length):
// microkernel over the widest multiple of 16, scalar tail in Go.
func fastDotS8(a, b []int8) int32 {
	k := len(a)
	w := k &^ 15
	var s int32
	if w > 0 {
		s = dotS8Asm(&a[0], &b[0], w)
	}
	for p := w; p < k; p++ {
		s += int32(a[p]) * int32(b[p])
	}
	return s
}

// fastDot4S8 returns the four dot products of a against b0..b3 (all
// len(a) long), sharing each sign-extended a vector across the four
// rows.
func fastDot4S8(a, b0, b1, b2, b3 []int8) (s0, s1, s2, s3 int32) {
	k := len(a)
	w := k &^ 15
	if w > 0 {
		var out [4]int32
		dot4S8Asm(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], w, &out[0])
		s0, s1, s2, s3 = out[0], out[1], out[2], out[3]
	}
	for p := w; p < k; p++ {
		av := int32(a[p])
		s0 += av * int32(b0[p])
		s1 += av * int32(b1[p])
		s2 += av * int32(b2[p])
		s3 += av * int32(b3[p])
	}
	return
}
