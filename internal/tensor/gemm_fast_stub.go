//go:build !amd64 || noasm

package tensor

// Pure-Go builds (non-amd64, or the noasm tag) have no fast kernels:
// fastSupported is constant false, useFast() never returns true, and
// these stubs exist only to satisfy the dispatch call sites. They are
// unreachable.

var fastSupported = false

var cpuFeatures = ""

func unreachableFast() {
	panic("tensor: fast kernels called in a build without them")
}

func fastGemm(dst, a, b []float32, m, k, n int)         { unreachableFast() }
func fastGemmTA(dst, a, b []float32, k, m, n int)       { unreachableFast() }
func fastGemmTASerial(dst, a, b []float32, k, m, n int) { unreachableFast() }
func fastGemmTB(dst, a, b []float32, m, k, n int)       { unreachableFast() }

func fastTile1(orow, arow, pb []float32, jw, bs, base int) { unreachableFast() }

func convSampleDWAxpy(chunk, srci, dyi, patches []float32, c, h, w, outC, kh, kw, stride, pad, outH, outW int, fast1x1 bool) {
	unreachableFast()
}

func fastDot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	unreachableFast()
	return
}

func fastDot(a, b []float32) float32 {
	unreachableFast()
	return 0
}
