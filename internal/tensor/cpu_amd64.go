//go:build amd64 && !noasm

package tensor

// cpuid executes the CPUID instruction for the given leaf/subleaf.
// Implemented in cpu_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (extended control register 0), which tells us
// whether the OS saves/restores YMM state on context switch.
// Implemented in cpu_amd64.s. Only valid when CPUID reports OSXSAVE.
func xgetbv() (eax, edx uint32)

var fastSupported, cpuFeatures = detectFast()

// detectFast probes CPUID for the features the fast kernels need:
// AVX2 and FMA for the instructions themselves, plus OSXSAVE and
// XCR0[2:1]=11b so the OS actually preserves the YMM registers the
// kernels live in. The feature string reports whatever was found even
// when the combination is insufficient, so logs from a partial host
// explain *why* the fast tier fell back.
func detectFast() (bool, string) {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return false, ""
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	hasFMA := c1&fmaBit != 0
	hasAVX := c1&avxBit != 0
	osYMM := false
	if c1&osxsaveBit != 0 {
		lo, _ := xgetbv()
		osYMM = lo&0x6 == 0x6 // XMM and YMM state enabled by the OS
	}
	hasAVX2 := false
	if maxLeaf >= 7 {
		_, b7, _, _ := cpuid(7, 0)
		hasAVX2 = b7&(1<<5) != 0
	}

	feats := ""
	add := func(name string, ok bool) {
		if !ok {
			return
		}
		if feats != "" {
			feats += ","
		}
		feats += name
	}
	add("avx", hasAVX && osYMM)
	add("avx2", hasAVX2 && osYMM)
	add("fma", hasFMA)

	return hasAVX && hasAVX2 && hasFMA && osYMM, feats
}
