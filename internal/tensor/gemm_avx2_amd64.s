//go:build !noasm

#include "textflag.h"

// AVX2+FMA microkernels for the fast numerics tier (see numerics.go).
//
// All kernels require n to be a positive multiple of 8; Go callers
// handle the scalar tail. VFMADD231PS fuses the multiply and add with
// a single rounding and the reductions keep 8 lanes (or several
// accumulator registers), so results differ from the scalar exact
// tier in the last ULPs — that is the fast tier's documented
// contract. For a fixed length n the instruction sequence is fixed,
// so the fast tier is still bit-deterministic call to call.
//
// Go assembler operand order: VFMADD231PS src2, src1, dst computes
// dst += src1 * src2.

// func axpy4FMA(dst, b0, b1, b2, b3 *float32, a0, a1, a2, a3 float32, n int)
// dst[x] += a0*b0[x] + a1*b1[x] + a2*b2[x] + a3*b3[x] for x in [0, n).
TEXT ·axpy4FMA(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	VBROADCASTSS a0+40(FP), Y0
	VBROADCASTSS a1+44(FP), Y1
	VBROADCASTSS a2+48(FP), Y2
	VBROADCASTSS a3+52(FP), Y3
	MOVQ n+56(FP), CX
	XORQ AX, AX

axpy4_loop16:
	CMPQ CX, $16
	JLT  axpy4_loop8
	VMOVUPS (DI)(AX*4), Y4
	VMOVUPS 32(DI)(AX*4), Y5
	VFMADD231PS (SI)(AX*4), Y0, Y4
	VFMADD231PS 32(SI)(AX*4), Y0, Y5
	VFMADD231PS (R8)(AX*4), Y1, Y4
	VFMADD231PS 32(R8)(AX*4), Y1, Y5
	VFMADD231PS (R9)(AX*4), Y2, Y4
	VFMADD231PS 32(R9)(AX*4), Y2, Y5
	VFMADD231PS (R10)(AX*4), Y3, Y4
	VFMADD231PS 32(R10)(AX*4), Y3, Y5
	VMOVUPS Y4, (DI)(AX*4)
	VMOVUPS Y5, 32(DI)(AX*4)
	ADDQ $16, AX
	SUBQ $16, CX
	JMP  axpy4_loop16

axpy4_loop8:
	CMPQ CX, $8
	JLT  axpy4_done
	VMOVUPS (DI)(AX*4), Y4
	VFMADD231PS (SI)(AX*4), Y0, Y4
	VFMADD231PS (R8)(AX*4), Y1, Y4
	VFMADD231PS (R9)(AX*4), Y2, Y4
	VFMADD231PS (R10)(AX*4), Y3, Y4
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ $8, AX
	SUBQ $8, CX
	JMP  axpy4_loop8

axpy4_done:
	VZEROUPPER
	RET

// func axpyFMA(dst, b *float32, a float32, n int)
// dst[x] += a*b[x] for x in [0, n).
TEXT ·axpyFMA(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	VBROADCASTSS a+16(FP), Y0
	MOVQ n+24(FP), CX
	XORQ AX, AX

axpy_loop16:
	CMPQ CX, $16
	JLT  axpy_loop8
	VMOVUPS (DI)(AX*4), Y1
	VMOVUPS 32(DI)(AX*4), Y2
	VFMADD231PS (SI)(AX*4), Y0, Y1
	VFMADD231PS 32(SI)(AX*4), Y0, Y2
	VMOVUPS Y1, (DI)(AX*4)
	VMOVUPS Y2, 32(DI)(AX*4)
	ADDQ $16, AX
	SUBQ $16, CX
	JMP  axpy_loop16

axpy_loop8:
	CMPQ CX, $8
	JLT  axpy_done
	VMOVUPS (DI)(AX*4), Y1
	VFMADD231PS (SI)(AX*4), Y0, Y1
	VMOVUPS Y1, (DI)(AX*4)
	ADDQ $8, AX
	SUBQ $8, CX
	JMP  axpy_loop8

axpy_done:
	VZEROUPPER
	RET

// func dot4FMA(a, b0, b1, b2, b3 *float32, n int, out *float32)
// out[q] = Σ_x a[x]*bq[x] for x in [0, n), q in 0..3.
// Eight YMM accumulators (two per output) hide FMA latency; the pairs
// are combined and horizontally reduced at the end.
TEXT ·dot4FMA(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ out+48(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	XORQ AX, AX

dot4_loop16:
	CMPQ CX, $16
	JLT  dot4_loop8
	VMOVUPS (DI)(AX*4), Y8
	VMOVUPS 32(DI)(AX*4), Y9
	VFMADD231PS (SI)(AX*4), Y8, Y0
	VFMADD231PS 32(SI)(AX*4), Y9, Y4
	VFMADD231PS (R8)(AX*4), Y8, Y1
	VFMADD231PS 32(R8)(AX*4), Y9, Y5
	VFMADD231PS (R9)(AX*4), Y8, Y2
	VFMADD231PS 32(R9)(AX*4), Y9, Y6
	VFMADD231PS (R10)(AX*4), Y8, Y3
	VFMADD231PS 32(R10)(AX*4), Y9, Y7
	ADDQ $16, AX
	SUBQ $16, CX
	JMP  dot4_loop16

dot4_loop8:
	CMPQ CX, $8
	JLT  dot4_reduce
	VMOVUPS (DI)(AX*4), Y8
	VFMADD231PS (SI)(AX*4), Y8, Y0
	VFMADD231PS (R8)(AX*4), Y8, Y1
	VFMADD231PS (R9)(AX*4), Y8, Y2
	VFMADD231PS (R10)(AX*4), Y8, Y3
	ADDQ $8, AX
	SUBQ $8, CX
	JMP  dot4_loop8

dot4_reduce:
	VADDPS Y4, Y0, Y0
	VADDPS Y5, Y1, Y1
	VADDPS Y6, Y2, Y2
	VADDPS Y7, Y3, Y3

	VEXTRACTF128 $1, Y0, X8
	VADDPS X8, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VMOVSS X0, (DX)

	VEXTRACTF128 $1, Y1, X8
	VADDPS X8, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VMOVSS X1, 4(DX)

	VEXTRACTF128 $1, Y2, X8
	VADDPS X8, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VMOVSS X2, 8(DX)

	VEXTRACTF128 $1, Y3, X8
	VADDPS X8, X3, X3
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3
	VMOVSS X3, 12(DX)

	VZEROUPPER
	RET

// func dotFMA(a, b *float32, n int) float32
// Returns Σ_x a[x]*b[x] for x in [0, n), four YMM accumulators.
TEXT ·dotFMA(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX

dot_loop32:
	CMPQ CX, $32
	JLT  dot_loop8
	VMOVUPS (DI)(AX*4), Y4
	VMOVUPS 32(DI)(AX*4), Y5
	VMOVUPS 64(DI)(AX*4), Y6
	VMOVUPS 96(DI)(AX*4), Y7
	VFMADD231PS (SI)(AX*4), Y4, Y0
	VFMADD231PS 32(SI)(AX*4), Y5, Y1
	VFMADD231PS 64(SI)(AX*4), Y6, Y2
	VFMADD231PS 96(SI)(AX*4), Y7, Y3
	ADDQ $32, AX
	SUBQ $32, CX
	JMP  dot_loop32

dot_loop8:
	CMPQ CX, $8
	JLT  dot_reduce
	VMOVUPS (DI)(AX*4), Y4
	VFMADD231PS (SI)(AX*4), Y4, Y0
	ADDQ $8, AX
	SUBQ $8, CX
	JMP  dot_loop8

dot_reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VMOVSS X0, ret+24(FP)
	VZEROUPPER
	RET
