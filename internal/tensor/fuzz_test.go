package tensor

import (
	"bytes"
	"math"
	"testing"
)

// fuzz seed corpus: serialized forms of a few representative tensors.
func serialized(t *Tensor) []byte {
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// bitsEqual compares tensors at the bit level, so NaN payloads (which
// arbitrary fuzz bytes can produce) still round-trip meaningfully.
func bitsEqual(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if math.Float32bits(ad[i]) != math.Float32bits(bd[i]) {
			return false
		}
	}
	return true
}

// FuzzTensorReadFrom feeds arbitrary bytes to the binary decoder: it
// must never panic, and anything it accepts must re-serialize to a
// stable, re-decodable form.
func FuzzTensorReadFrom(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FTT1junk"))
	f.Add(serialized(New()))
	f.Add(serialized(Full(1.5, 3, 4)))
	r := NewRNG(1)
	big := New(5, 2, 3)
	FillNormal(big, r, 0, 2)
	f.Add(serialized(big))

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Tensor
		if _, err := got.ReadFrom(bytes.NewReader(data)); err != nil {
			return // rejected input is fine; panics are not
		}
		b1 := serialized(&got)
		var again Tensor
		if _, err := again.ReadFrom(bytes.NewReader(b1)); err != nil {
			t.Fatalf("re-decode of accepted tensor failed: %v", err)
		}
		if !bitsEqual(&got, &again) {
			t.Fatal("write→read round-trip changed the tensor")
		}
		if b2 := serialized(&again); !bytes.Equal(b1, b2) {
			t.Fatal("serialization is not stable")
		}
	})
}

// FuzzTensorWriteRead builds tensors from fuzzed shapes and payloads
// and checks the binary round-trip preserves every bit, including the
// gob path used by model snapshots.
func FuzzTensorWriteRead(f *testing.F) {
	f.Add(uint8(2), uint8(3), []byte{0, 1, 2, 3})
	f.Add(uint8(0), uint8(0), []byte{})
	f.Add(uint8(1), uint8(7), []byte{255, 255, 255, 255, 0x7f, 0xc0, 0, 0})

	f.Fuzz(func(t *testing.T, d0, d1 uint8, payload []byte) {
		m, n := int(d0%9), int(d1%9)
		tt := New(m, n)
		d := tt.Data()
		for i := range d {
			var bits uint32
			for b := 0; b < 4; b++ {
				if idx := i*4 + b; idx < len(payload) {
					bits |= uint32(payload[idx]) << (8 * b)
				}
			}
			d[i] = math.Float32frombits(bits)
		}
		var got Tensor
		if _, err := got.ReadFrom(bytes.NewReader(serialized(tt))); err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if !bitsEqual(tt, &got) {
			t.Fatal("binary round-trip lost bits")
		}
		gb, err := tt.GobEncode()
		if err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		var gobGot Tensor
		if err := gobGot.GobDecode(gb); err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !bitsEqual(tt, &gobGot) {
			t.Fatal("gob round-trip lost bits")
		}
	})
}
