package tensor

import "fmt"

// MatMul returns A·B for rank-2 tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = A·B, reusing out's storage. out must be
// m×n, A m×k, B k×n. The kernel is an ikj loop with 4-wide manual
// unrolling over the inner dimension, which is the sweet spot for the
// pure-Go single-core regime this library targets.
func MatMulInto(out, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(out.shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v · %v -> %v", a.shape, b.shape, out.shape))
	}
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		orow := od[i*n : (i+1)*n]
		for x := range orow {
			orow[x] = 0
		}
		arow := ad[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := bd[p*n : p*n+n]
			b1 := bd[(p+1)*n : (p+1)*n+n]
			b2 := bd[(p+2)*n : (p+2)*n+n]
			b3 := bd[(p+3)*n : (p+3)*n+n]
			for j := range orow {
				orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : p*n+n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTA computes Aᵀ·B for A (k×m) and B (k×n), yielding m×n.
// Used for weight gradients without materializing the transpose.
func MatMulTA(a, b *Tensor) *Tensor {
	out := New(a.shape[1], b.shape[1])
	MatMulTAInto(out, a, b)
	return out
}

// MatMulTAInto computes out = Aᵀ·B into out (m×n), A (k×m), B (k×n).
func MatMulTAInto(out, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTA shape mismatch %v ᵀ· %v -> %v", a.shape, b.shape, out.shape))
	}
	od := out.data
	for x := range od {
		od[x] = 0
	}
	ad, bd := a.data, b.data
	// out[i][j] += a[p][i] * b[p][j]: iterate p outer so both reads are
	// sequential; accumulate rank-1 updates.
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTB computes A·Bᵀ for A (m×k) and B (n×k), yielding m×n.
// Used for input gradients: dX = dY · Wᵀ.
func MatMulTB(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[0])
	MatMulTBInto(out, a, b)
	return out
}

// MatMulTBInto computes out = A·Bᵀ into out (m×n), A (m×k), B (n×k).
func MatMulTBInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTB shape mismatch %v · %v ᵀ-> %v", a.shape, b.shape, out.shape))
	}
	ad, bd, od := a.data, b.data, out.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			p := 0
			for ; p+4 <= k; p += 4 {
				s += arow[p]*brow[p] + arow[p+1]*brow[p+1] +
					arow[p+2]*brow[p+2] + arow[p+3]*brow[p+3]
			}
			for ; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
}

// MatVec computes y = A·x for A (m×n) and x (n), yielding y (m).
func MatVec(a *Tensor, x []float32) []float32 {
	m, n := a.shape[0], a.shape[1]
	if len(x) != n {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v · vec(%d)", a.shape, len(x)))
	}
	y := make([]float32, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}
