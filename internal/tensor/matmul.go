package tensor

import (
	"fmt"
	"sync"
)

// GEMM kernels.
//
// The three products the training loop needs (A·B, Aᵀ·B, A·Bᵀ) are
// cache-blocked, register-tiled kernels over raw float32 slices, with
// Tensor wrappers that validate shapes. Each entry point dispatches on
// the process-wide numerics tier (numerics.go): the scalar kernels in
// this file are the exact tier; on amd64 hosts with AVX2+FMA the fast
// tier swaps the inner loops for the microkernels in gemm_fast.go,
// trading bit-identity for throughput (ULP-pinned instead). Two
// invariants govern every exact kernel in this file:
//
//  1. Bit-identity. For each output element, the sequence of
//     floating-point operations — including the skip-zero fast paths,
//     which are observable through signed zeros — is exactly the
//     sequence the reference kernels (matMulRows, matMulTARef,
//     matMulTBRows, kept below as test oracles) perform. Blocking and
//     register tiling only reorder work across *different* output
//     elements, never the accumulation order within one, so results
//     are bitwise equal to the reference at any tile size and worker
//     count. The oracle tests in matmul_oracle_test.go pin this.
//
//  2. Zero steady-state allocation. Packing buffers come from a
//     sync.Pool of reusable panels; warm calls allocate nothing.

// MatMul returns A·B for rank-2 tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// matMulShardFlops is the minimum m·k·n product above which the GEMM
// kernels shard output rows across goroutines; below it the goroutine
// fan-out costs more than it saves. Sharding never changes results:
// each output row is computed by the same serial kernel either way.
const matMulShardFlops = 1 << 16

// gemmJTile is the column-panel width of the blocked kernels: B (and
// the output rows) are processed in tiles of at most gemmJTile columns
// so the four panel rows a quad touches stay resident in L1 across the
// register-tiled row passes. When n <= gemmJTile the natural row-major
// layout of B already is the single panel and packing is skipped.
const gemmJTile = 256

// panelBuf is a pooled packing buffer. The pool stores pointers so
// steady-state Get/Put pairs do not allocate.
type panelBuf struct{ f []float32 }

var panelPool = sync.Pool{New: func() any { return new(panelBuf) }}

// getPanel returns a pooled buffer with at least n usable elements.
func getPanel(n int) *panelBuf {
	p := panelPool.Get().(*panelBuf)
	if cap(p.f) < n {
		p.f = make([]float32, n)
	}
	p.f = p.f[:n]
	return p
}

// packB lays B (k×n) out as contiguous column panels of width
// gemmJTile: the tile starting at column j0 occupies pb[j0*k:] with
// row p of the tile at pb[j0*k+p*jw : j0*k+(p+1)*jw] (jw = tile
// width). Packing copies values only — it cannot change results. When
// n <= gemmJTile, B itself already has the panel layout and is
// returned directly with a nil buffer.
func packB(b []float32, k, n int) ([]float32, *panelBuf) {
	if n <= gemmJTile {
		return b, nil
	}
	pb := getPanel(k * n)
	for j0 := 0; j0 < n; j0 += gemmJTile {
		jw := n - j0
		if jw > gemmJTile {
			jw = gemmJTile
		}
		base := j0 * k
		for p := 0; p < k; p++ {
			copy(pb.f[base+p*jw:base+p*jw+jw], b[p*n+j0:p*n+j0+jw])
		}
	}
	return pb.f, pb
}

// MatMulInto computes out = A·B, reusing out's storage. out must be
// m×n, A m×k, B k×n. B is packed into cache-resident column panels
// (pooled, allocation-free when warm) and the output is walked in 2-row
// register tiles; above matMulShardFlops the output rows are sharded
// across Workers() goroutines. Both transformations keep the per-element
// accumulation order of the serial reference kernel, so results are
// bit-identical at any worker count.
func MatMulInto(out, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(out.shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v · %v -> %v", a.shape, b.shape, out.shape))
	}
	Gemm(out.data, a.data, b.data, m, k, n)
}

// Gemm computes dst = A·B over raw row-major slices: dst m×n, a m×k,
// b k×n. It is the allocation-free entry point layers use when the
// operands are sub-slices of larger batch buffers (see nn.Conv2D).
func Gemm(dst, a, b []float32, m, k, n int) {
	if m == 0 || n == 0 {
		return
	}
	if useFast() {
		fastGemm(dst, a, b, m, k, n)
		return
	}
	pb, buf := packB(b, k, n)
	if m >= 2 && m*k*n >= matMulShardFlops && Workers() > 1 {
		ParallelFor(m, func(_, lo, hi int) {
			gemmRows(dst, a, pb, k, n, lo, hi)
		})
	} else {
		gemmRows(dst, a, pb, k, n, 0, m)
	}
	if buf != nil {
		panelPool.Put(buf)
	}
}

// gemmRows computes output rows [lo, hi) of dst = A·B against a packed
// B panel, in 2-row register tiles per column panel.
func gemmRows(od, ad, pb []float32, k, n, lo, hi int) {
	for j0 := 0; j0 < n; j0 += gemmJTile {
		jw := n - j0
		if jw > gemmJTile {
			jw = gemmJTile
		}
		base := j0 * k
		i := lo
		for ; i+2 <= hi; i += 2 {
			gemmTile2(od[i*n+j0:i*n+j0+jw], od[(i+1)*n+j0:(i+1)*n+j0+jw],
				ad[i*k:i*k+k], ad[(i+1)*k:(i+1)*k+k], pb, jw, jw, base)
		}
		for ; i < hi; i++ {
			gemmTile1(od[i*n+j0:i*n+j0+jw], ad[i*k:i*k+k], pb, jw, jw, base)
		}
	}
}

// gemmTile2 computes the jw-wide output segments o0, o1 of two rows
// with coefficient rows a0, a1 (len k each) against a B panel whose
// row p lives at pb[base+p*bs : +jw] (bs = panel row stride; bs == jw
// for packed panels, larger when the panel is a zero-copy view into a
// wider matrix). The two rows share each loaded B quad; every row's
// own update statement and skip-zero check are those of the reference
// kernel, so each output element sees the identical operation
// sequence. Two rows (8 A coefficients + 4 shared B values) is the
// widest tile whose live values fit amd64's 16 vector registers — a
// 4-row tile spills and measures slower than the reference.
func gemmTile2(o0, o1, a0, a1, pb []float32, jw, bs, base int) {
	for x := range o0 {
		o0[x] = 0
	}
	for x := range o1 {
		o1[x] = 0
	}
	k := len(a0)
	p := 0
	for ; p+4 <= k; p += 4 {
		w00, w01, w02, w03 := a0[p], a0[p+1], a0[p+2], a0[p+3]
		w10, w11, w12, w13 := a1[p], a1[p+1], a1[p+2], a1[p+3]
		z0 := w00 == 0 && w01 == 0 && w02 == 0 && w03 == 0
		z1 := w10 == 0 && w11 == 0 && w12 == 0 && w13 == 0
		if z0 && z1 {
			continue
		}
		b0 := pb[base+p*bs : base+p*bs+jw]
		b1 := pb[base+(p+1)*bs : base+(p+1)*bs+jw]
		b2 := pb[base+(p+2)*bs : base+(p+2)*bs+jw]
		b3 := pb[base+(p+3)*bs : base+(p+3)*bs+jw]
		if !z0 && !z1 {
			for x := 0; x < jw; x++ {
				bv0, bv1, bv2, bv3 := b0[x], b1[x], b2[x], b3[x]
				o0[x] += w00*bv0 + w01*bv1 + w02*bv2 + w03*bv3
				o1[x] += w10*bv0 + w11*bv1 + w12*bv2 + w13*bv3
			}
		} else if !z0 {
			// Mixed skip pattern: per-row updates so the skipped row
			// stays untouched, exactly as the reference does.
			for x := range o0 {
				o0[x] += w00*b0[x] + w01*b1[x] + w02*b2[x] + w03*b3[x]
			}
		} else {
			for x := range o1 {
				o1[x] += w10*b0[x] + w11*b1[x] + w12*b2[x] + w13*b3[x]
			}
		}
	}
	for ; p < k; p++ {
		brow := pb[base+p*bs : base+p*bs+jw]
		if av := a0[p]; av != 0 {
			for x := range o0 {
				o0[x] += av * brow[x]
			}
		}
		if av := a1[p]; av != 0 {
			for x := range o1 {
				o1[x] += av * brow[x]
			}
		}
	}
}

// gemmTile1 is the single-row remainder of gemmTile2 — the reference
// kernel body restricted to one column panel. See gemmTile2 for the
// jw/bs/base panel addressing.
func gemmTile1(orow, arow, pb []float32, jw, bs, base int) {
	for x := range orow {
		orow[x] = 0
	}
	k := len(arow)
	p := 0
	for ; p+4 <= k; p += 4 {
		a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		b0 := pb[base+p*bs : base+p*bs+jw]
		b1 := pb[base+(p+1)*bs : base+(p+1)*bs+jw]
		b2 := pb[base+(p+2)*bs : base+(p+2)*bs+jw]
		b3 := pb[base+(p+3)*bs : base+(p+3)*bs+jw]
		for x := range orow {
			orow[x] += a0*b0[x] + a1*b1[x] + a2*b2[x] + a3*b3[x]
		}
	}
	for ; p < k; p++ {
		av := arow[p]
		if av == 0 {
			continue
		}
		brow := pb[base+p*bs : base+p*bs+jw]
		for x := range orow {
			orow[x] += av * brow[x]
		}
	}
}

// matMulRows is the serial reference GEMM kernel over output rows
// [lo, hi) of an unpacked B. It defines the per-element accumulation
// order the blocked kernels must reproduce and serves as the bitwise
// oracle in matmul_oracle_test.go.
func matMulRows(od, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*n : (i+1)*n]
		for x := range orow {
			orow[x] = 0
		}
		arow := ad[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := bd[p*n : p*n+n]
			b1 := bd[(p+1)*n : (p+1)*n+n]
			b2 := bd[(p+2)*n : (p+2)*n+n]
			b3 := bd[(p+3)*n : (p+3)*n+n]
			for j := range orow {
				orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : p*n+n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTA computes Aᵀ·B for A (k×m) and B (k×n), yielding m×n.
// Used for weight gradients without materializing the transpose.
func MatMulTA(a, b *Tensor) *Tensor {
	out := New(a.shape[1], b.shape[1])
	MatMulTAInto(out, a, b)
	return out
}

// MatMulTAInto computes out = Aᵀ·B into out (m×n), A (k×m), B (k×n).
// Above matMulShardFlops the output rows (A's columns) are sharded
// across Workers() goroutines; each shard packs its column slice of A
// into a contiguous pooled panel and accumulates rank-1 updates in
// ascending p, exactly as the serial reference does, so results are
// bit-identical at any worker count.
func MatMulTAInto(out, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTA shape mismatch %v ᵀ· %v -> %v", a.shape, b.shape, out.shape))
	}
	GemmTA(out.data, a.data, b.data, k, m, n)
}

// GemmTA computes dst = Aᵀ·B over raw row-major slices: dst m×n,
// a k×m, b k×n.
func GemmTA(dst, a, b []float32, k, m, n int) {
	if m == 0 || n == 0 {
		return
	}
	if useFast() {
		fastGemmTA(dst, a, b, k, m, n)
		return
	}
	if m >= 2 && m*k*n >= matMulShardFlops && Workers() > 1 {
		ParallelFor(m, func(_, lo, hi int) {
			gemmTAShard(dst, a, b, k, m, n, lo, hi)
		})
		return
	}
	gemmTAShard(dst, a, b, k, m, n, 0, m)
}

// gemmTAShard computes output rows [lo, hi) of dst = Aᵀ·B. The rank-1
// updates run p-outer in ascending order — the per-element accumulation
// order of the reference kernel — while the j dimension is tiled so the
// output block being accumulated stays cache-resident across all k
// updates, and row pairs share each loaded B value. When the shard is a
// strict column subrange of A (parallel path), that subrange is packed
// into a contiguous pooled k×iw panel reused across the column tiles.
func gemmTAShard(od, ad, bd []float32, k, m, n, lo, hi int) {
	for x := lo * n; x < hi*n; x++ {
		od[x] = 0
	}
	iw := hi - lo
	// ap/astride/aoff describe the shard's coefficient layout: the full
	// matrix already is its own panel when the shard covers all of A.
	ap, astride, aoff := ad, m, lo
	var buf *panelBuf
	if iw < m {
		buf = getPanel(k * iw)
		for p := 0; p < k; p++ {
			copy(buf.f[p*iw:p*iw+iw], ad[p*m+lo:p*m+hi])
		}
		ap, astride, aoff = buf.f, iw, 0
	}
	for j0 := 0; j0 < n; j0 += gemmJTile {
		jw := n - j0
		if jw > gemmJTile {
			jw = gemmJTile
		}
		for p := 0; p < k; p++ {
			arow := ap[p*astride+aoff : p*astride+aoff+iw]
			brow := bd[p*n+j0 : p*n+j0+jw]
			ii := 0
			for ; ii+2 <= iw; ii += 2 {
				av0, av1 := arow[ii], arow[ii+1]
				if av0 == 0 && av1 == 0 {
					continue
				}
				ob := (lo + ii) * n
				o0 := od[ob+j0 : ob+j0+jw]
				o1 := od[ob+n+j0 : ob+n+j0+jw]
				if av0 != 0 && av1 != 0 {
					for x, bv := range brow {
						o0[x] += av0 * bv
						o1[x] += av1 * bv
					}
				} else if av0 != 0 {
					for x, bv := range brow {
						o0[x] += av0 * bv
					}
				} else {
					for x, bv := range brow {
						o1[x] += av1 * bv
					}
				}
			}
			if ii < iw {
				if av := arow[ii]; av != 0 {
					ob := (lo + ii) * n
					orow := od[ob+j0 : ob+j0+jw]
					for x, bv := range brow {
						orow[x] += av * bv
					}
				}
			}
		}
	}
	if buf != nil {
		panelPool.Put(buf)
	}
}

// matMulTARef is the serial reference Aᵀ·B kernel: p-outer rank-1
// updates with a per-coefficient skip. It defines the accumulation
// order gemmTAShard reproduces and serves as the bitwise oracle in
// matmul_oracle_test.go.
func matMulTARef(od, ad, bd []float32, k, m, n int) {
	for x := range od[:m*n] {
		od[x] = 0
	}
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTB computes A·Bᵀ for A (m×k) and B (n×k), yielding m×n.
// Used for input gradients: dX = dY · Wᵀ.
func MatMulTB(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[0])
	MatMulTBInto(out, a, b)
	return out
}

// MatMulTBInto computes out = A·Bᵀ into out (m×n), A (m×k), B (n×k).
// Output rows are sharded across Workers() goroutines above
// matMulShardFlops; each row is computed in 1×4 register tiles whose
// four independent dot products share the A loads. Per-accumulator
// operation order matches the serial reference, so results are
// bit-identical at any worker count.
func MatMulTBInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTB shape mismatch %v · %v ᵀ-> %v", a.shape, b.shape, out.shape))
	}
	GemmTB(out.data, a.data, b.data, m, k, n)
}

// GemmTB computes dst = A·Bᵀ over raw row-major slices: dst m×n,
// a m×k, b n×k. B's rows are the contiguous panels already — A·Bᵀ
// needs no repacking.
func GemmTB(dst, a, b []float32, m, k, n int) {
	if m == 0 || n == 0 {
		return
	}
	if useFast() {
		fastGemmTB(dst, a, b, m, k, n)
		return
	}
	if m >= 2 && m*k*n >= matMulShardFlops && Workers() > 1 {
		ParallelFor(m, func(_, lo, hi int) {
			gemmTBRows(dst, a, b, k, n, lo, hi)
		})
		return
	}
	gemmTBRows(dst, a, b, k, n, 0, m)
}

// gemmTBJBlock is the B-row block height of the A·Bᵀ kernels: output
// columns are processed in blocks of at most gemmTBJBlock B rows so
// the block (32 rows × k floats — 32 KiB at k=256) stays L1-resident
// while every output row in the shard consumes it, instead of
// streaming all n·k of B past the cache once per output row. Blocking
// reorders work across output elements only; each element's dot
// product is unchanged.
const gemmTBJBlock = 32

// gemmTBRows computes output rows [lo, hi) of dst = A·Bᵀ in 1×4
// register tiles within B-row blocks of gemmTBJBlock: four j
// accumulators share each A quad load. Each accumulator's operation
// sequence is exactly the reference kernel's.
func gemmTBRows(od, ad, bd []float32, k, n, lo, hi int) {
	for j0 := 0; j0 < n; j0 += gemmTBJBlock {
		jb := n - j0
		if jb > gemmTBJBlock {
			jb = gemmTBJBlock
		}
		gemmTBBlock(od, ad, bd, k, n, lo, hi, j0, j0+jb)
	}
}

// gemmTBBlock computes the output block rows [lo, hi) × columns
// [j0, j1) of dst = A·Bᵀ.
func gemmTBBlock(od, ad, bd []float32, k, n, lo, hi, j0, j1 int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : i*k+k]
		orow := od[i*n : i*n+n]
		j := j0
		for ; j+4 <= j1; j += 4 {
			b0 := bd[j*k : j*k+k]
			b1 := bd[(j+1)*k : (j+1)*k+k]
			b2 := bd[(j+2)*k : (j+2)*k+k]
			b3 := bd[(j+3)*k : (j+3)*k+k]
			var s0, s1, s2, s3 float32
			p := 0
			for ; p+4 <= k; p += 4 {
				a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
				s0 += a0*b0[p] + a1*b0[p+1] + a2*b0[p+2] + a3*b0[p+3]
				s1 += a0*b1[p] + a1*b1[p+1] + a2*b1[p+2] + a3*b1[p+3]
				s2 += a0*b2[p] + a1*b2[p+1] + a2*b2[p+2] + a3*b2[p+3]
				s3 += a0*b3[p] + a1*b3[p+1] + a2*b3[p+2] + a3*b3[p+3]
			}
			for ; p < k; p++ {
				av := arow[p]
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < j1; j++ {
			brow := bd[j*k : j*k+k]
			var s float32
			p := 0
			for ; p+4 <= k; p += 4 {
				s += arow[p]*brow[p] + arow[p+1]*brow[p+1] +
					arow[p+2]*brow[p+2] + arow[p+3]*brow[p+3]
			}
			for ; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
}

// matMulTBRows is the serial reference A·Bᵀ kernel over output rows
// [lo, hi) — one dot product per output element. It defines the
// accumulation order gemmTBRows reproduces and serves as the bitwise
// oracle in matmul_oracle_test.go.
func matMulTBRows(od, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			p := 0
			for ; p+4 <= k; p += 4 {
				s += arow[p]*brow[p] + arow[p+1]*brow[p+1] +
					arow[p+2]*brow[p+2] + arow[p+3]*brow[p+3]
			}
			for ; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
}

// MatVec computes y = A·x for A (m×n) and x (n), yielding y (m).
func MatVec(a *Tensor, x []float32) []float32 {
	return MatVecInto(make([]float32, a.shape[0]), a, x)
}

// MatVecInto computes dst = A·x into a caller-provided destination of
// length m, returning dst. Hot callers (ECOC decoding, crossbar
// evaluation) reuse one destination across calls to stay
// allocation-free.
func MatVecInto(dst []float32, a *Tensor, x []float32) []float32 {
	m, n := a.shape[0], a.shape[1]
	if len(x) != n {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v · vec(%d)", a.shape, len(x)))
	}
	if len(dst) != m {
		panic(fmt.Sprintf("tensor: MatVec destination length %d, want %d", len(dst), m))
	}
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}
