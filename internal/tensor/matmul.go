package tensor

import "fmt"

// MatMul returns A·B for rank-2 tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// matMulShardFlops is the minimum m·k·n product above which the GEMM
// kernels shard output rows across goroutines; below it the goroutine
// fan-out costs more than it saves. Sharding never changes results:
// each output row is computed by the same serial kernel either way.
const matMulShardFlops = 1 << 16

// MatMulInto computes out = A·B, reusing out's storage. out must be
// m×n, A m×k, B k×n. The kernel is an ikj loop with 4-wide manual
// unrolling over the inner dimension; above matMulShardFlops the output
// rows are sharded across Workers() goroutines, which is bit-identical
// to the serial path because rows are independent.
func MatMulInto(out, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(out.shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v · %v -> %v", a.shape, b.shape, out.shape))
	}
	if m >= 2 && m*k*n >= matMulShardFlops && Workers() > 1 {
		ParallelFor(m, func(_, lo, hi int) {
			matMulRows(out.data, a.data, b.data, k, n, lo, hi)
		})
		return
	}
	matMulRows(out.data, a.data, b.data, k, n, 0, m)
}

// matMulRows is the serial reference GEMM kernel over output rows
// [lo, hi). The parallel dispatcher calls it once per shard; the serial
// path calls it once over all rows.
func matMulRows(od, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*n : (i+1)*n]
		for x := range orow {
			orow[x] = 0
		}
		arow := ad[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := bd[p*n : p*n+n]
			b1 := bd[(p+1)*n : (p+1)*n+n]
			b2 := bd[(p+2)*n : (p+2)*n+n]
			b3 := bd[(p+3)*n : (p+3)*n+n]
			for j := range orow {
				orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : p*n+n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTA computes Aᵀ·B for A (k×m) and B (k×n), yielding m×n.
// Used for weight gradients without materializing the transpose.
func MatMulTA(a, b *Tensor) *Tensor {
	out := New(a.shape[1], b.shape[1])
	MatMulTAInto(out, a, b)
	return out
}

// MatMulTAInto computes out = Aᵀ·B into out (m×n), A (k×m), B (k×n).
func MatMulTAInto(out, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTA shape mismatch %v ᵀ· %v -> %v", a.shape, b.shape, out.shape))
	}
	od := out.data
	for x := range od {
		od[x] = 0
	}
	ad, bd := a.data, b.data
	// out[i][j] += a[p][i] * b[p][j]: iterate p outer so both reads are
	// sequential; accumulate rank-1 updates.
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTB computes A·Bᵀ for A (m×k) and B (n×k), yielding m×n.
// Used for input gradients: dX = dY · Wᵀ.
func MatMulTB(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[0])
	MatMulTBInto(out, a, b)
	return out
}

// MatMulTBInto computes out = A·Bᵀ into out (m×n), A (m×k), B (n×k).
// Output rows are sharded across Workers() goroutines above
// matMulShardFlops, bit-identically to the serial kernel.
func MatMulTBInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTB shape mismatch %v · %v ᵀ-> %v", a.shape, b.shape, out.shape))
	}
	if m >= 2 && m*k*n >= matMulShardFlops && Workers() > 1 {
		ParallelFor(m, func(_, lo, hi int) {
			matMulTBRows(out.data, a.data, b.data, k, n, lo, hi)
		})
		return
	}
	matMulTBRows(out.data, a.data, b.data, k, n, 0, m)
}

// matMulTBRows is the serial reference A·Bᵀ kernel over output rows
// [lo, hi).
func matMulTBRows(od, ad, bd []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			p := 0
			for ; p+4 <= k; p += 4 {
				s += arow[p]*brow[p] + arow[p+1]*brow[p+1] +
					arow[p+2]*brow[p+2] + arow[p+3]*brow[p+3]
			}
			for ; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
}

// MatVec computes y = A·x for A (m×n) and x (n), yielding y (m).
func MatVec(a *Tensor, x []float32) []float32 {
	m, n := a.shape[0], a.shape[1]
	if len(x) != n {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v · vec(%d)", a.shape, len(x)))
	}
	y := make([]float32, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}
