package tensor

import (
	"sync"
	"testing"
)

// withWorkers runs fn under a forced worker count, restoring the
// previous setting afterwards.
func withWorkers(n int, fn func()) {
	old := SetWorkers(n)
	defer SetWorkers(old)
	fn()
}

// matmulShapes is the equivalence-test shape grid. It deliberately
// includes every tail path of the unrolled kernels: k < 4 (the 4-wide
// unroll never fires), m = 1 (no sharding possible), n = 1, and
// m values that are not multiples of any plausible shard count.
var matmulShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 3, 7},    // m = 1: sharding must degrade to serial
	{2, 1, 5},    // k = 1: pure tail loop
	{3, 2, 4},    // k = 2
	{5, 3, 9},    // k = 3: last sub-unroll tail
	{4, 4, 4},    // exact unroll boundary
	{7, 5, 3},    // k = 4+1 tail
	{8, 17, 8},   // odd k above unroll
	{13, 31, 29}, // primes: never a multiple of the shard count
	{16, 64, 64},
	{33, 37, 41}, // above matMulShardFlops with awkward row count
	{64, 48, 70},
	{128, 19, 33},
}

func randPair(seed uint64, m, k, n int) (*Tensor, *Tensor) {
	r := NewRNG(seed)
	a, b := New(m, k), New(k, n)
	FillNormal(a, r, 0, 1)
	FillNormal(b, r, 0, 1)
	// Sprinkle exact zeros so the kernels' skip-zero fast paths fire.
	for i := 0; i < a.Len(); i += 5 {
		a.Data()[i] = 0
	}
	return a, b
}

// TestMatMulParallelEquivalence checks that the sharded MatMulInto is
// bit-identical to the serial reference at several worker counts,
// across shapes that exercise every kernel tail path.
func TestMatMulParallelEquivalence(t *testing.T) {
	for _, sh := range matmulShapes {
		a, b := randPair(uint64(sh.m*1000+sh.k*10+sh.n), sh.m, sh.k, sh.n)
		want := New(sh.m, sh.n)
		withWorkers(1, func() { MatMulInto(want, a, b) })
		for _, w := range []int{2, 3, 8, 64} {
			got := Full(999, sh.m, sh.n) // poison: every element must be overwritten
			withWorkers(w, func() { MatMulInto(got, a, b) })
			if !got.Equal(want) {
				t.Fatalf("MatMul %dx%dx%d differs at workers=%d", sh.m, sh.k, sh.n, w)
			}
		}
	}
}

// TestMatMulTBParallelEquivalence does the same for A·Bᵀ.
func TestMatMulTBParallelEquivalence(t *testing.T) {
	for _, sh := range matmulShapes {
		r := NewRNG(uint64(sh.m + sh.k + sh.n))
		a, bT := New(sh.m, sh.k), New(sh.n, sh.k)
		FillNormal(a, r, 0, 1)
		FillNormal(bT, r, 0, 1)
		want := New(sh.m, sh.n)
		withWorkers(1, func() { MatMulTBInto(want, a, bT) })
		for _, w := range []int{2, 3, 8, 64} {
			got := Full(999, sh.m, sh.n)
			withWorkers(w, func() { MatMulTBInto(got, a, bT) })
			if !got.Equal(want) {
				t.Fatalf("MatMulTB %dx%dx%d differs at workers=%d", sh.m, sh.k, sh.n, w)
			}
		}
	}
}

// TestMatMulTAParallelEquivalence does the same for Aᵀ·B, the
// weight-gradient kernel. Its shards are column ranges of A that get
// packed into contiguous panels, so this additionally pins that the
// pack-and-accumulate path matches the serial full-matrix path.
func TestMatMulTAParallelEquivalence(t *testing.T) {
	for _, sh := range matmulShapes {
		// Reuse the grid as (k, m, n): A is k×m, out is m×n.
		r := NewRNG(uint64(sh.m*7 + sh.k*3 + sh.n))
		a, b := New(sh.m, sh.k), New(sh.m, sh.n)
		FillNormal(a, r, 0, 1)
		FillNormal(b, r, 0, 1)
		for i := 0; i < a.Len(); i += 5 {
			a.Data()[i] = 0
		}
		want := New(sh.k, sh.n)
		withWorkers(1, func() { MatMulTAInto(want, a, b) })
		for _, w := range []int{2, 3, 8, 64} {
			got := Full(999, sh.k, sh.n)
			withWorkers(w, func() { MatMulTAInto(got, a, b) })
			if !got.Equal(want) {
				t.Fatalf("MatMulTA %dx%dx%d differs at workers=%d", sh.m, sh.k, sh.n, w)
			}
		}
	}
}

// TestParallelForNCoverage checks the chunking contract: every index
// covered exactly once, shard indices dense and below min(w, n).
func TestParallelForNCoverage(t *testing.T) {
	for _, tc := range []struct{ w, n int }{
		{1, 1}, {1, 10}, {4, 10}, {10, 4}, {3, 7}, {8, 8}, {16, 1}, {5, 0}, {7, 100},
	} {
		var mu sync.Mutex
		seen := make([]int, tc.n)
		maxShard := -1
		ParallelForN(tc.w, tc.n, func(shard, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			if shard > maxShard {
				maxShard = shard
			}
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("w=%d n=%d: index %d visited %d times", tc.w, tc.n, i, c)
			}
		}
		limit := tc.w
		if tc.n < limit {
			limit = tc.n
		}
		if tc.n > 0 && maxShard >= limit {
			t.Fatalf("w=%d n=%d: shard index %d >= min(w,n)=%d", tc.w, tc.n, maxShard, limit)
		}
	}
}

// TestSetWorkersContract pins the knob semantics: <=0 restores the
// core-count default, and the previous value round-trips.
func TestSetWorkersContract(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	if prev := SetWorkers(0); prev != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", prev)
	}
	if got := Workers(); got < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", got)
	}
}
