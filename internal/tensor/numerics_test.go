package tensor

import (
	"fmt"
	"math"
	"testing"
)

// Fast-tier pinning. The fast kernels fuse multiply-add (one rounding
// instead of two) and sum in vector-lane order, so bit-identity with
// the exact tier is impossible by construction; instead every element
// must land within a small ULP distance of the exact result, or —
// when cancellation makes ULP distance meaningless — within a
// forward-error bound proportional to Σ|a·b| for that element. Both
// thresholds follow the standard summation error model: reordering a
// k-term accumulation perturbs the result by at most ~k·eps·Σ|terms|.

// fastULPBudget is the "N ULPs" of the fast-tier contract for
// well-conditioned elements.
const fastULPBudget = 256

// ulpDist32 returns the distance between a and b in units in the last
// place, treating the float32s as sign-magnitude integers (the usual
// monotone mapping). NaNs are infinitely far apart.
func ulpDist32(a, b float32) uint64 {
	if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
		return math.MaxUint64
	}
	ia := int64(math.Float32bits(a))
	ib := int64(math.Float32bits(b))
	if ia < 0x80000000 {
		ia = 0x80000000 - ia // negative floats: bits descend as value ascends
	} else {
		ia -= 0x80000000
		ia = -ia
	}
	if ib < 0x80000000 {
		ib = 0x80000000 - ib
	} else {
		ib -= 0x80000000
		ib = -ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

// absSumBound returns the forward-error tolerance for one output
// element with |terms| magnitude sum s and k accumulation terms.
func absSumBound(s float64, k int) float64 {
	const eps32 = 1.0 / (1 << 23)
	return (float64(k) + 8) * eps32 * s
}

// checkFastVsExact asserts the fast result is ULP- or error-bounded
// against the exact result, element by element. mags[i] must hold
// Σ_p |a·b| for element i, computed in float64.
func checkFastVsExact(t *testing.T, name string, exact, fast []float32, mags []float64, k int) {
	t.Helper()
	for i := range exact {
		if ulpDist32(exact[i], fast[i]) <= fastULPBudget {
			continue
		}
		diff := math.Abs(float64(exact[i]) - float64(fast[i]))
		if diff <= absSumBound(mags[i], k) {
			continue
		}
		t.Fatalf("%s element %d: exact %v fast %v — %d ULPs apart, |diff| %g > bound %g",
			name, i, exact[i], fast[i], ulpDist32(exact[i], fast[i]), diff, absSumBound(mags[i], k))
	}
}

// gemmMags computes the per-element magnitude sums Σ|a·b| for A·B in
// float64 — the conditioning reference for the error bound.
func gemmMags(a, b []float32, m, k, n int) []float64 {
	mags := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := math.Abs(float64(a[i*k+p]))
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				mags[i*n+j] += av * math.Abs(float64(b[p*n+j]))
			}
		}
	}
	return mags
}

func requireFast(t testing.TB) {
	t.Helper()
	if !FastSupported() {
		t.Skip("fast tier unsupported: no AVX2+FMA (or noasm build)")
	}
}

// runTier runs f with the numerics tier pinned, restoring the
// previously requested tier afterwards.
func runTier(m Numerics, f func()) {
	old := SetNumerics(m)
	defer SetNumerics(old)
	f()
}

func TestGemmFastWithinULPsOfExact(t *testing.T) {
	requireFast(t)
	for _, s := range oracleShapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := oraclePair(0xFA57, m, k, n)
			exact := make([]float32, m*n)
			fast := make([]float32, m*n)
			runTier(NumericsExact, func() { Gemm(exact, a.Data(), b.Data(), m, k, n) })
			runTier(NumericsFast, func() { Gemm(fast, a.Data(), b.Data(), m, k, n) })
			checkFastVsExact(t, "Gemm", exact, fast, gemmMags(a.Data(), b.Data(), m, k, n), k)

			// Aᵀ·B: reuse A as k'=m × m'=k.
			bTA := New(m, n)
			FillNormal(bTA, NewRNG(0xFA57^3), 0, 1)
			exTA := make([]float32, k*n)
			faTA := make([]float32, k*n)
			runTier(NumericsExact, func() { GemmTA(exTA, a.Data(), bTA.Data(), m, k, n) })
			runTier(NumericsFast, func() { GemmTA(faTA, a.Data(), bTA.Data(), m, k, n) })
			// Magnitudes via the materialized transpose.
			at := make([]float32, k*m)
			for p := 0; p < m; p++ {
				for i := 0; i < k; i++ {
					at[i*m+p] = a.Data()[p*k+i]
				}
			}
			checkFastVsExact(t, "GemmTA", exTA, faTA, gemmMags(at, bTA.Data(), k, m, n), m)

			bTB := New(n, k)
			FillNormal(bTB, NewRNG(0xFA57^9), 0, 1)
			exTB := make([]float32, m*n)
			faTB := make([]float32, m*n)
			runTier(NumericsExact, func() { GemmTB(exTB, a.Data(), bTB.Data(), m, k, n) })
			runTier(NumericsFast, func() { GemmTB(faTB, a.Data(), bTB.Data(), m, k, n) })
			bt := make([]float32, k*n)
			for j := 0; j < n; j++ {
				for p := 0; p < k; p++ {
					bt[p*n+j] = bTB.Data()[j*k+p]
				}
			}
			checkFastVsExact(t, "GemmTB", exTB, faTB, gemmMags(a.Data(), bt, m, k, n), k)
		})
	}
}

// FuzzGemmFastVsExact drives all three fast kernels against the exact
// tier on fuzz-chosen shapes and seeds, with the ULP/error-bound
// acceptance of the fast-tier contract.
func FuzzGemmFastVsExact(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(7), uint16(9))
	f.Add(uint64(2), uint8(5), uint8(4), uint16(300))
	f.Add(uint64(3), uint8(1), uint8(1), uint16(1))
	f.Add(uint64(4), uint8(16), uint8(13), uint16(257))
	f.Add(uint64(5), uint8(23), uint8(24), uint16(511))
	f.Fuzz(func(t *testing.T, seed uint64, mRaw, kRaw uint8, nRaw uint16) {
		requireFast(t)
		m := int(mRaw)%24 + 1
		k := int(kRaw)%24 + 1
		n := int(nRaw)%320 + 1
		a, b := oraclePair(seed, m, k, n)
		exact := make([]float32, m*n)
		fast := make([]float32, m*n)
		runTier(NumericsExact, func() { Gemm(exact, a.Data(), b.Data(), m, k, n) })
		runTier(NumericsFast, func() { Gemm(fast, a.Data(), b.Data(), m, k, n) })
		checkFastVsExact(t, "Gemm", exact, fast, gemmMags(a.Data(), b.Data(), m, k, n), k)

		bTA := New(m, n)
		FillNormal(bTA, NewRNG(seed^0x55), 0, 1)
		exTA := make([]float32, k*n)
		faTA := make([]float32, k*n)
		runTier(NumericsExact, func() { GemmTA(exTA, a.Data(), bTA.Data(), m, k, n) })
		runTier(NumericsFast, func() { GemmTA(faTA, a.Data(), bTA.Data(), m, k, n) })
		at := make([]float32, k*m)
		for p := 0; p < m; p++ {
			for i := 0; i < k; i++ {
				at[i*m+p] = a.Data()[p*k+i]
			}
		}
		checkFastVsExact(t, "GemmTA", exTA, faTA, gemmMags(at, bTA.Data(), k, m, n), m)

		bTB := New(n, k)
		FillNormal(bTB, NewRNG(seed^0xAA), 0, 1)
		exTB := make([]float32, m*n)
		faTB := make([]float32, m*n)
		runTier(NumericsExact, func() { GemmTB(exTB, a.Data(), bTB.Data(), m, k, n) })
		runTier(NumericsFast, func() { GemmTB(faTB, a.Data(), bTB.Data(), m, k, n) })
		bt := make([]float32, k*n)
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				bt[p*n+j] = bTB.Data()[j*k+p]
			}
		}
		checkFastVsExact(t, "GemmTB", exTB, faTB, gemmMags(a.Data(), bt, m, k, n), k)
	})
}

// TestExactUnaffectedByFastToggle is the guard the determinism suites
// rely on: running the fast tier and switching back must leave the
// exact tier bit-identical to the committed oracles — no re-pinning.
func TestExactUnaffectedByFastToggle(t *testing.T) {
	defer SetNumerics(SetNumerics(NumericsExact))
	m, k, n := 17, 30, 259
	a, b := oraclePair(0xD15C, m, k, n)
	want := make([]float32, m*n)
	matMulRows(want, a.Data(), b.Data(), k, n, 0, m)

	before := make([]float32, m*n)
	Gemm(before, a.Data(), b.Data(), m, k, n)

	if FastSupported() {
		scratch := make([]float32, m*n)
		runTier(NumericsFast, func() { Gemm(scratch, a.Data(), b.Data(), m, k, n) })
	}
	SetNumerics(NumericsExact)

	after := make([]float32, m*n)
	Gemm(after, a.Data(), b.Data(), m, k, n)
	for i := range want {
		if math.Float32bits(after[i]) != math.Float32bits(want[i]) {
			t.Fatalf("exact tier drifted from the reference oracle at %d after a fast round-trip", i)
		}
		if math.Float32bits(after[i]) != math.Float32bits(before[i]) {
			t.Fatalf("exact tier changed across a fast round-trip at %d", i)
		}
	}
}

// TestFastTierWorkerInvariance: within the fast tier, results are
// still per-element deterministic — sharding across workers must not
// change a single bit (the same property the exact tier guarantees).
func TestFastTierWorkerInvariance(t *testing.T) {
	requireFast(t)
	defer SetNumerics(SetNumerics(NumericsFast))
	m, k, n := 33, 40, 513 // crosses matMulShardFlops
	a, b := oraclePair(0x5EED, m, k, n)
	bTA := New(m, n)
	FillNormal(bTA, NewRNG(0x5EED^1), 0, 1)
	bTB := New(n, k)
	FillNormal(bTB, NewRNG(0x5EED^2), 0, 1)

	var ref, refTA, refTB []float32
	for _, w := range []int{1, 4, 7} {
		got := make([]float32, m*n)
		gotTA := make([]float32, k*n)
		gotTB := make([]float32, m*n)
		withWorkers(w, func() {
			Gemm(got, a.Data(), b.Data(), m, k, n)
			GemmTA(gotTA, a.Data(), bTA.Data(), m, k, n)
			GemmTB(gotTB, a.Data(), bTB.Data(), m, k, n)
		})
		if ref == nil {
			ref, refTA, refTB = got, gotTA, gotTB
			continue
		}
		for i := range ref {
			if math.Float32bits(ref[i]) != math.Float32bits(got[i]) {
				t.Fatalf("fast Gemm differs between workers=1 and workers=%d at %d", w, i)
			}
			if math.Float32bits(refTB[i]) != math.Float32bits(gotTB[i]) {
				t.Fatalf("fast GemmTB differs between workers=1 and workers=%d at %d", w, i)
			}
		}
		for i := range refTA {
			if math.Float32bits(refTA[i]) != math.Float32bits(gotTA[i]) {
				t.Fatalf("fast GemmTA differs between workers=1 and workers=%d at %d", w, i)
			}
		}
	}
}

// TestConvFastTierMatchesComposition: the fused conv path and the
// materialized Im2Col+Gemm / GemmTB / GemmTA+Col2Im composition must
// agree bitwise *within* the fast tier, exactly as they do within the
// exact tier — both feed the same microkernels identical operand
// sequences. (The exact-tier version of this property is pinned by
// convgemm_test.go, which runs under both tiers in CI.)
func TestConvFastTierMatchesComposition(t *testing.T) {
	requireFast(t)
	defer SetNumerics(SetNumerics(NumericsFast))
	n, c, h, w, outC, kh, kw, stride, pad := 2, 3, 9, 9, 5, 3, 3, 1, 1
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	outArea := outH * outW
	k := c * kh * kw
	r := NewRNG(0xC04F)
	src := make([]float32, n*c*h*w)
	for i := range src {
		src[i] = float32(r.NormFloat64())
	}
	wd := make([]float32, outC*k)
	for i := range wd {
		wd[i] = float32(r.NormFloat64())
	}
	fused := make([]float32, n*outC*outArea)
	ConvGemmForward(fused, wd, src, n, c, h, w, outC, kh, kw, stride, pad)

	composed := make([]float32, n*outC*outArea)
	col := make([]float32, k*outArea)
	for i := 0; i < n; i++ {
		Im2Col(src[i*c*h*w:(i+1)*c*h*w], c, h, w, kh, kw, stride, pad, col)
		Gemm(composed[i*outC*outArea:(i+1)*outC*outArea], wd, col, outC, k, outArea)
	}
	for i := range fused {
		if math.Float32bits(fused[i]) != math.Float32bits(composed[i]) {
			t.Fatalf("fast fused forward differs from fast Im2Col+Gemm at %d: %v vs %v",
				i, fused[i], composed[i])
		}
	}
}

// TestConvFastDWAxpyPinned: the axpy-batched fast-tier dW is (1)
// bit-deterministic and worker-invariant within the fast tier, and (2)
// ULP/error-bounded against the exact-tier oracle. It no longer claims
// bit-identity with the composed GemmTB — the axpy batching reorders
// each element's accumulation (see convSampleDWAxpy).
func TestConvFastDWAxpyPinned(t *testing.T) {
	requireFast(t)
	// k = 16·3·3 = 144 ≥ outArea = 64, so this shape takes the axpy
	// dispatch branch in convBackwardSamples.
	s := convShape{6, 16, 8, 8, 5, 3, 3, 1, 1}
	wd, src, dY := convOracleData(0xD27A, s)
	k := s.c * s.kh * s.kw
	wlen := s.outC * k
	outArea := ConvOutSize(s.h, s.kh, s.stride, s.pad) * ConvOutSize(s.w, s.kw, s.stride, s.pad)

	runBwd := func() []float32 {
		dX := make([]float32, s.n*s.c*s.h*s.w)
		chunks := make([]float32, s.n*wlen)
		ConvGemmBackward(dX, chunks, wd, src, dY, s.n, s.c, s.h, s.w, s.outC, s.kh, s.kw, s.stride, s.pad)
		dW := make([]float32, wlen)
		for i := 0; i < s.n; i++ {
			for j, v := range chunks[i*wlen : (i+1)*wlen] {
				dW[j] += v
			}
		}
		return dW
	}

	var exactDW []float32
	runTier(NumericsExact, func() { withWorkers(1, func() { exactDW = runBwd() }) })

	runTier(NumericsFast, func() {
		var ref []float32
		for _, w := range []int{1, 2, 4} {
			var got []float32
			withWorkers(w, func() { got = runBwd() })
			// Repeat at the same worker count: bit-determinism.
			var again []float32
			withWorkers(w, func() { again = runBwd() })
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(again[i]) {
					t.Fatalf("fast dW not deterministic at workers=%d, element %d", w, i)
				}
			}
			if ref == nil {
				ref = got
				continue
			}
			for i := range ref {
				if math.Float32bits(ref[i]) != math.Float32bits(got[i]) {
					t.Fatalf("fast dW differs between workers=1 and workers=%d at %d", w, i)
				}
			}
		}
		checkFastVsExact(t, "convDWAxpy", exactDW, ref, convDWMags(src, dY, s), s.n*outArea)
	})
}

func TestParseNumerics(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Numerics
		ok   bool
	}{
		{"exact", NumericsExact, true},
		{"fast", NumericsFast, true},
		{"", NumericsExact, false},
		{"FAST", NumericsExact, false},
		{"turbo", NumericsExact, false},
	} {
		got, err := ParseNumerics(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParseNumerics(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if NumericsExact.String() != "exact" || NumericsFast.String() != "fast" {
		t.Fatal("Numerics.String does not round-trip the canonical spellings")
	}
}

func TestSetNumericsClampsAndReports(t *testing.T) {
	orig := RequestedNumerics()
	defer SetNumerics(orig)
	SetNumerics(NumericsExact)
	if prev := SetNumerics(NumericsFast); prev != NumericsExact {
		t.Fatalf("SetNumerics returned %v, want exact", prev)
	}
	if RequestedNumerics() != NumericsFast {
		t.Fatal("requested tier not recorded")
	}
	// Active demotes to exact when unsupported; equals requested when
	// supported.
	want := NumericsExact
	if FastSupported() {
		want = NumericsFast
	}
	if ActiveNumerics() != want {
		t.Fatalf("ActiveNumerics = %v, want %v (FastSupported=%v)", ActiveNumerics(), want, FastSupported())
	}
	if prev := SetNumerics(Numerics(42)); prev != NumericsFast {
		t.Fatalf("SetNumerics returned %v, want fast", prev)
	}
	if RequestedNumerics() != NumericsExact {
		t.Fatal("unknown tier was not clamped to exact")
	}
}
