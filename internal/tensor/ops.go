package tensor

import (
	"fmt"
	"math"
)

// Add returns t + u element-wise.
func Add(t, u *Tensor) *Tensor {
	checkSame("Add", t, u)
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] + u.data[i]
	}
	return out
}

// AddInPlace sets t += u element-wise.
func (t *Tensor) AddInPlace(u *Tensor) {
	checkSame("AddInPlace", t, u)
	for i := range t.data {
		t.data[i] += u.data[i]
	}
}

// Sub returns t - u element-wise.
func Sub(t, u *Tensor) *Tensor {
	checkSame("Sub", t, u)
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] - u.data[i]
	}
	return out
}

// SubInPlace sets t -= u element-wise.
func (t *Tensor) SubInPlace(u *Tensor) {
	checkSame("SubInPlace", t, u)
	for i := range t.data {
		t.data[i] -= u.data[i]
	}
}

// Mul returns the Hadamard (element-wise) product t ⊙ u.
func Mul(t, u *Tensor) *Tensor {
	checkSame("Mul", t, u)
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] * u.data[i]
	}
	return out
}

// MulInPlace sets t ⊙= u element-wise.
func (t *Tensor) MulInPlace(u *Tensor) {
	checkSame("MulInPlace", t, u)
	for i := range t.data {
		t.data[i] *= u.data[i]
	}
}

// Scale multiplies every element of t by a in place.
func (t *Tensor) Scale(a float32) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// Scaled returns a copy of t with every element multiplied by a.
func (t *Tensor) Scaled(a float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = v * a
	}
	return out
}

// Axpy performs t += a*u (BLAS-style saxpy).
func (t *Tensor) Axpy(a float32, u *Tensor) {
	checkSame("Axpy", t, u)
	for i := range t.data {
		t.data[i] += a * u.data[i]
	}
}

// Apply replaces each element v with f(v).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Map returns a new tensor whose elements are f applied to t's.
func Map(t *Tensor, f func(float32) float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// Dot returns the inner product of two tensors of equal size.
func Dot(t, u *Tensor) float64 {
	if len(t.data) != len(u.data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i := range t.data {
		s += float64(t.data[i]) * float64(u.data[i])
	}
	return s
}

// ArgMax returns the index of the maximum element of a rank-1 view of t.
// Ties resolve to the lowest index.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgMaxRow returns the argmax of row i of a rank-2 tensor.
func (t *Tensor) ArgMaxRow(i int) int {
	row := t.Row(i)
	best, bi := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best, bi = v, j+1
		}
	}
	return bi
}

// Min and Max return the extreme values of the tensor.
func (t *Tensor) Min() float32 {
	if len(t.data) == 0 {
		return 0
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum element (0 for an empty tensor).
func (t *Tensor) Max() float32 {
	if len(t.data) == 0 {
		return 0
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Variance returns the population variance of the elements.
func (t *Tensor) Variance() float64 {
	n := len(t.data)
	if n == 0 {
		return 0
	}
	mean := t.Mean()
	var s float64
	for _, v := range t.data {
		d := float64(v) - mean
		s += d * d
	}
	return s / float64(n)
}

// Softmax computes row-wise softmax of a rank-2 tensor into out
// (allocated if nil) and returns it. Numerically stabilized by the
// row max.
func Softmax(t, out *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Softmax requires rank-2 tensor")
	}
	if out == nil {
		out = New(t.shape...)
	}
	checkSame("Softmax", t, out)
	rows, cols := t.shape[0], t.shape[1]
	for r := 0; r < rows; r++ {
		in := t.data[r*cols : (r+1)*cols]
		o := out.data[r*cols : (r+1)*cols]
		mx := in[0]
		for _, v := range in[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for j, v := range in {
			e := math.Exp(float64(v - mx))
			o[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range o {
			o[j] *= inv
		}
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	// Simple blocked transpose for cache friendliness.
	const bs = 32
	for i0 := 0; i0 < r; i0 += bs {
		imax := min(i0+bs, r)
		for j0 := 0; j0 < c; j0 += bs {
			jmax := min(j0+bs, c)
			for i := i0; i < imax; i++ {
				for j := j0; j < jmax; j++ {
					out.data[j*r+i] = t.data[i*c+j]
				}
			}
		}
	}
	return out
}

func checkSame(op string, t, u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
