package obs

import (
	"fmt"
	"io"
	"sync"
)

// progress renders events for a human watching a terminal. Per-run
// evaluation events and per-epoch checkpoint saves are suppressed — a
// full Table I sweep emits thousands of them — while everything else
// prints one line.
type progress struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgress returns the human progress renderer (normally attached
// to stderr). It prints every event except the high-volume KindEvalRun
// and KindCkptSave streams (ckpt.restore and ckpt.corrupt, which are
// rare and decision-relevant, do print).
func NewProgress(w io.Writer) Sink {
	return &progress{w: w}
}

func (p *progress) Enabled() bool { return true }

func (p *progress) Emit(e Event) {
	if e.Kind == KindEvalRun || e.Kind == KindCkptSave {
		return
	}
	p.mu.Lock()
	fmt.Fprintln(p.w, e.String())
	p.mu.Unlock()
}

// LogfSink adapts a printf-style closure to a Sink — the mechanical
// migration path for callers of the old `logf func(string, ...any)`
// parameters of core.Config and experiments.NewEnv. Events are
// rendered with Event.String; like NewProgress it suppresses the
// high-volume KindEvalRun stream, matching what the old logf plumbing
// ever reported. A nil closure yields Null.
func LogfSink(f func(format string, args ...any)) Sink {
	if f == nil {
		return Null
	}
	return logfSink{f: f}
}

type logfSink struct {
	f func(string, ...any)
}

func (s logfSink) Enabled() bool { return true }

func (s logfSink) Emit(e Event) {
	if e.Kind == KindEvalRun {
		return
	}
	s.f("%s", e.String())
}
