package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNullIsDisabledAndAllocationFree(t *testing.T) {
	if Null.Enabled() {
		t.Fatal("Null must report disabled")
	}
	Null.Emit(Event{Kind: KindLog, Msg: "dropped"}) // must not panic

	// The disabled fast path must not allocate: Logf skips formatting
	// and the variadic slice must not escape.
	n := int(testing.AllocsPerRun(100, func() {
		Logf(Null, "epoch %d loss %f", 3, 0.25)
	}))
	if n != 0 {
		t.Fatalf("Logf on Null sink allocated %d times per call", n)
	}
}

func TestOrResolvesNil(t *testing.T) {
	if Or(nil) != Null {
		t.Fatal("Or(nil) must be Null")
	}
	r := &Recorder{}
	if Or(r) != Sink(r) {
		t.Fatal("Or must pass a live sink through")
	}
}

func TestLogfEmitsFormattedMessage(t *testing.T) {
	r := &Recorder{}
	Logf(r, "stage %d/%d", 2, 5)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Kind != KindLog || evs[0].Msg != "stage 2/5" {
		t.Fatalf("bad log event: %+v", evs)
	}
}

func TestMultiFanOutAndCollapse(t *testing.T) {
	if Multi() != Null {
		t.Fatal("empty Multi must be Null")
	}
	if Multi(nil, Null) != Null {
		t.Fatal("Multi of nothing live must be Null")
	}
	r := &Recorder{}
	if Multi(nil, r, Null) != Sink(r) {
		t.Fatal("single live sink must be returned unwrapped")
	}
	r2 := &Recorder{}
	m := Multi(r, r2)
	if !m.Enabled() {
		t.Fatal("multi sink must be enabled")
	}
	m.Emit(Event{Kind: KindLog, Msg: "x"})
	if r.Count("") != 1 || r2.Count("") != 1 {
		t.Fatalf("fan-out wrong: %d, %d", r.Count(""), r2.Count(""))
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := &Recorder{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Emit(Event{Kind: KindEvalRun, Run: i*100 + j + 1})
			}
		}(i)
	}
	wg.Wait()
	if got := r.Count(KindEvalRun); got != 800 {
		t.Fatalf("recorded %d events, want 800", got)
	}
}

func TestJSONLSchemaVersionedAndParseable(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.SetClock(func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) })
	j.Emit(Event{Kind: KindTrainEpoch, Epoch: 1, LR: 0.1, Loss: 2.5, Acc: 0.3, Rate: 0.05})
	j.Emit(Event{Kind: KindEvalRun, Run: 3, Rate: 0.01, Acc: 0.91})
	j.Emit(Event{Kind: KindCacheHit, Key: "pretrain-c10"})

	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", lines, err, sc.Text())
		}
		if rec["schema"] != SchemaVersion {
			t.Fatalf("line %d missing schema field: %s", lines, sc.Text())
		}
		if rec["t"] != "2026-08-05T12:00:00Z" {
			t.Fatalf("line %d bad timestamp: %s", lines, sc.Text())
		}
		if rec["kind"] == "" {
			t.Fatalf("line %d missing kind: %s", lines, sc.Text())
		}
	}
	if lines != 3 {
		t.Fatalf("wrote %d lines, want 3", lines)
	}
}

func TestJSONLNilClockOmitsTimestamp(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.SetClock(nil)
	j.Emit(Event{Kind: KindLog, Msg: "m"})
	if strings.Contains(buf.String(), `"t"`) {
		t.Fatalf("timestamp present with nil clock: %s", buf.String())
	}
}

func TestProgressSuppressesEvalRuns(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.Emit(Event{Kind: KindEvalRun, Run: 1, Rate: 0.1, Acc: 0.5})
	p.Emit(Event{Kind: KindLog, Msg: "visible"})
	out := buf.String()
	if strings.Contains(out, "eval run") || !strings.Contains(out, "visible") {
		t.Fatalf("progress filter wrong:\n%s", out)
	}
}

func TestLogfSinkAdapter(t *testing.T) {
	if LogfSink(nil) != Null {
		t.Fatal("nil logf must adapt to Null")
	}
	var got []string
	s := LogfSink(func(format string, args ...any) {
		got = append(got, fmt.Sprintf(format, args...))
	})
	if !s.Enabled() {
		t.Fatal("adapter must be enabled")
	}
	s.Emit(Event{Kind: KindFTStage, Stage: 1, Stages: 3, Rate: 0.02})
	s.Emit(Event{Kind: KindEvalRun, Run: 1}) // suppressed
	if len(got) != 1 || !strings.Contains(got[0], "stage 1/3") {
		t.Fatalf("adapter output wrong: %q", got)
	}
}

func TestEventStringCoversKinds(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: KindLog, Msg: "hello"}, "hello"},
		{Event{Kind: KindCacheMiss, Key: "k"}, "training k ..."},
		{Event{Kind: KindCacheWrite, Key: "k"}, "cached: k"},
		{Event{Kind: KindTiming, Phase: "train", Seconds: 2, N: 100}, "train: 2.00s (100 items, 50.0/s)"},
		{Event{Kind: KindEvalRate, Rate: 0.1, Acc: 0.5, N: 8}, "defect eval @Psa=0.1: mean acc 0.5000 over 8 runs"},
		{Event{Kind: "custom.kind"}, "custom.kind"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Fatalf("String(%+v) = %q, want %q", c.e, got, c.want)
		}
	}
}
