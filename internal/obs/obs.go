// Package obs is the run-event observability layer: a typed stream of
// structured events describing what a training or evaluation run is
// doing, consumed by pluggable sinks.
//
// Emitters (internal/core, internal/experiments) publish obs.Event
// values through an obs.Sink threaded in via core.Config.Sink,
// core.DefectEval.Sink and experiments.Env.Sink. Three sink families
// ship with the package:
//
//   - Null: discards everything and reports Enabled() == false, so hot
//     paths skip event construction entirely (allocation-free).
//   - NewJSONL: a schema-versioned machine-readable JSON-Lines writer
//     (the `ftpim -events out.jsonl` backend).
//   - NewProgress / LogfSink: human-oriented renderers; LogfSink is the
//     mechanical migration adapter for code that used the old
//     `logf func(string, ...any)` parameters.
//
// Determinism contract: events observe a run, they never perturb it.
// No emitter draws randomness, mutates weights, or changes float
// accumulation order on behalf of a sink, so results with any sink
// attached are bit-identical to results with none, at every worker
// count. Sinks must be safe for concurrent use: the parallel
// Monte-Carlo evaluator emits eval.run events from worker goroutines.
package obs

import (
	"fmt"
	"sync"
)

// Kind labels one event type.
type Kind string

// Event kinds emitted by the run layer.
const (
	// KindLog is a free-form human-readable message (Msg).
	KindLog Kind = "log"
	// KindTrainEpoch reports one finished training epoch
	// (Epoch, LR, Loss, Acc, EvalAcc, Rate = Psa used this epoch).
	KindTrainEpoch Kind = "train.epoch"
	// KindFTStage reports the start of one progressive-FT ladder stage
	// (Stage/Stages, Rate = the rung's Psa).
	KindFTStage Kind = "ft.stage"
	// KindEvalRun reports one Monte-Carlo defect-evaluation run
	// (Run, Rate, Acc). Emitted from worker goroutines when the
	// evaluator runs parallel, so arrival order is scheduling-dependent;
	// Run identifies the draw regardless of order.
	KindEvalRun Kind = "eval.run"
	// KindEvalRate reports one completed rate of a defect sweep
	// (Rate, Acc = mean, N = runs).
	KindEvalRate Kind = "eval.rate"
	// KindCacheHit / KindCacheMiss / KindCacheWrite trace the trained-
	// model cache (Key = cache key).
	KindCacheHit   Kind = "cache.hit"
	KindCacheMiss  Kind = "cache.miss"
	KindCacheWrite Kind = "cache.write"
	// KindTiming reports a phase's wall clock (Phase, Seconds, N =
	// items processed — samples for training, runs for evaluation).
	// Wall-clock values are the one non-deterministic event field.
	KindTiming Kind = "timing"
	// KindCkptSave reports one crash-safe checkpoint written to disk
	// (Key = file path, Epoch/Stage = training position, N = bytes).
	KindCkptSave Kind = "ckpt.save"
	// KindCkptRestore reports a training run resuming from a checkpoint
	// (Key = file path, Epoch = completed epochs restored, Stage).
	KindCkptRestore Kind = "ckpt.restore"
	// KindCkptCorrupt reports a checkpoint file that failed its
	// checksum or decode and was skipped in favor of an older good one
	// (Key = file path, Msg = reason).
	KindCkptCorrupt Kind = "ckpt.corrupt"
	// KindServeRequest reports one completed HTTP request against the
	// serving API (Phase = route name "infer"/"defect-eval"/"healthz",
	// N = HTTP status code, Seconds = request latency). The JSONL sink
	// therefore doubles as an access log.
	KindServeRequest Kind = "serve.request"
	// KindServeBatch reports one executed inference micro-batch
	// (Run = 1-based batch ordinal, N = requests coalesced into the
	// batch, Seconds = latency from the first request's enqueue to
	// batch completion).
	KindServeBatch Kind = "serve.batch"
	// KindServeDrain reports a completed graceful drain (N = queued
	// requests flushed after the drain began, Seconds = drain wall
	// clock).
	KindServeDrain Kind = "serve.drain"
	// KindDistLease reports one run-range lease issued to a worker
	// (Key = worker id, Run = lease id, Rate = the lease's fault rate,
	// N = runs in the range).
	KindDistLease Kind = "dist.lease"
	// KindDistWorkerJoin reports a worker registering with the
	// coordinator (Key = worker id, N = pool size after the join).
	KindDistWorkerJoin Kind = "dist.worker.join"
	// KindDistWorkerLost reports a worker leaving the pool — connection
	// error, EOF, or process death (Key = worker id, N = pool size
	// after the loss, Msg = reason).
	KindDistWorkerLost Kind = "dist.worker.lost"
	// KindDistReissue reports a lease returned to the pending queue —
	// its worker died, missed its heartbeat deadline, or reported an
	// error (Key = worker id the lease was revoked from, Run = lease
	// id, Rate, N = runs in the range, Msg = reason).
	KindDistReissue Kind = "dist.reissue"
	// KindDistFallback reports the coordinator executing one lease
	// in-process because no workers are available (Run = lease id,
	// Rate, N = runs in the range).
	KindDistFallback Kind = "dist.fallback"
	// KindNumerics is a one-shot startup event recording the process's
	// kernel numerics configuration, so logs from a fleet are
	// attributable to a tier (Phase = active tier, Key = requested
	// tier, Msg = detected CPU features, "" when none).
	KindNumerics Kind = "numerics"
)

// Event is one structured observation of a run. It is a flat value
// type so emitting through an interface does not allocate; only the
// fields relevant to a Kind are set (see the Kind constants). Ordinal
// fields (Epoch, Stage, Run) are 1-based so that zero always means
// "not applicable".
type Event struct {
	Kind    Kind    `json:"kind"`
	Msg     string  `json:"msg,omitempty"`
	Phase   string  `json:"phase,omitempty"`
	Key     string  `json:"key,omitempty"`
	Epoch   int     `json:"epoch,omitempty"`
	Stage   int     `json:"stage,omitempty"`
	Stages  int     `json:"stages,omitempty"`
	Run     int     `json:"run,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	LR      float64 `json:"lr,omitempty"`
	Loss    float64 `json:"loss,omitempty"`
	Acc     float64 `json:"acc,omitempty"`
	EvalAcc float64 `json:"eval_acc,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
	N       int     `json:"n,omitempty"`
}

// String renders the event for human consumption (one line, no
// trailing newline). NewProgress and LogfSink use it.
func (e Event) String() string {
	switch e.Kind {
	case KindLog:
		return e.Msg
	case KindTrainEpoch:
		s := fmt.Sprintf("epoch %3d  lr %.4f  loss %.4f  acc %.4f  psa %g",
			e.Epoch, e.LR, e.Loss, e.Acc, e.Rate)
		if e.EvalAcc > 0 {
			s += fmt.Sprintf("  eval %.4f", e.EvalAcc)
		}
		return s
	case KindFTStage:
		return fmt.Sprintf("progressive stage %d/%d: Psa=%g", e.Stage, e.Stages, e.Rate)
	case KindEvalRun:
		return fmt.Sprintf("eval run %d @Psa=%g: acc %.4f", e.Run, e.Rate, e.Acc)
	case KindEvalRate:
		return fmt.Sprintf("defect eval @Psa=%g: mean acc %.4f over %d runs", e.Rate, e.Acc, e.N)
	case KindCacheHit:
		return "cache hit: " + e.Key
	case KindCacheMiss:
		return "training " + e.Key + " ..."
	case KindCacheWrite:
		return "cached: " + e.Key
	case KindTiming:
		if e.Seconds > 0 && e.N > 0 {
			return fmt.Sprintf("%s: %.2fs (%d items, %.1f/s)",
				e.Phase, e.Seconds, e.N, float64(e.N)/e.Seconds)
		}
		return fmt.Sprintf("%s: %.2fs", e.Phase, e.Seconds)
	case KindCkptSave:
		return fmt.Sprintf("checkpoint saved: %s (epoch %d, %d bytes)", e.Key, e.Epoch, e.N)
	case KindCkptRestore:
		return fmt.Sprintf("resumed from checkpoint %s (epoch %d, stage %d)", e.Key, e.Epoch, e.Stage)
	case KindCkptCorrupt:
		return fmt.Sprintf("corrupt checkpoint %s skipped: %s", e.Key, e.Msg)
	case KindServeRequest:
		return fmt.Sprintf("serve %s: HTTP %d in %.2fms", e.Phase, e.N, e.Seconds*1000)
	case KindServeBatch:
		return fmt.Sprintf("serve batch %d: %d request(s) in %.2fms", e.Run, e.N, e.Seconds*1000)
	case KindServeDrain:
		return fmt.Sprintf("serve drain: %d queued request(s) flushed in %.2fms", e.N, e.Seconds*1000)
	case KindDistLease:
		return fmt.Sprintf("lease %d -> %s: %d run(s) @Psa=%g", e.Run, e.Key, e.N, e.Rate)
	case KindDistWorkerJoin:
		return fmt.Sprintf("worker %s joined (pool %d)", e.Key, e.N)
	case KindDistWorkerLost:
		return fmt.Sprintf("worker %s lost (pool %d): %s", e.Key, e.N, e.Msg)
	case KindDistReissue:
		return fmt.Sprintf("lease %d reissued from %s (%d run(s) @Psa=%g): %s", e.Run, e.Key, e.N, e.Rate, e.Msg)
	case KindDistFallback:
		return fmt.Sprintf("lease %d executed in-process: %d run(s) @Psa=%g", e.Run, e.N, e.Rate)
	case KindNumerics:
		cpu := e.Msg
		if cpu == "" {
			cpu = "none"
		}
		s := fmt.Sprintf("numerics: %s tier (cpu: %s)", e.Phase, cpu)
		if e.Key != "" && e.Key != e.Phase {
			s += fmt.Sprintf(" — %s requested but unavailable", e.Key)
		}
		return s
	}
	if e.Msg != "" {
		return string(e.Kind) + ": " + e.Msg
	}
	return string(e.Kind)
}

// Sink consumes run events. Implementations must be safe for
// concurrent use (the parallel evaluator emits from several
// goroutines) and must not block for long — emitters call Emit
// synchronously on the run path.
type Sink interface {
	// Emit consumes one event.
	Emit(Event)
	// Enabled reports whether events are consumed at all. Hot paths
	// check it before building an event, so the Null sink costs
	// nothing.
	Enabled() bool
}

type nullSink struct{}

func (nullSink) Emit(Event)    {}
func (nullSink) Enabled() bool { return false }

// Null discards every event. It is the resolution of a nil sink
// everywhere a Sink is accepted.
var Null Sink = nullSink{}

// Or resolves a possibly-nil sink to a usable one (nil → Null).
func Or(s Sink) Sink {
	if s == nil {
		return Null
	}
	return s
}

// Logf formats and emits a KindLog event. The format call is skipped
// entirely when the sink is nil or disabled, so callers may leave
// Logf calls on hot-ish paths.
func Logf(s Sink, format string, args ...any) {
	if s == nil || !s.Enabled() {
		return
	}
	s.Emit(Event{Kind: KindLog, Msg: fmt.Sprintf(format, args...)})
}

// Multi fans every event out to several sinks in order. Nil and Null
// members are dropped; with none left it returns Null, with one it
// returns that sink unwrapped.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil && s != Null {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return Null
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Enabled() bool { return true }

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Recorder is a Sink that stores every event in memory, for tests and
// programmatic inspection. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Enabled implements Sink.
func (r *Recorder) Enabled() bool { return true }

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Count returns how many events of the given kind were recorded
// ("" counts everything).
func (r *Recorder) Count(kind Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if kind == "" {
		return len(r.events)
	}
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
