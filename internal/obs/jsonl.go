package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SchemaVersion identifies the JSONL event schema. Every line written
// by a JSONL sink carries it in a "schema" field; consumers must check
// it before interpreting the rest of the record. Bump it on any
// incompatible field change.
const SchemaVersion = "ftpim.events/v1"

// JSONL writes one schema-versioned JSON object per event to an
// io.Writer — the machine-readable record behind the ftpim `-events`
// flag. Lines are written atomically under a mutex, so one JSONL sink
// may serve concurrent emitters.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

// NewJSONL returns a JSONL sink writing to w. Records are stamped with
// wall-clock time; use SetClock to override (or disable) the clock.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, now: time.Now}
}

// SetClock replaces the timestamp source. A nil clock omits the "t"
// field entirely, which is what golden-file tests use to keep the
// stream byte-deterministic.
func (j *JSONL) SetClock(now func() time.Time) {
	j.mu.Lock()
	j.now = now
	j.mu.Unlock()
}

// Enabled implements Sink.
func (j *JSONL) Enabled() bool { return true }

// jsonlRecord wraps an Event with the schema envelope. The embedded
// Event flattens into the same JSON object.
type jsonlRecord struct {
	Schema string `json:"schema"`
	T      string `json:"t,omitempty"`
	Event
}

// Emit implements Sink. Marshalling failures are impossible for the
// plain-value Event type; write errors are deliberately swallowed —
// observability must never take down the run it observes.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := jsonlRecord{Schema: SchemaVersion, Event: e}
	if j.now != nil {
		rec.T = j.now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	j.w.Write(append(b, '\n'))
}
