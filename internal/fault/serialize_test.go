package fault

import (
	"bytes"
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

func TestDeviceMapSaveLoadRoundTrip(t *testing.T) {
	r := tensor.NewRNG(31)
	ts := randTensors(r, 300, 70)
	dm := DrawDeviceMap(r.Stream("dev"), ChenModel(), ts, 0.08)

	var buf bytes.Buffer
	if err := dm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dm2, err := LoadDeviceMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dm2.Psa != dm.Psa || dm2.NumFaults() != dm.NumFaults() {
		t.Fatalf("metadata mismatch: %v/%d vs %v/%d", dm2.Psa, dm2.NumFaults(), dm.Psa, dm.NumFaults())
	}
	// Applying both maps must produce identical weights.
	l1 := dm.Apply(ts)
	after1 := []*tensor.Tensor{ts[0].Clone(), ts[1].Clone()}
	l1.Undo()
	l2 := dm2.Apply(ts)
	if !ts[0].Equal(after1[0]) || !ts[1].Equal(after1[1]) {
		t.Fatal("loaded map applies differently")
	}
	l2.Undo()
}

func TestDeviceMapSaveLoadEmpty(t *testing.T) {
	r := tensor.NewRNG(32)
	ts := randTensors(r, 50)
	dm := DrawDeviceMap(r.Stream("dev"), ChenModel(), ts, 0) // no faults
	var buf bytes.Buffer
	if err := dm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dm2, err := LoadDeviceMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dm2.NumFaults() != 0 {
		t.Fatal("empty map should stay empty")
	}
	dm2.Apply(ts).Undo() // and still apply cleanly
}

// Serialize→deserialize→serialize must be a byte-identical fixed
// point: archived defect profiles can be re-saved (e.g. migrated or
// checkpointed) without ever drifting from the station's original
// measurement.
func TestDeviceMapSerializeFixedPoint(t *testing.T) {
	for _, tc := range []struct {
		seed  uint64
		rate  float64
		sizes []int
	}{
		{41, 0, []int{30}},
		{42, 0.02, []int{256, 64, 10}},
		{43, 0.1, []int{300, 70}},
		{44, 0.5, []int{17, 1, 99}},
	} {
		r := tensor.NewRNG(tc.seed)
		ts := randTensors(r, tc.sizes...)
		dm := DrawDeviceMap(r.Stream("dev"), ChenModel(), ts, tc.rate)

		var b1 bytes.Buffer
		if err := dm.Save(&b1); err != nil {
			t.Fatal(err)
		}
		dm2, err := LoadDeviceMap(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var b2 bytes.Buffer
		if err := dm2.Save(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("seed=%d rate=%v: save∘load∘save changed the encoding (%d vs %d bytes)",
				tc.seed, tc.rate, b1.Len(), b2.Len())
		}
		// One more round for good measure: the loaded-and-resaved bytes
		// must themselves be a fixed point.
		dm3, err := LoadDeviceMap(bytes.NewReader(b2.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var b3 bytes.Buffer
		if err := dm3.Save(&b3); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
			t.Fatalf("seed=%d rate=%v: second round trip not byte-identical", tc.seed, tc.rate)
		}
	}
}

func TestLoadDeviceMapGarbage(t *testing.T) {
	if _, err := LoadDeviceMap(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("expected error on garbage")
	}
}

func TestLoadDeviceMapOutOfRangeIndex(t *testing.T) {
	// Hand-craft a wire struct with a bad index via the public API:
	// save a valid map, then corrupt the payload is brittle; instead
	// encode a wire with the same gob type name through Save's path by
	// constructing a DeviceMap whose shape shrank.
	r := tensor.NewRNG(33)
	ts := randTensors(r, 100)
	dm := DrawDeviceMap(r.Stream("dev"), ChenModel(), ts, 0.2)
	if dm.NumFaults() == 0 {
		t.Skip("no faults drawn")
	}
	dm.shapes[0] = []int{1} // pretend the tensor is tiny
	var buf bytes.Buffer
	if err := dm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDeviceMap(&buf); err == nil {
		t.Fatal("expected out-of-range index error")
	}
}
