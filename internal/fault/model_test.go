package fault

import (
	"math"
	"testing"
)

func TestModelIsZero(t *testing.T) {
	if !(Model{}).IsZero() {
		t.Fatal("zero value must report IsZero")
	}
	for _, m := range []Model{
		ChenModel(),
		{Ratio0: 1},
		{Ratio1: 1},
		{Ratio0: -1, Ratio1: 2},
	} {
		if m.IsZero() {
			t.Fatalf("%+v must not report IsZero", m)
		}
	}
}

func TestModelValidate(t *testing.T) {
	valid := []Model{
		ChenModel(),
		{Ratio0: 1, Ratio1: 0}, // all faults of one kind is a legal choice
		{Ratio0: 0, Ratio1: 3},
		{Ratio0: 0.5, Ratio1: 0.5},
	}
	for _, m := range valid {
		if err := m.Validate(); err != nil {
			t.Fatalf("%+v should validate, got %v", m, err)
		}
	}
	invalid := []Model{
		{},                        // degenerate: ratios sum to zero
		{Ratio0: -1, Ratio1: 2},   // negative ratio
		{Ratio0: 1, Ratio1: -0.5}, // negative ratio
		{Ratio0: math.NaN(), Ratio1: 1},
		{Ratio0: 1, Ratio1: math.Inf(1)},
	}
	for _, m := range invalid {
		if err := m.Validate(); err == nil {
			t.Fatalf("%+v should fail validation", m)
		}
	}
}
