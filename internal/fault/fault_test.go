package fault

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ftpim/ftpim/internal/tensor"
)

func randTensors(r *tensor.RNG, sizes ...int) []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, n := range sizes {
		t := tensor.New(n)
		tensor.FillNormal(t, r, 0, 1)
		ts = append(ts, t)
	}
	return ts
}

func TestChenModelSplit(t *testing.T) {
	m := ChenModel()
	p0, p1 := m.Split(0.1079) // 1.75 + 9.04 = 10.79 scale
	if math.Abs(p0-0.0175) > 1e-9 || math.Abs(p1-0.0904) > 1e-9 {
		t.Fatalf("split = %v %v, want 0.0175 0.0904", p0, p1)
	}
	if math.Abs(m.P1()-9.04/10.79) > 1e-12 {
		t.Fatalf("P1=%v", m.P1())
	}
}

func TestSplitSumsToTotal(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		psa := r.Float64()
		p0, p1 := ChenModel().Split(psa)
		return math.Abs(p0+p1-psa) < 1e-12 && p0 >= 0 && p1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInjectZeroRateIsIdentity(t *testing.T) {
	r := tensor.NewRNG(1)
	ts := randTensors(r, 100, 50)
	orig := []*tensor.Tensor{ts[0].Clone(), ts[1].Clone()}
	inj := NewInjector(ChenModel(), ts)
	l := inj.Inject(r.Stream("f"), 0)
	if !ts[0].Equal(orig[0]) || !ts[1].Equal(orig[1]) {
		t.Fatal("psa=0 must not change weights")
	}
	if sa0, sa1 := l.Counts(); sa0 != 0 || sa1 != 0 {
		t.Fatal("psa=0 must inject nothing")
	}
	l.Undo() // must be safe
}

func TestInjectUndoRestoresExactly(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		ts := randTensors(r, 200, 37, 113)
		orig := make([]*tensor.Tensor, len(ts))
		for i, tt := range ts {
			orig[i] = tt.Clone()
		}
		inj := NewInjector(ChenModel(), ts)
		psa := 0.3 * r.Float64()
		l := inj.Inject(r.Stream("f"), psa)
		l.Undo()
		for i := range ts {
			if !ts[i].Equal(orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInjectRateMatchesTarget(t *testing.T) {
	r := tensor.NewRNG(2)
	ts := randTensors(r, 200_000)
	inj := NewInjector(ChenModel(), ts)
	for _, psa := range []float64{0.001, 0.01, 0.1} {
		l := inj.Inject(r.Stream("f"), psa)
		got := l.Rate()
		// Binomial std dev ≈ sqrt(psa/n); allow 6 sigma.
		tol := 6 * math.Sqrt(psa/200_000)
		if math.Abs(got-psa) > tol {
			t.Fatalf("rate %v, want %v ± %v", got, psa, tol)
		}
		l.Undo()
	}
}

func TestInjectKindRatio(t *testing.T) {
	r := tensor.NewRNG(3)
	ts := randTensors(r, 500_000)
	inj := NewInjector(ChenModel(), ts)
	l := inj.Inject(r.Stream("f"), 0.05)
	sa0, sa1 := l.Counts()
	gotP1 := float64(sa1) / float64(sa0+sa1)
	if math.Abs(gotP1-9.04/10.79) > 0.01 {
		t.Fatalf("SA1 fraction %v, want ≈%v", gotP1, 9.04/10.79)
	}
	l.Undo()
}

func TestInjectedValuesAreZeroOrWmax(t *testing.T) {
	r := tensor.NewRNG(4)
	ts := randTensors(r, 5000)
	wmax := ts[0].MaxAbs()
	orig := ts[0].Clone()
	inj := NewInjector(ChenModel(), ts)
	inj.Inject(r.Stream("f"), 0.1)
	for i, v := range ts[0].Data() {
		if v == orig.Data()[i] {
			continue // untouched
		}
		if v != 0 && v != wmax && v != -wmax {
			t.Fatalf("faulted weight %v is neither 0 nor ±wmax(%v)", v, wmax)
		}
	}
}

func TestInjectPerTensorWmax(t *testing.T) {
	// Each tensor must use its own scale.
	r := tensor.NewRNG(5)
	small := tensor.Full(0.1, 1000)
	big := tensor.Full(10, 1000)
	inj := NewInjector(Model{Ratio0: 0, Ratio1: 1}, []*tensor.Tensor{small, big}) // all SA1
	inj.Inject(r.Stream("f"), 0.2)
	for _, v := range small.Data() {
		if v != 0.1 && v != -0.1 {
			t.Fatalf("small tensor got foreign scale value %v", v)
		}
	}
	for _, v := range big.Data() {
		if v != 10 && v != -10 {
			t.Fatalf("big tensor got foreign scale value %v", v)
		}
	}
}

func TestInjectDeterministicGivenStream(t *testing.T) {
	r1, r2 := tensor.NewRNG(6), tensor.NewRNG(6)
	ts1 := randTensors(r1, 1000)
	ts2 := randTensors(r2, 1000)
	NewInjector(ChenModel(), ts1).Inject(r1.Stream("f"), 0.05)
	NewInjector(ChenModel(), ts2).Inject(r2.Stream("f"), 0.05)
	if !ts1[0].Equal(ts2[0]) {
		t.Fatal("same stream must inject identically")
	}
}

func TestInjectBadRatePanics(t *testing.T) {
	r := tensor.NewRNG(7)
	inj := NewInjector(ChenModel(), randTensors(r, 10))
	for _, bad := range []float64{-0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for psa=%v", bad)
				}
			}()
			inj.Inject(r, bad)
		}()
	}
}

func TestNumWeights(t *testing.T) {
	r := tensor.NewRNG(8)
	inj := NewInjector(ChenModel(), randTensors(r, 10, 20, 30))
	if inj.NumWeights() != 60 {
		t.Fatalf("NumWeights=%d", inj.NumWeights())
	}
}

func TestDeviceMapStableAcrossApplies(t *testing.T) {
	r := tensor.NewRNG(9)
	ts := randTensors(r, 2000)
	dm := DrawDeviceMap(r.Stream("dev"), ChenModel(), ts, 0.05)
	l1 := dm.Apply(ts)
	after1 := ts[0].Clone()
	l1.Undo()
	l2 := dm.Apply(ts)
	if !ts[0].Equal(after1) {
		t.Fatal("same device map must pin the same cells to the same values")
	}
	l2.Undo()
}

func TestDeviceMapUndo(t *testing.T) {
	r := tensor.NewRNG(10)
	ts := randTensors(r, 500)
	orig := ts[0].Clone()
	dm := DrawDeviceMap(r.Stream("dev"), ChenModel(), ts, 0.1)
	l := dm.Apply(ts)
	if ts[0].Equal(orig) && dm.NumFaults() > 0 {
		t.Fatal("apply should change weights") // sanity
	}
	l.Undo()
	if !ts[0].Equal(orig) {
		t.Fatal("undo must restore")
	}
}

func TestDeviceMapTracksCurrentWmax(t *testing.T) {
	r := tensor.NewRNG(11)
	ts := []*tensor.Tensor{tensor.Full(1, 100)}
	dm := DrawDeviceMap(r.Stream("dev"), Model{Ratio0: 0, Ratio1: 1}, ts, 0.3)
	ts[0].Scale(5) // reprogram with new scale
	dm.Apply(ts)
	for _, v := range ts[0].Data() {
		if v != 5 && v != -5 {
			t.Fatalf("SA1 should saturate at current wmax 5, got %v", v)
		}
	}
}

func TestDeviceMapMask(t *testing.T) {
	r := tensor.NewRNG(12)
	ts := randTensors(r, 1000)
	dm := DrawDeviceMap(r.Stream("dev"), ChenModel(), ts, 0.05)
	mask := dm.Mask(0)
	healthy, faulty := 0, 0
	for _, m := range mask {
		if m == -1 {
			healthy++
		} else {
			faulty++
		}
	}
	if faulty != dm.NumFaults() {
		t.Fatalf("mask faults %d != map faults %d", faulty, dm.NumFaults())
	}
	if healthy+faulty != 1000 {
		t.Fatal("mask length wrong")
	}
}

func TestDeviceMapShapeMismatchPanics(t *testing.T) {
	r := tensor.NewRNG(13)
	ts := randTensors(r, 100)
	dm := DrawDeviceMap(r.Stream("dev"), ChenModel(), ts, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong shape")
		}
	}()
	dm.Apply(randTensors(r, 101))
}

func TestKindString(t *testing.T) {
	if SA0.String() != "SA0" || SA1.String() != "SA1" {
		t.Fatal("Kind strings wrong")
	}
}

func TestLesionDoubleUndoSafe(t *testing.T) {
	r := tensor.NewRNG(14)
	ts := randTensors(r, 100)
	orig := ts[0].Clone()
	inj := NewInjector(ChenModel(), ts)
	l := inj.Inject(r.Stream("f"), 0.2)
	l.Undo()
	l.Undo() // second undo must be a no-op
	if !ts[0].Equal(orig) {
		t.Fatal("double undo corrupted weights")
	}
}
