package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Scenario is one fault distribution over crossbar-mapped weight
// tensors. The engine never hard-codes a distribution: evaluation
// (core.DefectEval), fault-tolerant training (core.Config), the CLI
// (-fault) and the HTTP API (the "scenario" request field) all select a
// Scenario, by value or by spec string through Parse.
//
// A Scenario is an immutable description; all mutable injection state
// lives in the Injector it constructs, so one Scenario value may be
// shared by any number of workers.
type Scenario interface {
	// Spec returns the canonical spec string of the scenario, e.g.
	// "chen:r0=1.75,r1=9.04". Parse(s.Spec()) reconstructs an
	// equivalent scenario (spec round-trip is pinned by tests).
	Spec() string

	// Validate reports whether the scenario's parameters are usable.
	// Parse validates before returning; programmatically constructed
	// scenarios are validated by core.Normalize.
	Validate() error

	// NewInjector binds the scenario to a set of weight tensors,
	// returning the per-worker injection state. Each evaluation worker
	// (and each pooled clone) gets its own injector.
	NewInjector(ts []*tensor.Tensor) Injector

	// DrawMap samples one persistent defect pattern at per-cell rate
	// psa — the "manufactured device" view of the scenario, used by
	// training-time injection and the mass-production fleet flow. For
	// transient scenarios the map is one momentary snapshot.
	DrawMap(rng *tensor.RNG, ts []*tensor.Tensor, psa float64) *DeviceMap

	// Transient reports whether lesions are redrawn per forward pass
	// (per evaluation batch, per training mini-batch) instead of held
	// fixed for a whole Monte-Carlo run or epoch.
	Transient() bool
}

// Injector draws and applies lesions of one Scenario over one fixed set
// of weight tensors.
//
// Reuse contract: an injector recycles ONE lesion record. The *Lesion
// returned by an Inject* call is owned by the injector; the caller runs
// the inject → evaluate → Undo cycle and must not retain the lesion
// past the next Inject* call, which may recycle the undone record in
// place. This is what keeps the warm defect-evaluation loop within its
// 2-allocation budget (see the root alloc_test.go suite).
//
// Positional RNG contract: the lesion for (seed, run) — and, for
// transient scenarios, (seed, run, step) — depends only on those
// coordinates, never on which goroutine draws it or how many draws came
// before. Serial and parallel evaluation therefore construct identical
// lesions at any worker count.
//
// An Injector is not safe for concurrent use; the parallel protocol in
// internal/core gives every worker its own injector over its own clone.
type Injector interface {
	// InjectRun applies the lesion of Monte-Carlo run (seed, run) at
	// rate psa and returns it for undo.
	InjectRun(seed uint64, run int, psa float64) *Lesion

	// InjectStep applies the lesion of forward pass step within run
	// (seed, run, step) at rate psa — the per-inference draw of
	// transient scenarios. Persistent scenarios implement it too (the
	// position is well-defined), but the engine only calls it when
	// Scenario.Transient() is true.
	InjectStep(seed uint64, run, step int, psa float64) *Lesion

	// NumWeights returns the total number of weight elements covered.
	NumWeights() int
}

// stepSeed derives the positional stream seed of forward pass `step`
// within Monte-Carlo run `run`: the run stream (RunRNG) re-keyed by the
// inference index. This is the RNG positioning rule every transient
// injector must follow so that per-batch draws stay bit-identical at
// any worker count.
func stepSeed(seed uint64, run, step int) uint64 {
	return tensor.StreamSeedN(tensor.StreamSeedN(seed, "defect-run", run), "inference", step)
}

// Builder constructs a Scenario from the key=value parameters of a spec
// string. Every parameter the builder understands must be deleted from
// params; Parse rejects specs with leftover (unknown) keys.
type Builder func(params map[string]string) (Scenario, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// Register adds a scenario builder under the given spec name. It
// panics on an empty or duplicate name — registration happens in
// package init functions, where failing loudly is the only useful
// behavior.
func Register(name string, build Builder) {
	if name == "" || strings.ContainsAny(name, ":,= \t\n") {
		panic(fmt.Sprintf("fault: invalid scenario name %q", name))
	}
	if build == nil {
		panic("fault: nil scenario builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("fault: scenario %q registered twice", name))
	}
	registry[name] = build
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse resolves a scenario spec string of the form
//
//	name[:key=value,key=value,...]
//
// against the registry, e.g. "chen", "chen:r0=1,r1=1", "transient",
// "cluster:len=8", "drop". The returned scenario has been validated.
// Errors name the offending token and list the registered scenarios,
// so a CLI or API caller can fix the spec without reading source.
func Parse(spec string) (Scenario, error) {
	name, rest, hasParams := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	registryMu.RLock()
	build, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fault: unknown scenario %q (registered: %s; spec syntax: name[:key=value,...])",
			name, strings.Join(Names(), ", "))
	}
	params := map[string]string{}
	if hasParams {
		if strings.TrimSpace(rest) == "" {
			return nil, fmt.Errorf("fault: scenario %q: empty parameter list after ':'", name)
		}
		for _, kv := range strings.Split(rest, ",") {
			k, v, found := strings.Cut(kv, "=")
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !found || k == "" || v == "" {
				return nil, fmt.Errorf("fault: scenario %q: malformed parameter %q (want key=value)", name, kv)
			}
			if _, dup := params[k]; dup {
				return nil, fmt.Errorf("fault: scenario %q: duplicate parameter %q", name, k)
			}
			params[k] = v
		}
	}
	sc, err := build(params)
	if err != nil {
		return nil, fmt.Errorf("fault: scenario %q: %w", name, err)
	}
	if len(params) > 0 {
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("fault: scenario %q: unknown parameter(s) %s", name, strings.Join(keys, ", "))
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// MustParse is Parse for specs known valid at compile time; it panics
// on error.
func MustParse(spec string) Scenario {
	sc, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return sc
}

// Default returns the scenario the engine uses when none is selected:
// the paper's Chen-ratio stuck-at distribution.
func Default() Scenario { return Chen() }

// popFloat consumes params[key] as a float64, or returns def when the
// key is absent. Used by scenario builders.
func popFloat(params map[string]string, key string, def float64) (float64, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	delete(params, key)
	var f float64
	if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not a number", key, v)
	}
	return f, nil
}

// popInt consumes params[key] as an int, or returns def when absent.
func popInt(params map[string]string, key string, def int) (int, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	delete(params, key)
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", key, v)
	}
	return n, nil
}
