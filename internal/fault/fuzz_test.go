package fault

import (
	"bytes"
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

func deviceMapBytes(dm *DeviceMap) []byte {
	var buf bytes.Buffer
	if err := dm.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzLoadDeviceMap feeds arbitrary bytes to the profile decoder: it
// must reject or accept without panicking, and accepted maps must
// survive a save/load/save round-trip unchanged.
func FuzzLoadDeviceMap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	r := tensor.NewRNG(3)
	ts := []*tensor.Tensor{tensor.New(6, 9), tensor.New(20)}
	for _, t := range ts {
		tensor.FillNormal(t, r, 0, 1)
	}
	f.Add(deviceMapBytes(DrawDeviceMap(r.Stream("a"), ChenModel(), ts, 0.1)))
	f.Add(deviceMapBytes(DrawDeviceMap(r.Stream("b"), Uniform(), ts, 0)))

	f.Fuzz(func(t *testing.T, data []byte) {
		dm, err := LoadDeviceMap(bytes.NewReader(data))
		if err != nil {
			return
		}
		b1 := deviceMapBytes(dm)
		dm2, err := LoadDeviceMap(bytes.NewReader(b1))
		if err != nil {
			t.Fatalf("re-load of accepted map failed: %v", err)
		}
		if dm2.NumFaults() != dm.NumFaults() || dm2.Psa != dm.Psa {
			t.Fatalf("round-trip changed map: %d/%g vs %d/%g",
				dm2.NumFaults(), dm2.Psa, dm.NumFaults(), dm.Psa)
		}
		if !bytes.Equal(b1, deviceMapBytes(dm2)) {
			t.Fatal("device-map serialization is not stable")
		}
	})
}

// FuzzParseScenario feeds arbitrary spec strings to the scenario
// parser: it must accept or reject without panicking, and every
// accepted scenario must have a canonical spec that round-trips to an
// equivalent scenario.
func FuzzParseScenario(f *testing.F) {
	f.Add("chen")
	f.Add("chen:r0=1.75,r1=9.04")
	f.Add("transient:r0=1")
	f.Add("cluster:len=8,tile=128")
	f.Add("drop")
	f.Add("cluster:len=-1")
	f.Add("chen:r0=NaN")
	f.Add("chen:r0=1e999")
	f.Add(":::===,,,")
	f.Add("chen:r0=1,r0=2")
	f.Add("  chen  :  r0 = 1 ")

	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := Parse(spec)
		if err != nil {
			if sc != nil {
				t.Fatalf("Parse(%q) returned both a scenario and error %v", spec, err)
			}
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned an invalid scenario: %v", spec, err)
		}
		canon := sc.Spec()
		sc2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if sc2.Spec() != canon {
			t.Fatalf("canonical spec is not a fixed point: %q -> %q", canon, sc2.Spec())
		}
		if sc2.Transient() != sc.Transient() {
			t.Fatalf("spec %q: Transient() not preserved by round-trip", spec)
		}
	})
}

// FuzzDeviceMapRoundTrip draws device maps from fuzzed seeds and rates
// over fuzzed tensor shapes and checks the profile archive round-trip
// reproduces the exact defect pattern (same faults applied to the same
// weights give the same lesion counts and weight values).
func FuzzDeviceMapRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(5), uint8(7))
	f.Add(uint64(99), uint8(0), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(255), uint8(16), uint8(3))

	f.Fuzz(func(t *testing.T, seed uint64, rate, d0, d1 uint8) {
		psa := float64(rate) / 255
		rows, cols := int(d0%16)+1, int(d1%16)+1
		r := tensor.NewRNG(seed)
		w1 := tensor.New(rows, cols)
		w2 := tensor.New(cols)
		tensor.FillNormal(w1, r, 0, 1)
		tensor.FillNormal(w2, r, 0, 1)
		ts := []*tensor.Tensor{w1, w2}

		dm := DrawDeviceMap(r.Stream("draw"), ChenModel(), ts, psa)
		loaded, err := LoadDeviceMap(bytes.NewReader(deviceMapBytes(dm)))
		if err != nil {
			t.Fatalf("load of freshly saved map failed: %v", err)
		}

		apply := func(m *DeviceMap) ([]float32, int, int) {
			lesion := m.Apply(ts)
			defer lesion.Undo()
			snap := append(append([]float32(nil), w1.Data()...), w2.Data()...)
			sa0, sa1 := lesion.Counts()
			return snap, sa0, sa1
		}
		wantW, want0, want1 := apply(dm)
		gotW, got0, got1 := apply(loaded)
		if got0 != want0 || got1 != want1 {
			t.Fatalf("fault counts differ after round-trip: %d/%d vs %d/%d", got0, got1, want0, want1)
		}
		for i := range wantW {
			if wantW[i] != gotW[i] {
				t.Fatal("round-tripped map produced different faulted weights")
			}
		}
	})
}
