// Package fault implements weight-level ReRAM fault scenarios.
//
// The paper's model — and this package's default Scenario — is the
// independent stuck-at distribution: every weight cell fails with
// probability Psa, splitting into stuck-off (SA0) and stuck-on (SA1)
// faults at the empirically reported ratio 1.75 : 9.04 (Chen et al.,
// march-test RRAM defect modeling [23]).
//
// A stuck-off cell reads as minimum conductance — the weight drops to
// zero. A stuck-on cell reads as maximum conductance — under the
// differential two-cell mapping the weight is dragged to +wmax or
// −wmax depending on which cell of the pair sticks, so the sign is
// drawn uniformly. Because most faults are stuck-on, even small Psa
// scatters full-magnitude outliers through the weight tensor, which is
// what collapses the baseline models in Table I.
//
// Beyond the default, fault distributions are pluggable: the Scenario
// interface plus the Register/Parse registry let callers select
// alternative models by spec string — "transient" (fresh lesion per
// forward pass), "cluster" (row-burst spatially-correlated defects),
// "drop" (SA0-only transient drops, the injection half of drop-connect
// fault-tolerant training). See scenario.go and the DESIGN.md section
// "Fault scenarios and FT schemes".
package fault

import (
	"fmt"
	"math"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Kind labels one stuck-at fault.
type Kind uint8

// Fault kinds.
const (
	SA0 Kind = iota // stuck-off: weight → 0
	SA1             // stuck-on: weight → ±wmax
)

func (k Kind) String() string {
	if k == SA0 {
		return "SA0"
	}
	return "SA1"
}

// Model fixes the SA0/SA1 split of the overall stuck-at rate.
//
// Deprecated-ish: Model survives as the parameter block of the
// stuck-at scenario family, but code outside this package should not
// build Model literals — use NewModel, ChenModel, Uniform, or a
// Scenario spec string instead (enforced by the repo-root API-guard
// test).
type Model struct {
	// Ratio0 and Ratio1 are the relative weights of SA0 and SA1.
	// Only their ratio matters; they are normalized internally.
	Ratio0, Ratio1 float64
}

// NewModel builds a stuck-at mix with the given SA0/SA1 relative
// weights. It is the only sanctioned way for code outside this package
// to construct a custom Model value.
func NewModel(ratio0, ratio1 float64) Model {
	return Model{Ratio0: ratio0, Ratio1: ratio1}
}

// ChenModel returns the fault mix measured by Chen et al. [23] and
// adopted by the paper: Psa0 : Psa1 = 1.75 : 9.04.
func ChenModel() Model { return Model{Ratio0: 1.75, Ratio1: 9.04} }

// IsZero reports whether m is the zero value, i.e. no model was
// chosen. Configuration structs (core.Config, core.DefectEval) resolve
// a zero model to ChenModel(); any explicitly set model — including a
// half-zero one like {Ratio0: 1, Ratio1: 0} — is used as given and
// must pass Validate.
func (m Model) IsZero() bool { return m == Model{} }

// Validate checks that an explicitly set (non-zero) model is usable:
// both ratios must be finite and non-negative, and their sum positive.
// A model with exactly one zero ratio is valid — it means all faults
// are of the other kind. Callers resolving defaults should check
// IsZero first; a zero model is "unset", not invalid.
func (m Model) Validate() error {
	if math.IsNaN(m.Ratio0) || math.IsNaN(m.Ratio1) ||
		math.IsInf(m.Ratio0, 0) || math.IsInf(m.Ratio1, 0) {
		return fmt.Errorf("fault: non-finite ratio in model %+v", m)
	}
	if m.Ratio0 < 0 || m.Ratio1 < 0 {
		return fmt.Errorf("fault: negative ratio in model %+v", m)
	}
	if m.Ratio0+m.Ratio1 <= 0 {
		return fmt.Errorf("fault: degenerate model %+v (ratios sum to zero)", m)
	}
	return nil
}

// Uniform returns a model with equal SA0/SA1 probability, used by
// ablations.
func Uniform() Model { return Model{Ratio0: 1, Ratio1: 1} }

// P1 returns the conditional probability that a fault is stuck-on.
func (m Model) P1() float64 {
	s := m.Ratio0 + m.Ratio1
	if s <= 0 {
		panic(fmt.Sprintf("fault: degenerate model %+v", m))
	}
	return m.Ratio1 / s
}

// Split decomposes a total stuck-at rate into (psa0, psa1).
func (m Model) Split(psa float64) (psa0, psa1 float64) {
	p1 := m.P1()
	return psa * (1 - p1), psa * p1
}

// entry records one applied fault for undo.
type entry struct {
	idx int32
	old float32
}

// Lesion is the undoable record of one fault-injection pass over a set
// of weight tensors. Undo restores the exact pre-injection weights.
type Lesion struct {
	tensors []*tensor.Tensor
	undo    [][]entry
	nSA0    int
	nSA1    int
	total   int  // total weight elements covered
	spent   bool // Undo has run; the record may be recycled
}

// Counts returns the number of injected SA0 and SA1 faults.
func (l *Lesion) Counts() (sa0, sa1 int) { return l.nSA0, l.nSA1 }

// Rate returns the realized fault fraction over the covered weights.
func (l *Lesion) Rate() float64 {
	if l.total == 0 {
		return 0
	}
	return float64(l.nSA0+l.nSA1) / float64(l.total)
}

// Undo restores every faulted weight to its original value. Safe to
// call exactly once; an immediate second call is a no-op. An undone
// lesion may be recycled by the next Inject on the same injector, so
// callers must not retain it past that point.
func (l *Lesion) Undo() {
	for ti, t := range l.tensors {
		d := t.Data()
		es := l.undo[ti]
		// Reverse order so double-faulted cells restore correctly.
		for i := len(es) - 1; i >= 0; i-- {
			d[es[i].idx] = es[i].old
		}
		l.undo[ti] = es[:0]
	}
	l.spent = true
}

// recycleLesion returns prev reset over ts when prev is an undone
// record that may be reused (the steady-state inject→eval→undo loop),
// or nil when the caller must allocate a fresh one (overlapping live
// lesions).
func recycleLesion(prev *Lesion, ts []*tensor.Tensor) *Lesion {
	if prev == nil || !prev.spent {
		return nil
	}
	prev.tensors = ts
	prev.nSA0, prev.nSA1, prev.total = 0, 0, 0
	prev.spent = false
	for len(prev.undo) < len(ts) {
		prev.undo = append(prev.undo, nil)
	}
	prev.undo = prev.undo[:len(ts)]
	return prev
}

// newLesion allocates a fresh lesion record over ts.
func newLesion(ts []*tensor.Tensor) *Lesion {
	return &Lesion{tensors: ts, undo: make([][]entry, len(ts))}
}

// StuckAtInjector draws independent stuck-at faults over a set of
// weight tensors. It is the Injector of the "chen", "transient", and
// "drop" scenarios.
//
// Each tensor uses its own symmetric range [−wmax, +wmax] with
// wmax = max|w| at injection time, mirroring per-layer crossbar scaling
// (every layer's weights are programmed with their own conductance
// scale, so a stuck-on cell saturates at that layer's maximum).
// A StuckAtInjector is not safe for concurrent use: it recycles one
// lesion record and one RNG across calls (see the Injector reuse
// contract). The parallel evaluation protocol in internal/core gives
// every worker its own injector.
type StuckAtInjector struct {
	Model   Model
	Tensors []*tensor.Tensor

	scratch *Lesion     // recycled once the caller has undone it
	runRNG  *tensor.RNG // recycled per-run stream for InjectRun
}

// NewInjector builds a stuck-at injector over the given weight tensors.
func NewInjector(m Model, tensors []*tensor.Tensor) *StuckAtInjector {
	return &StuckAtInjector{Model: m, Tensors: tensors}
}

// Inject applies stuck-at faults with total rate psa, drawing from
// rng, and returns the lesion for undo. Every weight element fails
// independently with probability psa (exact Bernoulli process — no
// approximation), split between SA0/SA1 by the model.
func (inj *StuckAtInjector) Inject(rng *tensor.RNG, psa float64) *Lesion {
	if psa < 0 || psa > 1 {
		panic(fmt.Sprintf("fault: psa %v out of [0,1]", psa))
	}
	l := recycleLesion(inj.scratch, inj.Tensors)
	if l == nil {
		l = newLesion(inj.Tensors)
		inj.scratch = l
	}
	if psa == 0 {
		return l
	}
	p1 := inj.Model.P1()
	for ti, t := range inj.Tensors {
		d := t.Data()
		l.total += len(d)
		wmax := t.MaxAbs()
		for i := range d {
			if rng.Float64() >= psa {
				continue
			}
			l.undo[ti] = append(l.undo[ti], entry{idx: int32(i), old: d[i]})
			if rng.Float64() < p1 { // stuck-on
				if rng.Uint64()%2 == 0 {
					d[i] = wmax
				} else {
					d[i] = -wmax
				}
				l.nSA1++
			} else { // stuck-off
				d[i] = 0
				l.nSA0++
			}
		}
	}
	return l
}

// RunRNG derives the canonical fault-sampling stream for Monte-Carlo
// run `run` of a protocol rooted at seed. The stream depends only on
// (seed, run) — not on which goroutine draws it or how many runs came
// before — which is what lets the parallel evaluation protocol in
// internal/core reproduce the serial path bit for bit at any worker
// count.
func RunRNG(seed uint64, run int) *tensor.RNG {
	return tensor.NewRNG(seed).StreamN("defect-run", run)
}

// InjectRun applies one Monte-Carlo injection using the canonical
// per-run stream (see RunRNG). Serial and parallel callers construct
// identical lesions for the same (seed, run, psa). The stream is drawn
// by reseeding a recycled RNG, which is bit-equivalent to RunRNG but
// allocation-free in the steady state.
func (inj *StuckAtInjector) InjectRun(seed uint64, run int, psa float64) *Lesion {
	if inj.runRNG == nil {
		inj.runRNG = tensor.NewRNG(0)
	}
	inj.runRNG.Reseed(tensor.StreamSeedN(seed, "defect-run", run))
	return inj.Inject(inj.runRNG, psa)
}

// InjectStep applies the per-inference injection of forward pass
// `step` within Monte-Carlo run `run` — the transient-scenario draw.
// The stream depends only on (seed, run, step), per the positional RNG
// contract, and is drawn allocation-free off the recycled RNG.
func (inj *StuckAtInjector) InjectStep(seed uint64, run, step int, psa float64) *Lesion {
	if inj.runRNG == nil {
		inj.runRNG = tensor.NewRNG(0)
	}
	inj.runRNG.Reseed(stepSeed(seed, run, step))
	return inj.Inject(inj.runRNG, psa)
}

// NumWeights returns the total number of weight elements covered.
func (inj *StuckAtInjector) NumWeights() int {
	n := 0
	for _, t := range inj.Tensors {
		n += t.Len()
	}
	return n
}
