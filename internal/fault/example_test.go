package fault_test

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/tensor"
)

// Inject stuck-at faults into a weight tensor, measure the model under
// defect, and restore the exact clean weights.
func ExampleStuckAtInjector_Inject() {
	weights := tensor.FromSlice([]float32{0.5, -0.25, 1.0, -0.75}, 4)
	inj := fault.NewInjector(fault.ChenModel(), []*tensor.Tensor{weights})

	rng := tensor.NewRNG(7).Stream("defects")
	lesion := inj.Inject(rng, 0.5) // absurdly high rate, for the demo
	sa0, sa1 := lesion.Counts()
	fmt.Printf("injected %d stuck-off + %d stuck-on faults\n", sa0, sa1)

	lesion.Undo()
	fmt.Printf("restored: %v\n", weights.Data())
	// Output:
	// injected 0 stuck-off + 3 stuck-on faults
	// restored: [0.5 -0.25 1 -0.75]
}

// The Chen et al. march-test measurements fix the SA0:SA1 mix at
// 1.75 : 9.04 — stuck-on faults dominate, which is why even tiny fault
// rates scatter full-magnitude weight outliers.
func ExampleModel_Split() {
	psa0, psa1 := fault.ChenModel().Split(0.01)
	fmt.Printf("Psa=1%% splits into SA0=%.4f, SA1=%.4f\n", psa0, psa1)
	// Output:
	// Psa=1% splits into SA0=0.0016, SA1=0.0084
}
