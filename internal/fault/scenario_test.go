package fault

import (
	"strings"
	"testing"

	"github.com/ftpim/ftpim/internal/tensor"
)

// builtinScenarios returns one instance of every registered scenario
// at its default parameters, keyed by canonical spec.
func builtinScenarios(t *testing.T) []Scenario {
	t.Helper()
	var scs []Scenario
	for _, name := range Names() {
		sc, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		scs = append(scs, sc)
	}
	return scs
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"chen", "cluster", "drop", "transient"}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, n := range want {
		if !set[n] {
			t.Fatalf("built-in scenario %q not registered (have %v)", n, names)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"chen", "chen:r0=1,r1=1", "chen:r1=2",
		"transient", "transient:r0=3,r1=4",
		"cluster", "cluster:len=4", "cluster:len=16,tile=64,r0=1,r1=0",
		"drop",
	}
	for _, spec := range specs {
		sc, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := sc.Spec()
		sc2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) (canonical of %q): %v", canon, spec, err)
		}
		if sc2.Spec() != canon {
			t.Fatalf("spec %q: canonical form does not round-trip: %q -> %q", spec, canon, sc2.Spec())
		}
		if sc2.Transient() != sc.Transient() {
			t.Fatalf("spec %q: Transient() flipped across round-trip", spec)
		}
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	a, err := Parse("cluster: len=4 , r0=1, r1=2")
	if err != nil {
		t.Fatal(err)
	}
	b := MustParse("cluster:len=4,r0=1,r1=2")
	if a.Spec() != b.Spec() {
		t.Fatalf("whitespace changed the scenario: %q vs %q", a.Spec(), b.Spec())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "unknown scenario"},
		{"nope", "unknown scenario"},
		{"nope", "chen"}, // errors list the registered names
		{"chen:", "empty parameter list"},
		{"chen:r0", "malformed parameter"},
		{"chen:=1", "malformed parameter"},
		{"chen:r0=", "malformed parameter"},
		{"chen:r0=1,r0=2", "duplicate parameter"},
		{"chen:bogus=1", "unknown parameter"},
		{"chen:r0=abc", "not a number"},
		{"chen:r0=-1", "negative"},
		{"chen:r0=0,r1=0", ""}, // invalid model: any error is fine
		{"cluster:len=zzz", "not an integer"},
		{"cluster:len=0", "burst length"},
		{"cluster:tile=0", "tile width"},
		{"drop:r0=1", "unknown parameter"},
	}
	for _, tc := range cases {
		sc, err := Parse(tc.spec)
		if err == nil {
			t.Fatalf("Parse(%q) = %v, want error", tc.spec, sc.Spec())
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Parse(%q) error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

func TestDefaultIsChen(t *testing.T) {
	if got, want := Default().Spec(), Chen().Spec(); got != want {
		t.Fatalf("Default().Spec() = %q, want %q", got, want)
	}
	parsed := MustParse("chen")
	if parsed.Spec() != Default().Spec() {
		t.Fatalf("Parse(\"chen\") = %q, Default() = %q", parsed.Spec(), Default().Spec())
	}
	if Default().Transient() {
		t.Fatal("default scenario must be persistent")
	}
}

// TestScenarioInjectorMatchesDrawMap pins the scenario contract that a
// device map and an injected lesion drawn at the same RNG position
// fault the same cells the same way — the property that makes
// `ftpim device draw` profiles reproducible from sweep coordinates.
// The clustered scenario shares one draw routine between the two paths
// and must match exactly; the stuck-at family keeps two historical
// (golden-pinned) SA1 sign conventions, so there the positions, kinds,
// and magnitudes must agree while stuck-on signs may differ.
func TestScenarioInjectorMatchesDrawMap(t *testing.T) {
	const (
		seed = uint64(99)
		run  = 3
		psa  = 0.05
	)
	for _, sc := range builtinScenarios(t) {
		t.Run(sc.Spec(), func(t *testing.T) {
			r1, r2 := tensor.NewRNG(21), tensor.NewRNG(21)
			ts1 := randTensors(r1, 600, 37)
			ts2 := randTensors(r2, 600, 37)

			inj := sc.NewInjector(ts1)
			inj.InjectRun(seed, run, psa)

			dm := sc.DrawMap(RunRNG(seed, run), ts2, psa)
			dm.Apply(ts2)

			exact := sc.Spec() == MustParse("cluster").Spec()
			for i := range ts1 {
				a, b := ts1[i].Data(), ts2[i].Data()
				for j := range a {
					if a[j] == b[j] {
						continue
					}
					if !exact && a[j] == -b[j] && a[j] != 0 {
						continue // SA1 sign convention difference
					}
					t.Fatalf("tensor %d cell %d: injector wrote %v, device map wrote %v",
						i, j, a[j], b[j])
				}
			}
		})
	}
}

// TestScenarioInjectorsPositionIndependent pins the positional RNG
// contract: the lesion of (seed, run) — and (seed, run, step) — must
// not depend on what the injector drew before, which is exactly what
// lets parallel workers split runs arbitrarily.
func TestScenarioInjectorsPositionIndependent(t *testing.T) {
	const (
		seed = uint64(4242)
		psa  = 0.08
	)
	for _, sc := range builtinScenarios(t) {
		t.Run(sc.Spec(), func(t *testing.T) {
			r1, r2 := tensor.NewRNG(31), tensor.NewRNG(31)
			ts1 := randTensors(r1, 500, 81)
			ts2 := randTensors(r2, 500, 81)

			// Injector 1 walks runs 0..4 and keeps run 4's lesion.
			inj1 := sc.NewInjector(ts1)
			for run := 0; run < 4; run++ {
				inj1.InjectRun(seed, run, psa).Undo()
			}
			inj1.InjectRun(seed, 4, psa)

			// Injector 2 jumps straight to run 4.
			inj2 := sc.NewInjector(ts2)
			inj2.InjectRun(seed, 4, psa)

			for i := range ts1 {
				if !ts1[i].Equal(ts2[i]) {
					t.Fatalf("tensor %d: run-4 lesion depends on draw history", i)
				}
			}
		})
	}
}

func TestTransientStepPositionIndependent(t *testing.T) {
	const (
		seed = uint64(7)
		run  = 2
		psa  = 0.1
	)
	for _, spec := range []string{"transient", "drop", "cluster"} {
		t.Run(spec, func(t *testing.T) {
			sc := MustParse(spec)
			r1, r2 := tensor.NewRNG(41), tensor.NewRNG(41)
			ts1 := randTensors(r1, 700)
			ts2 := randTensors(r2, 700)

			inj1 := sc.NewInjector(ts1)
			for step := 0; step < 5; step++ {
				inj1.InjectStep(seed, run, step, psa).Undo()
			}
			inj1.InjectStep(seed, run, 5, psa)

			inj2 := sc.NewInjector(ts2)
			inj2.InjectStep(seed, run, 5, psa)

			if !ts1[0].Equal(ts2[0]) {
				t.Fatal("step-5 lesion depends on draw history")
			}

			// Distinct steps must draw distinct lesions (else "transient"
			// would silently degenerate to persistent).
			l5 := ts1[0].Clone()
			inj2.InjectStep(seed, run, 5, psa).Undo()
			inj2.InjectStep(seed, run, 6, psa)
			if ts2[0].Equal(l5) {
				t.Fatal("steps 5 and 6 drew identical lesions")
			}
		})
	}
}

// TestScenarioInjectorRecyclesLesion pins the documented reuse
// contract: successive Inject* calls recycle one lesion record, so
// holding the previous *Lesion past the next call is a bug in the
// caller, not the injector.
func TestScenarioInjectorRecyclesLesion(t *testing.T) {
	for _, sc := range builtinScenarios(t) {
		t.Run(sc.Spec(), func(t *testing.T) {
			r := tensor.NewRNG(51)
			ts := randTensors(r, 400)
			inj := sc.NewInjector(ts)
			l1 := inj.InjectRun(1, 0, 0.05)
			l1.Undo()
			l2 := inj.InjectRun(1, 1, 0.05)
			l2.Undo()
			if l1 != l2 {
				t.Fatal("injector allocated a fresh lesion instead of recycling")
			}
		})
	}
}

func TestClusteredRespectsRowBoundaries(t *testing.T) {
	// Burst length far beyond the row length: without truncation a
	// burst would run through many rows; with it, every drawn fault run
	// stays inside one 50-cell row.
	sc := Clustered{Len: 1000, Tile: 1 << 20, Mix: ChenModel()}
	tens := tensor.New(100, 50)
	tensor.FillNormal(tens, tensor.NewRNG(61), 0, 1)
	dm := sc.DrawMap(tensor.NewRNG(62), []*tensor.Tensor{tens}, 0.5)
	if dm.NumFaults() == 0 {
		t.Fatal("no faults drawn; test is vacuous")
	}
	checkRuns(t, dm, 50, func(start, end int) {
		if start/50 != (end-1)/50 {
			t.Fatalf("fault run [%d,%d) crosses a row boundary (rowLen 50)", start, end)
		}
	})
}

func TestClusteredRespectsTileBoundaries(t *testing.T) {
	sc := Clustered{Len: 1000, Tile: 10, Mix: ChenModel()}
	tens := tensor.New(100, 50)
	tensor.FillNormal(tens, tensor.NewRNG(63), 0, 1)
	dm := sc.DrawMap(tensor.NewRNG(64), []*tensor.Tensor{tens}, 0.5)
	if dm.NumFaults() == 0 {
		t.Fatal("no faults drawn; test is vacuous")
	}
	checkRuns(t, dm, 50, func(start, end int) {
		col0, col1 := start%50, (end-1)%50
		if start/50 != (end-1)/50 || col0/10 != col1/10 {
			t.Fatalf("fault run [%d,%d) crosses a tile boundary (tile 10)", start, end)
		}
	})
}

// checkRuns invokes check on every maximal run of consecutive faulted
// indices in dm's first tensor.
func checkRuns(t *testing.T, dm *DeviceMap, rowLen int, check func(start, end int)) {
	t.Helper()
	fs := dm.faults[0]
	start := -1
	prev := -2
	for _, f := range fs {
		idx := int(f.idx)
		if idx != prev+1 {
			if start >= 0 {
				check(start, prev+1)
			}
			start = idx
		}
		prev = idx
	}
	if start >= 0 {
		check(start, prev+1)
	}
}

func TestClusteredRealizedRateNearTarget(t *testing.T) {
	sc := NewClustered(0, 0, Model{})
	tens := tensor.New(500, 400) // 200k cells
	tensor.FillNormal(tens, tensor.NewRNG(65), 0, 1)
	for _, psa := range []float64{0.01, 0.05} {
		dm := sc.DrawMap(tensor.NewRNG(66), []*tensor.Tensor{tens}, psa)
		got := float64(dm.NumFaults()) / float64(tens.Len())
		// Expected rate is slightly below psa (boundary truncation);
		// burst clustering widens the variance vs i.i.d. draws.
		if got < 0.6*psa || got > 1.15*psa {
			t.Fatalf("psa=%g: realized rate %g outside [%g, %g]", psa, got, 0.6*psa, 1.15*psa)
		}
	}
}

func TestClusteredBurstsShareKind(t *testing.T) {
	// All-SA1 mix: every faulted cell must be ±wmax; all-SA0: every
	// faulted cell must be 0. Mixed bursts would violate one of these.
	tens := tensor.Full(2, 64, 64)
	sa1 := Clustered{Len: 8, Tile: 64, Mix: Model{Ratio0: 0, Ratio1: 1}}
	dm := sa1.DrawMap(tensor.NewRNG(67), []*tensor.Tensor{tens}, 0.1)
	l := dm.Apply([]*tensor.Tensor{tens})
	for _, v := range tens.Data() {
		if v != 2 && v != -2 {
			t.Fatalf("SA1-only cluster produced weight %v, want ±2", v)
		}
	}
	l.Undo()
}

func TestDropConnectIsSA0OnlyTransient(t *testing.T) {
	sc := DropConnect()
	if !sc.Transient() {
		t.Fatal("drop must be transient")
	}
	ts := []*tensor.Tensor{tensor.Full(3, 5000)}
	inj := sc.NewInjector(ts)
	l := inj.InjectStep(1, 0, 0, 0.2)
	sa0, sa1 := l.Counts()
	if sa1 != 0 || sa0 == 0 {
		t.Fatalf("drop lesion counts sa0=%d sa1=%d, want SA0-only", sa0, sa1)
	}
	for _, v := range ts[0].Data() {
		if v != 3 && v != 0 {
			t.Fatalf("drop produced weight %v, want 0 or untouched 3", v)
		}
	}
	l.Undo()
}

func TestRegisterRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", "a:b", "a,b", "a=b", "a b", "chen"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%q) did not panic", name)
				}
			}()
			Register(name, func(map[string]string) (Scenario, error) { return Chen(), nil })
		}()
	}
}
