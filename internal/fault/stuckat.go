package fault

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// stuckAt is the family of independent-per-cell stuck-at scenarios:
// the persistent Chen-ratio default ("chen", one lesion per Monte-Carlo
// run), the per-inference variant ("transient", fresh lesion every
// forward pass), and drop-connect drops ("drop", SA0-only transient).
// All three share the StuckAtInjector; only the name, the SA0/SA1 mix,
// and the redraw cadence differ.
type stuckAt struct {
	name      string
	model     Model
	transient bool
}

// Chen returns the default scenario: persistent stuck-at faults at the
// paper's Chen ratio (spec "chen").
func Chen() Scenario { return stuckAt{name: "chen", model: ChenModel()} }

// StuckAt returns a persistent stuck-at scenario with a custom SA0/SA1
// mix (spec "chen:r0=...,r1=..."). A zero model resolves to ChenModel.
func StuckAt(m Model) Scenario {
	if m.IsZero() {
		m = ChenModel()
	}
	return stuckAt{name: "chen", model: m}
}

// Transient returns the per-inference stuck-at scenario: a fresh
// lesion is drawn for every forward pass (spec "transient"). Models
// read-disturb / momentary conductance faults rather than manufactured
// defects. A zero model resolves to ChenModel.
func Transient(m Model) Scenario {
	if m.IsZero() {
		m = ChenModel()
	}
	return stuckAt{name: "transient", model: m, transient: true}
}

// DropConnect returns the SA0-only transient scenario (spec "drop"):
// every forward pass independently zeroes each weight with probability
// psa. It is the injection half of drop-connect fault-tolerant
// training (arXiv 2404.15498) and is also evaluable on its own.
func DropConnect() Scenario {
	return stuckAt{name: "drop", model: Model{Ratio0: 1}, transient: true}
}

func (s stuckAt) Spec() string {
	if s.name == "drop" {
		return "drop"
	}
	return fmt.Sprintf("%s:r0=%g,r1=%g", s.name, s.model.Ratio0, s.model.Ratio1)
}

func (s stuckAt) Validate() error { return s.model.Validate() }

func (s stuckAt) NewInjector(ts []*tensor.Tensor) Injector {
	return NewInjector(s.model, ts)
}

func (s stuckAt) DrawMap(rng *tensor.RNG, ts []*tensor.Tensor, psa float64) *DeviceMap {
	return DrawDeviceMap(rng, s.model, ts, psa)
}

func (s stuckAt) Transient() bool { return s.transient }

// popModel consumes the r0/r1 parameters of a stuck-at spec,
// defaulting to the Chen ratios.
func popModel(params map[string]string) (Model, error) {
	chen := ChenModel()
	r0, err := popFloat(params, "r0", chen.Ratio0)
	if err != nil {
		return Model{}, err
	}
	r1, err := popFloat(params, "r1", chen.Ratio1)
	if err != nil {
		return Model{}, err
	}
	return Model{Ratio0: r0, Ratio1: r1}, nil
}

func init() {
	Register("chen", func(params map[string]string) (Scenario, error) {
		m, err := popModel(params)
		if err != nil {
			return nil, err
		}
		return stuckAt{name: "chen", model: m}, nil
	})
	Register("transient", func(params map[string]string) (Scenario, error) {
		m, err := popModel(params)
		if err != nil {
			return nil, err
		}
		return stuckAt{name: "transient", model: m, transient: true}, nil
	})
	Register("drop", func(params map[string]string) (Scenario, error) {
		return DropConnect(), nil
	})
}
