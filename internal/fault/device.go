package fault

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// pinnedFault is one fixed defect location on a device.
type pinnedFault struct {
	idx  int32
	kind Kind
	sign int8 // +1/−1 for SA1; ignored for SA0
}

// DeviceMap is the fixed defect pattern of one physical device: each
// manufactured ReRAM chip has its own set of stuck cells that does not
// change between inferences. Re-applying the map models deploying the
// (possibly retrained) weights onto the same defective device.
//
// Stuck-on values track the weight tensor's current |w|max at apply
// time, because the conductance scale is re-derived whenever a model
// is reprogrammed onto the crossbar.
// A DeviceMap is not safe for concurrent Apply calls: it recycles one
// lesion record across the apply→undo cycle (training applies the same
// map every batch).
type DeviceMap struct {
	Psa    float64
	faults [][]pinnedFault
	shapes [][]int

	scratch *Lesion // recycled once the caller has undone it
}

// DrawDeviceMap samples a fixed defect pattern for tensors with the
// given per-cell stuck-at rate.
func DrawDeviceMap(rng *tensor.RNG, m Model, tensors []*tensor.Tensor, psa float64) *DeviceMap {
	if psa < 0 || psa > 1 {
		panic(fmt.Sprintf("fault: psa %v out of [0,1]", psa))
	}
	dm := &DeviceMap{
		Psa:    psa,
		faults: make([][]pinnedFault, len(tensors)),
		shapes: make([][]int, len(tensors)),
	}
	p1 := m.P1()
	for ti, t := range tensors {
		dm.shapes[ti] = append([]int(nil), t.Shape()...)
		for i := 0; i < t.Len(); i++ {
			if rng.Float64() >= psa {
				continue
			}
			f := pinnedFault{idx: int32(i), kind: SA0}
			if rng.Float64() < p1 {
				f.kind = SA1
				f.sign = 1
				if rng.Uint64()%2 == 0 {
					f.sign = -1
				}
			}
			dm.faults[ti] = append(dm.faults[ti], f)
		}
	}
	return dm
}

// NumFaults returns the total defect count on the device.
func (dm *DeviceMap) NumFaults() int {
	n := 0
	for _, fs := range dm.faults {
		n += len(fs)
	}
	return n
}

// Apply pins the device's defects onto the given tensors (which must
// have the shapes the map was drawn for) and returns an undoable
// lesion.
func (dm *DeviceMap) Apply(tensors []*tensor.Tensor) *Lesion {
	if len(tensors) != len(dm.faults) {
		panic("fault: DeviceMap tensor count mismatch")
	}
	l := recycleLesion(dm.scratch, tensors)
	if l == nil {
		l = newLesion(tensors)
		dm.scratch = l
	}
	for ti, t := range tensors {
		if t.Len() == 0 {
			continue
		}
		for di, d := range dm.shapes[ti] {
			if t.Dim(di) != d {
				panic(fmt.Sprintf("fault: DeviceMap shape mismatch at tensor %d: %v vs %v", ti, t.Shape(), dm.shapes[ti]))
			}
		}
		l.total += t.Len()
		wmax := t.MaxAbs()
		d := t.Data()
		for _, f := range dm.faults[ti] {
			l.undo[ti] = append(l.undo[ti], entry{idx: f.idx, old: d[f.idx]})
			switch f.kind {
			case SA0:
				d[f.idx] = 0
				l.nSA0++
			case SA1:
				d[f.idx] = float32(f.sign) * wmax
				l.nSA1++
			}
		}
	}
	return l
}

// Mask returns, for tensor ti, the fault kind at every element
// (−1 = healthy, else the Kind). Used by the device-specific
// fault-aware retraining baseline, which assumes the defect locations
// were identified by a march test.
func (dm *DeviceMap) Mask(ti int) []int8 {
	n := 1
	for _, d := range dm.shapes[ti] {
		n *= d
	}
	mask := make([]int8, n)
	for i := range mask {
		mask[i] = -1
	}
	for _, f := range dm.faults[ti] {
		mask[f.idx] = int8(f.kind)
	}
	return mask
}
