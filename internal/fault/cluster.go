package fault

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/tensor"
)

// Clustered is the spatially-correlated defect scenario (spec
// "cluster"): faults arrive as row-bursts of up to Len consecutive
// cells sharing one stuck-at kind, modeling shorted wordline segments
// and fab defects that take out adjacent cells of a crossbar row
// rather than independent single cells. Bursts never cross a logical
// crossbar-row boundary (a dim-0 slice of the weight tensor) or a tile
// boundary (every Tile columns, the physical crossbar width), matching
// how internal/reram tiles matrices onto fixed-size arrays.
//
// Burst starts are drawn per cell at rate psa/Len, so the expected
// per-cell fault rate stays ≈ psa and sweep results are comparable
// with the independent scenarios at the same x-axis (edge truncation
// biases the realized rate slightly low).
type Clustered struct {
	// Len is the maximum burst length in cells (default 8).
	Len int
	// Tile is the crossbar column width bursts cannot cross
	// (default 128).
	Tile int
	// Mix is the SA0/SA1 split of each burst's kind; zero resolves to
	// ChenModel.
	Mix Model
}

// Cluster default parameters.
const (
	defaultClusterLen  = 8
	defaultClusterTile = 128
)

// NewClustered builds a clustered scenario, resolving zero parameters
// to the defaults (Len 8, Tile 128, Chen mix).
func NewClustered(burstLen, tile int, mix Model) Clustered {
	if burstLen == 0 {
		burstLen = defaultClusterLen
	}
	if tile == 0 {
		tile = defaultClusterTile
	}
	if mix.IsZero() {
		mix = ChenModel()
	}
	return Clustered{Len: burstLen, Tile: tile, Mix: mix}
}

func (c Clustered) Spec() string {
	return fmt.Sprintf("cluster:len=%d,tile=%d,r0=%g,r1=%g",
		c.Len, c.Tile, c.Mix.Ratio0, c.Mix.Ratio1)
}

func (c Clustered) Validate() error {
	if c.Len < 1 {
		return fmt.Errorf("fault: cluster burst length %d < 1", c.Len)
	}
	if c.Tile < 1 {
		return fmt.Errorf("fault: cluster tile width %d < 1", c.Tile)
	}
	return c.Mix.Validate()
}

func (c Clustered) Transient() bool { return false }

// crossbarRowLen returns the length of one logical crossbar row of t:
// a dim-0 slice (filter / output row), the unit the reram mapper lays
// out contiguously. Degenerate shapes fall back to the whole tensor.
func crossbarRowLen(t *tensor.Tensor) int {
	n := t.Len()
	d0 := t.Dim(0)
	if d0 <= 0 || n%d0 != 0 {
		return n
	}
	return n / d0
}

// faultSink receives the faults forEachFault generates. It is an
// interface (rather than a func value) so injectors can pass their own
// receiver and keep the warm path allocation-free.
type faultSink interface {
	fault(idx int, kind Kind, sign int8)
}

// forEachFault draws one clustered defect pattern over n cells with
// row length rowLen, emitting each faulted cell to sink. RNG
// consumption is strictly positional — one Float64 per candidate burst
// start (cells inside a burst consume nothing), one Float64 per burst
// for its kind, one Uint64 per SA1 cell for its sign — and is shared
// verbatim by DrawMap and the injector, so a device map and an
// injected lesion drawn from the same stream are identical.
func (c Clustered) forEachFault(rng *tensor.RNG, n, rowLen int, psa float64, sink faultSink) {
	if n == 0 || psa == 0 {
		return
	}
	if rowLen <= 0 {
		rowLen = n
	}
	pStart := psa / float64(c.Len)
	p1 := c.Mix.P1()
	for i := 0; i < n; {
		if rng.Float64() >= pStart {
			i++
			continue
		}
		rowStart := i - i%rowLen
		r := i - rowStart
		tileEnd := rowStart + min((r/c.Tile+1)*c.Tile, rowLen)
		end := min(i+c.Len, tileEnd)
		kind := SA0
		if rng.Float64() < p1 {
			kind = SA1
		}
		for ; i < end; i++ {
			var sign int8
			if kind == SA1 {
				sign = 1
				if rng.Uint64()%2 == 0 {
					sign = -1
				}
			}
			sink.fault(i, kind, sign)
		}
	}
}

// mapSink accumulates forEachFault output into a DeviceMap.
type mapSink struct {
	dm *DeviceMap
	ti int
}

func (s *mapSink) fault(idx int, kind Kind, sign int8) {
	s.dm.faults[s.ti] = append(s.dm.faults[s.ti], pinnedFault{idx: int32(idx), kind: kind, sign: sign})
}

// DrawMap samples a fixed clustered defect pattern for the tensors.
func (c Clustered) DrawMap(rng *tensor.RNG, tensors []*tensor.Tensor, psa float64) *DeviceMap {
	if psa < 0 || psa > 1 {
		panic(fmt.Sprintf("fault: psa %v out of [0,1]", psa))
	}
	dm := &DeviceMap{
		Psa:    psa,
		faults: make([][]pinnedFault, len(tensors)),
		shapes: make([][]int, len(tensors)),
	}
	sink := mapSink{dm: dm}
	for ti, t := range tensors {
		dm.shapes[ti] = append([]int(nil), t.Shape()...)
		sink.ti = ti
		c.forEachFault(rng, t.Len(), crossbarRowLen(t), psa, &sink)
	}
	return dm
}

// NewInjector binds the clustered scenario to the given weight tensors.
func (c Clustered) NewInjector(ts []*tensor.Tensor) Injector {
	return &clusterInjector{sc: c, tensors: ts}
}

// clusterInjector draws clustered lesions over a fixed tensor set. It
// is its own faultSink: during an inject pass the current tensor's
// state lives in the receiver, so forEachFault emits through an
// existing pointer and the warm path stays allocation-free.
type clusterInjector struct {
	sc      Clustered
	tensors []*tensor.Tensor

	scratch *Lesion
	rng     *tensor.RNG

	// per-tensor state of the in-flight inject pass
	l    *Lesion
	ti   int
	d    []float32
	wmax float32
}

func (inj *clusterInjector) fault(idx int, kind Kind, sign int8) {
	inj.l.undo[inj.ti] = append(inj.l.undo[inj.ti], entry{idx: int32(idx), old: inj.d[idx]})
	if kind == SA1 {
		inj.d[idx] = float32(sign) * inj.wmax
		inj.l.nSA1++
	} else {
		inj.d[idx] = 0
		inj.l.nSA0++
	}
}

// inject applies one clustered lesion drawn from inj.rng (already
// positioned) and returns it for undo.
func (inj *clusterInjector) inject(psa float64) *Lesion {
	if psa < 0 || psa > 1 {
		panic(fmt.Sprintf("fault: psa %v out of [0,1]", psa))
	}
	l := recycleLesion(inj.scratch, inj.tensors)
	if l == nil {
		l = newLesion(inj.tensors)
		inj.scratch = l
	}
	if psa == 0 {
		return l
	}
	inj.l = l
	for ti, t := range inj.tensors {
		inj.ti = ti
		inj.d = t.Data()
		inj.wmax = t.MaxAbs()
		l.total += t.Len()
		inj.sc.forEachFault(inj.rng, t.Len(), crossbarRowLen(t), psa, inj)
	}
	inj.l, inj.d = nil, nil
	return l
}

func (inj *clusterInjector) seedRNG(seed uint64) {
	if inj.rng == nil {
		inj.rng = tensor.NewRNG(0)
	}
	inj.rng.Reseed(seed)
}

func (inj *clusterInjector) InjectRun(seed uint64, run int, psa float64) *Lesion {
	inj.seedRNG(tensor.StreamSeedN(seed, "defect-run", run))
	return inj.inject(psa)
}

func (inj *clusterInjector) InjectStep(seed uint64, run, step int, psa float64) *Lesion {
	inj.seedRNG(stepSeed(seed, run, step))
	return inj.inject(psa)
}

func (inj *clusterInjector) NumWeights() int {
	n := 0
	for _, t := range inj.tensors {
		n += t.Len()
	}
	return n
}

func init() {
	Register("cluster", func(params map[string]string) (Scenario, error) {
		burstLen, err := popInt(params, "len", defaultClusterLen)
		if err != nil {
			return nil, err
		}
		tile, err := popInt(params, "tile", defaultClusterTile)
		if err != nil {
			return nil, err
		}
		mix, err := popModel(params)
		if err != nil {
			return nil, err
		}
		return Clustered{Len: burstLen, Tile: tile, Mix: mix}, nil
	})
}
