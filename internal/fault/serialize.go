package fault

import (
	"encoding/gob"
	"fmt"
	"io"
)

// deviceMapWire is the gob wire format of a DeviceMap. In a
// mass-production flow the march-test station measures each unit's
// defect map once and archives it; Save/Load let those profiles be
// stored next to the golden model and replayed in simulation.
type deviceMapWire struct {
	Psa    float64
	Shapes [][]int
	Idx    [][]int32
	Kind   [][]uint8
	Sign   [][]int8
}

// Save serializes the device map.
func (dm *DeviceMap) Save(w io.Writer) error {
	wire := deviceMapWire{Psa: dm.Psa, Shapes: dm.shapes}
	for _, fs := range dm.faults {
		var idx []int32
		var kind []uint8
		var sign []int8
		for _, f := range fs {
			idx = append(idx, f.idx)
			kind = append(kind, uint8(f.kind))
			sign = append(sign, f.sign)
		}
		wire.Idx = append(wire.Idx, idx)
		wire.Kind = append(wire.Kind, kind)
		wire.Sign = append(wire.Sign, sign)
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// LoadDeviceMap deserializes a device map written by Save.
func LoadDeviceMap(r io.Reader) (*DeviceMap, error) {
	var wire deviceMapWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, err
	}
	if len(wire.Idx) != len(wire.Shapes) || len(wire.Kind) != len(wire.Idx) || len(wire.Sign) != len(wire.Idx) {
		return nil, fmt.Errorf("fault: corrupt device map (ragged sections)")
	}
	dm := &DeviceMap{Psa: wire.Psa, shapes: wire.Shapes}
	for ti := range wire.Idx {
		if len(wire.Kind[ti]) != len(wire.Idx[ti]) || len(wire.Sign[ti]) != len(wire.Idx[ti]) {
			return nil, fmt.Errorf("fault: corrupt device map (tensor %d)", ti)
		}
		n := 1
		for _, d := range wire.Shapes[ti] {
			n *= d
		}
		var fs []pinnedFault
		for i, idx := range wire.Idx[ti] {
			if idx < 0 || int(idx) >= n {
				return nil, fmt.Errorf("fault: corrupt device map (index %d out of %d)", idx, n)
			}
			k := Kind(wire.Kind[ti][i])
			if k != SA0 && k != SA1 {
				return nil, fmt.Errorf("fault: corrupt device map (kind %d)", k)
			}
			fs = append(fs, pinnedFault{idx: idx, kind: k, sign: wire.Sign[ti][i]})
		}
		dm.faults = append(dm.faults, fs)
	}
	return dm, nil
}
