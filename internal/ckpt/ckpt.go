// Package ckpt provides crash-safe checkpoint storage for long-running
// training runs: named binary sections bundled into one file with a
// per-section CRC-32, written via temp-file+rename so a crash, OOM
// kill, or SIGKILL at any instant leaves either the previous complete
// checkpoint set or the previous set plus one new complete file — never
// a torn state a resume could silently train from.
//
// Layout on disk: a Store roots one directory; each training run gets a
// subdirectory keyed by its run key ("pretrain-c10", "prog-c10-0.1",
// ...) holding numbered checkpoint files ckpt-00000042.ftck. Save
// always writes the next sequence number and prunes all but the newest
// K files; Load walks the files newest-first, skips any that fail the
// magic, structural, or checksum validation (emitting one ckpt.corrupt
// event per skipped file), and returns the newest intact checkpoint —
// so a torn final write degrades to the previous good snapshot instead
// of aborting or corrupting the experiment.
//
// The package stores opaque sections; what goes in them (network
// snapshot, optimizer velocity, RNG cursor, epoch history) is the run
// layer's business — see internal/core.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/ftpim/ftpim/internal/obs"
)

// FormatVersion is the checkpoint container format version. Decode
// rejects files written by a different major version.
const FormatVersion = 1

// DefaultKeep is the retention depth used when a Store is created with
// keep <= 0: the newest checkpoint plus two fallbacks.
const DefaultKeep = 3

// Decoder hardening bounds: a checkpoint is a handful of sections with
// short names, so anything outside these limits is corruption, not a
// bigger workload.
const (
	maxSections = 64
	maxNameLen  = 256
)

var magic = [4]byte{'F', 'T', 'C', 'K'}

// A Format identifies one file family built on the shared section
// container: a 4-byte magic, a format version, and a tag used as the
// error-message prefix. The checkpoint format (FTCK) and the exported
// model format (FTPM, internal/ftpm) are both instances; they share the
// wire discipline — sorted deterministic section order, per-section
// CRC-32, hardened structural bounds, payload aliasing on decode — and
// differ only in magic, version, and what the sections contain.
type Format struct {
	Magic   [4]byte
	Version uint32
	Tag     string
}

// EncodeContainer serializes sections into f's container format.
// Sections are written in sorted name order, so encoding is
// deterministic: identical content yields identical bytes.
func EncodeContainer(f Format, sections map[string][]byte) ([]byte, error) {
	if len(sections) == 0 {
		return nil, fmt.Errorf("%s: no sections to encode", f.Tag)
	}
	if len(sections) > maxSections {
		return nil, fmt.Errorf("%s: %d sections exceeds limit %d", f.Tag, len(sections), maxSections)
	}
	names := make([]string, 0, len(sections))
	size := 4 + 4 + 4
	for name, payload := range sections {
		if name == "" || len(name) > maxNameLen {
			return nil, fmt.Errorf("%s: invalid section name %q", f.Tag, name)
		}
		names = append(names, name)
		size += 4 + len(name) + 8 + len(payload) + 4
	}
	sort.Strings(names)
	buf := make([]byte, 0, size)
	buf = append(buf, f.Magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, f.Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		payload := sections[name]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
		buf = append(buf, payload...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	}
	return buf, nil
}

// DecodeContainer parses one of f's containers, validating the magic,
// version, structure, and every section checksum. It never panics on
// arbitrary input and never allocates beyond the input's own size
// (payloads are sub-slices of b, so callers must not retain b while
// mutating sections, or vice versa — and conversely, a caller that
// wants zero-copy loading can hand in an mmap'd region and read the
// sections in place).
func DecodeContainer(f Format, b []byte) (map[string][]byte, error) {
	off := 0
	take := func(n int) ([]byte, error) {
		if n < 0 || off+n > len(b) {
			return nil, fmt.Errorf("%s: truncated at offset %d (want %d more bytes)", f.Tag, off, n)
		}
		s := b[off : off+n]
		off += n
		return s, nil
	}
	hdr, err := take(12)
	if err != nil {
		return nil, err
	}
	if [4]byte(hdr[:4]) != f.Magic {
		return nil, fmt.Errorf("%s: bad magic %q", f.Tag, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != f.Version {
		return nil, fmt.Errorf("%s: unsupported format version %d (want %d)", f.Tag, v, f.Version)
	}
	count := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if count < 1 || count > maxSections {
		return nil, fmt.Errorf("%s: implausible section count %d", f.Tag, count)
	}
	sections := make(map[string][]byte, count)
	for i := 0; i < count; i++ {
		nl, err := take(4)
		if err != nil {
			return nil, err
		}
		nameLen := int(binary.LittleEndian.Uint32(nl))
		if nameLen < 1 || nameLen > maxNameLen {
			return nil, fmt.Errorf("%s: implausible name length %d", f.Tag, nameLen)
		}
		nameB, err := take(nameLen)
		if err != nil {
			return nil, err
		}
		pl, err := take(8)
		if err != nil {
			return nil, err
		}
		payloadLen := binary.LittleEndian.Uint64(pl)
		if payloadLen > uint64(len(b)) {
			return nil, fmt.Errorf("%s: section %q claims %d bytes, file has %d", f.Tag, nameB, payloadLen, len(b))
		}
		payload, err := take(int(payloadLen))
		if err != nil {
			return nil, err
		}
		ck, err := take(4)
		if err != nil {
			return nil, err
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(ck); got != want {
			return nil, fmt.Errorf("%s: section %q checksum mismatch (%08x != %08x)", f.Tag, nameB, got, want)
		}
		name := string(nameB)
		if _, dup := sections[name]; dup {
			return nil, fmt.Errorf("%s: duplicate section %q", f.Tag, name)
		}
		sections[name] = payload
	}
	if off != len(b) {
		return nil, fmt.Errorf("%s: %d trailing bytes", f.Tag, len(b)-off)
	}
	return sections, nil
}

// ckptFormat is the FTCK checkpoint instance of the shared container.
var ckptFormat = Format{Magic: magic, Version: FormatVersion, Tag: "ckpt"}

// Encode serializes sections into the checkpoint container format.
func Encode(sections map[string][]byte) ([]byte, error) {
	return EncodeContainer(ckptFormat, sections)
}

// Decode parses a checkpoint container. See DecodeContainer for the
// validation and aliasing contract.
func Decode(b []byte) (map[string][]byte, error) {
	return DecodeContainer(ckptFormat, b)
}

// Store roots a directory of per-run checkpoint subdirectories.
type Store struct {
	dir    string
	keep   int
	resume bool
	sink   obs.Sink
}

// NewStore creates a checkpoint store rooted at dir. keep is the
// per-run retention depth (<= 0 → DefaultKeep). resume controls what
// runs derived from this store do with existing checkpoints: when true
// they load and continue from the newest intact one, when false they
// discard stale files and start fresh. sink receives ckpt.corrupt
// events (nil → obs.Null); save/restore events are emitted by the run
// layer, which knows the training position.
func NewStore(dir string, keep int, resume bool, sink obs.Sink) *Store {
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Store{dir: dir, keep: keep, resume: resume, sink: obs.Or(sink)}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Resume reports whether runs from this store resume from existing
// checkpoints.
func (s *Store) Resume() bool { return s.resume }

// Run scopes the store to one training run key. Keys are sanitized to
// a filesystem-safe directory name; two phases of one logical run
// should suffix the shared key with ".phase" so ClearKey removes both.
func (s *Store) Run(key string) *Run {
	return &Run{
		dir:    filepath.Join(s.dir, sanitizeKey(key)),
		keep:   s.keep,
		resume: s.resume,
		sink:   s.sink,
	}
}

// ClearKey removes the checkpoint directories of key and of any phase
// sub-runs ("key.admm", "key.ft", ...) — called when the run's final
// result has been durably recorded elsewhere (e.g. the model cache), at
// which point its checkpoints are dead weight.
func (s *Store) ClearKey(key string) error {
	base := sanitizeKey(key)
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if name != base && !strings.HasPrefix(name, base+".") {
			continue
		}
		if err := os.RemoveAll(filepath.Join(s.dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// sanitizeKey maps a run key to a directory name: every byte outside
// [A-Za-z0-9._-] becomes '_', and all-dot names ("." and "..", which
// filepath.Join would resolve out of the store root) are neutralized.
func sanitizeKey(key string) string {
	if key == "" {
		return "_"
	}
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, key)
	if strings.Trim(out, ".") == "" {
		return strings.Repeat("_", len(out))
	}
	return out
}

// Run is one training run's checkpoint sequence.
type Run struct {
	dir    string
	keep   int
	resume bool
	sink   obs.Sink

	nextSeq int
	scanned bool
	cleared bool
}

// Dir returns the run's checkpoint directory.
func (r *Run) Dir() string { return r.dir }

// Resumable reports whether Load will consider existing checkpoints.
func (r *Run) Resumable() bool { return r.resume }

const (
	filePrefix = "ckpt-"
	fileSuffix = ".ftck"
)

func seqName(seq int) string { return fmt.Sprintf("%s%08d%s", filePrefix, seq, fileSuffix) }

// parseSeq extracts the sequence number from a checkpoint file name,
// or -1 for foreign files.
func parseSeq(name string) int {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return -1
	}
	mid := name[len(filePrefix) : len(name)-len(fileSuffix)]
	if len(mid) == 0 {
		return -1
	}
	seq := 0
	for _, c := range mid {
		if c < '0' || c > '9' {
			return -1
		}
		seq = seq*10 + int(c-'0')
		if seq > 1<<30 {
			return -1
		}
	}
	return seq
}

// list returns the run's checkpoint sequence numbers in ascending
// order (missing directory → empty).
func (r *Run) list() []int {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var seqs []int
	for _, e := range entries {
		if seq := parseSeq(e.Name()); seq >= 0 {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs
}

// Save writes sections as the run's next checkpoint: encode, write to
// a temp file, fsync-free rename into place, prune beyond the
// retention depth. A run created without resume discards any stale
// checkpoint files from a previous attempt before its first write.
// Returns the checkpoint's path and encoded size.
func (r *Run) Save(sections map[string][]byte) (path string, size int, err error) {
	if !r.resume && !r.cleared {
		// Fresh (non-resuming) run: a stale sequence from a previous
		// crashed attempt must not shadow the new one.
		if err := os.RemoveAll(r.dir); err != nil && !os.IsNotExist(err) {
			return "", 0, fmt.Errorf("ckpt: clear stale run dir: %w", err)
		}
		r.cleared = true
	}
	data, err := Encode(sections)
	if err != nil {
		return "", 0, err
	}
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return "", 0, err
	}
	if !r.scanned {
		if seqs := r.list(); len(seqs) > 0 {
			r.nextSeq = seqs[len(seqs)-1] + 1
		}
		r.scanned = true
	}
	path = filepath.Join(r.dir, seqName(r.nextSeq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	r.nextSeq++
	r.prune()
	return path, len(data), nil
}

// prune deletes all but the newest keep checkpoints (best effort — a
// leftover file is disk waste, not a correctness problem).
func (r *Run) prune() {
	seqs := r.list()
	for len(seqs) > r.keep {
		os.Remove(filepath.Join(r.dir, seqName(seqs[0])))
		seqs = seqs[1:]
	}
}

// Load returns the newest intact checkpoint of the run, walking the
// sequence newest-first and skipping (with one ckpt.corrupt event
// each) files that are torn, truncated, or bit-flipped. ok is false
// when the run is not resumable or no intact checkpoint exists — the
// caller starts fresh in either case.
func (r *Run) Load() (sections map[string][]byte, path string, ok bool) {
	if !r.resume {
		return nil, "", false
	}
	seqs := r.list()
	for i := len(seqs) - 1; i >= 0; i-- {
		p := filepath.Join(r.dir, seqName(seqs[i]))
		data, err := os.ReadFile(p)
		if err == nil {
			var secs map[string][]byte
			if secs, err = Decode(data); err == nil {
				return secs, p, true
			}
		}
		if r.sink.Enabled() {
			r.sink.Emit(obs.Event{Kind: obs.KindCkptCorrupt, Key: p, Msg: err.Error()})
		}
	}
	return nil, "", false
}

// Clear removes the run's checkpoint directory.
func (r *Run) Clear() error {
	err := os.RemoveAll(r.dir)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
