package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/ftpim/ftpim/internal/obs"
)

func sampleSections() map[string][]byte {
	return map[string][]byte{
		"meta": []byte("position"),
		"net":  bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 100),
		"rng":  {1, 2, 3, 4, 5, 6, 7, 8},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSections()
	b, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("section count %d != %d", len(got), len(want))
	}
	for name, payload := range want {
		if !bytes.Equal(got[name], payload) {
			t.Fatalf("section %q corrupted in round trip", name)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(sampleSections())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(sampleSections())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical sections must encode to identical bytes")
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("empty section map must fail")
	}
	if _, err := Encode(map[string][]byte{"": {1}}); err == nil {
		t.Fatal("empty section name must fail")
	}
	long := string(bytes.Repeat([]byte{'x'}, maxNameLen+1))
	if _, err := Encode(map[string][]byte{long: {1}}); err == nil {
		t.Fatal("oversized section name must fail")
	}
}

// Every single-byte truncation and every single-bit flip of a valid
// checkpoint must be rejected — never mis-decoded, never a panic.
func TestDecodeRejectsAllTruncationsAndBitFlips(t *testing.T) {
	b, err := Encode(sampleSections())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes must not decode", n, len(b))
		}
	}
	for i := range b {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), b...)
			mut[i] ^= 1 << bit
			got, err := Decode(mut)
			if err != nil {
				continue
			}
			// A flip inside a name length/name field can legally decode
			// if CRCs still hold — but payload bytes must be intact.
			for name, payload := range got {
				if want, ok := sampleSections()[name]; ok && !bytes.Equal(payload, want) {
					t.Fatalf("bit flip at byte %d bit %d silently altered section %q", i, bit, name)
				}
			}
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b, err := Encode(sampleSections())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(b, 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
}

// corruptCollector records ckpt.corrupt events.
type corruptCollector struct {
	events []obs.Event
}

func (c *corruptCollector) Enabled() bool { return true }
func (c *corruptCollector) Emit(e obs.Event) {
	if e.Kind == obs.KindCkptCorrupt {
		c.events = append(c.events, e)
	}
}

func TestRunSaveLoadNewest(t *testing.T) {
	store := NewStore(t.TempDir(), 3, true, nil)
	run := store.Run("pretrain-c10")
	for i := byte(1); i <= 3; i++ {
		if _, _, err := run.Save(map[string][]byte{"meta": {i}}); err != nil {
			t.Fatal(err)
		}
	}
	sections, path, ok := run.Load()
	if !ok {
		t.Fatal("expected a loadable checkpoint")
	}
	if sections["meta"][0] != 3 {
		t.Fatalf("Load returned seq %d, want newest (3); path %s", sections["meta"][0], path)
	}
}

func TestRunRetentionPrunes(t *testing.T) {
	store := NewStore(t.TempDir(), 2, true, nil)
	run := store.Run("r")
	for i := byte(0); i < 5; i++ {
		if _, _, err := run.Save(map[string][]byte{"meta": {i}}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(run.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("retention keep=2 left %d files", len(entries))
	}
}

func TestRunLoadFallsBackPastCorruption(t *testing.T) {
	sink := &corruptCollector{}
	store := NewStore(t.TempDir(), 3, true, sink)
	run := store.Run("r")
	for i := byte(1); i <= 3; i++ {
		if _, _, err := run.Save(map[string][]byte{"meta": {i}}); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate the newest, bit-flip the middle: Load must fall back to
	// the oldest survivor and report both casualties.
	seqs := run.list()
	newest := filepath.Join(run.Dir(), seqName(seqs[2]))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	middle := filepath.Join(run.Dir(), seqName(seqs[1]))
	data, err = os.ReadFile(middle)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40 // inside the last section's payload/CRC
	if err := os.WriteFile(middle, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sections, _, ok := run.Load()
	if !ok {
		t.Fatal("oldest checkpoint is intact; Load must find it")
	}
	if sections["meta"][0] != 1 {
		t.Fatalf("fell back to seq %d, want 1", sections["meta"][0])
	}
	if len(sink.events) != 2 {
		t.Fatalf("want 2 ckpt.corrupt events, got %d", len(sink.events))
	}
}

func TestRunNotResumableIgnoresExisting(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := NewStore(dir, 3, true, nil).Run("r").Save(map[string][]byte{"meta": {9}}); err != nil {
		t.Fatal(err)
	}
	fresh := NewStore(dir, 3, false, nil).Run("r")
	if _, _, ok := fresh.Load(); ok {
		t.Fatal("non-resume run must not load old checkpoints")
	}
	// And its first save discards the stale sequence entirely.
	if _, _, err := fresh.Save(map[string][]byte{"meta": {1}}); err != nil {
		t.Fatal(err)
	}
	resumed := NewStore(dir, 3, true, nil).Run("r")
	sections, _, ok := resumed.Load()
	if !ok || sections["meta"][0] != 1 {
		t.Fatal("stale checkpoints from the previous attempt must be gone")
	}
}

func TestSaveContinuesSequenceOnResume(t *testing.T) {
	dir := t.TempDir()
	first := NewStore(dir, 10, true, nil).Run("r")
	for i := byte(1); i <= 2; i++ {
		if _, _, err := first.Save(map[string][]byte{"meta": {i}}); err != nil {
			t.Fatal(err)
		}
	}
	second := NewStore(dir, 10, true, nil).Run("r")
	path, _, err := second.Save(map[string][]byte{"meta": {3}})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != seqName(2) {
		t.Fatalf("resumed save wrote %s, want %s", filepath.Base(path), seqName(2))
	}
}

func TestClearKeyRemovesPhasesNotNeighbors(t *testing.T) {
	dir := t.TempDir()
	store := NewStore(dir, 3, true, nil)
	for _, key := range []string{"admm-c10-0.1", "admm-c10-0.1.admm", "admm-c10-0.1.ft", "admm-c10-0.15"} {
		if _, _, err := store.Run(key).Save(map[string][]byte{"meta": {1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.ClearKey("admm-c10-0.1"); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]bool{
		"admm-c10-0.1":      false,
		"admm-c10-0.1.admm": false,
		"admm-c10-0.1.ft":   false,
		"admm-c10-0.15":     true,
	} {
		_, err := os.Stat(filepath.Join(dir, sanitizeKey(key)))
		if got := err == nil; got != want {
			t.Fatalf("after ClearKey, dir for %q exists=%v, want %v", key, got, want)
		}
	}
}

func TestSanitizeKey(t *testing.T) {
	for in, want := range map[string]string{
		"pretrain-c10":    "pretrain-c10",
		"prog c10/0.1":    "prog_c10_0.1",
		"":                "_",
		".":               "_",  // "." and ".." would resolve out of the
		"..":              "__", // store root when joined; neutralized
		"a\x00b":          "a_b",
		"admm-c10-0.5.ft": "admm-c10-0.5.ft",
	} {
		if got := sanitizeKey(in); got != want {
			t.Fatalf("sanitizeKey(%q) = %q, want %q", in, got, want)
		}
	}
}
