package ckpt

import (
	"bytes"
	"testing"
)

// FuzzLoadCheckpoint drives Decode with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to the exact input —
// the container format has a single canonical byte representation
// (sections sorted by name), so decode∘encode is the identity on valid
// files.
func FuzzLoadCheckpoint(f *testing.F) {
	valid, err := Encode(map[string][]byte{
		"meta": []byte("epoch 3"),
		"net":  bytes.Repeat([]byte{0x42}, 64),
		"rng":  {1, 2, 3, 4, 5, 6, 7, 8},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])              // truncated tail
	f.Add(append([]byte(nil), valid[4:]...)) // missing magic
	f.Add([]byte("FTCK"))                    // magic only
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[20] ^= 0x10
	f.Add(mut) // bit flip

	f.Fuzz(func(t *testing.T, data []byte) {
		sections, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(sections)
		if err != nil {
			t.Fatalf("decoded sections failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}
