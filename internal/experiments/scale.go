// Package experiments defines the paper's experiments (Table I,
// Table II, Figure 2, plus ablations) as declarative configurations,
// and provides the orchestration to train, cache, and evaluate every
// model they need.
//
// Three presets scale the same experiment definitions:
//
//   - "paper": the paper's setup (CIFAR-scale data, full-width
//     ResNet-20/32, 160 epochs, 100 defect runs). Real CIFAR binaries
//     are used when present under data/cifar10 and data/cifar100;
//     otherwise a CIFAR-shaped synthetic task is generated. Practical
//     only with a lot of patience on one CPU core.
//   - "repro": the default scaled-down reproduction this repository's
//     EXPERIMENTS.md is generated with — the same topologies at quarter
//     width, 12×12 synthetic images, reduced epochs and defect runs.
//   - "quick": a seconds-scale configuration used by benchmarks and
//     integration tests.
//   - "smoke": the smallest runnable configuration — sub-second, used
//     by determinism and CI smoke tests.
package experiments

import (
	"fmt"

	"github.com/ftpim/ftpim/internal/data"
)

// Scale holds every size knob of the experiment suite.
type Scale struct {
	Name string

	// Datasets (ignored for "paper" preset when real CIFAR is present).
	C10, C100 data.SynthConfig

	// Models.
	Width     float64 // ResNet width multiplier
	DepthC10  int
	DepthC100 int

	// Training recipe.
	PretrainEpochs     int
	FTEpochs           int // one-shot FT budget
	ProgRungs          int // max ladder length
	ProgEpochsPerStage int
	Batch              int
	LR                 float64
	FTLR               float64 // retraining LR (paper restarts at 0.1; scaled runs prefer lower)
	Momentum           float64
	WeightDecay        float64
	Aug                data.Augment

	// Pruning.
	ADMMEpochs     int
	FinetuneEpochs int
	ADMMRho        float64

	// Evaluation.
	DefectRuns int
	TestRates  []float64 // Table I / Figure 2 sweep
	TrainRates []float64 // Table I training targets
	SSRates    []float64 // Table II rates
	Sparsities []float64 // Figure 2 pruning ratios

	// Workers bounds the goroutines used by the defect-evaluation
	// Monte-Carlo loop (0 = all cores, 1 = serial). Results are
	// bit-identical at any setting, so it is excluded from model cache
	// keys.
	Workers int

	Seed uint64
}

// PaperTestRates is the exact Table I testing-rate axis.
var PaperTestRates = []float64{0, 0.001, 0.0015, 0.002, 0.003, 0.005, 0.01, 0.02, 0.03, 0.05, 0.075, 0.1, 0.15, 0.2}

// PaperTrainRates is the exact Table I training-target axis.
var PaperTrainRates = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}

// ScaleFor returns the Scale for a named preset.
func ScaleFor(preset string) Scale {
	switch preset {
	case "paper":
		return Scale{
			Name: "paper",
			C10: data.SynthConfig{
				Classes: 10, TrainPer: 5000, TestPer: 1000,
				Channels: 3, Size: 32, Basis: 48, CoefNoise: 0.25,
				NoiseStd: 0.4, ShiftMax: 3, JitterStd: 0.15, Seed: 1001,
			},
			C100: data.SynthConfig{
				Classes: 100, TrainPer: 500, TestPer: 100,
				Channels: 3, Size: 32, Basis: 72, CoefNoise: 0.08,
				NoiseStd: 0.5, ShiftMax: 3, JitterStd: 0.15, Seed: 2002,
			},
			Width: 1, DepthC10: 20, DepthC100: 32,
			PretrainEpochs: 160, FTEpochs: 160,
			ProgRungs: 4, ProgEpochsPerStage: 160,
			Batch: 128, LR: 0.1, FTLR: 0.1, Momentum: 0.9, WeightDecay: 1e-4,
			Aug:        data.Augment{Flip: true, ShiftMax: 4},
			ADMMEpochs: 160, FinetuneEpochs: 160, ADMMRho: 1e-3,
			DefectRuns: 100,
			TestRates:  PaperTestRates,
			TrainRates: PaperTrainRates,
			SSRates:    []float64{0.01, 0.02},
			Sparsities: []float64{0.4, 0.7},
			Seed:       42,
		}
	case "repro":
		return Scale{
			Name: "repro",
			C10: data.SynthConfig{
				Classes: 10, TrainPer: 150, TestPer: 40,
				Channels: 3, Size: 12, Basis: 26, CoefNoise: 0.25,
				NoiseStd: 0.45, ShiftMax: 2, JitterStd: 0.15, Seed: 1001,
			},
			C100: data.SynthConfig{
				Classes: 100, TrainPer: 30, TestPer: 4,
				Channels: 3, Size: 12, Basis: 40, CoefNoise: 0.08,
				NoiseStd: 0.5, ShiftMax: 2, JitterStd: 0.15, Seed: 2002,
			},
			Width: 0.25, DepthC10: 20, DepthC100: 32,
			PretrainEpochs: 16, FTEpochs: 12,
			ProgRungs: 3, ProgEpochsPerStage: 6,
			Batch: 32, LR: 0.08, FTLR: 0.04, Momentum: 0.9, WeightDecay: 5e-4,
			Aug:        data.Augment{Flip: true, ShiftMax: 1},
			ADMMEpochs: 10, FinetuneEpochs: 8, ADMMRho: 5e-3,
			DefectRuns: 8,
			TestRates:  PaperTestRates,
			TrainRates: PaperTrainRates,
			SSRates:    []float64{0.01, 0.02},
			Sparsities: []float64{0.4, 0.7},
			Seed:       42,
		}
	case "smoke":
		return Scale{
			Name: "smoke",
			C10: data.SynthConfig{
				Classes: 4, TrainPer: 12, TestPer: 6,
				Channels: 3, Size: 8, Basis: 8, CoefNoise: 0.1,
				NoiseStd: 0.3, ShiftMax: 1, JitterStd: 0.1, Seed: 1001,
			},
			C100: data.SynthConfig{
				Classes: 8, TrainPer: 8, TestPer: 3,
				Channels: 3, Size: 8, Basis: 10, CoefNoise: 0.08,
				NoiseStd: 0.4, ShiftMax: 1, JitterStd: 0.1, Seed: 2002,
			},
			Width: 0.2, DepthC10: 8, DepthC100: 8,
			PretrainEpochs: 2, FTEpochs: 2,
			ProgRungs: 2, ProgEpochsPerStage: 1,
			Batch: 8, LR: 0.08, FTLR: 0.04, Momentum: 0.9, WeightDecay: 5e-4,
			Aug:        data.Augment{Flip: true, ShiftMax: 1},
			ADMMEpochs: 2, FinetuneEpochs: 2, ADMMRho: 5e-3,
			DefectRuns: 2,
			TestRates:  []float64{0, 0.02, 0.1},
			TrainRates: []float64{0.1},
			SSRates:    []float64{0.02},
			Sparsities: []float64{0.5},
			Seed:       42,
		}
	case "quick":
		return Scale{
			Name: "quick",
			C10: data.SynthConfig{
				Classes: 6, TrainPer: 30, TestPer: 12,
				Channels: 3, Size: 8, Basis: 12, CoefNoise: 0.1,
				NoiseStd: 0.3, ShiftMax: 1, JitterStd: 0.1, Seed: 1001,
			},
			C100: data.SynthConfig{
				Classes: 12, TrainPer: 15, TestPer: 6,
				Channels: 3, Size: 8, Basis: 14, CoefNoise: 0.08,
				NoiseStd: 0.4, ShiftMax: 1, JitterStd: 0.1, Seed: 2002,
			},
			Width: 0.2, DepthC10: 8, DepthC100: 14,
			PretrainEpochs: 5, FTEpochs: 4,
			ProgRungs: 2, ProgEpochsPerStage: 2,
			Batch: 16, LR: 0.08, FTLR: 0.04, Momentum: 0.9, WeightDecay: 5e-4,
			Aug:        data.Augment{Flip: true, ShiftMax: 1},
			ADMMEpochs: 3, FinetuneEpochs: 3, ADMMRho: 5e-3,
			DefectRuns: 3,
			TestRates:  []float64{0, 0.005, 0.02, 0.05, 0.1, 0.2},
			TrainRates: []float64{0.02, 0.1},
			SSRates:    []float64{0.02, 0.05},
			Sparsities: []float64{0.5},
			Seed:       42,
		}
	default:
		panic(fmt.Sprintf("experiments: unknown preset %q (want paper, repro, quick, or smoke)", preset))
	}
}
