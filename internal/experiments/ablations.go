package experiments

import (
	"context"
	"fmt"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/metrics"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/report"
	"github.com/ftpim/ftpim/internal/reram"
	"github.com/ftpim/ftpim/internal/tensor"
)

// LadderAblationRow reports one ladder-depth variant.
type LadderAblationRow struct {
	Rungs     int
	CleanAcc  float64 // percent
	DefectAcc float64 // percent, at the target rate
	Ladder    []float64
}

// AblationLadder studies how the progressive ladder length affects the
// final model at a fixed target rate (DESIGN.md A1). Rungs=1 is
// one-shot training. On cancellation the rows completed so far are
// returned together with ctx's error.
func AblationLadder(ctx context.Context, e *Env, ds string, target float64, maxRungs int) ([]LadderAblationRow, error) {
	train, test := e.Dataset(ds)
	ev := e.DefectEval()
	var rows []LadderAblationRow
	for rungs := 1; rungs <= maxRungs; rungs++ {
		rungs := rungs
		key := fmt.Sprintf("abl-ladder-%s-%g-%d", ds, target, rungs)
		net, err := e.cached(key, func() *nn.Network { return e.buildModel(ds) },
			func(net *nn.Network) error {
				base, err := e.Pretrained(ctx, ds)
				if err != nil {
					return err
				}
				mustRestore(net, base)
				cfg := e.trainCfg(key, e.Scale.FTEpochs, e.Scale.FTLR, e.Scale.Seed+hash64(key))
				ladder := core.Ladder(target, rungs)
				// Split the same total budget across stages for a
				// compute-fair comparison.
				per := e.Scale.FTEpochs / len(ladder)
				if per < 1 {
					per = 1
				}
				_, err = core.ProgressiveFT(ctx, net, train, cfg, ladder, per)
				return err
			})
		if err != nil {
			return rows, err
		}
		sum, err := core.EvalDefect(ctx, net, test, target, ev)
		if err != nil {
			return rows, err
		}
		rows = append(rows, LadderAblationRow{
			Rungs:     rungs,
			CleanAcc:  core.EvalClean(net, test, ev.Batch) * 100,
			DefectAcc: sum.Mean * 100,
			Ladder:    core.Ladder(target, rungs),
		})
	}
	return rows, nil
}

// ResampleAblationResult compares per-epoch vs per-batch fault
// resampling during FT training (DESIGN.md A2).
type ResampleAblationResult struct {
	Rate              float64
	PerEpochCleanAcc  float64
	PerEpochDefectAcc float64
	PerBatchCleanAcc  float64
	PerBatchDefectAcc float64
}

// AblationResample runs the A2 ablation at the given training rate.
func AblationResample(ctx context.Context, e *Env, ds string, rate float64) (ResampleAblationResult, error) {
	train, test := e.Dataset(ds)
	ev := e.DefectEval()
	res := ResampleAblationResult{Rate: rate}

	variant := func(perBatch bool) (clean, defect float64, err error) {
		key := fmt.Sprintf("abl-resample-%s-%g-%v", ds, rate, perBatch)
		net, err := e.cached(key, func() *nn.Network { return e.buildModel(ds) },
			func(net *nn.Network) error {
				base, err := e.Pretrained(ctx, ds)
				if err != nil {
					return err
				}
				mustRestore(net, base)
				cfg := e.trainCfg(key, e.Scale.FTEpochs, e.Scale.FTLR, e.Scale.Seed+hash64(key))
				cfg.PerBatch = perBatch
				_, err = core.OneShotFT(ctx, net, train, cfg, rate)
				return err
			})
		if err != nil {
			return 0, 0, err
		}
		sum, err := core.EvalDefect(ctx, net, test, rate, ev)
		if err != nil {
			return 0, 0, err
		}
		return core.EvalClean(net, test, ev.Batch) * 100, sum.Mean * 100, nil
	}
	var err error
	if res.PerEpochCleanAcc, res.PerEpochDefectAcc, err = variant(false); err != nil {
		return res, err
	}
	if res.PerBatchCleanAcc, res.PerBatchDefectAcc, err = variant(true); err != nil {
		return res, err
	}
	return res, nil
}

// CrossbarAblationResult validates the weight-level fault model
// against the circuit-level crossbar simulation (DESIGN.md A3).
type CrossbarAblationResult struct {
	Psa            float64
	CleanAcc       float64 // percent, digital weights
	QuantizedAcc   float64 // percent, crossbar-quantized, fault-free
	WeightLevelAcc float64 // percent, weight-level stuck-at injection
	CircuitAcc     float64 // percent, per-cell crossbar fault maps
}

// AblationCrossbar deploys the pretrained model on the circuit-level
// crossbar simulator and compares defect accuracy under per-cell fault
// maps with the fast weight-level model at the same rate.
func AblationCrossbar(ctx context.Context, e *Env, ds string, psa float64, opts reram.MapOptions) (CrossbarAblationResult, error) {
	_, test := e.Dataset(ds)
	ev := e.DefectEval()
	res := CrossbarAblationResult{Psa: psa}
	net, err := e.Pretrained(ctx, ds)
	if err != nil {
		return res, err
	}
	res.CleanAcc = core.EvalClean(net, test, ev.Batch) * 100
	sum, err := core.EvalDefect(ctx, net, test, psa, ev)
	if err != nil {
		return res, err
	}
	res.WeightLevelAcc = sum.Mean * 100

	mn := reram.MapNetwork(net, opts)
	undo := mn.ApplyEffectiveWeights()
	res.QuantizedAcc = metrics.Evaluate(net, test, ev.Batch) * 100
	undo()

	rng := tensor.NewRNG(ev.Seed).Stream("crossbar-ablation")
	var accs []float64
	for run := 0; run < ev.Runs; run++ {
		if err := ctx.Err(); err != nil {
			mn.ClearFaults()
			return res, err
		}
		mn.ClearFaults()
		mn.InjectFaults(rng.StreamN("run", run), fault.ChenModel(), psa)
		u := mn.ApplyEffectiveWeights()
		accs = append(accs, metrics.Evaluate(net, test, ev.Batch))
		u()
	}
	mn.ClearFaults()
	res.CircuitAcc = metrics.Summarize(accs).Mean * 100
	return res, nil
}

// LadderTable renders the A1 rows.
func LadderTable(rows []LadderAblationRow, target float64) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("A1: progressive ladder depth at Psa^T=%g (compute-fair)", target),
		"rungs", "ladder", "clean acc %", fmt.Sprintf("defect acc %% @%g", target))
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Rungs), fmt.Sprintf("%v", r.Ladder),
			fmt.Sprintf("%.2f", r.CleanAcc), fmt.Sprintf("%.2f", r.DefectAcc))
	}
	return t
}
