package experiments

// Golden-file test for the machine-readable event stream: a smoke-
// preset Table 1 run behind a JSONL sink must emit a schema-versioned,
// structurally reproducible record of everything it did. The golden
// file pins the structural fields (kind, phase, key, ordinals, rate);
// measured values (accuracies, seconds, timestamps) are checked for
// validity but deliberately left out of the comparison so the stream
// contract outlives retuning.
//
// Regenerate with:
//
//	go test ./internal/experiments -run TestTable1SmokeEventStream -update

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ftpim/ftpim/internal/obs"
	"github.com/ftpim/ftpim/internal/tensor"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestTable1SmokeEventStream(t *testing.T) {
	// The golden stream embeds cache keys, which carry the numerics
	// tier suffix; the committed golden was recorded under exact, so
	// pin the tier here (the event-stream shape is tier-independent).
	defer tensor.SetNumerics(tensor.SetNumerics(tensor.NumericsExact))
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	sink.SetClock(nil) // omit timestamps: the stream becomes deterministic
	e := NewEnv("smoke", "", sink)
	e.Scale.Workers = 1 // serial eval: events arrive in run order

	if _, err := Table1(bg, e, "c10"); err != nil {
		t.Fatalf("Table1: %v", err)
	}

	var keys []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Bytes()
		var rec struct {
			Schema string  `json:"schema"`
			T      string  `json:"t"`
			Kind   string  `json:"kind"`
			Phase  string  `json:"phase"`
			Key    string  `json:"key"`
			Epoch  int     `json:"epoch"`
			Stage  int     `json:"stage"`
			Run    int     `json:"run"`
			Rate   float64 `json:"rate"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if rec.Schema != obs.SchemaVersion {
			t.Fatalf("line carries schema %q, want %q: %s", rec.Schema, obs.SchemaVersion, line)
		}
		if rec.T != "" {
			t.Fatalf("nil clock must omit the t field: %s", line)
		}
		if rec.Kind == "" {
			t.Fatalf("line without kind: %s", line)
		}
		keys = append(keys, fmt.Sprintf("%s|%s|%s|%d|%d|%d|%g",
			rec.Kind, rec.Phase, rec.Key, rec.Epoch, rec.Stage, rec.Run, rec.Rate))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(keys) == 0 {
		t.Fatal("smoke Table 1 emitted no events")
	}
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "table1_smoke_events.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("event stream diverges from golden at line %d:\n got %q\nwant %q\n(%d vs %d lines; regenerate with -update if intentional)",
					i+1, gl[i], wl[i], len(gl), len(wl))
			}
		}
		t.Fatalf("event stream length diverges from golden: got %d lines, want %d (regenerate with -update if intentional)",
			len(gl), len(wl))
	}
}
