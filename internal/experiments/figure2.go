package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/report"
)

// Figure2Result reproduces one panel of Figure 2: accuracy of the
// dense model and its pruned variants (no FT training) across testing
// fault rates.
type Figure2Result struct {
	Dataset   string
	TestRates []float64
	Series    []report.Series // Y in percent
}

// Figure2 evaluates the dense pretrained model plus one-shot-pruned and
// ADMM-pruned variants at every configured sparsity, without any
// fault-tolerant training — the paper's Figure 2 for one dataset.
// On cancellation the series completed so far are returned together
// with ctx's error.
func Figure2(ctx context.Context, e *Env, ds string) (*Figure2Result, error) {
	ev := e.DefectEval()
	res := &Figure2Result{Dataset: ds, TestRates: e.Scale.TestRates}

	add := func(name string, net *nn.Network) error {
		accs, err := sweepAccs(ctx, e, ds, net, ev)
		if err != nil {
			return err
		}
		res.Series = append(res.Series, report.Series{Name: name, X: e.Scale.TestRates, Y: accs})
		return nil
	}

	e.logf("figure2[%s]: dense", ds)
	dense, err := e.Pretrained(ctx, ds)
	if err != nil {
		return res, err
	}
	if err := add("dense", dense); err != nil {
		return res, err
	}
	for _, sp := range e.Scale.Sparsities {
		e.logf("figure2[%s]: one-shot pruned %.0f%%", ds, sp*100)
		net, err := e.PrunedMagnitude(ctx, ds, sp)
		if err != nil {
			return res, err
		}
		if err := add(fmt.Sprintf("oneshot-pruned-%.0f%%", sp*100), net); err != nil {
			return res, err
		}
		e.logf("figure2[%s]: ADMM pruned %.0f%%", ds, sp*100)
		if net, err = e.PrunedADMM(ctx, ds, sp); err != nil {
			return res, err
		}
		if err := add(fmt.Sprintf("admm-pruned-%.0f%%", sp*100), net); err != nil {
			return res, err
		}
	}
	return res, nil
}

// AccAt returns series s's accuracy (percent) at testing-rate index i.
func (r *Figure2Result) AccAt(s, i int) float64 { return r.Series[s].Y[i] }

// Plot renders the panel as an ASCII chart.
func (r *Figure2Result) Plot() string {
	var sb strings.Builder
	report.AsciiPlot(&sb, fmt.Sprintf("Figure 2 (%s): accuracy %% vs testing failure rate (no FT training)", r.Dataset), r.Series, 40)
	return sb.String()
}

// CSV renders the series as CSV.
func (r *Figure2Result) CSV() string {
	var sb strings.Builder
	report.SeriesCSV(&sb, r.Series)
	return sb.String()
}
