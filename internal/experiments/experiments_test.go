package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/reram"
)

// bg is the context for tests that never cancel.
var bg = context.Background()

func quickEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv("quick", "", nil)
}

// pretrained unwraps Env.Pretrained under a background context.
func pretrained(t *testing.T, e *Env, ds string) *nn.Network {
	t.Helper()
	net, err := e.Pretrained(bg, ds)
	if err != nil {
		t.Fatalf("Pretrained: %v", err)
	}
	return net
}

func TestScaleForKnownPresets(t *testing.T) {
	for _, p := range []string{"paper", "repro", "quick"} {
		s := ScaleFor(p)
		if s.Name != p {
			t.Fatalf("preset %s name mismatch", p)
		}
		if len(s.TestRates) == 0 || len(s.TrainRates) == 0 {
			t.Fatalf("preset %s missing rates", p)
		}
		if s.TestRates[0] != 0 {
			t.Fatalf("preset %s should include rate 0 first", p)
		}
	}
}

func TestScaleForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScaleFor("bogus")
}

func TestDatasetCachedAndShaped(t *testing.T) {
	e := quickEnv(t)
	tr1, te1 := e.Dataset("c10")
	tr2, _ := e.Dataset("c10")
	if tr1 != tr2 {
		t.Fatal("dataset should be cached in memory")
	}
	if tr1.Classes != e.Scale.C10.Classes || te1.N() == 0 {
		t.Fatal("dataset misconfigured")
	}
}

func TestPretrainedLearnsAboveChance(t *testing.T) {
	e := quickEnv(t)
	_, test := e.Dataset("c10")
	net := pretrained(t, e, "c10")
	accs, err := sweepAccs(bg, e, "c10", net, e.DefectEval())
	if err != nil {
		t.Fatal(err)
	}
	acc := accs[0] // rate 0
	chance := 100.0 / float64(test.Classes)
	if acc < 3*chance {
		t.Fatalf("pretrained accuracy %.1f%% not well above chance %.1f%%", acc, chance)
	}
}

func TestPretrainedMemoized(t *testing.T) {
	e := quickEnv(t)
	if pretrained(t, e, "c10") != pretrained(t, e, "c10") {
		t.Fatal("Pretrained must be memoized")
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e1 := NewEnv("quick", dir, nil)
	n1 := pretrained(t, e1, "c10")
	files, _ := filepath.Glob(filepath.Join(dir, tierKey("pretrain-c10")+"-*.gob"))
	if len(files) != 1 {
		t.Fatalf("expected one cache file, got %v", files)
	}
	e2 := NewEnv("quick", dir, nil)
	n2 := pretrained(t, e2, "c10")
	p1, p2 := n1.Params(), n2.Params()
	for i := range p1 {
		if !p1[i].W.Equal(p2[i].W) {
			t.Fatal("disk cache returned different weights")
		}
	}
}

func TestDiskCacheInvalidatedByScaleChange(t *testing.T) {
	dir := t.TempDir()
	e1 := NewEnv("quick", dir, nil)
	pretrained(t, e1, "c10")
	e2 := NewEnv("quick", dir, nil)
	e2.Scale.Seed++ // any scale change must miss the cache
	pretrained(t, e2, "c10")
	files, _ := filepath.Glob(filepath.Join(dir, tierKey("pretrain-c10")+"-*.gob"))
	if len(files) != 2 {
		t.Fatalf("expected two distinct cache files, got %v", files)
	}
}

func TestDiskCacheCorruptFileRetrains(t *testing.T) {
	dir := t.TempDir()
	e1 := NewEnv("quick", dir, nil)
	pretrained(t, e1, "c10")
	files, _ := filepath.Glob(filepath.Join(dir, tierKey("pretrain-c10")+"-*.gob"))
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := NewEnv("quick", dir, nil)
	if pretrained(t, e2, "c10") == nil {
		t.Fatal("corrupt cache must retrain, not fail")
	}
}

func TestTable1ShapeAndBaselineCollapse(t *testing.T) {
	e := quickEnv(t)
	res, err := Table1(bg, e, "c10")
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 + 2*len(e.Scale.TrainRates)
	if len(res.Rows) != wantRows {
		t.Fatalf("rows %d want %d", len(res.Rows), wantRows)
	}
	for _, r := range res.Rows {
		if len(r.Accs) != len(e.Scale.TestRates) {
			t.Fatal("row width mismatch")
		}
		for _, a := range r.Accs {
			if a < 0 || a > 100 {
				t.Fatalf("accuracy out of range: %v", a)
			}
		}
	}
	base := res.Rows[0]
	if base.Method != "baseline" {
		t.Fatal("first row must be baseline")
	}
	last := len(base.Accs) - 1
	if base.Accs[0] <= base.Accs[last] {
		t.Fatalf("baseline should collapse from %.1f to below it, got %.1f", base.Accs[0], base.Accs[last])
	}
	// The best model at the harshest rate should be an FT model.
	if best := res.BestRow(last); best.Method == "baseline" {
		t.Fatalf("baseline should not win at rate %g", e.Scale.TestRates[last])
	}
}

func TestTable1Render(t *testing.T) {
	e := quickEnv(t)
	res, err := Table1(bg, e, "c10")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Table().Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Baseline") {
		t.Fatalf("render broken:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("expected top-3 highlights")
	}
}

func TestFigure2ShapesAndPrunedFragility(t *testing.T) {
	e := quickEnv(t)
	res, err := Figure2(bg, e, "c10")
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 2*len(e.Scale.Sparsities)
	if len(res.Series) != want {
		t.Fatalf("series %d want %d", len(res.Series), want)
	}
	for _, s := range res.Series {
		if len(s.Y) != len(e.Scale.TestRates) {
			t.Fatal("series width mismatch")
		}
	}
	// Every model should degrade from rate 0 to the harshest rate.
	last := len(e.Scale.TestRates) - 1
	for _, s := range res.Series {
		if s.Y[0] <= s.Y[last] {
			t.Fatalf("series %s does not degrade (%.1f -> %.1f)", s.Name, s.Y[0], s.Y[last])
		}
	}
	if csv := res.CSV(); !strings.Contains(csv, "dense") {
		t.Fatal("CSV missing series")
	}
	if plot := res.Plot(); !strings.Contains(plot, "Figure 2") {
		t.Fatal("plot missing title")
	}
}

func TestTable2ShapeAndFTDominance(t *testing.T) {
	e := quickEnv(t)
	res, err := Table2(bg, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 2 {
		t.Fatalf("sections %d", len(res.Sections))
	}
	for _, sec := range res.Sections {
		if len(sec.Rows) != 1+2*len(table2FTRates) {
			t.Fatalf("section rows %d", len(sec.Rows))
		}
		base := sec.Rows[0]
		for _, row := range sec.Rows {
			if len(row.AccDefect) != len(res.SSRates) || len(row.SS) != len(res.SSRates) {
				t.Fatalf("row %q has wrong width", row.Label)
			}
			for _, a := range row.AccDefect {
				if a < 0 || a > 100 {
					t.Fatalf("row %q defect acc out of range: %v", row.Label, a)
				}
			}
		}
		// At least one FT variant must beat the non-FT baseline's defect
		// accuracy at the first SS rate (the quick preset's budget is too
		// small for every variant to dominate; the repro preset checks
		// the full ordering in EXPERIMENTS.md).
		bestFT := 0.0
		for _, row := range sec.Rows[1:] {
			if row.AccDefect[0] > bestFT {
				bestFT = row.AccDefect[0]
			}
		}
		if bestFT < base.AccDefect[0] {
			t.Fatalf("no FT variant beats baseline defect acc %.1f (best %.1f)",
				base.AccDefect[0], bestFT)
		}
	}
	var sb strings.Builder
	res.Table().Render(&sb)
	if !strings.Contains(sb.String(), "Table II") {
		t.Fatal("render broken")
	}
}

func TestAblationLadderRows(t *testing.T) {
	e := quickEnv(t)
	rows, err := AblationLadder(bg, e, "c10", 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].Rungs != 1 || len(rows[0].Ladder) != 1 {
		t.Fatal("first row must be one-shot")
	}
	if len(rows[1].Ladder) != 2 {
		t.Fatal("second row must have 2 rungs")
	}
	var sb strings.Builder
	LadderTable(rows, 0.1).Render(&sb)
	if !strings.Contains(sb.String(), "A1") {
		t.Fatal("ladder table render broken")
	}
}

func TestAblationResample(t *testing.T) {
	e := quickEnv(t)
	res, err := AblationResample(bg, e, "c10", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{res.PerEpochCleanAcc, res.PerBatchCleanAcc, res.PerEpochDefectAcc, res.PerBatchDefectAcc} {
		if v < 0 || v > 100 {
			t.Fatalf("out of range: %+v", res)
		}
	}
}

func TestAblationCrossbarConsistency(t *testing.T) {
	e := quickEnv(t)
	opts := reram.MapOptions{TileRows: 32, TileCols: 32, Levels: 0, Gmin: 0.1, Gmax: 10}
	res, err := AblationCrossbar(bg, e, "c10", 0.05, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Continuous, fault-free mapping must match digital accuracy.
	if diff := res.QuantizedAcc - res.CleanAcc; diff > 1 || diff < -1 {
		t.Fatalf("analog fault-free accuracy %.2f vs digital %.2f", res.QuantizedAcc, res.CleanAcc)
	}
	// The weight-level model abstracts the circuit one; at matched psa
	// the two defect accuracies should be in the same regime. The
	// circuit model injects faults into 2 cells per weight (differential
	// pair), so it is somewhat harsher; allow a wide band.
	if d := res.CircuitAcc - res.WeightLevelAcc; d > 25 || d < -25 {
		t.Fatalf("circuit (%.1f) vs weight-level (%.1f) disagree wildly", res.CircuitAcc, res.WeightLevelAcc)
	}
}
