package experiments

import (
	"context"
	"fmt"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/fault"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/report"
)

// scenarioFTRate is the representative FT target rate the scenario
// sweep retrains at — the paper's mid rate.
const scenarioFTRate = 0.05

// DefaultScenarioSpecs is the sweep's default scenario list: every
// built-in scenario at its registered defaults.
var DefaultScenarioSpecs = []string{"chen", "transient", "cluster", "drop"}

// ScenarioRow is one (scenario, FT scheme) stability measurement.
type ScenarioRow struct {
	Scenario   string // canonical spec
	Method     string
	AccRetrain float64 // percent
	AccDefect  []float64
	SS         []float64
}

// ScenarioSweepResult cross-evaluates the FT schemes under every
// requested fault scenario: a model is trained once (with its own
// scheme) and its stability is measured under each scenario's defect
// distribution, answering "how does this retraining hold up when the
// deployed device's faults don't match the training assumption?".
type ScenarioSweepResult struct {
	Dataset     string
	AccPretrain float64 // percent
	Rates       []float64
	Rows        []ScenarioRow
}

// ScenarioSweep measures baseline, one-shot FT, and drop-connect FT
// models under each scenario spec (nil/empty → DefaultScenarioSpecs).
// Specs are resolved through fault.Parse, so anything accepted by the
// -fault flag works here. On cancellation the rows completed so far
// are returned with ctx's error.
func ScenarioSweep(ctx context.Context, e *Env, ds string, specs []string) (*ScenarioSweepResult, error) {
	if len(specs) == 0 {
		specs = DefaultScenarioSpecs
	}
	scenarios := make([]fault.Scenario, len(specs))
	for i, spec := range specs {
		sc, err := fault.Parse(spec)
		if err != nil {
			return nil, err
		}
		scenarios[i] = sc
	}

	_, test := e.Dataset(ds)
	base, err := e.Pretrained(ctx, ds)
	if err != nil {
		return nil, err
	}
	ev := e.DefectEval()
	res := &ScenarioSweepResult{
		Dataset:     ds,
		AccPretrain: core.EvalClean(base, test, ev.Batch) * 100,
		Rates:       e.Scale.SSRates,
	}
	accPre := res.AccPretrain / 100

	type scheme struct {
		label string
		net   func() (*nn.Network, error)
	}
	schemes := []scheme{
		{"Baseline (no FT)", func() (*nn.Network, error) { return base, nil }},
		{fmt.Sprintf("One-Shot Psa^T=%g", scenarioFTRate),
			func() (*nn.Network, error) { return e.OneShot(ctx, ds, scenarioFTRate) }},
		{fmt.Sprintf("Drop-Connect p=%g", scenarioFTRate),
			func() (*nn.Network, error) { return e.DropConnect(ctx, ds, scenarioFTRate) }},
	}
	for _, s := range schemes {
		net, err := s.net()
		if err != nil {
			return res, err
		}
		for _, sc := range scenarios {
			c := ev
			c.Scenario = sc
			rep, err := core.Stability(ctx, net, test, accPre, e.Scale.SSRates, c)
			if err != nil {
				return res, err
			}
			row := ScenarioRow{Scenario: sc.Spec(), Method: s.label, AccRetrain: rep.AccRetrain * 100}
			for i := range rep.Rates {
				row.AccDefect = append(row.AccDefect, rep.AccDefect[i]*100)
				row.SS = append(row.SS, rep.SS[i])
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Table renders the sweep: one row per (FT scheme, scenario).
func (r *ScenarioSweepResult) Table() *report.Table {
	header := []string{"Method", "Scenario", "AccRetrain"}
	for _, rate := range r.Rates {
		header = append(header, fmt.Sprintf("AccDef(%g)", rate))
	}
	for _, rate := range r.Rates {
		header = append(header, fmt.Sprintf("SS(%g)", rate))
	}
	t := report.NewTable(
		fmt.Sprintf("Fault-scenario sweep (%s): stability per scenario, pretrained accuracy = %.2f%%",
			r.Dataset, r.AccPretrain),
		header...)
	for _, row := range r.Rows {
		cells := []string{row.Method, row.Scenario, fmt.Sprintf("%.2f", row.AccRetrain)}
		for _, a := range row.AccDefect {
			cells = append(cells, fmt.Sprintf("%.2f", a))
		}
		for _, s := range row.SS {
			cells = append(cells, formatSS(s))
		}
		t.AddRow(cells...)
	}
	return t
}
