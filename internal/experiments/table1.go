package experiments

import (
	"context"
	"fmt"

	"github.com/ftpim/ftpim/internal/core"
	"github.com/ftpim/ftpim/internal/nn"
	"github.com/ftpim/ftpim/internal/report"
)

// Table1Row is one model's defect-accuracy sweep (a Table I row).
type Table1Row struct {
	Label     string
	Method    string  // "baseline", "oneshot", "progressive"
	TrainRate float64 // Psa^T (0 for baseline)
	Accs      []float64
}

// Table1Result reproduces one dataset half of Table I.
type Table1Result struct {
	Dataset     string
	PretrainAcc float64
	TestRates   []float64
	Rows        []Table1Row
}

// Table1 trains (or loads) the baseline plus a one-shot and a
// progressive FT model per training rate and sweeps them across the
// testing fault rates — the full Table I protocol for one dataset.
// On cancellation the partial result built so far is returned together
// with ctx's error.
func Table1(ctx context.Context, e *Env, ds string) (*Table1Result, error) {
	_, test := e.Dataset(ds)
	ev := e.DefectEval()

	res := &Table1Result{Dataset: ds, TestRates: e.Scale.TestRates}
	base, err := e.Pretrained(ctx, ds)
	if err != nil {
		return res, err
	}
	res.PretrainAcc = core.EvalClean(base, test, ev.Batch)

	e.logf("table1[%s]: evaluating baseline", ds)
	accs, err := sweepAccs(ctx, e, ds, base, ev)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Label: "Baseline Pretrained Model", Method: "baseline",
		Accs: accs,
	})
	for _, rate := range e.Scale.TrainRates {
		e.logf("table1[%s]: Psa^T=%g one-shot", ds, rate)
		net, err := e.OneShot(ctx, ds, rate)
		if err != nil {
			return res, err
		}
		if accs, err = sweepAccs(ctx, e, ds, net, ev); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Label:  fmt.Sprintf("One-Shot Psa^T=%g", rate),
			Method: "oneshot", TrainRate: rate,
			Accs: accs,
		})
		e.logf("table1[%s]: Psa^T=%g progressive", ds, rate)
		if net, err = e.Progressive(ctx, ds, rate); err != nil {
			return res, err
		}
		if accs, err = sweepAccs(ctx, e, ds, net, ev); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Label:  fmt.Sprintf("Progressive Psa^T=%g", rate),
			Method: "progressive", TrainRate: rate,
			Accs: accs,
		})
	}
	return res, nil
}

// sweepAccs evaluates a model across the testing rates (in percent).
func sweepAccs(ctx context.Context, e *Env, ds string, net *nn.Network, ev core.DefectEval) ([]float64, error) {
	_, test := e.Dataset(ds)
	sums, err := core.EvalDefectSweep(ctx, net, test, e.Scale.TestRates, ev)
	if err != nil {
		return nil, err
	}
	accs := make([]float64, len(sums))
	for i, s := range sums {
		accs[i] = s.Mean * 100
	}
	return accs, nil
}

// Table renders the result in the paper's layout, highlighting the
// top-3 defect accuracies per testing-rate column as Table I does.
func (r *Table1Result) Table() *report.Table {
	header := []string{"Method & Training Rate"}
	for _, rate := range r.TestRates {
		header = append(header, fmt.Sprintf("%g", rate))
	}
	t := report.NewTable(
		fmt.Sprintf("Table I (%s): defect accuracy %% vs testing stuck-at rate (pretrain acc %.2f%%)",
			r.Dataset, r.PretrainAcc*100),
		header...)
	for _, row := range r.Rows {
		cells := []string{row.Label}
		for _, a := range row.Accs {
			cells = append(cells, fmt.Sprintf("%.2f", a))
		}
		t.AddRow(cells...)
	}
	for col := 1; col <= len(r.TestRates); col++ {
		t.HighlightTopK(col, 3, report.ParsePercent)
	}
	return t
}

// BestRow returns the row with the highest accuracy at testing-rate
// index i (used by shape checks and EXPERIMENTS.md).
func (r *Table1Result) BestRow(i int) Table1Row {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.Accs[i] > best.Accs[i] {
			best = row
		}
	}
	return best
}
